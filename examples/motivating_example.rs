//! Example 1.1 of the paper, end to end: the sort-merge plan (Plan 1)
//! against the Grace-hash-plus-sort plan (Plan 2) under the bimodal memory
//! distribution.  Reproduces the numbers and the narrative of §1.1.
//!
//! ```text
//! cargo run --example motivating_example --release
//! ```

use lec_qopt::core::{fixtures, Mode, Optimizer, PointEstimate};
use lec_qopt::cost::{expected_plan_cost_static, plan_cost_at, CostModel};
use lec_qopt::exec::{monte_carlo, Environment};

fn main() {
    let (catalog, query) = fixtures::example_1_1();
    let memory = fixtures::example_1_1_memory();
    println!("Example 1.1 (PODS'99): A = 1,000,000 pages, B = 400,000 pages,");
    println!("result = 3,000 pages, output ordered by the join column.");
    println!(
        "memory: 2000 pages w.p. 0.8, 700 pages w.p. 0.2 (mean {:.0}, mode {:.0})\n",
        memory.mean(),
        memory.mode()
    );

    let opt = Optimizer::new(&catalog, memory.clone());
    let model = CostModel::new(&catalog, &query);

    // What a classical optimizer does.
    let lsc_mode = opt
        .optimize(&query, &Mode::Lsc(PointEstimate::Mode))
        .unwrap();
    let lsc_mean = opt
        .optimize(&query, &Mode::Lsc(PointEstimate::Mean))
        .unwrap();
    // What the paper proposes.
    let lec = opt.optimize(&query, &Mode::AlgorithmC).unwrap();

    println!("LSC @ mode (2000): {}", lsc_mode.plan.compact());
    println!("LSC @ mean (1740): {}", lsc_mean.plan.compact());
    println!("LEC (Algorithm C): {}\n", lec.plan.compact());

    // The paper's cost table.
    println!(
        "{:<22} {:>14} {:>14} {:>14}",
        "plan", "C(P, 2000)", "C(P, 700)", "EC(P)"
    );
    for (name, plan) in [
        ("Plan 1 = SM(A,B)", &lsc_mode.plan),
        ("Plan 2 = Sort(GH(A,B))", &lec.plan),
    ] {
        let hi = plan_cost_at(&model, plan, 2000.0);
        let lo = plan_cost_at(&model, plan, 700.0);
        let ec = expected_plan_cost_static(&model, plan, &memory);
        println!("{name:<22} {hi:>14.0} {lo:>14.0} {ec:>14.0}");
    }

    // "In 80% of the runs, Plan 2 is slightly more expensive than Plan 1
    //  ... whereas in 20% of the cases, Plan 1 is far more expensive."
    let env = Environment::Static(memory);
    let s1 = monte_carlo(&model, &lsc_mode.plan, &env, 50_000, 7).unwrap();
    let s2 = monte_carlo(&model, &lec.plan, &env, 50_000, 7).unwrap();
    println!("\nsimulated over 50,000 executions:");
    println!("  Plan 1: mean {:>12.0}  p95 {:>12.0}", s1.mean, s1.p95);
    println!("  Plan 2: mean {:>12.0}  p95 {:>12.0}", s2.mean, s2.p95);
    println!(
        "\nLEC plan is {:.1}% cheaper on average — the paper's claim, measured.",
        (1.0 - s2.mean / s1.mean) * 100.0
    );
}
