//! Cross-query subplan reuse: the dag-node-granularity cache in action.
//!
//! The serving layer's whole-request cache only helps when an *entire*
//! query is a renaming of one served before.  The subplan memo works a
//! level below: two different-shaped queries that merely overlap — here,
//! two 6-table chain windows sharing a 5-table subchain — reuse every DP
//! node their induced subqueries have in common, byte-identically.
//!
//! Run with `cargo run --release --example subplan_memo`.

use lec_core::search::SubplanMemo;
use lec_core::{Mode, Optimizer, SearchConfig};
use lec_plan::{ColumnRef, JoinPredicate, Query, QueryTable};
use lec_service::PlanServer;
use std::sync::Arc;

fn chain_window(ids: &[lec_catalog::TableId], lo: usize, len: usize) -> Query {
    Query {
        tables: ids[lo..lo + len]
            .iter()
            .map(|&t| QueryTable::bare(t))
            .collect(),
        joins: (0..len - 1)
            .map(|i| {
                JoinPredicate::exact(
                    ColumnRef::new(i, 1),
                    ColumnRef::new(i + 1, 0),
                    1e-5 * (lo + i + 1) as f64,
                )
            })
            .collect(),
        required_order: None,
    }
}

fn main() {
    // A 7-table chain catalog with strictly distinct statistics.
    let mut cat = lec_catalog::Catalog::new();
    let ids: Vec<_> = (0..7u64)
        .map(|i| {
            cat.add_table(
                format!("T{i}"),
                lec_catalog::TableStats::new(
                    900 * (i + 1),
                    40_000 * (i + 2),
                    vec![
                        lec_catalog::ColumnStats::plain("a", 50 + i),
                        lec_catalog::ColumnStats::plain("b", 90 + i),
                    ],
                ),
            )
        })
        .collect();
    let memory = lec_prob::presets::spread_family(500.0, 0.6, 4).unwrap();

    // Two different-shaped queries overlapping on tables 1..6.
    let qa = chain_window(&ids, 0, 6);
    let qb = chain_window(&ids, 1, 6);

    let memo = Arc::new(SubplanMemo::default());
    let assisted = Optimizer::new(&cat, memory.clone())
        .with_search_config(SearchConfig::serial())
        .with_subplan_memo(Arc::clone(&memo));
    let plain = Optimizer::new(&cat, memory.clone()).with_search_config(SearchConfig::serial());
    let mode = Mode::AlgorithmC;

    let first = assisted.optimize(&qa, &mode).unwrap();
    println!(
        "query A (tables 0-5): {} nodes, memo {} hits / {} misses",
        first.stats.nodes, first.stats.memo_hits, first.stats.memo_misses
    );

    let second = assisted.optimize(&qb, &mode).unwrap();
    println!(
        "query B (tables 1-6): {} nodes, memo {} hits / {} misses  \
         <- the shared 5-table subchain's {} subsets were not re-combined",
        second.stats.nodes,
        second.stats.memo_hits,
        second.stats.memo_misses,
        second.stats.memo_hits
    );
    assert!(
        second.stats.memo_hits > 0,
        "overlap must produce partial hits"
    );

    // Byte-identity: the memo changes work, never answers.
    let fresh = plain.optimize(&qb, &mode).unwrap();
    assert_eq!(fresh.plan, second.plan);
    assert_eq!(fresh.cost.to_bits(), second.cost.to_bits());
    assert_eq!(fresh.stats.evals, second.stats.evals);
    assert_eq!(fresh.stats.cache_hits, second.stats.cache_hits);
    println!(
        "byte-identical to a memo-free search: plan, cost bits, evals ({}), cache_hits ({})",
        second.stats.evals, second.stats.cache_hits
    );

    // The serving layer wires this up by default: a PlanServer's searches
    // share one memo, so even cold different-shaped requests reuse nodes.
    let mut server = PlanServer::new(&cat, memory);
    let a = server.serve(&qa, &mode).unwrap();
    let b = server.serve(&qb, &mode).unwrap();
    println!(
        "PlanServer: A {:?} ({} memo misses), B {:?} ({} memo hits)",
        a.decision, a.stats.memo_misses, b.decision, b.stats.memo_hits
    );
    assert!(
        b.stats.memo_hits > 0,
        "the server's memo must carry across requests"
    );
    println!(
        "metrics: {}",
        serde_json::to_string_pretty(&server.metrics_json()["memo"]).unwrap()
    );
}
