//! Breaking the table-count ceilings with branch-and-bound pruning.
//!
//! Two ceilings fall in this demo:
//!
//! 1. The *exhaustive verifier* refuses anything past 7 tables (or one
//!    million materialized plans) because plain keep-all holds every plan
//!    in memory.  With `SearchConfig::pruning` it becomes a streaming
//!    branch-and-bound verifier — candidates that provably cannot beat
//!    the incumbent are discarded on emission — and the same 8-table
//!    chain it refused now verifies the DP's answer exactly.
//!
//! 2. On a 15-table star, pruned keep-best discards whole connected
//!    subsets before their combine/cost loops: every subset that combines
//!    two expansive spokes without enough reductive ones carries an
//!    admissible size floor far above the incumbent.  The answer is
//!    byte-identical to the unpruned search — pruning only skips work
//!    that could not have changed it.
//!
//! Run with `cargo run --release --example large_join_pruning`.

use lec_core::fixtures::{pruning_chain, pruning_star};
use lec_core::{
    exhaustive_best, exhaustive_best_with, optimize_lec_static_with, Objective, SearchConfig,
};
use lec_cost::CostModel;

fn main() {
    let memory = lec_prob::presets::spread_family(400.0, 0.5, 4).unwrap();
    let pruned = SearchConfig::default().with_pruning(true);

    // --- Ceiling 1: the 7-table exhaustive cap. -------------------------
    let (cat, q) = pruning_chain(8);
    let model = CostModel::new(&cat, &q);
    let refused = exhaustive_best(&model, &Objective::Expected(&memory));
    println!(
        "8-table chain, plain exhaustive:  {}",
        refused
            .as_ref()
            .err()
            .map_or("(ran?!)".into(), |e| e.to_string())
    );
    assert!(
        refused.is_err(),
        "the unpruned verifier must refuse 8 tables"
    );

    let verified = exhaustive_best_with(&model, &Objective::Expected(&memory), &pruned)
        .expect("the streaming verifier handles 8 tables");
    let dp = optimize_lec_static_with(&model, &memory, &pruned).expect("keep-best");
    println!(
        "8-table chain, pruned verifier:   cost {:.0}, {} plans costed, {} subsets pruned",
        verified.cost,
        verified.plans_costed().unwrap_or(0),
        verified.stats.pruned_subsets,
    );
    assert_eq!(
        verified.cost.to_bits(),
        dp.cost.to_bits(),
        "the verifier and the DP must agree exactly"
    );

    // --- Ceiling 2: pruned keep-best on a 15-table star. ----------------
    let (cat, q) = pruning_star(15);
    let model = CostModel::new(&cat, &q);
    let unpruned = optimize_lec_static_with(&model, &memory, &SearchConfig::default())
        .expect("unpruned keep-best");
    let fast = optimize_lec_static_with(&model, &memory, &pruned).expect("pruned keep-best");
    println!(
        "15-table star, unpruned keep-best: cost {:.0}, {} nodes, {} candidates",
        unpruned.cost, unpruned.stats.nodes, unpruned.stats.candidates,
    );
    println!(
        "15-table star, pruned keep-best:   cost {:.0}, {} nodes, {} candidates, {} subsets pruned",
        fast.cost, fast.stats.nodes, fast.stats.candidates, fast.stats.pruned_subsets,
    );
    assert_eq!(
        unpruned.plan, fast.plan,
        "pruning must not change the chosen plan"
    );
    assert_eq!(
        unpruned.cost.to_bits(),
        fast.cost.to_bits(),
        "pruning must not change the cost, to the bit"
    );
    assert!(
        fast.stats.pruned_subsets > 0,
        "the star must actually trigger pruning"
    );
    assert!(
        fast.stats.candidates < unpruned.stats.candidates,
        "pruning must save combine work"
    );
    println!("answers byte-identical; pruning only removed work.");
}
