//! Breaking the table-count ceilings with branch-and-bound pruning.
//!
//! Three ceilings fall in this demo:
//!
//! 1. The *exhaustive verifier* refuses anything past 7 tables (or one
//!    million materialized plans) because plain keep-all holds every plan
//!    in memory.  With `SearchConfig::pruning` it becomes a streaming
//!    branch-and-bound verifier — candidates that provably cannot beat
//!    the incumbent are discarded on emission — and the same 8-table
//!    chain it refused now verifies the DP's answer exactly.
//!
//! 2. On a 15-table star, pruned keep-best discards whole connected
//!    subsets before their combine/cost loops: every subset that combines
//!    two expansive spokes without enough reductive ones carries an
//!    admissible size floor far above the incumbent.  The per-level trace
//!    shows where the discards land and how often the tiered check
//!    escalated from the cheap universal floor to the sharp per-edge one.
//!    The answer is byte-identical to the unpruned search — pruning only
//!    skips work that could not have changed it.
//!
//! 3. A 12-table *clique* — every pair joined, so every subset of every
//!    size is connected and the structural disconnected-subset discard
//!    never fires — completes under pruned keep-best with the bound tiers
//!    doing all the work.
//!
//! Run with `cargo run --release --example large_join_pruning`.

use std::sync::Arc;

use lec_core::fixtures::{pruning_chain, pruning_clique, pruning_star};
use lec_core::{
    exhaustive_best, exhaustive_best_with, optimize_lec_static_with, Objective, SearchConfig,
};
use lec_cost::CostModel;
use lec_telemetry::EngineTelemetry;

fn main() {
    let memory = lec_prob::presets::spread_family(400.0, 0.5, 4).unwrap();
    let pruned = SearchConfig::default().with_pruning(true);

    // --- Ceiling 1: the 7-table exhaustive cap. -------------------------
    let (cat, q) = pruning_chain(8);
    let model = CostModel::new(&cat, &q);
    let refused = exhaustive_best(&model, &Objective::Expected(&memory));
    println!(
        "8-table chain, plain exhaustive:  {}",
        refused
            .as_ref()
            .err()
            .map_or("(ran?!)".into(), |e| e.to_string())
    );
    assert!(
        refused.is_err(),
        "the unpruned verifier must refuse 8 tables"
    );

    let verified = exhaustive_best_with(&model, &Objective::Expected(&memory), &pruned)
        .expect("the streaming verifier handles 8 tables");
    let dp = optimize_lec_static_with(&model, &memory, &pruned).expect("keep-best");
    println!(
        "8-table chain, pruned verifier:   cost {:.0}, {} plans costed, {} subsets pruned",
        verified.cost,
        verified.plans_costed().unwrap_or(0),
        verified.stats.pruned_subsets,
    );
    assert_eq!(
        verified.cost.to_bits(),
        dp.cost.to_bits(),
        "the verifier and the DP must agree exactly"
    );

    // --- Ceiling 2: pruned keep-best on a 15-table star. ----------------
    let (cat, q) = pruning_star(15);
    let model = CostModel::new(&cat, &q);
    let unpruned = optimize_lec_static_with(&model, &memory, &SearchConfig::default())
        .expect("unpruned keep-best");
    let engine = Arc::new(EngineTelemetry::default());
    let traced = pruned.clone().with_telemetry(engine.clone());
    let fast = optimize_lec_static_with(&model, &memory, &traced).expect("pruned keep-best");
    println!(
        "15-table star, unpruned keep-best: cost {:.0}, {} nodes, {} candidates",
        unpruned.cost, unpruned.stats.nodes, unpruned.stats.candidates,
    );
    println!(
        "15-table star, pruned keep-best:   cost {:.0}, {} nodes, {} candidates, {} subsets pruned",
        fast.cost, fast.stats.nodes, fast.stats.candidates, fast.stats.pruned_subsets,
    );
    println!(
        "  bound tiers: {} sharp per-edge evals, {} cheap-floor-only checks",
        fast.stats.sharp_bound_evals, fast.stats.cheap_bound_skips,
    );
    println!("  level  pruned  sharp  cheap");
    for l in engine.level_prunes() {
        println!(
            "  {:>5}  {:>6}  {:>5}  {:>5}",
            l.level, l.pruned_subsets, l.sharp_bound_evals, l.cheap_bound_skips,
        );
    }
    let traced_total: u64 = engine.level_prunes().iter().map(|l| l.pruned_subsets).sum();
    assert_eq!(
        traced_total, fast.stats.pruned_subsets,
        "the per-level trace must account for every pruned subset"
    );
    assert_eq!(
        unpruned.plan, fast.plan,
        "pruning must not change the chosen plan"
    );
    assert_eq!(
        unpruned.cost.to_bits(),
        fast.cost.to_bits(),
        "pruning must not change the cost, to the bit"
    );
    assert!(
        fast.stats.pruned_subsets > 0,
        "the star must actually trigger pruning"
    );
    assert!(
        fast.stats.candidates < unpruned.stats.candidates,
        "pruning must save combine work"
    );

    // --- Ceiling 3: a 12-table clique, every subset connected. ----------
    let (cat, q) = pruning_clique(12);
    let model = CostModel::new(&cat, &q);
    let dense = optimize_lec_static_with(&model, &memory, &pruned).expect("pruned clique");
    println!(
        "12-table clique, pruned keep-best: cost {:.0}, {} nodes, {} subsets pruned, \
         {} sharp / {} cheap",
        dense.cost,
        dense.stats.nodes,
        dense.stats.pruned_subsets,
        dense.stats.sharp_bound_evals,
        dense.stats.cheap_bound_skips,
    );
    assert!(
        dense.stats.pruned_subsets > 0,
        "the clique must actually trigger pruning"
    );
    println!("answers byte-identical; pruning only removed work.");
}
