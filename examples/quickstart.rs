//! Quickstart: optimize one query under uncertainty, compare LSC and LEC.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use lec_qopt::catalog::{Catalog, ColumnStats, TableStats};
use lec_qopt::core::{Mode, Optimizer, PointEstimate};
use lec_qopt::cost::CostModel;
use lec_qopt::exec::{monte_carlo, Environment};
use lec_qopt::plan::{ColumnRef, JoinPredicate, Query, QueryTable};
use lec_qopt::prob::Distribution;

fn main() {
    // 1. A catalog with three tables.
    let mut catalog = Catalog::new();
    let orders = catalog.add_table(
        "orders",
        TableStats::new(
            80_000,
            4_000_000,
            vec![
                ColumnStats::plain("customer_id", 100_000),
                ColumnStats::plain("order_id", 4_000_000),
            ],
        ),
    );
    let lines = catalog.add_table(
        "lineitems",
        TableStats::new(
            300_000,
            24_000_000,
            vec![ColumnStats::plain("order_id", 4_000_000)],
        ),
    );
    let customers = catalog.add_table(
        "customers",
        TableStats::new(
            5_000,
            250_000,
            vec![ColumnStats::plain("customer_id", 100_000)],
        ),
    );

    // 2. A chain query: customers ⋈ orders ⋈ lineitems, ordered by order_id.
    let query = Query {
        tables: vec![
            QueryTable::bare(customers),
            QueryTable::bare(orders),
            QueryTable::bare(lines),
        ],
        joins: vec![
            // customers ⋈ orders keeps ~40k pages of orders ...
            JoinPredicate::exact(ColumnRef::new(0, 0), ColumnRef::new(1, 0), 1e-4),
            // ... and ⋈ lineitems yields a ~30k page result.
            JoinPredicate::exact(ColumnRef::new(1, 1), ColumnRef::new(2, 0), 2.5e-9),
        ],
        required_order: Some(ColumnRef::new(1, 1)),
    };

    // 3. What the optimizer believes about run-time memory: usually roomy,
    //    sometimes squeezed (a consolidation-era reality).
    let memory = Distribution::from_pairs([(300.0, 0.25), (1500.0, 0.75)]).unwrap();
    println!(
        "memory belief: {:?} (mean {:.0})",
        memory.support(),
        memory.mean()
    );

    let opt = Optimizer::new(&catalog, memory.clone());

    // 4. Optimize classically and with Algorithm C.
    let lsc = opt
        .optimize(&query, &Mode::Lsc(PointEstimate::Mean))
        .unwrap();
    let lec = opt.optimize(&query, &Mode::AlgorithmC).unwrap();

    println!("\nLSC plan (classical, costed at the mean):");
    print!("{}", lsc.plan);
    println!("LEC plan (Algorithm C):");
    print!("{}", lec.plan);

    // 5. Expected costs under the true distribution — the LEC objective.
    let ec_lsc = opt.expected_cost_of(&query, &lsc.plan);
    let ec_lec = opt.expected_cost_of(&query, &lec.plan);
    println!("\nexpected cost: LSC plan {ec_lsc:>14.0}");
    println!("expected cost: LEC plan {ec_lec:>14.0}");

    // 6. Confirm by simulation: 20,000 executions with memory drawn fresh
    //    each time.
    let model = CostModel::new(&catalog, &query);
    let env = Environment::Static(memory);
    let s_lsc = monte_carlo(&model, &lsc.plan, &env, 20_000, 42).unwrap();
    let s_lec = monte_carlo(&model, &lec.plan, &env, 20_000, 42).unwrap();
    println!("\nsimulated mean (20k runs): LSC {:>14.0}", s_lsc.mean);
    println!("simulated mean (20k runs): LEC {:>14.0}", s_lec.mean);
    println!(
        "\nLEC saves {:.1}% on average{}",
        (1.0 - s_lec.mean / s_lsc.mean) * 100.0,
        if lsc.plan == lec.plan {
            " (same plan here)"
        } else {
            ""
        }
    );
}
