//! The cross-query serving layer: a `PlanServer` answering a skewed
//! stream of optimization requests through the canonical-shape plan cache
//! and a persistent worker pool.
//!
//! Repeats and table-renamed copies of an already-optimized query shape
//! are answered by relabeling the cached plan — no dynamic programming at
//! all — while near-misses revalidate and genuinely new shapes recompute.
//! Every response is byte-identical to a fresh `Optimizer::optimize` of
//! the same request.
//!
//! ```text
//! cargo run --example plan_server --release
//! ```

use lec_qopt::catalog::CatalogGenerator;
use lec_qopt::core::{Mode, Optimizer};
use lec_qopt::plan::{QueryProfile, Topology, WorkloadGenerator};
use lec_qopt::prob::presets;
use lec_qopt::service::{CacheDecision, PlanServer};

fn main() {
    let mut gen = CatalogGenerator::new(42);
    let catalog = gen.generate(10);
    let mut wg = WorkloadGenerator::new(7);

    // Three base query shapes over the catalog.
    let base: Vec<_> = [Topology::Chain, Topology::Star, Topology::Random]
        .into_iter()
        .map(|topology| {
            let ids = gen.pick_tables(&catalog, 5);
            wg.gen_query(
                &catalog,
                &ids,
                &QueryProfile {
                    topology,
                    ..Default::default()
                },
            )
        })
        .collect();

    let memory = presets::spread_family(600.0, 0.6, 4).unwrap();
    let mut server = PlanServer::new(&catalog, memory.clone());
    let fresh = Optimizer::new(&catalog, memory);

    // A small skewed stream: each base shape repeatedly, under rotating
    // table renamings (the cache's bread and butter).
    let renamings: [&[usize]; 4] = [
        &[0, 1, 2, 3, 4],
        &[4, 3, 2, 1, 0],
        &[2, 0, 4, 1, 3],
        &[1, 4, 0, 3, 2],
    ];
    println!("serving a 24-request stream (3 shapes x 4 renamings x 2 rounds):\n");
    let mut served_us = 0.0;
    let mut computed_us = 0.0;
    for round in 0..2 {
        for (qi, q) in base.iter().enumerate() {
            for (ri, map) in renamings.iter().enumerate() {
                let request = q.relabel_tables(map);
                let resp = server.serve(&request, &Mode::AlgorithmC).unwrap();
                let us = resp.stats.elapsed.as_secs_f64() * 1e6;
                match resp.decision {
                    CacheDecision::Served => served_us += us,
                    _ => computed_us += us,
                }
                // Byte-identity check against a fresh, cache-free run.
                let check = fresh.optimize(&request, &Mode::AlgorithmC).unwrap();
                assert_eq!(resp.plan, check.plan, "served plan must match fresh");
                assert_eq!(resp.cost.to_bits(), check.cost.to_bits());
                if ri == 0 || round == 0 {
                    println!(
                        "  round {round} shape {qi} renaming {ri}: {:<12} {:>8.0}us  {}",
                        resp.decision.name(),
                        us,
                        resp.plan.compact()
                    );
                }
            }
        }
    }

    let stats = server.cache_stats();
    println!(
        "\ncache: {} served / {} revalidated / {} recomputed over {} lookups \
         (hit rate {:.0}%)",
        stats.served,
        stats.revalidated,
        stats.recomputed,
        stats.lookups,
        stats.hit_rate() * 100.0
    );
    println!(
        "mean latency: served {:.0}us vs computed {:.0}us",
        served_us / stats.served.max(1) as f64,
        computed_us / (stats.lookups - stats.served).max(1) as f64
    );
    println!("\nmetrics: {}", server.metrics_json());
    assert!(stats.served > stats.recomputed, "repeats must dominate");
}
