//! Closing the loop on §3.1's first question — "How do we get the
//! probability distributions?": observe memory traces the way a DBMS
//! would, fit a Markov chain and initial distribution, and optimize with
//! the fitted beliefs.
//!
//! ```text
//! cargo run --example observed_environment --release
//! ```

use lec_qopt::core::{fixtures, optimize_lec_dynamic};
use lec_qopt::cost::{expected_plan_cost_dynamic, CostModel};
use lec_qopt::prob::{fit, Distribution, MarkovChain, Rebucket};
use rand::SeedableRng;

fn main() {
    // The TRUE environment (unknown to the optimizer): memory decays.
    let states = vec![80.0, 240.0, 720.0, 2160.0];
    let truth_chain = MarkovChain::birth_death(states.clone(), 0.4, 0.15).unwrap();
    let truth_init = Distribution::bimodal(240.0, 2160.0, 0.75).unwrap();
    let init_probs = truth_chain.dist_to_probs(&truth_init).unwrap();

    // The DBMS logs per-phase memory for 60 past executions.
    let mut rng = rand::rngs::StdRng::seed_from_u64(31);
    let traces: Vec<Vec<f64>> = (0..60)
        .map(|_| truth_chain.sample_path(&init_probs, 6, &mut rng))
        .collect();
    println!("observed {} traces of 6 phases each", traces.len());

    // Fit states, chain, and initial distribution from the log.
    let pooled: Vec<f64> = traces.iter().flatten().copied().collect();
    let state_dist = fit::fit_distribution(&pooled, 4, Rebucket::EqualDepth).unwrap();
    let chain = fit::fit_markov(&traces, state_dist.support().to_vec()).unwrap();
    let initial = fit::fit_initial(&traces, &chain).unwrap();
    println!(
        "fitted states: {:?}",
        chain.states().iter().map(|s| s.round()).collect::<Vec<_>>()
    );
    println!(
        "fitted initial: {:?}",
        initial
            .iter()
            .map(|(v, p)| format!("{:.0}@{:.2}", v, p))
            .collect::<Vec<_>>()
    );

    // Optimize the three-table chain with fitted beliefs.
    let (catalog, query) = fixtures::three_chain();
    let model = CostModel::new(&catalog, &query);
    let fitted = optimize_lec_dynamic(&model, &initial, &chain).unwrap();
    let oracle = optimize_lec_dynamic(&model, &truth_init, &truth_chain).unwrap();

    // Judge both under the TRUE environment.
    let fitted_true_ec =
        expected_plan_cost_dynamic(&model, &fitted.plan, &truth_init, &truth_chain).unwrap();
    println!("\nplan from fitted beliefs: {}", fitted.plan.compact());
    println!("plan from the true model: {}", oracle.plan.compact());
    println!(
        "true expected cost, fitted-belief plan: {:>12.0}",
        fitted_true_ec
    );
    println!(
        "true expected cost, oracle plan:        {:>12.0}",
        oracle.cost
    );
    println!(
        "regret from estimation: {:.2}%",
        (fitted_true_ec / oracle.cost - 1.0) * 100.0
    );
}
