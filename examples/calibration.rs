//! Ground truth in the loop: audit an optimizer's predicted costs against
//! measured page I/O on a physical twin of the query.
//!
//! The calibrator scales the three-table chain down to an executable
//! replica (`rows = pages · page_cap`, page-exact selectivities), runs the
//! chosen plan through the real external operators at every memory bucket,
//! and pairs each plan node's prediction with what the buffer pool
//! actually charged.
//!
//! ```text
//! cargo run --example calibration --release
//! ```

use lec_qopt::core::{fixtures, Mode, Optimizer, PointEstimate};
use lec_qopt::exec::{CalibConfig, Calibrator, Environment};
use lec_qopt::prob::Distribution;
use lec_qopt::telemetry::{OpClass, Telemetry};

fn main() {
    let (catalog, query) = fixtures::three_chain();
    let cal = Calibrator::new(&catalog, &query, CalibConfig::default());
    let twin = cal.twin();
    println!("physical twin (page_cap 4, cap 32 pages):");
    for qt in &twin.query.tables {
        let stats = &twin.catalog.table(qt.table).stats;
        println!(
            "  {:<12} {:>3} pages, {:>4} rows",
            twin.catalog.table(qt.table).name,
            stats.pages,
            stats.rows
        );
    }

    // Memory is equally likely to be 4, 8 or 16 pages — deep spills
    // through mostly-fitting joins.
    let memory =
        Distribution::from_pairs([(4.0, 1.0 / 3.0), (8.0, 1.0 / 3.0), (16.0, 1.0 / 3.0)]).unwrap();
    let env = Environment::Static(memory.clone());
    let opt = Optimizer::new(&twin.catalog, memory);

    let tel = Telemetry::on();
    println!(
        "\n{:<10} {:>12} {:>12} {:>9}  plan",
        "mode", "predicted", "measured", "rel err"
    );
    for mode in [Mode::Lsc(PointEstimate::Mean), Mode::AlgorithmC] {
        let optimized = opt.optimize(&cal.twin().query, &mode).unwrap();
        let audit = cal.audit(&optimized.plan, &env, Some(&tel)).unwrap();
        println!(
            "{:<10} {:>12.1} {:>12.1} {:>8.1}%  {}",
            optimized.mode,
            audit.predicted_expected,
            audit.measured_expected,
            100.0 * audit.relative_error(),
            audit.plan
        );
    }

    // The full audit trace for the LEC plan, as sorted-key JSON.
    let optimized = opt.optimize(&cal.twin().query, &Mode::AlgorithmC).unwrap();
    let audit = cal.audit(&optimized.plan, &env, Some(&tel)).unwrap();
    println!("\nper-node audit of the LEC plan:");
    for node in &audit.nodes {
        println!(
            "  {:<6} class {:<12} phase {:<4} predicted {:>8.1} measured {:>8.1} ({} bp)",
            node.label,
            node.class.name(),
            node.phase.map_or("-".into(), |p| p.to_string()),
            node.predicted_expected,
            node.measured_expected,
            node.error_bp()
        );
    }
    println!("\nfull trace JSON:\n{}", audit.to_json());

    // Everything above also landed in the shared telemetry: calibration
    // histograms per operator class plus cumulative page I/O.
    println!("\ntelemetry calibration histograms:");
    for class in OpClass::all() {
        let snap = tel.calibration_snapshot(class);
        if snap.count() > 0 {
            println!(
                "  {:<12} {} samples, p50 error {} bp",
                class.name(),
                snap.count(),
                snap.quantile(0.5)
            );
        }
    }
    println!(
        "io totals: {} page reads, {} page writes",
        tel.io().reads(),
        tel.io().writes()
    );
}
