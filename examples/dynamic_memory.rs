//! Dynamic memory (§3.5): optimizing when memory drifts between execution
//! phases.  Compares LSC, static Algorithm C, and dynamic Algorithm C
//! under a birth–death Markov environment.
//!
//! ```text
//! cargo run --example dynamic_memory --release
//! ```

use lec_qopt::catalog::{Catalog, ColumnStats, TableStats};
use lec_qopt::core::{Mode, Optimizer, PointEstimate};
use lec_qopt::cost::CostModel;
use lec_qopt::exec::{monte_carlo, Environment};
use lec_qopt::plan::{ColumnRef, JoinPredicate, Query, QueryTable};
use lec_qopt::prob::{Distribution, MarkovChain};

fn main() {
    // A 4-way chain join: long enough that later phases matter.
    let mut catalog = Catalog::new();
    let sizes = [60_000u64, 20_000, 45_000, 90_000];
    let ids: Vec<_> = sizes
        .iter()
        .enumerate()
        .map(|(i, &pages)| {
            catalog.add_table(
                format!("R{i}"),
                TableStats::new(
                    pages,
                    pages * 40,
                    vec![ColumnStats::plain("a", 5000), ColumnStats::plain("b", 5000)],
                ),
            )
        })
        .collect();
    let query = Query {
        tables: ids.iter().map(|&id| QueryTable::bare(id)).collect(),
        joins: (0..3)
            .map(|i| {
                JoinPredicate::exact(
                    ColumnRef::new(i, 1),
                    ColumnRef::new(i + 1, 0),
                    1.2 / (sizes[i] as f64 * sizes[i + 1] as f64 / 20_000.0),
                )
            })
            .collect(),
        required_order: Some(ColumnRef::new(3, 0)),
    };

    // The environment: memory starts high but tends to decay as new work
    // arrives (down-moves more likely than up-moves).
    let states = vec![50.0, 150.0, 450.0, 1350.0];
    let chain = MarkovChain::birth_death(states.clone(), 0.45, 0.10).unwrap();
    let initial = Distribution::point(1350.0);
    println!("memory states {states:?}, start at 1350, p_down=0.45, p_up=0.10");
    let stationary = chain.stationary(1e-12, 100_000).unwrap();
    println!(
        "stationary distribution: {:?}",
        stationary
            .iter()
            .map(|(v, p)| format!("{v:.0}:{p:.2}"))
            .collect::<Vec<_>>()
    );

    let opt = Optimizer::new(&catalog, initial.clone());
    let lsc = opt
        .optimize(&query, &Mode::Lsc(PointEstimate::Mean))
        .unwrap();
    let stat = opt.optimize(&query, &Mode::AlgorithmC).unwrap();
    let dynm = opt
        .optimize(
            &query,
            &Mode::AlgorithmCDynamic {
                chain: chain.clone(),
            },
        )
        .unwrap();

    println!("\nLSC @ start value:    {}", lsc.plan.compact());
    println!("static Algorithm C:   {}", stat.plan.compact());
    println!("dynamic Algorithm C:  {}", dynm.plan.compact());

    // Measure all three in the *true* (drifting) environment.
    let model = CostModel::new(&catalog, &query);
    let env = Environment::Dynamic { initial, chain };
    println!("\nsimulated mean cost over 30,000 drifting executions:");
    for (name, plan) in [
        ("LSC", &lsc.plan),
        ("static LEC", &stat.plan),
        ("dynamic LEC", &dynm.plan),
    ] {
        let s = monte_carlo(&model, plan, &env, 30_000, 99).unwrap();
        println!("  {name:<12} mean {:>14.0}  (p95 {:>14.0})", s.mean, s.p95);
    }
    println!("\nTheorem 3.4: the dynamic variant is optimal for the drifting");
    println!("environment; the static variant optimizes for a world where the");
    println!("start-up distribution lasts forever.");
}
