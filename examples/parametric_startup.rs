//! Parametric LEC optimization (§3.2/§3.4 + [INSS92]): precompute LEC
//! plans for a coverage family of anticipated environments at compile
//! time, then pick by expected cost at start-up — "a simple table lookup".
//!
//! ```text
//! cargo run --example parametric_startup --release
//! ```

use lec_qopt::core::{coverage_family, fixtures, PlanCache};
use lec_qopt::cost::CostModel;
use lec_qopt::prob::presets;

fn main() {
    let (catalog, query) = fixtures::example_1_1();
    let model = CostModel::new(&catalog, &query);

    // Compile time: anticipate a grid of environments.
    let family = coverage_family(&[200.0, 700.0, 2000.0], &[0.0, 0.5], 4);
    let cache = PlanCache::precompute(&model, &family).unwrap();
    println!(
        "anticipated {} environments -> {} distinct cached plans:",
        family.len(),
        cache.len()
    );
    for (i, e) in cache.entries().iter().enumerate() {
        println!(
            "  [{i}] {:<22} optimized for mean memory {:>6.0}",
            e.plan.compact(),
            e.anticipated.mean()
        );
    }

    // Start-up time: environments the cache never saw.
    println!("\nstart-up lookups:");
    let startups = [
        (
            "tight bimodal (the paper's)",
            fixtures::example_1_1_memory(),
        ),
        (
            "scarce & volatile",
            presets::spread_family(350.0, 0.8, 6).unwrap(),
        ),
        (
            "plentiful & steady",
            presets::spread_family(2400.0, 0.1, 6).unwrap(),
        ),
        (
            "heavy-tailed",
            presets::zipf_over(&[150.0, 600.0, 2400.0], 1.2).unwrap(),
        ),
    ];
    for (name, actual) in startups {
        let choice = cache.choose(&model, &actual).unwrap();
        println!(
            "  {name:<28} -> entry [{}] {:<22} EC {:>12.0}  regret {:>6.2}%",
            choice.entry,
            choice.plan.compact(),
            choice.expected_cost,
            choice.regret * 100.0
        );
    }
    println!("\nRegret is against re-running Algorithm C from scratch; the cached");
    println!("lookup costs a handful of plan costings instead of a full DP.");
}
