//! Algorithm D (§3.6): selectivities as random variables.
//!
//! A classical optimizer collapses each selectivity to its mean; Algorithm D
//! carries a distribution per predicate, propagates result-*size*
//! distributions through the DP dag (Figure 1), and costs joins with the
//! linear-time expected-cost algorithms of §3.6.1/§3.6.2.
//!
//! ```text
//! cargo run --example uncertain_selectivity --release
//! ```

use lec_qopt::catalog::{Catalog, ColumnStats, TableStats};
use lec_qopt::core::{AlgDConfig, Mode, Optimizer, PointEstimate};
use lec_qopt::plan::{ColumnRef, JoinPredicate, Query, QueryTable};
use lec_qopt::prob::{presets, Distribution};

fn main() {
    let mut catalog = Catalog::new();
    let events = catalog.add_table(
        "events",
        TableStats::new(
            500_000,
            25_000_000,
            vec![
                ColumnStats::plain("user_id", 1_000_000),
                ColumnStats::plain("kind", 50),
            ],
        ),
    );
    let users = catalog.add_table(
        "users",
        TableStats::new(
            20_000,
            1_000_000,
            vec![ColumnStats::plain("user_id", 1_000_000)],
        ),
    );

    // The join selectivity is uncertain by an order of magnitude in each
    // direction — the situation §3.6 calls "notoriously uncertain".
    let mean_sel = 6000.0 / (500_000.0 * 20_000.0);
    let sel = presets::selectivity_band(mean_sel / 10.0, mean_sel * 10.0, 7).unwrap();
    println!(
        "join selectivity: {} buckets over [{:.2e}, {:.2e}], mean {:.2e}",
        sel.len(),
        sel.min_value(),
        sel.max_value(),
        sel.mean()
    );

    let query = Query {
        tables: vec![QueryTable::bare(events), QueryTable::bare(users)],
        joins: vec![JoinPredicate {
            left: ColumnRef::new(0, 0),
            right: ColumnRef::new(1, 0),
            selectivity: sel,
        }],
        required_order: Some(ColumnRef::new(0, 0)),
    };

    let memory = Distribution::from_pairs([(400.0, 0.3), (1200.0, 0.7)]).unwrap();
    let opt = Optimizer::new(&catalog, memory);

    // Classical: mean memory AND mean selectivity.
    let lsc = opt
        .optimize(&query, &Mode::Lsc(PointEstimate::Mean))
        .unwrap();
    // Algorithm C: memory distribution, point selectivity (the mean).
    let alg_c = opt.optimize(&query, &Mode::AlgorithmC).unwrap();
    // Algorithm D: both distributions.
    let alg_d = opt
        .optimize(
            &query,
            &Mode::AlgorithmD {
                config: AlgDConfig::default(),
            },
        )
        .unwrap();

    println!("\n{:<28} {:>30} {:>16}", "optimizer", "plan", "objective");
    for r in [&lsc, &alg_c, &alg_d] {
        println!("{:<28} {:>30} {:>16.0}", r.mode, r.plan.compact(), r.cost);
    }
    println!();
    println!("Algorithm C prices the sort of the result at its MEAN size;");
    println!("Algorithm D prices it against the whole size distribution, so a");
    println!("heavy upper tail (large possible results) raises the expected");
    println!("sort cost and can flip the plan choice toward sort-free plans.");
}
