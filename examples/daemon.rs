//! The network daemon: `lec-serviced` wraps one `ConcurrentPlanServer`
//! behind a length-prefixed binary protocol, here served over a real
//! Unix socket in a temp directory.
//!
//! Two clients connect.  One pumps single requests through the retrying
//! `optimize` call; the other pipelines a whole batch in one write.
//! Every response that crosses the wire is decoded and checked
//! byte-identical to a fresh in-process `Optimizer::optimize` of the
//! same request.  A control client then fetches the merged
//! service+daemon metrics and asks the daemon to drain; `run` returns a
//! `DrainReport` once the last in-flight request finishes.
//!
//! ```text
//! cargo run --example daemon --release
//! ```

use std::os::unix::net::{UnixListener, UnixStream};

use lec_qopt::catalog::CatalogGenerator;
use lec_qopt::core::{Mode, Optimizer};
use lec_qopt::plan::{Query, QueryProfile, WorkloadGenerator};
use lec_qopt::prob::presets;
use lec_qopt::service::ConcurrentPlanServer;
use lec_qopt::serviced::{Client, Daemon, DaemonConfig, UnixAcceptor};

const ROUNDS: usize = 3;

fn main() {
    let mut gen = CatalogGenerator::new(42);
    let catalog = gen.generate(10);
    let mut wg = WorkloadGenerator::new(7);
    let queries: Vec<Query> = (0..4)
        .map(|_| {
            let ids = gen.pick_tables(&catalog, 4);
            wg.gen_query(&catalog, &ids, &QueryProfile::default())
        })
        .collect();

    let memory = presets::spread_family(600.0, 0.6, 4).unwrap();
    let server = ConcurrentPlanServer::new(&catalog, memory.clone());
    let fresh = Optimizer::new(&catalog, memory);

    // A real Unix socket: the same bytes a cross-process client would see.
    let path = std::env::temp_dir().join(format!("lec-daemon-example-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let listener = UnixAcceptor::new(UnixListener::bind(&path).unwrap()).unwrap();
    let daemon = Daemon::new(&server, DaemonConfig::default());

    let report = std::thread::scope(|scope| {
        let handle = scope.spawn(|| daemon.run(&listener));

        // Client 0: one request at a time, transient refusals retried
        // with jittered backoff (none expected at this load).
        let dial = || Box::new(UnixStream::connect(&path).unwrap());
        let mut single = Client::new(dial(), 0xA11CE);
        let mut served = 0usize;
        for round in 0..ROUNDS {
            for (k, q) in queries.iter().enumerate() {
                let id = (round * queries.len() + k) as u64;
                let resp = single.optimize(id, &Mode::AlgorithmC, q).unwrap();
                let check = fresh.optimize(q, &Mode::AlgorithmC).unwrap();
                assert_eq!(resp.plan, check.plan, "wire plan must match fresh");
                assert_eq!(resp.cost.to_bits(), check.cost.to_bits());
                served += 1;
                if round == 0 {
                    println!(
                        "  single #{id}: {:<12} {:>8.0}us  {}",
                        resp.decision.name(),
                        resp.stats.elapsed.as_secs_f64() * 1e6,
                        resp.plan.compact()
                    );
                }
            }
        }

        // Client 1: the whole warm stream as one pipelined batch — one
        // write, N in-order replies.
        let mut batcher = Client::new(dial(), 0xB47C4);
        let batch: Vec<_> = queries
            .iter()
            .enumerate()
            .map(|(k, q)| (1000 + k as u64, Mode::AlgorithmC, q.clone()))
            .collect();
        for outcome in batcher.optimize_batch(&batch).unwrap() {
            let resp = outcome.expect("warm batch request refused");
            assert!(resp.stats.elapsed.as_secs_f64() < 1.0);
            served += 1;
        }
        println!("\nbatched {} warm requests in one write", batch.len());

        // Control client: metrics, then drain.  DRAIN_OK acknowledges;
        // the daemon finishes in-flight work and `run` returns.
        let mut ctl = Client::new(dial(), 0xC7A1);
        let metrics = ctl.metrics().unwrap();
        assert!(metrics.contains("\"daemon\"") && metrics.contains("\"service\""));
        ctl.drain().unwrap();
        let report = handle.join().unwrap();
        println!("served {served} requests over the socket");
        report
    });
    let _ = std::fs::remove_file(&path);

    println!(
        "drained in {:.1}ms ({} forced aborts)",
        report.drain_duration.as_secs_f64() * 1e3,
        report.forced_aborts
    );
    println!("\nmetrics at drain: {}", report.metrics);

    let m = &report.metrics["daemon"];
    assert_eq!(m["requests_ok"].as_f64(), Some((ROUNDS * 4 + 4) as f64));
    assert_eq!(m["requests_err"].as_f64(), Some(0.0));
    assert_eq!(m["shed_requests"].as_f64(), Some(0.0));
    assert_eq!(m["connections_active"].as_f64(), Some(0.0));
}
