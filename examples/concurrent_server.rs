//! The concurrent serving front end: one `ConcurrentPlanServer` shared by
//! four client threads through `&self` (the `Arc` multi-client pattern).
//!
//! The plan cache is lock-striped so warm hits from different clients
//! never serialize behind a global lock, and concurrent misses on the
//! same canonical shape *coalesce*: one leader runs the DP, the other
//! clients block on it and get the canonical answer relabeled into their
//! own table numbering (`CacheDecision::Coalesced`).  Every response —
//! whatever the interleaving — is byte-identical to a fresh
//! `Optimizer::optimize` of the same request.
//!
//! ```text
//! cargo run --example concurrent_server --release
//! ```

use std::sync::Arc;

use lec_qopt::catalog::CatalogGenerator;
use lec_qopt::core::{Mode, Optimizer};
use lec_qopt::plan::{Query, QueryProfile, Topology, WorkloadGenerator};
use lec_qopt::prob::presets;
use lec_qopt::service::{CacheDecision, ConcurrentPlanServer};

const CLIENTS: usize = 4;

fn main() {
    let mut gen = CatalogGenerator::new(42);
    let catalog = gen.generate(12);
    let mut wg = WorkloadGenerator::new(7);

    // Three base query shapes over the catalog.
    let base: Vec<_> = [Topology::Chain, Topology::Star, Topology::Random]
        .into_iter()
        .map(|topology| {
            let ids = gen.pick_tables(&catalog, 5);
            wg.gen_query(
                &catalog,
                &ids,
                &QueryProfile {
                    topology,
                    ..Default::default()
                },
            )
        })
        .collect();

    // Each client's stream: every shape under its own renaming, repeated
    // — so the clients keep racing onto the same canonical shapes.
    let renamings: [&[usize]; CLIENTS] = [
        &[0, 1, 2, 3, 4],
        &[4, 3, 2, 1, 0],
        &[2, 0, 4, 1, 3],
        &[1, 4, 0, 3, 2],
    ];
    let streams: Vec<Vec<Query>> = renamings
        .iter()
        .map(|map| {
            let mut s = Vec::new();
            for _ in 0..3 {
                for q in &base {
                    s.push(q.relabel_tables(map));
                }
            }
            s
        })
        .collect();

    let memory = presets::spread_family(600.0, 0.6, 4).unwrap();
    let server = Arc::new(ConcurrentPlanServer::new(&catalog, memory.clone()));
    let fresh = Optimizer::new(&catalog, memory);

    println!(
        "serving {} requests from {CLIENTS} concurrent clients \
         (3 shapes x {CLIENTS} renamings x 3 rounds):\n",
        streams.iter().map(Vec::len).sum::<usize>()
    );

    std::thread::scope(|scope| {
        for (client, stream) in streams.iter().enumerate() {
            let server = Arc::clone(&server);
            let fresh = &fresh;
            scope.spawn(move || {
                for q in stream {
                    let resp = server.serve(q, &Mode::AlgorithmC).unwrap();
                    // Byte-identity check against a fresh, cache-free run
                    // of this client's own request.
                    let check = fresh.optimize(q, &Mode::AlgorithmC).unwrap();
                    assert_eq!(resp.plan, check.plan, "served plan must match fresh");
                    assert_eq!(resp.cost.to_bits(), check.cost.to_bits());
                    if resp.decision != CacheDecision::Served {
                        println!(
                            "  client {client}: {:<12} {:>8.0}us  {}",
                            resp.decision.name(),
                            resp.stats.elapsed.as_secs_f64() * 1e6,
                            resp.plan.compact()
                        );
                    }
                }
            });
        }
    });

    let stats = server.cache_stats();
    println!(
        "\ncache: {} served / {} coalesced / {} revalidated / {} recomputed \
         over {} lookups (hit rate {:.0}%)",
        stats.served,
        stats.coalesced_followers,
        stats.revalidated,
        stats.recomputed,
        stats.lookups,
        stats.hit_rate() * 100.0
    );
    println!("\nmetrics: {}", server.metrics_json());

    // Every response resolved to exactly one decision, and however the
    // clients interleaved, each distinct shape ran at most one search.
    assert_eq!(
        stats.served + stats.coalesced_followers + stats.revalidated + stats.recomputed,
        stats.lookups,
        "decision accounting must close"
    );
    assert!(
        stats.recomputed + stats.revalidated <= base.len() as u64,
        "at most one search per distinct canonical shape"
    );
    assert!(stats.served > 0, "repeats must be served from cache");
}
