//! §3.7 in action: how the number and placement of buckets affects LEC
//! plan quality and optimization effort — the experiment the authors say
//! their prototype "will also be useful to investigate".
//!
//! ```text
//! cargo run --example bucketing_ablation --release
//! ```

use lec_qopt::core::{
    bucketize, fixtures, query_memory_breakpoints, BucketStrategy, Mode, Optimizer,
};
use lec_qopt::cost::{expected_plan_cost_static, CostModel};
use lec_qopt::prob::Distribution;

fn main() {
    let (catalog, query) = fixtures::example_1_1();
    let model = CostModel::new(&catalog, &query);

    // The "true" environment: a fine-grained distribution over 100..2600
    // pages that straddles every cliff of the example (633, 1000, ...).
    let truth: Distribution = lec_qopt::prob::presets::uniform_grid(100.0, 2600.0, 126).unwrap();
    println!(
        "truth: {} buckets over [{:.0}, {:.0}], mean {:.0}\n",
        truth.len(),
        truth.min_value(),
        truth.max_value(),
        truth.mean()
    );

    let breakpoints = query_memory_breakpoints(&model);
    println!(
        "query cost cliffs at: {:?}\n",
        breakpoints.iter().map(|b| b.round()).collect::<Vec<_>>()
    );

    println!(
        "{:<12} {:>3} {:>16} {:>14} {:>10}",
        "strategy", "b", "plan", "true EC", "evals"
    );
    for strategy in [
        BucketStrategy::EqualWidth,
        BucketStrategy::EqualDepth,
        BucketStrategy::LevelSet,
    ] {
        for b in [1usize, 2, 3, 5, 10, 20] {
            let belief = bucketize(&truth, b, strategy, &breakpoints);
            let opt = Optimizer::new(&catalog, belief);
            let r = opt.optimize(&query, &Mode::AlgorithmC).unwrap();
            // Judge the chosen plan under the *true* distribution.
            let true_ec = expected_plan_cost_static(&model, &r.plan, &truth);
            println!(
                "{:<12} {:>3} {:>16} {:>14.0} {:>10}",
                format!("{strategy:?}"),
                b,
                r.plan.compact(),
                true_ec,
                r.stats.evals
            );
        }
    }
    println!();
    println!("b = 1 is the classical optimizer (every strategy collapses to the");
    println!("mean).  Level-set buckets reach the good plan with fewer buckets");
    println!("because their boundaries sit exactly on the cost cliffs.");
}
