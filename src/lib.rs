//! # lec-qopt — Least Expected Cost query optimization
//!
//! A from-scratch reproduction of Chu, Halpern & Seshadri,
//! *"Least Expected Cost Query Optimization: An Exercise in Utility"*
//! (PODS 1999, arXiv cs/9909016), as a Rust workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`prob`] | bucketed distributions, prefix tables, Markov memory chains |
//! | [`catalog`] | table statistics and synthetic catalogs |
//! | [`plan`] | queries, order properties, physical plans, workloads |
//! | [`cost`] | the paper's I/O cost formulas and expected-cost algorithms |
//! | [`core`] | LSC baseline and Algorithms A, B, C, D; bucketing; ground truth |
//! | [`service`] | cross-query serving: canonical-shape plan cache + persistent worker pool |
//! | [`serviced`] | hardened network daemon: wire protocol, admission control, graceful drain, fault injection |
//! | [`exec`] | Monte-Carlo simulation, buffer-pool operators, tuple executor, cost-calibration observatory |
//! | [`telemetry`] | lock-free histograms, request tracing, calibration-error and I/O counters |
//!
//! This facade crate re-exports the public APIs and hosts the runnable
//! examples (`examples/`) and workspace integration tests (`tests/`).
//!
//! ## Ten-second tour
//!
//! ```
//! use lec_qopt::core::{fixtures, Mode, Optimizer, PointEstimate};
//!
//! let (catalog, query) = fixtures::example_1_1();
//! let opt = Optimizer::new(&catalog, fixtures::example_1_1_memory());
//! let lsc = opt.optimize(&query, &Mode::Lsc(PointEstimate::Mode)).unwrap();
//! let lec = opt.optimize(&query, &Mode::AlgorithmC).unwrap();
//! // The paper's Example 1.1: the optimizer that reasons about the
//! // distribution chooses a different — and in expectation cheaper — plan.
//! assert_ne!(lsc.plan, lec.plan);
//! assert!(opt.expected_cost_of(&query, &lec.plan)
//!       < opt.expected_cost_of(&query, &lsc.plan));
//! ```

pub use lec_catalog as catalog;
pub use lec_core as core;
pub use lec_cost as cost;
pub use lec_exec as exec;
pub use lec_plan as plan;
pub use lec_prob as prob;
pub use lec_service as service;
pub use lec_serviced as serviced;
pub use lec_telemetry as telemetry;
