//! CI smoke: assert a Prometheus exposition parses line-by-line.
//!
//! With a file argument, parses that file (the snapshot a bench run wrote).
//! Without arguments, generates a live exposition from an exercised
//! `Telemetry` and parses that — so the step works even before any bench
//! has produced a snapshot.

use lec_telemetry::{parse_prometheus, Outcome, Stage, Telemetry};

fn main() {
    let (source, text) = match std::env::args().nth(1) {
        Some(path) => {
            let text =
                std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
            (path, text)
        }
        None => {
            let t = Telemetry::on();
            for i in 0..1000u64 {
                t.record_outcome(Outcome::Served, 10_000 + i * 37);
            }
            t.record_outcome(Outcome::Shed, 900);
            let mut ctx = t.trace_ctx(1);
            ctx.span_with(Stage::Search, 0, 5_000_000, 0);
            t.finish_request(&ctx, Outcome::Fresh);
            ("<generated>".to_string(), t.prometheus())
        }
    };

    let samples = match parse_prometheus(&text) {
        Ok(s) => s,
        Err(e) => panic!("prometheus exposition from {source} failed to parse: {e}"),
    };
    assert!(
        !samples.is_empty(),
        "exposition from {source} contained no samples"
    );
    for s in &samples {
        assert!(s.value.is_finite(), "non-finite value in {}", s.name);
    }
    println!(
        "prom_parse: OK ({} samples from {source}, {} distinct metrics)",
        samples.len(),
        {
            let mut names: Vec<&str> = samples.iter().map(|s| s.name.as_str()).collect();
            names.sort_unstable();
            names.dedup();
            names.len()
        }
    );
}
