//! Prometheus-style text exposition: a writer for `name{label="v"} value`
//! lines and a strict line-by-line parser used by tests and the CI smoke
//! step to assert every emitted line is well-formed.

/// One parsed sample line.
#[derive(Clone, Debug, PartialEq)]
pub struct PromSample {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

/// Append one exposition line. `labels` are emitted in the given order;
/// callers keep them sorted so output is deterministic.
pub fn write_sample(out: &mut String, name: &str, labels: &[(&str, &str)], value: f64) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            for c in v.chars() {
                match c {
                    '\\' => out.push_str("\\\\"),
                    '"' => out.push_str("\\\""),
                    '\n' => out.push_str("\\n"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    // Prometheus floats: integral values print without a fraction.
    if value.fract() == 0.0 && value.abs() < 1e15 {
        out.push_str(&format!("{}", value as i64));
    } else {
        out.push_str(&format!("{value}"));
    }
    out.push('\n');
}

fn valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Parse a full exposition. Every non-empty, non-comment line must be a
/// well-formed sample (valid metric name, quoted label values, numeric
/// value) or the whole parse fails with a line-numbered error.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_line(line).map_err(|e| format!("line {}: {e}: {line:?}", lineno + 1))?);
    }
    Ok(out)
}

fn parse_line(line: &str) -> Result<PromSample, String> {
    let (head, value_str) = match line.find('}') {
        Some(close) => {
            let rest = line[close + 1..].trim_start();
            (&line[..close + 1], rest)
        }
        None => {
            let sp = line.find(' ').ok_or("missing value")?;
            (&line[..sp], line[sp + 1..].trim_start())
        }
    };
    let (name, labels) = match head.find('{') {
        Some(open) => {
            if !head.ends_with('}') {
                return Err("unterminated label set".into());
            }
            (
                &head[..open],
                parse_labels(&head[open + 1..head.len() - 1])?,
            )
        }
        None => (head, Vec::new()),
    };
    if !valid_name(name) {
        return Err(format!("invalid metric name {name:?}"));
    }
    if value_str.is_empty() {
        return Err("missing value".into());
    }
    let value: f64 = value_str
        .parse()
        .map_err(|_| format!("non-numeric value {value_str:?}"))?;
    Ok(PromSample {
        name: name.to_string(),
        labels,
        value,
    })
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = body.char_indices().peekable();
    let mut key_start = 0usize;
    loop {
        // Find `key="` then scan the quoted value honoring escapes.
        let eq = loop {
            match chars.next() {
                Some((i, '=')) => break i,
                Some((_, _)) => {}
                None => {
                    if body[key_start..].trim().is_empty() && labels.is_empty() && key_start == 0 {
                        return if body.trim().is_empty() {
                            Ok(labels)
                        } else {
                            Err("malformed label".into())
                        };
                    }
                    if body[key_start..].trim().is_empty() {
                        return Ok(labels);
                    }
                    return Err("label without value".into());
                }
            }
        };
        let key = body[key_start..eq].trim();
        if !valid_name(key) {
            return Err(format!("invalid label name {key:?}"));
        }
        match chars.next() {
            Some((_, '"')) => {}
            _ => return Err("label value not quoted".into()),
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                Some((_, '\\')) => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, c)) => value.push(c),
                    None => return Err("dangling escape".into()),
                },
                Some((_, '"')) => break,
                Some((_, c)) => value.push(c),
                None => return Err("unterminated label value".into()),
            }
        }
        labels.push((key.to_string(), value));
        match chars.next() {
            Some((i, ',')) => key_start = i + 1,
            None => return Ok(labels),
            Some((_, c)) => return Err(format!("expected ',' between labels, got {c:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_samples() {
        let mut text = String::new();
        write_sample(
            &mut text,
            "lec_requests_total",
            &[("outcome", "served")],
            42.0,
        );
        write_sample(
            &mut text,
            "lec_request_latency_ns",
            &[("outcome", "shed"), ("quantile", "0.99")],
            123456.0,
        );
        write_sample(&mut text, "lec_trace_dropped_events", &[], 0.0);
        write_sample(&mut text, "lec_mean", &[], 1.5);
        let parsed = parse_prometheus(&text).expect("parses");
        assert_eq!(parsed.len(), 4);
        assert_eq!(parsed[0].name, "lec_requests_total");
        assert_eq!(parsed[0].labels, vec![("outcome".into(), "served".into())]);
        assert_eq!(parsed[0].value, 42.0);
        assert_eq!(parsed[1].labels.len(), 2);
        assert_eq!(parsed[3].value, 1.5);
    }

    #[test]
    fn escaped_label_values_roundtrip() {
        let mut text = String::new();
        write_sample(&mut text, "m", &[("k", "a\"b\\c\nd")], 1.0);
        let parsed = parse_prometheus(&text).expect("parses");
        assert_eq!(parsed[0].labels[0].1, "a\"b\\c\nd");
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_prometheus("9bad_name 1").is_err());
        assert!(parse_prometheus("name_only").is_err());
        assert!(parse_prometheus("name abc").is_err());
        assert!(parse_prometheus("name{k=v} 1").is_err());
        assert!(parse_prometheus("name{k=\"v\" 1").is_err());
        assert!(parse_prometheus("# comment\n\nok_name 3").unwrap().len() == 1);
    }
}
