//! Per-request tracing: stack-owned span collection plus a lock-free
//! bounded ring that retains recently finished traces.
//!
//! A [`TraceCtx`] lives on the request's stack and accumulates up to
//! [`MAX_SPANS`] fixed-size span records — no heap allocation anywhere on
//! the request path. When the request finishes, the context is published
//! into a [`TraceRing`]: a set of per-thread seqlock segments where each
//! writer claims a slot with one `fetch_add` and drop-oldest semantics.
//! Readers validate each slot's sequence word before and after copying it
//! out, so a torn (concurrently overwritten) record is discarded rather
//! than surfaced.

use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use serde_json::{json, Value};

/// Maximum spans retained per request; later spans are counted but dropped.
pub const MAX_SPANS: usize = 8;

/// Instrumented request stages, in rough pipeline order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Stage {
    /// Wire frame parse (daemon only).
    Decode = 0,
    /// Admission-gate decision for cold (cache-miss) work.
    Admission = 1,
    /// Canonicalization + exact-cache probe.
    CacheProbe = 2,
    /// Blocking on another request's in-flight computation.
    CoalesceWait = 3,
    /// The DP search itself; `detail` packs memo hits (high 32 bits) and
    /// pruned subsets (low 32 bits).
    Search = 4,
    /// Response encode + flush (daemon only).
    Flush = 5,
}

impl Stage {
    pub fn name(self) -> &'static str {
        match self {
            Stage::Decode => "decode",
            Stage::Admission => "admission",
            Stage::CacheProbe => "cache_probe",
            Stage::CoalesceWait => "coalesce_wait",
            Stage::Search => "search",
            Stage::Flush => "flush",
        }
    }

    fn from_u8(v: u8) -> Option<Stage> {
        Some(match v {
            0 => Stage::Decode,
            1 => Stage::Admission,
            2 => Stage::CacheProbe,
            3 => Stage::CoalesceWait,
            4 => Stage::Search,
            5 => Stage::Flush,
            _ => return None,
        })
    }
}

/// One typed span event: stage, start offset from request epoch, duration,
/// and a stage-specific detail word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    pub stage: Stage,
    pub start_ns: u64,
    pub dur_ns: u64,
    pub detail: u64,
}

/// Stack-owned span accumulator carried by a request. A disabled context
/// never touches the clock, so the instrumented path degrades to a handful
/// of predictable branches when telemetry is off.
#[derive(Clone, Debug)]
pub struct TraceCtx {
    enabled: bool,
    request_id: u64,
    epoch: Instant,
    n: u8,
    truncated: u8,
    spans: [Span; MAX_SPANS],
}

const ZERO_SPAN: Span = Span {
    stage: Stage::Decode,
    start_ns: 0,
    dur_ns: 0,
    detail: 0,
};

impl TraceCtx {
    /// An active context whose epoch is "now".
    pub fn new(request_id: u64) -> TraceCtx {
        TraceCtx::starting_at(request_id, Instant::now())
    }

    /// An active context with an explicit epoch — used when timing started
    /// before the request id was known (e.g. frame decode).
    pub fn starting_at(request_id: u64, epoch: Instant) -> TraceCtx {
        TraceCtx {
            enabled: true,
            request_id,
            epoch,
            n: 0,
            truncated: 0,
            spans: [ZERO_SPAN; MAX_SPANS],
        }
    }

    /// A no-op context: every method is a branch on `enabled` and returns
    /// immediately.  Construction reads the clock once per process (a
    /// cached epoch), so putting one on every untraced request is free.
    pub fn disabled() -> TraceCtx {
        static EPOCH: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
        TraceCtx {
            enabled: false,
            request_id: 0,
            // Never read on the disabled path; any fixed Instant works.
            epoch: *EPOCH.get_or_init(Instant::now),
            n: 0,
            truncated: 0,
            spans: [ZERO_SPAN; MAX_SPANS],
        }
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    pub fn request_id(&self) -> u64 {
        self.request_id
    }

    /// Nanoseconds since the request epoch; 0 when disabled (no clock read).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        if !self.enabled {
            return 0;
        }
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Append a span that started at `start_ns` (from [`Self::now_ns`]) and
    /// ends now.
    #[inline]
    pub fn span(&mut self, stage: Stage, start_ns: u64, detail: u64) {
        if !self.enabled {
            return;
        }
        let end = self.now_ns();
        self.push(Span {
            stage,
            start_ns,
            dur_ns: end.saturating_sub(start_ns),
            detail,
        });
    }

    /// Append a fully specified span (caller measured the duration).
    #[inline]
    pub fn span_with(&mut self, stage: Stage, start_ns: u64, dur_ns: u64, detail: u64) {
        if !self.enabled {
            return;
        }
        self.push(Span {
            stage,
            start_ns,
            dur_ns,
            detail,
        });
    }

    fn push(&mut self, s: Span) {
        if (self.n as usize) < MAX_SPANS {
            self.spans[self.n as usize] = s;
            self.n += 1;
        } else {
            self.truncated = self.truncated.saturating_add(1);
        }
    }

    pub fn spans(&self) -> &[Span] {
        &self.spans[..self.n as usize]
    }

    pub fn truncated(&self) -> u8 {
        self.truncated
    }
}

/// A finished trace decoded back out of the ring.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    pub request_id: u64,
    pub outcome: u8,
    pub total_ns: u64,
    pub spans: Vec<Span>,
}

impl TraceRecord {
    pub fn to_json(&self, outcome_name: &str) -> Value {
        let spans: Vec<Value> = self
            .spans
            .iter()
            .map(|s| {
                json!({
                    "detail": s.detail as f64,
                    "dur_ns": s.dur_ns as f64,
                    "stage": s.stage.name(),
                    "start_ns": s.start_ns as f64,
                })
            })
            .collect();
        json!({
            "outcome": outcome_name,
            "request_id": self.request_id as f64,
            "spans": spans,
            "total_ns": self.total_ns as f64,
        })
        .sorted()
    }
}

// Slot layout: 3 header words (request_id; outcome|n|truncated packed;
// total_ns) + MAX_SPANS * 3 span words ([stage<<56 | start_ns], dur, detail).
const SLOT_WORDS: usize = 3 + MAX_SPANS * 3;

struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; SLOT_WORDS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

struct Segment {
    head: AtomicU64,
    slots: Vec<Slot>,
}

/// Lock-free bounded trace store: writers append with one `fetch_add` per
/// record (drop-oldest on wrap), readers seqlock-validate each slot.
pub struct TraceRing {
    segments: Vec<Segment>,
}

// Assigns each OS thread a stable small ordinal so it always publishes into
// the same segment of every ring, keeping same-segment writer races to the
// pathological full-ring-lap case (which the seqlock still detects).
static THREAD_COUNTER: AtomicUsize = AtomicUsize::new(0);
thread_local! {
    static THREAD_ORDINAL: usize = THREAD_COUNTER.fetch_add(1, Ordering::Relaxed);
}

impl TraceRing {
    pub fn new(segments: usize, slots_per_segment: usize) -> TraceRing {
        let segments = segments.max(1);
        let slots_per_segment = slots_per_segment.max(1);
        TraceRing {
            segments: (0..segments)
                .map(|_| Segment {
                    head: AtomicU64::new(0),
                    slots: (0..slots_per_segment).map(|_| Slot::new()).collect(),
                })
                .collect(),
        }
    }

    /// Publish a finished trace. Lock-free; overwrites the oldest record in
    /// this thread's segment when full.
    pub fn push(&self, ctx: &TraceCtx, outcome: u8, total_ns: u64) {
        let seg = &self.segments[THREAD_ORDINAL.with(|o| *o) % self.segments.len()];
        let cap = seg.slots.len() as u64;
        let idx = seg.head.fetch_add(1, Ordering::Relaxed);
        let slot = &seg.slots[(idx % cap) as usize];
        // Seqlock write: odd claim, write words, even release. The release
        // CAS fails if another writer lapped us mid-write, leaving the slot
        // marked dirty (odd) so readers discard it instead of seeing a torn
        // record.
        let claim = idx * 2 + 1;
        slot.seq.store(claim, Ordering::Relaxed);
        fence(Ordering::Release);
        let spans = ctx.spans();
        let meta =
            (outcome as u64) | ((spans.len() as u64) << 8) | ((ctx.truncated() as u64) << 16);
        slot.words[0].store(ctx.request_id(), Ordering::Relaxed);
        slot.words[1].store(meta, Ordering::Relaxed);
        slot.words[2].store(total_ns, Ordering::Relaxed);
        for (i, s) in spans.iter().enumerate() {
            let base = 3 + i * 3;
            let stage_start = ((s.stage as u64) << 56) | (s.start_ns & ((1u64 << 56) - 1));
            slot.words[base].store(stage_start, Ordering::Relaxed);
            slot.words[base + 1].store(s.dur_ns, Ordering::Relaxed);
            slot.words[base + 2].store(s.detail, Ordering::Relaxed);
        }
        let _ = slot
            .seq
            .compare_exchange(claim, claim + 1, Ordering::Release, Ordering::Relaxed);
    }

    /// Records currently resident (after drop-oldest).
    pub fn occupancy(&self) -> u64 {
        self.segments
            .iter()
            .map(|s| s.head.load(Ordering::Relaxed).min(s.slots.len() as u64))
            .sum()
    }

    /// Records overwritten by drop-oldest since creation.
    pub fn dropped_events(&self) -> u64 {
        self.segments
            .iter()
            .map(|s| {
                s.head
                    .load(Ordering::Relaxed)
                    .saturating_sub(s.slots.len() as u64)
            })
            .sum()
    }

    /// Snapshot every valid resident record, most recent last within each
    /// segment. Torn slots (concurrent overwrite) are skipped.
    pub fn records(&self) -> Vec<TraceRecord> {
        let mut out = Vec::new();
        for seg in &self.segments {
            let head = seg.head.load(Ordering::Acquire);
            let cap = seg.slots.len() as u64;
            let live = head.min(cap);
            let first = head - live;
            for idx in first..head {
                let slot = &seg.slots[(idx % cap) as usize];
                if let Some(rec) = Self::read_slot(slot) {
                    out.push(rec);
                }
            }
        }
        out
    }

    /// Find the most recent trace for a given request id.
    pub fn find(&self, request_id: u64) -> Option<TraceRecord> {
        self.records()
            .into_iter()
            .rev()
            .find(|r| r.request_id == request_id)
    }

    fn read_slot(slot: &Slot) -> Option<TraceRecord> {
        let s1 = slot.seq.load(Ordering::Acquire);
        if s1 == 0 || s1 % 2 == 1 {
            return None; // never written, or write in progress
        }
        let mut words = [0u64; SLOT_WORDS];
        for (i, w) in slot.words.iter().enumerate() {
            words[i] = w.load(Ordering::Relaxed);
        }
        fence(Ordering::Acquire);
        let s2 = slot.seq.load(Ordering::Relaxed);
        if s1 != s2 {
            return None; // torn: overwritten while reading
        }
        let meta = words[1];
        let n = ((meta >> 8) & 0xff) as usize;
        if n > MAX_SPANS {
            return None;
        }
        let mut spans = Vec::with_capacity(n);
        for i in 0..n {
            let base = 3 + i * 3;
            let stage = Stage::from_u8((words[base] >> 56) as u8)?;
            spans.push(Span {
                stage,
                start_ns: words[base] & ((1u64 << 56) - 1),
                dur_ns: words[base + 1],
                detail: words[base + 2],
            });
        }
        Some(TraceRecord {
            request_id: words[0],
            outcome: (meta & 0xff) as u8,
            total_ns: words[2],
            spans,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_with_spans(id: u64, k: usize) -> TraceCtx {
        let mut c = TraceCtx::new(id);
        for i in 0..k {
            c.span_with(Stage::Search, i as u64 * 10, 7, i as u64);
        }
        c
    }

    #[test]
    fn push_and_find_roundtrip() {
        let ring = TraceRing::new(2, 4);
        let ctx = ctx_with_spans(42, 3);
        ring.push(&ctx, 1, 999);
        let rec = ring.find(42).expect("record present");
        assert_eq!(rec.request_id, 42);
        assert_eq!(rec.outcome, 1);
        assert_eq!(rec.total_ns, 999);
        assert_eq!(rec.spans.len(), 3);
        assert_eq!(rec.spans[2].detail, 2);
        assert_eq!(ring.occupancy(), 1);
        assert_eq!(ring.dropped_events(), 0);
    }

    #[test]
    fn drop_oldest_counts_dropped() {
        let ring = TraceRing::new(1, 2);
        for id in 0..5 {
            ring.push(&ctx_with_spans(id, 1), 0, id);
        }
        assert_eq!(ring.occupancy(), 2);
        assert_eq!(ring.dropped_events(), 3);
        let ids: Vec<u64> = ring.records().iter().map(|r| r.request_id).collect();
        assert_eq!(ids, vec![3, 4]);
    }

    #[test]
    fn span_overflow_truncates() {
        let mut c = TraceCtx::new(7);
        for i in 0..(MAX_SPANS + 3) {
            c.span_with(Stage::Search, i as u64, 1, 0);
        }
        assert_eq!(c.spans().len(), MAX_SPANS);
        assert_eq!(c.truncated(), 3);
    }

    #[test]
    fn disabled_ctx_is_inert() {
        let mut c = TraceCtx::disabled();
        assert_eq!(c.now_ns(), 0);
        c.span(Stage::Search, 0, 0);
        c.span_with(Stage::Flush, 0, 1, 2);
        assert!(c.spans().is_empty());
    }

    #[test]
    fn concurrent_pushes_never_yield_torn_records() {
        use std::sync::Arc;
        let ring = Arc::new(TraceRing::new(2, 8));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let ring = Arc::clone(&ring);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    let id = t * 1000 + i;
                    ring.push(&ctx_with_spans(id, 2), (t % 4) as u8, id * 3);
                }
            }));
        }
        let reader = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for _ in 0..50 {
                    for rec in ring.records() {
                        // Internal consistency: fields derived from id must agree.
                        assert_eq!(rec.total_ns, rec.request_id * 3);
                        assert_eq!(rec.spans.len(), 2);
                    }
                }
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        reader.join().unwrap();
        assert_eq!(ring.occupancy() + ring.dropped_events(), 800);
    }
}
