//! Slowest-N retention: a tiny top-K log of the slowest requests with their
//! per-stage span breakdowns.
//!
//! The fast path is one relaxed atomic load comparing the request's wall
//! time against the current admission floor (the N-th slowest total); only
//! requests that would actually enter the log take the mutex and allocate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde_json::Value;

use crate::trace::{Span, TraceCtx};

/// One retained slow request.
#[derive(Clone, Debug)]
pub struct SlowEntry {
    pub request_id: u64,
    pub outcome: u8,
    pub total_ns: u64,
    pub spans: Vec<Span>,
}

/// Top-K slowest requests, ordered slowest first.
pub struct SlowLog {
    cap: usize,
    /// Admission floor: once the log is full, totals at or below this are
    /// rejected without locking.
    floor_ns: AtomicU64,
    entries: Mutex<Vec<SlowEntry>>,
}

impl SlowLog {
    pub fn new(cap: usize) -> SlowLog {
        SlowLog {
            cap: cap.max(1),
            floor_ns: AtomicU64::new(0),
            entries: Mutex::new(Vec::new()),
        }
    }

    /// Offer a finished request. Returns true if it was retained.
    pub fn offer(&self, ctx: &TraceCtx, outcome: u8, total_ns: u64) -> bool {
        if total_ns <= self.floor_ns.load(Ordering::Relaxed) {
            return false; // log full and this request is not slow enough
        }
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        // Re-check under the lock: the floor may have risen.
        if entries.len() >= self.cap && total_ns <= entries.last().map_or(0, |e| e.total_ns) {
            return false;
        }
        entries.push(SlowEntry {
            request_id: ctx.request_id(),
            outcome,
            total_ns,
            spans: ctx.spans().to_vec(),
        });
        entries.sort_by_key(|e| std::cmp::Reverse(e.total_ns));
        entries.truncate(self.cap);
        if entries.len() >= self.cap {
            self.floor_ns
                .store(entries.last().map_or(0, |e| e.total_ns), Ordering::Relaxed);
        }
        true
    }

    pub fn entries(&self) -> Vec<SlowEntry> {
        self.entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// JSON array of retained entries, slowest first, sorted keys.
    pub fn to_json(&self, outcome_name: impl Fn(u8) -> &'static str) -> Value {
        let items: Vec<Value> = self
            .entries()
            .iter()
            .map(|e| {
                crate::trace::TraceRecord {
                    request_id: e.request_id,
                    outcome: e.outcome,
                    total_ns: e.total_ns,
                    spans: e.spans.clone(),
                }
                .to_json(outcome_name(e.outcome))
            })
            .collect();
        Value::Array(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Stage;

    fn ctx(id: u64) -> TraceCtx {
        let mut c = TraceCtx::new(id);
        c.span_with(Stage::Search, 0, id * 100, 0);
        c
    }

    #[test]
    fn retains_slowest_n_in_order() {
        let log = SlowLog::new(3);
        for (id, total) in [(1u64, 50u64), (2, 500), (3, 10), (4, 900), (5, 300)] {
            log.offer(&ctx(id), 0, total);
        }
        let totals: Vec<u64> = log.entries().iter().map(|e| e.total_ns).collect();
        assert_eq!(totals, vec![900, 500, 300]);
        // Fast-path rejection: below the floor (300) is refused outright.
        assert!(!log.offer(&ctx(6), 0, 299));
        assert!(log.offer(&ctx(7), 0, 301));
        let ids: Vec<u64> = log.entries().iter().map(|e| e.request_id).collect();
        assert_eq!(ids, vec![4, 2, 7]);
    }
}
