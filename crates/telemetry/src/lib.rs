//! `lec-telemetry`: the observability substrate for the LEC serving stack.
//!
//! Three pieces, designed so the warm serving path pays almost nothing:
//!
//! * [`Histogram`] — lock-free log-scale latency histograms with atomic
//!   buckets and deterministic merge ([`hist`]). Request outcomes
//!   (served/coalesced/fresh/shed/error) and engine internals (per-level
//!   combine, memo probes, bound evals, cost-model evals) each get one.
//! * [`TraceCtx`] / [`TraceRing`] — per-request typed span events collected
//!   on the stack (zero allocation) and published into a bounded lock-free
//!   ring with drop-oldest semantics ([`trace`]), plus a slowest-N log with
//!   per-stage breakdowns ([`slowlog`]).
//! * [`Telemetry::snapshot_json`] / [`Telemetry::prometheus`] — the full
//!   snapshot as sorted-key JSON or Prometheus text exposition ([`prom`]).
//!
//! A [`Telemetry`] built from [`TelemetryConfig::off()`] keeps every
//! recording method a cheap early-return branch, and a disabled
//! [`TraceCtx`] never reads the clock, so instrumented code needs no
//! conditional compilation to stay near-free when observability is off.

pub mod hist;
pub mod prom;
pub mod slowlog;
pub mod trace;

pub use hist::{Histogram, HistogramSnapshot};
pub use prom::{parse_prometheus, write_sample, PromSample};
pub use slowlog::{SlowEntry, SlowLog};
pub use trace::{Span, Stage, TraceCtx, TraceRecord, TraceRing, MAX_SPANS};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use serde_json::{json, Value};

/// Request outcome classes, each with its own latency histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Outcome {
    /// Warm cache hit served without optimization.
    Served = 0,
    /// Coalesced onto another request's in-flight computation.
    Coalesced = 1,
    /// Fresh optimization (cold miss, revalidation, or uncacheable).
    Fresh = 2,
    /// Rejected by admission control.
    Shed = 3,
    /// Failed for any other reason (optimizer error, deadline).
    Error = 4,
}

pub const OUTCOME_COUNT: usize = 5;

impl Outcome {
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Served => "served",
            Outcome::Coalesced => "coalesced",
            Outcome::Fresh => "fresh",
            Outcome::Shed => "shed",
            Outcome::Error => "error",
        }
    }

    pub fn all() -> [Outcome; OUTCOME_COUNT] {
        [
            Outcome::Served,
            Outcome::Coalesced,
            Outcome::Fresh,
            Outcome::Shed,
            Outcome::Error,
        ]
    }

    pub fn from_u8(v: u8) -> Outcome {
        match v {
            0 => Outcome::Served,
            1 => Outcome::Coalesced,
            2 => Outcome::Fresh,
            3 => Outcome::Shed,
            _ => Outcome::Error,
        }
    }
}

/// Physical operator classes of the execution substrate, the axis of the
/// calibration error histograms: every class `lec-exec` can execute and
/// `lec-cost` can predict gets its own prediction-error distribution, so a
/// formula that drifts from its operator shows up per class rather than
/// averaged away.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum OpClass {
    /// Sequential heap scan.
    SeqAccess = 0,
    /// Index access (clustered or unclustered).
    IndexAccess = 1,
    /// Explicit external sort.
    Sort = 2,
    /// Sort-merge join.
    SortMerge = 3,
    /// Grace hash join.
    GraceHash = 4,
    /// Block nested-loop join.
    BlockNestedLoop = 5,
    /// Page nested-loop join.
    PageNestedLoop = 6,
}

pub const OP_CLASS_COUNT: usize = 7;

impl OpClass {
    pub fn name(self) -> &'static str {
        match self {
            OpClass::SeqAccess => "seq_access",
            OpClass::IndexAccess => "index_access",
            OpClass::Sort => "sort",
            OpClass::SortMerge => "sort_merge",
            OpClass::GraceHash => "grace_hash",
            OpClass::BlockNestedLoop => "block_nl",
            OpClass::PageNestedLoop => "page_nl",
        }
    }

    pub fn all() -> [OpClass; OP_CLASS_COUNT] {
        [
            OpClass::SeqAccess,
            OpClass::IndexAccess,
            OpClass::Sort,
            OpClass::SortMerge,
            OpClass::GraceHash,
            OpClass::BlockNestedLoop,
            OpClass::PageNestedLoop,
        ]
    }
}

/// The pure sample mapping of the calibration histograms: absolute
/// relative prediction error in basis points, `|pred − meas| / meas · 10⁴`,
/// rounded.  Total over all float inputs (a non-positive measurement with a
/// positive prediction saturates) and deterministic, so per-thread or
/// per-process recordings merge into the same counts as serial recording.
pub fn error_bp(predicted: f64, measured: f64) -> u64 {
    if measured <= 0.0 {
        return if predicted <= 0.0 { 0 } else { u64::MAX };
    }
    let bp = ((predicted - measured) / measured).abs() * 1e4;
    if !bp.is_finite() {
        u64::MAX
    } else {
        bp.round().min(1e18) as u64
    }
}

/// Per-operator-class prediction-error histograms, fed by calibration runs
/// (`lec-exec::calib`): each sample is one plan node's [`error_bp`] between
/// the cost model's expected cost and the measured page I/O.
#[derive(Debug, Default)]
pub struct CalibrationErrors {
    classes: [Histogram; OP_CLASS_COUNT],
}

impl CalibrationErrors {
    /// Record one predicted-vs-measured pair under its operator class.
    #[inline]
    pub fn record(&self, class: OpClass, predicted: f64, measured: f64) {
        self.classes[class as usize].record(error_bp(predicted, measured));
    }

    pub fn snapshot(&self, class: OpClass) -> HistogramSnapshot {
        self.classes[class as usize].snapshot()
    }

    /// Sorted-key JSON: one histogram summary per class name.  Quantile
    /// keys read `_ns` by histogram convention; the unit here is basis
    /// points of relative error.
    pub fn to_json(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = OpClass::all()
            .iter()
            .map(|c| (c.name().to_string(), self.snapshot(*c).to_json()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

/// Cumulative buffer-pool page counters, mirrored from `lec-exec`'s disks
/// when a calibration sink is installed.  Monotone totals (Prometheus
/// `_total` semantics); shared by `Arc` so the recording side never blocks.
#[derive(Debug, Default)]
pub struct IoTotals {
    reads: AtomicU64,
    writes: AtomicU64,
}

impl IoTotals {
    pub fn add_reads(&self, n: u64) {
        self.reads.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_writes(&self, n: u64) {
        self.writes.fetch_add(n, Ordering::Relaxed);
    }

    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    pub fn to_json(&self) -> Value {
        json!({
            "reads": self.reads() as f64,
            "writes": self.writes() as f64,
        })
        .sorted()
    }
}

/// Sizing and enablement for a [`Telemetry`] instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TelemetryConfig {
    pub enabled: bool,
    /// Trace-ring segments; writers hash by thread onto segments.
    pub ring_segments: usize,
    /// Slots per segment (drop-oldest beyond this).
    pub ring_slots_per_segment: usize,
    /// Slowest-N requests retained with span breakdowns.
    pub slow_log_size: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig::on()
    }
}

impl TelemetryConfig {
    pub fn on() -> TelemetryConfig {
        TelemetryConfig {
            enabled: true,
            ring_segments: 4,
            ring_slots_per_segment: 64,
            slow_log_size: 16,
        }
    }

    /// Disabled: recording methods become early-return branches and no ring
    /// or slow-log memory is retained beyond minimal stubs.
    pub fn off() -> TelemetryConfig {
        TelemetryConfig {
            enabled: false,
            ring_segments: 1,
            ring_slots_per_segment: 1,
            slow_log_size: 1,
        }
    }
}

/// One DP level's pruning activity, recorded by the search drivers at the
/// level barrier: how many subsets the level discarded and how the tiered
/// bound evaluation split between the sharp per-edge floor and the cheap
/// universal one.  Deltas of the schedule-independent `SearchStats`
/// counters, so serial and parallel searches record identical traces.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelPrune {
    /// DP level (subset size `k`).
    pub level: u32,
    /// Subsets this level discarded (structurally or by a bound tier).
    pub pruned_subsets: u64,
    /// Checks that escalated to the sharp per-edge floor.
    pub sharp_bound_evals: u64,
    /// Checks the cheap universal floor decided alone.
    pub cheap_bound_skips: u64,
}

/// Levels retained in [`EngineTelemetry::level_prunes`]; beyond this the
/// oldest entries are dropped so a long-lived serving process stays
/// bounded.
pub const MAX_LEVEL_PRUNES: usize = 64;

/// Engine-internal timing histograms, shared with `lec-core` / `lec-cost`
/// via `Arc`. All methods are lock-free except the per-level prune trace,
/// which takes a short mutex once per DP level.
#[derive(Debug, Default)]
pub struct EngineTelemetry {
    /// Wall time of each DP level (combine pass over all subsets of size k).
    pub level_combine_ns: Histogram,
    /// Memoization-table probe time per lookup.
    pub memo_probe_ns: Histogram,
    /// Admissible-bound evaluation time per pruning check.
    pub bound_eval_ns: Histogram,
    /// Cost-model expectation-evaluation compute time (cache misses only).
    pub eval_compute_ns: Histogram,
    /// Per-level prune trace, newest last (bounded by
    /// [`MAX_LEVEL_PRUNES`], drop-oldest).
    level_prunes: std::sync::Mutex<Vec<LevelPrune>>,
}

impl EngineTelemetry {
    /// Append one level's pruning record (driver barrier; once per level).
    pub fn record_level_prune(&self, rec: LevelPrune) {
        let mut prunes = self.level_prunes.lock().unwrap_or_else(|p| p.into_inner());
        if prunes.len() >= MAX_LEVEL_PRUNES {
            prunes.remove(0);
        }
        prunes.push(rec);
    }

    /// The retained per-level prune trace, oldest first.
    pub fn level_prunes(&self) -> Vec<LevelPrune> {
        self.level_prunes
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    pub fn to_json(&self) -> Value {
        let levels: Vec<Value> = self
            .level_prunes()
            .iter()
            .map(|l| {
                json!({
                    "cheap_bound_skips": l.cheap_bound_skips,
                    "level": l.level,
                    "pruned_subsets": l.pruned_subsets,
                    "sharp_bound_evals": l.sharp_bound_evals,
                })
            })
            .collect();
        json!({
            "bound_eval": self.bound_eval_ns.snapshot().to_json(),
            "eval_compute": self.eval_compute_ns.snapshot().to_json(),
            "level_combine": self.level_combine_ns.snapshot().to_json(),
            "level_prunes": levels,
            "memo_probe": self.memo_probe_ns.snapshot().to_json(),
        })
        .sorted()
    }
}

/// The full telemetry surface for one serving stack: outcome latency
/// histograms, engine-internal histograms, the trace ring, and the slow log.
pub struct Telemetry {
    config: TelemetryConfig,
    outcomes: [Histogram; OUTCOME_COUNT],
    engine: Arc<EngineTelemetry>,
    calibration: CalibrationErrors,
    io: Arc<IoTotals>,
    ring: TraceRing,
    slow: SlowLog,
    /// Floor (ns) below which finished traces skip the slow log entirely.
    slow_threshold_ns: u64,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("config", &self.config)
            .field("ring_occupancy", &self.ring.occupancy())
            .field("slow_log_entries", &self.slow.len())
            .finish_non_exhaustive()
    }
}

impl Telemetry {
    pub fn new(config: TelemetryConfig) -> Telemetry {
        let ring = TraceRing::new(config.ring_segments, config.ring_slots_per_segment);
        let slow = SlowLog::new(config.slow_log_size);
        Telemetry {
            outcomes: std::array::from_fn(|_| Histogram::new()),
            engine: Arc::new(EngineTelemetry::default()),
            calibration: CalibrationErrors::default(),
            io: Arc::new(IoTotals::default()),
            ring,
            slow,
            slow_threshold_ns: 0,
            config,
        }
    }

    /// Enabled telemetry with default sizing.
    pub fn on() -> Telemetry {
        Telemetry::new(TelemetryConfig::on())
    }

    /// Disabled telemetry: every recording call is a cheap early return.
    pub fn off() -> Telemetry {
        Telemetry::new(TelemetryConfig::off())
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    pub fn config(&self) -> &TelemetryConfig {
        &self.config
    }

    /// Engine-internal histograms handle, for installation into
    /// `SearchConfig` / `CostModel`.
    pub fn engine(&self) -> &Arc<EngineTelemetry> {
        &self.engine
    }

    /// Cumulative buffer-pool page counters; `lec-exec` calibration runs
    /// install this as their I/O sink so execution work shows up live.
    pub fn io(&self) -> &Arc<IoTotals> {
        &self.io
    }

    /// Record one plan node's predicted-vs-measured cost pair under its
    /// operator class.  Cheap early return when telemetry is off.
    #[inline]
    pub fn record_calibration_error(&self, class: OpClass, predicted: f64, measured: f64) {
        if !self.config.enabled {
            return;
        }
        self.calibration.record(class, predicted, measured);
    }

    pub fn calibration_snapshot(&self, class: OpClass) -> HistogramSnapshot {
        self.calibration.snapshot(class)
    }

    /// A [`TraceCtx`] for a new request: active iff telemetry is enabled.
    pub fn trace_ctx(&self, request_id: u64) -> TraceCtx {
        if self.config.enabled {
            TraceCtx::new(request_id)
        } else {
            TraceCtx::disabled()
        }
    }

    /// Like [`Self::trace_ctx`] but with an explicit epoch (timing started
    /// before the request id was decoded).
    pub fn trace_ctx_at(&self, request_id: u64, epoch: Instant) -> TraceCtx {
        if self.config.enabled {
            TraceCtx::starting_at(request_id, epoch)
        } else {
            TraceCtx::disabled()
        }
    }

    /// Record a finished request's wall time under its outcome class.
    /// One branch plus three relaxed atomic adds; no allocation.
    #[inline]
    pub fn record_outcome(&self, outcome: Outcome, elapsed_ns: u64) {
        if !self.config.enabled {
            return;
        }
        self.outcomes[outcome as usize].record(elapsed_ns);
    }

    /// Publish a finished trace into the ring and offer it to the slow log.
    pub fn finish_request(&self, ctx: &TraceCtx, outcome: Outcome) {
        if !self.config.enabled || !ctx.enabled() {
            return;
        }
        let total_ns = ctx.now_ns();
        self.ring.push(ctx, outcome as u8, total_ns);
        if total_ns > self.slow_threshold_ns {
            self.slow.offer(ctx, outcome as u8, total_ns);
        }
    }

    pub fn ring(&self) -> &TraceRing {
        &self.ring
    }

    pub fn slow_log(&self) -> &SlowLog {
        &self.slow
    }

    pub fn outcome_snapshot(&self, outcome: Outcome) -> HistogramSnapshot {
        self.outcomes[outcome as usize].snapshot()
    }

    /// Full snapshot as sorted-key JSON: per-outcome latency histograms,
    /// engine histograms, slow log, and trace-ring occupancy.
    pub fn snapshot_json(&self) -> Value {
        let mut latency: Vec<(String, Value)> = Outcome::all()
            .iter()
            .map(|o| (o.name().to_string(), self.outcome_snapshot(*o).to_json()))
            .collect();
        latency.sort_by(|a, b| a.0.cmp(&b.0));
        json!({
            "calibration": self.calibration.to_json(),
            "enabled": self.config.enabled,
            "engine": self.engine.to_json(),
            "io": self.io.to_json(),
            "latency": Value::Object(latency),
            "trace": {
                "dropped_events": self.ring.dropped_events() as f64,
                "ring_occupancy": self.ring.occupancy() as f64,
                "slow_log": self.slow.to_json(|o| Outcome::from_u8(o).name()),
            },
        })
        .sorted()
    }

    /// Prometheus-style text exposition of the histogram and ring state.
    /// Every line parses with [`parse_prometheus`] (pinned by tests + CI).
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        for o in Outcome::all() {
            let s = self.outcome_snapshot(o);
            let labels = [("outcome", o.name())];
            write_sample(&mut out, "lec_requests_total", &labels, s.count() as f64);
            write_sample(
                &mut out,
                "lec_request_seconds_sum",
                &labels,
                s.sum() as f64 / 1e9,
            );
            for (q, qn) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99"), (0.999, "0.999")] {
                write_sample(
                    &mut out,
                    "lec_request_latency_ns",
                    &[("outcome", o.name()), ("quantile", qn)],
                    s.quantile(q) as f64,
                );
            }
        }
        for (stage, h) in [
            ("bound_eval", &self.engine.bound_eval_ns),
            ("eval_compute", &self.engine.eval_compute_ns),
            ("level_combine", &self.engine.level_combine_ns),
            ("memo_probe", &self.engine.memo_probe_ns),
        ] {
            let s = h.snapshot();
            let labels = [("stage", stage)];
            write_sample(&mut out, "lec_engine_ops_total", &labels, s.count() as f64);
            for (q, qn) in [(0.5, "0.5"), (0.99, "0.99")] {
                write_sample(
                    &mut out,
                    "lec_engine_ns",
                    &[("quantile", qn), ("stage", stage)],
                    s.quantile(q) as f64,
                );
            }
        }
        for class in OpClass::all() {
            let s = self.calibration.snapshot(class);
            let labels = [("op", class.name())];
            write_sample(
                &mut out,
                "lec_calibration_samples_total",
                &labels,
                s.count() as f64,
            );
            for (q, qn) in [(0.5, "0.5"), (0.99, "0.99")] {
                write_sample(
                    &mut out,
                    "lec_calibration_error_bp",
                    &[("op", class.name()), ("quantile", qn)],
                    s.quantile(q) as f64,
                );
            }
        }
        for (dir, n) in [("read", self.io.reads()), ("write", self.io.writes())] {
            write_sample(&mut out, "lec_io_pages_total", &[("dir", dir)], n as f64);
        }
        write_sample(
            &mut out,
            "lec_trace_ring_occupancy",
            &[],
            self.ring.occupancy() as f64,
        );
        write_sample(
            &mut out,
            "lec_trace_dropped_events",
            &[],
            self.ring.dropped_events() as f64,
        );
        write_sample(
            &mut out,
            "lec_slow_log_entries",
            &[],
            self.slow.len() as f64,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_bp_is_total_and_symmetric_in_sign() {
        assert_eq!(error_bp(100.0, 100.0), 0);
        assert_eq!(error_bp(150.0, 100.0), 5_000);
        assert_eq!(error_bp(50.0, 100.0), 5_000);
        assert_eq!(error_bp(0.0, 0.0), 0);
        assert_eq!(error_bp(1.0, 0.0), u64::MAX);
        assert_eq!(error_bp(f64::NAN, 100.0), u64::MAX);
    }

    #[test]
    fn calibration_errors_surface_per_class() {
        let t = Telemetry::on();
        t.record_calibration_error(OpClass::SortMerge, 120.0, 100.0);
        t.record_calibration_error(OpClass::SortMerge, 100.0, 100.0);
        t.record_calibration_error(OpClass::SeqAccess, 100.0, 100.0);
        let sm = t.calibration_snapshot(OpClass::SortMerge);
        assert_eq!(sm.count(), 2);
        assert_eq!(sm.sum(), 2_000);
        assert_eq!(t.calibration_snapshot(OpClass::GraceHash).count(), 0);
        let snap = t.snapshot_json();
        assert_eq!(
            snap["calibration"]["sort_merge"]["count"].as_f64(),
            Some(2.0)
        );
        assert_eq!(
            snap["calibration"]["seq_access"]["count"].as_f64(),
            Some(1.0)
        );
    }

    #[test]
    fn io_totals_accumulate_and_surface() {
        let t = Telemetry::on();
        t.io().add_reads(12);
        t.io().add_writes(5);
        t.io().add_reads(3);
        assert_eq!(t.io().reads(), 15);
        assert_eq!(t.io().writes(), 5);
        let snap = t.snapshot_json();
        assert_eq!(snap["io"]["reads"].as_f64(), Some(15.0));
        assert_eq!(snap["io"]["writes"].as_f64(), Some(5.0));
        let samples = parse_prometheus(&t.prometheus()).expect("parses");
        assert!(samples.iter().any(|s| {
            s.name == "lec_io_pages_total"
                && s.labels.iter().any(|(k, v)| k == "dir" && v == "read")
                && s.value == 15.0
        }));
    }

    #[test]
    fn off_telemetry_records_nothing() {
        let t = Telemetry::off();
        t.record_outcome(Outcome::Served, 1000);
        t.record_calibration_error(OpClass::Sort, 10.0, 20.0);
        assert_eq!(t.calibration_snapshot(OpClass::Sort).count(), 0);
        let mut ctx = t.trace_ctx(1);
        assert!(!ctx.enabled());
        ctx.span(Stage::Search, 0, 0);
        t.finish_request(&ctx, Outcome::Served);
        assert_eq!(t.outcome_snapshot(Outcome::Served).count(), 0);
        assert_eq!(t.ring().occupancy(), 0);
        assert!(t.slow_log().is_empty());
    }

    #[test]
    fn snapshot_json_has_sorted_keys_and_core_fields() {
        let t = Telemetry::on();
        t.record_outcome(Outcome::Served, 500);
        t.record_outcome(Outcome::Shed, 100);
        let mut ctx = t.trace_ctx(9);
        ctx.span_with(Stage::Search, 0, 400, 0);
        t.finish_request(&ctx, Outcome::Served);
        let snap = t.snapshot_json();
        assert_eq!(snap["latency"]["served"]["count"].as_f64(), Some(1.0));
        assert_eq!(snap["latency"]["shed"]["count"].as_f64(), Some(1.0));
        assert_eq!(snap["trace"]["ring_occupancy"].as_f64(), Some(1.0));
        fn assert_sorted(v: &Value) {
            if let Value::Object(pairs) = v {
                for w in pairs.windows(2) {
                    assert!(
                        w[0].0 < w[1].0,
                        "keys out of order: {} vs {}",
                        w[0].0,
                        w[1].0
                    );
                }
                for (_, v) in pairs {
                    assert_sorted(v);
                }
            }
            if let Value::Array(items) = v {
                for v in items {
                    assert_sorted(v);
                }
            }
        }
        assert_sorted(&snap);
    }

    #[test]
    fn prometheus_exposition_parses() {
        let t = Telemetry::on();
        for i in 0..100u64 {
            t.record_outcome(Outcome::Served, i * 1000);
        }
        let mut ctx = t.trace_ctx(3);
        ctx.span_with(Stage::CacheProbe, 0, 10, 0);
        t.finish_request(&ctx, Outcome::Served);
        let text = t.prometheus();
        let samples = parse_prometheus(&text).expect("exposition parses");
        assert!(samples.len() > 20);
        let served = samples
            .iter()
            .find(|s| {
                s.name == "lec_requests_total"
                    && s.labels
                        .iter()
                        .any(|(k, v)| k == "outcome" && v == "served")
            })
            .expect("served counter present");
        assert_eq!(served.value, 100.0);
    }

    #[test]
    fn finish_request_feeds_ring_and_slow_log() {
        let t = Telemetry::on();
        let mut ctx = t.trace_ctx(77);
        ctx.span_with(Stage::Decode, 0, 50, 0);
        ctx.span_with(Stage::Search, 50, 900, (3u64 << 32) | 5);
        t.finish_request(&ctx, Outcome::Fresh);
        let rec = t.ring().find(77).expect("trace retained");
        assert_eq!(rec.spans.len(), 2);
        assert_eq!(rec.spans[1].detail >> 32, 3);
        let slow = t.slow_log().entries();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].request_id, 77);
    }
}
