//! Fixed-bucket log-scale latency histograms (HDR-style).
//!
//! Values (nanoseconds, but any `u64` scale works) map to buckets by a pure
//! function of the value: the first `2^SUB_BITS` values get exact unit
//! buckets, and every later power-of-two octave is split into `2^SUB_BITS`
//! sub-buckets, bounding relative quantile error at `2^-SUB_BITS` (~6%).
//! Recording is three relaxed `fetch_add`s — no locks, no allocation —
//! so concurrent recorders produce bucket counts identical to any serial
//! interleaving of the same samples, and merging two snapshots is an
//! element-wise add that is associative and commutative. That determinism
//! is what lets per-thread or per-process histograms be combined into one
//! exposition without coordination (pinned by `tests/hist_props.rs`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use serde_json::{json, Value};

/// Sub-bucket resolution: each power-of-two octave splits into
/// `2^SUB_BITS` buckets.
const SUB_BITS: u32 = 4;
const SUB_COUNT: u64 = 1 << SUB_BITS;

/// Total bucket count covering the full `u64` range. The largest exponent a
/// value can have is 63, giving index `((63 - SUB_BITS + 1) << SUB_BITS) +
/// mantissa`, which stays below this bound.
pub const N_BUCKETS: usize = ((64 - SUB_BITS as usize + 1) << SUB_BITS) + SUB_COUNT as usize;

/// Map a value to its bucket index. Pure and total: every `u64` lands in
/// exactly one of the `N_BUCKETS` buckets.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT {
        v as usize
    } else {
        let e = 63 - v.leading_zeros(); // e >= SUB_BITS
        let mantissa = (v >> (e - SUB_BITS)) & (SUB_COUNT - 1);
        ((((e - SUB_BITS + 1) as usize) << SUB_BITS) + mantissa as usize).min(N_BUCKETS - 1)
    }
}

/// Inclusive upper bound of the value range covered by bucket `i`; quantile
/// estimates report this bound, so they never under-state a latency.
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i < SUB_COUNT as usize {
        i as u64
    } else {
        let e = (i >> SUB_BITS) as u32 + SUB_BITS - 1;
        if e >= 64 {
            // Indices past the last bucket any u64 can reach.
            return u64::MAX;
        }
        let mantissa = (i as u64) & (SUB_COUNT - 1);
        let width = 1u64 << (e - SUB_BITS);
        (1u64 << e) + mantissa * width + (width - 1)
    }
}

/// Lock-free log-scale histogram with atomic buckets.
///
/// `Debug` prints a summary (count/sum), not the bucket array.
pub struct Histogram {
    buckets: Box<[AtomicU64; N_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        // Zero-init the bucket array on the heap without a 16KB stack copy.
        let buckets: Vec<AtomicU64> = (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; N_BUCKETS]> = buckets
            .into_boxed_slice()
            .try_into()
            .unwrap_or_else(|_| unreachable!("length fixed at N_BUCKETS"));
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one sample: three relaxed atomic adds, nothing else.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Record a duration as saturating nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Capture a consistent-enough snapshot for reporting. Buckets are read
    /// individually (relaxed), so a snapshot raced with recorders may lag a
    /// few in-flight samples; it never invents counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        HistogramSnapshot {
            counts,
            count,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Immutable bucket counts captured from a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot::empty()
    }
}

impl HistogramSnapshot {
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            counts: vec![0; N_BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Element-wise merge: associative, commutative, and deterministic, so
    /// any merge order over per-thread histograms yields identical counts.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Quantile estimate `q` in `[0, 1]`: the upper bound of the bucket
    /// containing the `ceil(q * count)`-th smallest sample. Returns 0 for an
    /// empty snapshot. Monotone both in `q` and in the recorded values.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(N_BUCKETS - 1)
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// JSON summary: count, sum, mean, and the standard quantile ladder.
    /// Keys are emitted sorted (the whole crate's `metrics_json` contract).
    pub fn to_json(&self) -> Value {
        json!({
            "count": self.count as f64,
            "mean_ns": self.mean(),
            "p50_ns": self.quantile(0.50) as f64,
            "p90_ns": self.quantile(0.90) as f64,
            "p99_ns": self.quantile(0.99) as f64,
            "p999_ns": self.quantile(0.999) as f64,
            "sum_ns": self.sum as f64,
        })
        .sorted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_bounded() {
        let mut prev = 0usize;
        let mut v = 0u64;
        while v < 1 << 20 {
            let i = bucket_index(v);
            assert!(i >= prev, "bucket index regressed at {v}");
            assert!(i < N_BUCKETS);
            prev = i;
            v += 1 + v / 7;
        }
        assert!(bucket_index(u64::MAX) < N_BUCKETS);
    }

    #[test]
    fn bucket_bounds_bracket_their_values() {
        for v in [0u64, 1, 15, 16, 17, 255, 1024, 999_999, u64::MAX / 2] {
            let i = bucket_index(v);
            assert!(
                v <= bucket_upper_bound(i),
                "value {v} above its bucket bound"
            );
            if i > 0 {
                assert!(
                    v > bucket_upper_bound(i - 1),
                    "value {v} not above previous bucket bound"
                );
            }
        }
    }

    #[test]
    fn quantiles_bound_recorded_values() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        let p50 = s.quantile(0.50);
        let p99 = s.quantile(0.99);
        // Upper-bound estimates: at least the true quantile, within one
        // sub-bucket (2^-4 relative) above it.
        assert!((500_000..=500_000 + 500_000 / 8).contains(&p50));
        assert!((990_000..=990_000 + 990_000 / 8).contains(&p99));
        assert!(s.quantile(0.0) <= p50 && p50 <= p99 && p99 <= s.quantile(1.0));
    }

    #[test]
    fn merge_matches_combined_recording() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in 0..500u64 {
            let x = v * v % 10_007;
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            all.record(x);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
    }
}
