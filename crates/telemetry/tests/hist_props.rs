//! Property tests for histogram determinism (ISSUE 8 satellite):
//!
//! * concurrent recording across threads followed by merge yields bucket
//!   counts identical to serial recording of the same samples, and
//! * quantile estimates are monotone — in `q` for a fixed sample set, and
//!   in the recorded values (element-wise domination of sample sets).

use lec_telemetry::hist::{bucket_index, bucket_upper_bound, N_BUCKETS};
use lec_telemetry::{error_bp, Histogram, HistogramSnapshot, OpClass, Telemetry};
use proptest::prelude::*;

fn samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..2_000_000_000, 1..200)
}

/// (class index, predicted, measured) triples for the calibration axis.
fn calib_samples() -> impl Strategy<Value = Vec<(usize, f64, f64)>> {
    prop::collection::vec(
        (
            0usize..lec_telemetry::OP_CLASS_COUNT,
            0.1f64..1e6,
            0.1f64..1e6,
        ),
        1..200,
    )
}

fn record_all(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn concurrent_record_and_merge_matches_serial(values in samples(), threads in 2usize..5) {
        let serial = record_all(&values);

        // Shard the samples round-robin over worker threads, each with its
        // own histogram, then merge the per-thread snapshots.
        let hists: Vec<Histogram> = (0..threads).map(|_| Histogram::new()).collect();
        std::thread::scope(|scope| {
            for (t, h) in hists.iter().enumerate() {
                let shard: Vec<u64> = values
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % threads == t)
                    .map(|(_, v)| *v)
                    .collect();
                scope.spawn(move || {
                    for v in shard {
                        h.record(v);
                    }
                });
            }
        });
        let mut merged = HistogramSnapshot::empty();
        for h in &hists {
            merged.merge(&h.snapshot());
        }

        prop_assert_eq!(merged, serial);
    }

    #[test]
    fn shared_histogram_under_contention_matches_serial(values in samples()) {
        let serial = record_all(&values);

        // All threads hammer ONE histogram's atomic buckets concurrently.
        let shared = Histogram::new();
        let threads = 4usize;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let shard: Vec<u64> = values
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % threads == t)
                    .map(|(_, v)| *v)
                    .collect();
                let shared = &shared;
                scope.spawn(move || {
                    for v in shard {
                        shared.record(v);
                    }
                });
            }
        });

        prop_assert_eq!(shared.snapshot(), serial);
    }

    #[test]
    fn calibration_errors_sharded_then_merged_match_serial(
        pairs in calib_samples(),
        shards in 2usize..5,
    ) {
        // Serial reference: one Telemetry instance records every sample.
        let serial = Telemetry::on();
        for &(c, p, m) in &pairs {
            serial.record_calibration_error(OpClass::all()[c], p, m);
        }

        // Shard the same samples round-robin across independent Telemetry
        // instances (concurrently), then merge per-class snapshots.  The
        // sample mapping `error_bp` is pure and the histogram merge is
        // associative/commutative, so the result must match serial exactly.
        let tels: Vec<Telemetry> = (0..shards).map(|_| Telemetry::on()).collect();
        std::thread::scope(|scope| {
            for (t, tel) in tels.iter().enumerate() {
                let shard: Vec<(usize, f64, f64)> = pairs
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % shards == t)
                    .map(|(_, v)| *v)
                    .collect();
                scope.spawn(move || {
                    for (c, p, m) in shard {
                        tel.record_calibration_error(OpClass::all()[c], p, m);
                    }
                });
            }
        });
        for class in OpClass::all() {
            let mut merged = HistogramSnapshot::empty();
            for tel in &tels {
                merged.merge(&tel.calibration_snapshot(class));
            }
            prop_assert_eq!(merged, serial.calibration_snapshot(class));
        }
    }

    #[test]
    fn error_bp_total_and_scale_invariant(p in 0.1f64..1e9, m in 0.1f64..1e9, k in 1.0f64..100.0) {
        // Total: always defined.  Relative: scaling both sides by the same
        // factor leaves the error within one rounding step.
        let base = error_bp(p, m);
        let scaled = error_bp(p * k, m * k);
        prop_assert!(base.abs_diff(scaled) <= 1, "error_bp not scale-invariant: {base} vs {scaled}");
        prop_assert_eq!(error_bp(m, m), 0);
    }

    #[test]
    fn quantiles_monotone_in_q(values in samples()) {
        let s = record_all(&values);
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0];
        for w in qs.windows(2) {
            prop_assert!(
                s.quantile(w[0]) <= s.quantile(w[1]),
                "quantile({}) > quantile({})", w[0], w[1]
            );
        }
    }

    #[test]
    fn quantiles_monotone_in_recorded_values(
        values in samples(),
        bumps in prop::collection::vec(0u64..1_000_000, 1..200),
    ) {
        // `bumped` dominates `values` element-wise, so every quantile of the
        // bumped set must be at least the corresponding quantile of the
        // original set.
        let bumped: Vec<u64> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| v.saturating_add(bumps[i % bumps.len()]))
            .collect();
        let lo = record_all(&values);
        let hi = record_all(&bumped);
        for q in [0.1, 0.5, 0.9, 0.99, 0.999] {
            prop_assert!(
                lo.quantile(q) <= hi.quantile(q),
                "quantile({q}) decreased when all samples grew"
            );
        }
    }

    #[test]
    fn quantile_bounds_true_order_statistic(values in samples()) {
        // The estimate is the bucket upper bound holding the true order
        // statistic: never below it, and within one sub-bucket width above.
        let s = record_all(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let truth = sorted[rank - 1];
            let est = s.quantile(q);
            prop_assert!(est >= truth);
            prop_assert_eq!(est, bucket_upper_bound(bucket_index(truth)));
        }
    }

    #[test]
    fn bucket_index_total_and_bounds_consistent(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < N_BUCKETS);
        prop_assert!(v <= bucket_upper_bound(i));
        if i > 0 {
            prop_assert!(v > bucket_upper_bound(i - 1));
        }
    }
}
