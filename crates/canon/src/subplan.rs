//! Connected-subquery fingerprints: the canonical forms keying the DP
//! engine's per-node subplan memo.
//!
//! One DP node stands for the induced subquery of a table subset `S`: the
//! tables of `S` (statistics, filters), the join predicates with both
//! endpoints in `S` (in their original vector order and orientation —
//! selectivity products fold in that order), and the plan-shape recursion
//! below them.  Everything the node's candidate set depends on is a
//! function of that induced subquery *plus one whole-query ingredient*:
//! the column-equivalence relation.  Joins **outside** `S` can equate two
//! of `S`'s columns ("sorted on A.x" and "sorted on C.y" become the same
//! physical property through an external `B`), which changes
//! interesting-order domination inside the node — so a subplan
//! fingerprint additionally encodes the restriction of the whole query's
//! equivalence classes to the subquery's order-relevant columns (filter
//! columns and internal join endpoints).
//!
//! Eligibility is stricter than whole-query caching: a subset is refused
//! outright when two member tables share an exact occurrence
//! fingerprint.  Whole-body automorphism detection is not enough here —
//! a node's candidates inherit the tie-breaks of every dag node beneath
//! it, and twins that some third member distinguishes at this level can
//! still be perfectly symmetric inside a smaller subset, where the
//! engine's `plan_shape_cmp` falls back to label-dependent first-wins.
//! Pairwise-distinct fingerprints close the induction (every candidate's
//! leaves are unique, so shape-equal plans are identical plans at every
//! level) and collapse canonicalization to sorting members by
//! fingerprint.  Disconnected subsets are refused too: the DP never
//! populates them.

use crate::{invert, MAX_CANON_TABLES};
use lec_catalog::Catalog;
use lec_plan::{ColumnEquivalences, ColumnRef, Query, TableSet};

/// The canonical form of one connected subquery: the memo key plus the
/// label maps needed to carry memoized entries between queries.
#[derive(Debug, Clone)]
pub struct SubplanForm {
    /// Canonical exact encoding of the induced subquery, including the
    /// restricted order-class partition.  Two equal keys are the same
    /// DP-node computation up to table renaming.
    pub key: Vec<u64>,
    /// Member tables of the subset, ascending query-local indices.
    members: Vec<usize>,
    /// `perm[local] = canonical` over member positions.
    perm: Vec<usize>,
    /// `inv[canonical] = local`.
    inv: Vec<usize>,
    /// Per order class (in canonical first-occurrence order): the current
    /// query's whole-query canonical representative — what a fresh
    /// combine in *this* query would store in an entry's order field.
    class_reps: Vec<ColumnRef>,
}

impl SubplanForm {
    /// Number of tables in the subquery.
    pub fn n_tables(&self) -> usize {
        self.members.len()
    }

    /// Map `canonical index → current query-local table index`, for
    /// relabeling a memoized plan into this query's numbering.
    pub fn to_global(&self) -> Vec<usize> {
        self.inv.iter().map(|&l| self.members[l]).collect()
    }

    /// Map `current query-local table index → canonical index`, sized for
    /// the whole query (non-member slots are unused), for relabeling this
    /// query's entries into canonical space before storing them.
    pub fn to_canonical(&self, n_query: usize) -> Vec<usize> {
        let mut map = vec![0usize; n_query];
        for (l, &g) in self.members.iter().enumerate() {
            map[g] = self.perm[l];
        }
        map
    }

    /// Relabel a canonical-space [`TableSet`] bitmask into this query's
    /// table numbering.
    pub fn global_bits(&self, canonical_bits: u64) -> u64 {
        let mut out = 0u64;
        let mut bits = canonical_bits;
        while bits != 0 {
            let c = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            out |= 1u64 << self.members[self.inv[c]];
        }
        out
    }

    /// Relabel one of this query's [`TableSet`] bitmasks (a subset of the
    /// members) into canonical space.
    pub fn canonical_bits(&self, global_bits: u64) -> u64 {
        let mut out = 0u64;
        let mut bits = global_bits;
        while bits != 0 {
            let g = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let l = self
                .members
                .binary_search(&g)
                .expect("bitmask must only contain subquery members");
            out |= 1u64 << self.perm[l];
        }
        out
    }

    /// The order-class id of a whole-query canonical column representative
    /// (as stored in an entry's `Sorted(..)` field), or `None` when the
    /// representative's class holds no order-relevant column of this
    /// subquery — which a correct combine can never produce.
    pub fn order_class(&self, rep: ColumnRef) -> Option<u32> {
        self.class_reps
            .iter()
            .position(|r| *r == rep)
            .map(|i| i as u32)
    }

    /// The current query's canonical representative of an order class id.
    pub fn class_rep(&self, id: u32) -> Option<ColumnRef> {
        self.class_reps.get(id as usize).copied()
    }
}

/// Per-query precomputation for subquery fingerprinting: exact table
/// attributes, exact join labels, adjacency, and the whole-query column
/// equivalences.  Build one per search, then call
/// [`QueryCanonizer::subquery`] per DP node.
#[derive(Debug)]
pub struct QueryCanonizer<'q> {
    query: &'q Query,
    exact_attr: Vec<u64>,
    join_exact: Vec<u64>,
    adj_bits: Vec<u64>,
    eq: ColumnEquivalences,
}

impl<'q> QueryCanonizer<'q> {
    /// Precompute the per-table and per-join labels of `query`.
    pub fn new(catalog: &Catalog, query: &'q Query) -> Self {
        let n = query.n_tables();
        let exact_attr = (0..n)
            .map(|i| lec_cost::table_occurrence_fingerprint(catalog, query, i))
            .collect();
        let join_exact = query
            .joins
            .iter()
            .map(|j| lec_cost::dist_fingerprint(&j.selectivity))
            .collect();
        let mut adj_bits = vec![0u64; n];
        for j in &query.joins {
            adj_bits[j.left.table] |= 1u64 << j.right.table;
            adj_bits[j.right.table] |= 1u64 << j.left.table;
        }
        QueryCanonizer {
            query,
            exact_attr,
            join_exact,
            adj_bits,
            eq: ColumnEquivalences::for_query(query),
        }
    }

    /// The whole-query column equivalences this canonizer restricts.
    pub fn equivalences(&self) -> &ColumnEquivalences {
        &self.eq
    }

    /// Canonicalize the induced subquery of `set`, or `None` when the
    /// subset is not memo-eligible: empty and oversize subsets,
    /// disconnected subsets (the DP never populates them), or a subset
    /// containing two tables with equal exact occurrence fingerprints.
    ///
    /// Singletons are eligible: a depth-1 node's entries (access-path
    /// alternatives) are a pure function of the table's occurrence
    /// fingerprint plus the whole query's equivalence classes restricted
    /// to the table's filter column — the only column a clustered index
    /// scan can leave the output sorted on — and a one-member subset can
    /// never contain a twin *pair*, so the refusal below is vacuous and
    /// two twin tables legitimately share one singleton record.
    ///
    /// The twin refusal is deliberately stronger than a whole-body
    /// automorphism check.  A memoized node's candidates depend on the
    /// tie-breaks of *every* dag node beneath it, and a twin pair that
    /// some third member distinguishes at this level can still be
    /// perfectly symmetric inside a smaller subset — where
    /// `plan_shape_cmp` sees equal fingerprints and falls back to
    /// label-dependent first-wins.  Pairwise-distinct fingerprints close
    /// that inductively: every candidate's leaves are then unique, two
    /// shape-equal plans are the *same* plan, and no tie-break anywhere
    /// below can observe labels.  (As a bonus, the canonical permutation
    /// degenerates to sorting members by fingerprint — no colour
    /// refinement or permutation search is needed at all.)
    pub fn subquery(&self, set: TableSet) -> Option<SubplanForm> {
        let k = set.len();
        if !(1..=MAX_CANON_TABLES).contains(&k) {
            return None;
        }
        let bits = set.bits();
        // Connectivity: grow the lowest member's component to a fixpoint.
        let mut comp = bits & bits.wrapping_neg();
        loop {
            let mut grown = comp;
            let mut rest = comp;
            while rest != 0 {
                let i = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                grown |= self.adj_bits[i] & bits;
            }
            if grown == comp {
                break;
            }
            comp = grown;
        }
        if comp != bits {
            return None;
        }

        let members: Vec<usize> = set.iter().collect();
        let mut local = vec![usize::MAX; self.query.n_tables()];
        for (l, &g) in members.iter().enumerate() {
            local[g] = l;
        }
        // Internal joins in original vector order: (join idx, local left,
        // local right).
        let joins: Vec<(usize, usize, usize)> = self
            .query
            .joins
            .iter()
            .enumerate()
            .filter(|(_, j)| set.contains(j.left.table) && set.contains(j.right.table))
            .map(|(i, j)| (i, local[j.left.table], local[j.right.table]))
            .collect();

        // Canonical permutation by fingerprint rank; a duplicate refuses
        // the subset (see the method docs for why twins anywhere in the
        // subset — symmetric or not — are off limits).
        let seed: Vec<u64> = members.iter().map(|&g| self.exact_attr[g]).collect();
        let mut order: Vec<usize> = (0..k).collect();
        order.sort_unstable_by_key(|&l| seed[l]);
        if order.windows(2).any(|w| seed[w[0]] == seed[w[1]]) {
            return None;
        }
        let mut perm = vec![0usize; k];
        for (rank, &l) in order.iter().enumerate() {
            perm[l] = rank;
        }

        let key = self.sub_encoding(&seed, &joins, &perm);
        Some(self.finish_form(key, members, perm, &joins))
    }

    /// Exact body encoding of the induced subquery under `perm` (local →
    /// canonical): table fingerprints in canonical order, then the
    /// internal joins in their original vector order and orientation (the
    /// computation's identity — selectivity products fold in that order).
    fn sub_encoding(
        &self,
        seed: &[u64],
        joins: &[(usize, usize, usize)],
        perm: &[usize],
    ) -> Vec<u64> {
        let k = seed.len();
        let inv = invert(perm);
        let mut out = Vec::with_capacity(1 + k + joins.len() * 5);
        out.push(k as u64);
        for canon in 0..k {
            out.push(seed[inv[canon]]);
        }
        for &(ji, la, lb) in joins {
            let j = &self.query.joins[ji];
            out.extend_from_slice(&[
                perm[la] as u64,
                j.left.column as u64,
                perm[lb] as u64,
                j.right.column as u64,
                self.join_exact[ji],
            ]);
        }
        out
    }

    /// Append the restricted order-class partition to the key and build
    /// the final [`SubplanForm`].
    ///
    /// Order-relevant columns are the filter columns of member tables and
    /// the endpoints of internal joins — the only columns a node's
    /// entries can be `Sorted` on.  Their partition under the *whole
    /// query's* equivalence relation is encoded canonically (class ids by
    /// first occurrence over the canonically-ordered column list), so two
    /// subqueries only share a key when external joins equate the same
    /// column pairs.
    fn finish_form(
        &self,
        mut key: Vec<u64>,
        members: Vec<usize>,
        perm: Vec<usize>,
        joins: &[(usize, usize, usize)],
    ) -> SubplanForm {
        let mut cols: Vec<(usize, usize, ColumnRef)> = Vec::new();
        for (l, &g) in members.iter().enumerate() {
            if let Some(f) = &self.query.tables[g].filter {
                cols.push((perm[l], f.column, ColumnRef::new(g, f.column)));
            }
        }
        for &(ji, la, lb) in joins {
            let j = &self.query.joins[ji];
            cols.push((perm[la], j.left.column, j.left));
            cols.push((perm[lb], j.right.column, j.right));
        }
        cols.sort_unstable_by_key(|&(ct, c, _)| (ct, c));
        cols.dedup_by_key(|&mut (ct, c, _)| (ct, c));

        let mut class_reps: Vec<ColumnRef> = Vec::new();
        key.push(cols.len() as u64);
        for (ct, c, global) in cols {
            let rep = self.eq.canonical(global);
            let id = match class_reps.iter().position(|r| *r == rep) {
                Some(i) => i,
                None => {
                    class_reps.push(rep);
                    class_reps.len() - 1
                }
            };
            key.extend_from_slice(&[ct as u64, c as u64, id as u64]);
        }
        let inv = invert(&perm);
        SubplanForm {
            key,
            members,
            perm,
            inv,
            class_reps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lec_catalog::{Catalog, ColumnStats, TableStats};
    use lec_plan::{JoinPredicate, QueryTable};

    fn chain(n: usize) -> (Catalog, Query) {
        let mut cat = Catalog::new();
        let ids: Vec<_> = (0..n)
            .map(|i| {
                cat.add_table(
                    format!("T{i}"),
                    TableStats::new(
                        1000 * (i as u64 + 1),
                        50_000 * (i as u64 + 1),
                        vec![ColumnStats::plain("a", 100), ColumnStats::plain("b", 100)],
                    ),
                )
            })
            .collect();
        let q = Query {
            tables: ids.into_iter().map(QueryTable::bare).collect(),
            joins: (0..n - 1)
                .map(|i| JoinPredicate::exact(ColumnRef::new(i, 1), ColumnRef::new(i + 1, 0), 1e-5))
                .collect(),
            required_order: None,
        };
        (cat, q)
    }

    #[test]
    fn disconnected_subsets_are_refused_but_singletons_are_eligible() {
        let (cat, q) = chain(4);
        let canon = QueryCanonizer::new(&cat, &q);
        assert!(
            canon.subquery(TableSet::from_indices([0, 2])).is_none(),
            "0 and 2 are not adjacent in the chain"
        );
        assert!(canon.subquery(TableSet::from_indices([0, 1, 2])).is_some());
        let s = canon.subquery(TableSet::singleton(1)).expect("eligible");
        assert_eq!(s.n_tables(), 1);
        assert_eq!(s.to_global(), vec![1]);
        assert_eq!(s.to_canonical(4)[1], 0);
    }

    #[test]
    fn singleton_keys_track_the_occurrence_fingerprint() {
        let (cat, q) = chain(4);
        let canon = QueryCanonizer::new(&cat, &q);
        let a = canon.subquery(TableSet::singleton(1)).unwrap();
        let b = canon.subquery(TableSet::singleton(2)).unwrap();
        assert_ne!(a.key, b.key, "different table stats fingerprint apart");
        // A renamed occurrence of the same table shares the key and maps
        // back to its own index.
        let map = [3usize, 2, 0, 1];
        let renamed = q.relabel_tables(&map);
        let rcanon = QueryCanonizer::new(&cat, &renamed);
        let r = rcanon.subquery(TableSet::singleton(map[1])).unwrap();
        assert_eq!(a.key, r.key);
        assert_eq!(r.to_global(), vec![map[1]]);
    }

    #[test]
    fn renamed_subqueries_share_their_key_and_compose_maps() {
        let (cat, q) = chain(5);
        let canon = QueryCanonizer::new(&cat, &q);
        let base = canon.subquery(TableSet::from_indices([1, 2, 3])).unwrap();

        let map = [4usize, 2, 0, 3, 1];
        let renamed = q.relabel_tables(&map);
        let rcanon = QueryCanonizer::new(&cat, &renamed);
        let other = rcanon
            .subquery(TableSet::from_indices([map[1], map[2], map[3]]))
            .unwrap();
        assert_eq!(base.key, other.key, "isomorphic subqueries must collide");
        // Corresponding tables land on the same canonical index: original
        // table g sits at canonical position to_canonical(g); in the
        // renamed query that table is map[g].
        let b_map = base.to_canonical(5);
        let o_map = other.to_canonical(5);
        for g in [1usize, 2, 3] {
            assert_eq!(b_map[g], o_map[map[g]]);
        }
        // Round trip: canonical → global → canonical is the identity.
        let to_global = base.to_global();
        for c in 0..3 {
            assert_eq!(b_map[to_global[c]], c);
        }
    }

    #[test]
    fn different_stats_or_selectivities_change_the_key() {
        let (cat, q) = chain(5);
        let canon = QueryCanonizer::new(&cat, &q);
        let a = canon.subquery(TableSet::from_indices([0, 1, 2])).unwrap();
        let b = canon.subquery(TableSet::from_indices([1, 2, 3])).unwrap();
        assert_ne!(a.key, b.key, "different table sizes fingerprint apart");

        let mut drift = q.clone();
        drift.joins[1].selectivity = lec_prob::Distribution::point(2e-5);
        let dcanon = QueryCanonizer::new(&cat, &drift);
        let d = dcanon.subquery(TableSet::from_indices([1, 2, 3])).unwrap();
        assert_ne!(
            b.key, d.key,
            "a drifted internal selectivity is a different computation"
        );
    }

    #[test]
    fn external_equivalences_split_the_key() {
        // Two queries with identical induced subqueries on {0,1}, where
        // one adds an external join path equating 0.a with 1.b: the
        // restricted order-class partition differs, so the keys must too.
        let mut cat = Catalog::new();
        let ids: Vec<_> = (0..3)
            .map(|i| {
                cat.add_table(
                    format!("E{i}"),
                    TableStats::new(
                        1000 * (i as u64 + 1),
                        50_000,
                        vec![ColumnStats::plain("a", 100), ColumnStats::plain("b", 100)],
                    ),
                )
            })
            .collect();
        let tables: Vec<QueryTable> = ids.iter().map(|&t| QueryTable::bare(t)).collect();
        // Two internal joins on {0,1}, so the subquery has two order
        // classes: {0.a, 1.a} and {0.b, 1.b}.
        let internal = vec![
            JoinPredicate::exact(ColumnRef::new(0, 0), ColumnRef::new(1, 0), 1e-5),
            JoinPredicate::exact(ColumnRef::new(0, 1), ColumnRef::new(1, 1), 2e-5),
        ];
        let q1 = Query {
            tables: tables.clone(),
            joins: [
                internal.clone(),
                vec![JoinPredicate::exact(
                    ColumnRef::new(1, 1),
                    ColumnRef::new(2, 0),
                    1e-4,
                )],
            ]
            .concat(),
            required_order: None,
        };
        let q2 = Query {
            tables,
            joins: [
                internal,
                // External path through table 2 merging the two internal
                // classes: 1.b = 2.a and 2.a = 0.a.
                vec![
                    JoinPredicate::exact(ColumnRef::new(1, 1), ColumnRef::new(2, 0), 1e-4),
                    JoinPredicate::exact(ColumnRef::new(2, 0), ColumnRef::new(0, 0), 1e-4),
                ],
            ]
            .concat(),
            required_order: None,
        };
        let set = TableSet::from_indices([0, 1]);
        let f1 = QueryCanonizer::new(&cat, &q1).subquery(set).unwrap();
        let f2 = QueryCanonizer::new(&cat, &q2).subquery(set).unwrap();
        assert_ne!(
            f1.key, f2.key,
            "an external join that merges order classes must split the key"
        );
    }

    #[test]
    fn twins_distinguished_only_outside_a_sub_subset_are_refused() {
        // Hub H, twin spokes S1/S2 (equal stats, equal selectivities),
        // and X joined only to S1.  The root set {H,S1,S2,X} is not
        // automorphic as a body (X pins S1), but its child {H,S1,S2} is —
        // and a memoized root would carry that child's label-dependent
        // tie-break across queries.  The twin refusal must therefore
        // reject *any* subset containing both spokes.
        let mut cat = Catalog::new();
        let hub = cat.add_table(
            "hub",
            TableStats::new(50_000, 2_500_000, vec![ColumnStats::plain("a", 100)]),
        );
        let spoke = || TableStats::new(1000, 50_000, vec![ColumnStats::plain("a", 100)]);
        let s1 = cat.add_table("s1", spoke());
        let s2 = cat.add_table("s2", spoke());
        let x = cat.add_table(
            "x",
            TableStats::new(7000, 300_000, vec![ColumnStats::plain("a", 100)]),
        );
        let q = Query {
            tables: [hub, s1, s2, x].into_iter().map(QueryTable::bare).collect(),
            joins: vec![
                JoinPredicate::exact(ColumnRef::new(0, 0), ColumnRef::new(1, 0), 1e-5),
                JoinPredicate::exact(ColumnRef::new(0, 0), ColumnRef::new(2, 0), 1e-5),
                JoinPredicate::exact(ColumnRef::new(1, 0), ColumnRef::new(3, 0), 1e-4),
            ],
            required_order: None,
        };
        let canon = QueryCanonizer::new(&cat, &q);
        assert!(
            canon
                .subquery(TableSet::from_indices([0, 1, 2, 3]))
                .is_none(),
            "the root contains the twin pair and must be refused"
        );
        assert!(canon.subquery(TableSet::from_indices([0, 1, 2])).is_none());
        // Twin-free subsets stay eligible.
        assert!(canon.subquery(TableSet::from_indices([0, 1, 3])).is_some());
        assert!(canon.subquery(TableSet::from_indices([0, 2])).is_some());
    }

    #[test]
    fn twin_tables_inside_a_subset_are_refused() {
        let mut cat = Catalog::new();
        let hub = cat.add_table(
            "hub",
            TableStats::new(50_000, 2_500_000, vec![ColumnStats::plain("a", 100)]),
        );
        let spoke = || TableStats::new(1000, 50_000, vec![ColumnStats::plain("a", 100)]);
        let s1 = cat.add_table("s1", spoke());
        let s2 = cat.add_table("s2", spoke());
        let q = Query {
            tables: vec![
                QueryTable::bare(hub),
                QueryTable::bare(s1),
                QueryTable::bare(s2),
            ],
            joins: vec![
                JoinPredicate::exact(ColumnRef::new(0, 0), ColumnRef::new(1, 0), 1e-5),
                JoinPredicate::exact(ColumnRef::new(0, 0), ColumnRef::new(2, 0), 1e-5),
            ],
            required_order: None,
        };
        let canon = QueryCanonizer::new(&cat, &q);
        assert!(
            canon.subquery(TableSet::from_indices([0, 1, 2])).is_none(),
            "twin spokes inside the subset are label-ambiguous"
        );
        // The twin-free sub-pairs stay eligible.
        assert!(canon.subquery(TableSet::from_indices([0, 1])).is_some());
        assert!(canon.subquery(TableSet::from_indices([0, 2])).is_some());
    }

    #[test]
    fn bit_relabeling_round_trips() {
        let (cat, q) = chain(6);
        let canon = QueryCanonizer::new(&cat, &q);
        let set = TableSet::from_indices([2, 3, 4]);
        let form = canon.subquery(set).unwrap();
        let whole = form.canonical_bits(set.bits());
        assert_eq!(whole.count_ones() as usize, 3);
        assert_eq!(form.global_bits(whole), set.bits());
        let part = TableSet::from_indices([2, 4]).bits();
        assert_eq!(form.global_bits(form.canonical_bits(part)), part);
    }
}
