//! # lec-canon — canonical query and subquery shapes
//!
//! Label-free normal forms for optimization requests, shared by the
//! serving layer's cross-query plan cache (`lec-service`) and the DP
//! engine's per-node subplan memo (`lec-core`).
//!
//! Two requests — or two DP nodes — should share cached work exactly when
//! the optimizer would do the same computation for both, which is a
//! statement about the *shape* of the request (statistics fingerprints,
//! filters, join predicates, selectivity distributions) and never about
//! its query-local table numbering.  This crate computes canonical
//! relabelings at two granularities:
//!
//! * **whole queries** ([`canonical_form`]): the [`CanonicalForm`] behind
//!   `lec-service`'s plan-cache keys — an *exact* encoding (every bit the
//!   cost model can observe, join predicates in original vector order and
//!   orientation because floating-point selectivity products fold in that
//!   order) and a *weak* bucketed one (log₂ size/selectivity buckets,
//!   sorted edges) for near-miss revalidation;
//! * **connected subqueries** ([`QueryCanonizer::subquery`]): the
//!   [`SubplanForm`] keying the engine's [`lec_core`-side] subplan memo.
//!   The induced subgraph of one DP node is canonicalized by sorting its
//!   members on their exact occurrence fingerprints — any *twin pair*
//!   (equal fingerprints) refuses the subset, which both uniquifies the
//!   permutation and, more importantly, makes every tie-break at and
//!   below the node provably label-independent — *plus* the restriction
//!   of the whole query's column-equivalence relation to the subquery's
//!   columns, since interesting-order bookkeeping (and therefore
//!   domination pruning) observes equivalences created by joins *outside*
//!   the subquery.
//!
//! Both granularities refuse shapes whose DP tie-breaks are inherently
//! label-dependent.  Whole queries are refused on a nontrivial exact
//! automorphism of the body **or** a swappable twin pair inside any
//! connected induced subgraph (a third table that disambiguates the
//! twins globally never enters the symmetric subgraph's dag node, so
//! body-level asymmetry is not enough); subqueries are refused on any
//! twin pair at all, the stronger condition their inductive reuse
//! requires.  Shapes too large or too symmetric to canonicalize cheaply
//! ([`MAX_CANON_TABLES`], [`MAX_CANDIDATE_PERMS`]) are likewise declared
//! uncacheable rather than slow.
//!
//! [`lec_core`-side]: https://docs.rs/lec-core

mod query;
mod subplan;

pub use query::{
    canonical_form, CanonicalForm, RefusalReason, MAX_CANDIDATE_PERMS, MAX_CANON_TABLES,
};
pub use subplan::{QueryCanonizer, SubplanForm};

/// Invert a permutation: `inv[perm[i]] = i`.
pub(crate) fn invert(perm: &[usize]) -> Vec<usize> {
    let mut inv = vec![0usize; perm.len()];
    for (orig, &canon) in perm.iter().enumerate() {
        inv[canon] = orig;
    }
    inv
}

/// All permutations of `items` in lexicographic order (by position).
pub(crate) fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
    if items.len() <= 1 {
        return vec![items.to_vec()];
    }
    let mut out = Vec::new();
    for (i, &head) in items.iter().enumerate() {
        let mut rest = items.to_vec();
        rest.remove(i);
        for tail in permutations(&rest) {
            let mut p = Vec::with_capacity(items.len());
            p.push(head);
            p.extend(tail);
            out.push(p);
        }
    }
    out
}

pub(crate) fn distinct(colors: &[u64]) -> usize {
    let mut sorted = colors.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

pub(crate) fn factorial(k: usize) -> u128 {
    (1..=k as u128).product()
}
