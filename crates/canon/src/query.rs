//! Canonical whole-query shapes: the normal form behind cross-query cache
//! keys.
//!
//! Two optimization requests should share a cached plan exactly when the
//! DP would do the same work for both — which is a statement about the
//! *shape* of the request, not its table numbering.  This module computes,
//! for a query, a canonical relabeling of its tables (a permutation
//! `perm[original] = canonical`) together with two encodings of the
//! relabeled query:
//!
//! * the **exact** encoding captures every bit the cost model can observe
//!   — per-table statistics fingerprints, filters, join predicates *in
//!   their original vector order and orientation* (floating-point products
//!   are taken in that order, so it is part of the computation's identity),
//!   selectivity distributions, and the required output order.  Two
//!   requests with equal exact encodings are the same computation up to
//!   table renaming, and a cached plan can be served by relabeling alone;
//! * the **weak** encoding buckets table sizes (log₂ pages/rows) and
//!   selectivities (log₂ of the mean) and sorts the edge list, so queries
//!   whose parameters drifted within a bucket — or whose predicates were
//!   merely reordered — still meet.  A weak hit cannot be served directly,
//!   but it identifies the cached plan to *revalidate* against.
//!
//! The canonical permutation is found by Weisfeiler–Leman colour
//! refinement over the weak per-table attributes, followed by exhaustive
//! minimization over the (usually single) permutation consistent with the
//! refined colour classes: among all candidates, the one whose weak
//! encoding — then exact encoding — is lexicographically least.  Ties
//! inside a colour class (genuinely interchangeable tables) resolve
//! toward the identity order, matching the DP's own first-wins tie-breaks.
//! Queries larger than [`MAX_CANON_TABLES`], with more than
//! [`MAX_CANDIDATE_PERMS`] residual candidates (a near-regular graph of
//! near-identical tables), or whose join-graph body admits a *nontrivial
//! exact automorphism* — interchangeable twin tables, between which the
//! DP's tie-breaks are unavoidably label-dependent — are declared
//! uncacheable rather than risking a served plan that a fresh search
//! would not reproduce.

use crate::{distinct, factorial, invert, permutations};
use lec_catalog::{Catalog, IndexKind};
use lec_cost::Fingerprint;
use lec_plan::Query;

/// Largest query the canonicalizer will touch.  Beyond this the subset
/// DP itself is the dominant cost and caching whole requests stops being
/// the interesting lever (the engine's own level fan-out takes over).
pub const MAX_CANON_TABLES: usize = 12;

/// Cap on candidate permutations examined after colour refinement (7! —
/// a fully symmetric 7-table clique of identical tables).  Above this the
/// query is declared uncacheable.
pub const MAX_CANDIDATE_PERMS: u128 = 5040;

/// Why [`canonical_form`] refused to canonicalize a query.  Each variant
/// is a distinct operational signal: `TooManyTables` says the workload
/// outgrew the canonicalizer's size cap, `TooManyPermutations` says the
/// query shape is too regular to label cheaply, and `TwinTables` says the
/// query contains interchangeable tables between which the DP's
/// tie-breaks are label-dependent.  Services count refusals per reason so
/// a cache whose hit rate collapses can say *why* requests stopped being
/// cacheable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RefusalReason {
    /// The query is empty or exceeds [`MAX_CANON_TABLES`] tables.
    TooManyTables,
    /// Colour refinement left more than [`MAX_CANDIDATE_PERMS`] candidate
    /// labelings — a near-regular graph of near-identical tables.
    TooManyPermutations,
    /// The body admits a nontrivial exact automorphism (whole-body or a
    /// local twin swap): interchangeable tables whose tie-breaks a served
    /// relabeling could not reproduce.
    TwinTables,
}

impl RefusalReason {
    /// Stable snake_case name, used as the JSON metrics key suffix.
    pub fn name(self) -> &'static str {
        match self {
            RefusalReason::TooManyTables => "too_many_tables",
            RefusalReason::TooManyPermutations => "too_many_permutations",
            RefusalReason::TwinTables => "twin_tables",
        }
    }
}

/// A query's canonical relabeling and its two cache-key encodings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalForm {
    /// `perm[i]` is the canonical index of original table `i`.
    pub perm: Vec<usize>,
    /// Exact encoding of the relabeled query (see module docs).
    pub exact: Vec<u64>,
    /// Bucketed shape encoding of the relabeled query.
    pub weak: Vec<u64>,
}

impl CanonicalForm {
    /// The inverse permutation: `inv[canonical] = original`, for carrying
    /// a canonically-labeled cached plan back to the caller's numbering.
    pub fn inverse_perm(&self) -> Vec<usize> {
        invert(&self.perm)
    }
}

/// Everything the cost model can observe about one table occurrence —
/// the same fingerprint the engine's tie-breaks use
/// ([`lec_cost::CostModel::table_shape_fingerprint`]), which is what makes
/// a served plan relabel onto exactly the plan a fresh search would pick.
fn exact_table_attr(catalog: &Catalog, query: &Query, idx: usize) -> u64 {
    lec_cost::table_occurrence_fingerprint(catalog, query, idx)
}

/// The bucketed view of the same occurrence: log₂ size buckets plus the
/// plan-space-shaping structure (column count, index kinds, filter
/// column) that decides which access paths and interesting orders exist.
fn weak_table_attr(catalog: &Catalog, query: &Query, idx: usize) -> u64 {
    let qt = &query.tables[idx];
    let stats = &catalog.table(qt.table).stats;
    let mut fp = Fingerprint::new()
        .u64(stats.pages.ilog2() as u64)
        .u64(stats.rows.max(1).ilog2() as u64)
        .u64(stats.columns.len() as u64);
    for col in &stats.columns {
        fp = fp.u64(match col.index {
            IndexKind::None => 0,
            IndexKind::Clustered => 1,
            IndexKind::Unclustered => 2,
        });
    }
    match &qt.filter {
        Some(f) => fp.u64(1).u64(f.column as u64),
        None => fp.u64(0),
    }
    .finish()
}

/// Log₂ bucket of a selectivity's mean, as the weak edge label.  (Cast of
/// a negative floor to `u64` wraps, which is fine for a bucket id — it
/// only ever needs to be deterministic and discriminating.)
fn weak_sel_bucket(mean: f64) -> u64 {
    mean.log2().floor() as i64 as u64
}

/// Per-join precomputed labels: weak bucket and exact distribution
/// fingerprint.
struct EdgeLabels {
    weak: u64,
    exact: u64,
}

/// Body-only weak encoding: tables and edges, *without* the required
/// output order.  The canonical permutation (and the automorphism check
/// gating cacheability) works on the body, because that is all the DP's
/// sub-root tie-breaks can see — a required order only acts at root
/// finalization and must not mask an interchangeable-twin symmetry.
fn weak_encoding(
    query: &Query,
    weak_attr: &[u64],
    labels: &[EdgeLabels],
    perm: &[usize],
) -> Vec<u64> {
    let n = query.n_tables();
    let inv = invert(perm);
    let mut out = Vec::with_capacity(1 + n + query.joins.len() * 5);
    out.push(n as u64);
    for canon in 0..n {
        out.push(weak_attr[inv[canon]]);
    }
    let mut edges: Vec<[u64; 5]> = query
        .joins
        .iter()
        .zip(labels)
        .map(|(j, l)| {
            let (u, cu) = (perm[j.left.table] as u64, j.left.column as u64);
            let (v, cv) = (perm[j.right.table] as u64, j.right.column as u64);
            if u <= v {
                [u, cu, v, cv, l.weak]
            } else {
                [v, cv, u, cu, l.weak]
            }
        })
        .collect();
    edges.sort_unstable();
    for e in edges {
        out.extend_from_slice(&e);
    }
    out
}

/// Body-only exact encoding (see [`weak_encoding`] for why the required
/// order is excluded here and appended afterwards).
fn exact_encoding(
    query: &Query,
    exact_attr: &[u64],
    labels: &[EdgeLabels],
    perm: &[usize],
) -> Vec<u64> {
    let n = query.n_tables();
    let inv = invert(perm);
    let mut out = Vec::with_capacity(1 + n + query.joins.len() * 5);
    out.push(n as u64);
    for canon in 0..n {
        out.push(exact_attr[inv[canon]]);
    }
    // Joins in original vector order and orientation: selectivity products
    // are folded in this order, so it is part of the computation's
    // identity (see the module docs).
    for (j, l) in query.joins.iter().zip(labels) {
        out.extend_from_slice(&[
            perm[j.left.table] as u64,
            j.left.column as u64,
            perm[j.right.table] as u64,
            j.right.column as u64,
            l.exact,
        ]);
    }
    out
}

/// Order-insensitive exact body encoding: exact table attributes plus the
/// *sorted* multiset of exactly-labeled edges.  This is the encoding the
/// automorphism check runs on — the DP's tie-breaks observe tables and
/// predicates by content, not by their position in the joins vector, so a
/// symmetry must be detected even between permutations that shuffle
/// identical predicates past each other (which the original-order
/// [`exact_encoding`] would spuriously distinguish).
fn sym_encoding(
    query: &Query,
    exact_attr: &[u64],
    labels: &[EdgeLabels],
    perm: &[usize],
) -> Vec<u64> {
    let n = query.n_tables();
    let inv = invert(perm);
    let mut out = Vec::with_capacity(1 + n + query.joins.len() * 5);
    out.push(n as u64);
    for canon in 0..n {
        out.push(exact_attr[inv[canon]]);
    }
    let mut edges: Vec<[u64; 5]> = query
        .joins
        .iter()
        .zip(labels)
        .map(|(j, l)| {
            let (u, cu) = (perm[j.left.table] as u64, j.left.column as u64);
            let (v, cv) = (perm[j.right.table] as u64, j.right.column as u64);
            if u <= v {
                [u, cu, v, cv, l.exact]
            } else {
                [v, cv, u, cu, l.exact]
            }
        })
        .collect();
    edges.sort_unstable();
    for e in edges {
        out.extend_from_slice(&e);
    }
    out
}

/// True when some pair of equal-fingerprint tables admits a *local swap
/// symmetry*: a self-mirrored set of edges between the two, or a third
/// table to which both relate with identical oriented edge labels.
/// Either witness means the transposition of the pair is an exact
/// automorphism of a small **connected induced subgraph** — and the DP's
/// tie-breaks inside that subgraph's dag node are label-dependent even
/// when the *whole* query body is asymmetric (a distinguishing table
/// elsewhere never enters that node).  Such queries cannot be served by
/// relabeling and are declared uncacheable, exactly like whole-body
/// automorphisms.  (Higher-order subgraph symmetries with no swappable
/// pair — e.g. label-alternating cycles of twins moved only by k-cycles —
/// are not detected; like fingerprint collisions, they are accepted as a
/// beyond-adversarial residual.)
fn twin_swap_exists(exact_attr: &[u64], query: &Query, labels: &[EdgeLabels]) -> bool {
    use std::collections::HashMap;
    let n = exact_attr.len();
    for a in 0..n {
        for b in a + 1..n {
            if exact_attr[a] != exact_attr[b] {
                continue;
            }
            // Edges between a and b (oriented from a's side), and each
            // one's edges to every third table (oriented from the pair's
            // side).
            let mut mutual: Vec<(u64, u64, u64)> = Vec::new();
            let mut to_a: HashMap<usize, Vec<(u64, u64, u64)>> = HashMap::new();
            let mut to_b: HashMap<usize, Vec<(u64, u64, u64)>> = HashMap::new();
            for (j, l) in query.joins.iter().zip(labels) {
                let (u, cu) = (j.left.table, j.left.column as u64);
                let (v, cv) = (j.right.table, j.right.column as u64);
                if (u, v) == (a, b) {
                    mutual.push((cu, cv, l.exact));
                } else if (u, v) == (b, a) {
                    mutual.push((cv, cu, l.exact));
                } else if u == a {
                    to_a.entry(v).or_default().push((cu, cv, l.exact));
                } else if v == a {
                    to_a.entry(u).or_default().push((cv, cu, l.exact));
                } else if u == b {
                    to_b.entry(v).or_default().push((cu, cv, l.exact));
                } else if v == b {
                    to_b.entry(u).or_default().push((cv, cu, l.exact));
                }
            }
            if !mutual.is_empty() {
                // Swapping a and b flips each mutual edge's column pair;
                // a self-mirrored multiset makes {a, b} automorphic on
                // its own.  Asymmetric mutual edges pin the pair apart in
                // *every* induced subgraph (they are always included), so
                // the common-neighbour test below is moot either way.
                let mut orig = mutual.clone();
                let mut flipped: Vec<_> = mutual.iter().map(|&(x, y, l)| (y, x, l)).collect();
                orig.sort_unstable();
                flipped.sort_unstable();
                if orig == flipped {
                    return true;
                }
                continue;
            }
            for (t, ea) in &mut to_a {
                if let Some(eb) = to_b.get_mut(t) {
                    ea.sort_unstable();
                    eb.sort_unstable();
                    if ea == eb {
                        return true;
                    }
                }
            }
        }
    }
    false
}

/// Append the required-order suffix to a body encoding under `perm`.
fn push_required_order(out: &mut Vec<u64>, query: &Query, perm: &[usize]) {
    match &query.required_order {
        Some(c) => out.extend_from_slice(&[1, perm[c.table] as u64, c.column as u64]),
        None => out.push(0),
    }
}

/// Compute the canonical form of `query`, or the [`RefusalReason`] when
/// the query is too large or too symmetric to canonicalize cheaply (the
/// caller then treats the request as uncacheable, counting the reason).
pub fn canonical_form(catalog: &Catalog, query: &Query) -> Result<CanonicalForm, RefusalReason> {
    let n = query.n_tables();
    if n == 0 || n > MAX_CANON_TABLES {
        return Err(RefusalReason::TooManyTables);
    }
    let exact_attr: Vec<u64> = (0..n)
        .map(|i| exact_table_attr(catalog, query, i))
        .collect();
    let weak_attr: Vec<u64> = (0..n).map(|i| weak_table_attr(catalog, query, i)).collect();
    let labels: Vec<EdgeLabels> = query
        .joins
        .iter()
        .map(|j| EdgeLabels {
            weak: weak_sel_bucket(j.selectivity.mean()),
            exact: lec_cost::dist_fingerprint(&j.selectivity),
        })
        .collect();

    // Interchangeable twins anywhere in the body — even inside a proper
    // subgraph a third table disambiguates globally — make sub-root
    // tie-breaks label-dependent; refuse before doing any more work.
    if twin_swap_exists(&exact_attr, query, &labels) {
        return Err(RefusalReason::TwinTables);
    }

    // Adjacency with oriented weak edge labels, for colour refinement.
    let mut adj: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
    for (j, l) in query.joins.iter().zip(&labels) {
        let (a, ca) = (j.left.table, j.left.column as u64);
        let (b, cb) = (j.right.table, j.right.column as u64);
        let from_a = Fingerprint::new().u64(ca).u64(cb).u64(l.weak).finish();
        let from_b = Fingerprint::new().u64(cb).u64(ca).u64(l.weak).finish();
        adj[a].push((b, from_a));
        adj[b].push((a, from_b));
    }

    let colors = refine_colors(weak_attr.clone(), &adj);

    // Colour classes, ordered by colour value; members ascend by original
    // index so the identity-leaning candidate is enumerated first.
    let classes = color_classes(&colors);

    let mut candidates: u128 = 1;
    for class in &classes {
        candidates = candidates.saturating_mul(factorial(class.len()));
        if candidates > MAX_CANDIDATE_PERMS {
            return Err(RefusalReason::TooManyPermutations);
        }
    }

    // Enumerate all class-respecting permutations via an odometer over the
    // per-class orderings, minimizing (weak encoding, exact encoding).
    let class_perms: Vec<Vec<Vec<usize>>> = classes.iter().map(|c| permutations(c)).collect();
    let class_base: Vec<usize> = class_bases(&classes);
    let mut odo = vec![0usize; classes.len()];
    let mut best: Option<(Vec<u64>, Vec<u64>, Vec<usize>)> = None;
    // The automorphism detector: the minimal order-insensitive exact body
    // encoding seen so far, the perm that achieved it, and whether a
    // *different* perm reproduced it.  Two distinct permutations with
    // equal [`sym_encoding`]s compose into a nontrivial exact
    // automorphism: the query contains interchangeable twin tables, the
    // DP's sub-root tie-breaks between them are label-dependent
    // (plan_shape_cmp sees equal fingerprints and falls back to
    // first-wins), and a served relabeling could legitimately differ from
    // a fresh search — so the query is declared uncacheable.
    let mut best_sym: Option<(Vec<u64>, Vec<usize>)> = None;
    let mut automorphic = false;
    loop {
        let mut perm = vec![0usize; n];
        for (ci, &choice) in odo.iter().enumerate() {
            for (pos, &orig) in class_perms[ci][choice].iter().enumerate() {
                perm[orig] = class_base[ci] + pos;
            }
        }
        let sym = sym_encoding(query, &exact_attr, &labels, &perm);
        match &best_sym {
            None => best_sym = Some((sym, perm.clone())),
            Some((bs, bp)) => match sym.cmp(bs) {
                std::cmp::Ordering::Less => {
                    automorphic = false;
                    best_sym = Some((sym, perm.clone()));
                }
                std::cmp::Ordering::Equal => {
                    if perm != *bp {
                        automorphic = true;
                    }
                }
                std::cmp::Ordering::Greater => {}
            },
        }
        let weak = weak_encoding(query, &weak_attr, &labels, &perm);
        let better = match &best {
            None => true,
            Some((bw, be, _)) => {
                weak.cmp(bw)
                    .then_with(|| exact_encoding(query, &exact_attr, &labels, &perm).cmp(be))
                    == std::cmp::Ordering::Less
            }
        };
        if better {
            let exact = exact_encoding(query, &exact_attr, &labels, &perm);
            best = Some((weak, exact, perm));
        }
        // Advance the odometer.
        let mut ci = 0;
        loop {
            if ci == odo.len() {
                if automorphic {
                    return Err(RefusalReason::TwinTables);
                }
                let (mut weak, mut exact, perm) = best.expect("at least one candidate");
                push_required_order(&mut weak, query, &perm);
                push_required_order(&mut exact, query, &perm);
                return Ok(CanonicalForm { perm, exact, weak });
            }
            odo[ci] += 1;
            if odo[ci] < class_perms[ci].len() {
                break;
            }
            odo[ci] = 0;
            ci += 1;
        }
    }
}

/// Weisfeiler–Leman refinement: a table's colour absorbs the sorted
/// multiset of (edge label, neighbour colour).  Colours only ever split
/// (each round's signature includes the previous colour), so iteration
/// stops when the number of classes stops growing.  Shared by the
/// whole-query and subquery canonicalizers.
pub(crate) fn refine_colors(mut colors: Vec<u64>, adj: &[Vec<(usize, u64)>]) -> Vec<u64> {
    let n = colors.len();
    let mut n_classes = distinct(&colors);
    for _ in 0..n {
        let next: Vec<u64> = (0..n)
            .map(|i| {
                let mut neigh: Vec<(u64, u64)> =
                    adj[i].iter().map(|&(j, e)| (e, colors[j])).collect();
                neigh.sort_unstable();
                let mut fp = Fingerprint::new().u64(colors[i]);
                for (e, c) in neigh {
                    fp = fp.u64(e).u64(c);
                }
                fp.finish()
            })
            .collect();
        let next_classes = distinct(&next);
        if next_classes == n_classes {
            break;
        }
        colors = next;
        n_classes = next_classes;
    }
    colors
}

/// Colour classes ordered by colour value, members ascending by original
/// index (so the identity-leaning candidate is enumerated first).
pub(crate) fn color_classes(colors: &[u64]) -> Vec<Vec<usize>> {
    let mut members: Vec<usize> = (0..colors.len()).collect();
    members.sort_by_key(|&i| (colors[i], i));
    let mut classes: Vec<Vec<usize>> = Vec::new();
    for &i in &members {
        match classes.last_mut() {
            Some(class) if colors[class[0]] == colors[i] => class.push(i),
            _ => classes.push(vec![i]),
        }
    }
    classes
}

/// Starting canonical index of each class (classes are laid out
/// contiguously in class order).
pub(crate) fn class_bases(classes: &[Vec<usize>]) -> Vec<usize> {
    classes
        .iter()
        .scan(0usize, |acc, c| {
            let base = *acc;
            *acc += c.len();
            Some(base)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lec_catalog::{Catalog, ColumnStats, TableStats};
    use lec_plan::{ColumnRef, JoinPredicate, Query, QueryTable};

    /// A chain with strictly growing table sizes (no symmetry).
    fn chain(n: usize) -> (Catalog, Query) {
        let mut cat = Catalog::new();
        let ids: Vec<_> = (0..n)
            .map(|i| {
                cat.add_table(
                    format!("T{i}"),
                    TableStats::new(
                        1000 * (i as u64 + 1),
                        50_000 * (i as u64 + 1),
                        vec![ColumnStats::plain("a", 100), ColumnStats::plain("b", 100)],
                    ),
                )
            })
            .collect();
        let q = Query {
            tables: ids.into_iter().map(QueryTable::bare).collect(),
            joins: (0..n - 1)
                .map(|i| JoinPredicate::exact(ColumnRef::new(i, 1), ColumnRef::new(i + 1, 0), 1e-5))
                .collect(),
            required_order: None,
        };
        (cat, q)
    }

    #[test]
    fn renamed_queries_share_their_canonical_form() {
        let (cat, q) = chain(5);
        let base = canonical_form(&cat, &q).unwrap();
        let map = [3usize, 0, 4, 1, 2];
        let renamed = q.relabel_tables(&map);
        let other = canonical_form(&cat, &renamed).unwrap();
        assert_eq!(base.exact, other.exact);
        assert_eq!(base.weak, other.weak);
        // The permutations compose: original i and renamed map[i] land on
        // the same canonical index.
        for (i, &m) in map.iter().enumerate() {
            assert_eq!(base.perm[i], other.perm[m]);
        }
    }

    #[test]
    fn inverse_perm_inverts() {
        let (cat, q) = chain(4);
        let form = canonical_form(&cat, &q).unwrap();
        let inv = form.inverse_perm();
        for i in 0..4 {
            assert_eq!(inv[form.perm[i]], i);
        }
    }

    #[test]
    fn selectivity_drift_changes_exact_but_not_weak() {
        let (cat, mut q) = chain(4);
        let base = canonical_form(&cat, &q).unwrap();
        // Nudge a selectivity within its log2 bucket.
        q.joins[1].selectivity = lec_prob::Distribution::point(1.01e-5);
        let drift = canonical_form(&cat, &q).unwrap();
        assert_eq!(base.weak, drift.weak, "same shape bucket");
        assert_ne!(base.exact, drift.exact, "different exact computation");
    }

    #[test]
    fn required_order_participates_in_both_keys() {
        let (cat, mut q) = chain(4);
        let base = canonical_form(&cat, &q).unwrap();
        q.required_order = Some(ColumnRef::new(2, 0));
        let ordered = canonical_form(&cat, &q).unwrap();
        assert_ne!(base.weak, ordered.weak);
        assert_ne!(base.exact, ordered.exact);
    }

    #[test]
    fn oversize_and_hypersymmetric_queries_are_uncacheable() {
        let (cat, q) = chain(MAX_CANON_TABLES + 1);
        assert_eq!(canonical_form(&cat, &q), Err(RefusalReason::TooManyTables));

        // A clique of eight *identical* tables is refused for its twins
        // (the pairwise automorphism check fires before any permutation is
        // enumerated).
        let clique = |stats: &dyn Fn(usize) -> TableStats| {
            let mut cat = Catalog::new();
            let ids: Vec<_> = (0..8)
                .map(|i| cat.add_table(format!("C{i}"), stats(i)))
                .collect();
            let mut joins = Vec::new();
            for i in 0..8 {
                for j in i + 1..8 {
                    joins.push(JoinPredicate::exact(
                        ColumnRef::new(i, 0),
                        ColumnRef::new(j, 0),
                        1e-5,
                    ));
                }
            }
            let q = Query {
                tables: ids.into_iter().map(QueryTable::bare).collect(),
                joins,
                required_order: None,
            };
            (cat, q)
        };
        let (cat, q) =
            clique(&|_| TableStats::new(1000, 50_000, vec![ColumnStats::plain("a", 100)]));
        assert_eq!(canonical_form(&cat, &q), Err(RefusalReason::TwinTables));

        // The same clique with row counts drifted inside one log₂ bucket:
        // no exact twins, but the weak attributes (all colour refinement
        // can see) stay equal, leaving 8! candidate labelings.
        let (cat, q) = clique(&|i| {
            TableStats::new(1000, 50_000 + i as u64, vec![ColumnStats::plain("a", 100)])
        });
        assert_eq!(
            canonical_form(&cat, &q),
            Err(RefusalReason::TooManyPermutations)
        );
    }

    #[test]
    fn globally_distinguished_twins_are_still_uncacheable() {
        // Hub H with twin spokes S1/S2 (equal stats, equal selectivities)
        // plus X joined only to S1.  The *whole body* has no automorphism
        // (X breaks the symmetry), but the induced subgraph {H, S1, S2}
        // does — and the DP's node for that subset breaks the twin tie by
        // arrival order, so a renamed request could legitimately get the
        // other twin first.  The pairwise twin-swap witness must refuse
        // the query even though the body-level check cannot see it.
        let mut cat = Catalog::new();
        let hub = cat.add_table(
            "hub",
            TableStats::new(50_000, 2_500_000, vec![ColumnStats::plain("a", 100)]),
        );
        let spoke = || TableStats::new(1000, 50_000, vec![ColumnStats::plain("a", 100)]);
        let s1 = cat.add_table("s1", spoke());
        let s2 = cat.add_table("s2", spoke());
        let x = cat.add_table(
            "x",
            TableStats::new(7000, 300_000, vec![ColumnStats::plain("a", 100)]),
        );
        let mut q = Query {
            tables: [hub, s1, s2, x].into_iter().map(QueryTable::bare).collect(),
            joins: vec![
                JoinPredicate::exact(ColumnRef::new(0, 0), ColumnRef::new(1, 0), 1e-5),
                JoinPredicate::exact(ColumnRef::new(0, 0), ColumnRef::new(2, 0), 1e-5),
                JoinPredicate::exact(ColumnRef::new(1, 0), ColumnRef::new(3, 0), 1e-4),
            ],
            required_order: None,
        };
        assert_eq!(
            canonical_form(&cat, &q),
            Err(RefusalReason::TwinTables),
            "a subgraph-level twin symmetry must refuse the whole query"
        );
        // Distinct spoke selectivities break the sub-symmetry too.
        q.joins[1].selectivity = lec_prob::Distribution::point(3e-5);
        assert!(canonical_form(&cat, &q).is_ok());
    }

    #[test]
    fn automorphic_twin_tables_are_uncacheable() {
        // A star whose spokes are pairwise identical admits nontrivial
        // exact automorphisms: the DP's tie-breaks between twin spokes
        // are label-dependent (equal shape fingerprints), so serving a
        // relabeled cached plan could diverge from a fresh search — the
        // canonicalizer must refuse such queries.
        let mut cat = Catalog::new();
        let hub = cat.add_table(
            "hub",
            TableStats::new(50_000, 2_500_000, vec![ColumnStats::plain("a", 100)]),
        );
        let spoke_stats = || TableStats::new(1000, 50_000, vec![ColumnStats::plain("a", 100)]);
        let spokes: Vec<_> = (0..4)
            .map(|i| cat.add_table(format!("s{i}"), spoke_stats()))
            .collect();
        let mut tables = vec![QueryTable::bare(hub)];
        tables.extend(spokes.into_iter().map(QueryTable::bare));
        let mut q = Query {
            tables,
            joins: (1..5)
                .map(|i| JoinPredicate::exact(ColumnRef::new(0, 0), ColumnRef::new(i, 0), 1e-5))
                .collect(),
            required_order: None,
        };
        assert_eq!(
            canonical_form(&cat, &q),
            Err(RefusalReason::TwinTables),
            "twin spokes"
        );
        // A required order distinguishes one spoke globally, but the DP
        // never sees it below the root — the body symmetry (and so the
        // refusal) must stand.
        q.required_order = Some(ColumnRef::new(2, 0));
        assert_eq!(
            canonical_form(&cat, &q),
            Err(RefusalReason::TwinTables),
            "a root order requirement must not mask the twin symmetry"
        );
        // Making the spokes' join selectivities distinct breaks the
        // automorphism and restores cacheability.
        for (i, j) in q.joins.iter_mut().enumerate() {
            j.selectivity = lec_prob::Distribution::point(1e-5 * (i + 1) as f64);
        }
        assert!(canonical_form(&cat, &q).is_ok());
    }
}
