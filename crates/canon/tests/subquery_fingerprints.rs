//! Subquery-fingerprint properties: the keys behind the DP engine's
//! subplan memo must be invariant under table renaming (isomorphic
//! subqueries collide) and must *never* collide across genuinely
//! different computations (distinct statistics, filters, selectivity
//! distributions, or externally-merged order classes).

use lec_canon::QueryCanonizer;
use lec_plan::{Query, QueryProfile, TableSet, Topology, WorkloadGenerator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn workload(seed: u64, n: usize, topology: Topology) -> (lec_catalog::Catalog, Query) {
    let mut g = lec_catalog::CatalogGenerator::new(seed);
    let cat = g.generate(n + 2);
    let ids = g.pick_tables(&cat, n);
    let mut wg = WorkloadGenerator::new(seed ^ 0xD0D0);
    let q = wg.gen_query(
        &cat,
        &ids,
        &QueryProfile {
            topology,
            ..Default::default()
        },
    );
    (cat, q)
}

fn random_perm(rng: &mut StdRng, n: usize) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

/// Every connected subset of 2..n tables, by brute force over the join
/// graph.
fn connected_subsets(q: &Query) -> Vec<TableSet> {
    let n = q.n_tables();
    let mut adj = vec![0u64; n];
    for j in &q.joins {
        adj[j.left.table] |= 1 << j.right.table;
        adj[j.right.table] |= 1 << j.left.table;
    }
    let mut out = Vec::new();
    for bits in 1u64..(1u64 << n) {
        if bits.count_ones() < 2 {
            continue;
        }
        let mut comp = bits & bits.wrapping_neg();
        loop {
            let mut grown = comp;
            let mut rest = comp;
            while rest != 0 {
                let i = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                grown |= adj[i] & bits;
            }
            if grown == comp {
                break;
            }
            comp = grown;
        }
        if comp == bits {
            out.push(TableSet::from_bits(bits));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Renaming a query's tables maps every eligible subquery fingerprint
    /// onto itself: the keys collide and the canonical maps compose.
    #[test]
    fn subquery_keys_are_renaming_invariant(
        seed in 0u64..5000,
        n in 3usize..7,
        topo in 0usize..3,
    ) {
        let topology = [Topology::Chain, Topology::Star, Topology::Random][topo];
        let (cat, q) = workload(seed, n, topology);
        let canon = QueryCanonizer::new(&cat, &q);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
        let map = random_perm(&mut rng, n);
        let renamed = q.relabel_tables(&map);
        let rcanon = QueryCanonizer::new(&cat, &renamed);

        for set in connected_subsets(&q) {
            let mapped = TableSet::from_indices(set.iter().map(|i| map[i]));
            match (canon.subquery(set), rcanon.subquery(mapped)) {
                (Some(a), Some(b)) => {
                    prop_assert_eq!(&a.key, &b.key,
                        "renamed subquery must share its key (set {:?})", set);
                    // Corresponding tables land on the same canonical slot.
                    let am = a.to_canonical(n);
                    let bm = b.to_canonical(n);
                    for g in set.iter() {
                        prop_assert_eq!(am[g], bm[map[g]]);
                    }
                }
                (None, None) => {} // eligibility is label-free too
                (a, b) => prop_assert!(
                    false,
                    "eligibility must be renaming-invariant (set {:?}: {} vs {})",
                    set, a.is_some(), b.is_some()
                ),
            }
        }
    }

    /// Perturbing anything the cost model can observe — a join
    /// selectivity, a filter, a table's statistics — changes every
    /// fingerprint whose subquery contains the perturbation, and leaves
    /// the untouched subqueries' keys alone.
    #[test]
    fn perturbations_never_collide(
        seed in 0u64..5000,
        n in 3usize..7,
        join_idx in 0usize..8,
        factor in 1.5f64..5.0,
    ) {
        let (cat, q) = workload(seed, n, Topology::Chain);
        let canon = QueryCanonizer::new(&cat, &q);
        let ji = join_idx % q.joins.len();
        let mut drifted = q.clone();
        let base_sel = drifted.joins[ji].selectivity.mean();
        drifted.joins[ji].selectivity = lec_prob::Distribution::point(base_sel * factor);
        let dcanon = QueryCanonizer::new(&cat, &drifted);
        let (a, b) = (drifted.joins[ji].left.table, drifted.joins[ji].right.table);

        for set in connected_subsets(&q) {
            let (Some(orig), Some(drift)) = (canon.subquery(set), dcanon.subquery(set)) else {
                continue;
            };
            if set.contains(a) && set.contains(b) {
                prop_assert_ne!(&orig.key, &drift.key,
                    "a drifted internal selectivity must split the key (set {:?})", set);
            } else {
                prop_assert_eq!(&orig.key, &drift.key,
                    "an external drift must not disturb the key (set {:?})", set);
            }
        }
    }
}

#[test]
fn filter_and_stats_perturbations_split_keys() {
    use lec_catalog::{Catalog, ColumnStats, TableStats};
    use lec_plan::{ColumnRef, JoinPredicate, QueryTable};

    let build = |pages0: u64, filtered: bool| -> (Catalog, Query) {
        let mut cat = Catalog::new();
        let t0 = cat.add_table(
            "A",
            TableStats::new(
                pages0,
                50_000,
                vec![ColumnStats::plain("a", 64), ColumnStats::plain("b", 64)],
            ),
        );
        let t1 = cat.add_table(
            "B",
            TableStats::new(
                2000,
                90_000,
                vec![ColumnStats::plain("a", 64), ColumnStats::plain("b", 64)],
            ),
        );
        let tables = vec![
            if filtered {
                QueryTable::filtered(t0, 1, lec_prob::Distribution::point(0.2))
            } else {
                QueryTable::bare(t0)
            },
            QueryTable::bare(t1),
        ];
        let q = Query {
            tables,
            joins: vec![JoinPredicate::exact(
                ColumnRef::new(0, 0),
                ColumnRef::new(1, 0),
                1e-4,
            )],
            required_order: None,
        };
        (cat, q)
    };

    let pair = TableSet::from_indices([0, 1]);
    let (cat_a, q_a) = build(1000, false);
    let (cat_b, q_b) = build(1024, false);
    let (cat_c, q_c) = build(1000, true);
    let key_a = QueryCanonizer::new(&cat_a, &q_a)
        .subquery(pair)
        .unwrap()
        .key;
    let key_b = QueryCanonizer::new(&cat_b, &q_b)
        .subquery(pair)
        .unwrap()
        .key;
    let key_c = QueryCanonizer::new(&cat_c, &q_c)
        .subquery(pair)
        .unwrap()
        .key;
    assert_ne!(key_a, key_b, "different page counts must split the key");
    assert_ne!(key_a, key_c, "a local filter must split the key");
    assert_ne!(key_b, key_c);
}
