//! Expected join/sort cost under distributions for *both* input sizes and
//! memory — §3.6 of the paper.
//!
//! Two implementations are provided and tested against each other:
//!
//! * [`naive_expected_join_cost`] — the defining triple sum
//!   `Σ_a Σ_b Σ_m C(a,b,m)·Pr(a)Pr(b)Pr(m)`, costing
//!   `b_A · b_B · b_M` formula evaluations (the generic Algorithm D path);
//! * [`streaming_expected_join_cost`] — the paper's `O(b_M + b_A + b_B)`
//!   algorithms for sort-merge (§3.6.1) and nested-loop (§3.6.2), extended
//!   to Grace hash (whose formula has the same shape as sort-merge with
//!   `min` in place of `max`).  Following the paper, the expectation is
//!   split on `|A| ≤ |B|` vs `|A| > |B|` and each term is computed from
//!   running prefix tables; we keep *partial* (unnormalized) expectations
//!   `E[X·1{X≤x}]` so the paper's running update
//!   `E(≤b') = E(≤b) + E(b<·≤b')` is a plain sum.
//!
//! Block nested-loop has no separable form (`⌈a/(m-2)⌉·b` couples `a` and
//! `m`), so it deliberately falls back to the naive path — it is the
//! resident example of why the generic `O(b³)` algorithm must exist.

use crate::formulas;
use lec_plan::JoinMethod;
use lec_prob::{Distribution, PrefixTables};

fn join_formula(method: JoinMethod) -> fn(f64, f64, f64) -> f64 {
    match method {
        JoinMethod::SortMerge => formulas::sm_join_cost,
        JoinMethod::GraceHash => formulas::grace_join_cost,
        JoinMethod::PageNestedLoop => formulas::nl_join_cost,
        JoinMethod::BlockNestedLoop => formulas::bnl_join_cost,
    }
}

/// The inner `Σ_b Σ_m C(a,b,m)·Pr(b)Pr(m)` partial of the triple sum for
/// one fixed `a` bucket.  Both the serial and the parallel naive paths are
/// built from these per-`a` partials folded in `a`-bucket order, so they
/// accumulate in exactly the same floating-point order and agree bit for
/// bit.
fn naive_partial_for_a(
    f: fn(f64, f64, f64) -> f64,
    av: f64,
    b: &Distribution,
    m: &Distribution,
) -> f64 {
    let mut partial = 0.0;
    for (bv, bp) in b.iter() {
        for (mv, mp) in m.iter() {
            partial += f(av, bv, mv) * bp * mp;
        }
    }
    partial
}

/// Expected cost by the defining triple sum.  Exact for every method.
pub fn naive_expected_join_cost(
    method: JoinMethod,
    a: &Distribution,
    b: &Distribution,
    m: &Distribution,
) -> f64 {
    let f = join_formula(method);
    a.iter()
        .map(|(av, ap)| ap * naive_partial_for_a(f, av, b, m))
        .sum()
}

/// [`naive_expected_join_cost`] with the per-`a`-bucket partial sums fanned
/// out across `threads` scoped threads, folded in `a`-bucket order —
/// bit-identical to the serial triple sum.  This is the Algorithm D hot
/// path worth parallelizing: block nested-loop's `b_A·b_B·b_M` evaluations
/// per candidate.
pub fn parallel_naive_expected_join_cost(
    method: JoinMethod,
    a: &Distribution,
    b: &Distribution,
    m: &Distribution,
    threads: usize,
) -> f64 {
    let f = join_formula(method);
    let mut partials = vec![0.0f64; a.len()];
    crate::par::map_chunked(a.support(), &mut partials, threads, |av| {
        naive_partial_for_a(f, av, b, m)
    });
    a.iter()
        .zip(&partials)
        .map(|((_, ap), partial)| ap * partial)
        .sum()
}

/// Number of formula evaluations the naive path performs.
pub fn naive_eval_count(a: &Distribution, b: &Distribution, m: &Distribution) -> u64 {
    (a.len() * b.len() * m.len()) as u64
}

/// The sort-merge memory factor
/// `2·Pr(M > √l) + 4·Pr(∛l < M ≤ √l) + 6·Pr(M ≤ ∛l)` for a given larger
/// size `l` (§3.6.1's bracketed term).
fn sm_memory_factor(m: &PrefixTables, l: f64) -> f64 {
    let p_cheap = m.prob_gt(l.sqrt());
    let p_deep = m.prob_le(l.cbrt());
    let p_mid = (1.0 - p_cheap - p_deep).max(0.0);
    2.0 * p_cheap + 4.0 * p_mid + 6.0 * p_deep
}

/// §3.6.1: expected sort-merge cost in `O((b_A + b_B)·log + b_M)` time.
///
/// `EC(SM) = Σ_{a≤b} Pr(a)Pr(b)(a+b)·g(M, b) + Σ_{a>b} Pr(a)Pr(b)(a+b)·g(M, a)`
/// where `g` is the three-regime memory factor `sm_memory_factor`; the
/// inner sums collapse into the prefix tables of the opposite side.
pub fn streaming_expected_sm_cost(
    a: &PrefixTables,
    b_dist: &Distribution,
    b: &PrefixTables,
    a_dist: &Distribution,
    m: &PrefixTables,
) -> f64 {
    // Term 1: a ≤ b, so L = b.  For each b: Σ_{a≤b} Pr(a)(a+b) =
    // E[A·1{A≤b}] + b·Pr(A≤b).
    let mut term1 = 0.0;
    for (bv, bp) in b_dist.iter() {
        let inner = a.partial_expect_le(bv) + bv * a.prob_le(bv);
        if inner > 0.0 {
            term1 += bp * inner * sm_memory_factor(m, bv);
        }
    }
    // Term 2: a > b, so L = a.  For each a: Σ_{b<a} Pr(b)(a+b) =
    // E[B·1{B<a}] + a·Pr(B<a).
    let mut term2 = 0.0;
    for (av, ap) in a_dist.iter() {
        let inner = b.partial_expect_lt(av) + av * b.prob_lt(av);
        if inner > 0.0 {
            term2 += ap * inner * sm_memory_factor(m, av);
        }
    }
    term1 + term2
}

/// The Grace-hash memory factor: same brackets as sort-merge but on the
/// *smaller* size `s` (Example 1.1 / \[Sha86\]).
fn grace_memory_factor(m: &PrefixTables, s: f64) -> f64 {
    sm_memory_factor(m, s) // identical piecewise shape, different argument
}

/// Grace hash analogue of §3.6.1 (the paper's technique transfers because
/// the formula again depends only on `(a+b)` and a one-sided extremum).
pub fn streaming_expected_grace_cost(
    a: &PrefixTables,
    b_dist: &Distribution,
    b: &PrefixTables,
    a_dist: &Distribution,
    m: &PrefixTables,
) -> f64 {
    // Term 1: a ≤ b, S = a.  For each a: Σ_{b≥a} Pr(b)(a+b) =
    // a·Pr(B≥a) + E[B·1{B≥a}].
    let mut term1 = 0.0;
    for (av, ap) in a_dist.iter() {
        let inner = av * b.prob_ge(av) + b.partial_expect_ge(av);
        if inner > 0.0 {
            term1 += ap * inner * grace_memory_factor(m, av);
        }
    }
    // Term 2: a > b, S = b.  For each b: Σ_{a>b} Pr(a)(a+b) =
    // b·Pr(A>b) + E[A·1{A>b}].
    let mut term2 = 0.0;
    for (bv, bp) in b_dist.iter() {
        let inner = bv * a.prob_gt(bv) + a.partial_expect_gt(bv);
        if inner > 0.0 {
            term2 += bp * inner * grace_memory_factor(m, bv);
        }
    }
    term1 + term2
}

/// §3.6.2: expected page nested-loop cost, `A` outer.
///
/// `C(NL) = |A|+|B|` if `M ≥ S+2` else `|A| + |A|·|B|`, `S = min`.
pub fn streaming_expected_nl_cost(
    a: &PrefixTables,
    b_dist: &Distribution,
    b: &PrefixTables,
    a_dist: &Distribution,
    m: &PrefixTables,
) -> f64 {
    // Term 1: a ≤ b (S = a).  Inner sums over b ≥ a:
    //   cheap: Σ Pr(b)(a+b)   = a·Pr(B≥a) + E[B·1{B≥a}]
    //   flood: Σ Pr(b)(a+a·b) = a·Pr(B≥a) + a·E[B·1{B≥a}]
    let mut term1 = 0.0;
    for (av, ap) in a_dist.iter() {
        let pb = b.prob_ge(av);
        let eb = b.partial_expect_ge(av);
        if pb <= 0.0 {
            continue;
        }
        let p_cheap = m.prob_ge(av + 2.0);
        let cheap = av * pb + eb;
        let flood = av * pb + av * eb;
        term1 += ap * (cheap * p_cheap + flood * (1.0 - p_cheap));
    }
    // Term 2: a > b (S = b).  Inner sums over a > b:
    //   cheap: Σ Pr(a)(a+b)   = E[A·1{A>b}] + b·Pr(A>b)
    //   flood: Σ Pr(a)(a+a·b) = E[A·1{A>b}]·(1+b)
    let mut term2 = 0.0;
    for (bv, bp) in b_dist.iter() {
        let pa = a.prob_gt(bv);
        let ea = a.partial_expect_gt(bv);
        if pa <= 0.0 {
            continue;
        }
        let p_cheap = m.prob_ge(bv + 2.0);
        let cheap = ea + bv * pa;
        let flood = ea * (1.0 + bv);
        term2 += bp * (cheap * p_cheap + flood * (1.0 - p_cheap));
    }
    term1 + term2
}

/// Expected join cost via the linear-time path when one exists.
/// Returns `None` for block nested-loop (not separable; use the naive sum).
pub fn streaming_expected_join_cost(
    method: JoinMethod,
    a_dist: &Distribution,
    b_dist: &Distribution,
    m_tables: &PrefixTables,
) -> Option<f64> {
    let a = PrefixTables::new(a_dist);
    let b = PrefixTables::new(b_dist);
    match method {
        JoinMethod::SortMerge => Some(streaming_expected_sm_cost(&a, b_dist, &b, a_dist, m_tables)),
        JoinMethod::GraceHash => Some(streaming_expected_grace_cost(
            &a, b_dist, &b, a_dist, m_tables,
        )),
        JoinMethod::PageNestedLoop => {
            Some(streaming_expected_nl_cost(&a, b_dist, &b, a_dist, m_tables))
        }
        JoinMethod::BlockNestedLoop => None,
    }
}

/// Best available expected join cost: streaming when separable, naive
/// otherwise.  This is Algorithm D's per-method costing step.
pub fn expected_join_cost(
    method: JoinMethod,
    a_dist: &Distribution,
    b_dist: &Distribution,
    m_dist: &Distribution,
    m_tables: &PrefixTables,
) -> f64 {
    streaming_expected_join_cost(method, a_dist, b_dist, m_tables)
        .unwrap_or_else(|| naive_expected_join_cost(method, a_dist, b_dist, m_dist))
}

/// Expected external-sort cost over uncertain input size and memory, in
/// time linear in the bucket counts (same §3.6.1 technique: the formula is
/// `r · factor(M vs r)`).
pub fn expected_sort_cost(r_dist: &Distribution, m: &PrefixTables) -> f64 {
    let mut total = 0.0;
    for (rv, rp) in r_dist.iter() {
        let p_fit = m.prob_ge(rv);
        let p_one = (m.prob_ge(rv.sqrt()) - p_fit).max(0.0);
        let p_two = (m.prob_ge(rv.cbrt()) - p_fit - p_one).max(0.0);
        let p_deep = (1.0 - p_fit - p_one - p_two).max(0.0);
        total += rp * rv * (p_fit + 3.0 * p_one + 5.0 * p_two + 7.0 * p_deep);
    }
    total
}

/// Naive counterpart of [`expected_sort_cost`], for testing.
pub fn naive_expected_sort_cost(r_dist: &Distribution, m_dist: &Distribution) -> f64 {
    let mut total = 0.0;
    for (rv, rp) in r_dist.iter() {
        for (mv, mp) in m_dist.iter() {
            total += formulas::sort_cost(rv, mv) * rp * mp;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn rand_dist(rng: &mut impl Rng, max_buckets: usize, lo: f64, hi: f64) -> Distribution {
        let n = rng.gen_range(1..=max_buckets);
        Distribution::from_pairs((0..n).map(|_| (rng.gen_range(lo..hi), rng.gen_range(0.05..1.0))))
            .unwrap()
    }

    #[test]
    fn streaming_matches_naive_on_random_inputs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0FFEE);
        for trial in 0..200 {
            let a = rand_dist(&mut rng, 8, 1.0, 1e6);
            let b = rand_dist(&mut rng, 8, 1.0, 1e6);
            let m = rand_dist(&mut rng, 8, 2.0, 5e3);
            let mt = PrefixTables::new(&m);
            for method in [
                JoinMethod::SortMerge,
                JoinMethod::GraceHash,
                JoinMethod::PageNestedLoop,
            ] {
                let naive = naive_expected_join_cost(method, &a, &b, &m);
                let fast =
                    streaming_expected_join_cost(method, &a, &b, &mt).expect("separable method");
                let scale = naive.abs().max(1.0);
                assert!(
                    ((naive - fast) / scale).abs() < 1e-9,
                    "trial {trial} {method:?}: naive {naive} vs streaming {fast}"
                );
            }
        }
    }

    #[test]
    fn streaming_handles_boundary_ties() {
        // Supports share values exactly — exercises ≤ vs < splits.
        let a = Distribution::from_pairs([(100.0, 0.5), (200.0, 0.5)]).unwrap();
        let b = Distribution::from_pairs([(100.0, 0.25), (200.0, 0.75)]).unwrap();
        // Memory exactly at cliff values of both:
        let m = Distribution::from_pairs([
            (10.0, 0.2),          // = √100
            (100f64.cbrt(), 0.2), // ∛100
            (102.0, 0.3),         // = min+2 for a=100
            (1000.0, 0.3),
        ])
        .unwrap();
        let mt = PrefixTables::new(&m);
        for method in [
            JoinMethod::SortMerge,
            JoinMethod::GraceHash,
            JoinMethod::PageNestedLoop,
        ] {
            let naive = naive_expected_join_cost(method, &a, &b, &m);
            let fast = streaming_expected_join_cost(method, &a, &b, &mt).unwrap();
            assert!(
                (naive - fast).abs() / naive.max(1.0) < 1e-12,
                "{method:?}: {naive} vs {fast}"
            );
        }
    }

    #[test]
    fn point_sizes_reduce_to_memory_expectation() {
        // With point sizes the expected cost must equal E_M[C(a,b,M)].
        let a = Distribution::point(1_000_000.0);
        let b = Distribution::point(400_000.0);
        let m = lec_prob::presets::example_1_1_memory();
        let mt = PrefixTables::new(&m);
        let direct = m.expect(|mv| formulas::sm_join_cost(1_000_000.0, 400_000.0, mv));
        let fast = streaming_expected_join_cost(JoinMethod::SortMerge, &a, &b, &mt).unwrap();
        assert!((direct - fast).abs() < 1e-6);
        // Paper numbers: 0.8·2.8e6 + 0.2·5.6e6 = 3.36e6.
        assert!((fast - 3_360_000.0).abs() < 1e-6);
        let grace = streaming_expected_join_cost(JoinMethod::GraceHash, &a, &b, &mt).unwrap();
        assert!((grace - 2_800_000.0).abs() < 1e-6);
    }

    #[test]
    fn nl_asymmetry_is_preserved() {
        // Outer 10 pages vs outer 1000 pages differ under low memory.
        let small = Distribution::point(10.0);
        let big = Distribution::point(1000.0);
        let m = Distribution::point(5.0);
        let mt = PrefixTables::new(&m);
        let small_outer =
            streaming_expected_join_cost(JoinMethod::PageNestedLoop, &small, &big, &mt).unwrap();
        let big_outer =
            streaming_expected_join_cost(JoinMethod::PageNestedLoop, &big, &small, &mt).unwrap();
        assert_eq!(small_outer, 10.0 + 10.0 * 1000.0);
        assert_eq!(big_outer, 1000.0 + 1000.0 * 10.0);
        assert!(small_outer < big_outer);
    }

    #[test]
    fn bnl_falls_back_to_naive() {
        let a = Distribution::point(100.0);
        let b = Distribution::point(50.0);
        let m = Distribution::point(12.0);
        let mt = PrefixTables::new(&m);
        assert!(streaming_expected_join_cost(JoinMethod::BlockNestedLoop, &a, &b, &mt).is_none());
        let ec = expected_join_cost(JoinMethod::BlockNestedLoop, &a, &b, &m, &mt);
        assert_eq!(ec, formulas::bnl_join_cost(100.0, 50.0, 12.0));
    }

    #[test]
    fn sort_streaming_matches_naive() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for _ in 0..100 {
            let r = rand_dist(&mut rng, 8, 1.0, 1e5);
            let m = rand_dist(&mut rng, 8, 2.0, 1e4);
            let mt = PrefixTables::new(&m);
            let naive = naive_expected_sort_cost(&r, &m);
            let fast = expected_sort_cost(&r, &mt);
            assert!(
                (naive - fast).abs() / naive.max(1.0) < 1e-9,
                "{naive} vs {fast}"
            );
        }
    }

    #[test]
    fn eval_count_is_the_product_of_bucket_counts() {
        let a = Distribution::uniform(&[1.0, 2.0, 3.0]).unwrap();
        let b = Distribution::uniform(&[1.0, 2.0]).unwrap();
        let m = Distribution::uniform(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(naive_eval_count(&a, &b, &m), 24);
    }
}
