//! The paper's I/O cost formulas.
//!
//! All costs are page I/Os and deliberately use the *simplified* \[Sha86\]
//! formulas; footnote 2 of the paper argues that "a return to simple
//! formulas in combination with LEC optimization may result in more
//! reliable query optimizers".  Sizes are `f64` pages (intermediate results
//! may be fractional before clamping) and are clamped to at least one page
//! at entry.
//!
//! * Sort-merge (§3.6.1, verbatim), with `L = max(|A|,|B|)`:
//!   `2(|A|+|B|)` if `M > √L`; `4(|A|+|B|)` if `∛L < M ≤ √L`;
//!   `6(|A|+|B|)` if `M ≤ ∛L`.
//! * Page nested-loop (§3.6.2, verbatim), with `S = min(|A|,|B|)` and `A`
//!   the outer input: `|A|+|B|` if `M ≥ S+2`; `|A| + |A|·|B|` otherwise.
//! * Grace hash join: Example 1.1 pins its behaviour — pass count flips at
//!   `√(min)` (633 = √400000 in the example) and a pass costs the same as a
//!   sort-merge pass.  We mirror the sort-merge shape with thresholds on
//!   `S = min(|A|,|B|)`, which is exactly \[Sha86\]'s point that hash join
//!   cliffs scale with the *smaller* relation.
//! * External sort and scans follow the same pass-counting style.

use lec_plan::JoinMethod;

/// Smallest size, in pages, any input is treated as.
pub const MIN_PAGES: f64 = 1.0;

/// Dispatch a join method to its cost formula without touching any model
/// counter — the uncounted twin of [`crate::CostModel::join_cost`], for
/// callers reconstructing values they are not (re)computing.
pub fn raw_join_cost(method: JoinMethod, outer: f64, inner: f64, m: f64) -> f64 {
    match method {
        JoinMethod::SortMerge => sm_join_cost(outer, inner, m),
        JoinMethod::GraceHash => grace_join_cost(outer, inner, m),
        JoinMethod::PageNestedLoop => nl_join_cost(outer, inner, m),
        JoinMethod::BlockNestedLoop => bnl_join_cost(outer, inner, m),
    }
}

fn clamp(pages: f64) -> f64 {
    if pages.is_nan() {
        MIN_PAGES
    } else {
        pages.max(MIN_PAGES)
    }
}

/// Sort-merge join cost (paper §3.6.1).
pub fn sm_join_cost(a: f64, b: f64, m: f64) -> f64 {
    let (a, b) = (clamp(a), clamp(b));
    let l = a.max(b);
    let total = a + b;
    if m > l.sqrt() {
        2.0 * total
    } else if m > l.cbrt() {
        4.0 * total
    } else {
        6.0 * total
    }
}

/// Grace hash join cost (Example 1.1 / \[Sha86\]); thresholds on the smaller
/// input.
pub fn grace_join_cost(a: f64, b: f64, m: f64) -> f64 {
    let (a, b) = (clamp(a), clamp(b));
    let s = a.min(b);
    let total = a + b;
    if m > s.sqrt() {
        2.0 * total
    } else if m > s.cbrt() {
        4.0 * total
    } else {
        6.0 * total
    }
}

/// Page nested-loop join cost (paper §3.6.2); `a` is the outer input.
pub fn nl_join_cost(a: f64, b: f64, m: f64) -> f64 {
    let (a, b) = (clamp(a), clamp(b));
    let s = a.min(b);
    if m >= s + 2.0 {
        a + b
    } else {
        a + a * b
    }
}

/// Block nested-loop join cost: the standard refinement scanning the inner
/// once per `M-2`-page block of the outer.  Not in the paper's formula set;
/// included as the "more complicated formula" ablation its footnote 2
/// discusses.
pub fn bnl_join_cost(a: f64, b: f64, m: f64) -> f64 {
    let (a, b) = (clamp(a), clamp(b));
    let block = (m - 2.0).max(1.0);
    a + (a / block).ceil() * b
}

/// External sort of `r` pages with `m` buffer pages, in the same
/// pass-counting style as the join formulas: in-memory if it fits, one
/// extra run+merge level per cube/square-root regime.
pub fn sort_cost(r: f64, m: f64) -> f64 {
    let r = clamp(r);
    if m >= r {
        r
    } else if m >= r.sqrt() {
        3.0 * r
    } else if m >= r.cbrt() {
        5.0 * r
    } else {
        7.0 * r
    }
}

/// Sequential scan: one read per page.
pub fn seq_scan_cost(pages: f64) -> f64 {
    clamp(pages)
}

/// Clustered index scan retrieving fraction `sel` of `pages`: the matching
/// leaf/heap pages plus an index descent.
pub fn clustered_index_scan_cost(pages: f64, rows: f64, sel: f64) -> f64 {
    clamp(pages * sel) + (rows.max(1.0)).log2().ceil().max(1.0)
}

/// Unclustered index scan: one heap I/O per matching row (capped at reading
/// the whole table sequentially never helps here — the optimizer simply
/// won't pick it), plus an index descent.
pub fn unclustered_index_scan_cost(rows: f64, sel: f64) -> f64 {
    clamp(rows * sel) + (rows.max(1.0)).log2().ceil().max(1.0)
}

/// Memory values at which [`sm_join_cost`] changes value, ascending.
pub fn sm_breakpoints(a: f64, b: f64) -> Vec<f64> {
    let l = clamp(a).max(clamp(b));
    vec![l.cbrt(), l.sqrt()]
}

/// Memory values at which [`grace_join_cost`] changes value, ascending.
pub fn grace_breakpoints(a: f64, b: f64) -> Vec<f64> {
    let s = clamp(a).min(clamp(b));
    vec![s.cbrt(), s.sqrt()]
}

/// Memory values at which [`nl_join_cost`] changes value.
pub fn nl_breakpoints(a: f64, b: f64) -> Vec<f64> {
    vec![clamp(a).min(clamp(b)) + 2.0]
}

/// Memory values at which [`sort_cost`] changes value, ascending.
pub fn sort_breakpoints(r: f64) -> Vec<f64> {
    let r = clamp(r);
    vec![r.cbrt(), r.sqrt(), r]
}

/// A truncated set of memory values at which [`bnl_join_cost`] changes:
/// the block count `⌈a/(m-2)⌉` steps at every divisor of the outer size.
/// Only the `limit` largest thresholds are returned (the small ones are
/// closely spaced and contribute little mass to any realistic bucket set).
pub fn bnl_breakpoints(a: f64, b: f64, limit: usize) -> Vec<f64> {
    let _ = b; // cliffs depend only on the outer size
    let a = clamp(a);
    let mut out = Vec::with_capacity(limit);
    for k in 1..=limit as u64 {
        // smallest m with ⌈a/(m-2)⌉ <= k  ⇒  m = a/k + 2
        out.push(a / k as f64 + 2.0);
    }
    out.reverse(); // ascending
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Example 1.1 of the paper, Plan 1: sort-merge of A (1,000,000 pages)
    /// and B (400,000 pages).  "if the available buffer size is greater
    /// than 1000 pages (the square root of the larger relation), the join
    /// requires two passes ... fewer than 1000 pages, at least another
    /// pass."
    #[test]
    fn example_1_1_sort_merge() {
        let (a, b) = (1_000_000.0, 400_000.0);
        assert_eq!(sm_join_cost(a, b, 2000.0), 2.0 * 1_400_000.0);
        assert_eq!(sm_join_cost(a, b, 1001.0), 2.0 * 1_400_000.0);
        assert_eq!(sm_join_cost(a, b, 1000.0), 4.0 * 1_400_000.0); // M ≤ √L
        assert_eq!(sm_join_cost(a, b, 700.0), 4.0 * 1_400_000.0);
        assert_eq!(sm_join_cost(a, b, 100.0), 6.0 * 1_400_000.0); // M ≤ ∛L
        assert_eq!(sm_join_cost(a, b, 50.0), 6.0 * 1_400_000.0);
    }

    /// Example 1.1, Plan 2: Grace hash of the same relations.  "if the
    /// available buffer size is greater than 633 pages (the square root of
    /// the smaller relation), the hash join requires two passes."
    #[test]
    fn example_1_1_grace_hash() {
        let (a, b) = (1_000_000.0, 400_000.0);
        let sqrt_s = 400_000f64.sqrt(); // ≈ 632.45
        assert!((632.0..634.0).contains(&sqrt_s));
        assert_eq!(grace_join_cost(a, b, 2000.0), 2.0 * 1_400_000.0);
        assert_eq!(grace_join_cost(a, b, 700.0), 2.0 * 1_400_000.0); // 700 > 633!
        assert_eq!(grace_join_cost(a, b, 600.0), 4.0 * 1_400_000.0);
        assert_eq!(grace_join_cost(a, b, 50.0), 6.0 * 1_400_000.0);
    }

    #[test]
    fn join_formulas_are_symmetric_where_the_paper_says_so() {
        // SM and Grace depend on {|A|,|B|} as a set.
        for m in [10.0, 500.0, 5000.0] {
            assert_eq!(sm_join_cost(1e6, 4e5, m), sm_join_cost(4e5, 1e6, m));
            assert_eq!(grace_join_cost(1e6, 4e5, m), grace_join_cost(4e5, 1e6, m));
        }
        // NL is asymmetric below the memory threshold (A is outer).
        assert_ne!(
            nl_join_cost(10.0, 1000.0, 5.0),
            nl_join_cost(1000.0, 10.0, 5.0)
        );
        // ... but symmetric above it.
        assert_eq!(
            nl_join_cost(10.0, 1000.0, 2000.0),
            nl_join_cost(1000.0, 10.0, 2000.0)
        );
    }

    #[test]
    fn nested_loop_threshold_is_s_plus_2() {
        let (a, b) = (100.0, 50.0);
        assert_eq!(nl_join_cost(a, b, 52.0), 150.0);
        assert_eq!(nl_join_cost(a, b, 51.9), 100.0 + 100.0 * 50.0);
    }

    #[test]
    fn bnl_interpolates_between_nl_regimes() {
        let (a, b) = (100.0, 50.0);
        // Plenty of memory: one block → a + b.
        assert_eq!(bnl_join_cost(a, b, 102.0), 150.0);
        // Two blocks.
        assert_eq!(bnl_join_cost(a, b, 52.0), 100.0 + 2.0 * 50.0);
        // Memory 12 → block 10 → 10 blocks.
        assert_eq!(bnl_join_cost(a, b, 12.0), 100.0 + 10.0 * 50.0);
        // Below the NL threshold (M < S+2), blocking always beats the
        // paper's flooding formula; above it, the paper's NL formula is the
        // optimistic one (it keeps the smaller relation resident).
        for m in [3.0, 10.0, 51.0] {
            assert!(bnl_join_cost(a, b, m) <= nl_join_cost(a, b, m));
        }
        for m in [52.0, 60.0, 200.0] {
            assert!(bnl_join_cost(a, b, m) >= nl_join_cost(a, b, m));
        }
    }

    #[test]
    fn sort_cost_regimes() {
        let r = 3000.0;
        assert_eq!(sort_cost(r, 3000.0), 3000.0); // fits
        assert_eq!(sort_cost(r, 2000.0), 9000.0); // √3000 ≈ 54.8 ≤ m < r
        assert_eq!(sort_cost(r, 55.0), 9000.0);
        assert_eq!(sort_cost(r, 54.0), 15000.0); // ∛3000 ≈ 14.4 ≤ m < √r
        assert_eq!(sort_cost(r, 15.0), 15000.0);
        assert_eq!(sort_cost(r, 14.0), 21000.0);
    }

    #[test]
    fn scan_costs() {
        assert_eq!(seq_scan_cost(123.0), 123.0);
        assert_eq!(seq_scan_cost(0.2), MIN_PAGES);
        // 1% of 1000 pages + ⌈log2(50_000)⌉ = 10 + 16
        assert_eq!(clustered_index_scan_cost(1000.0, 50_000.0, 0.01), 26.0);
        // Unclustered pays one I/O per row.
        assert_eq!(unclustered_index_scan_cost(50_000.0, 0.001), 50.0 + 16.0);
    }

    #[test]
    fn costs_are_monotone_nonincreasing_in_memory() {
        let sizes = [(100.0, 50.0), (1e6, 4e5), (1e4, 1e4), (3.0, 8.0)];
        let mems = [2.0, 5.0, 11.0, 55.0, 101.0, 633.0, 1000.0, 1e4, 1e6, 1e7];
        for &(a, b) in &sizes {
            for f in [sm_join_cost, grace_join_cost, nl_join_cost, bnl_join_cost] {
                let mut last = f64::INFINITY;
                for &m in &mems {
                    let c = f(a, b, m);
                    assert!(c <= last + 1e-9, "cost must not increase with memory");
                    last = c;
                }
            }
        }
        let mut last = f64::INFINITY;
        for &m in &mems {
            let c = sort_cost(3000.0, m);
            assert!(c <= last);
            last = c;
        }
    }

    #[test]
    fn breakpoints_bracket_actual_cliffs() {
        let (a, b) = (1e6, 4e5);
        for (f, bps) in [
            (
                sm_join_cost as fn(f64, f64, f64) -> f64,
                sm_breakpoints(a, b),
            ),
            (grace_join_cost, grace_breakpoints(a, b)),
            (nl_join_cost, nl_breakpoints(a, b)),
        ] {
            for bp in bps {
                let below = f(a, b, bp * (1.0 - 1e-9) - 1e-9);
                let above = f(a, b, bp * (1.0 + 1e-6) + 1e-6);
                assert!(below > above, "cost should drop across breakpoint {bp}");
            }
        }
        for bp in sort_breakpoints(3000.0) {
            let below = sort_cost(3000.0, bp - 1e-6);
            let above = sort_cost(3000.0, bp + 1e-6);
            assert!(below > above, "sort cliff at {bp}");
        }
    }

    #[test]
    fn bnl_breakpoints_are_real_cliffs() {
        let (a, b) = (100.0, 50.0);
        for bp in bnl_breakpoints(a, b, 5) {
            let below = bnl_join_cost(a, b, bp - 1e-6);
            let at = bnl_join_cost(a, b, bp);
            assert!(below > at, "bnl cliff at {bp}: {below} vs {at}");
        }
    }

    #[test]
    fn nan_and_tiny_inputs_are_clamped() {
        assert!(sm_join_cost(f64::NAN, 10.0, 100.0).is_finite());
        assert_eq!(seq_scan_cost(f64::NAN), MIN_PAGES);
        assert!(nl_join_cost(0.0, 0.0, 100.0) >= 2.0 * MIN_PAGES);
    }
}
