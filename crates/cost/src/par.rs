//! The one chunk-scatter primitive behind every bucket fan-out in this
//! crate: evaluate a pure function over a slice of bucket values across
//! scoped threads, writing results into a caller-provided slice so the
//! caller can fold them **in bucket order** — which is what keeps every
//! parallel expectation bit-identical to its serial counterpart.

/// Fill `out[i] = f(vals[i])` using up to `threads` scoped threads
/// (contiguous chunks; the first chunk runs on the calling thread while
/// the spawned ones work).  `vals` must be non-empty and the slices the
/// same length.
pub(crate) fn map_chunked(
    vals: &[f64],
    out: &mut [f64],
    threads: usize,
    f: impl Fn(f64) -> f64 + Sync,
) {
    debug_assert_eq!(vals.len(), out.len());
    let threads = threads.min(vals.len()).max(1);
    let chunk = vals.len().div_ceil(threads);
    std::thread::scope(|s| {
        let f = &f;
        let mut pairs: Vec<(&[f64], &mut [f64])> =
            vals.chunks(chunk).zip(out.chunks_mut(chunk)).collect();
        let (head_vals, head_out) = pairs.remove(0);
        for (vals, out) in pairs {
            s.spawn(move || {
                for (v, o) in vals.iter().zip(out) {
                    *o = f(*v);
                }
            });
        }
        for (v, o) in head_vals.iter().zip(head_out) {
            *o = f(*v);
        }
    });
}
