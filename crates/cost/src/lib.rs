//! # lec-cost — the I/O cost model of the PODS'99 LEC paper
//!
//! Three layers:
//!
//! * [`formulas`] — the raw piecewise page-I/O formulas (§3.6.1/§3.6.2 of
//!   the paper, plus the Grace-hash and external-sort formulas implied by
//!   Example 1.1), together with their *breakpoints* (the memory values at
//!   which cost jumps — the discontinuities that make LEC ≠ LSC);
//! * [`model`] — [`CostModel`], binding a catalog and query: effective
//!   sizes after selections, combined selectivities, access-path and join
//!   cost dispatch, and the cost-formula evaluation counter the paper's
//!   complexity claims are stated in;
//! * [`plan_cost`] — whole-plan costing `C(P, v)`, the §3.5 phase
//!   decomposition, expected plan cost under static and Markov-evolving
//!   memory, and per-plan cliff positions for §3.7 level-set bucketing;
//! * [`expected`] — expected *join* cost under size+memory distributions:
//!   the defining `O(b³)` triple sum and the paper's `O(b)` streaming
//!   algorithms, which are tested to agree exactly.

pub mod expected;
pub mod formulas;
pub mod model;
mod par;
pub mod plan_cost;

pub use expected::{
    expected_join_cost, expected_sort_cost, naive_expected_join_cost,
    parallel_naive_expected_join_cost, streaming_expected_join_cost,
};
pub use model::{
    dist_fingerprint, evict_coldest, shard_index, table_occurrence_fingerprint,
    table_stats_fingerprint, AccessPath, BucketParallelism, CostModel, CostProbe, Fingerprint,
    FxBuildHasher, FxHasher, ProbeOp, ProbeRecording, DEFAULT_MIN_PARALLEL_EVALS,
};
pub use plan_cost::{
    expected_plan_cost_dynamic, expected_plan_cost_static, output_order, phases, plan_cost_at,
    plan_memory_breakpoints, plan_node_costs, plan_output_pages, MemCost, NodeKind, Phase,
    PlanNodeCost,
};
