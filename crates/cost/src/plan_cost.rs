//! Whole-plan costing: `C(P, v)`, phase decomposition, and expected cost
//! under static and dynamically changing memory.
//!
//! The paper's cost function takes "a plan p and a vector v of values of
//! relevant parameters" (§3.1).  Here `v` is the available memory (sizes
//! are point estimates at this layer; fully distributional sizes are the
//! business of `lec-core`'s Algorithm D, which costs joins *before* plans
//! exist).  For §3.5's dynamic case, "plan execution takes place in phases,
//! each corresponding to a join in the plan ... memory does not change
//! during the execution of a phase, but can change between phases" —
//! [`phases`] materializes exactly that decomposition.

use crate::model::{AccessPath, CostModel};
use lec_plan::{JoinMethod, OrderProperty, PlanNode};
use lec_prob::{Distribution, MarkovChain, ProbError};

/// The memory-dependent part of one execution phase.
#[derive(Debug, Clone, PartialEq)]
pub enum MemCost {
    /// Phase with no memory-dependent work (pure access, degenerate plans).
    None,
    /// A join of two inputs of known (point-estimated) sizes.
    Join {
        /// Join algorithm.
        method: JoinMethod,
        /// Outer input size in pages.
        outer: f64,
        /// Inner input size in pages.
        inner: f64,
    },
    /// An explicit sort.
    Sort {
        /// Input size in pages.
        pages: f64,
    },
}

/// One execution phase (§3.5): a join or sort plus the memory-independent
/// access costs charged alongside it.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Memory-independent cost (base-table accesses feeding this phase).
    pub fixed: f64,
    /// Memory-dependent operator.
    pub mem: MemCost,
}

impl Phase {
    /// Cost of the phase when memory is `m`.
    pub fn cost_at(&self, model: &CostModel<'_>, m: f64) -> f64 {
        self.fixed
            + match &self.mem {
                MemCost::None => 0.0,
                MemCost::Join {
                    method,
                    outer,
                    inner,
                } => model.join_cost(*method, *outer, *inner, m),
                MemCost::Sort { pages } => model.sort_cost(*pages, m),
            }
    }
}

struct NodeInfo {
    pages: f64,
    /// Access cost of a base node not yet folded into a phase.
    pending_fixed: f64,
}

fn access_path_of(node: &PlanNode) -> Option<(AccessPath, usize)> {
    match node {
        PlanNode::SeqScan { table } => Some((AccessPath::SeqScan, *table)),
        PlanNode::IndexScan { table } => Some((AccessPath::IndexScan, *table)),
        _ => None,
    }
}

fn collect(model: &CostModel<'_>, node: &PlanNode, out: &mut Vec<Phase>) -> NodeInfo {
    if let Some((path, table)) = access_path_of(node) {
        return NodeInfo {
            pages: model.base_pages(table),
            pending_fixed: model.access_cost(path, table),
        };
    }
    match node {
        PlanNode::Sort { input, .. } => {
            let info = collect(model, input, out);
            out.push(Phase {
                fixed: info.pending_fixed,
                mem: MemCost::Sort { pages: info.pages },
            });
            NodeInfo {
                pages: info.pages,
                pending_fixed: 0.0,
            }
        }
        PlanNode::Join {
            method,
            outer,
            inner,
        } => {
            let outer_info = collect(model, outer, out);
            let inner_info = collect(model, inner, out);
            let sel = model.join_selectivity_sets(outer.tables(), inner.tables());
            let pages = model.join_output_pages(outer_info.pages, inner_info.pages, sel);
            out.push(Phase {
                fixed: outer_info.pending_fixed + inner_info.pending_fixed,
                mem: MemCost::Join {
                    method: *method,
                    outer: outer_info.pages,
                    inner: inner_info.pages,
                },
            });
            NodeInfo {
                pages,
                pending_fixed: 0.0,
            }
        }
        PlanNode::SeqScan { .. } | PlanNode::IndexScan { .. } => unreachable!(),
    }
}

/// What one audited plan node is, with the point-estimated operand sizes
/// its predicted cost is computed from.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// Base-table access (memory-independent cost).
    Access {
        /// Access path.
        path: AccessPath,
        /// Query-table index.
        table: usize,
    },
    /// Explicit external sort.
    Sort {
        /// Input size in pages.
        pages: f64,
    },
    /// A join of two point-estimated inputs.
    Join {
        /// Join algorithm.
        method: JoinMethod,
        /// Outer input size in pages.
        outer: f64,
        /// Inner input size in pages.
        inner: f64,
    },
}

/// One plan node's predicted-cost record: the per-node decomposition the
/// calibration observatory (`lec-exec::calib`) audits against measured
/// page I/O.  Emitted by [`plan_node_costs`] in the exact traversal order
/// of [`phases`], so a node's `phase` index lines up with the phase list,
/// the simulator's traces, and the environment's per-phase marginals.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanNodeCost {
    /// Short display label (`R0`, `IxR2`, `Sort`, `SM`, ... — the
    /// vocabulary of `PlanNode::compact`).
    pub label: String,
    /// Index into [`phases`] for memory-dependent nodes; `None` for
    /// base-table accesses (their cost is memory-independent and folded
    /// into an enclosing phase's fixed part).
    pub phase: Option<usize>,
    /// The node's operator and operand sizes.
    pub kind: NodeKind,
}

impl PlanNodeCost {
    /// The node's predicted cost when memory is `m` pages.
    pub fn cost_at(&self, model: &CostModel<'_>, m: f64) -> f64 {
        match &self.kind {
            NodeKind::Access { path, table } => model.access_cost(*path, *table),
            NodeKind::Sort { pages } => model.sort_cost(*pages, m),
            NodeKind::Join {
                method,
                outer,
                inner,
            } => model.join_cost(*method, *outer, *inner, m),
        }
    }

    /// The telemetry operator class this node's prediction error is
    /// recorded under.
    pub fn class(&self) -> lec_telemetry::OpClass {
        use lec_telemetry::OpClass;
        match &self.kind {
            NodeKind::Access {
                path: AccessPath::SeqScan,
                ..
            } => OpClass::SeqAccess,
            NodeKind::Access {
                path: AccessPath::IndexScan,
                ..
            } => OpClass::IndexAccess,
            NodeKind::Sort { .. } => OpClass::Sort,
            NodeKind::Join { method, .. } => match method {
                JoinMethod::SortMerge => OpClass::SortMerge,
                JoinMethod::GraceHash => OpClass::GraceHash,
                JoinMethod::PageNestedLoop => OpClass::PageNestedLoop,
                JoinMethod::BlockNestedLoop => OpClass::BlockNestedLoop,
            },
        }
    }
}

fn collect_nodes(
    model: &CostModel<'_>,
    node: &PlanNode,
    next_phase: &mut usize,
    out: &mut Vec<PlanNodeCost>,
) -> f64 {
    match node {
        PlanNode::SeqScan { table } => {
            out.push(PlanNodeCost {
                label: format!("R{table}"),
                phase: None,
                kind: NodeKind::Access {
                    path: AccessPath::SeqScan,
                    table: *table,
                },
            });
            model.base_pages(*table)
        }
        PlanNode::IndexScan { table } => {
            out.push(PlanNodeCost {
                label: format!("IxR{table}"),
                phase: None,
                kind: NodeKind::Access {
                    path: AccessPath::IndexScan,
                    table: *table,
                },
            });
            model.base_pages(*table)
        }
        PlanNode::Sort { input, .. } => {
            let pages = collect_nodes(model, input, next_phase, out);
            let phase = *next_phase;
            *next_phase += 1;
            out.push(PlanNodeCost {
                label: "Sort".to_string(),
                phase: Some(phase),
                kind: NodeKind::Sort { pages },
            });
            pages
        }
        PlanNode::Join {
            method,
            outer,
            inner,
        } => {
            let outer_pages = collect_nodes(model, outer, next_phase, out);
            let inner_pages = collect_nodes(model, inner, next_phase, out);
            let phase = *next_phase;
            *next_phase += 1;
            out.push(PlanNodeCost {
                label: method.name().to_string(),
                phase: Some(phase),
                kind: NodeKind::Join {
                    method: *method,
                    outer: outer_pages,
                    inner: inner_pages,
                },
            });
            let sel = model.join_selectivity_sets(outer.tables(), inner.tables());
            model.join_output_pages(outer_pages, inner_pages, sel)
        }
    }
}

/// Per-node predicted-cost decomposition of a plan, in the traversal order
/// of [`phases`] (post-order, outer before inner; access leaves emitted
/// where they occur).  Invariant, tested here and re-asserted by every
/// calibration audit: for any memory `m`, the node costs sum to the
/// whole-plan prediction `plan_cost_at(model, plan, m)`.
pub fn plan_node_costs(model: &CostModel<'_>, plan: &PlanNode) -> Vec<PlanNodeCost> {
    let mut out = Vec::new();
    let mut next_phase = 0usize;
    collect_nodes(model, plan, &mut next_phase, &mut out);
    out
}

/// Decompose a plan into execution phases, innermost first.
pub fn phases(model: &CostModel<'_>, plan: &PlanNode) -> Vec<Phase> {
    let mut out = Vec::with_capacity(plan.n_phases());
    let info = collect(model, plan, &mut out);
    if info.pending_fixed > 0.0 {
        // Degenerate single-access plan: charge the access as its own phase.
        out.push(Phase {
            fixed: info.pending_fixed,
            mem: MemCost::None,
        });
    }
    out
}

/// Output size of a plan in pages (point estimates).
pub fn plan_output_pages(model: &CostModel<'_>, plan: &PlanNode) -> f64 {
    match plan {
        PlanNode::SeqScan { table } | PlanNode::IndexScan { table } => model.base_pages(*table),
        PlanNode::Sort { input, .. } => plan_output_pages(model, input),
        PlanNode::Join { outer, inner, .. } => {
            let sel = model.join_selectivity_sets(outer.tables(), inner.tables());
            model.join_output_pages(
                plan_output_pages(model, outer),
                plan_output_pages(model, inner),
                sel,
            )
        }
    }
}

/// The order property of a plan's output.
///
/// Rules (the \[SAC+79\] interesting-order extension):
/// * sort-merge output is sorted on the join column (class of the
///   lowest-indexed crossing predicate);
/// * page nested-loop preserves the outer order; Grace hash and block
///   nested-loop destroy order;
/// * a clustered index scan produces its filter column's order;
/// * a sort produces its key's order.
pub fn output_order(model: &CostModel<'_>, plan: &PlanNode) -> OrderProperty {
    let eq = model.equivalences();
    match plan {
        PlanNode::SeqScan { .. } => OrderProperty::None,
        PlanNode::IndexScan { table } => {
            let qt = &model.query().tables[*table];
            match &qt.filter {
                Some(f) => {
                    use lec_catalog::IndexKind;
                    let kind = model.catalog().table(qt.table).stats.index_on(f.column);
                    if kind == IndexKind::Clustered {
                        eq.sorted_on(lec_plan::ColumnRef::new(*table, f.column))
                    } else {
                        OrderProperty::None
                    }
                }
                None => OrderProperty::None,
            }
        }
        PlanNode::Sort { key, .. } => eq.sorted_on(*key),
        PlanNode::Join {
            method,
            outer,
            inner,
        } => match method {
            JoinMethod::SortMerge => {
                let crossing = model.query().joins_crossing(outer.tables(), inner.tables());
                match crossing.first() {
                    Some(&i) => eq.sorted_on(model.query().joins[i].left),
                    None => OrderProperty::None,
                }
            }
            JoinMethod::PageNestedLoop => output_order(model, outer),
            JoinMethod::GraceHash | JoinMethod::BlockNestedLoop => OrderProperty::None,
        },
    }
}

/// Total plan cost `C(P, m)` at a fixed memory value.
pub fn plan_cost_at(model: &CostModel<'_>, plan: &PlanNode, m: f64) -> f64 {
    phases(model, plan)
        .iter()
        .map(|p| p.cost_at(model, m))
        .sum()
}

/// Expected plan cost under a static memory distribution:
/// `EC(P) = Σ_m C(P, m)·Pr(m)` (§3.1).
pub fn expected_plan_cost_static(
    model: &CostModel<'_>,
    plan: &PlanNode,
    memory: &Distribution,
) -> f64 {
    let ph = phases(model, plan);
    memory.expect(|m| ph.iter().map(|p| p.cost_at(model, m)).sum())
}

/// Expected plan cost when memory evolves between phases (§3.5): phase `k`
/// sees the initial distribution pushed `k` steps through the chain.
/// Linearity of expectation makes this a per-phase sum — the observation
/// Theorem 3.4 rests on.
pub fn expected_plan_cost_dynamic(
    model: &CostModel<'_>,
    plan: &PlanNode,
    initial: &Distribution,
    chain: &MarkovChain,
) -> Result<f64, ProbError> {
    let ph = phases(model, plan);
    let mut dist = initial.clone();
    let mut total = 0.0;
    for phase in &ph {
        total += dist.expect(|m| phase.cost_at(model, m));
        dist = chain.evolve_dist(&dist)?;
    }
    Ok(total)
}

/// All memory values at which this plan's cost function `C(P, ·)` can jump:
/// the union of the per-operator cliff positions, sorted and deduplicated.
/// This is the §3.7 "level set" information used by the level-set
/// bucketing strategy.
pub fn plan_memory_breakpoints(model: &CostModel<'_>, plan: &PlanNode) -> Vec<f64> {
    use crate::formulas;
    let mut bps: Vec<f64> = Vec::new();
    let ph = phases(model, plan);
    for phase in &ph {
        match &phase.mem {
            MemCost::None => {}
            MemCost::Join {
                method,
                outer,
                inner,
            } => match method {
                JoinMethod::SortMerge => bps.extend(formulas::sm_breakpoints(*outer, *inner)),
                JoinMethod::GraceHash => bps.extend(formulas::grace_breakpoints(*outer, *inner)),
                JoinMethod::PageNestedLoop => bps.extend(formulas::nl_breakpoints(*outer, *inner)),
                JoinMethod::BlockNestedLoop => {
                    bps.extend(formulas::bnl_breakpoints(*outer, *inner, 16))
                }
            },
            MemCost::Sort { pages } => bps.extend(formulas::sort_breakpoints(*pages)),
        }
    }
    bps.sort_by(f64::total_cmp);
    bps.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
    bps
}

#[cfg(test)]
mod tests {
    use super::*;
    use lec_catalog::{Catalog, ColumnStats, TableStats};
    use lec_plan::{ColumnRef, JoinPredicate, Query, QueryTable};

    /// The Example 1.1 setting: A = 1,000,000 pages, B = 400,000 pages,
    /// join result 3000 pages, output ordered by the join column.
    fn example_1_1() -> (Catalog, Query) {
        let mut cat = Catalog::new();
        let a = cat.add_table(
            "A",
            TableStats::new(1_000_000, 50_000_000, vec![ColumnStats::plain("k", 1000)]),
        );
        let b = cat.add_table(
            "B",
            TableStats::new(400_000, 20_000_000, vec![ColumnStats::plain("k", 1000)]),
        );
        let sel = 3000.0 / (1_000_000.0 * 400_000.0);
        let query = Query {
            tables: vec![QueryTable::bare(a), QueryTable::bare(b)],
            joins: vec![JoinPredicate::exact(
                ColumnRef::new(0, 0),
                ColumnRef::new(1, 0),
                sel,
            )],
            required_order: Some(ColumnRef::new(0, 0)),
        };
        (cat, query)
    }

    fn plan1() -> PlanNode {
        // Sort-merge join; output already ordered.
        PlanNode::join(
            JoinMethod::SortMerge,
            PlanNode::SeqScan { table: 0 },
            PlanNode::SeqScan { table: 1 },
        )
    }

    fn plan2() -> PlanNode {
        // Grace hash join, then sort the 3000-page result.
        PlanNode::sort(
            PlanNode::join(
                JoinMethod::GraceHash,
                PlanNode::SeqScan { table: 0 },
                PlanNode::SeqScan { table: 1 },
            ),
            ColumnRef::new(0, 0),
        )
    }

    #[test]
    fn example_1_1_point_costs() {
        let (cat, q) = example_1_1();
        let model = CostModel::new(&cat, &q);
        let scans = 1_400_000.0;

        // M = 2000: plan 1 runs in two passes.
        let c1_hi = plan_cost_at(&model, &plan1(), 2000.0);
        assert_eq!(c1_hi, scans + 2.0 * 1_400_000.0);
        // M = 700 < 1000 = √L: an extra pass.
        let c1_lo = plan_cost_at(&model, &plan1(), 700.0);
        assert_eq!(c1_lo, scans + 4.0 * 1_400_000.0);

        // Plan 2 is flat across the two memory values (700 > √400000 ≈ 633):
        // hash passes + the small sort (3·3000 = 9000).
        let c2_hi = plan_cost_at(&model, &plan2(), 2000.0);
        let c2_lo = plan_cost_at(&model, &plan2(), 700.0);
        assert_eq!(c2_hi, scans + 2.0 * 1_400_000.0 + 9000.0);
        assert_eq!(c2_lo, c2_hi);

        // The paper's narrative: plan 2 "slightly more expensive" at high
        // memory, far cheaper at low memory.
        assert!(c2_hi > c1_hi);
        assert!(c2_hi - c1_hi < 0.01 * c1_hi);
        assert!(c1_lo > c2_lo + 1_000_000.0);
    }

    #[test]
    fn example_1_1_expected_costs_prefer_plan2() {
        let (cat, q) = example_1_1();
        let model = CostModel::new(&cat, &q);
        let memory = lec_prob::presets::example_1_1_memory();
        let ec1 = expected_plan_cost_static(&model, &plan1(), &memory);
        let ec2 = expected_plan_cost_static(&model, &plan2(), &memory);
        // EC(plan1) = 1.4e6 + 0.8·2.8e6 + 0.2·5.6e6 = 4.76e6
        assert!((ec1 - (1_400_000.0 + 0.8 * 2_800_000.0 + 0.2 * 5_600_000.0)).abs() < 1.0);
        // EC(plan2) = 1.4e6 + 2.8e6 + 9000
        assert!((ec2 - (1_400_000.0 + 2_800_000.0 + 9000.0)).abs() < 1.0);
        assert!(ec2 < ec1, "the paper's LEC choice");
        // While at the modal AND mean memory, plan 1 is the LSC winner:
        for m in [2000.0, memory.mean()] {
            assert!(plan_cost_at(&model, &plan1(), m) < plan_cost_at(&model, &plan2(), m));
        }
    }

    #[test]
    fn phase_decomposition_shape() {
        let (cat, q) = example_1_1();
        let model = CostModel::new(&cat, &q);
        let ph = phases(&model, &plan2());
        assert_eq!(ph.len(), 2);
        // Phase 0: the join, carrying both scans as fixed cost.
        assert_eq!(ph[0].fixed, 1_400_000.0);
        assert!(matches!(
            ph[0].mem,
            MemCost::Join {
                method: JoinMethod::GraceHash,
                ..
            }
        ));
        // Phase 1: the sort of the 3000-page result.
        assert_eq!(ph[0].fixed + ph[1].fixed, 1_400_000.0);
        match ph[1].mem {
            MemCost::Sort { pages } => assert!((pages - 3000.0).abs() < 1e-6),
            _ => panic!("expected sort phase"),
        }
    }

    #[test]
    fn output_pages_match_example() {
        let (cat, q) = example_1_1();
        let model = CostModel::new(&cat, &q);
        assert!((plan_output_pages(&model, &plan1()) - 3000.0).abs() < 1e-6);
        assert!((plan_output_pages(&model, &plan2()) - 3000.0).abs() < 1e-6);
    }

    #[test]
    fn order_properties() {
        let (cat, q) = example_1_1();
        let model = CostModel::new(&cat, &q);
        let eq = model.equivalences();
        let want = q.required_order.unwrap();
        // SM output satisfies the required order; GH does not; the sort fixes it.
        assert!(eq.satisfies(output_order(&model, &plan1()), want));
        let bare_gh = PlanNode::join(
            JoinMethod::GraceHash,
            PlanNode::SeqScan { table: 0 },
            PlanNode::SeqScan { table: 1 },
        );
        assert_eq!(output_order(&model, &bare_gh), OrderProperty::None);
        assert!(eq.satisfies(output_order(&model, &plan2()), want));
        // NL preserves the outer's (lack of) order.
        let nl = PlanNode::join(
            JoinMethod::PageNestedLoop,
            PlanNode::SeqScan { table: 0 },
            PlanNode::SeqScan { table: 1 },
        );
        assert_eq!(output_order(&model, &nl), OrderProperty::None);
    }

    #[test]
    fn dynamic_cost_with_identity_chain_matches_static() {
        let (cat, q) = example_1_1();
        let model = CostModel::new(&cat, &q);
        let memory = lec_prob::presets::example_1_1_memory();
        let chain = MarkovChain::identity(vec![700.0, 2000.0]).unwrap();
        for plan in [plan1(), plan2()] {
            let stat = expected_plan_cost_static(&model, &plan, &memory);
            let dynm = expected_plan_cost_dynamic(&model, &plan, &memory, &chain).unwrap();
            assert!((stat - dynm).abs() < 1e-6, "{} vs {}", stat, dynm);
        }
    }

    #[test]
    fn dynamic_cost_sees_later_phase_drift() {
        let (cat, q) = example_1_1();
        let model = CostModel::new(&cat, &q);
        // Start surely at 2000 pages, but crash toward 50 pages next phase:
        // plan 2's sort phase gets expensive, plan 1 has no second phase.
        let chain =
            MarkovChain::new(vec![50.0, 2000.0], vec![vec![1.0, 0.0], vec![1.0, 0.0]]).unwrap();
        let start = Distribution::point(2000.0);
        let c1 = expected_plan_cost_dynamic(&model, &plan1(), &start, &chain).unwrap();
        let c2 = expected_plan_cost_dynamic(&model, &plan2(), &start, &chain).unwrap();
        assert_eq!(c1, 1_400_000.0 + 2.0 * 1_400_000.0);
        // Sort of 3000 pages at m=50: ∛3000 ≈ 14.4 ≤ 50 < √3000 → 5·3000.
        assert_eq!(c2, 1_400_000.0 + 2.0 * 1_400_000.0 + 15_000.0);
    }

    #[test]
    fn node_costs_sum_to_whole_plan_prediction() {
        let (cat, q) = example_1_1();
        let model = CostModel::new(&cat, &q);
        for plan in [
            plan1(),
            plan2(),
            PlanNode::SeqScan { table: 0 },
            PlanNode::sort(PlanNode::SeqScan { table: 1 }, ColumnRef::new(1, 0)),
        ] {
            let nodes = plan_node_costs(&model, &plan);
            for m in [50.0, 700.0, 2000.0, 1e6] {
                let node_sum: f64 = nodes.iter().map(|n| n.cost_at(&model, m)).sum();
                let whole = plan_cost_at(&model, &plan, m);
                assert!(
                    (node_sum - whole).abs() <= 1e-9 * whole.max(1.0),
                    "{}: Σ nodes {} != plan {} at m={}",
                    plan.compact(),
                    node_sum,
                    whole,
                    m
                );
            }
        }
    }

    #[test]
    fn node_phase_indices_align_with_phase_list() {
        let (cat, q) = example_1_1();
        let model = CostModel::new(&cat, &q);
        let plan = plan2();
        let ph = phases(&model, &plan);
        let nodes = plan_node_costs(&model, &plan);
        // Every memory-dependent node maps to the phase holding the same
        // operator, with the same operand sizes.
        let mut mem_nodes = 0;
        for n in &nodes {
            let Some(i) = n.phase else { continue };
            mem_nodes += 1;
            match (&n.kind, &ph[i].mem) {
                (NodeKind::Sort { pages: a }, MemCost::Sort { pages: b }) => {
                    assert_eq!(a, b);
                }
                (
                    NodeKind::Join {
                        method: ma,
                        outer: oa,
                        inner: ia,
                    },
                    MemCost::Join {
                        method: mb,
                        outer: ob,
                        inner: ib,
                    },
                ) => {
                    assert_eq!(ma, mb);
                    assert_eq!(oa, ob);
                    assert_eq!(ia, ib);
                }
                (k, m) => panic!("phase {i}: node {k:?} vs phase {m:?}"),
            }
        }
        assert_eq!(mem_nodes, ph.len());
        // Access leaves carry no phase and classify by path.
        use lec_telemetry::OpClass;
        assert_eq!(nodes[0].class(), OpClass::SeqAccess);
        assert_eq!(nodes[0].phase, None);
        assert_eq!(nodes.last().unwrap().class(), OpClass::Sort);
    }

    #[test]
    fn breakpoints_cover_both_plans_cliffs() {
        let (cat, q) = example_1_1();
        let model = CostModel::new(&cat, &q);
        let bp1 = plan_memory_breakpoints(&model, &plan1());
        // SM cliffs at ∛1e6 = 100 and √1e6 = 1000.
        assert!(bp1.iter().any(|&x| (x - 100.0).abs() < 1e-6));
        assert!(bp1.iter().any(|&x| (x - 1000.0).abs() < 1e-6));
        let bp2 = plan_memory_breakpoints(&model, &plan2());
        // Grace cliffs at ∛4e5 ≈ 73.68 and √4e5 ≈ 632.5, sort cliffs at
        // ∛3000, √3000, 3000.
        assert!(bp2.iter().any(|&x| (x - 400_000f64.sqrt()).abs() < 1e-6));
        assert!(bp2.iter().any(|&x| (x - 3000.0).abs() < 1e-6));
        // Sorted ascending.
        for w in bp2.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
