//! The query-aware cost model: effective sizes, selectivities, and cost
//! dispatch, with an evaluation counter for the paper's complexity claims.

use crate::formulas;
use lec_catalog::{Catalog, IndexKind};
use lec_plan::{ColumnEquivalences, JoinMethod, Query, TableSet};
use lec_prob::Distribution;
use std::cell::Cell;

/// How a base table is accessed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPath {
    /// Heap scan.
    SeqScan,
    /// Scan through the index matching the table's local filter.
    IndexScan,
}

/// Cost model bound to one catalog and one query.
///
/// All size parameters are in pages.  Uncertain quantities are exposed both
/// as point estimates (mean — what the LSC baseline uses) and as
/// distributions (what Algorithms C/D use).  The model counts every
/// evaluation of a cost formula through [`CostModel::evals`], which is the
/// unit in which the paper states its overheads ("this computation requires
/// b evaluations of the cost formula", §3.4).
#[derive(Debug)]
pub struct CostModel<'a> {
    catalog: &'a Catalog,
    query: &'a Query,
    equivalences: ColumnEquivalences,
    evals: Cell<u64>,
}

impl<'a> CostModel<'a> {
    /// Bind the model to a query.
    pub fn new(catalog: &'a Catalog, query: &'a Query) -> Self {
        CostModel {
            catalog,
            query,
            equivalences: ColumnEquivalences::for_query(query),
            evals: Cell::new(0),
        }
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &Catalog {
        self.catalog
    }

    /// The query this model is bound to.
    pub fn query(&self) -> &Query {
        self.query
    }

    /// Column equivalence classes of the query (for order properties).
    pub fn equivalences(&self) -> &ColumnEquivalences {
        &self.equivalences
    }

    /// Number of cost-formula evaluations since the last reset.
    pub fn evals(&self) -> u64 {
        self.evals.get()
    }

    /// Reset the evaluation counter.
    pub fn reset_evals(&self) {
        self.evals.set(0);
    }

    fn count_eval(&self) {
        self.evals.set(self.evals.get() + 1);
    }

    // ---- sizes ----------------------------------------------------------

    /// Raw heap pages of a query table.
    pub fn raw_pages(&self, table_idx: usize) -> f64 {
        self.catalog.table(self.query.tables[table_idx].table).stats.pages as f64
    }

    /// Rows of a query table.
    pub fn raw_rows(&self, table_idx: usize) -> f64 {
        self.catalog.table(self.query.tables[table_idx].table).stats.rows as f64
    }

    /// Point estimate (mean) of the post-filter page count of a table —
    /// the paper's `|A_j|` "after any initial selection".
    pub fn base_pages(&self, table_idx: usize) -> f64 {
        let qt = &self.query.tables[table_idx];
        let pages = self.raw_pages(table_idx);
        match &qt.filter {
            Some(f) => (pages * f.selectivity.mean()).max(formulas::MIN_PAGES),
            None => pages,
        }
    }

    /// Distribution of the post-filter page count of a table
    /// (`Pr(|A_j|)` in Figure 1).
    pub fn base_pages_dist(&self, table_idx: usize) -> Distribution {
        let qt = &self.query.tables[table_idx];
        let t = self.catalog.table(qt.table);
        let page_dist = t.stats.page_distribution();
        match &qt.filter {
            Some(f) => page_dist
                .product(&f.selectivity)
                .map(|v| v.max(formulas::MIN_PAGES)),
            None => page_dist,
        }
    }

    /// Point (mean) combined selectivity of all join predicates connecting
    /// `set` to table `idx` (independence assumption, §3.6).
    pub fn join_selectivity(&self, set: TableSet, idx: usize) -> f64 {
        self.query
            .joins_connecting(set, idx)
            .iter()
            .map(|&i| self.query.joins[i].selectivity.mean())
            .product()
    }

    /// Distribution of the combined selectivity (`Pr(σ)` in Figure 1).
    pub fn join_selectivity_dist(&self, set: TableSet, idx: usize) -> Distribution {
        let mut dist = Distribution::point(1.0);
        for &i in &self.query.joins_connecting(set, idx) {
            dist = dist.product(&self.query.joins[i].selectivity);
        }
        dist
    }

    /// Point (mean) combined selectivity of all predicates crossing two
    /// disjoint table sets (general form used when costing arbitrary trees).
    pub fn join_selectivity_sets(&self, a: TableSet, b: TableSet) -> f64 {
        self.query
            .joins_crossing(a, b)
            .iter()
            .map(|&i| self.query.joins[i].selectivity.mean())
            .product()
    }

    /// Result size of a join: the paper's `a·b·σ` pages, clamped to one page.
    pub fn join_output_pages(&self, outer: f64, inner: f64, selectivity: f64) -> f64 {
        (outer * inner * selectivity).max(formulas::MIN_PAGES)
    }

    // ---- access paths ---------------------------------------------------

    /// Access paths worth considering for a table: sequential scan always,
    /// plus an index scan when the local filter matches an index.
    pub fn access_paths(&self, table_idx: usize) -> Vec<AccessPath> {
        let mut out = vec![AccessPath::SeqScan];
        if self.index_kind_for_filter(table_idx) != IndexKind::None {
            out.push(AccessPath::IndexScan);
        }
        out
    }

    fn index_kind_for_filter(&self, table_idx: usize) -> IndexKind {
        let qt = &self.query.tables[table_idx];
        match &qt.filter {
            Some(f) => self
                .catalog
                .table(qt.table)
                .stats
                .index_on(f.column),
            None => IndexKind::None,
        }
    }

    /// Cost of one access path (memory-independent in this model).
    pub fn access_cost(&self, path: AccessPath, table_idx: usize) -> f64 {
        self.count_eval();
        let pages = self.raw_pages(table_idx);
        match path {
            AccessPath::SeqScan => formulas::seq_scan_cost(pages),
            AccessPath::IndexScan => {
                let qt = &self.query.tables[table_idx];
                let f = qt
                    .filter
                    .as_ref()
                    .expect("index scan requires a filter");
                let rows = self.raw_rows(table_idx);
                match self.index_kind_for_filter(table_idx) {
                    IndexKind::Clustered => formulas::clustered_index_scan_cost(
                        pages,
                        rows,
                        f.selectivity.mean(),
                    ),
                    IndexKind::Unclustered => formulas::unclustered_index_scan_cost(
                        rows,
                        f.selectivity.mean(),
                    ),
                    IndexKind::None => unreachable!("access_paths gates on index presence"),
                }
            }
        }
    }

    // ---- joins and sorts ------------------------------------------------

    /// Join cost at a specific memory value (the paper's `C(P, v)` for one
    /// operator); `outer`/`inner` in pages.
    pub fn join_cost(&self, method: JoinMethod, outer: f64, inner: f64, m: f64) -> f64 {
        self.count_eval();
        match method {
            JoinMethod::SortMerge => formulas::sm_join_cost(outer, inner, m),
            JoinMethod::GraceHash => formulas::grace_join_cost(outer, inner, m),
            JoinMethod::PageNestedLoop => formulas::nl_join_cost(outer, inner, m),
            JoinMethod::BlockNestedLoop => formulas::bnl_join_cost(outer, inner, m),
        }
    }

    /// Sort cost at a specific memory value.
    pub fn sort_cost(&self, pages: f64, m: f64) -> f64 {
        self.count_eval();
        formulas::sort_cost(pages, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lec_catalog::{ColumnStats, TableStats};
    use lec_plan::{ColumnRef, JoinPredicate, QueryTable};

    fn fixture() -> (Catalog, Query) {
        let mut cat = Catalog::new();
        let a = cat.add_table(
            "A",
            TableStats::new(
                1000,
                50_000,
                vec![
                    ColumnStats::indexed("pk", 50_000, IndexKind::Clustered),
                    ColumnStats::plain("x", 100),
                ],
            ),
        );
        let b = cat.add_table(
            "B",
            TableStats::new(500, 25_000, vec![ColumnStats::plain("y", 50)]),
        );
        let query = Query {
            tables: vec![
                QueryTable::filtered(a, 0, Distribution::point(0.1)),
                QueryTable::bare(b),
            ],
            joins: vec![JoinPredicate::exact(
                ColumnRef::new(0, 1),
                ColumnRef::new(1, 0),
                1e-4,
            )],
            required_order: None,
        };
        (cat, query)
    }

    #[test]
    fn base_pages_apply_filters() {
        let (cat, q) = fixture();
        let m = CostModel::new(&cat, &q);
        assert_eq!(m.base_pages(0), 100.0); // 1000 × 0.1
        assert_eq!(m.base_pages(1), 500.0);
        let d = m.base_pages_dist(0);
        assert!(d.is_point());
        assert_eq!(d.mean(), 100.0);
    }

    #[test]
    fn uncertain_filter_propagates_to_size_distribution() {
        let (cat, mut q) = fixture();
        q.tables[0].filter.as_mut().unwrap().selectivity =
            Distribution::bimodal(0.01, 0.5, 0.5).unwrap();
        let m = CostModel::new(&cat, &q);
        let d = m.base_pages_dist(0);
        assert_eq!(d.len(), 2);
        assert_eq!(d.support(), &[10.0, 500.0]);
        assert_eq!(m.base_pages(0), 1000.0 * (0.01 + 0.5) / 2.0);
    }

    #[test]
    fn selectivity_product_over_connecting_predicates() {
        let (cat, mut q) = fixture();
        // Add a second predicate between the same pair.
        q.joins.push(JoinPredicate::exact(
            ColumnRef::new(0, 0),
            ColumnRef::new(1, 0),
            0.5,
        ));
        let m = CostModel::new(&cat, &q);
        let s = m.join_selectivity(TableSet::singleton(0), 1);
        assert!((s - 1e-4 * 0.5).abs() < 1e-18);
        let d = m.join_selectivity_dist(TableSet::singleton(0), 1);
        assert!(d.is_point());
        assert!((d.mean() - 5e-5).abs() < 1e-18);
    }

    #[test]
    fn access_paths_depend_on_indexes() {
        let (cat, q) = fixture();
        let m = CostModel::new(&cat, &q);
        // Table 0: clustered index on the filtered column.
        assert_eq!(m.access_paths(0), vec![AccessPath::SeqScan, AccessPath::IndexScan]);
        // Table 1: no filter, no index scan.
        assert_eq!(m.access_paths(1), vec![AccessPath::SeqScan]);
        // Index scan cheaper than full scan at 10% selectivity.
        assert!(m.access_cost(AccessPath::IndexScan, 0) < m.access_cost(AccessPath::SeqScan, 0));
    }

    #[test]
    fn eval_counter_counts_formula_calls() {
        let (cat, q) = fixture();
        let m = CostModel::new(&cat, &q);
        assert_eq!(m.evals(), 0);
        m.join_cost(JoinMethod::SortMerge, 100.0, 200.0, 50.0);
        m.sort_cost(100.0, 10.0);
        m.access_cost(AccessPath::SeqScan, 1);
        assert_eq!(m.evals(), 3);
        m.reset_evals();
        assert_eq!(m.evals(), 0);
    }

    #[test]
    fn join_cost_dispatch_matches_formulas() {
        let (cat, q) = fixture();
        let m = CostModel::new(&cat, &q);
        let (a, b, mem) = (1e6, 4e5, 700.0);
        assert_eq!(
            m.join_cost(JoinMethod::SortMerge, a, b, mem),
            crate::formulas::sm_join_cost(a, b, mem)
        );
        assert_eq!(
            m.join_cost(JoinMethod::GraceHash, a, b, mem),
            crate::formulas::grace_join_cost(a, b, mem)
        );
        assert_eq!(
            m.join_cost(JoinMethod::PageNestedLoop, a, b, mem),
            crate::formulas::nl_join_cost(a, b, mem)
        );
        assert_eq!(
            m.join_cost(JoinMethod::BlockNestedLoop, a, b, mem),
            crate::formulas::bnl_join_cost(a, b, mem)
        );
    }

    #[test]
    fn output_pages_clamped() {
        let (cat, q) = fixture();
        let m = CostModel::new(&cat, &q);
        assert_eq!(m.join_output_pages(100.0, 500.0, 1e-4), 5.0);
        assert_eq!(m.join_output_pages(10.0, 10.0, 1e-9), 1.0);
    }
}
