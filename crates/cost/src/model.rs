//! The query-aware cost model: effective sizes, selectivities, and cost
//! dispatch, with an evaluation counter for the paper's complexity claims.

use crate::formulas;
use lec_catalog::{Catalog, IndexKind};
use lec_plan::{ColumnEquivalences, JoinMethod, Query, TableSet};
use lec_prob::{Distribution, PrefixTables};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// How a base table is accessed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPath {
    /// Heap scan.
    SeqScan,
    /// Scan through the index matching the table's local filter.
    IndexScan,
}

/// Operator discriminant for [`EvalKey`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum EvalOp {
    /// Point join cost of one method.
    Join(JoinMethod),
    /// Point sort cost.
    Sort,
    /// Expected join cost of point-sized inputs over a memory
    /// distribution (Algorithms B/C): one cache entry stands for a whole
    /// `b`-bucket expectation.
    ExpectedJoinOver(JoinMethod),
    /// Expected sort cost of a point-sized input over a memory
    /// distribution.
    ExpectedSortOver,
    /// Expected join cost over size + memory distributions (Algorithm D).
    ExpectedJoin(JoinMethod),
    /// Expected sort cost over size + memory distributions.
    ExpectedSort,
}

impl EvalOp {
    /// Whether this operator lives in the *expectation* tier of the cache
    /// (see [`ShardedEvalCache`] for why the two tiers keep separate shard
    /// arrays).
    fn is_expectation(self) -> bool {
        !matches!(self, EvalOp::Join(_) | EvalOp::Sort)
    }
}

/// FxHash — the rustc-style multiply-rotate hasher.  [`EvalKey`] lookups
/// sit on the engine's innermost loop, where the default SipHash costs
/// more than the cost formulas it would be saving; the search engine's
/// subplan memo shares it for the same reason ([`FxBuildHasher`]).
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

/// `BuildHasher` for [`FxHasher`]-keyed maps on hot paths.
pub type FxBuildHasher = std::hash::BuildHasherDefault<FxHasher>;

impl std::hash::Hasher for FxHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
    fn finish(&self) -> u64 {
        self.hash
    }
}

impl FxHasher {
    #[inline]
    fn add(&mut self, v: u64) {
        self.hash = (self.hash.rotate_left(5) ^ v).wrapping_mul(0x517CC1B727220A95);
    }
}

type EvalMap = HashMap<EvalKey, f64, std::hash::BuildHasherDefault<FxHasher>>;

/// Number of lock shards per cache tier.  Power of two; large enough that
/// a handful of search threads rarely collide, small enough that clearing
/// and summing stay trivial.
const EVAL_SHARDS: usize = 32;

/// The thread-safe evaluation cache: two arrays of `Mutex`-guarded map
/// shards, selected by the FxHash of the [`EvalKey`].
///
/// Shard locks are held for the whole compute of a miss — that is what
/// makes every key evaluate **exactly once** even under concurrency,
/// keeping [`CostModel::evals`] identical between serial and parallel
/// searches.  Point and expectation keys live in separate tiers so the
/// two workloads never contend: the point tier serves the classical
/// point-coster's per-candidate probes, the expectation tier the whole
/// `b`-bucket expectations of Algorithms C/D.  An expectation miss
/// evaluates its buckets through the raw formulas rather than the point
/// tier — per-bucket values of a `b`-bucket expectation are never probed
/// individually again, so memoizing them one by one was pure write
/// traffic (it grew the cache by `b` locked inserts per miss and
/// dominated dense-search wall time), and computing them directly charges
/// the same `b` formula evaluations while taking no nested locks.
struct ShardedEvalCache {
    point: [Mutex<EvalMap>; EVAL_SHARDS],
    expectation: [Mutex<EvalMap>; EVAL_SHARDS],
}

impl ShardedEvalCache {
    fn new() -> Self {
        ShardedEvalCache {
            point: std::array::from_fn(|_| Mutex::new(EvalMap::default())),
            expectation: std::array::from_fn(|_| Mutex::new(EvalMap::default())),
        }
    }

    /// Lock the shard responsible for `key`.  Mutex poisoning is ignored:
    /// a worker that panicked mid-compute never inserted its entry, so the
    /// map itself is always consistent and recovery is safe.
    fn shard(&self, key: &EvalKey) -> MutexGuard<'_, EvalMap> {
        let mut h = FxHasher::default();
        key.hash(&mut h);
        // The final multiply pushes entropy to the high bits; index there.
        let idx = (h.finish() >> (64 - EVAL_SHARDS.trailing_zeros())) as usize;
        let tier = if key.op.is_expectation() {
            &self.expectation
        } else {
            &self.point
        };
        tier[idx].lock().unwrap_or_else(|e| e.into_inner())
    }

    fn for_each_shard(&self, mut f: impl FnMut(MutexGuard<'_, EvalMap>)) {
        for shard in self.point.iter().chain(self.expectation.iter()) {
            f(shard.lock().unwrap_or_else(|e| e.into_inner()));
        }
    }
}

impl std::fmt::Debug for ShardedEvalCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEvalCache")
            .field("shards", &(2 * EVAL_SHARDS))
            .finish()
    }
}

/// How far to fan the evaluation of one candidate's buckets out across
/// threads (the inner hot loop of Algorithms C and D).
///
/// `threads` is the fan-out width; `min_evals` is the minimum number of
/// cost-formula evaluations a single candidate must require before the
/// fan-out engages — spawning scoped threads costs tens of microseconds,
/// so tiny expectations must stay serial.  The parallel path folds the
/// per-bucket results in bucket order, so the expected cost is
/// bit-identical to the serial sum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketParallelism {
    /// Threads to fan one candidate's bucket evaluations across.
    pub threads: usize,
    /// Minimum per-candidate evaluation count before fanning out.
    pub min_evals: usize,
}

/// Default [`BucketParallelism::min_evals`]: below ~2k formula
/// evaluations, scoped-thread spawn overhead exceeds the work.  Algorithm
/// C only crosses this with enormous bucket counts; Algorithm D's block
/// nested-loop triple product (`b_A·b_B·b_M`) crosses it at `b = 16`.
pub const DEFAULT_MIN_PARALLEL_EVALS: usize = 2048;

impl BucketParallelism {
    /// No intra-candidate parallelism whatsoever.
    pub const fn serial() -> Self {
        BucketParallelism {
            threads: 1,
            min_evals: usize::MAX,
        }
    }

    /// Fan out across `threads` once a candidate needs
    /// [`DEFAULT_MIN_PARALLEL_EVALS`] evaluations.
    pub fn new(threads: usize) -> Self {
        BucketParallelism {
            threads: threads.max(1),
            min_evals: DEFAULT_MIN_PARALLEL_EVALS,
        }
    }

    /// Whether a candidate costing `evals` formula evaluations should fan
    /// out.
    pub fn active_for(&self, evals: u64) -> bool {
        self.threads > 1 && evals >= self.min_evals as u64
    }
}

impl Default for BucketParallelism {
    fn default() -> Self {
        BucketParallelism::serial()
    }
}

/// Evaluate `f` over every bucket of `memory` across `threads` scoped
/// threads, then fold `Σ f(vᵢ)·pᵢ` in bucket order.  The fold performs the
/// same multiplications and additions in the same order as the serial
/// [`Distribution::expect`], so the result is bit-identical.
fn parallel_bucket_expectation(
    memory: &Distribution,
    threads: usize,
    f: impl Fn(f64) -> f64 + Sync,
) -> f64 {
    let mut costs = vec![0.0f64; memory.len()];
    crate::par::map_chunked(memory.support(), &mut costs, threads, f);
    costs.iter().zip(memory.probs()).map(|(c, p)| c * p).sum()
}

/// Memoization key for one memory-dependent operator evaluation: the
/// operator, the memory ingredient (bucket value or distribution
/// fingerprint), and the exact operand sizes (point pages or distribution
/// fingerprints).
///
/// The key is exactly the tuple the cost formulas read — and nothing
/// more.  Every compute behind [`CostModel::cached`] is a pure function
/// of `(op, mem, outer, inner)`; the operand *table sets* never enter a
/// formula, so keying on them would only relabel identical computations
/// as distinct.  On dense join graphs the distinction is enormous: a
/// 15-table star probes ~900k `(sets, sizes)` pairs but only a few
/// thousand distinct `(sizes)` tuples — set-free keys turn the cache
/// from a net loss (insert traffic, hash pressure) into a ~99% hit rate.
/// The sizes must participate, though: the one-page clamp in
/// `join_output_pages` can make entries of the same subset built through
/// different splits carry different sizes, so sizes — not sets — are
/// what keeps the cache exact rather than approximate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct EvalKey {
    op: EvalOp,
    mem: u64,
    outer: u64,
    inner: u64,
}

/// Operator discriminant of a [`CostProbe`]: the public mirror of the
/// cache's internal operator tags, so probe logs can be stored outside
/// this crate (the search engine's subplan memo) and replayed later.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeOp {
    /// Point join cost ([`CostModel::join_cost_for`]).
    Join(JoinMethod),
    /// Point sort cost ([`CostModel::sort_cost_for`]).
    Sort,
    /// Whole-distribution expected join cost of point-sized inputs
    /// ([`CostModel::expected_join_cost_over`]); carries nested per-bucket
    /// point values.
    ExpectedJoinOver(JoinMethod),
    /// Whole-distribution expected sort cost of a point-sized input.
    ExpectedSortOver,
    /// Expected join cost over size + memory distributions (Algorithm D).
    ExpectedJoin(JoinMethod),
    /// Expected sort cost over size + memory distributions.
    ExpectedSort,
}

impl ProbeOp {
    fn eval_op(self) -> EvalOp {
        match self {
            ProbeOp::Join(m) => EvalOp::Join(m),
            ProbeOp::Sort => EvalOp::Sort,
            ProbeOp::ExpectedJoinOver(m) => EvalOp::ExpectedJoinOver(m),
            ProbeOp::ExpectedSortOver => EvalOp::ExpectedSortOver,
            ProbeOp::ExpectedJoin(m) => EvalOp::ExpectedJoin(m),
            ProbeOp::ExpectedSort => EvalOp::ExpectedSort,
        }
    }
}

/// One recorded candidate-level cache probe: everything needed to replay
/// the probe — and, on a replay miss, the insertion and counter effects of
/// the original compute — against a *different* query's cache, with the
/// table-set bits relabeled by the caller.
///
/// The probe sequence a DP node's combine makes is a pure function of the
/// node's canonical subquery shape: one probe per (entry pair × join
/// method), with operand sizes determined by the (shape-determined)
/// entries below.  Replaying a node's log therefore touches the cache with
/// exactly the multiset of keys the live combine would have — which is
/// what keeps `evals`/`cache_hits` byte-identical when the subplan memo
/// skips the combine itself.
#[derive(Debug, Clone)]
pub struct CostProbe {
    /// Left operand table-set bits (relabeled by the replayer).
    pub left: u64,
    /// Right operand table-set bits (0 for sorts).
    pub right: u64,
    /// Operator.
    pub op: ProbeOp,
    /// Memory ingredient: bucket value bits (point ops) or distribution
    /// fingerprint (expectation ops).
    pub mem: u64,
    /// Outer size: page bits or size-distribution fingerprint.
    pub outer: u64,
    /// Inner size: page bits or size-distribution fingerprint.
    pub inner: u64,
    /// The probe's value.
    pub value: f64,
    /// Formula evaluations the original compute performed on a miss (one
    /// for point ops, the per-bucket count for expectation ops), charged
    /// again by a replay miss.
    pub direct_evals: u64,
}

/// One thread's probe log.
struct ProbeLogState {
    probes: Vec<CostProbe>,
}

thread_local! {
    /// The active probe log of this thread, if any.  One DP node is
    /// combined wholly by one thread, so a thread-local log captures
    /// exactly that node's candidate-level probes.
    static PROBE_LOG: RefCell<Option<ProbeLogState>> = const { RefCell::new(None) };
    /// The single flag the hot path reads: true exactly when a log is
    /// active *and* recording is not suppressed (nested per-bucket probes
    /// inside an expectation compute are folded into the parent probe
    /// rather than logged individually).  Kept separate from `PROBE_LOG`
    /// so memo-free searches pay one `Cell` read per cached call, not a
    /// `RefCell` borrow.
    static PROBE_ACTIVE: Cell<bool> = const { Cell::new(false) };
}

/// RAII guard for one node's probe recording; dropping it (normally or
/// during unwinding) deactivates the log so a panicking combine cannot
/// leak an active recorder into later searches on a pooled worker thread.
#[derive(Debug)]
pub struct ProbeRecording {
    _private: (),
}

impl ProbeRecording {
    /// Consume the guard, returning the probes recorded since
    /// [`CostModel::begin_probe_log`].
    pub fn finish(self) -> Vec<CostProbe> {
        PROBE_LOG
            .with(|log| log.borrow_mut().take())
            .map(|state| state.probes)
            .unwrap_or_default()
        // Drop of `self` then finds the slot already empty.
    }
}

impl Drop for ProbeRecording {
    fn drop(&mut self) {
        PROBE_ACTIVE.with(|f| f.set(false));
        PROBE_LOG.with(|log| *log.borrow_mut() = None);
    }
}

fn probe_log_active() -> bool {
    PROBE_ACTIVE.with(|f| f.get())
}

fn push_probe(probe: CostProbe) {
    PROBE_LOG.with(|log| {
        if let Some(state) = log.borrow_mut().as_mut() {
            state.probes.push(probe);
        }
    });
}

/// An incremental 64-bit FNV-1a fingerprint over exact bit patterns: the
/// shared hashing primitive behind every cross-query cache key (model
/// state, memory distributions, optimizer modes, canonical query shapes).
///
/// Builder-style so key assembly reads as a pipeline:
///
/// ```
/// let fp = lec_cost::Fingerprint::new().u64(3).f64(0.25).finish();
/// assert_ne!(fp, lec_cost::Fingerprint::new().f64(0.25).u64(3).finish());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Fingerprint(u64);

impl Fingerprint {
    /// Start from the FNV-1a offset basis.
    pub fn new() -> Self {
        Fingerprint(0xCBF29CE484222325)
    }

    /// Absorb raw bytes.
    pub fn bytes(mut self, bytes: &[u8]) -> Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001B3);
        }
        self
    }

    /// Absorb a `u64`.
    pub fn u64(self, v: u64) -> Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Absorb an `f64` by exact bit pattern (`-0.0` and `0.0` differ; every
    /// NaN payload is its own value — cache keys must never conflate
    /// almost-equal floats).
    pub fn f64(self, v: f64) -> Self {
        self.u64(v.to_bits())
    }

    /// Absorb a distribution's exact contents.
    pub fn dist(self, d: &Distribution) -> Self {
        d.iter().fold(self, |fp, (v, p)| fp.f64(v).f64(p))
    }

    /// The accumulated fingerprint.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint::new()
    }
}

/// 64-bit FNV-1a fingerprint of a distribution's exact contents, used to
/// key the expected-cost caches.
pub fn dist_fingerprint(d: &Distribution) -> u64 {
    Fingerprint::new().dist(d).finish()
}

/// The lock stripe responsible for a multi-word cache key: a
/// [`Fingerprint`] fold mapped onto `0..n_shards` by multiply-shift
/// (uniform for any shard count, no power-of-two requirement).  Shared by
/// every sharded cross-query cache (the search engine's subplan memo,
/// the serving layer's plan cache) so their stripe selection cannot
/// drift apart.
pub fn shard_index(key: &[u64], n_shards: usize) -> usize {
    let h = key
        .iter()
        .fold(Fingerprint::new(), |fp, &w| fp.u64(w))
        .finish();
    ((h as u128 * n_shards as u128) >> 64) as usize
}

/// Remove and return the key of the least-recently-used entry of one
/// cache shard, per `last_used`'s reading of the shard's LRU clock.  The
/// scan is `O(shard len)` — shards are small slices of a bounded
/// capacity, and eviction only runs when a shard is full.
pub fn evict_coldest<V, S: std::hash::BuildHasher>(
    map: &mut HashMap<Box<[u64]>, V, S>,
    last_used: impl Fn(&V) -> u64,
) -> Option<Box<[u64]>> {
    let victim = map
        .iter()
        .min_by_key(|(_, v)| last_used(v))
        .map(|(k, _)| k.clone())?;
    map.remove(&victim);
    Some(victim)
}

/// Label-independent fingerprint of one table *occurrence* in a query:
/// the stored table's statistics fingerprint plus the occurrence's filter
/// (column and selectivity distribution).  The free-function form of
/// [`CostModel::table_shape_fingerprint`], for callers that have no model
/// (e.g. cache-key canonicalization).
pub fn table_occurrence_fingerprint(catalog: &Catalog, query: &Query, idx: usize) -> u64 {
    let qt = &query.tables[idx];
    let fp = Fingerprint::new().u64(table_stats_fingerprint(&catalog.table(qt.table).stats));
    match &qt.filter {
        Some(f) => fp.u64(1).u64(f.column as u64).dist(&f.selectivity),
        None => fp.u64(0),
    }
    .finish()
}

/// Fingerprint of everything in one table's statistics that the cost
/// model can observe: pages, rows, the optional page-count distribution,
/// and each column's distinct count and index kind (names are display
/// only).  This is the per-table ingredient of cross-query cache keys —
/// two tables with equal fingerprints are interchangeable to the DP.
pub fn table_stats_fingerprint(stats: &lec_catalog::TableStats) -> u64 {
    let mut fp = Fingerprint::new().u64(stats.pages).u64(stats.rows);
    fp = match &stats.page_dist {
        Some(d) => fp.u64(1).dist(d),
        None => fp.u64(0),
    };
    fp = fp.u64(stats.columns.len() as u64);
    for col in &stats.columns {
        let kind = match col.index {
            IndexKind::None => 0u64,
            IndexKind::Clustered => 1,
            IndexKind::Unclustered => 2,
        };
        fp = fp.u64(col.distinct).u64(kind);
    }
    fp.finish()
}

/// Cost model bound to one catalog and one query.
///
/// All size parameters are in pages.  Uncertain quantities are exposed both
/// as point estimates (mean — what the LSC baseline uses) and as
/// distributions (what Algorithms C/D use).  The model counts every
/// evaluation of a cost formula through [`CostModel::evals`], which is the
/// unit in which the paper states its overheads ("this computation requires
/// b evaluations of the cost formula", §3.4).
///
/// The `*_for` methods additionally memoize evaluations in a cache keyed by
/// `(table sets, operator, memory bucket, operand sizes)`, so the repeated
/// per-bucket evaluations the DP algorithms perform across entry pairs and
/// DP levels are computed once; cache hits do not increment the evaluation
/// counter (they perform no formula work), which is exactly the reduction
/// [`CostModel::evals`] is meant to expose.  The cache is on by default and
/// can be disabled with [`CostModel::set_eval_cache`] for apples-to-apples
/// overhead measurements.
///
/// # Thread safety
///
/// `CostModel` is `Sync`: the evaluation cache is sharded across
/// per-tier `Mutex`es ([`ShardedEvalCache`]) and the counters are atomics,
/// so the parallel search engine shares one model across its worker
/// threads.  Shard locks are held across the compute of a miss, so every
/// distinct key is evaluated **exactly once** no matter how many threads
/// race on it — which keeps [`CostModel::evals`] and
/// [`CostModel::eval_cache_hits`] identical between serial and parallel
/// searches over the same query.
#[derive(Debug)]
pub struct CostModel<'a> {
    catalog: &'a Catalog,
    query: &'a Query,
    equivalences: ColumnEquivalences,
    /// Per-table [`table_occurrence_fingerprint`]s, precomputed so the
    /// engine's tie-breaks are an array lookup rather than a rehash.
    table_shapes: Vec<u64>,
    evals: AtomicU64,
    eval_cache: ShardedEvalCache,
    cache_enabled: AtomicBool,
    cache_hits: AtomicU64,
    /// When installed, expectation-tier cache misses time their compute
    /// into `telemetry.eval_compute_ns`.  `None` (the default) keeps the
    /// hot path a single branch.
    telemetry: Option<Arc<lec_telemetry::EngineTelemetry>>,
}

/// The engine shares one model across all of its search threads.
const _: fn() = || {
    fn assert_sync<T: Sync + Send>() {}
    assert_sync::<CostModel<'static>>();
};

impl<'a> CostModel<'a> {
    /// Bind the model to a query.
    pub fn new(catalog: &'a Catalog, query: &'a Query) -> Self {
        CostModel {
            catalog,
            query,
            equivalences: ColumnEquivalences::for_query(query),
            table_shapes: (0..query.n_tables())
                .map(|i| table_occurrence_fingerprint(catalog, query, i))
                .collect(),
            evals: AtomicU64::new(0),
            eval_cache: ShardedEvalCache::new(),
            cache_enabled: AtomicBool::new(true),
            cache_hits: AtomicU64::new(0),
            telemetry: None,
        }
    }

    /// Install (or remove) engine telemetry: expectation-tier cache-miss
    /// computes are timed into its `eval_compute_ns` histogram.  Purely
    /// observational — costs, counters, and results are unaffected.
    pub fn set_telemetry(&mut self, telemetry: Option<Arc<lec_telemetry::EngineTelemetry>>) {
        self.telemetry = telemetry;
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &Catalog {
        self.catalog
    }

    /// The query this model is bound to.
    pub fn query(&self) -> &Query {
        self.query
    }

    /// Column equivalence classes of the query (for order properties).
    pub fn equivalences(&self) -> &ColumnEquivalences {
        &self.equivalences
    }

    /// Label-independent fingerprint of one table occurrence: everything
    /// this model can observe about it (statistics, filter column and
    /// selectivity distribution) and nothing about its query-local index.
    /// Two occurrences with equal fingerprints are interchangeable to the
    /// DP; the engine uses this to break exact cost ties the same way
    /// under any table renaming.
    pub fn table_shape_fingerprint(&self, table_idx: usize) -> u64 {
        self.table_shapes[table_idx]
    }

    /// Number of cost-formula evaluations since the last reset.
    pub fn evals(&self) -> u64 {
        self.evals.load(Ordering::Relaxed)
    }

    /// Reset the evaluation counter.
    pub fn reset_evals(&self) {
        self.evals.store(0, Ordering::Relaxed);
    }

    /// Charge `n` formula evaluations that happened (or are being
    /// replayed) outside the memoized `*_for` path — the search engine's
    /// subplan memo uses this to reproduce the uncached access-path
    /// costing of a skipped depth-1 node, keeping [`CostModel::evals`]
    /// byte-identical to a memo-off run.
    pub fn charge_evals(&self, n: u64) {
        if n != 0 {
            self.evals.fetch_add(n, Ordering::Relaxed);
        }
    }

    fn count_eval(&self) {
        self.evals.fetch_add(1, Ordering::Relaxed);
    }

    fn count_evals(&self, n: u64) {
        self.evals.fetch_add(n, Ordering::Relaxed);
    }

    // ---- evaluation cache -----------------------------------------------

    /// Enable or disable the memoized evaluation cache used by the `*_for`
    /// methods.  Toggling (in either direction) clears every shard of the
    /// cache **and resets the hit counter**, so measurements taken after a
    /// toggle never mix cached and uncached regimes.
    ///
    /// Interaction with the sharded cache: the toggle is read with relaxed
    /// atomics on the hot path and the shards are cleared one lock at a
    /// time, so this method must not race a running search — toggle
    /// between searches, as the benchmarks and tests do.  A search running
    /// concurrently with a toggle would see a mix of cached and uncached
    /// answers (all *correct*, since entries are pure function values, but
    /// the `evals`/`cache_hits` counters would no longer be reproducible).
    pub fn set_eval_cache(&self, enabled: bool) {
        self.cache_enabled.store(enabled, Ordering::Relaxed);
        self.eval_cache.for_each_shard(|mut shard| shard.clear());
        self.cache_hits.store(0, Ordering::Relaxed);
    }

    /// Whether the evaluation cache is active.
    pub fn eval_cache_enabled(&self) -> bool {
        self.cache_enabled.load(Ordering::Relaxed)
    }

    /// Number of evaluations answered from the cache (no formula work).
    pub fn eval_cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Number of distinct evaluations currently memoized.
    pub fn eval_cache_len(&self) -> usize {
        let mut total = 0;
        self.eval_cache.for_each_shard(|shard| total += shard.len());
        total
    }

    fn cached(&self, key: EvalKey, compute: impl FnOnce() -> f64) -> f64 {
        if !self.cache_enabled.load(Ordering::Relaxed) {
            return compute();
        }
        let mut shard = self.eval_cache.shard(&key);
        if let Some(&v) = shard.get(&key) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return v;
        }
        // Compute while holding the shard lock: concurrent threads racing
        // on the same key serialize here, and the loser scores a hit
        // instead of re-evaluating — the exactly-once guarantee that makes
        // the evaluation counters schedule-independent.
        let v = match &self.telemetry {
            Some(t) if key.op.is_expectation() => {
                let t0 = std::time::Instant::now();
                let v = compute();
                t.eval_compute_ns.record_duration(t0.elapsed());
                v
            }
            _ => compute(),
        };
        shard.insert(key, v);
        v
    }

    // ---- probe recording and replay -------------------------------------

    /// Start recording this thread's candidate-level cache probes (the
    /// `*_for` calls made outside any expectation compute) until the
    /// returned guard is [`ProbeRecording::finish`]ed or dropped.  The
    /// search engine records one DP node's combine this way and stores the
    /// log in its subplan memo; [`CostModel::replay_probes`] later applies
    /// the log to another query's cache.
    pub fn begin_probe_log(&self) -> ProbeRecording {
        PROBE_LOG.with(|log| *log.borrow_mut() = Some(ProbeLogState { probes: Vec::new() }));
        PROBE_ACTIVE.with(|f| f.set(true));
        ProbeRecording { _private: () }
    }

    /// Replay a recorded probe log against this model's cache, relabeling
    /// each probe's table-set bits through `map`.
    ///
    /// Per probe: a key already cached scores one cache hit, exactly as
    /// the live probe would.  A key not yet cached is *seeded* with the
    /// recorded value and the evaluation counter is charged with the
    /// recorded `direct_evals` — the formula work the live compute would
    /// have performed.  Every value seeded this way is a pure function of
    /// its key, so later live probes that hit it read the same bits a live
    /// compute would have produced.  Totals over a whole search are
    /// therefore identical to a memo-off run: each distinct key is charged
    /// exactly once, and the probe multiset is the same.
    pub fn replay_probes(&self, probes: &[CostProbe], map: impl Fn(u64) -> u64) {
        if !self.cache_enabled.load(Ordering::Relaxed) {
            return;
        }
        for p in probes {
            // Cache keys are set-free ([`EvalKey`]), so the relabeling
            // only matters to callers that surface the probe's table sets;
            // the cache effects of a replayed probe are identical under
            // any relabeling.
            let _ = map(p.left);
            let key = EvalKey {
                op: p.op.eval_op(),
                mem: p.mem,
                outer: p.outer,
                inner: p.inner,
            };
            let mut shard = self.eval_cache.shard(&key);
            if shard.contains_key(&key) {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            self.evals.fetch_add(p.direct_evals, Ordering::Relaxed);
            shard.insert(key, p.value);
        }
    }

    /// [`CostModel::join_cost`] memoized under `(method, m, sizes)` — the
    /// per-bucket evaluation unit of Algorithms B/C.  The operand sets
    /// feed the probe log only; the cache key is set-free ([`EvalKey`]).
    #[allow(clippy::too_many_arguments)]
    pub fn join_cost_for(
        &self,
        left: TableSet,
        right: TableSet,
        method: JoinMethod,
        outer: f64,
        inner: f64,
        m: f64,
    ) -> f64 {
        let key = EvalKey {
            op: EvalOp::Join(method),
            mem: m.to_bits(),
            outer: outer.to_bits(),
            inner: inner.to_bits(),
        };
        let v = self.cached(key, || self.join_cost(method, outer, inner, m));
        if probe_log_active() {
            push_probe(CostProbe {
                left: left.bits(),
                right: right.bits(),
                op: ProbeOp::Join(method),
                mem: key.mem,
                outer: key.outer,
                inner: key.inner,
                value: v,
                direct_evals: 1,
            });
        }
        v
    }

    /// [`CostModel::sort_cost`] memoized under `(m, pages)`.
    pub fn sort_cost_for(&self, set: TableSet, pages: f64, m: f64) -> f64 {
        let key = EvalKey {
            op: EvalOp::Sort,
            mem: m.to_bits(),
            outer: pages.to_bits(),
            inner: 0,
        };
        let v = self.cached(key, || self.sort_cost(pages, m));
        if probe_log_active() {
            push_probe(CostProbe {
                left: set.bits(),
                right: 0,
                op: ProbeOp::Sort,
                mem: key.mem,
                outer: key.outer,
                inner: 0,
                value: v,
                direct_evals: 1,
            });
        }
        v
    }

    /// Expected join cost of *point-sized* inputs over a memory
    /// distribution — the whole `b`-bucket expectation of Algorithms B/C
    /// as one cache entry.  `mem_fp` is the distribution's
    /// [`dist_fingerprint`], precomputed by the caller so the hot path
    /// never rehashes the distribution.  On a miss the per-bucket
    /// evaluations compute through the raw formulas (each one counted, per
    /// §3.4's "b evaluations of the cost formula") without touching the
    /// point tier — see [`ShardedEvalCache`].
    #[allow(clippy::too_many_arguments)]
    pub fn expected_join_cost_over(
        &self,
        left: TableSet,
        right: TableSet,
        method: JoinMethod,
        outer: f64,
        inner: f64,
        memory: &Distribution,
        mem_fp: u64,
    ) -> f64 {
        self.expected_join_cost_over_with(
            left,
            right,
            method,
            outer,
            inner,
            memory,
            mem_fp,
            BucketParallelism::serial(),
        )
    }

    /// [`CostModel::expected_join_cost_over`] with an explicit bucket
    /// fan-out policy: when `par` is active for the distribution's bucket
    /// count, a cache miss evaluates the per-bucket costs across scoped
    /// threads and folds them in bucket order (bit-identical to serial).
    #[allow(clippy::too_many_arguments)]
    pub fn expected_join_cost_over_with(
        &self,
        left: TableSet,
        right: TableSet,
        method: JoinMethod,
        outer: f64,
        inner: f64,
        memory: &Distribution,
        mem_fp: u64,
        par: BucketParallelism,
    ) -> f64 {
        let key = EvalKey {
            op: EvalOp::ExpectedJoinOver(method),
            mem: mem_fp,
            outer: outer.to_bits(),
            inner: inner.to_bits(),
        };
        let v = self.cached(key, || {
            let per_bucket = |m: f64| self.join_cost(method, outer, inner, m);
            if par.active_for(memory.len() as u64) {
                parallel_bucket_expectation(memory, par.threads, per_bucket)
            } else {
                memory.expect(per_bucket)
            }
        });
        if probe_log_active() {
            push_probe(CostProbe {
                left: left.bits(),
                right: right.bits(),
                op: ProbeOp::ExpectedJoinOver(method),
                mem: mem_fp,
                outer: key.outer,
                inner: key.inner,
                value: v,
                direct_evals: memory.len() as u64,
            });
        }
        v
    }

    /// Expected sort cost of a point-sized input over a memory
    /// distribution, memoized like [`CostModel::expected_join_cost_over`].
    pub fn expected_sort_cost_over(
        &self,
        set: TableSet,
        pages: f64,
        memory: &Distribution,
        mem_fp: u64,
    ) -> f64 {
        self.expected_sort_cost_over_with(set, pages, memory, mem_fp, BucketParallelism::serial())
    }

    /// [`CostModel::expected_sort_cost_over`] with an explicit bucket
    /// fan-out policy.
    pub fn expected_sort_cost_over_with(
        &self,
        set: TableSet,
        pages: f64,
        memory: &Distribution,
        mem_fp: u64,
        par: BucketParallelism,
    ) -> f64 {
        let key = EvalKey {
            op: EvalOp::ExpectedSortOver,
            mem: mem_fp,
            outer: pages.to_bits(),
            inner: 0,
        };
        let v = self.cached(key, || {
            let per_bucket = |m: f64| self.sort_cost(pages, m);
            if par.active_for(memory.len() as u64) {
                parallel_bucket_expectation(memory, par.threads, per_bucket)
            } else {
                memory.expect(per_bucket)
            }
        });
        if probe_log_active() {
            push_probe(CostProbe {
                left: set.bits(),
                right: 0,
                op: ProbeOp::ExpectedSortOver,
                mem: mem_fp,
                outer: key.outer,
                inner: 0,
                value: v,
                direct_evals: memory.len() as u64,
            });
        }
        v
    }

    /// Expected join cost over size and memory distributions (Algorithm
    /// D's per-method costing step), memoized under the method and the
    /// distribution fingerprints.  `m_fp` is the memory distribution's
    /// [`dist_fingerprint`], precomputed by the caller — the memory
    /// distribution is constant for a whole run, so the hot path never
    /// rehashes it.  Counts the §3.6.1/§3.6.2 number of
    /// cost-formula evaluations on a miss: linear in the bucket counts for
    /// the separable methods, the full `b_A·b_B·b_M` triple product for
    /// block nested-loop.
    #[allow(clippy::too_many_arguments)]
    pub fn expected_join_cost_for(
        &self,
        left: TableSet,
        right: TableSet,
        method: JoinMethod,
        a_dist: &Distribution,
        b_dist: &Distribution,
        m_dist: &Distribution,
        m_fp: u64,
        m_tables: &PrefixTables,
    ) -> f64 {
        self.expected_join_cost_for_with(
            left,
            right,
            method,
            a_dist,
            b_dist,
            m_dist,
            m_fp,
            m_tables,
            BucketParallelism::serial(),
        )
    }

    /// [`CostModel::expected_join_cost_for`] with an explicit bucket
    /// fan-out policy.  The only method whose per-candidate evaluation
    /// count can justify fanning out is block nested-loop (the
    /// non-separable `b_A·b_B·b_M` triple sum); its parallel path computes
    /// per-`a`-bucket partial sums across threads and folds them in bucket
    /// order, matching the serial accumulation structure bit for bit.
    #[allow(clippy::too_many_arguments)]
    pub fn expected_join_cost_for_with(
        &self,
        left: TableSet,
        right: TableSet,
        method: JoinMethod,
        a_dist: &Distribution,
        b_dist: &Distribution,
        m_dist: &Distribution,
        m_fp: u64,
        m_tables: &PrefixTables,
        par: BucketParallelism,
    ) -> f64 {
        let key = EvalKey {
            op: EvalOp::ExpectedJoin(method),
            mem: m_fp,
            outer: dist_fingerprint(a_dist),
            inner: dist_fingerprint(b_dist),
        };
        let v = self.cached(key, || {
            let evals = match method {
                JoinMethod::BlockNestedLoop => {
                    crate::expected::naive_eval_count(a_dist, b_dist, m_dist)
                }
                _ => (a_dist.len() + b_dist.len()) as u64,
            };
            self.count_evals(evals);
            if method == JoinMethod::BlockNestedLoop && par.active_for(evals) {
                crate::expected::parallel_naive_expected_join_cost(
                    method,
                    a_dist,
                    b_dist,
                    m_dist,
                    par.threads,
                )
            } else {
                crate::expected::expected_join_cost(method, a_dist, b_dist, m_dist, m_tables)
            }
        });
        if probe_log_active() {
            let direct_evals = match method {
                JoinMethod::BlockNestedLoop => {
                    crate::expected::naive_eval_count(a_dist, b_dist, m_dist)
                }
                _ => (a_dist.len() + b_dist.len()) as u64,
            };
            push_probe(CostProbe {
                left: left.bits(),
                right: right.bits(),
                op: ProbeOp::ExpectedJoin(method),
                mem: m_fp,
                outer: key.outer,
                inner: key.inner,
                value: v,
                direct_evals,
            });
        }
        v
    }

    /// Expected sort cost over size and memory distributions, memoized
    /// like [`CostModel::expected_join_cost_for`].
    pub fn expected_sort_cost_for(
        &self,
        set: TableSet,
        r_dist: &Distribution,
        m_fp: u64,
        m_tables: &PrefixTables,
    ) -> f64 {
        let key = EvalKey {
            op: EvalOp::ExpectedSort,
            mem: m_fp,
            outer: dist_fingerprint(r_dist),
            inner: 0,
        };
        let v = self.cached(key, || {
            self.count_evals(r_dist.len() as u64);
            crate::expected::expected_sort_cost(r_dist, m_tables)
        });
        if probe_log_active() {
            push_probe(CostProbe {
                left: set.bits(),
                right: 0,
                op: ProbeOp::ExpectedSort,
                mem: m_fp,
                outer: key.outer,
                inner: 0,
                value: v,
                direct_evals: r_dist.len() as u64,
            });
        }
        v
    }

    // ---- sizes ----------------------------------------------------------

    /// Raw heap pages of a query table.
    pub fn raw_pages(&self, table_idx: usize) -> f64 {
        self.catalog
            .table(self.query.tables[table_idx].table)
            .stats
            .pages as f64
    }

    /// Rows of a query table.
    pub fn raw_rows(&self, table_idx: usize) -> f64 {
        self.catalog
            .table(self.query.tables[table_idx].table)
            .stats
            .rows as f64
    }

    /// Point estimate (mean) of the post-filter page count of a table —
    /// the paper's `|A_j|` "after any initial selection".
    pub fn base_pages(&self, table_idx: usize) -> f64 {
        let qt = &self.query.tables[table_idx];
        let pages = self.raw_pages(table_idx);
        match &qt.filter {
            Some(f) => (pages * f.selectivity.mean()).max(formulas::MIN_PAGES),
            None => pages,
        }
    }

    /// Distribution of the post-filter page count of a table
    /// (`Pr(|A_j|)` in Figure 1).
    pub fn base_pages_dist(&self, table_idx: usize) -> Distribution {
        let qt = &self.query.tables[table_idx];
        let t = self.catalog.table(qt.table);
        let page_dist = t.stats.page_distribution();
        match &qt.filter {
            Some(f) => page_dist
                .product(&f.selectivity)
                .map(|v| v.max(formulas::MIN_PAGES)),
            None => page_dist,
        }
    }

    /// Point (mean) combined selectivity of all join predicates connecting
    /// `set` to table `idx` (independence assumption, §3.6).
    pub fn join_selectivity(&self, set: TableSet, idx: usize) -> f64 {
        self.query
            .joins_connecting(set, idx)
            .iter()
            .map(|&i| self.query.joins[i].selectivity.mean())
            .product()
    }

    /// Distribution of the combined selectivity (`Pr(σ)` in Figure 1).
    pub fn join_selectivity_dist(&self, set: TableSet, idx: usize) -> Distribution {
        let mut dist = Distribution::point(1.0);
        for &i in &self.query.joins_connecting(set, idx) {
            dist = dist.product(&self.query.joins[i].selectivity);
        }
        dist
    }

    /// Distribution of the combined selectivity of all predicates crossing
    /// two disjoint table sets (the `Pr(σ)` of Figure 1 in bushy-capable
    /// form).
    pub fn join_selectivity_dist_sets(&self, a: TableSet, b: TableSet) -> Distribution {
        let mut dist = Distribution::point(1.0);
        for &i in &self.query.joins_crossing(a, b) {
            dist = dist.product(&self.query.joins[i].selectivity);
        }
        dist
    }

    /// Point (mean) combined selectivity of all predicates crossing two
    /// disjoint table sets (general form used when costing arbitrary trees).
    pub fn join_selectivity_sets(&self, a: TableSet, b: TableSet) -> f64 {
        self.query
            .joins_crossing(a, b)
            .iter()
            .map(|&i| self.query.joins[i].selectivity.mean())
            .product()
    }

    /// Result size of a join: the paper's `a·b·σ` pages, clamped to one page.
    pub fn join_output_pages(&self, outer: f64, inner: f64, selectivity: f64) -> f64 {
        (outer * inner * selectivity).max(formulas::MIN_PAGES)
    }

    // ---- access paths ---------------------------------------------------

    /// Access paths worth considering for a table: sequential scan always,
    /// plus an index scan when the local filter matches an index.
    pub fn access_paths(&self, table_idx: usize) -> Vec<AccessPath> {
        let mut out = vec![AccessPath::SeqScan];
        if self.index_kind_for_filter(table_idx) != IndexKind::None {
            out.push(AccessPath::IndexScan);
        }
        out
    }

    fn index_kind_for_filter(&self, table_idx: usize) -> IndexKind {
        let qt = &self.query.tables[table_idx];
        match &qt.filter {
            Some(f) => self.catalog.table(qt.table).stats.index_on(f.column),
            None => IndexKind::None,
        }
    }

    /// Cost of one access path (memory-independent in this model).
    pub fn access_cost(&self, path: AccessPath, table_idx: usize) -> f64 {
        self.count_eval();
        let pages = self.raw_pages(table_idx);
        match path {
            AccessPath::SeqScan => formulas::seq_scan_cost(pages),
            AccessPath::IndexScan => {
                let qt = &self.query.tables[table_idx];
                let f = qt.filter.as_ref().expect("index scan requires a filter");
                let rows = self.raw_rows(table_idx);
                match self.index_kind_for_filter(table_idx) {
                    IndexKind::Clustered => {
                        formulas::clustered_index_scan_cost(pages, rows, f.selectivity.mean())
                    }
                    IndexKind::Unclustered => {
                        formulas::unclustered_index_scan_cost(rows, f.selectivity.mean())
                    }
                    IndexKind::None => unreachable!("access_paths gates on index presence"),
                }
            }
        }
    }

    // ---- joins and sorts ------------------------------------------------

    /// Join cost at a specific memory value (the paper's `C(P, v)` for one
    /// operator); `outer`/`inner` in pages.
    pub fn join_cost(&self, method: JoinMethod, outer: f64, inner: f64, m: f64) -> f64 {
        self.count_eval();
        formulas::raw_join_cost(method, outer, inner, m)
    }

    /// Sort cost at a specific memory value.
    pub fn sort_cost(&self, pages: f64, m: f64) -> f64 {
        self.count_eval();
        formulas::sort_cost(pages, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lec_catalog::{ColumnStats, TableStats};
    use lec_plan::{ColumnRef, JoinPredicate, QueryTable};

    fn fixture() -> (Catalog, Query) {
        let mut cat = Catalog::new();
        let a = cat.add_table(
            "A",
            TableStats::new(
                1000,
                50_000,
                vec![
                    ColumnStats::indexed("pk", 50_000, IndexKind::Clustered),
                    ColumnStats::plain("x", 100),
                ],
            ),
        );
        let b = cat.add_table(
            "B",
            TableStats::new(500, 25_000, vec![ColumnStats::plain("y", 50)]),
        );
        let query = Query {
            tables: vec![
                QueryTable::filtered(a, 0, Distribution::point(0.1)),
                QueryTable::bare(b),
            ],
            joins: vec![JoinPredicate::exact(
                ColumnRef::new(0, 1),
                ColumnRef::new(1, 0),
                1e-4,
            )],
            required_order: None,
        };
        (cat, query)
    }

    #[test]
    fn base_pages_apply_filters() {
        let (cat, q) = fixture();
        let m = CostModel::new(&cat, &q);
        assert_eq!(m.base_pages(0), 100.0); // 1000 × 0.1
        assert_eq!(m.base_pages(1), 500.0);
        let d = m.base_pages_dist(0);
        assert!(d.is_point());
        assert_eq!(d.mean(), 100.0);
    }

    #[test]
    fn uncertain_filter_propagates_to_size_distribution() {
        let (cat, mut q) = fixture();
        q.tables[0].filter.as_mut().unwrap().selectivity =
            Distribution::bimodal(0.01, 0.5, 0.5).unwrap();
        let m = CostModel::new(&cat, &q);
        let d = m.base_pages_dist(0);
        assert_eq!(d.len(), 2);
        assert_eq!(d.support(), &[10.0, 500.0]);
        assert_eq!(m.base_pages(0), 1000.0 * (0.01 + 0.5) / 2.0);
    }

    #[test]
    fn selectivity_product_over_connecting_predicates() {
        let (cat, mut q) = fixture();
        // Add a second predicate between the same pair.
        q.joins.push(JoinPredicate::exact(
            ColumnRef::new(0, 0),
            ColumnRef::new(1, 0),
            0.5,
        ));
        let m = CostModel::new(&cat, &q);
        let s = m.join_selectivity(TableSet::singleton(0), 1);
        assert!((s - 1e-4 * 0.5).abs() < 1e-18);
        let d = m.join_selectivity_dist(TableSet::singleton(0), 1);
        assert!(d.is_point());
        assert!((d.mean() - 5e-5).abs() < 1e-18);
    }

    #[test]
    fn access_paths_depend_on_indexes() {
        let (cat, q) = fixture();
        let m = CostModel::new(&cat, &q);
        // Table 0: clustered index on the filtered column.
        assert_eq!(
            m.access_paths(0),
            vec![AccessPath::SeqScan, AccessPath::IndexScan]
        );
        // Table 1: no filter, no index scan.
        assert_eq!(m.access_paths(1), vec![AccessPath::SeqScan]);
        // Index scan cheaper than full scan at 10% selectivity.
        assert!(m.access_cost(AccessPath::IndexScan, 0) < m.access_cost(AccessPath::SeqScan, 0));
    }

    #[test]
    fn eval_counter_counts_formula_calls() {
        let (cat, q) = fixture();
        let m = CostModel::new(&cat, &q);
        assert_eq!(m.evals(), 0);
        m.join_cost(JoinMethod::SortMerge, 100.0, 200.0, 50.0);
        m.sort_cost(100.0, 10.0);
        m.access_cost(AccessPath::SeqScan, 1);
        assert_eq!(m.evals(), 3);
        m.reset_evals();
        assert_eq!(m.evals(), 0);
    }

    #[test]
    fn join_cost_dispatch_matches_formulas() {
        let (cat, q) = fixture();
        let m = CostModel::new(&cat, &q);
        let (a, b, mem) = (1e6, 4e5, 700.0);
        assert_eq!(
            m.join_cost(JoinMethod::SortMerge, a, b, mem),
            crate::formulas::sm_join_cost(a, b, mem)
        );
        assert_eq!(
            m.join_cost(JoinMethod::GraceHash, a, b, mem),
            crate::formulas::grace_join_cost(a, b, mem)
        );
        assert_eq!(
            m.join_cost(JoinMethod::PageNestedLoop, a, b, mem),
            crate::formulas::nl_join_cost(a, b, mem)
        );
        assert_eq!(
            m.join_cost(JoinMethod::BlockNestedLoop, a, b, mem),
            crate::formulas::bnl_join_cost(a, b, mem)
        );
    }

    #[test]
    fn eval_cache_hits_skip_the_counter() {
        let (cat, q) = fixture();
        let m = CostModel::new(&cat, &q);
        let (l, r) = (TableSet::singleton(0), TableSet::singleton(1));
        let first = m.join_cost_for(l, r, JoinMethod::SortMerge, 100.0, 200.0, 50.0);
        assert_eq!(m.evals(), 1);
        assert_eq!(m.eval_cache_hits(), 0);
        let again = m.join_cost_for(l, r, JoinMethod::SortMerge, 100.0, 200.0, 50.0);
        assert_eq!(first, again);
        assert_eq!(m.evals(), 1, "hit must not re-evaluate");
        assert_eq!(m.eval_cache_hits(), 1);
        // A different memory bucket is a different key.
        m.join_cost_for(l, r, JoinMethod::SortMerge, 100.0, 200.0, 60.0);
        assert_eq!(m.evals(), 2);
        // Sort shares the machinery.
        m.sort_cost_for(l, 100.0, 10.0);
        m.sort_cost_for(l, 100.0, 10.0);
        assert_eq!(m.evals(), 3);
        assert_eq!(m.eval_cache_hits(), 2);
    }

    #[test]
    fn disabled_cache_matches_enabled_values() {
        let (cat, q) = fixture();
        let m = CostModel::new(&cat, &q);
        let (l, r) = (TableSet::singleton(0), TableSet::singleton(1));
        let cached = m.join_cost_for(l, r, JoinMethod::GraceHash, 1e4, 2e4, 300.0);
        m.set_eval_cache(false);
        m.reset_evals();
        let raw = m.join_cost_for(l, r, JoinMethod::GraceHash, 1e4, 2e4, 300.0);
        m.join_cost_for(l, r, JoinMethod::GraceHash, 1e4, 2e4, 300.0);
        assert_eq!(cached, raw);
        assert_eq!(m.evals(), 2, "disabled cache evaluates every call");
        assert_eq!(m.eval_cache_hits(), 0);
    }

    #[test]
    fn disabling_the_cache_resets_the_hit_counter() {
        let (cat, q) = fixture();
        let m = CostModel::new(&cat, &q);
        let (l, r) = (TableSet::singleton(0), TableSet::singleton(1));
        m.join_cost_for(l, r, JoinMethod::GraceHash, 1e4, 2e4, 300.0);
        m.join_cost_for(l, r, JoinMethod::GraceHash, 1e4, 2e4, 300.0);
        assert_eq!(m.eval_cache_hits(), 1);
        assert!(m.eval_cache_len() > 0);
        m.set_eval_cache(false);
        assert_eq!(m.eval_cache_hits(), 0, "toggle must reset cache_hits");
        assert_eq!(m.eval_cache_len(), 0, "toggle must clear every shard");
        // Re-enabling starts from a clean slate too.
        m.set_eval_cache(true);
        assert_eq!(m.eval_cache_hits(), 0);
        assert_eq!(m.eval_cache_len(), 0);
    }

    #[test]
    fn expected_cost_cache_counts_paper_eval_units() {
        let (cat, q) = fixture();
        let m = CostModel::new(&cat, &q);
        let (l, r) = (TableSet::singleton(0), TableSet::singleton(1));
        let a = Distribution::bimodal(100.0, 200.0, 0.5).unwrap();
        let b = Distribution::bimodal(50.0, 80.0, 0.5).unwrap();
        let mem = Distribution::bimodal(10.0, 1000.0, 0.5).unwrap();
        let mt = lec_prob::PrefixTables::new(&mem);
        let mem_fp = dist_fingerprint(&mem);
        m.reset_evals();
        let ec = m.expected_join_cost_for(l, r, JoinMethod::SortMerge, &a, &b, &mem, mem_fp, &mt);
        assert_eq!(m.evals(), 4, "streaming SM is linear in bucket counts");
        let replay = crate::expected::expected_join_cost(JoinMethod::SortMerge, &a, &b, &mem, &mt);
        assert_eq!(ec, replay);
        m.expected_join_cost_for(l, r, JoinMethod::SortMerge, &a, &b, &mem, mem_fp, &mt);
        assert_eq!(m.evals(), 4, "second call is a cache hit");
        m.reset_evals();
        m.expected_join_cost_for(l, r, JoinMethod::BlockNestedLoop, &a, &b, &mem, mem_fp, &mt);
        assert_eq!(m.evals(), 8, "BNL falls back to the b_A*b_B*b_M triple sum");
        m.reset_evals();
        m.expected_sort_cost_for(l, &a, mem_fp, &mt);
        assert_eq!(m.evals(), 2);
    }

    #[test]
    fn parallel_bucket_expectation_is_bit_identical_to_serial() {
        let (cat, q) = fixture();
        let (l, r) = (TableSet::singleton(0), TableSet::singleton(1));
        let memory = Distribution::from_pairs(
            (0..37).map(|i| (50.0 + 13.0 * i as f64, 1.0 + (i % 5) as f64)),
        )
        .unwrap();
        let mem_fp = dist_fingerprint(&memory);
        for threads in [2usize, 3, 8, 64] {
            let par = BucketParallelism {
                threads,
                min_evals: 1,
            };
            let serial_model = CostModel::new(&cat, &q);
            let par_model = CostModel::new(&cat, &q);
            for method in JoinMethod::ALL {
                let s = serial_model
                    .expected_join_cost_over(l, r, method, 123.0, 456.0, &memory, mem_fp);
                let p = par_model
                    .expected_join_cost_over_with(l, r, method, 123.0, 456.0, &memory, mem_fp, par);
                assert_eq!(s.to_bits(), p.to_bits(), "{method:?} at {threads} threads");
            }
            let s = serial_model.expected_sort_cost_over(l, 900.0, &memory, mem_fp);
            let p = par_model.expected_sort_cost_over_with(l, 900.0, &memory, mem_fp, par);
            assert_eq!(s.to_bits(), p.to_bits(), "sort at {threads} threads");
            assert_eq!(serial_model.evals(), par_model.evals());
            assert_eq!(serial_model.eval_cache_hits(), par_model.eval_cache_hits());
        }
    }

    #[test]
    fn concurrent_lookups_evaluate_each_key_exactly_once() {
        let (cat, q) = fixture();
        let m = CostModel::new(&cat, &q);
        let (l, r) = (TableSet::singleton(0), TableSet::singleton(1));
        let n_keys = 100u64;
        let n_threads = 8;
        std::thread::scope(|s| {
            for _ in 0..n_threads {
                s.spawn(|| {
                    for i in 0..n_keys {
                        m.join_cost_for(l, r, JoinMethod::SortMerge, 100.0 + i as f64, 200.0, 50.0);
                    }
                });
            }
        });
        assert_eq!(
            m.evals(),
            n_keys,
            "each distinct key must be computed exactly once"
        );
        assert_eq!(m.eval_cache_hits(), (n_threads - 1) * n_keys);
        assert_eq!(m.eval_cache_len(), n_keys as usize);
    }

    #[test]
    fn output_pages_clamped() {
        let (cat, q) = fixture();
        let m = CostModel::new(&cat, &q);
        assert_eq!(m.join_output_pages(100.0, 500.0, 1e-4), 5.0);
        assert_eq!(m.join_output_pages(10.0, 10.0, 1e-9), 1.0);
    }
}
