//! Property tests for the cost crate: formula laws, streaming/naive
//! agreement, and plan-cost consistency.

use lec_cost::expected::{naive_expected_join_cost, streaming_expected_join_cost};
use lec_cost::formulas;
use lec_plan::JoinMethod;
use lec_prob::{Distribution, PrefixTables};
use proptest::prelude::*;

fn arb_dist(lo: f64, hi: f64) -> impl Strategy<Value = Distribution> {
    prop::collection::vec((lo..hi, 0.05f64..1.0), 1..10)
        .prop_map(|pairs| Distribution::from_pairs(pairs).expect("valid"))
}

proptest! {
    /// Streaming EC ≡ naive EC for every separable method — §3.6.1/§3.6.2
    /// verified over the whole input space, including boundary ties.
    #[test]
    fn streaming_equals_naive(
        a in arb_dist(1.0, 1e6),
        b in arb_dist(1.0, 1e6),
        m in arb_dist(2.0, 1e4),
    ) {
        let mt = PrefixTables::new(&m);
        for method in [JoinMethod::SortMerge, JoinMethod::GraceHash, JoinMethod::PageNestedLoop] {
            let naive = naive_expected_join_cost(method, &a, &b, &m);
            let fast = streaming_expected_join_cost(method, &a, &b, &mt).unwrap();
            prop_assert!(
                ((naive - fast) / naive.max(1.0)).abs() < 1e-9,
                "{method:?}: {naive} vs {fast}"
            );
        }
    }

    /// Join and sort costs never increase with memory (more buffers never
    /// hurt in this model) and are always positive and finite.
    #[test]
    fn costs_monotone_in_memory(
        a in 1.0f64..1e6,
        b in 1.0f64..1e6,
        m1 in 2.0f64..1e6,
        m2 in 2.0f64..1e6,
    ) {
        let (lo, hi) = if m1 <= m2 { (m1, m2) } else { (m2, m1) };
        for f in [
            formulas::sm_join_cost,
            formulas::grace_join_cost,
            formulas::nl_join_cost,
            formulas::bnl_join_cost,
        ] {
            let c_lo = f(a, b, lo);
            let c_hi = f(a, b, hi);
            prop_assert!(c_hi <= c_lo + 1e-9);
            prop_assert!(c_hi.is_finite() && c_hi > 0.0);
        }
        prop_assert!(formulas::sort_cost(a, hi) <= formulas::sort_cost(a, lo) + 1e-9);
    }

    /// Join costs are monotone in input sizes at fixed memory.
    #[test]
    fn costs_monotone_in_sizes(
        a in 1.0f64..1e5,
        b in 1.0f64..1e5,
        extra in 1.0f64..1e5,
        m in 2.0f64..1e5,
    ) {
        for f in [
            formulas::sm_join_cost,
            formulas::grace_join_cost,
            formulas::nl_join_cost,
            formulas::bnl_join_cost,
        ] {
            prop_assert!(f(a + extra, b, m) >= f(a, b, m) - 1e-9);
            prop_assert!(f(a, b + extra, m) >= f(a, b, m) - 1e-9);
        }
    }

    /// SM/Grace symmetry and NL outer-asymmetry, over random inputs.
    #[test]
    fn symmetry_laws(a in 1.0f64..1e6, b in 1.0f64..1e6, m in 2.0f64..1e5) {
        prop_assert_eq!(
            formulas::sm_join_cost(a, b, m).to_bits(),
            formulas::sm_join_cost(b, a, m).to_bits()
        );
        prop_assert_eq!(
            formulas::grace_join_cost(a, b, m).to_bits(),
            formulas::grace_join_cost(b, a, m).to_bits()
        );
        // NL above threshold is symmetric; below it the outer multiplies.
        let s = a.min(b);
        if m >= s + 2.0 {
            prop_assert_eq!(
                formulas::nl_join_cost(a, b, m).to_bits(),
                formulas::nl_join_cost(b, a, m).to_bits()
            );
        }
    }

    /// Breakpoints really bracket cost changes: the formula is constant on
    /// each side of every returned breakpoint within a small window.
    #[test]
    fn breakpoints_are_the_only_cliffs(a in 10.0f64..1e6, b in 10.0f64..1e6) {
        let bps = formulas::sm_breakpoints(a, b);
        for w in bps.windows(2) {
            // Sample inside the open interval: cost must be constant.
            let (lo, hi) = (w[0], w[1]);
            if hi / lo > 1.001 {
                let m1 = lo * 1.0005;
                let m2 = hi * 0.9995;
                prop_assert_eq!(
                    formulas::sm_join_cost(a, b, m1).to_bits(),
                    formulas::sm_join_cost(a, b, m2).to_bits()
                );
            }
        }
    }

    /// Expected cost of a point distribution is the cost at that point.
    #[test]
    fn point_expectation_is_evaluation(
        a in 1.0f64..1e6,
        b in 1.0f64..1e6,
        m in 2.0f64..1e5,
    ) {
        let da = Distribution::point(a);
        let db = Distribution::point(b);
        let dm = Distribution::point(m);
        let mt = PrefixTables::new(&dm);
        for method in [JoinMethod::SortMerge, JoinMethod::GraceHash, JoinMethod::PageNestedLoop] {
            let fast = streaming_expected_join_cost(method, &da, &db, &mt).unwrap();
            let f: fn(f64, f64, f64) -> f64 = match method {
                JoinMethod::SortMerge => formulas::sm_join_cost,
                JoinMethod::GraceHash => formulas::grace_join_cost,
                _ => formulas::nl_join_cost,
            };
            let direct = f(a, b, m);
            prop_assert!(((fast - direct) / direct.max(1.0)).abs() < 1e-12);
        }
    }

    /// EC is monotone under first-order stochastic dominance of memory:
    /// shifting memory mass upward cannot increase expected cost.
    #[test]
    fn ec_respects_memory_dominance(
        a in arb_dist(1.0, 1e6),
        b in arb_dist(1.0, 1e6),
        m in arb_dist(2.0, 1e4),
        shift in 1.0f64..1e4,
    ) {
        let m_up = m.scale(1.0 + shift / 1e4);
        let mt = PrefixTables::new(&m);
        let mt_up = PrefixTables::new(&m_up);
        for method in [JoinMethod::SortMerge, JoinMethod::GraceHash, JoinMethod::PageNestedLoop] {
            let base = streaming_expected_join_cost(method, &a, &b, &mt).unwrap();
            let up = streaming_expected_join_cost(method, &a, &b, &mt_up).unwrap();
            prop_assert!(up <= base + 1e-6, "{method:?}: {up} > {base}");
        }
    }
}
