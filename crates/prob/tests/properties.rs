//! Property-based tests for the probability substrate.

use lec_prob::{Distribution, MarkovChain, PrefixTables, Rebucket};
use proptest::prelude::*;

/// Strategy producing a valid distribution with 1..=12 buckets.
fn arb_distribution() -> impl Strategy<Value = Distribution> {
    prop::collection::vec((1.0f64..1e6, 0.01f64..10.0), 1..12)
        .prop_map(|pairs| Distribution::from_pairs(pairs).expect("valid by construction"))
}

proptest! {
    #[test]
    fn mass_sums_to_one(d in arb_distribution()) {
        let total: f64 = d.probs().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn support_strictly_increasing(d in arb_distribution()) {
        for w in d.support().windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn mean_within_support_bounds(d in arb_distribution()) {
        let m = d.mean();
        prop_assert!(m >= d.min_value() - 1e-9);
        prop_assert!(m <= d.max_value() + 1e-9);
    }

    #[test]
    fn prefix_tables_agree_with_direct_sums(d in arb_distribution(), x in 0.0f64..2e6) {
        let t = PrefixTables::new(&d);
        let direct_le: f64 = d.iter().filter(|&(v, _)| v <= x).map(|(_, p)| p).sum();
        let direct_pe: f64 = d.iter().filter(|&(v, _)| v <= x).map(|(v, p)| v * p).sum();
        prop_assert!((t.prob_le(x) - direct_le).abs() < 1e-9);
        prop_assert!((t.partial_expect_le(x) - direct_pe).abs() < 1e-6);
        prop_assert!((t.prob_le(x) + t.prob_gt(x) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rebucket_preserves_mass_and_mean(
        d in arb_distribution(),
        n in 1usize..8,
        eq_width in any::<bool>(),
    ) {
        let strategy = if eq_width { Rebucket::EqualWidth } else { Rebucket::EqualDepth };
        let r = d.rebucket(n, strategy).unwrap();
        prop_assert!(r.len() <= n.max(d.len().min(n)));
        let total: f64 = r.probs().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        // Conditional-mean representatives preserve the mean exactly
        // (up to floating point).
        let scale = d.mean().abs().max(1.0);
        prop_assert!((r.mean() - d.mean()).abs() / scale < 1e-9);
        // Rebucketed support stays within the original range.
        prop_assert!(r.min_value() >= d.min_value() - 1e-9);
        prop_assert!(r.max_value() <= d.max_value() + 1e-9);
    }

    #[test]
    fn product_mean_is_product_of_means(a in arb_distribution(), b in arb_distribution()) {
        let p = a.product(&b);
        let expected = a.mean() * b.mean();
        let scale = expected.abs().max(1.0);
        prop_assert!((p.mean() - expected).abs() / scale < 1e-6);
    }

    #[test]
    fn convolve_mean_is_sum_of_means(a in arb_distribution(), b in arb_distribution()) {
        let s = a.convolve(&b);
        let expected = a.mean() + b.mean();
        let scale = expected.abs().max(1.0);
        prop_assert!((s.mean() - expected).abs() / scale < 1e-9);
    }

    #[test]
    fn expectation_is_linear(d in arb_distribution(), a in -5.0f64..5.0, b in -100.0f64..100.0) {
        let lhs = d.expect(|v| a * v + b);
        let rhs = a * d.mean() + b;
        let scale = rhs.abs().max(1.0);
        prop_assert!((lhs - rhs).abs() / scale < 1e-9);
    }

    #[test]
    fn quantile_is_monotone(d in arb_distribution(), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(d.quantile(lo) <= d.quantile(hi));
    }
}

/// Strategy producing a valid Markov chain over 2..=6 states.
fn arb_chain() -> impl Strategy<Value = MarkovChain> {
    (2usize..6)
        .prop_flat_map(|n| {
            let states = prop::collection::vec(1.0f64..1e5, n..=n).prop_map(|mut v| {
                v.sort_by(f64::total_cmp);
                v.dedup_by(|a, b| (*a - *b).abs() < 1e-6);
                // ensure strict increase by nudging duplicates
                for i in 1..v.len() {
                    if v[i] <= v[i - 1] {
                        v[i] = v[i - 1] + 1.0;
                    }
                }
                v
            });
            let rows = prop::collection::vec(prop::collection::vec(0.01f64..1.0, n..=n), n..=n);
            (states, rows)
        })
        .prop_map(|(states, raw_rows)| {
            let rows: Vec<Vec<f64>> = raw_rows
                .into_iter()
                .map(|row| {
                    let s: f64 = row.iter().sum();
                    row.into_iter().map(|p| p / s).collect()
                })
                .collect();
            MarkovChain::new(states, rows).expect("normalized rows are stochastic")
        })
}

proptest! {
    #[test]
    fn evolution_preserves_simplex(c in arb_chain(), seed in 0u64..1000) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = c.n_states();
        let mut probs: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() + 0.01).collect();
        let total: f64 = probs.iter().sum();
        for p in &mut probs {
            *p /= total;
        }
        for _ in 0..5 {
            probs = c.evolve(&probs).unwrap();
            let s: f64 = probs.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-9);
            prop_assert!(probs.iter().all(|&p| p >= -1e-12));
        }
    }

    #[test]
    fn stationary_is_a_fixed_point(c in arb_chain()) {
        let pi = c.stationary(1e-13, 20_000).unwrap();
        let evolved = c.evolve_dist(&pi).unwrap();
        // Compare pointwise over the states (supports may drop zero entries).
        for (v, p) in pi.iter() {
            let q = evolved
                .iter()
                .find(|(w, _)| (w - v).abs() < 1e-9)
                .map(|(_, q)| q)
                .unwrap_or(0.0);
            prop_assert!((p - q).abs() < 1e-6, "state {v}: {p} vs {q}");
        }
    }
}
