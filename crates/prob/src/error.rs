//! Error type for distribution and Markov-chain construction.

use std::fmt;

/// Errors raised while validating probability objects.
///
/// All constructors in this crate validate their inputs eagerly so that the
/// optimizer and cost code can assume every [`crate::Distribution`] they see
/// is well formed (finite support, strictly positive mass, total mass one).
#[derive(Debug, Clone, PartialEq)]
pub enum ProbError {
    /// A distribution was built from an empty support.
    EmptySupport,
    /// A support value or probability was NaN or infinite.
    NonFinite { what: &'static str, value: f64 },
    /// A probability was negative.
    NegativeProbability(f64),
    /// All probabilities were zero, so the distribution cannot be normalized.
    ZeroTotalMass,
    /// A distribution's support did not line up with a Markov chain's states.
    SupportMismatch { expected: usize, got: usize },
    /// A transition matrix failed validation (wrong shape or non-stochastic row).
    BadTransitionMatrix(String),
    /// A rebucketing request asked for zero buckets.
    ZeroBuckets,
    /// [`crate::Distribution::from_parts_exact`] received parts violating a
    /// structural invariant (unsorted support, non-positive mass, sum far
    /// from one).  Carries a description of the violated invariant.
    InvalidParts(&'static str),
}

impl fmt::Display for ProbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProbError::EmptySupport => write!(f, "distribution support is empty"),
            ProbError::NonFinite { what, value } => {
                write!(f, "non-finite {what}: {value}")
            }
            ProbError::NegativeProbability(p) => {
                write!(f, "negative probability: {p}")
            }
            ProbError::ZeroTotalMass => {
                write!(f, "total probability mass is zero; cannot normalize")
            }
            ProbError::SupportMismatch { expected, got } => {
                write!(
                    f,
                    "support does not match chain states (expected {expected} entries, got {got})"
                )
            }
            ProbError::BadTransitionMatrix(msg) => {
                write!(f, "bad transition matrix: {msg}")
            }
            ProbError::ZeroBuckets => write!(f, "cannot rebucket into zero buckets"),
            ProbError::InvalidParts(what) => {
                write!(f, "invalid distribution parts: {what}")
            }
        }
    }
}

impl std::error::Error for ProbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(ProbError, &str)> = vec![
            (ProbError::EmptySupport, "empty"),
            (
                ProbError::NonFinite {
                    what: "probability",
                    value: f64::NAN,
                },
                "non-finite",
            ),
            (ProbError::NegativeProbability(-0.25), "-0.25"),
            (ProbError::ZeroTotalMass, "zero"),
            (
                ProbError::SupportMismatch {
                    expected: 3,
                    got: 2,
                },
                "expected 3",
            ),
            (
                ProbError::BadTransitionMatrix("row 1 sums to 0.9".into()),
                "row 1",
            ),
            (ProbError::ZeroBuckets, "zero buckets"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }
}
