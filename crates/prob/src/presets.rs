//! Ready-made parameter distributions used throughout the experiments.
//!
//! The paper obtains its memory distribution "by observing the actual query
//! execution environment" (\[Loh98\] personal communication).  We have no such
//! observations, so — per the reproduction's substitution rule — we provide
//! parametric families that exercise the same code paths: a point mass (the
//! classical optimizer's assumption), the paper's bimodal example, uniform
//! grids, and a *spread family* whose single knob controls run-time
//! variability (the quantity the paper predicts governs the LEC advantage).

use crate::dist::Distribution;
use crate::error::ProbError;

/// The exact memory distribution of Example 1.1:
/// 2000 pages with probability 0.8, 700 pages with probability 0.2.
pub fn example_1_1_memory() -> Distribution {
    Distribution::bimodal(700.0, 2000.0, 0.8).expect("static example distribution")
}

/// Uniform distribution over an inclusive arithmetic grid of `n >= 1` points.
pub fn uniform_grid(lo: f64, hi: f64, n: usize) -> Result<Distribution, ProbError> {
    if n == 0 {
        return Err(ProbError::EmptySupport);
    }
    if n == 1 {
        return Ok(Distribution::point((lo + hi) / 2.0));
    }
    let step = (hi - lo) / (n - 1) as f64;
    Distribution::uniform(&(0..n).map(|i| lo + step * i as f64).collect::<Vec<_>>())
}

/// A family of distributions centered (in mean) at `center` whose relative
/// spread is controlled by `spread` in `[0, 1)`.
///
/// `spread = 0` yields the point mass `center` (the classical optimizer's
/// world); larger values spread `n` equally likely representatives over
/// `[center·(1-spread), center·(1+spread)]`.  Means are equal across the
/// family, so an LSC optimizer using the mean sees *identical* inputs while
/// the true environment varies — precisely the failure mode of §1.1.
pub fn spread_family(center: f64, spread: f64, n: usize) -> Result<Distribution, ProbError> {
    assert!(center > 0.0, "center must be positive");
    assert!((0.0..1.0).contains(&spread), "spread must be in [0,1)");
    if spread == 0.0 || n <= 1 {
        return Ok(Distribution::point(center));
    }
    uniform_grid(center * (1.0 - spread), center * (1.0 + spread), n)
}

/// A skewed ("Zipf-like") distribution over the given values: probability of
/// the `k`-th *largest* value proportional to `1/(k+1)^s`.
///
/// Models environments that usually have plenty of memory but occasionally
/// very little — the regime where the LEC/LSC gap is largest.
pub fn zipf_over(values: &[f64], s: f64) -> Result<Distribution, ProbError> {
    if values.is_empty() {
        return Err(ProbError::EmptySupport);
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| b.total_cmp(a)); // descending: rank 0 = largest
    Distribution::from_pairs(
        sorted
            .iter()
            .enumerate()
            .map(|(k, &v)| (v, 1.0 / ((k + 1) as f64).powf(s))),
    )
}

/// Selectivity distribution: `n` representatives log-uniformly spread over
/// `[lo, hi] ⊆ (0, 1]`, uniformly likely.
///
/// Selectivities are "notoriously uncertain" (§3.6); a log-uniform support
/// reflects that they are uncertain in *order of magnitude*.
pub fn selectivity_band(lo: f64, hi: f64, n: usize) -> Result<Distribution, ProbError> {
    assert!(0.0 < lo && lo <= hi && hi <= 1.0, "need 0 < lo <= hi <= 1");
    if n <= 1 || lo == hi {
        return Ok(Distribution::point((lo * hi).sqrt()));
    }
    let (llo, lhi) = (lo.ln(), hi.ln());
    let step = (lhi - llo) / (n - 1) as f64;
    Distribution::uniform(
        &(0..n)
            .map(|i| (llo + step * i as f64).exp())
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_memory_matches_paper() {
        let d = example_1_1_memory();
        assert_eq!(d.support(), &[700.0, 2000.0]);
        assert!((d.mean() - 1740.0).abs() < 1e-9);
        assert_eq!(d.mode(), 2000.0);
    }

    #[test]
    fn uniform_grid_shape() {
        let d = uniform_grid(100.0, 200.0, 5).unwrap();
        assert_eq!(d.support(), &[100.0, 125.0, 150.0, 175.0, 200.0]);
        assert!((d.mean() - 150.0).abs() < 1e-9);
        assert!(uniform_grid(1.0, 2.0, 0).is_err());
        assert!(uniform_grid(100.0, 200.0, 1).unwrap().is_point());
    }

    #[test]
    fn spread_family_keeps_the_mean_fixed() {
        for spread in [0.0, 0.1, 0.5, 0.9] {
            let d = spread_family(1000.0, spread, 7).unwrap();
            assert!(
                (d.mean() - 1000.0).abs() < 1e-6,
                "spread {spread}: mean {}",
                d.mean()
            );
        }
        assert!(spread_family(1000.0, 0.0, 7).unwrap().is_point());
    }

    #[test]
    fn spread_family_variance_increases_with_spread() {
        let mut last = -1.0;
        for spread in [0.0, 0.2, 0.4, 0.6, 0.8] {
            let v = spread_family(1000.0, spread, 9).unwrap().variance();
            assert!(v >= last, "variance must be monotone in spread");
            last = v;
        }
    }

    #[test]
    fn zipf_puts_most_mass_on_large_values() {
        let d = zipf_over(&[100.0, 400.0, 1600.0], 1.0).unwrap();
        // Largest value gets rank-0 weight 1, next 1/2, next 1/3.
        assert!(d.probs().last().unwrap() > &0.5);
        assert!((d.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn selectivity_band_is_log_spaced_and_valid() {
        let d = selectivity_band(1e-4, 1e-1, 4).unwrap();
        assert_eq!(d.len(), 4);
        for (v, _) in d.iter() {
            assert!(v > 0.0 && v <= 1.0);
        }
        // Log-uniform: successive ratios equal.
        let s = d.support();
        let r1 = s[1] / s[0];
        let r2 = s[2] / s[1];
        assert!((r1 - r2).abs() < 1e-9);
        assert!(selectivity_band(0.5, 0.5, 10).unwrap().is_point());
    }
}
