//! Markov models of dynamically changing memory (§3.5).
//!
//! For long-running queries the paper drops the "memory is constant"
//! assumption: execution proceeds in *phases* (one per join), memory is
//! constant within a phase but moves between phases according to a
//! transition probability that "depends only on the current memory usage,
//! not on the time" — i.e. a time-homogeneous Markov chain.  Algorithm C
//! then simply associates the initial distribution with the root of the DP
//! dag and pushes it through the transition matrix once per depth
//! (Theorem 3.4).

use crate::dist::Distribution;
use crate::error::ProbError;
use rand::Rng;

/// Row-stochasticity tolerance for transition-matrix validation.
const ROW_SUM_TOL: f64 = 1e-9;

/// A finite, time-homogeneous Markov chain over memory sizes.
///
/// `states` are the memory bucket representatives (strictly increasing);
/// `rows[i][j]` is the probability of moving from state `i` to state `j`
/// between two execution phases.
#[derive(Debug, Clone, PartialEq)]
pub struct MarkovChain {
    states: Vec<f64>,
    rows: Vec<Vec<f64>>,
}

impl MarkovChain {
    /// Validate and build a chain.
    pub fn new(states: Vec<f64>, rows: Vec<Vec<f64>>) -> Result<Self, ProbError> {
        if states.is_empty() {
            return Err(ProbError::EmptySupport);
        }
        for w in states.windows(2) {
            if w[0] >= w[1] {
                return Err(ProbError::BadTransitionMatrix(
                    "states must be strictly increasing".into(),
                ));
            }
        }
        if rows.len() != states.len() {
            return Err(ProbError::BadTransitionMatrix(format!(
                "expected {} rows, got {}",
                states.len(),
                rows.len()
            )));
        }
        for (i, row) in rows.iter().enumerate() {
            if row.len() != states.len() {
                return Err(ProbError::BadTransitionMatrix(format!(
                    "row {i} has {} entries, expected {}",
                    row.len(),
                    states.len()
                )));
            }
            let mut sum = 0.0;
            for &p in row {
                if !p.is_finite() {
                    return Err(ProbError::NonFinite {
                        what: "transition probability",
                        value: p,
                    });
                }
                if p < 0.0 {
                    return Err(ProbError::NegativeProbability(p));
                }
                sum += p;
            }
            if (sum - 1.0).abs() > ROW_SUM_TOL {
                return Err(ProbError::BadTransitionMatrix(format!(
                    "row {i} sums to {sum}, expected 1"
                )));
            }
        }
        Ok(MarkovChain { states, rows })
    }

    /// The identity chain: memory never changes.  Dynamic Algorithm C under
    /// this chain must coincide with static Algorithm C (tested in lec-core).
    pub fn identity(states: Vec<f64>) -> Result<Self, ProbError> {
        let n = states.len();
        let rows = (0..n)
            .map(|i| (0..n).map(|j| if i == j { 1.0 } else { 0.0 }).collect())
            .collect();
        MarkovChain::new(states, rows)
    }

    /// A birth–death ("random walk") chain: from state `i`, move down with
    /// probability `p_down`, up with `p_up`, stay otherwise; reflecting
    /// boundaries.  This models the paper's picture of concurrent queries
    /// starting and finishing, each claiming/releasing a slice of memory.
    pub fn birth_death(states: Vec<f64>, p_down: f64, p_up: f64) -> Result<Self, ProbError> {
        if !(0.0..=1.0).contains(&p_down) || !(0.0..=1.0).contains(&p_up) || p_down + p_up > 1.0 {
            return Err(ProbError::BadTransitionMatrix(
                "p_down and p_up must be probabilities with p_down + p_up <= 1".into(),
            ));
        }
        let n = states.len();
        if n == 0 {
            return Err(ProbError::EmptySupport);
        }
        let mut rows = vec![vec![0.0; n]; n];
        for i in 0..n {
            let down = if i > 0 { p_down } else { 0.0 };
            let up = if i + 1 < n { p_up } else { 0.0 };
            if i > 0 {
                rows[i][i - 1] = down;
            }
            if i + 1 < n {
                rows[i][i + 1] = up;
            }
            rows[i][i] = 1.0 - down - up;
        }
        MarkovChain::new(states, rows)
    }

    /// A "sticky mixing" chain: stay with probability `p_stay`, otherwise
    /// jump to a uniformly random *other* state.  High churn environments.
    pub fn sticky_uniform(states: Vec<f64>, p_stay: f64) -> Result<Self, ProbError> {
        if !(0.0..=1.0).contains(&p_stay) {
            return Err(ProbError::BadTransitionMatrix(
                "p_stay must be a probability".into(),
            ));
        }
        let n = states.len();
        if n == 0 {
            return Err(ProbError::EmptySupport);
        }
        if n == 1 {
            return MarkovChain::identity(states);
        }
        let off = (1.0 - p_stay) / (n - 1) as f64;
        let rows = (0..n)
            .map(|i| (0..n).map(|j| if i == j { p_stay } else { off }).collect())
            .collect();
        MarkovChain::new(states, rows)
    }

    /// Number of states.
    pub fn n_states(&self) -> usize {
        self.states.len()
    }

    /// The memory values of the states.
    pub fn states(&self) -> &[f64] {
        &self.states
    }

    /// One transition row.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.rows[i]
    }

    /// One step of the Chapman–Kolmogorov evolution: `probs · P`.
    pub fn evolve(&self, probs: &[f64]) -> Result<Vec<f64>, ProbError> {
        if probs.len() != self.n_states() {
            return Err(ProbError::SupportMismatch {
                expected: self.n_states(),
                got: probs.len(),
            });
        }
        let n = self.n_states();
        let mut out = vec![0.0; n];
        for (i, &pi) in probs.iter().enumerate() {
            if pi == 0.0 {
                continue;
            }
            for (j, &pij) in self.rows[i].iter().enumerate() {
                out[j] += pi * pij;
            }
        }
        Ok(out)
    }

    /// `k` steps of evolution.
    pub fn evolve_n(&self, probs: &[f64], k: usize) -> Result<Vec<f64>, ProbError> {
        let mut cur = probs.to_vec();
        for _ in 0..k {
            cur = self.evolve(&cur)?;
        }
        Ok(cur)
    }

    /// Convert a distribution whose support is a subset of the chain's
    /// states into a dense probability vector aligned with the states.
    pub fn dist_to_probs(&self, dist: &Distribution) -> Result<Vec<f64>, ProbError> {
        let mut out = vec![0.0; self.n_states()];
        for (v, p) in dist.iter() {
            match self
                .states
                .iter()
                .position(|&s| (s - v).abs() <= 1e-9 * s.abs().max(1.0))
            {
                Some(idx) => out[idx] += p,
                None => {
                    return Err(ProbError::SupportMismatch {
                        expected: self.n_states(),
                        got: dist.len(),
                    })
                }
            }
        }
        Ok(out)
    }

    /// Convert a dense probability vector back into a [`Distribution`].
    pub fn probs_to_dist(&self, probs: &[f64]) -> Result<Distribution, ProbError> {
        if probs.len() != self.n_states() {
            return Err(ProbError::SupportMismatch {
                expected: self.n_states(),
                got: probs.len(),
            });
        }
        Distribution::from_pairs(self.states.iter().copied().zip(probs.iter().copied()))
    }

    /// Evolve a [`Distribution`] one phase forward.
    ///
    /// This is exactly the per-depth update Algorithm C performs in the
    /// dynamic setting: "use the transition probabilities to compute the
    /// distribution associated with each node" (§3.5).
    pub fn evolve_dist(&self, dist: &Distribution) -> Result<Distribution, ProbError> {
        let probs = self.dist_to_probs(dist)?;
        self.probs_to_dist(&self.evolve(&probs)?)
    }

    /// Stationary distribution by power iteration.
    pub fn stationary(&self, tol: f64, max_iter: usize) -> Result<Distribution, ProbError> {
        let n = self.n_states();
        let mut cur = vec![1.0 / n as f64; n];
        for _ in 0..max_iter {
            let next = self.evolve(&cur)?;
            let delta: f64 = cur.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
            cur = next;
            if delta < tol {
                break;
            }
        }
        self.probs_to_dist(&cur)
    }

    /// Sample a state index from a dense probability vector.
    pub fn sample_state<R: Rng + ?Sized>(&self, probs: &[f64], rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        for (i, &p) in probs.iter().enumerate() {
            acc += p;
            if u < acc {
                return i;
            }
        }
        probs.len() - 1
    }

    /// Sample a path of `len` memory values starting from `initial`
    /// (a dense probability vector over states).  Returned values are the
    /// per-phase memory sizes of one simulated query execution.
    pub fn sample_path<R: Rng + ?Sized>(
        &self,
        initial: &[f64],
        len: usize,
        rng: &mut R,
    ) -> Vec<f64> {
        let mut out = Vec::with_capacity(len);
        if len == 0 {
            return out;
        }
        let mut state = self.sample_state(initial, rng);
        out.push(self.states[state]);
        for _ in 1..len {
            state = self.sample_state(&self.rows[state], rng);
            out.push(self.states[state]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn chain() -> MarkovChain {
        MarkovChain::birth_death(vec![500.0, 1000.0, 2000.0], 0.3, 0.2).unwrap()
    }

    #[test]
    fn validation_rejects_bad_matrices() {
        assert!(MarkovChain::new(vec![], vec![]).is_err());
        assert!(MarkovChain::new(vec![2.0, 1.0], vec![vec![1.0, 0.0]; 2]).is_err());
        assert!(MarkovChain::new(vec![1.0, 2.0], vec![vec![0.5, 0.4]; 2]).is_err());
        assert!(MarkovChain::new(vec![1.0, 2.0], vec![vec![1.5, -0.5]; 2]).is_err());
        assert!(MarkovChain::new(vec![1.0, 2.0], vec![vec![1.0, 0.0]]).is_err());
    }

    #[test]
    fn birth_death_rows_are_stochastic_with_reflecting_bounds() {
        let c = chain();
        let expect = [
            [0.8, 0.2, 0.0], // no down-move at the bottom
            [0.3, 0.5, 0.2],
            [0.0, 0.3, 0.7], // no up-move at the top
        ];
        for (i, row) in expect.iter().enumerate() {
            for (j, &p) in row.iter().enumerate() {
                assert!(
                    (c.row(i)[j] - p).abs() < 1e-12,
                    "row {i} col {j}: {} vs {p}",
                    c.row(i)[j]
                );
            }
        }
    }

    #[test]
    fn evolution_preserves_mass() {
        let c = chain();
        let mut probs = vec![1.0, 0.0, 0.0];
        for _ in 0..10 {
            probs = c.evolve(&probs).unwrap();
            let s: f64 = probs.iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn identity_chain_is_a_fixed_point() {
        let c = MarkovChain::identity(vec![100.0, 200.0]).unwrap();
        let d = Distribution::bimodal(100.0, 200.0, 0.7).unwrap();
        let e = c.evolve_dist(&d).unwrap();
        assert!(e.approx_eq(&d, 1e-12));
    }

    #[test]
    fn dist_round_trip() {
        let c = chain();
        let d = Distribution::from_pairs([(500.0, 0.5), (2000.0, 0.5)]).unwrap();
        let probs = c.dist_to_probs(&d).unwrap();
        assert_eq!(probs, vec![0.5, 0.0, 0.5]);
        let back = c.probs_to_dist(&probs).unwrap();
        assert!(back.approx_eq(&d, 1e-12));
    }

    #[test]
    fn dist_with_foreign_support_is_rejected() {
        let c = chain();
        let d = Distribution::point(123.0);
        assert!(c.dist_to_probs(&d).is_err());
    }

    #[test]
    fn stationary_is_invariant_under_evolution() {
        let c = chain();
        let pi = c.stationary(1e-12, 10_000).unwrap();
        let evolved = c.evolve_dist(&pi).unwrap();
        assert!(evolved.approx_eq(&pi, 1e-8));
    }

    #[test]
    fn sticky_uniform_mixes_toward_uniform() {
        let c = MarkovChain::sticky_uniform(vec![1.0, 2.0, 3.0, 4.0], 0.5).unwrap();
        let start = vec![1.0, 0.0, 0.0, 0.0];
        let after = c.evolve_n(&start, 50).unwrap();
        for &p in &after {
            assert!((p - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn sample_path_has_requested_length_and_valid_states() {
        let c = chain();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let path = c.sample_path(&[0.0, 1.0, 0.0], 8, &mut rng);
        assert_eq!(path.len(), 8);
        for m in path {
            assert!(c.states().contains(&m));
        }
        assert!(c.sample_path(&[0.0, 1.0, 0.0], 0, &mut rng).is_empty());
    }

    #[test]
    fn sample_path_frequencies_match_stationary() {
        let c = chain();
        let pi = c.stationary(1e-12, 10_000).unwrap();
        let init = c.dist_to_probs(&pi).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut counts = [0usize; 3];
        let runs = 4000;
        for _ in 0..runs {
            let path = c.sample_path(&init, 5, &mut rng);
            for m in path {
                let idx = c.states().iter().position(|&s| s == m).unwrap();
                counts[idx] += 1;
            }
        }
        let total: usize = counts.iter().sum();
        for (i, &cnt) in counts.iter().enumerate() {
            let freq = cnt as f64 / total as f64;
            let expect = pi.probs()[i];
            assert!(
                (freq - expect).abs() < 0.03,
                "state {i}: freq {freq} vs stationary {expect}"
            );
        }
    }
}
