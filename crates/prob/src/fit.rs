//! Fitting distributions and Markov chains from observations.
//!
//! The paper's first open question (§3.1): *"How do we get the probability
//! distributions?  ...the DBMS in practice is constantly gathering
//! statistical information.  We believe that the statistics can be
//! enhanced to provide reasonable estimates of the relevant
//! probabilities."*  This module is that enhancement: estimators that turn
//! a log of observed memory values (or per-phase memory traces) into the
//! [`Distribution`]s and [`MarkovChain`]s the LEC algorithms consume.

use crate::dist::{Distribution, Rebucket};
use crate::error::ProbError;
use crate::markov::MarkovChain;

/// Fit a bucketed distribution from raw observations.
///
/// Observations are histogrammed into at most `buckets` cells with the
/// chosen strategy; representatives are conditional means, so the fitted
/// distribution matches the sample mean exactly.
pub fn fit_distribution(
    samples: &[f64],
    buckets: usize,
    strategy: Rebucket,
) -> Result<Distribution, ProbError> {
    if samples.is_empty() {
        return Err(ProbError::EmptySupport);
    }
    let raw = Distribution::from_pairs(samples.iter().map(|&s| (s, 1.0)))?;
    raw.rebucket(buckets, strategy)
}

/// Laplace smoothing weight for unseen transitions: keeps fitted chains
/// irreducible so stationary distributions exist.
const TRANSITION_SMOOTHING: f64 = 0.5;

/// Fit a time-homogeneous Markov chain from one or more observed
/// memory traces.
///
/// Every observed value is snapped to the nearest of `states`; transition
/// counts between consecutive trace entries are Laplace-smoothed and
/// row-normalized.  This is the §3.5 "transition probability describing
/// how likely memory is to change", estimated the way a 24×7 system in
/// stable operation would estimate it.
pub fn fit_markov(traces: &[Vec<f64>], states: Vec<f64>) -> Result<MarkovChain, ProbError> {
    if states.is_empty() {
        return Err(ProbError::EmptySupport);
    }
    for w in states.windows(2) {
        if w[0] >= w[1] {
            return Err(ProbError::BadTransitionMatrix(
                "states must be strictly increasing".into(),
            ));
        }
    }
    let n = states.len();
    let snap = |v: f64| -> usize {
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, &s) in states.iter().enumerate() {
            let d = (s - v).abs();
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    };
    let mut counts = vec![vec![TRANSITION_SMOOTHING; n]; n];
    let mut observed_any = false;
    for trace in traces {
        for w in trace.windows(2) {
            counts[snap(w[0])][snap(w[1])] += 1.0;
            observed_any = true;
        }
    }
    if !observed_any {
        return Err(ProbError::BadTransitionMatrix(
            "no transitions observed (all traces shorter than 2)".into(),
        ));
    }
    let rows = counts
        .into_iter()
        .map(|row| {
            let total: f64 = row.iter().sum();
            row.into_iter().map(|c| c / total).collect()
        })
        .collect();
    MarkovChain::new(states, rows)
}

/// Fit the initial (phase-0) distribution from the first entries of the
/// observed traces, snapped onto the chain's states.
pub fn fit_initial(traces: &[Vec<f64>], chain: &MarkovChain) -> Result<Distribution, ProbError> {
    let firsts: Vec<f64> = traces.iter().filter_map(|t| t.first().copied()).collect();
    if firsts.is_empty() {
        return Err(ProbError::EmptySupport);
    }
    let snap = |v: f64| -> f64 {
        *chain
            .states()
            .iter()
            .min_by(|a, b| (*a - v).abs().total_cmp(&(*b - v).abs()))
            .expect("non-empty states")
    };
    Distribution::from_pairs(firsts.iter().map(|&f| (snap(f), 1.0)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fit_distribution_matches_sample_moments() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let truth = Distribution::bimodal(700.0, 2000.0, 0.8).unwrap();
        let samples: Vec<f64> = (0..20_000).map(|_| truth.sample(&mut rng)).collect();
        let fitted = fit_distribution(&samples, 4, Rebucket::EqualDepth).unwrap();
        let sample_mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((fitted.mean() - sample_mean).abs() < 1e-6);
        assert!((fitted.mean() - truth.mean()).abs() / truth.mean() < 0.02);
        assert!(fitted.len() <= 4);
    }

    #[test]
    fn fit_distribution_rejects_empty() {
        assert!(fit_distribution(&[], 4, Rebucket::EqualWidth).is_err());
    }

    #[test]
    fn fit_markov_recovers_a_known_chain() {
        let states = vec![100.0, 400.0, 1600.0];
        let truth = MarkovChain::birth_death(states.clone(), 0.3, 0.2).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let init = vec![0.0, 1.0, 0.0];
        let traces: Vec<Vec<f64>> = (0..500)
            .map(|_| truth.sample_path(&init, 50, &mut rng))
            .collect();
        let fitted = fit_markov(&traces, states).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    (fitted.row(i)[j] - truth.row(i)[j]).abs() < 0.03,
                    "P[{i}][{j}]: fitted {} vs true {}",
                    fitted.row(i)[j],
                    truth.row(i)[j]
                );
            }
        }
    }

    #[test]
    fn fit_markov_smooths_unseen_transitions() {
        // One short trace: most transitions unseen; smoothing keeps every
        // row stochastic and strictly positive.
        let chain = fit_markov(&[vec![100.0, 100.0, 400.0]], vec![100.0, 400.0]).unwrap();
        for i in 0..2 {
            let s: f64 = chain.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
            assert!(chain.row(i).iter().all(|&p| p > 0.0));
        }
        // Fitted chains have stationary distributions.
        assert!(chain.stationary(1e-10, 10_000).is_ok());
    }

    #[test]
    fn fit_markov_snaps_noisy_observations() {
        // Values near a state snap onto it.
        let traces = vec![vec![110.0, 95.0, 390.0, 410.0, 100.0]];
        let chain = fit_markov(&traces, vec![100.0, 400.0]).unwrap();
        // Observed: 100→100, 100→400, 400→400, 400→100 (one each).
        assert!(chain.row(0)[1] > 0.2 && chain.row(0)[1] < 0.8);
    }

    #[test]
    fn fit_markov_rejects_degenerate_input() {
        assert!(fit_markov(&[vec![1.0, 2.0]], vec![]).is_err());
        assert!(fit_markov(&[vec![1.0]], vec![1.0, 2.0]).is_err()); // no transitions
        assert!(fit_markov(&[vec![1.0, 2.0]], vec![2.0, 1.0]).is_err()); // unsorted
    }

    #[test]
    fn fit_initial_uses_first_entries() {
        let chain = MarkovChain::identity(vec![100.0, 400.0]).unwrap();
        let traces = vec![
            vec![100.0, 400.0],
            vec![100.0, 100.0],
            vec![390.0, 100.0], // snaps to 400
            vec![105.0, 400.0], // snaps to 100
        ];
        let init = fit_initial(&traces, &chain).unwrap();
        assert!((init.prob_le(100.0) - 0.75).abs() < 1e-12);
        assert!(fit_initial(&[], &chain).is_err());
    }
}
