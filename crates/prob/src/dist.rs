//! Bucketed discrete probability distributions.
//!
//! The PODS'99 paper models every uncertain parameter (available memory,
//! relation sizes, predicate selectivities) as a distribution over a small
//! number of *buckets*, each represented by a single value (§3.2: "we pick a
//! representative from each bucket ... Pr(m_i) characterizes how likely we
//! are to run the query in the i-th bucket").  [`Distribution`] is exactly
//! that object: a finite support of strictly increasing representatives with
//! strictly positive probabilities summing to one.

use crate::error::ProbError;
use rand::Rng;

/// Relative tolerance used when merging near-identical support values that
/// arise from floating-point products (e.g. `|A|·|B|·σ` computed in two
/// different orders).
const MERGE_EPS: f64 = 1e-9;

/// A finite discrete probability distribution over `f64` values.
///
/// Invariants (enforced by every constructor):
/// * the support is non-empty, finite, and strictly increasing;
/// * every probability is finite and strictly positive;
/// * probabilities sum to 1 (inputs are normalized).
///
/// In the paper's terminology each `(value, prob)` pair is a bucket with its
/// representative; the statement `X = x` abbreviates "X falls in the bucket
/// represented by x" (footnote 3).
#[derive(Debug, Clone, PartialEq)]
pub struct Distribution {
    support: Vec<f64>,
    probs: Vec<f64>,
}

/// Strategy for reducing the number of buckets of a distribution (§3.6.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rebucket {
    /// Split `[min, max]` into equal-width intervals; each new bucket gets
    /// the contained mass and the mass-weighted mean as representative.
    EqualWidth,
    /// Equi-depth (quantile) buckets: successive buckets receive roughly
    /// `1/n` of the total mass each.
    EqualDepth,
}

impl Distribution {
    /// A degenerate (point-mass) distribution.
    ///
    /// The paper observes that with a single bucket every LEC algorithm
    /// collapses to the classical System R optimizer; point masses are how
    /// that collapse is expressed in this crate.
    pub fn point(value: f64) -> Self {
        assert!(value.is_finite(), "point mass must be finite, got {value}");
        Distribution {
            support: vec![value],
            probs: vec![1.0],
        }
    }

    /// Build a distribution from `(value, probability)` pairs.
    ///
    /// Pairs are sorted by value, near-duplicate values are merged, zero
    /// probabilities are dropped, and the result is normalized to total mass
    /// one.  Returns an error for empty/non-finite/negative input.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (f64, f64)>) -> Result<Self, ProbError> {
        let mut pairs: Vec<(f64, f64)> = pairs.into_iter().collect();
        if pairs.is_empty() {
            return Err(ProbError::EmptySupport);
        }
        for &(v, p) in &pairs {
            if !v.is_finite() {
                return Err(ProbError::NonFinite {
                    what: "support value",
                    value: v,
                });
            }
            if !p.is_finite() {
                return Err(ProbError::NonFinite {
                    what: "probability",
                    value: p,
                });
            }
            if p < 0.0 {
                return Err(ProbError::NegativeProbability(p));
            }
        }
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));

        let mut support: Vec<f64> = Vec::with_capacity(pairs.len());
        let mut probs: Vec<f64> = Vec::with_capacity(pairs.len());
        for (v, p) in pairs {
            if p == 0.0 {
                continue;
            }
            match support.last() {
                Some(&last) if nearly_equal(last, v) => {
                    *probs.last_mut().expect("probs parallel to support") += p;
                }
                _ => {
                    support.push(v);
                    probs.push(p);
                }
            }
        }
        let total: f64 = probs.iter().sum();
        if support.is_empty() || total <= 0.0 {
            return Err(ProbError::ZeroTotalMass);
        }
        for p in &mut probs {
            *p /= total;
        }
        Ok(Distribution { support, probs })
    }

    /// Rebuild a distribution from parts previously read out of
    /// [`Self::support`] and [`Self::probs`] — *without* renormalizing.
    ///
    /// [`Self::from_pairs`] divides every probability by the total mass,
    /// and for an already-normalized input that division is not guaranteed
    /// to be the identity at the bit level (the sum may be `1.0 ± 1ulp`).
    /// Wire codecs that must round-trip a distribution bit-exactly — the
    /// serving daemon's byte-identity bar extends across the socket — use
    /// this constructor instead.  The invariants are still *checked*
    /// (parallel lengths, strictly increasing finite support, strictly
    /// positive finite probabilities, total mass within `1e-6` of one);
    /// only the normalization rewrite is skipped.
    pub fn from_parts_exact(support: Vec<f64>, probs: Vec<f64>) -> Result<Self, ProbError> {
        if support.is_empty() {
            return Err(ProbError::EmptySupport);
        }
        if support.len() != probs.len() {
            return Err(ProbError::SupportMismatch {
                expected: support.len(),
                got: probs.len(),
            });
        }
        for &v in &support {
            if !v.is_finite() {
                return Err(ProbError::NonFinite {
                    what: "support value",
                    value: v,
                });
            }
        }
        if support.windows(2).any(|w| w[0] >= w[1]) {
            return Err(ProbError::InvalidParts("support not strictly increasing"));
        }
        let mut total = 0.0;
        for &p in &probs {
            if !p.is_finite() {
                return Err(ProbError::NonFinite {
                    what: "probability",
                    value: p,
                });
            }
            if p <= 0.0 {
                return Err(ProbError::InvalidParts("probability not strictly positive"));
            }
            total += p;
        }
        if (total - 1.0).abs() > 1e-6 {
            return Err(ProbError::InvalidParts("total mass not within 1e-6 of one"));
        }
        Ok(Distribution { support, probs })
    }

    /// Uniform distribution over the given values.
    pub fn uniform(values: &[f64]) -> Result<Self, ProbError> {
        Self::from_pairs(values.iter().map(|&v| (v, 1.0)))
    }

    /// Two-point distribution: `hi` with probability `p_hi`, `lo` otherwise.
    ///
    /// This is the shape of the paper's motivating memory distribution
    /// (Example 1.1: 2000 pages 80% of the time, 700 pages 20%).
    pub fn bimodal(lo: f64, hi: f64, p_hi: f64) -> Result<Self, ProbError> {
        Self::from_pairs([(lo, 1.0 - p_hi), (hi, p_hi)])
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.support.len()
    }

    /// True when the distribution is a single point mass.
    pub fn is_point(&self) -> bool {
        self.support.len() == 1
    }

    /// Always false: constructors reject empty supports.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The strictly increasing bucket representatives (the paper's `Val(X)`).
    pub fn support(&self) -> &[f64] {
        &self.support
    }

    /// Bucket probabilities, parallel to [`Self::support`].
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Iterate over `(value, probability)` pairs in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.support.iter().copied().zip(self.probs.iter().copied())
    }

    /// Smallest support value.
    pub fn min_value(&self) -> f64 {
        self.support[0]
    }

    /// The most favourable bucket: the smallest support value together
    /// with its probability mass.  Admissible size and selectivity
    /// floors (branch-and-bound pruning, `lec-core`) are built from this
    /// bucket — no realized value under any bucket can fall below it.
    pub fn min_bucket(&self) -> (f64, f64) {
        (self.support[0], self.probs[0])
    }

    /// Largest support value.
    pub fn max_value(&self) -> f64 {
        *self.support.last().expect("non-empty support")
    }

    /// Expected value `E[X]`.
    pub fn mean(&self) -> f64 {
        self.iter().map(|(v, p)| v * p).sum()
    }

    /// Modal value: the representative with the largest probability.
    ///
    /// Ties are broken toward the larger value; the choice only matters for
    /// the LSC baseline, which the paper parameterizes by "mean or modal
    /// value" without specifying tie-breaks.
    pub fn mode(&self) -> f64 {
        let mut best = (self.support[0], self.probs[0]);
        for (v, p) in self.iter() {
            if p >= best.1 {
                best = (v, p);
            }
        }
        best.0
    }

    /// Variance `E[(X - E[X])^2]`.
    pub fn variance(&self) -> f64 {
        let m = self.mean();
        self.iter().map(|(v, p)| (v - m) * (v - m) * p).sum()
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Expectation of an arbitrary function of the value: `E[f(X)]`.
    ///
    /// This is the paper's fundamental quantity
    /// `EC(P) = Σ_v C(P, v)·Pr(v)` specialized to one parameter.
    pub fn expect(&self, mut f: impl FnMut(f64) -> f64) -> f64 {
        self.iter().map(|(v, p)| f(v) * p).sum()
    }

    /// Probability that a predicate holds: `Pr(pred(X))`.
    pub fn prob_that(&self, mut pred: impl FnMut(f64) -> bool) -> f64 {
        self.iter().filter(|&(v, _)| pred(v)).map(|(_, p)| p).sum()
    }

    /// `Pr(X <= x)`.
    pub fn prob_le(&self, x: f64) -> f64 {
        let idx = self.support.partition_point(|&v| v <= x);
        self.probs[..idx].iter().sum()
    }

    /// `Pr(X < x)`.
    pub fn prob_lt(&self, x: f64) -> f64 {
        let idx = self.support.partition_point(|&v| v < x);
        self.probs[..idx].iter().sum()
    }

    /// `Pr(X >= x)`.
    pub fn prob_ge(&self, x: f64) -> f64 {
        1.0 - self.prob_lt(x)
    }

    /// `Pr(X > x)`.
    pub fn prob_gt(&self, x: f64) -> f64 {
        1.0 - self.prob_le(x)
    }

    /// Smallest support value `v` with `Pr(X <= v) >= q` (a quantile).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile level must be in [0,1]");
        let mut acc = 0.0;
        for (v, p) in self.iter() {
            acc += p;
            if acc + 1e-12 >= q {
                return v;
            }
        }
        self.max_value()
    }

    /// Apply `f` to every support value (probabilities are carried along and
    /// coinciding images are merged).  `f` need not be monotone.
    pub fn map(&self, mut f: impl FnMut(f64) -> f64) -> Distribution {
        Distribution::from_pairs(self.iter().map(|(v, p)| (f(v), p)))
            .expect("mapping a valid distribution preserves validity")
    }

    /// Multiply every support value by a positive constant.
    pub fn scale(&self, k: f64) -> Distribution {
        assert!(k.is_finite() && k > 0.0, "scale factor must be positive");
        // Monotone map: no re-sort or merge needed.
        Distribution {
            support: self.support.iter().map(|v| v * k).collect(),
            probs: self.probs.clone(),
        }
    }

    /// Distribution of `X · Y` for independent `X` (self) and `Y` (other).
    ///
    /// This is the §3.6.3 product used for result sizes `|A|·|B|·σ`; the
    /// support may grow to `|X|·|Y|` buckets, which callers keep in check
    /// with [`Self::rebucket`].
    pub fn product(&self, other: &Distribution) -> Distribution {
        let mut pairs = Vec::with_capacity(self.len() * other.len());
        for (a, pa) in self.iter() {
            for (b, pb) in other.iter() {
                pairs.push((a * b, pa * pb));
            }
        }
        Distribution::from_pairs(pairs).expect("product of valid distributions is valid")
    }

    /// Distribution of `X + Y` for independent `X` and `Y` (convolution).
    pub fn convolve(&self, other: &Distribution) -> Distribution {
        let mut pairs = Vec::with_capacity(self.len() * other.len());
        for (a, pa) in self.iter() {
            for (b, pb) in other.iter() {
                pairs.push((a + b, pa * pb));
            }
        }
        Distribution::from_pairs(pairs).expect("convolution of valid distributions is valid")
    }

    /// Reduce to at most `n` buckets (§3.6.3).
    ///
    /// Both strategies preserve total mass exactly and the mean exactly
    /// (each coarse bucket's representative is the conditional mean of the
    /// mass it absorbs).  What is lost is resolution: `Pr(X <= t)` may move
    /// by up to the mass of the bucket straddling `t`.
    pub fn rebucket(&self, n: usize, strategy: Rebucket) -> Result<Distribution, ProbError> {
        if n == 0 {
            return Err(ProbError::ZeroBuckets);
        }
        if self.len() <= n {
            return Ok(self.clone());
        }
        match strategy {
            Rebucket::EqualWidth => self.rebucket_equal_width(n),
            Rebucket::EqualDepth => self.rebucket_equal_depth(n),
        }
    }

    fn rebucket_equal_width(&self, n: usize) -> Result<Distribution, ProbError> {
        let lo = self.min_value();
        let hi = self.max_value();
        let width = (hi - lo) / n as f64;
        let mut mass = vec![0.0; n];
        let mut weighted = vec![0.0; n];
        for (v, p) in self.iter() {
            let mut idx = if width > 0.0 {
                ((v - lo) / width) as usize
            } else {
                0
            };
            if idx >= n {
                idx = n - 1; // v == hi lands in the last bucket
            }
            mass[idx] += p;
            weighted[idx] += v * p;
        }
        Distribution::from_pairs(
            mass.iter()
                .zip(&weighted)
                .filter(|(m, _)| **m > 0.0)
                .map(|(&m, &w)| (w / m, m)),
        )
    }

    fn rebucket_equal_depth(&self, n: usize) -> Result<Distribution, ProbError> {
        let target = 1.0 / n as f64;
        let mut out: Vec<(f64, f64)> = Vec::with_capacity(n);
        let mut mass = 0.0;
        let mut weighted = 0.0;
        let mut filled = 0usize;
        for (i, (v, p)) in self.iter().enumerate() {
            mass += p;
            weighted += v * p;
            let remaining_buckets = n - filled;
            let last_value = i + 1 == self.len();
            // Close the bucket once it holds its share, but never leave more
            // values than buckets remaining.
            let values_left = self.len() - (i + 1);
            if last_value
                || (mass + 1e-12 >= target && values_left >= remaining_buckets - 1)
                || values_left < remaining_buckets
            {
                out.push((weighted / mass, mass));
                filled += 1;
                mass = 0.0;
                weighted = 0.0;
                if filled == n {
                    break;
                }
            }
        }
        if mass > 0.0 {
            // Fold any residue into the last bucket, preserving the mean.
            let (lv, lp) = out.pop().expect("at least one bucket emitted");
            out.push(((lv * lp + weighted) / (lp + mass), lp + mass));
        }
        Distribution::from_pairs(out)
    }

    /// Draw a sample using inverse-CDF sampling.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.support[self.sample_index(rng)]
    }

    /// Draw the *index* of a sampled bucket.
    pub fn sample_index<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        for (i, &p) in self.probs.iter().enumerate() {
            acc += p;
            if u < acc {
                return i;
            }
        }
        self.len() - 1 // guard against accumulated rounding
    }

    /// Structural comparison with tolerance, for tests.
    pub fn approx_eq(&self, other: &Distribution, tol: f64) -> bool {
        self.len() == other.len()
            && self
                .iter()
                .zip(other.iter())
                .all(|((v1, p1), (v2, p2))| (v1 - v2).abs() <= tol && (p1 - p2).abs() <= tol)
    }
}

fn nearly_equal(a: f64, b: f64) -> bool {
    (a - b).abs() <= MERGE_EPS * a.abs().max(b.abs()).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_memory() -> Distribution {
        Distribution::bimodal(700.0, 2000.0, 0.8).unwrap()
    }

    #[test]
    fn min_bucket_is_smallest_support_with_its_mass() {
        let d = example_memory();
        let (v, p) = d.min_bucket();
        assert_eq!(v, d.min_value());
        assert_eq!(v, 700.0);
        // `bimodal(lo, hi, p_hi)` puts mass `1 - p_hi` on the low mode.
        assert!(nearly_equal(p, 0.2));
        let point = Distribution::point(42.0);
        assert_eq!(point.min_bucket(), (42.0, 1.0));
    }

    #[test]
    fn point_mass_basics() {
        let d = Distribution::point(42.0);
        assert!(d.is_point());
        assert_eq!(d.mean(), 42.0);
        assert_eq!(d.mode(), 42.0);
        assert_eq!(d.variance(), 0.0);
        assert_eq!(d.prob_le(42.0), 1.0);
        assert_eq!(d.prob_lt(42.0), 0.0);
    }

    #[test]
    fn example_1_1_memory_distribution() {
        // The paper's motivating distribution: mean 1740, mode 2000.
        let d = example_memory();
        assert!((d.mean() - 1740.0).abs() < 1e-9);
        assert_eq!(d.mode(), 2000.0);
        assert!((d.prob_gt(1000.0) - 0.8).abs() < 1e-12);
        assert!((d.prob_le(700.0) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn from_pairs_sorts_merges_normalizes() {
        let d = Distribution::from_pairs([(5.0, 2.0), (1.0, 1.0), (5.0, 1.0)]).unwrap();
        assert_eq!(d.support(), &[1.0, 5.0]);
        assert!((d.probs()[0] - 0.25).abs() < 1e-12);
        assert!((d.probs()[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn from_pairs_drops_zero_mass() {
        let d = Distribution::from_pairs([(1.0, 0.0), (2.0, 1.0)]).unwrap();
        assert_eq!(d.support(), &[2.0]);
    }

    #[test]
    fn from_pairs_rejects_bad_input() {
        assert_eq!(
            Distribution::from_pairs(std::iter::empty()),
            Err(ProbError::EmptySupport)
        );
        assert!(matches!(
            Distribution::from_pairs([(f64::NAN, 1.0)]),
            Err(ProbError::NonFinite { .. })
        ));
        assert!(matches!(
            Distribution::from_pairs([(1.0, -0.5)]),
            Err(ProbError::NegativeProbability(_))
        ));
        assert_eq!(
            Distribution::from_pairs([(1.0, 0.0)]),
            Err(ProbError::ZeroTotalMass)
        );
    }

    #[test]
    fn from_parts_exact_roundtrips_bit_exactly() {
        // A distribution whose probabilities don't sum to exactly 1.0 in
        // floating point: from_pairs would renormalize (and perturb bits),
        // from_parts_exact must not.
        let d = Distribution::from_pairs([(1.0, 1.0), (2.0, 1.0), (3.0, 1.0)]).unwrap();
        let rt = Distribution::from_parts_exact(d.support().to_vec(), d.probs().to_vec()).unwrap();
        for (a, b) in d.probs().iter().zip(rt.probs()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in d.support().iter().zip(rt.support()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn from_parts_exact_rejects_bad_parts() {
        assert_eq!(
            Distribution::from_parts_exact(vec![], vec![]),
            Err(ProbError::EmptySupport)
        );
        assert_eq!(
            Distribution::from_parts_exact(vec![1.0, 2.0], vec![1.0]),
            Err(ProbError::SupportMismatch {
                expected: 2,
                got: 1
            })
        );
        assert!(matches!(
            Distribution::from_parts_exact(vec![2.0, 1.0], vec![0.5, 0.5]),
            Err(ProbError::InvalidParts(_))
        ));
        assert!(matches!(
            Distribution::from_parts_exact(vec![1.0, 2.0], vec![1.0, 0.0]),
            Err(ProbError::InvalidParts(_))
        ));
        assert!(matches!(
            Distribution::from_parts_exact(vec![1.0, 2.0], vec![0.5, 0.4]),
            Err(ProbError::InvalidParts(_))
        ));
        assert!(matches!(
            Distribution::from_parts_exact(vec![1.0, f64::NAN], vec![0.5, 0.5]),
            Err(ProbError::NonFinite { .. })
        ));
    }

    #[test]
    fn tail_probabilities_are_consistent() {
        let d = Distribution::uniform(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        for x in [0.5, 1.0, 2.5, 4.0, 9.0] {
            assert!((d.prob_le(x) + d.prob_gt(x) - 1.0).abs() < 1e-12);
            assert!((d.prob_lt(x) + d.prob_ge(x) - 1.0).abs() < 1e-12);
        }
        assert_eq!(d.prob_le(2.0), 0.5);
        assert_eq!(d.prob_lt(2.0), 0.25);
        assert_eq!(d.prob_ge(2.0), 0.75);
    }

    #[test]
    fn quantiles() {
        let d = Distribution::uniform(&[10.0, 20.0, 30.0, 40.0]).unwrap();
        assert_eq!(d.quantile(0.0), 10.0);
        assert_eq!(d.quantile(0.25), 10.0);
        assert_eq!(d.quantile(0.5), 20.0);
        assert_eq!(d.quantile(1.0), 40.0);
    }

    #[test]
    fn expectation_of_step_function_sees_the_cliff() {
        // The essence of the paper: E[f(X)] != f(E[X]) for discontinuous f.
        let d = example_memory();
        let cost = |m: f64| if m > 1000.0 { 2.0 } else { 4.0 };
        assert_eq!(cost(d.mean()), 2.0); // LSC at the mean sees the cheap side
        let ec = d.expect(cost);
        assert!((ec - (0.8 * 2.0 + 0.2 * 4.0)).abs() < 1e-12);
        assert!(ec > cost(d.mean()));
    }

    #[test]
    fn map_handles_non_monotone_functions() {
        let d = Distribution::uniform(&[-2.0, -1.0, 1.0, 2.0]).unwrap();
        let sq = d.map(|v| v * v);
        assert_eq!(sq.support(), &[1.0, 4.0]);
        assert!((sq.probs()[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn scale_preserves_shape() {
        let d = example_memory();
        let s = d.scale(2.0);
        assert_eq!(s.support(), &[1400.0, 4000.0]);
        assert_eq!(s.probs(), d.probs());
    }

    #[test]
    fn product_of_independents() {
        let a = Distribution::uniform(&[2.0, 3.0]).unwrap();
        let b = Distribution::uniform(&[5.0, 7.0]).unwrap();
        let p = a.product(&b);
        assert_eq!(p.support(), &[10.0, 14.0, 15.0, 21.0]);
        assert!((p.mean() - a.mean() * b.mean()).abs() < 1e-9);
    }

    #[test]
    fn convolution_mean_adds() {
        let a = Distribution::uniform(&[1.0, 2.0]).unwrap();
        let b = Distribution::uniform(&[10.0, 20.0]).unwrap();
        let s = a.convolve(&b);
        assert!((s.mean() - (a.mean() + b.mean())).abs() < 1e-9);
    }

    #[test]
    fn rebucket_preserves_mass_and_mean() {
        let d = Distribution::uniform(&(1..=100).map(|i| i as f64).collect::<Vec<_>>()).unwrap();
        for strategy in [Rebucket::EqualWidth, Rebucket::EqualDepth] {
            let r = d.rebucket(7, strategy).unwrap();
            assert!(r.len() <= 7, "{strategy:?} produced {} buckets", r.len());
            let total: f64 = r.probs().iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
            assert!(
                (r.mean() - d.mean()).abs() < 1e-6,
                "{strategy:?} mean {} vs {}",
                r.mean(),
                d.mean()
            );
        }
    }

    #[test]
    fn rebucket_noop_when_already_small() {
        let d = example_memory();
        let r = d.rebucket(10, Rebucket::EqualWidth).unwrap();
        assert_eq!(r, d);
    }

    #[test]
    fn rebucket_zero_is_an_error() {
        let d = example_memory();
        assert_eq!(
            d.rebucket(0, Rebucket::EqualWidth),
            Err(ProbError::ZeroBuckets)
        );
    }

    #[test]
    fn sampling_matches_distribution() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let d = example_memory();
        let n = 20_000;
        let hits = (0..n).filter(|_| d.sample(&mut rng) == 2000.0).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.8).abs() < 0.02, "sampled frac {frac}");
    }
}
