//! # lec-prob — probability substrate for LEC query optimization
//!
//! This crate provides the probability machinery assumed throughout
//! Chu, Halpern & Seshadri, *"Least Expected Cost Query Optimization: An
//! Exercise in Utility"* (PODS 1999):
//!
//! * [`Distribution`] — the bucketed discrete distributions over parameter
//!   values (§3.1–§3.2), with expectations, tail probabilities, independent
//!   products and the ∛-rebucketing of §3.6.3;
//! * [`PrefixTables`] — the `O(b)` cumulative tables enabling the paper's
//!   linear-time expected-cost computations (§3.6.1, §3.6.2);
//! * [`MarkovChain`] — the per-phase memory evolution model of §3.5
//!   (Theorem 3.4);
//! * [`presets`] — parametric environment families used by the experiments
//!   in place of the paper's (unavailable) production observations;
//! * [`fit`] — estimators turning observed memory samples/traces into the
//!   distributions and chains above (the paper's §3.1 "how do we get the
//!   probability distributions?" answered with DBMS-style statistics).
//!
//! Everything downstream (`lec-cost`, `lec-core`, `lec-exec`) treats these
//! types as the ground truth for "what the optimizer believes about the
//! run-time environment".

pub mod dist;
pub mod error;
pub mod fit;
pub mod markov;
pub mod prefix;
pub mod presets;

pub use dist::{Distribution, Rebucket};
pub use error::ProbError;
pub use markov::MarkovChain;
pub use prefix::PrefixTables;
