//! Prefix tables: the O(b) preprocessing behind the paper's linear-time
//! expected-cost algorithms (§3.6.1, §3.6.2).
//!
//! The paper's trick is to precompute, in one pass over a distribution's
//! buckets, running tables of `Pr(X <= x)` and the *partial* expectation
//! `E[X · 1{X <= x}]` so that every later query — `Pr(M > √b)`,
//! `E(|A| : |A| <= b)`, `E(|B| : a <= |B|)`, … — costs `O(log b)` (or `O(1)`
//! when walked in order).  [`PrefixTables`] is that one-pass preprocessing.

use crate::dist::Distribution;

/// Cumulative tables over a [`Distribution`], built in `O(b)`.
///
/// `cum_prob[i]` is `Pr(X <= support[i])` and `cum_vp[i]` is
/// `Σ_{j<=i} v_j·p_j` (the truncated first moment).  All query methods are
/// binary searches over these arrays.
#[derive(Debug, Clone)]
pub struct PrefixTables {
    support: Vec<f64>,
    cum_prob: Vec<f64>,
    cum_vp: Vec<f64>,
}

impl PrefixTables {
    /// Build the tables in a single pass over the distribution.
    pub fn new(dist: &Distribution) -> Self {
        let n = dist.len();
        let mut cum_prob = Vec::with_capacity(n);
        let mut cum_vp = Vec::with_capacity(n);
        let mut acc_p = 0.0;
        let mut acc_vp = 0.0;
        for (v, p) in dist.iter() {
            acc_p += p;
            acc_vp += v * p;
            cum_prob.push(acc_p);
            cum_vp.push(acc_vp);
        }
        PrefixTables {
            support: dist.support().to_vec(),
            cum_prob,
            cum_vp,
        }
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.support.len()
    }

    /// Always false (distributions are non-empty).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total mean `E[X]` (last entry of the truncated-moment table).
    pub fn mean(&self) -> f64 {
        *self.cum_vp.last().expect("non-empty tables")
    }

    /// `Pr(X <= x)`.
    pub fn prob_le(&self, x: f64) -> f64 {
        match self.support.partition_point(|&v| v <= x) {
            0 => 0.0,
            i => self.cum_prob[i - 1],
        }
    }

    /// `Pr(X < x)`.
    pub fn prob_lt(&self, x: f64) -> f64 {
        match self.support.partition_point(|&v| v < x) {
            0 => 0.0,
            i => self.cum_prob[i - 1],
        }
    }

    /// `Pr(X >= x)`.
    pub fn prob_ge(&self, x: f64) -> f64 {
        1.0 - self.prob_lt(x)
    }

    /// `Pr(X > x)`.
    pub fn prob_gt(&self, x: f64) -> f64 {
        1.0 - self.prob_le(x)
    }

    /// `Pr(lo < X <= hi)` — the probability of a half-open band, e.g. the
    /// paper's `Pr(∛b < M <= √b)` middle case of the sort-merge formula.
    pub fn prob_in_lohi(&self, lo: f64, hi: f64) -> f64 {
        (self.prob_le(hi) - self.prob_le(lo)).max(0.0)
    }

    /// Partial (truncated) expectation `E[X · 1{X <= x}]`.
    ///
    /// This is the quantity the paper manipulates as
    /// `E(|A| : |A| <= b)·Pr(|A| <= b)`; keeping it un-normalized is what
    /// makes the running update `E(≤b') = E(≤b) + E(b<·≤b')` a plain sum.
    pub fn partial_expect_le(&self, x: f64) -> f64 {
        match self.support.partition_point(|&v| v <= x) {
            0 => 0.0,
            i => self.cum_vp[i - 1],
        }
    }

    /// Partial expectation `E[X · 1{X >= x}]`.
    pub fn partial_expect_ge(&self, x: f64) -> f64 {
        self.mean() - self.partial_expect_lt(x)
    }

    /// Partial expectation `E[X · 1{X < x}]`.
    pub fn partial_expect_lt(&self, x: f64) -> f64 {
        match self.support.partition_point(|&v| v < x) {
            0 => 0.0,
            i => self.cum_vp[i - 1],
        }
    }

    /// Partial expectation `E[X · 1{X > x}]`.
    pub fn partial_expect_gt(&self, x: f64) -> f64 {
        self.mean() - self.partial_expect_le(x)
    }

    /// Conditional expectation `E[X | X <= x]`, or `None` if `Pr(X<=x)=0`.
    pub fn cond_expect_le(&self, x: f64) -> Option<f64> {
        let p = self.prob_le(x);
        (p > 0.0).then(|| self.partial_expect_le(x) / p)
    }

    /// Conditional expectation `E[X | X >= x]`, or `None` if `Pr(X>=x)=0`.
    pub fn cond_expect_ge(&self, x: f64) -> Option<f64> {
        let p = self.prob_ge(x);
        (p > 0.0).then(|| self.partial_expect_ge(x) / p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist() -> Distribution {
        Distribution::from_pairs([(1.0, 0.1), (2.0, 0.2), (5.0, 0.3), (9.0, 0.4)]).unwrap()
    }

    #[test]
    fn tables_match_direct_computation() {
        let d = dist();
        let t = PrefixTables::new(&d);
        for x in [0.0, 1.0, 1.5, 2.0, 4.9, 5.0, 8.0, 9.0, 100.0] {
            assert!((t.prob_le(x) - d.prob_le(x)).abs() < 1e-12, "prob_le({x})");
            assert!((t.prob_lt(x) - d.prob_lt(x)).abs() < 1e-12, "prob_lt({x})");
            assert!((t.prob_ge(x) - d.prob_ge(x)).abs() < 1e-12, "prob_ge({x})");
            assert!((t.prob_gt(x) - d.prob_gt(x)).abs() < 1e-12, "prob_gt({x})");
            let direct: f64 = d.iter().filter(|&(v, _)| v <= x).map(|(v, p)| v * p).sum();
            assert!(
                (t.partial_expect_le(x) - direct).abs() < 1e-12,
                "partial_expect_le({x})"
            );
        }
    }

    #[test]
    fn mean_agrees() {
        let d = dist();
        let t = PrefixTables::new(&d);
        assert!((t.mean() - d.mean()).abs() < 1e-12);
    }

    #[test]
    fn partial_expectations_partition_the_mean() {
        let t = PrefixTables::new(&dist());
        for x in [0.5, 2.0, 5.0, 9.0, 10.0] {
            let le = t.partial_expect_le(x);
            let gt = t.partial_expect_gt(x);
            assert!((le + gt - t.mean()).abs() < 1e-12);
            let lt = t.partial_expect_lt(x);
            let ge = t.partial_expect_ge(x);
            assert!((lt + ge - t.mean()).abs() < 1e-12);
        }
    }

    #[test]
    fn band_probability() {
        let t = PrefixTables::new(&dist());
        // Pr(1 < X <= 5) = 0.2 + 0.3
        assert!((t.prob_in_lohi(1.0, 5.0) - 0.5).abs() < 1e-12);
        // Degenerate band
        assert_eq!(t.prob_in_lohi(5.0, 5.0), 0.0);
        // Inverted band clamps to zero
        assert_eq!(t.prob_in_lohi(9.0, 1.0), 0.0);
    }

    #[test]
    fn conditional_expectations() {
        let t = PrefixTables::new(&dist());
        // E[X | X <= 2] = (1*0.1 + 2*0.2) / 0.3
        let e = t.cond_expect_le(2.0).unwrap();
        assert!((e - 0.5 / 0.3).abs() < 1e-12);
        assert_eq!(t.cond_expect_le(0.5), None);
        // E[X | X >= 5] = (5*0.3 + 9*0.4) / 0.7
        let e = t.cond_expect_ge(5.0).unwrap();
        assert!((e - 5.1 / 0.7).abs() < 1e-12);
        assert_eq!(t.cond_expect_ge(9.5), None);
    }
}
