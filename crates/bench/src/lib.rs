//! # lec-bench — experiment harness for the LEC reproduction
//!
//! One function per experiment in DESIGN.md §5 (E1–E11, F1), each printing
//! the table it regenerates and returning a JSON summary that the
//! `experiments` binary can persist under `results/`.  Criterion
//! micro-benchmarks live in `benches/`.

pub mod exp_ext;
pub mod exp_model;
pub mod exp_plans;
pub mod table;
pub mod workloads;

use serde_json::Value;

/// Schema version stamped into every `BENCH_*.json` record.  Bump when
/// any bench record's shape changes incompatibly, so downstream tooling
/// (CI artifact diffing, dashboards) can reject mixed-schema comparisons.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// Core count of the host a bench ran on, recorded alongside results so
/// cross-host comparisons stay interpretable (parallel speedups and
/// contention numbers are meaningless without it).
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// One experiment: `(id, description, runner)`.
pub type Experiment = (&'static str, &'static str, fn() -> Value);

/// Experiment registry.
pub fn registry() -> Vec<Experiment> {
    vec![
        (
            "e1",
            "Example 1.1 cost table and plan choices",
            exp_plans::e1 as fn() -> Value,
        ),
        ("e2", "LEC advantage vs run-time variability", exp_plans::e2),
        ("e3", "Algorithm A/B/C plan quality ladder", exp_plans::e3),
        ("e4", "optimization overhead vs bucket count", exp_plans::e4),
        ("e5", "Prop 3.1 top-c combination frontier", exp_plans::e5),
        ("e6", "naive vs streaming expected cost", exp_model::e6),
        ("e7", "dynamic memory (Markov drift)", exp_model::e7),
        ("e8", "uncertain selectivities (Algorithm D)", exp_model::e8),
        ("e9", "bucket granularity and placement", exp_model::e9),
        ("e10", "result-size rebucketing accuracy", exp_model::e10),
        (
            "e11",
            "measured operator I/O vs the formulas",
            exp_model::e11,
        ),
        (
            "e12",
            "randomized LEC search (II/SA) vs Algorithm C",
            exp_ext::e12,
        ),
        (
            "e13",
            "parametric plan caches and start-up regret",
            exp_ext::e13,
        ),
        ("e14", "left-deep vs bushy LEC plans", exp_ext::e14),
        ("e15", "closed-loop statistics fitting", exp_ext::e15),
        ("e16", "LEC vs reactive re-optimization", exp_ext::e16),
        (
            "f1",
            "Figure 1 per-node distribution bookkeeping",
            exp_model::f1,
        ),
    ]
}

/// Run one experiment by id.
pub fn run(id: &str) -> Option<Value> {
    registry()
        .into_iter()
        .find(|(name, _, _)| *name == id)
        .map(|(_, _, f)| f())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_runnable() {
        let reg = registry();
        assert_eq!(reg.len(), 17);
        let mut ids: Vec<_> = reg.iter().map(|(id, _, _)| *id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 17);
    }

    #[test]
    fn unknown_experiment_is_none() {
        assert!(run("e99").is_none());
    }

    /// Smoke-run the cheapest experiments end to end (the heavyweight ones
    /// are exercised by the binary / CI run).
    #[test]
    fn smoke_e1_e5_f1() {
        for id in ["e1", "e5", "f1"] {
            let v = run(id).unwrap();
            assert_eq!(v["experiment"], id);
        }
    }
}
