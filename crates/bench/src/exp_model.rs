//! Experiments E6–E11 and F1: expected-cost machinery, dynamic memory,
//! selectivity uncertainty, bucketing, rebucketing, and the measured I/O
//! cliffs.

use crate::table::{num, pct, Table};
use crate::workloads::batch;
use lec_core::{
    bucketize, fixtures, optimize_alg_d, optimize_lec_dynamic, optimize_lec_static, optimize_lsc,
    query_memory_breakpoints, AlgDConfig, BucketStrategy,
};
use lec_cost::expected::{
    naive_eval_count, naive_expected_join_cost, streaming_expected_join_cost,
};
use lec_cost::{expected_plan_cost_dynamic, CostModel};
use lec_exec::{monte_carlo, Environment};
use lec_plan::{JoinMethod, TableSet};
use lec_prob::{presets, Distribution, MarkovChain, PrefixTables, Rebucket};
use rand::{Rng, SeedableRng};
use serde_json::{json, Value};
use std::time::Instant;

fn rand_dist(rng: &mut impl Rng, b: usize, lo: f64, hi: f64) -> Distribution {
    Distribution::from_pairs((0..b).map(|_| (rng.gen_range(lo..hi), rng.gen_range(0.05..1.0))))
        .unwrap()
}

/// E6 — §3.6.1/§3.6.2: the streaming expected-cost algorithms agree with
/// the defining triple sum and scale linearly rather than cubically.
pub fn e6() -> Value {
    println!("E6: expected join cost — naive O(b^3) vs streaming O(b)\n");
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xE6);
    let mut t = Table::new(&[
        "b (each)",
        "naive evals",
        "naive time",
        "streaming time",
        "speedup",
        "max rel err",
    ]);
    let mut rows_json = Vec::new();
    for b in [4usize, 8, 16, 32, 64, 128] {
        let reps = 20usize;
        let dists: Vec<_> = (0..reps)
            .map(|_| {
                (
                    rand_dist(&mut rng, b, 1.0, 1e6),
                    rand_dist(&mut rng, b, 1.0, 1e6),
                    rand_dist(&mut rng, b, 2.0, 5e3),
                )
            })
            .collect();
        let start = Instant::now();
        let mut naive_vals = Vec::new();
        for (a, bd, m) in &dists {
            for method in [JoinMethod::SortMerge, JoinMethod::PageNestedLoop] {
                naive_vals.push(naive_expected_join_cost(method, a, bd, m));
            }
        }
        let t_naive = start.elapsed().as_secs_f64() * 1e6 / reps as f64;
        let start = Instant::now();
        let mut fast_vals = Vec::new();
        for (a, bd, m) in &dists {
            let mt = PrefixTables::new(m);
            for method in [JoinMethod::SortMerge, JoinMethod::PageNestedLoop] {
                fast_vals.push(streaming_expected_join_cost(method, a, bd, &mt).unwrap());
            }
        }
        let t_fast = start.elapsed().as_secs_f64() * 1e6 / reps as f64;
        let max_err = naive_vals
            .iter()
            .zip(&fast_vals)
            .map(|(n, f)| ((n - f) / n.max(1.0)).abs())
            .fold(0.0f64, f64::max);
        let evals = naive_eval_count(&dists[0].0, &dists[0].1, &dists[0].2);
        t.row(vec![
            b.to_string(),
            evals.to_string(),
            format!("{t_naive:.1}us"),
            format!("{t_fast:.1}us"),
            format!("{:.1}x", t_naive / t_fast),
            format!("{max_err:.2e}"),
        ]);
        rows_json.push(json!({
            "b": b, "naive_evals": evals, "naive_us": t_naive,
            "streaming_us": t_fast, "speedup": t_naive / t_fast, "max_rel_err": max_err,
        }));
    }
    println!("{}", t.render());
    println!("(times averaged over 20 random (|A|,|B|,M) triples, 2 methods each)\n");
    json!({
        "experiment": "e6", "rows": rows_json,
        "paper_claim": "EC(SM)/EC(NL) computable in time linear in total bucket count",
    })
}

/// E7 — §3.5 / Theorem 3.4: dynamic memory.  LSC vs static-LEC vs
/// dynamic-LEC, judged in the true drifting environment.
pub fn e7() -> Value {
    println!("E7: dynamic memory — Markov drift between execution phases\n");
    let states = vec![50.0, 150.0, 450.0, 1350.0];
    let chain = MarkovChain::birth_death(states.clone(), 0.45, 0.10).unwrap();
    let initial = Distribution::point(1350.0);
    let workloads = batch(7000, 25, 5, 1);
    let mut rows = Vec::new();
    let mut wins_dyn = 0usize;
    for (i, w) in workloads.iter().enumerate() {
        let model = CostModel::new(&w.catalog, &w.query);
        let lsc = optimize_lsc(&model, initial.mean()).unwrap();
        let stat = optimize_lec_static(&model, &initial).unwrap();
        let dynm = optimize_lec_dynamic(&model, &initial, &chain).unwrap();
        let dyn_ec = |p: &lec_plan::PlanNode| {
            expected_plan_cost_dynamic(&model, p, &initial, &chain).unwrap()
        };
        let (c_lsc, c_stat, c_dyn) = (dyn_ec(&lsc.plan), dyn_ec(&stat.plan), dyn_ec(&dynm.plan));
        if c_dyn < c_stat - 1e-9 || c_dyn < c_lsc - 1e-9 {
            wins_dyn += 1;
        }
        // Simulated check on a few queries.
        if i < 5 {
            let env = Environment::Dynamic {
                initial: initial.clone(),
                chain: chain.clone(),
            };
            let s = monte_carlo(&model, &dynm.plan, &env, 20_000, i as u64).unwrap();
            let rel = (s.mean - c_dyn).abs() / c_dyn;
            assert!(rel < 0.03, "simulation should confirm dynamic EC ({rel})");
        }
        rows.push((c_lsc, c_stat, c_dyn));
    }
    let mean =
        |f: &dyn Fn(&(f64, f64, f64)) -> f64| rows.iter().map(f).sum::<f64>() / rows.len() as f64;
    let m_lsc = mean(&|r| r.0);
    let m_stat = mean(&|r| r.1);
    let m_dyn = mean(&|r| r.2);
    let mut t = Table::new(&["optimizer", "mean dynamic EC", "vs LSC"]);
    t.row(vec!["LSC @ start value".into(), num(m_lsc), "-".into()]);
    t.row(vec![
        "static Alg C".into(),
        num(m_stat),
        pct(1.0 - m_stat / m_lsc),
    ]);
    t.row(vec![
        "dynamic Alg C".into(),
        num(m_dyn),
        pct(1.0 - m_dyn / m_lsc),
    ]);
    println!("{}", t.render());
    println!(
        "dynamic Alg C strictly improved on static/LSC in {wins_dyn}/{} queries\n",
        rows.len()
    );
    json!({
        "experiment": "e7",
        "mean_dynamic_ec": {"lsc": m_lsc, "static_c": m_stat, "dynamic_c": m_dyn},
        "dyn_strict_wins": wins_dyn, "n_queries": rows.len(),
        "paper_claim": "Algorithm C with evolved per-phase distributions is optimal under drift",
    })
}

/// E8 — §3.6: selectivity uncertainty.  Judge the three optimizers under
/// the *joint* (memory × selectivity) uncertainty by Monte-Carlo sampling
/// selectivity draws.
pub fn e8() -> Value {
    println!("E8: uncertain selectivities — LSC vs Alg C (mean sel) vs Alg D\n");
    let workloads = batch(8000, 20, 4, 5); // 5 selectivity buckets per predicate
    let memory = presets::spread_family(400.0, 0.7, 5).unwrap();
    let mut sums = (0.0f64, 0.0f64, 0.0f64);
    let mut d_wins = 0usize;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xE8);
    for w in &workloads {
        let model = CostModel::new(&w.catalog, &w.query);
        let lsc = optimize_lsc(&model, memory.mean()).unwrap();
        let alg_c = optimize_lec_static(&model, &memory).unwrap();
        let alg_d = optimize_alg_d(&model, &memory, &AlgDConfig::default()).unwrap();
        // Joint evaluation: draw concrete selectivities, re-cost each plan.
        let mut costs = (0.0f64, 0.0f64, 0.0f64);
        let draws = 300;
        for _ in 0..draws {
            let mut q2 = w.query.clone();
            for p in &mut q2.joins {
                p.selectivity = Distribution::point(p.selectivity.sample(&mut rng));
            }
            let m2 = CostModel::new(&w.catalog, &q2);
            costs.0 += lec_cost::expected_plan_cost_static(&m2, &lsc.plan, &memory);
            costs.1 += lec_cost::expected_plan_cost_static(&m2, &alg_c.plan, &memory);
            costs.2 += lec_cost::expected_plan_cost_static(&m2, &alg_d.plan, &memory);
        }
        let d = draws as f64;
        let (c_lsc, c_c, c_d) = (costs.0 / d, costs.1 / d, costs.2 / d);
        if c_d <= c_c + 1e-9 && c_d <= c_lsc + 1e-9 {
            d_wins += 1;
        }
        sums.0 += c_lsc;
        sums.1 += c_c;
        sums.2 += c_d;
    }
    let n = workloads.len() as f64;
    let mut t = Table::new(&["optimizer", "mean joint cost", "vs LSC"]);
    t.row(vec![
        "LSC (mean M, mean sel)".into(),
        num(sums.0 / n),
        "-".into(),
    ]);
    t.row(vec![
        "Alg C (dist M, mean sel)".into(),
        num(sums.1 / n),
        pct(1.0 - sums.1 / sums.0),
    ]);
    t.row(vec![
        "Alg D (dist M, dist sel)".into(),
        num(sums.2 / n),
        pct(1.0 - sums.2 / sums.0),
    ]);
    println!("{}", t.render());
    println!(
        "Alg D was best-or-tied on {d_wins}/{} workloads under joint sampling\n",
        workloads.len()
    );
    json!({
        "experiment": "e8",
        "mean_joint_cost": {"lsc": sums.0 / n, "alg_c": sums.1 / n, "alg_d": sums.2 / n},
        "d_best_or_tied": d_wins, "n_queries": workloads.len(),
        "paper_claim": "modeling selectivity uncertainty ameliorates its difficulty",
    })
}

/// E9 — §3.7 / §4: the impact of bucket choice on LEC plan quality and
/// optimization effort.
pub fn e9() -> Value {
    println!("E9: bucket granularity and placement vs plan quality (Example 1.1)\n");
    let (catalog, query) = fixtures::example_1_1();
    let model = CostModel::new(&catalog, &query);
    let truth = presets::uniform_grid(100.0, 2600.0, 126).unwrap();
    let breakpoints = query_memory_breakpoints(&model);
    let full = optimize_lec_static(&model, &truth).unwrap();
    let mut t = Table::new(&["strategy", "b", "plan", "true EC", "regret", "evals"]);
    let mut rows_json = Vec::new();
    for strategy in [
        BucketStrategy::EqualWidth,
        BucketStrategy::EqualDepth,
        BucketStrategy::LevelSet,
    ] {
        for b in [1usize, 2, 3, 5, 10, 20, 50] {
            let belief = bucketize(&truth, b, strategy, &breakpoints);
            let r = optimize_lec_static(&model, &belief).unwrap();
            let true_ec = lec_cost::expected_plan_cost_static(&model, &r.plan, &truth);
            let regret = true_ec / full.cost - 1.0;
            t.row(vec![
                format!("{strategy:?}"),
                b.to_string(),
                r.plan.compact(),
                num(true_ec),
                pct(regret),
                r.stats.evals.to_string(),
            ]);
            rows_json.push(json!({
                "strategy": format!("{strategy:?}"), "b": b,
                "plan": r.plan.compact(), "true_ec": true_ec, "regret": regret,
                "evals": r.stats.evals,
            }));
        }
    }
    println!("{}", t.render());
    println!(
        "full-resolution (b=126) LEC plan: {} EC {}\n",
        full.plan.compact(),
        num(full.cost)
    );
    json!({
        "experiment": "e9", "rows": rows_json, "full_ec": full.cost,
        "paper_claim": "coarse buckets trade plan quality for optimization effort; level-set buckets are efficient",
    })
}

/// E10 — §3.6.3: result-size distributions — exact product vs ∛b
/// rebucketing, accuracy and support size.
pub fn e10() -> Value {
    println!("E10: result-size distribution — exact product vs cube-root rebucketing\n");
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xE10);
    let mut t = Table::new(&[
        "b per input",
        "exact support",
        "rebucketed",
        "mean err",
        "P(X>t) err",
        "sort EC err",
    ]);
    let mut rows_json = Vec::new();
    let m = presets::spread_family(500.0, 0.6, 6).unwrap();
    let mt = PrefixTables::new(&m);
    for b in [2usize, 4, 8, 16, 32] {
        let mut worst = (0.0f64, 0.0f64, 0.0f64);
        let mut exact_support = 0usize;
        let mut reb_support = 0usize;
        for _ in 0..30 {
            let a = rand_dist(&mut rng, b, 100.0, 1e5);
            let bd = rand_dist(&mut rng, b, 100.0, 1e5);
            let sel = rand_dist(&mut rng, b, 1e-8, 1e-5);
            let exact = a.product(&bd).product(&sel).map(|v| v.max(1.0));
            let cube = ((b as f64).cbrt().ceil() as usize).max(1);
            let approx = a
                .rebucket(cube, Rebucket::EqualDepth)
                .unwrap()
                .product(&bd.rebucket(cube, Rebucket::EqualDepth).unwrap())
                .product(&sel.rebucket(cube, Rebucket::EqualDepth).unwrap())
                .map(|v| v.max(1.0));
            exact_support = exact_support.max(exact.len());
            reb_support = reb_support.max(approx.len());
            let mean_err = ((approx.mean() - exact.mean()) / exact.mean()).abs();
            let thresh = exact.quantile(0.8);
            let tail_err = (approx.prob_gt(thresh) - exact.prob_gt(thresh)).abs();
            let ec_exact = lec_cost::expected_sort_cost(&exact, &mt);
            let ec_approx = lec_cost::expected_sort_cost(&approx, &mt);
            let ec_err = ((ec_approx - ec_exact) / ec_exact.max(1.0)).abs();
            worst.0 = worst.0.max(mean_err);
            worst.1 = worst.1.max(tail_err);
            worst.2 = worst.2.max(ec_err);
        }
        t.row(vec![
            b.to_string(),
            exact_support.to_string(),
            reb_support.to_string(),
            format!("{:.2e}", worst.0),
            format!("{:.3}", worst.1),
            pct(worst.2),
        ]);
        rows_json.push(json!({
            "b": b, "exact_support": exact_support, "rebucketed_support": reb_support,
            "worst_mean_err": worst.0, "worst_tail_err": worst.1, "worst_sort_ec_err": worst.2,
        }));
    }
    println!("{}", t.render());
    println!("(worst case over 30 random (|A|,|B|,sigma) triples per row; mean is");
    println!(" preserved exactly up to float error — conditional-mean representatives)\n");
    json!({
        "experiment": "e10", "rows": rows_json,
        "paper_claim": "cube-root input rebucketing keeps the product near b buckets at bounded accuracy loss",
    })
}

/// E11 — footnote 2 / Example 1.1 premise: the cost cliffs are real.
/// Measured I/O of actual external-memory operators vs the model, across a
/// memory sweep.
pub fn e11() -> Value {
    println!("E11: measured I/O of real operators vs the paper's formulas\n");
    use lec_exec::{block_nl_join, external_sort, grace_hash_join, sort_merge_join, DiskTable};
    let page_cap = 4usize;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xE11);
    let mk = |rows: usize, rng: &mut rand::rngs::StdRng| {
        DiskTable::from_rows(
            (0..rows).map(|i| vec![rng.gen_range(0..256i64), i as i64]),
            page_cap,
        )
    };
    let a = mk(512, &mut rng); // 128 pages
    let b = mk(128, &mut rng); // 32 pages
    let (ap, bp) = (a.n_pages() as f64, b.n_pages() as f64);
    println!("inputs: |A| = {ap} pages, |B| = {bp} pages\n");
    let mut t = Table::new(&[
        "m",
        "sort(A) io",
        "model",
        "SM io",
        "model",
        "GH io",
        "model",
        "BNL io",
        "model",
    ]);
    let mut rows_json = Vec::new();
    for m in [4usize, 6, 8, 12, 24, 48, 96, 140] {
        let mf = m as f64;
        let sort = external_sort(&a, 0, m, page_cap);
        let sm = sort_merge_join(&a, &b, 0, 0, m, page_cap);
        let gh = grace_hash_join(&a, &b, 0, 0, m, page_cap);
        let bnl = block_nl_join(&a, &b, 0, 0, m, page_cap);
        let model_sort = lec_cost::formulas::sort_cost(ap, mf);
        let model_sm = lec_cost::formulas::sm_join_cost(ap, bp, mf);
        let model_gh = lec_cost::formulas::grace_join_cost(ap, bp, mf);
        let model_bnl = lec_cost::formulas::bnl_join_cost(ap, bp, mf);
        t.row(vec![
            m.to_string(),
            sort.io.to_string(),
            num(model_sort),
            sm.io.to_string(),
            num(model_sm),
            gh.io.to_string(),
            num(model_gh),
            bnl.io.to_string(),
            num(model_bnl),
        ]);
        rows_json.push(json!({
            "m": m,
            "sort": {"measured": sort.io, "model": model_sort},
            "sm": {"measured": sm.io, "model": model_sm},
            "gh": {"measured": gh.io, "model": model_gh},
            "bnl": {"measured": bnl.io, "model": model_bnl},
        }));
    }
    println!("{}", t.render());
    println!("cliff positions agree (sqrt/cbrt of input sizes; S+2 for NL); the");
    println!("join constants differ by one 'pass' because the paper counts a");
    println!("read+write sweep as one unit — see EXPERIMENTS.md.\n");
    json!({
        "experiment": "e11", "a_pages": ap, "b_pages": bp, "rows": rows_json,
        "paper_claim": "join cost formulas are discontinuous in memory; cliffs at sqrt/cbrt thresholds",
    })
}

/// F1 — Figure 1: the four distributions carried per DP node and what
/// depends on them, shown live for one node of a 3-way join.
pub fn f1() -> Value {
    println!("F1: Figure 1 — per-node distributions of Algorithm D\n");
    let mut ws = batch(9000, 1, 3, 4);
    let w = ws.pop().unwrap();
    let model = CostModel::new(&w.catalog, &w.query);
    let memory = presets::spread_family(400.0, 0.6, 4).unwrap();
    let mt = PrefixTables::new(&memory);

    // The node S = {0,1} joined with A_j = table 2 (if connected; else 1).
    let sj = TableSet::from_indices([0, 1]);
    let j = if w.query.is_connected_to(sj, 2) { 2 } else { 1 };
    let sj = w.query.all_tables().without(j);
    let b_outer = model
        .base_pages_dist(sj.iter().next().unwrap())
        .product(&model.base_pages_dist(sj.iter().nth(1).unwrap()))
        .product(&model.join_selectivity_dist(
            TableSet::singleton(sj.iter().next().unwrap()),
            sj.iter().nth(1).unwrap(),
        ))
        .map(|v| v.max(1.0));
    let a_j = model.base_pages_dist(j);
    let sigma = model.join_selectivity_dist(sj, j);

    println!("node S_j = {sj}, joining A_j = table {j}\n");
    let mut t = Table::new(&["distribution", "buckets", "mean", "min", "max"]);
    for (name, d) in [
        ("Pr(M)       memory", &memory),
        ("Pr(|B_j|)   composite size", &b_outer),
        ("Pr(|A_j|)   joined table size", &a_j),
        ("Pr(sigma)   predicate selectivity", &sigma),
    ] {
        t.row(vec![
            name.into(),
            d.len().to_string(),
            num(d.mean()),
            num(d.min_value()),
            num(d.max_value()),
        ]);
    }
    println!("{}", t.render());

    // The two arrows of Figure 1: EC(P_S) from (M, |B_j|, |A_j|), and
    // Pr(|B_j ⋈ A_j|) from (|B_j|, |A_j|, σ).
    let mut ec_table = Table::new(&["join method", "EC from (M,|B_j|,|A_j|)"]);
    for method in JoinMethod::ALL {
        let ec = lec_cost::expected::expected_join_cost(method, &b_outer, &a_j, &memory, &mt);
        ec_table.row(vec![method.name().into(), num(ec)]);
    }
    println!("{}", ec_table.render());
    let result = b_outer.product(&a_j).product(&sigma).map(|v| v.max(1.0));
    println!(
        "Pr(|B_j join A_j|) from (|B_j|,|A_j|,sigma): {} buckets, mean {} pages\n",
        result.len(),
        num(result.mean())
    );
    json!({
        "experiment": "f1",
        "node": format!("{sj}"), "joined_table": j,
        "distributions": {
            "memory_buckets": memory.len(),
            "composite_buckets": b_outer.len(),
            "table_buckets": a_j.len(),
            "selectivity_buckets": sigma.len(),
        },
        "result_size_buckets": result.len(),
        "paper_claim": "exactly four distributions are needed per node regardless of parameter count",
    })
}
