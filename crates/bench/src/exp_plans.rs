//! Experiments E1–E5: plan quality and optimizer overhead.
//!
//! See DESIGN.md §5 for the experiment index; each function regenerates
//! one quantitative claim of the paper and returns a JSON summary.

use crate::table::{num, pct, Table};
use crate::workloads::{batch, scaling_chain};
use lec_core::{
    exhaustive_best, fixtures, optimize_alg_a, optimize_alg_b, optimize_lec_static, optimize_lsc,
    Mode, Objective, Optimizer, PointEstimate,
};
use lec_cost::{expected_plan_cost_static, plan_cost_at, CostModel};
use lec_exec::{monte_carlo, Environment};
use lec_prob::presets;
use serde_json::{json, Value};
use std::time::Instant;

/// E1 — Example 1.1 (§1.1): the full cost table, the LSC choice at the
/// mean and mode, the LEC choice, and the measured average costs.
pub fn e1() -> Value {
    println!("E1: Example 1.1 — Plan 1 (sort-merge) vs Plan 2 (Grace hash + sort)\n");
    let (catalog, query) = fixtures::example_1_1();
    let memory = fixtures::example_1_1_memory();
    let model = CostModel::new(&catalog, &query);
    let opt = Optimizer::new(&catalog, memory.clone());

    let lsc_mode = opt
        .optimize(&query, &Mode::Lsc(PointEstimate::Mode))
        .unwrap();
    let lsc_mean = opt
        .optimize(&query, &Mode::Lsc(PointEstimate::Mean))
        .unwrap();
    let lec = opt.optimize(&query, &Mode::AlgorithmC).unwrap();

    let mut t = Table::new(&["plan", "C(P,2000)", "C(P,700)", "EC(P)", "sim mean (50k)"]);
    let env = Environment::Static(memory.clone());
    let mut rows_json = Vec::new();
    for (name, plan) in [
        ("Plan1=SM(A,B)", &lsc_mode.plan),
        ("Plan2=Sort(GH(A,B))", &lec.plan),
    ] {
        let hi = plan_cost_at(&model, plan, 2000.0);
        let lo = plan_cost_at(&model, plan, 700.0);
        let ec = expected_plan_cost_static(&model, plan, &memory);
        let sim = monte_carlo(&model, plan, &env, 50_000, 1).unwrap();
        t.row(vec![name.into(), num(hi), num(lo), num(ec), num(sim.mean)]);
        rows_json.push(json!({
            "plan": name, "cost_at_2000": hi, "cost_at_700": lo,
            "expected_cost": ec, "simulated_mean": sim.mean,
        }));
    }
    println!("{}", t.render());
    println!("LSC @ mode(2000): {}", lsc_mode.plan.compact());
    println!("LSC @ mean(1740): {}", lsc_mean.plan.compact());
    println!("LEC (Alg C):      {}", lec.plan.compact());
    let ec1 = expected_plan_cost_static(&model, &lsc_mode.plan, &memory);
    let saving = 1.0 - lec.cost / ec1;
    println!(
        "\nLEC saving over the LSC plan in expectation: {}\n",
        pct(saving)
    );
    json!({
        "experiment": "e1",
        "plans": rows_json,
        "lsc_plan": lsc_mode.plan.compact(),
        "lec_plan": lec.plan.compact(),
        "lec_saving": saving,
        "paper_claim": "LSC picks Plan 1 at mean/mode; Plan 2 is cheaper on average",
        "claim_holds": lec.plan != lsc_mode.plan && saving > 0.0,
    })
}

/// E2 — §1/§1.2: "The greater the run-time variation ... the greater the
/// cost advantage of the LEC plan is likely to be."  Sweep the spread of a
/// mean-preserving memory family over random workloads.
pub fn e2() -> Value {
    println!("E2: LEC advantage vs run-time variability (mean-preserving spread)\n");
    let n_queries = 40;
    let spreads = [0.0, 0.2, 0.4, 0.6, 0.8, 0.95];
    let mut t = Table::new(&[
        "spread",
        "plans differ",
        "mean EC gain",
        "max EC gain",
        "mean sim gain",
    ]);
    let workloads = batch(1000, n_queries, 4, 1);
    let mut rows_json = Vec::new();
    for &spread in &spreads {
        let memory = presets::spread_family(400.0, spread, 7).unwrap();
        let mut differs = 0usize;
        let mut ec_gains = Vec::new();
        let mut sim_gains = Vec::new();
        for (i, w) in workloads.iter().enumerate() {
            let model = CostModel::new(&w.catalog, &w.query);
            let lsc = optimize_lsc(&model, memory.mean()).unwrap();
            let lec = optimize_lec_static(&model, &memory).unwrap();
            let lsc_ec = expected_plan_cost_static(&model, &lsc.plan, &memory);
            let gain = 1.0 - lec.cost / lsc_ec;
            ec_gains.push(gain);
            if lsc.plan != lec.plan {
                differs += 1;
                let env = Environment::Static(memory.clone());
                let s_lsc = monte_carlo(&model, &lsc.plan, &env, 3000, i as u64).unwrap();
                let s_lec = monte_carlo(&model, &lec.plan, &env, 3000, i as u64).unwrap();
                sim_gains.push(1.0 - s_lec.mean / s_lsc.mean);
            } else {
                sim_gains.push(0.0);
            }
        }
        // Clamp float dust so the spread-0 row prints exactly 0.0%.
        let mean_ec = (ec_gains.iter().sum::<f64>() / ec_gains.len() as f64).max(0.0);
        let max_ec = ec_gains.iter().cloned().fold(0.0f64, f64::max);
        let mean_sim = sim_gains.iter().sum::<f64>() / sim_gains.len() as f64;
        t.row(vec![
            format!("{spread:.2}"),
            format!("{differs}/{n_queries}"),
            pct(mean_ec),
            pct(max_ec),
            pct(mean_sim),
        ]);
        rows_json.push(json!({
            "spread": spread, "plans_differ": differs, "n_queries": n_queries,
            "mean_ec_gain": mean_ec, "max_ec_gain": max_ec, "mean_sim_gain": mean_sim,
        }));
    }
    println!("{}", t.render());
    println!("(spread 0 = the classical point world: LEC must equal LSC)\n");
    json!({
        "experiment": "e2", "rows": rows_json,
        "paper_claim": "LEC advantage grows with run-time variability; zero at spread 0",
    })
}

/// E3 — §3.2–§3.4: quality ladder of Algorithms A, B(c), C, with C checked
/// against exhaustive enumeration.
pub fn e3() -> Value {
    println!("E3: Algorithm A vs B(c) vs C plan quality (n=4, b=6, 30 queries)\n");
    let workloads = batch(2000, 30, 4, 1);
    let memory = presets::spread_family(350.0, 0.85, 6).unwrap();
    let mut sub_a = 0usize;
    let mut sub_b2 = 0usize;
    let mut sub_b4 = 0usize;
    let mut gap_a = Vec::new();
    let mut gap_b2 = Vec::new();
    let mut gap_b4 = Vec::new();
    let mut c_matches_exhaustive = 0usize;
    for w in &workloads {
        let model = CostModel::new(&w.catalog, &w.query);
        let a = optimize_alg_a(&model, &memory).unwrap();
        let b2 = optimize_alg_b(&model, &memory, 2).unwrap();
        let b4 = optimize_alg_b(&model, &memory, 4).unwrap();
        let c = optimize_lec_static(&model, &memory).unwrap();
        let ex = exhaustive_best(&model, &Objective::Expected(&memory)).unwrap();
        if (c.cost - ex.cost).abs() / ex.cost < 1e-9 {
            c_matches_exhaustive += 1;
        }
        let rel = |x: f64| (x - c.cost) / c.cost;
        if rel(a.cost) > 1e-9 {
            sub_a += 1;
        }
        if rel(b2.cost) > 1e-9 {
            sub_b2 += 1;
        }
        if rel(b4.cost) > 1e-9 {
            sub_b4 += 1;
        }
        gap_a.push(rel(a.cost));
        gap_b2.push(rel(b2.cost));
        gap_b4.push(rel(b4.cost));
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let mx = |v: &[f64]| v.iter().cloned().fold(0.0f64, f64::max);
    let mut t = Table::new(&["algorithm", "suboptimal", "avg gap vs C", "max gap vs C"]);
    t.row(vec![
        "A".into(),
        format!("{sub_a}/30"),
        pct(avg(&gap_a)),
        pct(mx(&gap_a)),
    ]);
    t.row(vec![
        "B(c=2)".into(),
        format!("{sub_b2}/30"),
        pct(avg(&gap_b2)),
        pct(mx(&gap_b2)),
    ]);
    t.row(vec![
        "B(c=4)".into(),
        format!("{sub_b4}/30"),
        pct(avg(&gap_b4)),
        pct(mx(&gap_b4)),
    ]);
    t.row(vec![
        "C".into(),
        "0/30 (by Thm 3.3)".into(),
        "0.0%".into(),
        "0.0%".into(),
    ]);
    println!("{}", t.render());
    println!("Algorithm C matched exhaustive enumeration on {c_matches_exhaustive}/30 queries.\n");
    json!({
        "experiment": "e3",
        "suboptimal": {"A": sub_a, "B2": sub_b2, "B4": sub_b4},
        "avg_gap": {"A": avg(&gap_a), "B2": avg(&gap_b2), "B4": avg(&gap_b4)},
        "c_matches_exhaustive": c_matches_exhaustive, "n_queries": 30,
        "paper_claim": "A may miss the LEC plan; B narrows the gap; C is exact",
    })
}

/// E4 — Contribution 3 / Theorem 3.2: optimization overhead is a factor of
/// the bucket count `b` (and Algorithm B costs ~αb of one invocation).
/// Reports Algorithm C's evaluation count with the memoized eval cache on
/// *and* off side by side, so the table shows both the paper's raw
/// `b`-factor (cache off) and what the engine actually pays (cache on).
pub fn e4() -> Value {
    println!("E4: optimization overhead vs bucket count b (6-table chain)\n");
    let w = scaling_chain(6);

    // Baseline: single-bucket LSC.  Each timed run gets a fresh CostModel
    // so it measures one cold optimization call — a long-lived model's
    // eval cache would otherwise make every repeat (and every higher b)
    // look nearly free.
    let time_of = |f: &dyn Fn(&CostModel<'_>) -> u64| {
        // median of 7 runs, returns (micros, evals)
        let mut times = Vec::new();
        let mut evals = 0;
        for _ in 0..7 {
            let model = CostModel::new(&w.catalog, &w.query);
            let start = Instant::now();
            evals = f(&model);
            times.push(start.elapsed().as_secs_f64() * 1e6);
        }
        times.sort_by(f64::total_cmp);
        (times[3], evals)
    };
    let (t_lsc, e_lsc) = time_of(&|model| optimize_lsc(model, 400.0).unwrap().stats.evals);

    let mut t = Table::new(&[
        "b",
        "AlgC time",
        "AlgC/LSC",
        "evals (cache on)",
        "evals (cache off)",
        "saved",
        "evals ratio",
        "AlgA/LSC",
        "AlgB(c=3)/LSC",
    ]);
    let mut rows_json = Vec::new();
    for b in [1usize, 2, 4, 8, 16, 32] {
        let memory = presets::spread_family(400.0, 0.8, b).unwrap();
        let (t_c, e_c) = time_of(&|model| optimize_lec_static(model, &memory).unwrap().stats.evals);
        let (_, e_c_off) = time_of(&|model| {
            model.set_eval_cache(false);
            optimize_lec_static(model, &memory).unwrap().stats.evals
        });
        let saved = 1.0 - e_c as f64 / e_c_off as f64;
        let (t_a, _) = time_of(&|model| optimize_alg_a(model, &memory).unwrap().stats.evals);
        let (t_b, _) = time_of(&|model| optimize_alg_b(model, &memory, 3).unwrap().stats.evals);
        t.row(vec![
            b.to_string(),
            format!("{t_c:.0}us"),
            format!("{:.1}x", t_c / t_lsc),
            e_c.to_string(),
            e_c_off.to_string(),
            pct(saved),
            format!("{:.1}x", e_c as f64 / e_lsc as f64),
            format!("{:.1}x", t_a / t_lsc),
            format!("{:.1}x", t_b / t_lsc),
        ]);
        rows_json.push(json!({
            "b": b, "alg_c_us": t_c, "alg_c_ratio": t_c / t_lsc,
            "alg_c_evals_cache_on": e_c, "alg_c_evals_cache_off": e_c_off,
            "cache_saved_fraction": saved,
            "evals_ratio": e_c as f64 / e_lsc as f64,
            "alg_a_ratio": t_a / t_lsc, "alg_b_ratio": t_b / t_lsc,
        }));
    }
    println!("{}", t.render());
    println!("LSC baseline: {t_lsc:.0}us, {e_lsc} cost-formula evaluations.");
    println!("Theory: AlgC evals = b x LSC evals per *distinct* candidate; the");
    println!("cache-off column shows that raw b-factor, the cache-on column what");
    println!("the memoized eval cache leaves of it (repeats across entry pairs");
    println!("and dag levels are answered without formula work).\n");
    json!({
        "experiment": "e4", "lsc_us": t_lsc, "lsc_evals": e_lsc, "rows": rows_json,
        "paper_claim": "LEC optimization costs ~b times one standard invocation",
    })
}

/// E5 — Proposition 3.1: combinations examined per (node, j, method) group
/// in Algorithm B stay within `c + c·log c`.
pub fn e5() -> Value {
    println!("E5: Prop 3.1 — Algorithm B combinations vs the c + c*log(c) bound\n");
    let w = scaling_chain(6);
    let model = CostModel::new(&w.catalog, &w.query);
    let memory = presets::spread_family(400.0, 0.8, 4).unwrap();
    let mut t = Table::new(&[
        "c",
        "groups",
        "examined/group",
        "bound/group",
        "within bound",
    ]);
    let mut rows_json = Vec::new();
    for c in [1usize, 2, 3, 5, 8, 13, 21] {
        let r = optimize_alg_b(&model, &memory, c).unwrap();
        let per_group = r.frontier().unwrap().combinations_examined as f64
            / r.frontier().unwrap().groups as f64;
        let bound = c as f64 + c as f64 * (c as f64).ln();
        let ok = r.frontier().unwrap().combinations_examined <= r.frontier().unwrap().bound_total;
        t.row(vec![
            c.to_string(),
            r.frontier().unwrap().groups.to_string(),
            format!("{per_group:.2}"),
            format!("{bound:.2}"),
            ok.to_string(),
        ]);
        rows_json.push(json!({
            "c": c, "groups": r.frontier().unwrap().groups,
            "examined_per_group": per_group, "bound_per_group": bound, "within": ok,
        }));
    }
    println!("{}", t.render());
    println!("(examined/group is below the bound; our inner lists are short —");
    println!(" at most seq+index per table — so the frontier is rarely saturated)\n");
    json!({
        "experiment": "e5", "rows": rows_json,
        "paper_claim": "top-c combination needs at most c + c*log(c) probes per method",
    })
}
