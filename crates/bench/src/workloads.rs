//! Shared workload builders for the experiment harness.

use lec_catalog::{Catalog, CatalogGenerator, CatalogProfile};
use lec_plan::{Query, QueryProfile, Topology, WorkloadGenerator};

/// A generated benchmark workload: one catalog, one query.
pub struct Workload {
    /// The catalog.
    pub catalog: Catalog,
    /// The query.
    pub query: Query,
}

/// Deterministic batch of workloads for experiments: `count` queries of
/// `n_tables` tables with rotating topologies.
pub fn batch(seed: u64, count: usize, n_tables: usize, sel_buckets: usize) -> Vec<Workload> {
    let topologies = [Topology::Chain, Topology::Star, Topology::Random];
    (0..count)
        .map(|i| {
            let s = seed + i as u64;
            let profile = CatalogProfile {
                min_pages: 200,
                max_pages: 1_000_000,
                ..Default::default()
            };
            let mut g = CatalogGenerator::with_profile(s, profile);
            let catalog = g.generate(n_tables + 2);
            let ids = g.pick_tables(&catalog, n_tables);
            let mut wg = WorkloadGenerator::new(s ^ 0x5EED);
            let qp = QueryProfile {
                topology: topologies[i % topologies.len()],
                sel_buckets,
                ..Default::default()
            };
            let query = wg.gen_query(&catalog, &ids, &qp);
            Workload { catalog, query }
        })
        .collect()
}

/// A fixed n-table chain over round-number table sizes: the scaling
/// fixture for optimization-time experiments (identical shape at every n).
/// Delegates to [`lec_core::fixtures::scaling_chain`] so the experiment
/// harness, the benchmarks and the core cache tests all measure the same
/// workload.
pub fn scaling_chain(n: usize) -> Workload {
    let (catalog, query) = lec_core::fixtures::scaling_chain(n);
    Workload { catalog, query }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_are_deterministic_and_valid() {
        let a = batch(5, 6, 4, 1);
        let b = batch(5, 6, 4, 1);
        assert_eq!(a.len(), 6);
        for (wa, wb) in a.iter().zip(&b) {
            assert_eq!(wa.query, wb.query);
            assert_eq!(wa.query.validate(&wa.catalog), Ok(()));
        }
    }

    #[test]
    fn scaling_chain_shapes() {
        for n in [2usize, 4, 8] {
            let w = scaling_chain(n);
            assert_eq!(w.query.n_tables(), n);
            assert_eq!(w.query.joins.len(), n - 1);
            assert_eq!(w.query.validate(&w.catalog), Ok(()));
        }
    }
}
