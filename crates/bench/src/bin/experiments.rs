//! Experiment runner: regenerates every table/figure of the reproduction.
//!
//! ```text
//! cargo run -p lec-bench --release --bin experiments -- all
//! cargo run -p lec-bench --release --bin experiments -- e1 e7
//! cargo run -p lec-bench --release --bin experiments -- list
//! ```
//!
//! JSON summaries are written to `results/<id>.json`.

use std::fs;
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "help" || args[0] == "--help" {
        usage();
        return;
    }
    if args[0] == "list" {
        for (id, desc, _) in lec_bench::registry() {
            println!("{id:<5} {desc}");
        }
        return;
    }
    let ids: Vec<String> = if args[0] == "all" {
        lec_bench::registry()
            .iter()
            .map(|(id, _, _)| id.to_string())
            .collect()
    } else {
        args
    };
    let results_dir = Path::new("results");
    fs::create_dir_all(results_dir).expect("create results dir");
    for id in ids {
        println!("{}", "=".repeat(74));
        match lec_bench::run(&id) {
            Some(summary) => {
                let path = results_dir.join(format!("{id}.json"));
                fs::write(&path, serde_json::to_string_pretty(&summary).unwrap())
                    .expect("write summary");
                println!("[saved {}]", path.display());
            }
            None => {
                eprintln!("unknown experiment {id:?}; try `list`");
                std::process::exit(1);
            }
        }
    }
}

fn usage() {
    println!("usage: experiments <all | list | ID...>");
    println!("       IDs: e1..e16, f1 (see DESIGN.md section 5)");
}
