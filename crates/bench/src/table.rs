//! Minimal aligned-table printer for experiment output.

use std::fmt::Write as _;

/// A text table with right-aligned numeric columns.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column names.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with per-column widths; first column left-aligned, the rest
    /// right-aligned.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                if i == 0 {
                    let _ = write!(out, "{c:<w$}", w = widths[i]);
                } else {
                    let _ = write!(out, "{c:>w$}", w = widths[i]);
                }
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }
}

/// Format a float with thousands-free compact notation.
pub fn num(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1e7 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else if v.fract() == 0.0 && v.abs() < 1e7 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

/// Format a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "x"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "12345".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].ends_with("12345"));
        // All rows same width.
        assert_eq!(lines[0].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        Table::new(&["a", "b"]).row(vec!["x".into()]);
    }

    #[test]
    fn num_formats() {
        assert_eq!(num(0.0), "0");
        assert_eq!(num(42.0), "42");
        assert_eq!(num(1234.5), "1234.50");
        assert_eq!(num(3.0e9), "3.000e9");
        assert_eq!(num(2.5e-9), "2.500e-9");
        assert_eq!(pct(0.125), "12.5%");
    }
}
