//! Experiments E12–E16: the paper's explicitly flagged extensions —
//! randomized search with the EC objective (§1), the \[INSS92\] parametric
//! combination (§3.2/§3.4), bushy trees (§4), closed-loop statistics
//! fitting (§3.1 question 1), and the reactive re-optimization comparison
//! (§2.3).

use crate::table::{num, pct, Table};
use crate::workloads::{batch, scaling_chain};
use lec_core::{
    coverage_family, iterative_improvement, optimize_lec_bushy, optimize_lec_dynamic,
    optimize_lec_static, optimize_lsc, simulated_annealing, PlanCache, RandomizedConfig,
};
use lec_cost::{expected_plan_cost_dynamic, CostModel};
use lec_exec::monte_carlo_reopt;
use lec_prob::{fit, presets, Distribution, MarkovChain, Rebucket};
use rand::SeedableRng;
use serde_json::{json, Value};
use std::time::Instant;

/// E12 — §1: "randomized algorithms ... apply in our approach too".
/// Iterative improvement and simulated annealing with EC as the objective,
/// against the exact Algorithm C, as query size grows.
pub fn e12() -> Value {
    println!("E12: randomized LEC optimization (II / SA) vs exact Algorithm C\n");
    let memory = presets::spread_family(400.0, 0.8, 5).unwrap();
    let mut t = Table::new(&[
        "n", "C cost", "II gap", "SA gap", "C time", "II time", "SA time", "II evals",
    ]);
    let mut rows_json = Vec::new();
    for n in [4usize, 6, 8, 10, 12] {
        let w = scaling_chain(n);
        // Fresh model per timed algorithm: a model's eval cache persists
        // for its lifetime, and sharing one would let the later runs
        // answer lookups warmed by the earlier ones.
        let model_c = CostModel::new(&w.catalog, &w.query);
        let t0 = Instant::now();
        let c = optimize_lec_static(&model_c, &memory).unwrap();
        let t_c = t0.elapsed().as_secs_f64() * 1e3;
        let cfg = RandomizedConfig::default();
        let model_ii = CostModel::new(&w.catalog, &w.query);
        let t0 = Instant::now();
        let ii = iterative_improvement(&model_ii, &memory, &cfg, 42).unwrap();
        let t_ii = t0.elapsed().as_secs_f64() * 1e3;
        let model_sa = CostModel::new(&w.catalog, &w.query);
        let t0 = Instant::now();
        let sa = simulated_annealing(&model_sa, &memory, &cfg, 42).unwrap();
        let t_sa = t0.elapsed().as_secs_f64() * 1e3;
        let gap = |x: f64| (x - c.cost) / c.cost;
        t.row(vec![
            n.to_string(),
            num(c.cost),
            pct(gap(ii.cost)),
            pct(gap(sa.cost)),
            format!("{t_c:.1}ms"),
            format!("{t_ii:.1}ms"),
            format!("{t_sa:.1}ms"),
            ii.stats.nodes.to_string(),
        ]);
        rows_json.push(json!({
            "n": n, "c_cost": c.cost,
            "ii_gap": gap(ii.cost), "sa_gap": gap(sa.cost),
            "c_ms": t_c, "ii_ms": t_ii, "sa_ms": t_sa,
            "ii_evaluations": ii.stats.nodes,
        }));
    }
    println!("{}", t.render());
    println!("(the randomized searches use the same EC objective; their gaps are");
    println!(" relative to the provably optimal Algorithm C plan)\n");
    json!({
        "experiment": "e12", "rows": rows_json,
        "paper_claim": "randomized join optimizers transfer to the LEC objective unchanged",
    })
}

/// E13 — §3.2/§3.4: parametric precomputation.  Compile-time plan caches
/// of increasing coverage, judged by start-up regret against a fresh
/// Algorithm C run.
pub fn e13() -> Value {
    println!("E13: parametric LEC — plan-cache coverage vs start-up regret\n");
    let workloads = batch(13_000, 15, 5, 1);
    let families: Vec<(&str, Vec<lec_prob::Distribution>)> = vec![
        ("1 point", coverage_family(&[400.0], &[0.0], 5)),
        (
            "3 centers",
            coverage_family(&[100.0, 400.0, 1600.0], &[0.0], 5),
        ),
        (
            "3 centers x 3 spreads",
            coverage_family(&[100.0, 400.0, 1600.0], &[0.0, 0.5, 0.9], 5),
        ),
        (
            "5 centers x 3 spreads",
            coverage_family(&[50.0, 150.0, 450.0, 1350.0, 4050.0], &[0.0, 0.5, 0.9], 5),
        ),
    ];
    // Start-up distributions the cache was NOT optimized for.
    let actuals: Vec<lec_prob::Distribution> = vec![
        presets::spread_family(250.0, 0.7, 6).unwrap(),
        presets::spread_family(900.0, 0.3, 6).unwrap(),
        presets::zipf_over(&[60.0, 240.0, 960.0, 3840.0], 1.0).unwrap(),
    ];
    let mut t = Table::new(&[
        "coverage",
        "avg cached plans",
        "mean regret",
        "max regret",
        "lookup/full-opt time",
    ]);
    let mut rows_json = Vec::new();
    for (name, family) in &families {
        let mut regrets = Vec::new();
        let mut sizes = Vec::new();
        let mut t_lookup = 0.0;
        let mut t_full = 0.0;
        for w in &workloads {
            let model = CostModel::new(&w.catalog, &w.query);
            let cache = PlanCache::precompute(&model, family).unwrap();
            sizes.push(cache.len() as f64);
            for actual in &actuals {
                let t0 = Instant::now();
                let _ = cache.choose_fast(&model, actual).unwrap();
                t_lookup += t0.elapsed().as_secs_f64();
                let t0 = Instant::now();
                let choice = cache.choose(&model, actual).unwrap();
                t_full += t0.elapsed().as_secs_f64(); // includes the full re-opt
                regrets.push(choice.regret);
            }
        }
        let mean_regret = regrets.iter().sum::<f64>() / regrets.len() as f64;
        let max_regret = regrets.iter().cloned().fold(0.0f64, f64::max);
        let avg_size = sizes.iter().sum::<f64>() / sizes.len() as f64;
        t.row(vec![
            name.to_string(),
            format!("{avg_size:.1}"),
            pct(mean_regret),
            pct(max_regret),
            format!("{:.2}", t_lookup / t_full),
        ]);
        rows_json.push(json!({
            "coverage": name, "avg_cached_plans": avg_size,
            "mean_regret": mean_regret, "max_regret": max_regret,
            "lookup_time_fraction": t_lookup / t_full,
        }));
    }
    println!("{}", t.render());
    println!("(regret = EC of the cached choice over EC of a fresh Algorithm C run,");
    println!(" under start-up distributions outside the anticipated family)\n");
    json!({
        "experiment": "e13", "rows": rows_json,
        "paper_claim": "precomputing LEC plans per anticipated distribution leaves little start-up work",
    })
}

/// E14 — §4: bushy trees.  How much does the left-deep restriction cost
/// the LEC objective, and what does lifting it cost in search effort?
pub fn e14() -> Value {
    println!("E14: left-deep vs bushy LEC plans\n");
    let memory = presets::spread_family(400.0, 0.7, 5).unwrap();
    let mut t = Table::new(&[
        "topology",
        "n",
        "bushy wins",
        "mean gain",
        "max gain",
        "candidates LD",
        "candidates bushy",
    ]);
    let mut rows_json = Vec::new();
    for (name, topo) in [
        ("chain", lec_plan::Topology::Chain),
        ("star", lec_plan::Topology::Star),
        ("random", lec_plan::Topology::Random),
    ] {
        for n in [4usize, 6] {
            let mut wins = 0usize;
            let mut gains = Vec::new();
            let mut cand_ld = 0u64;
            let mut cand_bu = 0u64;
            let workloads: Vec<_> = (0..12u64)
                .map(|i| {
                    let mut g = lec_catalog::CatalogGenerator::new(14_000 + i);
                    let cat = g.generate(n + 1);
                    let ids = g.pick_tables(&cat, n);
                    let mut wg = lec_plan::WorkloadGenerator::new(14_100 + i);
                    let q = wg.gen_query(
                        &cat,
                        &ids,
                        &lec_plan::QueryProfile {
                            topology: topo,
                            ..Default::default()
                        },
                    );
                    (cat, q)
                })
                .collect();
            for (cat, q) in &workloads {
                let model = CostModel::new(cat, q);
                let ld = optimize_lec_static(&model, &memory).unwrap();
                let bu = optimize_lec_bushy(&model, &memory).unwrap();
                cand_ld += ld.stats.candidates;
                cand_bu += bu.stats.candidates;
                let gain = 1.0 - bu.cost / ld.cost;
                if gain > 1e-9 {
                    wins += 1;
                }
                gains.push(gain.max(0.0));
            }
            let mean = gains.iter().sum::<f64>() / gains.len() as f64;
            let max = gains.iter().cloned().fold(0.0f64, f64::max);
            t.row(vec![
                name.into(),
                n.to_string(),
                format!("{wins}/12"),
                pct(mean),
                pct(max),
                (cand_ld / 12).to_string(),
                (cand_bu / 12).to_string(),
            ]);
            rows_json.push(json!({
                "topology": name, "n": n, "bushy_wins": wins,
                "mean_gain": mean, "max_gain": max,
                "candidates_left_deep": cand_ld / 12, "candidates_bushy": cand_bu / 12,
            }));
        }
    }
    // The engineered diamond: both join inputs must be composite for the
    // optimum, so the left-deep restriction genuinely costs something.
    let (cat, q) = lec_core::fixtures::diamond();
    let model = CostModel::new(&cat, &q);
    let ld = optimize_lec_static(&model, &memory).unwrap();
    let bu = optimize_lec_bushy(&model, &memory).unwrap();
    let gain = 1.0 - bu.cost / ld.cost;
    t.row(vec![
        "diamond*".into(),
        "4".into(),
        "1/1".into(),
        pct(gain),
        pct(gain),
        ld.stats.candidates.to_string(),
        bu.stats.candidates.to_string(),
    ]);
    rows_json.push(json!({
        "topology": "diamond_engineered", "n": 4, "bushy_wins": 1,
        "mean_gain": gain, "max_gain": gain,
        "candidates_left_deep": ld.stats.candidates,
        "candidates_bushy": bu.stats.candidates,
    }));
    println!("{}", t.render());
    println!("(*diamond: A-B and C-D tiny, mild middle predicate — the shape where");
    println!(" bushiness pays.  Calibrated random workloads rarely produce it;");
    println!(" chains provably cannot.)\n");
    json!({
        "experiment": "e14", "rows": rows_json,
        "paper_claim": "the left-deep heuristic is the restriction the paper flags in section 4",
    })
}

/// E15 — §3.1 question 1 ("how do we get the probability distributions?"):
/// the closed loop.  Observe memory traces from an unknown environment,
/// fit a chain + initial distribution, optimize with the *fitted* beliefs,
/// and measure regret against optimizing with the true model.
pub fn e15() -> Value {
    println!("E15: closed loop — observe, fit, optimize (regret vs sample count)\n");
    let states = vec![60.0, 180.0, 540.0, 1620.0];
    let truth_chain = MarkovChain::birth_death(states.clone(), 0.40, 0.15).unwrap();
    let truth_init = Distribution::bimodal(180.0, 1620.0, 0.7).unwrap();
    let init_probs = truth_chain.dist_to_probs(&truth_init).unwrap();
    let workloads = batch(15_000, 12, 5, 1);
    let mut t = Table::new(&[
        "observed traces",
        "mean regret",
        "max regret",
        "chain L1 err",
    ]);
    let mut rows_json = Vec::new();
    for n_traces in [1usize, 5, 25, 125, 625] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(15_000 + n_traces as u64);
        let traces: Vec<Vec<f64>> = (0..n_traces)
            .map(|_| truth_chain.sample_path(&init_probs, 8, &mut rng))
            .collect();
        // Fit states from the pooled samples, then the chain and initial.
        let pooled: Vec<f64> = traces.iter().flatten().copied().collect();
        let state_dist =
            fit::fit_distribution(&pooled, states.len(), Rebucket::EqualDepth).unwrap();
        let fitted_chain = fit::fit_markov(&traces, state_dist.support().to_vec()).unwrap();
        let fitted_init = fit::fit_initial(&traces, &fitted_chain).unwrap();
        // Transition-matrix L1 error (only meaningful when supports align;
        // report against the snapped truth).
        let l1 = chain_l1(&truth_chain, &fitted_chain);
        let mut regrets = Vec::new();
        for w in &workloads {
            let model = CostModel::new(&w.catalog, &w.query);
            let fitted_plan = optimize_lec_dynamic(&model, &fitted_init, &fitted_chain).unwrap();
            let oracle = optimize_lec_dynamic(&model, &truth_init, &truth_chain).unwrap();
            // Judge the fitted plan under the TRUE environment.
            let true_ec =
                expected_plan_cost_dynamic(&model, &fitted_plan.plan, &truth_init, &truth_chain)
                    .unwrap();
            regrets.push((true_ec - oracle.cost).max(0.0) / oracle.cost);
        }
        let mean = regrets.iter().sum::<f64>() / regrets.len() as f64;
        let max = regrets.iter().cloned().fold(0.0f64, f64::max);
        t.row(vec![
            n_traces.to_string(),
            pct(mean),
            pct(max),
            format!("{l1:.3}"),
        ]);
        rows_json.push(json!({
            "n_traces": n_traces, "mean_regret": mean, "max_regret": max,
            "chain_l1_error": l1,
        }));
    }
    println!("{}", t.render());
    println!("(regret of the plan chosen under fitted beliefs, judged in the true");
    println!(" environment, against the true-model optimum — §3.1's question 1)\n");
    json!({
        "experiment": "e15", "rows": rows_json,
        "paper_claim": "DBMS-gathered statistics can estimate the distributions the algorithms need",
    })
}

fn chain_l1(truth: &MarkovChain, fitted: &MarkovChain) -> f64 {
    // Align fitted states to the nearest truth state and compare rows.
    let n = truth.n_states().min(fitted.n_states());
    let mut err = 0.0;
    for i in 0..n {
        for j in 0..n {
            err += (truth.row(i)[j] - fitted.row(i)[j]).abs();
        }
    }
    err / n as f64
}

/// E16 — §2.3: LEC planning vs reactive mid-query re-optimization
/// (\[KD98\]-style) under Markov drift, measured by simulation.
pub fn e16() -> Value {
    println!("E16: plan-ahead (Algorithm C) vs reactive re-optimization under drift\n");
    let states = vec![50.0, 150.0, 450.0, 1350.0];
    let chain = MarkovChain::birth_death(states.clone(), 0.45, 0.10).unwrap();
    let initial = Distribution::point(1350.0);
    let init_probs = chain.dist_to_probs(&initial).unwrap();
    // Same workload batch as E7, where drift demonstrably changes plans.
    let workloads = batch(7000, 25, 5, 1);
    let runs = 2000;
    let mut sums = [0.0f64; 4];
    let mut replans_total = 0.0;
    for (i, w) in workloads.iter().enumerate() {
        let model = CostModel::new(&w.catalog, &w.query);
        let lsc = optimize_lsc(&model, initial.mean()).unwrap();
        let stat = optimize_lec_static(&model, &initial).unwrap();
        let dynm = optimize_lec_dynamic(&model, &initial, &chain).unwrap();
        let dyn_ec = |p: &lec_plan::PlanNode| {
            expected_plan_cost_dynamic(&model, p, &initial, &chain).unwrap()
        };
        sums[0] += dyn_ec(&lsc.plan);
        sums[1] += dyn_ec(&stat.plan);
        sums[2] += dyn_ec(&dynm.plan);
        let (reopt_mean, replans) =
            monte_carlo_reopt(&model, &chain, &init_probs, runs, 16_000 + i as u64);
        sums[3] += reopt_mean;
        replans_total += replans;
    }
    let n = workloads.len() as f64;
    let mut t = Table::new(&["strategy", "mean cost under drift", "vs LSC"]);
    let names = [
        "LSC @ start",
        "static Alg C",
        "dynamic Alg C",
        "reactive reopt*",
    ];
    let mut rows_json = Vec::new();
    for (k, name) in names.iter().enumerate() {
        t.row(vec![
            name.to_string(),
            num(sums[k] / n),
            pct(1.0 - sums[k] / sums[0]),
        ]);
        rows_json.push(json!({"strategy": name, "mean_cost": sums[k] / n}));
    }
    println!("{}", t.render());
    println!(
        "(*idealized: free re-planning, pipelined intermediates; avg {:.1} plan\n changes per run.  The reactive baseline exploits observations the\n planner cannot have; dynamic Algorithm C closes most of the gap with\n zero run-time machinery.)\n",
        replans_total / n
    );
    json!({
        "experiment": "e16", "rows": rows_json,
        "avg_replans_per_run": replans_total / n,
        "paper_claim": "LEC is compile-time only; reactive schemes wait for more information (2.3)",
    })
}
