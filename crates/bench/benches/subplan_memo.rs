//! The subplan-memo guard: a repeated-subshape workload — overlapping
//! windows of one long chain, randomly table-renamed, under Algorithms C
//! and D — optimized with and without the cross-search subplan memo.
//!
//! Three jobs:
//!
//! 1. **Correctness**: every memo-assisted answer must be byte-identical
//!    (plan, cost bits, `evals`, `cache_hits`, `candidates`, `nodes`) to
//!    the memo-free run of the same request — the run *fails* otherwise.
//! 2. **Regression guard**: the warm memo pass must beat the memo-free
//!    pass on wall time (a hit skips the node's whole combine/cost loop,
//!    so losing means canonicalization or replay got pathologically
//!    slow) — enforced on every host, single-core included.
//! 3. **Record**: hit rates and the speedup land in
//!    `BENCH_subplan_memo.json` at the workspace root.

use criterion::{criterion_group, criterion_main, Criterion};
use lec_core::search::SubplanMemo;
use lec_core::{AlgDConfig, Mode, Optimizer, SearchConfig};
use lec_plan::{ColumnRef, JoinPredicate, Query, QueryTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::json;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const CHAIN_LEN: usize = 9;
const WINDOW: usize = 6;
const RENAMES_PER_WINDOW: usize = 4;

fn catalog() -> lec_catalog::Catalog {
    let mut cat = lec_catalog::Catalog::new();
    for i in 0..CHAIN_LEN as u64 {
        cat.add_table(
            format!("C{i}"),
            lec_catalog::TableStats::new(
                800 * (i + 1),
                30_000 * (i + 2),
                vec![
                    lec_catalog::ColumnStats::plain("a", 40 + i),
                    lec_catalog::ColumnStats::plain("b", 70 + i),
                ],
            ),
        );
    }
    cat
}

fn window_query(cat: &lec_catalog::Catalog, lo: usize) -> Query {
    let ids: Vec<_> = cat.ids().collect();
    Query {
        tables: ids[lo..lo + WINDOW]
            .iter()
            .map(|&t| QueryTable::bare(t))
            .collect(),
        joins: (0..WINDOW - 1)
            .map(|i| {
                JoinPredicate::exact(
                    ColumnRef::new(i, 1),
                    ColumnRef::new(i + 1, 0),
                    1e-5 * (lo + i + 1) as f64,
                )
            })
            .collect(),
        required_order: None,
    }
}

fn random_perm(rng: &mut StdRng, n: usize) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

/// The repeated-subshape stream: every chain window, renamed several
/// ways, alternating Algorithm C and Algorithm D.  Adjacent windows share
/// a (WINDOW−1)-table subchain, so even distinct shapes overlap heavily
/// at the dag-node level — the case the whole-request cache cannot touch.
fn build_stream(cat: &lec_catalog::Catalog) -> Vec<(Query, Mode)> {
    let mut rng = StdRng::seed_from_u64(0xBEE5);
    let mut stream = Vec::new();
    for round in 0..RENAMES_PER_WINDOW {
        for lo in 0..=CHAIN_LEN - WINDOW {
            let base = window_query(cat, lo);
            let q = if round == 0 {
                base
            } else {
                base.relabel_tables(&random_perm(&mut rng, WINDOW))
            };
            let mode = if (round + lo) % 2 == 0 {
                Mode::AlgorithmC
            } else {
                Mode::AlgorithmD {
                    config: AlgDConfig::default(),
                }
            };
            stream.push((q, mode));
        }
    }
    stream
}

fn bench_subplan_memo(c: &mut Criterion) {
    let cat = catalog();
    let stream = build_stream(&cat);
    let memory = lec_prob::presets::spread_family(500.0, 0.6, 8).unwrap();

    // Memo-free baseline (serial so the comparison is thread-independent).
    let plain = Optimizer::new(&cat, memory.clone()).with_search_config(SearchConfig::serial());
    let t0 = Instant::now();
    let baseline: Vec<_> = stream
        .iter()
        .map(|(q, m)| plain.optimize(q, m).expect("memo-off optimize"))
        .collect();
    let memo_off_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Memo-assisted: a cold pass populates, a warm pass replays the whole
    // stream against the full memo.
    let memo = Arc::new(SubplanMemo::default());
    let assisted = Optimizer::new(&cat, memory.clone())
        .with_search_config(SearchConfig::serial())
        .with_subplan_memo(Arc::clone(&memo));
    let t0 = Instant::now();
    let cold: Vec<_> = stream
        .iter()
        .map(|(q, m)| assisted.optimize(q, m).expect("cold optimize"))
        .collect();
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    let cold_hits: u64 = cold.iter().map(|r| r.stats.memo_hits).sum();
    let cold_misses: u64 = cold.iter().map(|r| r.stats.memo_misses).sum();

    let t0 = Instant::now();
    let warm: Vec<_> = stream
        .iter()
        .map(|(q, m)| black_box(assisted.optimize(q, m).expect("warm optimize")))
        .collect();
    let warm_ms = t0.elapsed().as_secs_f64() * 1e3;
    let warm_hits: u64 = warm.iter().map(|r| r.stats.memo_hits).sum();
    let warm_misses: u64 = warm.iter().map(|r| r.stats.memo_misses).sum();

    // Correctness: both memo passes byte-identical to the memo-free run.
    for (i, (base, (c_out, w_out))) in baseline
        .iter()
        .zip(cold.iter().zip(warm.iter()))
        .enumerate()
    {
        for (pass, out) in [("cold", c_out), ("warm", w_out)] {
            assert_eq!(base.plan, out.plan, "request {i}: {pass} plan drift");
            assert_eq!(
                base.cost.to_bits(),
                out.cost.to_bits(),
                "request {i}: {pass} cost drift"
            );
            assert_eq!(
                base.stats.evals, out.stats.evals,
                "request {i}: {pass} evals"
            );
            assert_eq!(
                base.stats.cache_hits, out.stats.cache_hits,
                "request {i}: {pass} cache_hits"
            );
            assert_eq!(
                base.stats.candidates, out.stats.candidates,
                "request {i}: {pass} candidates"
            );
            assert_eq!(
                base.stats.nodes, out.stats.nodes,
                "request {i}: {pass} nodes"
            );
        }
    }
    assert_eq!(
        warm_misses, 0,
        "a warm replay of the same stream must hit every eligible node"
    );
    assert!(
        cold_hits > 0,
        "overlapping windows must already share nodes on the cold pass"
    );

    // Regression guard: hits skip entire combine loops, so the warm pass
    // must win outright — on any host, single-core included.
    assert!(
        warm_ms < memo_off_ms,
        "subplan-memo regression: warm pass {warm_ms:.1}ms not faster than \
         the memo-free pass {memo_off_ms:.1}ms"
    );

    let memo_stats = memo.stats();
    println!(
        "subplan-memo guard  memo-off {memo_off_ms:.1}ms, cold {cold_ms:.1}ms \
         ({cold_hits} hits / {cold_misses} misses), warm {warm_ms:.1}ms \
         ({:.2}x vs memo-off, {warm_hits} hits), {} records",
        memo_off_ms / warm_ms,
        memo_stats.records,
    );

    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_subplan_memo.json");
    std::fs::write(
        out,
        serde_json::to_string_pretty(&json!({
            "bench": "subplan_memo",
            "schema_version": lec_bench::BENCH_SCHEMA_VERSION,
            "host_cores": lec_bench::host_cores() as u64,
            "claim": "a warm cross-search subplan memo beats memo-free optimization on a \
                      repeated-subshape workload, with every answer byte-identical \
                      (plan, cost bits, evals, cache_hits, candidates, nodes)",
            "workload": {
                "requests": stream.len(),
                "shape": "overlapping 6-table windows of a 9-table chain, randomly renamed",
                "modes": "AlgorithmC / AlgorithmD alternating",
                "memory_buckets": 8,
            },
            "memo_off_ms": memo_off_ms,
            "cold_pass_ms": cold_ms,
            "warm_pass_ms": warm_ms,
            "speedup_warm_vs_memo_off": memo_off_ms / warm_ms,
            "cold_pass": { "memo_hits": cold_hits, "memo_misses": cold_misses },
            "warm_pass": { "memo_hits": warm_hits, "memo_misses": warm_misses },
            "memo_records": memo_stats.records,
            "byte_identical_to_memo_off": true,
        }))
        .unwrap(),
    )
    .expect("write BENCH_subplan_memo.json");

    // Criterion timing groups so `cargo bench` history tracks both paths
    // on one hot window.
    let (hot_q, hot_m) = &stream[0];
    let mut group = c.benchmark_group("subplan_memo");
    group.sample_size(20);
    group.bench_function("optimize_warm_memo", |b| {
        b.iter(|| black_box(assisted.optimize(black_box(hot_q), hot_m).unwrap().cost))
    });
    group.bench_function("optimize_memo_off", |b| {
        b.iter(|| black_box(plain.optimize(black_box(hot_q), hot_m).unwrap().cost))
    });
    group.finish();
}

criterion_group!(benches, bench_subplan_memo);
criterion_main!(benches);
