//! The large-join pruning guard: branch-and-bound keep-best on 15-table
//! chains and stars, and bit-for-bit pruned-vs-unpruned parity on every
//! size where both run.
//!
//! Three jobs:
//!
//! 1. **Correctness**: on the 6–9-table pruning fixtures every row
//!    asserts the pruned search returns the same plan and the same cost
//!    bits as the unpruned search, with `pruned_subsets > 0` wherever the
//!    fixture is built to prune — and that the pruned search's
//!    best-of-runs wall time stays within 110% of the plain search's
//!    (the tiered bound evaluation must keep the checks near-free).
//! 2. **Ceiling**: the 15-table chain and star and the 12-table clique —
//!    sizes and densities the repo's earlier benches never attempted —
//!    complete under pruned keep-best (the 15-table star under 400ms
//!    with strictly more subsets pruned than the universal-floor record
//!    of 16,475), and the 8-table chain's *streaming keep-all verifier*
//!    (refused outright by the unpruned materializing verifier) agrees
//!    with the DP to the bit.
//! 3. **Record**: wall-time medians, prune counters, tier splits and
//!    candidate savings land in `BENCH_large_joins.json` at the
//!    workspace root.

use criterion::{criterion_group, criterion_main, Criterion};
use lec_core::fixtures::{pruning_chain, pruning_clique, pruning_star};
use lec_core::{exhaustive_best_with, optimize_lec_static_with, Objective, SearchConfig};
use lec_cost::CostModel;
use serde_json::json;
use std::hint::black_box;
use std::time::Instant;

/// Minimum wall time (µs) over `runs` interleaved fresh-model searches
/// under each config.  Interleaving shares any background-load drift
/// between the two configs, and the minimum is the least
/// noise-contaminated estimate of the true cost — what the 110% guard
/// must compare, or a host hiccup during one config's turn fails the
/// build.
fn min_search_us(
    catalog: &lec_catalog::Catalog,
    query: &lec_plan::Query,
    memory: &lec_prob::Distribution,
    a: &SearchConfig,
    b: &SearchConfig,
    runs: usize,
) -> (f64, f64) {
    let one = |config: &SearchConfig| {
        let model = CostModel::new(catalog, query);
        let t0 = Instant::now();
        black_box(optimize_lec_static_with(&model, memory, config).unwrap());
        t0.elapsed().as_secs_f64() * 1e6
    };
    let mut best = (f64::INFINITY, f64::INFINITY);
    for _ in 0..runs {
        best.0 = best.0.min(one(a));
        best.1 = best.1.min(one(b));
    }
    best
}

/// One pruned-vs-unpruned parity row on a size where both searches run.
fn parity_row(
    name: &str,
    catalog: &lec_catalog::Catalog,
    query: &lec_plan::Query,
    n: usize,
    memory: &lec_prob::Distribution,
) -> serde_json::Value {
    let pruned_cfg = SearchConfig::default().with_pruning(true);
    let plain_cfg = SearchConfig::default();

    let plain_model = CostModel::new(catalog, query);
    let plain = optimize_lec_static_with(&plain_model, memory, &plain_cfg).unwrap();
    let pruned_model = CostModel::new(catalog, query);
    let pruned = optimize_lec_static_with(&pruned_model, memory, &pruned_cfg).unwrap();
    assert_eq!(plain.plan, pruned.plan, "{name} n={n}: plan drift");
    assert_eq!(
        plain.cost.to_bits(),
        pruned.cost.to_bits(),
        "{name} n={n}: cost drift"
    );

    let runs = 9;
    let (plain_us, pruned_us) =
        min_search_us(catalog, query, memory, &plain_cfg, &pruned_cfg, runs);
    println!(
        "large-joins parity  {name} n={n}: plain {plain_us:.0}us, pruned {pruned_us:.0}us, \
         {} subsets pruned ({} sharp / {} cheap), candidates {} -> {}",
        pruned.stats.pruned_subsets,
        pruned.stats.sharp_bound_evals,
        pruned.stats.cheap_bound_skips,
        plain.stats.candidates,
        pruned.stats.candidates,
    );
    assert!(
        pruned_us <= 1.10 * plain_us,
        "{name} n={n}: pruned {pruned_us:.0}us exceeds 110% of plain {plain_us:.0}us — \
         the tiered bound checks must stay near-free"
    );
    json!({
        "workload": name,
        "tables": n,
        "plain_us": plain_us,
        "pruned_us": pruned_us,
        "pruned_subsets": pruned.stats.pruned_subsets,
        "bound_evals": pruned.stats.bound_evals,
        "sharp_bound_evals": pruned.stats.sharp_bound_evals,
        "cheap_bound_skips": pruned.stats.cheap_bound_skips,
        "candidates_plain": plain.stats.candidates,
        "candidates_pruned": pruned.stats.candidates,
        "cost": pruned.cost,
    })
}

/// One ceiling row: a size only the pruned search attempts.
fn ceiling_row(
    name: &str,
    catalog: &lec_catalog::Catalog,
    query: &lec_plan::Query,
    n: usize,
    memory: &lec_prob::Distribution,
) -> serde_json::Value {
    let pruned_cfg = SearchConfig::default().with_pruning(true);
    let model = CostModel::new(catalog, query);
    let t0 = Instant::now();
    let out = optimize_lec_static_with(&model, memory, &pruned_cfg).unwrap();
    let us = t0.elapsed().as_secs_f64() * 1e6;
    assert!(
        out.stats.pruned_subsets > 0,
        "{name} n={n}: the ceiling workload must actually prune"
    );
    println!(
        "large-joins ceiling {name} n={n}: {us:.0}us, cost {:.0}, {} subsets pruned \
         ({} sharp / {} cheap)",
        out.cost,
        out.stats.pruned_subsets,
        out.stats.sharp_bound_evals,
        out.stats.cheap_bound_skips,
    );
    if name == "pruning_star" && n == 15 {
        // The per-edge sharp floor's headline: beat the universal-floor
        // record (1.21s, 16,475 subsets) by 3x on wall time while
        // discarding strictly more subsets.
        assert!(
            us <= 400_000.0,
            "pruning_star n=15 took {us:.0}us — the sharp-bound search must stay under 400ms"
        );
        assert!(
            out.stats.pruned_subsets > 16_475,
            "pruning_star n=15 pruned {} subsets — the sharp per-edge floor must discard \
             strictly more than the universal floor's 16,475",
            out.stats.pruned_subsets
        );
    }
    json!({
        "workload": name,
        "tables": n,
        "pruned_us": us,
        "pruned_subsets": out.stats.pruned_subsets,
        "bound_evals": out.stats.bound_evals,
        "sharp_bound_evals": out.stats.sharp_bound_evals,
        "cheap_bound_skips": out.stats.cheap_bound_skips,
        "candidates": out.stats.candidates,
        "cost": out.cost,
    })
}

fn bench_large_joins(c: &mut Criterion) {
    let memory = lec_prob::presets::spread_family(400.0, 0.5, 4).unwrap();

    // Parity sweep: pruned == unpruned, bit for bit, on 6-9 tables.
    let mut parity = Vec::new();
    for n in [6usize, 7, 8, 9] {
        let (cat, q) = pruning_chain(n);
        parity.push(parity_row("pruning_chain", &cat, &q, n, &memory));
        let (cat, q) = pruning_star(n);
        parity.push(parity_row("pruning_star", &cat, &q, n, &memory));
    }

    // Ceiling sweep: 15-table chain and star plus the 12-table clique,
    // pruned keep-best only.
    let mut ceiling = Vec::new();
    for n in [12usize, 15] {
        let (cat, q) = pruning_chain(n);
        ceiling.push(ceiling_row("pruning_chain", &cat, &q, n, &memory));
        let (cat, q) = pruning_star(n);
        ceiling.push(ceiling_row("pruning_star", &cat, &q, n, &memory));
    }
    let (cat, q) = pruning_clique(12);
    ceiling.push(ceiling_row("pruning_clique", &cat, &q, 12, &memory));

    // The streaming keep-all verifier: the unpruned materializing verifier
    // refuses 8 tables outright; the pruned one streams the same space and
    // must agree with the DP to the bit.
    let (cat, q) = pruning_chain(8);
    let model = CostModel::new(&cat, &q);
    let pruned_cfg = SearchConfig::default().with_pruning(true);
    assert!(
        exhaustive_best_with(
            &model,
            &Objective::Expected(&memory),
            &SearchConfig::default()
        )
        .is_err(),
        "the unpruned verifier must still refuse 8 tables"
    );
    let t0 = Instant::now();
    let verified =
        exhaustive_best_with(&model, &Objective::Expected(&memory), &pruned_cfg).unwrap();
    let verifier_us = t0.elapsed().as_secs_f64() * 1e6;
    let dp = optimize_lec_static_with(&model, &memory, &pruned_cfg).unwrap();
    assert_eq!(
        verified.cost.to_bits(),
        dp.cost.to_bits(),
        "streaming verifier and DP must agree exactly on the 8-table chain"
    );
    println!(
        "large-joins verifier eight_chain: {verifier_us:.0}us, {} plans costed, {} subsets pruned",
        verified.plans_costed().unwrap_or(0),
        verified.stats.pruned_subsets,
    );

    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_large_joins.json");
    std::fs::write(
        out,
        serde_json::to_string_pretty(&json!({
            "bench": "large_joins",
            "schema_version": lec_bench::BENCH_SCHEMA_VERSION,
            "host_cores": lec_bench::host_cores() as u64,
            "claim": "sharp per-edge admissible bounds with tiered evaluation return \
                      byte-identical answers on every size the unpruned search can run at \
                      no more than 110% of its wall time, and lift the table-count \
                      ceilings: 15-table keep-best searches (the star under 400ms with \
                      strictly more subsets pruned than the universal floor's 16,475), a \
                      12-table clique, and an 8-table streaming keep-all verification \
                      complete where the unpruned paths were refused or untried",
            "parity_rows": parity,
            "ceiling_rows": ceiling,
            "verifier": {
                "workload": "pruning_chain",
                "tables": 8,
                "verifier_us": verifier_us,
                "plans_costed": verified.plans_costed().unwrap_or(0),
                "pruned_subsets": verified.stats.pruned_subsets,
                "cost": verified.cost,
            },
        }))
        .unwrap(),
    )
    .expect("write BENCH_large_joins.json");

    // Criterion history: the 9-table star both ways, the 15-table star
    // and 12-table clique pruned only.
    let star9 = pruning_star(9);
    let star15 = pruning_star(15);
    let clique12 = pruning_clique(12);
    let mut group = c.benchmark_group("large_joins");
    group.sample_size(10);
    for (label, fixture, config) in [
        ("nine_star_plain", &star9, SearchConfig::default()),
        (
            "nine_star_pruned",
            &star9,
            SearchConfig::default().with_pruning(true),
        ),
        (
            "fifteen_star_pruned",
            &star15,
            SearchConfig::default().with_pruning(true),
        ),
        (
            "twelve_clique_pruned",
            &clique12,
            SearchConfig::default().with_pruning(true),
        ),
    ] {
        group.bench_function(label, |bench| {
            bench.iter(|| {
                let model = CostModel::new(&fixture.0, &fixture.1);
                black_box(
                    optimize_lec_static_with(&model, black_box(&memory), &config)
                        .unwrap()
                        .cost,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_large_joins);
criterion_main!(benches);
