//! Criterion bench for E5: Algorithm B cost as the top-c list length
//! grows — near-flat thanks to the Proposition 3.1 frontier.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lec_bench::workloads::scaling_chain;
use lec_core::optimize_alg_b;
use lec_cost::CostModel;
use lec_prob::presets;
use std::hint::black_box;

fn bench_topc(c: &mut Criterion) {
    let w = scaling_chain(6);
    let model = CostModel::new(&w.catalog, &w.query);
    let memory = presets::spread_family(400.0, 0.8, 4).unwrap();
    let mut group = c.benchmark_group("alg_b_topc");
    group.sample_size(15);
    for topc in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::new("c", topc), &topc, |bench, &tc| {
            bench.iter(|| black_box(optimize_alg_b(&model, black_box(&memory), tc).unwrap().cost))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_topc);
criterion_main!(benches);
