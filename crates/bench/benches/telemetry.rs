//! The telemetry overhead guard: the plan-cache skewed workload (500
//! requests over a 24-shape pool, random table renaming) served through
//! two `ConcurrentPlanServer`s — telemetry installed on one, absent on
//! the other.
//!
//! Four jobs:
//!
//! 1. **Overhead guard**: the telemetry-on warm pass must stay within
//!    10% of the telemetry-off warm pass (best of 5 alternating passes)
//!    — the run *fails* otherwise.  Instrumentation on the warm hit path
//!    is one clock pair plus three relaxed atomic adds, so losing here
//!    means the zero-allocation contract broke.
//! 2. **Byte identity**: every telemetry-on response must be
//!    byte-identical (plan, cost bits, decision) to the telemetry-off
//!    response — observation must never perturb answers.
//! 3. **Trace coherence**: a traced cold request's per-stage spans must
//!    sum to within its own measured wall time.
//! 4. **Wire agreement**: a `STATS` snapshot fetched over the wire must
//!    be byte-identical to the daemon's in-process `metrics_json`, and
//!    the Prometheus exposition must parse line by line.
//!
//! Results land in `BENCH_telemetry.json`; the JSON and Prometheus
//! snapshots land beside it (`BENCH_telemetry_stats.json`,
//! `BENCH_telemetry.prom`) for the CI artifact upload.

use criterion::{criterion_group, criterion_main, Criterion};
use lec_core::Mode;
use lec_plan::{Query, QueryProfile, Topology, WorkloadGenerator};
use lec_service::ConcurrentPlanServer;
use lec_serviced::transport::PipeListener;
use lec_serviced::{Client, Daemon, DaemonConfig, StatsFormat};
use lec_telemetry::{parse_prometheus, Outcome, Telemetry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::json;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const STREAM_LEN: usize = 500;
const POOL_SIZE: usize = 24;
const WARM_ROUNDS: usize = 5;
const MAX_OVERHEAD: f64 = 1.10;

fn random_perm(rng: &mut StdRng, n: usize) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

/// The plan-cache bench's skewed stream: shape `i` drawn with weight
/// `1/(i+1)`, every occurrence randomly table-renamed.
fn build_stream(catalog: &lec_catalog::Catalog) -> Vec<Query> {
    let mut g = lec_catalog::CatalogGenerator::new(31);
    let mut wg = WorkloadGenerator::new(0x5EED);
    let pool: Vec<Query> = (0..POOL_SIZE)
        .map(|i| {
            let n = 4 + (i % 4); // 4..=7 tables
            let ids = g.pick_tables(catalog, n);
            let topology = [Topology::Chain, Topology::Star, Topology::Random][i % 3];
            wg.gen_query(
                catalog,
                &ids,
                &QueryProfile {
                    topology,
                    ..Default::default()
                },
            )
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(0xCAFE);
    let weights: Vec<f64> = (0..pool.len()).map(|i| 1.0 / (i as f64 + 1.0)).collect();
    let total: f64 = weights.iter().sum();
    (0..STREAM_LEN)
        .map(|_| {
            let mut pick = rng.gen::<f64>() * total;
            let mut idx = pool.len() - 1;
            for (i, w) in weights.iter().enumerate() {
                if pick < *w {
                    idx = i;
                    break;
                }
                pick -= w;
            }
            let q = &pool[idx];
            q.relabel_tables(&random_perm(&mut rng, q.n_tables()))
        })
        .collect()
}

fn warm_pass_ms(server: &ConcurrentPlanServer, stream: &[Query], mode: &Mode) -> f64 {
    let t0 = Instant::now();
    for q in stream {
        black_box(server.serve(q, mode).expect("warm serve"));
    }
    t0.elapsed().as_secs_f64() * 1e3
}

fn bench_telemetry(c: &mut Criterion) {
    let mut g = lec_catalog::CatalogGenerator::new(31);
    let catalog = g.generate(18);
    let stream = build_stream(&catalog);
    let memory = lec_prob::presets::spread_family(500.0, 0.6, 4).unwrap();
    let mode = Mode::AlgorithmC;

    let server_off = ConcurrentPlanServer::new(&catalog, memory.clone());
    let tel = Arc::new(Telemetry::on());
    let server_on =
        ConcurrentPlanServer::new(&catalog, memory.clone()).with_telemetry(Arc::clone(&tel));

    // Cold passes warm both caches; every pair of responses must agree
    // byte for byte — telemetry is pure observation.
    for (i, q) in stream.iter().enumerate() {
        let off = server_off.serve(q, &mode).expect("cold serve (off)");
        let on = server_on.serve(q, &mode).expect("cold serve (on)");
        assert_eq!(
            on.plan, off.plan,
            "request {i}: telemetry perturbed the chosen plan"
        );
        assert_eq!(
            on.cost.to_bits(),
            off.cost.to_bits(),
            "request {i}: telemetry perturbed the cost bits"
        );
        assert_eq!(on.decision, off.decision, "request {i}: decision differs");
    }
    assert!(
        tel.engine().level_combine_ns.snapshot().count() > 0,
        "engine-internal histograms saw the cold searches"
    );

    // Overhead guard: alternate warm passes, best of each.
    let mut off_best = f64::INFINITY;
    let mut on_best = f64::INFINITY;
    for _ in 0..WARM_ROUNDS {
        off_best = off_best.min(warm_pass_ms(&server_off, &stream, &mode));
        on_best = on_best.min(warm_pass_ms(&server_on, &stream, &mode));
    }
    let overhead = on_best / off_best;
    assert!(
        overhead <= MAX_OVERHEAD,
        "telemetry overhead regression: warm pass with telemetry {on_best:.2}ms is \
         {overhead:.3}x the telemetry-off pass {off_best:.2}ms (cap {MAX_OVERHEAD})"
    );

    // Trace coherence on a cold request: a fresh relabeling no server has
    // seen, traced end to end — stage spans are sequential, so their sum
    // is bounded by the trace's own wall time, which is bounded by ours.
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let slow_q = stream[0].relabel_tables(&random_perm(&mut rng, stream[0].n_tables()));
    let mut ctx = tel.trace_ctx(0x510);
    let wall0 = Instant::now();
    server_on
        .serve_traced(&slow_q, &mode, &(), None, &mut ctx)
        .expect("traced serve");
    tel.finish_request(&ctx, Outcome::Fresh);
    let wall_ns = wall0.elapsed().as_nanos() as u64;
    let rec = tel.ring().find(0x510).expect("traced request in ring");
    let span_sum: u64 = rec.spans.iter().map(|s| s.dur_ns).sum();
    assert!(
        span_sum <= rec.total_ns && rec.total_ns <= wall_ns,
        "trace incoherent: spans sum {span_sum}ns, trace total {}ns, measured wall {wall_ns}ns",
        rec.total_ns
    );
    assert!(
        !tel.slow_log().is_empty(),
        "the traced cold request enters the slow log"
    );

    // Wire agreement: STATS over a pipe == in-process metrics_json.
    let daemon = Daemon::new(&server_on, DaemonConfig::default());
    let listener = PipeListener::new();
    let (wire_json, wire_prom) = std::thread::scope(|scope| {
        let runner = scope.spawn(|| daemon.run(&listener));
        let mut client = Client::new(Box::new(listener.connect()), 0xD0C5);
        let wire_json = client.stats(StatsFormat::Json).expect("stats json");
        let local_json = serde_json::to_string(&daemon.metrics_json()).unwrap();
        assert_eq!(
            wire_json, local_json,
            "STATS-over-the-wire snapshot disagrees with in-process metrics_json"
        );
        let wire_prom = client.stats(StatsFormat::Prometheus).expect("stats prom");
        let samples = parse_prometheus(&wire_prom).expect("Prometheus exposition parses");
        assert!(samples.len() > 30, "exposition covers both layers");
        client.drain().expect("drain");
        runner.join().expect("daemon thread");
        (wire_json, wire_prom)
    });

    let served = tel.outcome_snapshot(Outcome::Served);
    println!(
        "telemetry guard  warm off {off_best:.2}ms, on {on_best:.2}ms ({overhead:.3}x, cap \
         {MAX_OVERHEAD}), served p50 {}ns p99 {}ns, ring occupancy {}, dropped {}",
        served.quantile(0.5),
        served.quantile(0.99),
        tel.ring().occupancy(),
        tel.ring().dropped_events(),
    );

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    std::fs::write(
        root.join("BENCH_telemetry.json"),
        serde_json::to_string_pretty(&json!({
            "bench": "telemetry",
            "schema_version": lec_bench::BENCH_SCHEMA_VERSION,
            "host_cores": lec_bench::host_cores() as u64,
            "claim": "full telemetry (outcome histograms, engine timing, request tracing) \
                      costs at most 10% of warm plan-cache throughput, perturbs no served \
                      byte, and its STATS wire snapshot matches the in-process document",
            "workload": {
                "requests": STREAM_LEN,
                "base_shapes": POOL_SIZE,
                "skew": "weight 1/(i+1) per shape, uniformly random table renaming per request",
                "tables_per_query": "4..=7",
                "mode": "AlgorithmC",
                "warm_rounds": WARM_ROUNDS as u64,
            },
            "warm_off_ms": off_best,
            "warm_on_ms": on_best,
            "overhead_ratio": overhead,
            "overhead_cap": MAX_OVERHEAD,
            "served_latency_ns": {
                "p50": served.quantile(0.5) as f64,
                "p90": served.quantile(0.9) as f64,
                "p99": served.quantile(0.99) as f64,
                "p999": served.quantile(0.999) as f64,
            },
            "trace": {
                "ring_occupancy": tel.ring().occupancy(),
                "dropped_events": tel.ring().dropped_events(),
                "slow_log_entries": tel.slow_log().len() as u64,
                "span_sum_ns": span_sum,
                "trace_total_ns": rec.total_ns,
                "measured_wall_ns": wall_ns,
            },
            "byte_identical_to_untelemetered": true,
            "stats_wire_matches_in_process": true,
        }))
        .unwrap(),
    )
    .expect("write BENCH_telemetry.json");
    std::fs::write(root.join("BENCH_telemetry_stats.json"), &wire_json)
        .expect("write BENCH_telemetry_stats.json");
    std::fs::write(root.join("BENCH_telemetry.prom"), &wire_prom)
        .expect("write BENCH_telemetry.prom");

    // Criterion history: one hot warm hit with and without telemetry.
    let hot = &stream[0];
    let mut group = c.benchmark_group("telemetry");
    group.sample_size(20);
    group.bench_function("serve_warm_telemetry_off", |b| {
        b.iter(|| black_box(server_off.serve(black_box(hot), &mode).unwrap().cost))
    });
    group.bench_function("serve_warm_telemetry_on", |b| {
        b.iter(|| black_box(server_on.serve(black_box(hot), &mode).unwrap().cost))
    });
    group.finish();
}

criterion_group!(benches, bench_telemetry);
criterion_main!(benches);
