//! Criterion bench for the execution substrate: Monte-Carlo simulation
//! throughput and the page-level external operators.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lec_core::fixtures;
use lec_cost::CostModel;
use lec_exec::{external_sort, grace_hash_join, monte_carlo, DiskTable, Environment};
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_monte_carlo(c: &mut Criterion) {
    let (catalog, query) = fixtures::example_1_1();
    let model = CostModel::new(&catalog, &query);
    let memory = fixtures::example_1_1_memory();
    let plan = lec_core::optimize_lsc(&model, 2000.0).unwrap().plan;
    let env = Environment::Static(memory);
    let mut group = c.benchmark_group("monte_carlo");
    group.sample_size(20);
    for runs in [1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("runs", runs), &runs, |bench, &r| {
            bench.iter(|| black_box(monte_carlo(&model, &plan, &env, r, 7).unwrap().mean))
        });
    }
    group.finish();
}

fn bench_operators(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let mk = |rows: usize, rng: &mut rand::rngs::StdRng| {
        DiskTable::from_rows(
            (0..rows).map(|i| vec![rng.gen_range(0..256i64), i as i64]),
            4,
        )
    };
    let a = mk(512, &mut rng);
    let b = mk(128, &mut rng);
    let mut group = c.benchmark_group("external_operators");
    group.sample_size(20);
    group.bench_function("external_sort_128p_m8", |bench| {
        bench.iter(|| black_box(external_sort(black_box(&a), 0, 8, 4).io))
    });
    group.bench_function("grace_hash_128x32p_m8", |bench| {
        bench.iter(|| black_box(grace_hash_join(black_box(&a), black_box(&b), 0, 0, 8, 4).io))
    });
    group.finish();
}

criterion_group!(benches, bench_monte_carlo, bench_operators);
criterion_main!(benches);
