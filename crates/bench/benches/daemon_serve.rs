//! The daemon serving guard: the warm skewed workload served through
//! `lec-serviced` over a real Unix-domain socket vs the same
//! `ConcurrentPlanServer` called in-process.
//!
//! Three jobs:
//!
//! 1. **Correctness**: every response that crosses the wire — cold pass,
//!    warm batched pass, and the overload pass's survivors — must be
//!    byte-identical (plan, cost bits, table numbering) to a fresh
//!    `Optimizer::optimize` of the same request; the run *fails*
//!    otherwise.
//! 2. **Regression guards**: on hosts with >= `GUARD_CORES` cores, the
//!    warm batched Unix-socket throughput must stay within
//!    `MAX_WIRE_SLOWDOWN`x of in-process throughput (the wire tax must
//!    not swamp the ~microsecond hit path), and the overload pass must
//!    shed every cold request in a fraction of the time the backlog is
//!    actually held (refusal is immediate, not queued).  Single-core
//!    hosts record the numbers but skip the wall-time ratio —
//!    scheduling noise dominates there.  The *behavioral* overload
//!    assertions (sheds happen, warm hits keep serving, nothing hangs)
//!    are enforced everywhere.
//! 3. **Record**: throughputs, the wire tax, and the overload counters
//!    land in `BENCH_daemon_serve.json` at the workspace root.

use criterion::{criterion_group, criterion_main, Criterion};
use lec_core::{Mode, Optimizer};
use lec_plan::{Query, QueryProfile, Topology, WorkloadGenerator};
use lec_service::ConcurrentPlanServer;
use lec_serviced::transport::UnixAcceptor;
use lec_serviced::{Client, ClientError, Daemon, DaemonConfig, ErrorCode, FaultPlan, SearchFault};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::json;
use std::hint::black_box;
use std::os::unix::net::{UnixListener, UnixStream};
use std::time::{Duration, Instant};

const STREAM_LEN: usize = 400;
const POOL_SIZE: usize = 24;
const BATCH: usize = 32;
/// Minimum host cores before the wall-time guards are enforced.
const GUARD_CORES: usize = 4;
/// Warm wire throughput may cost at most this factor vs in-process.
const MAX_WIRE_SLOWDOWN: f64 = 2.0;

fn cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn random_perm(rng: &mut StdRng, n: usize) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

/// The skewed stream over a pool of base shapes: shape `i` drawn with
/// weight `1/(i+1)`, every occurrence randomly table-renamed (the same
/// construction as the `concurrent_serve` guard).
fn build_stream(catalog: &lec_catalog::Catalog) -> Vec<Query> {
    let mut g = lec_catalog::CatalogGenerator::new(31);
    let mut wg = WorkloadGenerator::new(0x5EED);
    let pool: Vec<Query> = (0..POOL_SIZE)
        .map(|i| {
            let n = 4 + (i % 4); // 4..=7 tables
            let ids = g.pick_tables(catalog, n);
            let topology = [Topology::Chain, Topology::Star, Topology::Random][i % 3];
            wg.gen_query(
                catalog,
                &ids,
                &QueryProfile {
                    topology,
                    ..Default::default()
                },
            )
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(0xCAFE);
    let weights: Vec<f64> = (0..pool.len()).map(|i| 1.0 / (i as f64 + 1.0)).collect();
    let total: f64 = weights.iter().sum();
    (0..STREAM_LEN)
        .map(|_| {
            let mut pick = rng.gen::<f64>() * total;
            let mut idx = pool.len() - 1;
            for (i, w) in weights.iter().enumerate() {
                if pick < *w {
                    idx = i;
                    break;
                }
                pick -= w;
            }
            let q = &pool[idx];
            q.relabel_tables(&random_perm(&mut rng, q.n_tables()))
        })
        .collect()
}

/// A fresh Unix socket path in the temp dir (removed before bind).
fn socket_path(tag: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!(
        "lec-serviced-bench-{}-{tag}.sock",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

fn assert_identical(
    resp: &lec_service::ServeResponse,
    fresh: &lec_core::Optimized,
    i: usize,
    label: &str,
) {
    assert_eq!(
        resp.plan, fresh.plan,
        "{label}: request {i} plan differs from fresh optimization"
    );
    assert_eq!(
        resp.cost.to_bits(),
        fresh.cost.to_bits(),
        "{label}: request {i} cost bits differ"
    );
}

fn bench_daemon_serve(c: &mut Criterion) {
    let mut g = lec_catalog::CatalogGenerator::new(31);
    let catalog = g.generate(18);
    let stream = build_stream(&catalog);
    let memory = lec_prob::presets::spread_family(500.0, 0.6, 4).unwrap();
    let mode = Mode::AlgorithmC;

    // Fresh per-request baseline: the byte-identity oracle.
    let fresh_opt = Optimizer::new(&catalog, memory.clone());
    let fresh: Vec<_> = stream
        .iter()
        .map(|q| fresh_opt.optimize(q, &mode).expect("fresh optimize"))
        .collect();

    // In-process baseline: warm the server, then time one warm pass.
    let inproc = ConcurrentPlanServer::new(&catalog, memory.clone());
    for (i, q) in stream.iter().enumerate() {
        assert_identical(
            &inproc.serve(q, &mode).unwrap(),
            &fresh[i],
            i,
            "inproc-cold",
        );
    }
    let t0 = Instant::now();
    for (i, q) in stream.iter().enumerate() {
        assert_identical(
            &inproc.serve(q, &mode).unwrap(),
            &fresh[i],
            i,
            "inproc-warm",
        );
    }
    let inproc_qps = STREAM_LEN as f64 / t0.elapsed().as_secs_f64();

    // ------------------------------------------------------------------
    // The daemon over a real Unix-domain socket.
    // ------------------------------------------------------------------
    let server = ConcurrentPlanServer::new(&catalog, memory.clone());
    let daemon = Daemon::new(&server, DaemonConfig::default());
    let path = socket_path("serve");
    let acceptor = UnixAcceptor::new(UnixListener::bind(&path).expect("bind unix socket"))
        .expect("nonblocking acceptor");

    let (cold_qps, warm_wire_qps) = std::thread::scope(|scope| {
        let runner = scope.spawn(|| daemon.run(&acceptor));

        let connect =
            || Box::new(UnixStream::connect(&path).expect("connect unix socket")) as Box<_>;
        let mut client = Client::new(connect(), 0xBE7C);

        // Cold pass over the wire: every response byte-identical.
        let t0 = Instant::now();
        for (i, q) in stream.iter().enumerate() {
            let resp = client.optimize(i as u64, &mode, q).expect("cold serve");
            assert_identical(&resp, &fresh[i], i, "wire-cold");
        }
        let cold_qps = STREAM_LEN as f64 / t0.elapsed().as_secs_f64();

        // Warm pass, batched: one write per BATCH requests — the
        // syscall-amortized path the daemon exists to serve.
        let requests: Vec<(u64, Mode, Query)> = stream
            .iter()
            .enumerate()
            .map(|(i, q)| (i as u64, mode.clone(), q.clone()))
            .collect();
        let t0 = Instant::now();
        for batch in requests.chunks(BATCH) {
            for (k, resp) in client
                .optimize_batch(batch)
                .expect("warm batch")
                .into_iter()
                .enumerate()
            {
                let i = batch[k].0 as usize;
                assert_identical(&resp.expect("warm serve"), &fresh[i], i, "wire-warm");
            }
        }
        let warm_wire_qps = STREAM_LEN as f64 / t0.elapsed().as_secs_f64();

        let mut ctl = Client::new(connect(), 0xD1A1);
        ctl.drain().expect("drain");
        let report = runner.join().expect("daemon thread");
        assert_eq!(report.forced_aborts, 0, "graceful drain needs no hammer");
        (cold_qps, warm_wire_qps)
    });
    let _ = std::fs::remove_file(&path);
    let warm_hit_rate = server.cache_stats().hit_rate();

    // ------------------------------------------------------------------
    // Overload pass: one cold slot, held; cold requests must be shed
    // immediately while warm hits keep serving.
    // ------------------------------------------------------------------
    let hold = Duration::from_millis(600);
    let shed_probes = 8usize;
    // Dedicated probe queries generated under a fresh seed: their random
    // selectivities make each canonical shape distinct from the whole
    // stream pool, so no probe can coalesce onto the holder's in-flight
    // search (or hit stream[0]'s warm entry) — every one needs the cold
    // slot the holder occupies.
    let probe_queries: Vec<Query> = {
        let mut pg = lec_catalog::CatalogGenerator::new(97);
        let mut pwg = WorkloadGenerator::new(0xF00D);
        (0..shed_probes)
            .map(|i| {
                let ids = pg.pick_tables(&catalog, 4 + (i % 3));
                pwg.gen_query(&catalog, &ids, &QueryProfile::default())
            })
            .collect()
    };
    let over_server = ConcurrentPlanServer::new(&catalog, memory);
    let over_daemon = Daemon::new(
        &over_server,
        DaemonConfig {
            max_cold_backlog: 1,
            ..DaemonConfig::default()
        },
    )
    // Connection 0's second request parks in `before_search` holding the
    // only cold slot for `hold`.
    .with_faults(FaultPlan::new().search(0, 1, SearchFault::Delay(hold)));
    let over_path = socket_path("overload");
    let over_acceptor =
        UnixAcceptor::new(UnixListener::bind(&over_path).expect("bind unix socket"))
            .expect("nonblocking acceptor");

    let max_refusal = std::thread::scope(|scope| {
        let runner = scope.spawn(|| over_daemon.run(&over_acceptor));
        let connect =
            || Box::new(UnixStream::connect(&over_path).expect("connect unix socket")) as Box<_>;
        let mut blocker = Client::new(connect(), 1);
        let mut prober = Client::new(connect(), 2);

        // Warm query 0 through the blocker (conn 0, request 0: unfaulted).
        assert_identical(
            &blocker.optimize_once(0, &mode, &stream[0]).expect("warmup"),
            &fresh[0],
            0,
            "overload-warmup",
        );

        let max_refusal = std::thread::scope(|inner| {
            let holder = inner.spawn(|| blocker.optimize_once(1, &mode, &stream[1]));
            std::thread::sleep(Duration::from_millis(60));

            // Cold probes: distinct shapes, all shed, each refusal fast.
            let mut max_refusal = Duration::ZERO;
            for (k, probe) in probe_queries.iter().enumerate() {
                let t0 = Instant::now();
                match prober.optimize_once(k as u64, &mode, probe) {
                    Err(ClientError::Server(e)) => {
                        assert_eq!(e.code, ErrorCode::Overloaded, "probe {k} must be shed")
                    }
                    other => panic!("probe {k}: expected Overloaded, got {other:?}"),
                }
                max_refusal = max_refusal.max(t0.elapsed());
            }
            // Warm hits keep serving mid-overload.
            assert_identical(
                &prober
                    .optimize_once(99, &mode, &stream[0])
                    .expect("warm hit under overload"),
                &fresh[0],
                0,
                "overload-warm",
            );
            let held = holder.join().expect("holder thread").expect("held search");
            assert_identical(&held, &fresh[1], 1, "overload-held");
            max_refusal
        });

        let mut ctl = Client::new(connect(), 3);
        ctl.drain().expect("drain");
        runner.join().expect("daemon thread");
        max_refusal
    });
    let _ = std::fs::remove_file(&over_path);
    assert_eq!(
        over_daemon.metrics().shed_requests(),
        shed_probes as u64,
        "every cold probe was shed"
    );

    let host_cores = cores();
    let guard_enforced = host_cores >= GUARD_CORES;
    let wire_tax = inproc_qps / warm_wire_qps;
    if guard_enforced {
        assert!(
            wire_tax <= MAX_WIRE_SLOWDOWN,
            "wire tax regression: warm batched socket throughput {warm_wire_qps:.0} req/s is \
             {wire_tax:.2}x slower than in-process {inproc_qps:.0} req/s (cap {MAX_WIRE_SLOWDOWN}x)"
        );
        assert!(
            max_refusal < hold / 4,
            "overload refusals must be immediate: slowest took {max_refusal:?} \
             against a {hold:?} hold"
        );
        println!(
            "daemon-serve guard  in-process {inproc_qps:.0} req/s, warm wire {warm_wire_qps:.0} \
             req/s ({wire_tax:.2}x tax), slowest shed {max_refusal:?}"
        );
    } else {
        println!(
            "daemon-serve guard  in-process {inproc_qps:.0} req/s, warm wire {warm_wire_qps:.0} \
             req/s ({wire_tax:.2}x tax), slowest shed {max_refusal:?} — host has {host_cores} \
             core(s), wall-time guards skipped (byte-identity and shed behavior still enforced)"
        );
    }

    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_daemon_serve.json");
    std::fs::write(
        out,
        serde_json::to_string_pretty(&json!({
            "bench": "daemon_serve",
            "schema_version": lec_bench::BENCH_SCHEMA_VERSION,
            "host_cores": lec_bench::host_cores() as u64,
            "claim": "the daemon serves the skewed workload over a Unix socket with every \
                      response byte-identical to fresh optimization; warm batched wire \
                      throughput stays within the wire-tax cap of in-process serving; under \
                      overload every cold request is shed immediately with Overloaded while \
                      warm hits keep serving; drain completes without forced aborts",
            "workload": {
                "requests": STREAM_LEN,
                "base_shapes": POOL_SIZE,
                "skew": "weight 1/(i+1) per shape, uniformly random table renaming per request",
                "tables_per_query": "4..=7",
                "mode": "AlgorithmC",
                "memory_buckets": 4,
                "batch": BATCH,
                "transport": "unix-domain socket",
            },
            "host_cores": host_cores,
            "wall_time_guards_enforced": guard_enforced,
            "inproc_warm_qps": inproc_qps,
            "wire_cold_qps": cold_qps,
            "wire_warm_batched_qps": warm_wire_qps,
            "wire_tax_vs_inproc": wire_tax,
            "max_wire_slowdown_allowed": MAX_WIRE_SLOWDOWN,
            "warm_hit_rate": warm_hit_rate,
            "overload": {
                "cold_backlog_slots": 1,
                "hold_ms": hold.as_millis() as f64,
                "cold_probes_shed": shed_probes,
                "slowest_refusal_ms": max_refusal.as_secs_f64() * 1e3,
                "warm_hits_served_during_overload": true,
            },
            "byte_identical_to_fresh": true,
        }))
        .unwrap(),
    )
    .expect("write BENCH_daemon_serve.json");

    // Criterion timing group so `cargo bench` history tracks the warm
    // wire round trip (in-process daemon pipe, single request).
    let listener = lec_serviced::PipeListener::new();
    let timing_server = inproc; // already warm on the whole stream
    let timing_daemon = Daemon::new(&timing_server, DaemonConfig::default());
    std::thread::scope(|scope| {
        let runner = scope.spawn(|| timing_daemon.run(&listener));
        let mut client = Client::new(Box::new(listener.connect()), 0x71C7);
        let hot = &stream[0];
        let mut group = c.benchmark_group("daemon_serve");
        group.sample_size(20);
        group.bench_function("warm_roundtrip_pipe", |b| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                black_box(client.optimize_once(i, &mode, black_box(hot)).unwrap().cost)
            })
        });
        group.finish();
        let mut ctl = Client::new(Box::new(listener.connect()), 0x71C8);
        ctl.drain().expect("drain");
        runner.join().expect("daemon thread");
    });
}

criterion_group!(benches, bench_daemon_serve);
criterion_main!(benches);
