//! The concurrent-serving guard: the warm 500-query skewed workload
//! served through one shared `ConcurrentPlanServer` by 1 client vs 4
//! clients.
//!
//! Three jobs:
//!
//! 1. **Correctness**: every response in every pass — cold, warm serial,
//!    warm concurrent, cold concurrent — must be byte-identical (plan,
//!    cost bits, table numbering) to a fresh `Optimizer::optimize` of the
//!    same request, whatever the interleaving; the run *fails* otherwise.
//! 2. **Regression guard**: on hosts with >= `GUARD_CORES` cores,
//!    4-client aggregate throughput on the warm workload must be at
//!    least the 1-client throughput (losing means the sharded cache
//!    reintroduced a serialization point).  Single-core hosts record the
//!    numbers but skip the wall-time assertion — concurrency there is a
//!    scheduling fiction.
//! 3. **Record**: throughputs, the speedup, and the coalescing counters
//!    of a cold 4-client stampede land in `BENCH_concurrent_serve.json`
//!    at the workspace root.

use criterion::{criterion_group, criterion_main, Criterion};
use lec_core::{Mode, Optimizer};
use lec_plan::{Query, QueryProfile, Topology, WorkloadGenerator};
use lec_service::ConcurrentPlanServer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::json;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const STREAM_LEN: usize = 500;
const POOL_SIZE: usize = 24;
const CLIENTS: usize = 4;
/// Minimum host cores before the throughput assertion is enforced.
const GUARD_CORES: usize = 4;

fn cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn random_perm(rng: &mut StdRng, n: usize) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

/// The 500-request skewed stream over a pool of base shapes: shape `i`
/// drawn with weight `1/(i+1)`, every occurrence randomly table-renamed
/// (the same construction as the `plan_cache` guard).
fn build_stream(catalog: &lec_catalog::Catalog) -> Vec<Query> {
    let mut g = lec_catalog::CatalogGenerator::new(31);
    let mut wg = WorkloadGenerator::new(0x5EED);
    let pool: Vec<Query> = (0..POOL_SIZE)
        .map(|i| {
            let n = 4 + (i % 4); // 4..=7 tables
            let ids = g.pick_tables(catalog, n);
            let topology = [Topology::Chain, Topology::Star, Topology::Random][i % 3];
            wg.gen_query(
                catalog,
                &ids,
                &QueryProfile {
                    topology,
                    ..Default::default()
                },
            )
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(0xCAFE);
    let weights: Vec<f64> = (0..pool.len()).map(|i| 1.0 / (i as f64 + 1.0)).collect();
    let total: f64 = weights.iter().sum();
    (0..STREAM_LEN)
        .map(|_| {
            let mut pick = rng.gen::<f64>() * total;
            let mut idx = pool.len() - 1;
            for (i, w) in weights.iter().enumerate() {
                if pick < *w {
                    idx = i;
                    break;
                }
                pick -= w;
            }
            let q = &pool[idx];
            q.relabel_tables(&random_perm(&mut rng, q.n_tables()))
        })
        .collect()
}

/// Replay the whole stream on `clients` threads (each serving the full
/// stream), asserting every response byte-identical to the precomputed
/// fresh results; returns aggregate requests per second.
fn replay(
    server: &ConcurrentPlanServer<'_>,
    stream: &[Query],
    fresh: &[lec_core::Optimized],
    mode: &Mode,
    clients: usize,
    label: &str,
) -> f64 {
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..clients {
            scope.spawn(move || {
                // Stagger the starting offset so clients collide on
                // different keys at different times.
                for i in (0..stream.len()).map(|k| (k + client * 7) % stream.len()) {
                    let resp = server.serve(&stream[i], mode).expect("serve succeeds");
                    assert_eq!(
                        resp.plan, fresh[i].plan,
                        "{label}: request {i} plan differs from fresh optimization"
                    );
                    assert_eq!(
                        resp.cost.to_bits(),
                        fresh[i].cost.to_bits(),
                        "{label}: request {i} cost bits differ"
                    );
                    black_box(resp.cost);
                }
            });
        }
    });
    (clients * stream.len()) as f64 / t0.elapsed().as_secs_f64()
}

fn bench_concurrent_serve(c: &mut Criterion) {
    let mut g = lec_catalog::CatalogGenerator::new(31);
    let catalog = g.generate(18);
    let stream = build_stream(&catalog);
    let memory = lec_prob::presets::spread_family(500.0, 0.6, 4).unwrap();
    let mode = Mode::AlgorithmC;

    // Fresh per-request baseline: the byte-identity oracle.
    let fresh_opt = Optimizer::new(&catalog, memory.clone());
    let fresh: Vec<_> = stream
        .iter()
        .map(|q| fresh_opt.optimize(q, &mode).expect("fresh optimize"))
        .collect();

    // Cold 4-client stampede on a fresh server: correctness under
    // concurrent misses, and the coalescing counters for the record.
    let stampede = Arc::new(ConcurrentPlanServer::new(&catalog, memory.clone()));
    replay(&stampede, &stream, &fresh, &mode, CLIENTS, "cold-stampede");
    let stampede_stats = stampede.cache_stats();

    // Warm server for the throughput comparison.
    let server = Arc::new(ConcurrentPlanServer::new(&catalog, memory));
    replay(&server, &stream, &fresh, &mode, 1, "cold");
    let single_qps = replay(&server, &stream, &fresh, &mode, 1, "warm-1");
    let multi_qps = replay(&server, &stream, &fresh, &mode, CLIENTS, "warm-4");
    let stats = server.cache_stats();

    let host_cores = cores();
    let guard_enforced = host_cores >= GUARD_CORES;
    // On a single core, four threads time-slice one cache and the
    // comparison measures the scheduler, not the server; the byte-identity
    // assertions above are enforced everywhere regardless.
    if guard_enforced {
        assert!(
            multi_qps >= single_qps,
            "concurrent serving regression: {CLIENTS} clients at {multi_qps:.0} req/s \
             lost to 1 client at {single_qps:.0} req/s on the warm workload"
        );
        println!(
            "concurrent-serve guard  1 client {single_qps:.0} req/s, {CLIENTS} clients \
             {multi_qps:.0} req/s ({:.2}x)",
            multi_qps / single_qps
        );
    } else {
        println!(
            "concurrent-serve guard  1 client {single_qps:.0} req/s, {CLIENTS} clients \
             {multi_qps:.0} req/s — host has {host_cores} core(s), throughput guard \
             skipped (byte-identity still enforced)"
        );
    }
    println!(
        "cold stampede: {} served, {} coalesced followers behind {} leaders, \
         {} searches",
        stampede_stats.served,
        stampede_stats.coalesced_followers,
        stampede_stats.coalesced_leaders,
        stampede_stats.recomputed + stampede_stats.revalidated,
    );

    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_concurrent_serve.json");
    std::fs::write(
        out,
        serde_json::to_string_pretty(&json!({
            "bench": "concurrent_serve",
            "schema_version": lec_bench::BENCH_SCHEMA_VERSION,
            "host_cores": lec_bench::host_cores() as u64,
            "claim": "N clients sharing one ConcurrentPlanServer through &self sustain at \
                      least single-client throughput on the warm skewed workload, with every \
                      response byte-identical (plan, cost bits, relabeled table ids) to fresh \
                      optimization under any interleaving, and concurrent misses on one exact \
                      key coalescing onto a single DP",
            "workload": {
                "requests": STREAM_LEN,
                "base_shapes": POOL_SIZE,
                "skew": "weight 1/(i+1) per shape, uniformly random table renaming per request",
                "tables_per_query": "4..=7",
                "mode": "AlgorithmC",
                "memory_buckets": 4,
                "clients": CLIENTS,
            },
            "host_cores": host_cores,
            "throughput_guard_enforced": guard_enforced,
            "warm_single_client_qps": single_qps,
            "warm_multi_client_qps": multi_qps,
            "speedup_multi_vs_single": multi_qps / single_qps,
            "warm_hit_rate": stats.hit_rate(),
            "cold_stampede": {
                "served": stampede_stats.served,
                "coalesced_followers": stampede_stats.coalesced_followers,
                "coalesced_leaders": stampede_stats.coalesced_leaders,
                "searches": stampede_stats.recomputed + stampede_stats.revalidated,
                "hit_rate": stampede_stats.hit_rate(),
            },
            "byte_identical_to_fresh": true,
        }))
        .unwrap(),
    )
    .expect("write BENCH_concurrent_serve.json");

    // Criterion timing group so `cargo bench` history tracks the shared
    // hit path.
    let hot = &stream[0];
    let mut group = c.benchmark_group("concurrent_serve");
    group.sample_size(20);
    group.bench_function("serve_warm_shared", |b| {
        b.iter(|| black_box(server.serve(black_box(hot), &mode).unwrap().cost))
    });
    group.finish();
}

criterion_group!(benches, bench_concurrent_serve);
criterion_main!(benches);
