//! The plan-cache guard: a 500-query skewed workload (repeats and
//! table-renamed copies of a 24-shape pool) served through `PlanServer`
//! versus fresh per-request optimization.
//!
//! Three jobs:
//!
//! 1. **Correctness**: every warm-cache response must be byte-identical
//!    (plan, cost bits, table numbering) to a fresh `Optimizer::optimize`
//!    of the same request — the run *fails* otherwise.
//! 2. **Regression guard**: the warm pass over the repeat workload must
//!    beat the fresh pass on wall time (cache hits skip the whole DP, so
//!    losing here means the canonicalizer or cache got pathologically
//!    slow) — enforced on every host, single-core included.
//! 3. **Record**: hit rate, per-decision latencies and the speedup land
//!    in `BENCH_plan_cache.json` at the workspace root.

use criterion::{criterion_group, criterion_main, Criterion};
use lec_core::{Mode, Optimizer};
use lec_plan::{Query, QueryProfile, Topology, WorkloadGenerator};
use lec_service::{CacheDecision, PlanServer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::json;
use std::hint::black_box;
use std::time::Instant;

const STREAM_LEN: usize = 500;
const POOL_SIZE: usize = 24;

fn random_perm(rng: &mut StdRng, n: usize) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

/// The 500-request skewed stream over a pool of base shapes: shape `i`
/// drawn with weight `1/(i+1)`, every occurrence randomly table-renamed.
fn build_stream(catalog: &lec_catalog::Catalog) -> Vec<Query> {
    let mut g = lec_catalog::CatalogGenerator::new(31);
    let mut wg = WorkloadGenerator::new(0x5EED);
    let pool: Vec<Query> = (0..POOL_SIZE)
        .map(|i| {
            let n = 4 + (i % 4); // 4..=7 tables
            let ids = g.pick_tables(catalog, n);
            let topology = [Topology::Chain, Topology::Star, Topology::Random][i % 3];
            wg.gen_query(
                catalog,
                &ids,
                &QueryProfile {
                    topology,
                    ..Default::default()
                },
            )
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(0xCAFE);
    let weights: Vec<f64> = (0..pool.len()).map(|i| 1.0 / (i as f64 + 1.0)).collect();
    let total: f64 = weights.iter().sum();
    (0..STREAM_LEN)
        .map(|_| {
            let mut pick = rng.gen::<f64>() * total;
            let mut idx = pool.len() - 1;
            for (i, w) in weights.iter().enumerate() {
                if pick < *w {
                    idx = i;
                    break;
                }
                pick -= w;
            }
            let q = &pool[idx];
            q.relabel_tables(&random_perm(&mut rng, q.n_tables()))
        })
        .collect()
}

fn bench_plan_cache(c: &mut Criterion) {
    let mut g = lec_catalog::CatalogGenerator::new(31);
    let catalog = g.generate(18);
    let stream = build_stream(&catalog);
    let memory = lec_prob::presets::spread_family(500.0, 0.6, 4).unwrap();
    let mode = Mode::AlgorithmC;

    // Fresh baseline: every request optimized from scratch (no cache, no
    // pool reuse across requests beyond the optimizer's own config).
    let fresh = Optimizer::new(&catalog, memory.clone());
    let t0 = Instant::now();
    let fresh_results: Vec<_> = stream
        .iter()
        .map(|q| fresh.optimize(q, &mode).expect("fresh optimize"))
        .collect();
    let fresh_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Cold pass: a new server sees the stream once (recomputes per
    // distinct shape, hits on repeats), then the warm pass replays it.
    let mut server = PlanServer::new(&catalog, memory.clone());
    let t0 = Instant::now();
    for q in &stream {
        black_box(server.serve(q, &mode).expect("cold serve"));
    }
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    let cold_stats = server.cache_stats();

    let mut served_us: Vec<f64> = Vec::with_capacity(STREAM_LEN);
    let t0 = Instant::now();
    let warm_responses: Vec<_> = stream
        .iter()
        .map(|q| {
            let r = server.serve(q, &mode).expect("warm serve");
            served_us.push(r.stats.elapsed.as_secs_f64() * 1e6);
            r
        })
        .collect();
    let warm_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Correctness: every warm response byte-identical to the fresh run.
    let mut all_served = true;
    for (i, (resp, fresh_r)) in warm_responses.iter().zip(&fresh_results).enumerate() {
        assert_eq!(
            resp.plan, fresh_r.plan,
            "request {i}: warm-cache plan differs from fresh optimization"
        );
        assert_eq!(
            resp.cost.to_bits(),
            fresh_r.cost.to_bits(),
            "request {i}: warm-cache cost bits differ from fresh optimization"
        );
        all_served &= resp.decision == CacheDecision::Served;
    }
    assert!(
        all_served,
        "every warm-pass request repeats a cached shape and must be served"
    );

    // Regression guard: the warm repeat workload must be faster than the
    // fresh workload.  Serving is a canonicalization plus a hash lookup —
    // two orders of magnitude under a DP — so 2x headroom is generous.
    assert!(
        warm_ms < fresh_ms / 2.0,
        "plan-cache regression: warm pass {warm_ms:.1}ms not faster than \
         half the fresh pass {fresh_ms:.1}ms"
    );

    served_us.sort_by(f64::total_cmp);
    let stats = server.cache_stats();
    let hit_rate = stats.hit_rate();
    println!(
        "plan-cache guard  fresh {fresh_ms:.1}ms, cold {cold_ms:.1}ms, warm {warm_ms:.1}ms \
         ({:.1}x vs fresh), hit rate {:.1}%, served p50 {:.0}us p99 {:.0}us",
        fresh_ms / warm_ms,
        hit_rate * 100.0,
        served_us[STREAM_LEN / 2],
        served_us[STREAM_LEN * 99 / 100],
    );

    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_plan_cache.json");
    std::fs::write(
        out,
        serde_json::to_string_pretty(&json!({
            "bench": "plan_cache",
            "schema_version": lec_bench::BENCH_SCHEMA_VERSION,
            "host_cores": lec_bench::host_cores() as u64,
            "claim": "a warm canonical-shape cache serves a 500-query skewed repeat workload \
                      faster than per-request optimization, with every answer byte-identical \
                      (plan, cost bits, relabeled table ids) to a fresh run",
            "workload": {
                "requests": STREAM_LEN,
                "base_shapes": POOL_SIZE,
                "skew": "weight 1/(i+1) per shape, uniformly random table renaming per request",
                "tables_per_query": "4..=7",
                "mode": "AlgorithmC",
                "memory_buckets": 4,
            },
            "fresh_ms": fresh_ms,
            "cold_pass_ms": cold_ms,
            "warm_pass_ms": warm_ms,
            "speedup_warm_vs_fresh": fresh_ms / warm_ms,
            "cold_pass": {
                "hit_rate": cold_stats.hit_rate(),
                "served": cold_stats.served,
                "revalidated": cold_stats.revalidated,
                "recomputed": cold_stats.recomputed,
            },
            "lifetime_hit_rate": hit_rate,
            "served_latency_us": {
                "p50": served_us[STREAM_LEN / 2],
                "p90": served_us[STREAM_LEN * 9 / 10],
                "p99": served_us[STREAM_LEN * 99 / 100],
            },
            "cache_entries": server.cache_len(),
            "byte_identical_to_fresh": true,
        }))
        .unwrap(),
    )
    .expect("write BENCH_plan_cache.json");

    // Criterion timing groups so `cargo bench` history tracks both paths
    // on one hot shape.
    let hot = &stream[0];
    let mut group = c.benchmark_group("plan_cache");
    group.sample_size(20);
    group.bench_function("serve_warm", |b| {
        b.iter(|| black_box(server.serve(black_box(hot), &mode).unwrap().cost))
    });
    group.bench_function("optimize_fresh", |b| {
        b.iter(|| black_box(fresh.optimize(black_box(hot), &mode).unwrap().cost))
    });
    group.finish();
}

criterion_group!(benches, bench_plan_cache);
criterion_main!(benches);
