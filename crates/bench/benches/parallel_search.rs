//! The parallel-search guard: serial vs parallel Algorithm C on the
//! 8-table chain and the 10-table star at 4/16/64 memory buckets.
//!
//! Three jobs:
//!
//! 1. **Correctness**: every row asserts the parallel search returns the
//!    same plan, the same cost bits, and — because the sharded eval cache
//!    computes every key exactly once — *identical* `evals` and
//!    `cache_hits` counters as the serial search.
//! 2. **Record**: wall-time medians and speedups land in
//!    `BENCH_parallel_search.json` at the workspace root, together with
//!    the host's core count (a speedup is only physical when the host can
//!    actually run 4 threads).
//! 3. **Regression guard**: on hosts with ≥ 4 cores, the run *fails* if
//!    the parallel search at `threads = 4` is slower than serial on the
//!    8-table chain / 16-bucket workload — the canary for lock-contention
//!    regressions in the sharded cache or the level barrier.

use criterion::{criterion_group, criterion_main, Criterion};
use lec_core::fixtures::{scaling_chain, scaling_star};
use lec_core::{optimize_lec_static_with, SearchConfig};
use lec_cost::CostModel;
use serde_json::json;
use std::hint::black_box;
use std::time::Instant;

const GUARD_THREADS: usize = 4;

fn host_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Median wall time (µs) of `runs` fresh-model searches under `config`.
fn median_search_us(
    catalog: &lec_catalog::Catalog,
    query: &lec_plan::Query,
    memory: &lec_prob::Distribution,
    config: &SearchConfig,
    runs: usize,
) -> f64 {
    let mut times: Vec<f64> = (0..runs)
        .map(|_| {
            let model = CostModel::new(catalog, query);
            let t0 = Instant::now();
            black_box(optimize_lec_static_with(&model, memory, config).unwrap());
            t0.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[runs / 2]
}

fn guard_row(
    name: &str,
    catalog: &lec_catalog::Catalog,
    query: &lec_plan::Query,
    buckets: usize,
) -> serde_json::Value {
    let memory = lec_prob::presets::spread_family(400.0, 0.8, buckets).unwrap();
    let serial_cfg = SearchConfig::serial();
    let parallel_cfg = SearchConfig {
        threads: GUARD_THREADS,
        // Force the fan-out on even for the 8-table chain's narrower
        // levels, so the guard measures the machinery it is guarding.
        fanout_threshold: 1,
        ..Default::default()
    };

    // Correctness first: byte-identical outcome and identical counters.
    let serial_model = CostModel::new(catalog, query);
    let serial = optimize_lec_static_with(&serial_model, &memory, &serial_cfg).unwrap();
    let par_model = CostModel::new(catalog, query);
    let parallel = optimize_lec_static_with(&par_model, &memory, &parallel_cfg).unwrap();
    assert_eq!(serial.plan, parallel.plan, "{name} b={buckets}: plan drift");
    assert_eq!(
        serial.cost.to_bits(),
        parallel.cost.to_bits(),
        "{name} b={buckets}: cost drift"
    );
    assert_eq!(
        serial.stats.evals, parallel.stats.evals,
        "{name} b={buckets}: evals must be identical serial vs parallel"
    );
    assert_eq!(
        serial.stats.cache_hits, parallel.stats.cache_hits,
        "{name} b={buckets}: cache_hits must be identical serial vs parallel"
    );

    let runs = 15;
    let serial_us = median_search_us(catalog, query, &memory, &serial_cfg, runs);
    let parallel_us = median_search_us(catalog, query, &memory, &parallel_cfg, runs);
    let speedup = serial_us / parallel_us;
    println!(
        "parallel-search guard  {name} b={buckets}: serial {serial_us:.0}us, \
         parallel({GUARD_THREADS}) {parallel_us:.0}us, {speedup:.2}x, evals={}",
        serial.stats.evals
    );
    json!({
        "workload": name,
        "buckets": buckets,
        "serial_us": serial_us,
        "parallel_us": parallel_us,
        "threads": GUARD_THREADS,
        "speedup": speedup,
        "evals_serial": serial.stats.evals,
        "evals_parallel": parallel.stats.evals,
        "cache_hits_serial": serial.stats.cache_hits,
        "cache_hits_parallel": parallel.stats.cache_hits,
    })
}

fn bench_parallel_search(c: &mut Criterion) {
    let chain8 = scaling_chain(8);
    let star10 = scaling_star(10);
    let cores = host_threads();
    let guard_enforced = cores >= GUARD_THREADS;

    let mut rows = Vec::new();
    for (name, (catalog, query)) in [("eight_chain", &chain8), ("ten_star", &star10)] {
        for buckets in [4usize, 16, 64] {
            rows.push(guard_row(name, catalog, query, buckets));
        }
    }

    // The wall-time regression guard: with ≥ 4 real cores, parallel must
    // not lose to serial on the 8-table chain at 16 buckets.  On smaller
    // hosts the threads time-slice one core and a "speedup" would be
    // fiction, so only the counter identities above are enforced there.
    // The 10% headroom absorbs scheduler noise on shared CI runners — a
    // real lock-contention regression costs far more than that.
    if guard_enforced {
        let row = rows
            .iter()
            .find(|r| r["workload"] == "eight_chain" && r["buckets"].as_f64() == Some(16.0))
            .expect("guard workload row must exist");
        let (serial, parallel) = (
            row["serial_us"].as_f64().unwrap(),
            row["parallel_us"].as_f64().unwrap(),
        );
        assert!(
            parallel <= serial * 1.10,
            "lock-contention regression: parallel search at {GUARD_THREADS} threads \
             ({parallel:.0}us) is slower than serial ({serial:.0}us) on eight_chain b=16"
        );
    } else {
        println!(
            "parallel-search guard: host has {cores} core(s) < {GUARD_THREADS}; \
             wall-time guard skipped (counter identities still enforced)"
        );
    }

    // The headline target (ISSUE: >= 1.8x at threads=4 on eight_chain
    // b=16) is recorded next to the measurements so any multi-core
    // reader of this artifact can see at a glance whether the host met
    // it; the hard CI assertion stays the regression bound above, since
    // absolute speedups depend on the runner's real core count.
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_parallel_search.json");
    std::fs::write(
        out,
        serde_json::to_string_pretty(&json!({
            "bench": "parallel_search",
            "schema_version": lec_bench::BENCH_SCHEMA_VERSION,
            "host_cores": lec_bench::host_cores() as u64,
            "claim": "the level-fanout parallel DP engine returns byte-identical outcomes \
                      (plan, cost bits, evals, cache_hits) to the serial engine, and on \
                      multi-core hosts beats it on wall time",
            "host_threads": cores,
            "wall_time_guard_enforced": guard_enforced,
            "target_speedup_on_4_cores": 1.8,
            "rows": rows,
        }))
        .unwrap(),
    )
    .expect("write BENCH_parallel_search.json");

    // Criterion timing groups for the flagship workload, so `cargo bench`
    // history tracks both engines.
    let memory = lec_prob::presets::spread_family(400.0, 0.8, 16).unwrap();
    let mut group = c.benchmark_group("parallel_search");
    group.sample_size(10);
    for (label, config) in [
        ("eight_chain_serial", SearchConfig::serial()),
        (
            "eight_chain_threads4",
            SearchConfig {
                threads: GUARD_THREADS,
                fanout_threshold: 1,
                ..Default::default()
            },
        ),
    ] {
        group.bench_function(label, |bench| {
            bench.iter(|| {
                let model = CostModel::new(&chain8.0, &chain8.1);
                black_box(
                    optimize_lec_static_with(&model, black_box(&memory), &config)
                        .unwrap()
                        .cost,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_search);
criterion_main!(benches);
