//! The per-mode calibration registry: every optimizer mode's chosen plans
//! audited end to end against measured page I/O through the physical-twin
//! observatory (`lec_exec::calib`).
//!
//! Three guards, each failing the run:
//!
//! 1. **Decomposition**: for every audit, the summed per-node predictions
//!    must agree with the whole-plan prediction to float-summation noise
//!    (`node_consistency_rel ≤ 1e-9`) — the per-node trace *is* the cost
//!    model, not an approximation of it.
//! 2. **Error bands**: each optimizer mode's worst relative error of
//!    expected-predicted vs expected-measured cost, over the workload
//!    suite, must stay inside its pinned band ([`MODE_BANDS`]).  The
//!    suite is fully deterministic, so a band exit means the model, an
//!    operator, or the twin construction drifted.
//! 3. **Telemetry**: the shared `Telemetry` must have seen every node's
//!    prediction error in the per-operator-class calibration histograms,
//!    and the mirrored cumulative I/O counters must be non-zero.
//!
//! The registry lands in `BENCH_calibration.json` (schema-stamped) for
//! the CI artifact diff.

use criterion::{criterion_group, criterion_main, Criterion};
use lec_core::{fixtures, Mode, Optimizer, PointEstimate};
use lec_exec::{CalibConfig, Calibrator, Environment};
use lec_prob::{Distribution, MarkovChain};
use lec_telemetry::{OpClass, Telemetry};
use serde_json::{json, Value};
use std::hint::black_box;

/// Memory states every audit runs at: integral page budgets spanning the
/// twin's operating regimes (deep spills at 4 pages through mostly-fitting
/// joins at 16, against tables of at most 32 pages).
const STATES: [f64; 3] = [4.0, 8.0, 16.0];

/// Largest tolerated per-mode relative error |predicted − measured| /
/// measured of the environment expectations, over the whole workload
/// suite.  Pinned from the deterministic suite with ~30% headroom; the
/// dominant residual is the model's simplified join constants (`2(a+b)`
/// for a fitting join vs one measured pass), not noise.
fn mode_bands() -> Vec<(&'static str, Mode, f64)> {
    let chain = MarkovChain::birth_death(STATES.to_vec(), 0.3, 0.3).unwrap();
    vec![
        ("lsc_mean", Mode::Lsc(PointEstimate::Mean), 0.55),
        ("lsc_mode", Mode::Lsc(PointEstimate::Mode), 0.55),
        ("alg_a", Mode::AlgorithmA, 0.55),
        ("alg_b_c3", Mode::AlgorithmB { c: 3 }, 0.55),
        ("alg_c", Mode::AlgorithmC, 0.55),
        ("alg_c_dyn", Mode::AlgorithmCDynamic { chain }, 0.6),
        (
            "alg_d",
            Mode::AlgorithmD {
                config: lec_core::AlgDConfig::default(),
            },
            0.55,
        ),
        ("bushy", Mode::Bushy, 0.55),
    ]
}

/// The audited workloads: the paper's fixtures plus generated chain/star
/// queries (tree topologies only — the twin rejects cross products).
fn workload_suite() -> Vec<(String, lec_bench::workloads::Workload)> {
    let mut out = Vec::new();
    let (cat, q) = fixtures::example_1_1();
    out.push((
        "example_1_1".to_string(),
        lec_bench::workloads::Workload {
            catalog: cat,
            query: q,
        },
    ));
    let (cat, q) = fixtures::three_chain();
    out.push((
        "three_chain".to_string(),
        lec_bench::workloads::Workload {
            catalog: cat,
            query: q,
        },
    ));
    let (cat, q) = fixtures::pruning_star(4);
    out.push((
        "pruning_star_4".to_string(),
        lec_bench::workloads::Workload {
            catalog: cat,
            query: q,
        },
    ));
    for (i, w) in lec_bench::workloads::batch(0xB0, 5, 4, 1)
        .into_iter()
        .enumerate()
    {
        // batch() rotates Chain/Star/Random; only the tree topologies are
        // executable without cross products.
        if i % 3 < 2 {
            let topo = if i % 3 == 0 { "chain" } else { "star" };
            out.push((format!("batch_{topo}_{i}"), w));
        }
    }
    out
}

fn bench_calibration(c: &mut Criterion) {
    let memory =
        Distribution::from_pairs(STATES.iter().map(|&m| (m, 1.0 / STATES.len() as f64))).unwrap();
    let static_env = Environment::Static(memory.clone());
    let tel = Telemetry::on();
    let suite = workload_suite();
    let calibrators: Vec<(&String, Calibrator)> = suite
        .iter()
        .map(|(name, w)| {
            (
                name,
                Calibrator::new(&w.catalog, &w.query, CalibConfig::default()),
            )
        })
        .collect();

    let mut mode_records: Vec<(String, Value)> = Vec::new();
    let mut worst_consistency = 0.0f64;
    for (key, mode, band) in mode_bands() {
        let env = match &mode {
            Mode::AlgorithmCDynamic { chain } => Environment::Dynamic {
                initial: Distribution::point(8.0),
                chain: chain.clone(),
            },
            _ => static_env.clone(),
        };
        let mut max_rel = 0.0f64;
        let mut sum_rel = 0.0f64;
        let mut per_workload: Vec<Value> = Vec::new();
        for (wname, cal) in &calibrators {
            let optimized = Optimizer::new(&cal.twin().catalog, memory.clone())
                .optimize(&cal.twin().query, &mode)
                .unwrap_or_else(|e| panic!("{key}/{wname}: optimize failed: {e}"));
            let audit = cal
                .audit(&optimized.plan, &env, Some(&tel))
                .unwrap_or_else(|e| panic!("{key}/{wname}: audit failed: {e}"));
            assert!(
                audit.node_consistency_rel <= 1e-9,
                "{key}/{wname}: per-node predictions disagree with the whole-plan \
                 prediction by {} (plan {})",
                audit.node_consistency_rel,
                audit.plan
            );
            worst_consistency = worst_consistency.max(audit.node_consistency_rel);
            let rel = audit.relative_error();
            max_rel = max_rel.max(rel);
            sum_rel += rel;
            per_workload.push(json!({
                "measured_expected": audit.measured_expected,
                "plan": audit.plan.clone(),
                "predicted_expected": audit.predicted_expected,
                "relative_error": rel,
                "sim_mean": audit.sim.mean,
                "workload": wname.as_str(),
            }));
        }
        let mean_rel = sum_rel / calibrators.len() as f64;
        assert!(
            max_rel <= band,
            "calibration regression: mode {key} worst relative error {max_rel:.3} \
             exceeds its pinned band {band}"
        );
        println!(
            "calibration  {key:<10} max rel err {max_rel:.3} (mean {mean_rel:.3}, band {band})"
        );
        mode_records.push((
            key.to_string(),
            json!({
                "audits": per_workload.len() as u64,
                "band": band,
                "max_relative_error": max_rel,
                "mean_relative_error": mean_rel,
                "mode": mode.name(),
                "workloads": Value::Array(per_workload),
            }),
        ));
    }

    // Telemetry guard: every audited node fed a calibration histogram, and
    // the operators' page I/O mirrored into the cumulative counters.
    let hist_counts: Vec<(String, Value)> = OpClass::all()
        .iter()
        .map(|&cl| {
            (
                cl.name().to_string(),
                Value::from(tel.calibration_snapshot(cl).count() as f64),
            )
        })
        .collect();
    let total_samples: f64 = hist_counts
        .iter()
        .map(|(_, v)| match v {
            Value::Number(n) => *n,
            _ => 0.0,
        })
        .sum();
    assert!(
        total_samples > 0.0,
        "no calibration errors reached the telemetry histograms"
    );
    assert!(
        tel.io().reads() > 0,
        "no page I/O mirrored into the cumulative counters"
    );

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    std::fs::write(
        root.join("BENCH_calibration.json"),
        serde_json::to_string_pretty(
            &json!({
                "bench": "calibration",
                "schema_version": lec_bench::BENCH_SCHEMA_VERSION,
                "host_cores": lec_bench::host_cores() as u64,
                "claim": "every optimizer mode's expected predicted cost lands within its \
                          pinned relative-error band of the expected measured page I/O on \
                          the physical twin, and per-node predictions sum exactly to the \
                          whole-plan prediction",
                "memory_states": Value::Array(STATES.iter().map(|&m| Value::from(m)).collect()),
                "workloads": suite.len() as u64,
                "node_consistency_max": worst_consistency,
                "calibration_samples": Value::Object(hist_counts),
                "io_totals": tel.io().to_json(),
                "modes": Value::Object(mode_records),
            })
            .sorted(),
        )
        .unwrap(),
    )
    .expect("write BENCH_calibration.json");

    // Criterion history: one full audit (optimize + execute at every
    // bucket + Monte-Carlo) of the three-table chain under Algorithm C.
    let cal = &calibrators[1].1;
    let optimized = Optimizer::new(&cal.twin().catalog, memory.clone())
        .optimize(&cal.twin().query, &Mode::AlgorithmC)
        .unwrap();
    let mut group = c.benchmark_group("calibration");
    group.sample_size(20);
    group.bench_function("audit_three_chain_alg_c", |b| {
        b.iter(|| {
            black_box(
                cal.audit(black_box(&optimized.plan), &static_env, None)
                    .unwrap()
                    .measured_expected,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_calibration);
criterion_main!(benches);
