//! Criterion bench for E4: optimizer wall time vs bucket count `b` and
//! query size `n` — the paper's "factor b" overhead claim (Theorem 3.2,
//! Contribution 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lec_bench::workloads::scaling_chain;
use lec_core::fixtures::{pruning_chain, pruning_clique, pruning_star};
use lec_core::{optimize_lec_static, optimize_lec_static_with, optimize_lsc, SearchConfig};
use lec_cost::CostModel;
use lec_prob::presets;
use std::hint::black_box;

fn bench_buckets(c: &mut Criterion) {
    let w = scaling_chain(6);
    let model = CostModel::new(&w.catalog, &w.query);
    let mut group = c.benchmark_group("optimizer_vs_buckets");
    group.sample_size(20);
    group.bench_function("lsc_point", |bench| {
        bench.iter(|| black_box(optimize_lsc(&model, black_box(400.0)).unwrap().cost))
    });
    for b in [1usize, 4, 16, 64] {
        let memory = presets::spread_family(400.0, 0.8, b).unwrap();
        group.bench_with_input(BenchmarkId::new("alg_c", b), &b, |bench, _| {
            bench.iter(|| {
                black_box(
                    optimize_lec_static(&model, black_box(&memory))
                        .unwrap()
                        .cost,
                )
            })
        });
    }
    group.finish();
}

fn bench_tables(c: &mut Criterion) {
    let memory = presets::spread_family(400.0, 0.8, 8).unwrap();
    let mut group = c.benchmark_group("optimizer_vs_tables");
    group.sample_size(15);
    for n in [4usize, 6, 8, 10] {
        let w = scaling_chain(n);
        group.bench_with_input(BenchmarkId::new("alg_c_b8", n), &n, |bench, _| {
            let model = CostModel::new(&w.catalog, &w.query);
            bench.iter(|| {
                black_box(
                    optimize_lec_static(&model, black_box(&memory))
                        .unwrap()
                        .cost,
                )
            })
        });
    }
    group.finish();
}

/// Above 10 tables only the pruned search runs: branch-and-bound keep-best
/// on the 12-, 15- and 18-table chain/star pruning fixtures plus the
/// 12-table clique (every subset connected — the bound tiers alone carry
/// the search).
fn bench_large_tables(c: &mut Criterion) {
    let memory = presets::spread_family(400.0, 0.5, 4).unwrap();
    let pruned = SearchConfig::default().with_pruning(true);
    let mut group = c.benchmark_group("optimizer_vs_tables_pruned");
    group.sample_size(10);
    for n in [12usize, 15, 18] {
        for (name, fixture) in [("chain", pruning_chain(n)), ("star", pruning_star(n))] {
            group.bench_with_input(
                BenchmarkId::new(format!("alg_c_pruned_{name}"), n),
                &n,
                |bench, _| {
                    let model = CostModel::new(&fixture.0, &fixture.1);
                    bench.iter(|| {
                        black_box(
                            optimize_lec_static_with(&model, black_box(&memory), &pruned)
                                .unwrap()
                                .cost,
                        )
                    })
                },
            );
        }
    }
    let clique = pruning_clique(12);
    group.bench_with_input(
        BenchmarkId::new("alg_c_pruned_clique", 12),
        &12usize,
        |bench, _| {
            let model = CostModel::new(&clique.0, &clique.1);
            bench.iter(|| {
                black_box(
                    optimize_lec_static_with(&model, black_box(&memory), &pruned)
                        .unwrap()
                        .cost,
                )
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_buckets, bench_tables, bench_large_tables);
criterion_main!(benches);
