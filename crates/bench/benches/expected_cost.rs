//! Criterion bench for E6: the §3.6.1/§3.6.2 streaming expected-cost
//! algorithms vs the defining triple sum, across bucket counts — plus the
//! eval-cache guard: Algorithm C's `SearchStats.evals` with the memoized
//! cost-evaluation cache on vs off, on the paper's `three_chain` fixture
//! and the 8-table scaling chain.  The guard both times the two
//! configurations and writes the counter comparison to
//! `BENCH_eval_cache.json` so the memoization win is recorded, not just
//! printed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lec_cost::expected::{naive_expected_join_cost, streaming_expected_join_cost};
use lec_cost::CostModel;
use lec_plan::JoinMethod;
use lec_prob::{Distribution, PrefixTables};
use rand::{Rng, SeedableRng};
use serde_json::json;
use std::hint::black_box;

fn dist(rng: &mut impl Rng, b: usize, lo: f64, hi: f64) -> Distribution {
    Distribution::from_pairs((0..b).map(|_| (rng.gen_range(lo..hi), rng.gen_range(0.05..1.0))))
        .unwrap()
}

fn bench_expected_cost(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let mut group = c.benchmark_group("expected_join_cost");
    group.sample_size(30);
    for b in [8usize, 32, 128] {
        let a = dist(&mut rng, b, 1.0, 1e6);
        let bd = dist(&mut rng, b, 1.0, 1e6);
        let m = dist(&mut rng, b, 2.0, 5e3);
        group.bench_with_input(BenchmarkId::new("naive_sm", b), &b, |bench, _| {
            bench.iter(|| {
                black_box(naive_expected_join_cost(
                    JoinMethod::SortMerge,
                    black_box(&a),
                    black_box(&bd),
                    black_box(&m),
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("streaming_sm", b), &b, |bench, _| {
            let mt = PrefixTables::new(&m);
            bench.iter(|| {
                black_box(
                    streaming_expected_join_cost(
                        JoinMethod::SortMerge,
                        black_box(&a),
                        black_box(&bd),
                        black_box(&mt),
                    )
                    .unwrap(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("streaming_nl", b), &b, |bench, _| {
            let mt = PrefixTables::new(&m);
            bench.iter(|| {
                black_box(
                    streaming_expected_join_cost(
                        JoinMethod::PageNestedLoop,
                        black_box(&a),
                        black_box(&bd),
                        black_box(&mt),
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

/// One (fixture, buckets) row of the eval-cache guard.
fn eval_cache_row(
    name: &str,
    catalog: &lec_catalog::Catalog,
    query: &lec_plan::Query,
    buckets: usize,
) -> serde_json::Value {
    let memory = lec_prob::presets::spread_family(400.0, 0.8, buckets).unwrap();
    let cached_model = CostModel::new(catalog, query);
    let cached = lec_core::optimize_lec_static(&cached_model, &memory).unwrap();
    let raw_model = CostModel::new(catalog, query);
    raw_model.set_eval_cache(false);
    let raw = lec_core::optimize_lec_static(&raw_model, &memory).unwrap();
    assert_eq!(cached.plan, raw.plan, "{name}: cache changed the plan");
    assert_eq!(cached.cost, raw.cost, "{name}: cache changed the cost");
    assert!(
        cached.stats.evals < raw.stats.evals,
        "{name}: cache must strictly reduce evals ({} vs {})",
        cached.stats.evals,
        raw.stats.evals
    );
    println!(
        "eval-cache guard  {name} b={buckets}: evals {} -> {} ({:.1}% saved, {} hits)",
        raw.stats.evals,
        cached.stats.evals,
        100.0 * (1.0 - cached.stats.evals as f64 / raw.stats.evals as f64),
        cached.stats.cache_hits,
    );
    json!({
        "workload": name,
        "buckets": buckets,
        "evals_cache_off": raw.stats.evals,
        "evals_cache_on": cached.stats.evals,
        "cache_hits": cached.stats.cache_hits,
        "saved_fraction": 1.0 - cached.stats.evals as f64 / raw.stats.evals as f64,
    })
}

/// The eval-cache guard: times Algorithm C with the cache on vs off and
/// records the `SearchStats.evals` reduction in `BENCH_eval_cache.json`.
fn bench_alg_c_eval_cache(c: &mut Criterion) {
    let three = lec_core::fixtures::three_chain();
    let eight = lec_core::fixtures::scaling_chain(8);
    let mut rows = Vec::new();
    for (name, (catalog, query)) in [("three_chain", &three), ("eight_chain", &eight)] {
        for buckets in [4usize, 16] {
            rows.push(eval_cache_row(name, catalog, query, buckets));
        }
    }
    // Anchor at the workspace root regardless of the bench's CWD.
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_eval_cache.json");
    std::fs::write(
        out,
        serde_json::to_string_pretty(&json!({
            "bench": "alg_c_eval_cache",
            "schema_version": lec_bench::BENCH_SCHEMA_VERSION,
            "host_cores": lec_bench::host_cores() as u64,
            "claim": "SearchStats.evals for Algorithm C is strictly lower with the cost-eval cache than with it disabled",
            "rows": rows,
        }))
        .unwrap(),
    )
    .expect("write BENCH_eval_cache.json");

    let memory = lec_prob::presets::spread_family(400.0, 0.8, 16).unwrap();
    let mut group = c.benchmark_group("alg_c_eval_cache");
    group.sample_size(10);
    for (cache_on, label) in [
        (true, "eight_chain_cache_on"),
        (false, "eight_chain_cache_off"),
    ] {
        group.bench_function(label, |bench| {
            let model = CostModel::new(&eight.0, &eight.1);
            model.set_eval_cache(cache_on);
            bench.iter(|| {
                black_box(
                    lec_core::optimize_lec_static(&model, black_box(&memory))
                        .unwrap()
                        .cost,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_expected_cost, bench_alg_c_eval_cache);
criterion_main!(benches);
