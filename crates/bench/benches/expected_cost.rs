//! Criterion bench for E6: the §3.6.1/§3.6.2 streaming expected-cost
//! algorithms vs the defining triple sum, across bucket counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lec_cost::expected::{naive_expected_join_cost, streaming_expected_join_cost};
use lec_plan::JoinMethod;
use lec_prob::{Distribution, PrefixTables};
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn dist(rng: &mut impl Rng, b: usize, lo: f64, hi: f64) -> Distribution {
    Distribution::from_pairs((0..b).map(|_| (rng.gen_range(lo..hi), rng.gen_range(0.05..1.0))))
        .unwrap()
}

fn bench_expected_cost(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let mut group = c.benchmark_group("expected_join_cost");
    group.sample_size(30);
    for b in [8usize, 32, 128] {
        let a = dist(&mut rng, b, 1.0, 1e6);
        let bd = dist(&mut rng, b, 1.0, 1e6);
        let m = dist(&mut rng, b, 2.0, 5e3);
        group.bench_with_input(BenchmarkId::new("naive_sm", b), &b, |bench, _| {
            bench.iter(|| {
                black_box(naive_expected_join_cost(
                    JoinMethod::SortMerge,
                    black_box(&a),
                    black_box(&bd),
                    black_box(&m),
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("streaming_sm", b), &b, |bench, _| {
            let mt = PrefixTables::new(&m);
            bench.iter(|| {
                black_box(
                    streaming_expected_join_cost(
                        JoinMethod::SortMerge,
                        black_box(&a),
                        black_box(&bd),
                        black_box(&mt),
                    )
                    .unwrap(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("streaming_nl", b), &b, |bench, _| {
            let mt = PrefixTables::new(&m);
            bench.iter(|| {
                black_box(
                    streaming_expected_join_cost(
                        JoinMethod::PageNestedLoop,
                        black_box(&a),
                        black_box(&bd),
                        black_box(&mt),
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_expected_cost);
criterion_main!(benches);
