//! Synthetic data generation for the tuple executor.
//!
//! Semantics are fixed so that queries are *executable*, not just costable:
//!
//! * column `c` of a table holds integers uniform in `[0, domain_c)`;
//! * columns joined by a predicate share a common domain (so joins match);
//! * a local predicate with selectivity `σ` means `value < ⌈σ·domain⌉` —
//!   the generated data then honors the cataloged selectivity in
//!   expectation.

use lec_catalog::Catalog;
use lec_plan::{ColumnEquivalences, ColumnRef, Query};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One generated row.
pub type Row = Vec<i64>;

/// Generated base-table rows for one query, indexed by query-table
/// position.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Rows per query table.
    pub tables: Vec<Vec<Row>>,
    /// Column domains per query table (needed to resolve filters).
    pub domains: Vec<Vec<i64>>,
}

/// Domain shared by all join-equated columns.  Small enough that joins hit.
/// Public because the calibration twin ([`crate::calib`]) rewrites join
/// selectivities to the exact page-level value this domain induces.
pub const JOIN_DOMAIN: i64 = 16;
/// Domain for plain columns.
pub const PLAIN_DOMAIN: i64 = 40;

/// Generate a dataset for `query`, capping each table at `max_rows` rows.
pub fn generate(catalog: &Catalog, query: &Query, max_rows: usize, seed: u64) -> Dataset {
    let eq = ColumnEquivalences::for_query(query);
    // A column participates in a join iff its equivalence class is shared
    // with some other column mentioned in a predicate.
    let is_join_col = |c: ColumnRef| {
        query
            .joins
            .iter()
            .any(|p| eq.same_class(p.left, c) || eq.same_class(p.right, c))
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tables = Vec::with_capacity(query.n_tables());
    let mut domains = Vec::with_capacity(query.n_tables());
    for (t_idx, qt) in query.tables.iter().enumerate() {
        let stats = &catalog.table(qt.table).stats;
        let n_cols = stats.columns.len();
        let col_domains: Vec<i64> = (0..n_cols)
            .map(|c| {
                if is_join_col(ColumnRef::new(t_idx, c)) {
                    JOIN_DOMAIN
                } else {
                    PLAIN_DOMAIN.min(stats.columns[c].distinct.max(2) as i64)
                }
            })
            .collect();
        let n_rows = (stats.rows as usize).min(max_rows).max(1);
        let rows: Vec<Row> = (0..n_rows)
            .map(|_| col_domains.iter().map(|&d| rng.gen_range(0..d)).collect())
            .collect();
        tables.push(rows);
        domains.push(col_domains);
    }
    Dataset { tables, domains }
}

/// The filter threshold for a local predicate: `value < threshold` keeps a
/// `σ` fraction of the domain (σ taken at its mean).
pub fn filter_threshold(dataset: &Dataset, query: &Query, table_idx: usize) -> Option<i64> {
    let f = query.tables[table_idx].filter.as_ref()?;
    let domain = dataset.domains[table_idx][f.column];
    let sel = f.selectivity.mean();
    Some(((sel * domain as f64).ceil() as i64).clamp(1, domain))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lec_catalog::{CatalogGenerator, TableId};
    use lec_plan::{QueryProfile, WorkloadGenerator};
    use lec_prob::Distribution;

    fn setup() -> (Catalog, Query) {
        let mut g = CatalogGenerator::new(3);
        let cat = g.generate(4);
        let ids: Vec<TableId> = cat.ids().collect();
        let mut wg = WorkloadGenerator::new(5);
        let q = wg.gen_query(&cat, &ids[..3], &QueryProfile::default());
        (cat, q)
    }

    #[test]
    fn generation_is_deterministic_and_capped() {
        let (cat, q) = setup();
        let d1 = generate(&cat, &q, 50, 7);
        let d2 = generate(&cat, &q, 50, 7);
        assert_eq!(d1.tables, d2.tables);
        for t in &d1.tables {
            assert!(t.len() <= 50 && !t.is_empty());
        }
    }

    #[test]
    fn join_columns_share_small_domains() {
        let (cat, q) = setup();
        let d = generate(&cat, &q, 100, 1);
        for p in &q.joins {
            assert_eq!(d.domains[p.left.table][p.left.column], JOIN_DOMAIN);
            assert_eq!(d.domains[p.right.table][p.right.column], JOIN_DOMAIN);
        }
    }

    #[test]
    fn values_respect_domains() {
        let (cat, q) = setup();
        let d = generate(&cat, &q, 80, 2);
        for (t, rows) in d.tables.iter().enumerate() {
            for row in rows {
                for (c, &v) in row.iter().enumerate() {
                    assert!(v >= 0 && v < d.domains[t][c]);
                }
            }
        }
    }

    #[test]
    fn filter_thresholds_track_selectivity() {
        let mut cat = Catalog::new();
        use lec_catalog::{ColumnStats, TableStats};
        let a = cat.add_table(
            "A",
            TableStats::new(10, 100, vec![ColumnStats::plain("c", 40)]),
        );
        let b = cat.add_table(
            "B",
            TableStats::new(10, 100, vec![ColumnStats::plain("c", 40)]),
        );
        let q = Query {
            tables: vec![
                lec_plan::QueryTable::filtered(a, 0, Distribution::point(0.25)),
                lec_plan::QueryTable::bare(b),
            ],
            joins: vec![lec_plan::JoinPredicate::exact(
                ColumnRef::new(0, 0),
                ColumnRef::new(1, 0),
                1e-3,
            )],
            required_order: None,
        };
        let d = generate(&cat, &q, 50, 3);
        // Column 0 of table 0 is a join column → domain 16; threshold = 4.
        assert_eq!(filter_threshold(&d, &q, 0), Some(4));
        assert_eq!(filter_threshold(&d, &q, 1), None);
    }
}
