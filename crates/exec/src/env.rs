//! Execution environments: where the run-time memory values come from.
//!
//! The optimizer *believes* a distribution; the environment *produces*
//! actual memory values for each execution phase.  Keeping the two separate
//! lets experiments measure what happens when beliefs are right, coarse, or
//! plain wrong.

use lec_prob::{Distribution, MarkovChain, ProbError};
use rand::Rng;

/// A source of per-phase memory values for simulated executions.
#[derive(Debug, Clone)]
pub enum Environment {
    /// Memory is drawn once per execution and stays constant across phases
    /// (the paper's static assumption).
    Static(Distribution),
    /// Memory starts from a distribution and moves between phases
    /// according to a Markov chain (§3.5).
    Dynamic {
        /// Distribution of the phase-0 memory (support ⊆ chain states).
        initial: Distribution,
        /// The transition model.
        chain: MarkovChain,
    },
}

impl Environment {
    /// The marginal distribution of the memory in phase 0.
    pub fn initial_distribution(&self) -> &Distribution {
        match self {
            Environment::Static(d) => d,
            Environment::Dynamic { initial, .. } => initial,
        }
    }

    /// Sample the memory values seen by one execution of `n_phases` phases.
    pub fn sample_trace<R: Rng + ?Sized>(
        &self,
        n_phases: usize,
        rng: &mut R,
    ) -> Result<Vec<f64>, ProbError> {
        match self {
            Environment::Static(d) => {
                let m = d.sample(rng);
                Ok(vec![m; n_phases.max(1)])
            }
            Environment::Dynamic { initial, chain } => {
                let init_probs = chain.dist_to_probs(initial)?;
                Ok(chain.sample_path(&init_probs, n_phases.max(1), rng))
            }
        }
    }

    /// The exact per-phase marginal distributions (for analytic checks).
    pub fn phase_distributions(&self, n_phases: usize) -> Result<Vec<Distribution>, ProbError> {
        match self {
            Environment::Static(d) => Ok(vec![d.clone(); n_phases.max(1)]),
            Environment::Dynamic { initial, chain } => {
                let mut out = Vec::with_capacity(n_phases.max(1));
                let mut cur = initial.clone();
                for _ in 0..n_phases.max(1) {
                    out.push(cur.clone());
                    cur = chain.evolve_dist(&cur)?;
                }
                Ok(out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn static_traces_are_constant() {
        let env = Environment::Static(Distribution::bimodal(700.0, 2000.0, 0.8).unwrap());
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let t = env.sample_trace(4, &mut rng).unwrap();
            assert_eq!(t.len(), 4);
            assert!(t.windows(2).all(|w| w[0] == w[1]));
        }
    }

    #[test]
    fn dynamic_traces_follow_the_chain_support() {
        let chain = MarkovChain::birth_death(vec![100.0, 200.0, 400.0], 0.4, 0.4).unwrap();
        let env = Environment::Dynamic {
            initial: Distribution::point(200.0),
            chain: chain.clone(),
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut moved = false;
        for _ in 0..50 {
            let t = env.sample_trace(6, &mut rng).unwrap();
            assert_eq!(t.len(), 6);
            assert_eq!(t[0], 200.0);
            for m in &t {
                assert!(chain.states().contains(m));
            }
            moved |= t.windows(2).any(|w| w[0] != w[1]);
        }
        assert!(moved, "a mixing chain must actually move");
    }

    #[test]
    fn phase_distributions_evolve() {
        let chain = MarkovChain::new(
            vec![100.0, 400.0],
            vec![vec![0.0, 1.0], vec![0.0, 1.0]], // absorb at 400
        )
        .unwrap();
        let env = Environment::Dynamic {
            initial: Distribution::point(100.0),
            chain,
        };
        let dists = env.phase_distributions(3).unwrap();
        assert_eq!(dists[0].mean(), 100.0);
        assert_eq!(dists[1].mean(), 400.0);
        assert_eq!(dists[2].mean(), 400.0);
    }

    #[test]
    fn mismatched_initial_support_errors() {
        let chain = MarkovChain::identity(vec![100.0, 200.0]).unwrap();
        let env = Environment::Dynamic {
            initial: Distribution::point(123.0),
            chain,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        assert!(env.sample_trace(2, &mut rng).is_err());
    }
}
