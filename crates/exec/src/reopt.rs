//! A mid-query re-optimization baseline in the style of \[KD98\]
//! (Kabra & DeWitt), which the paper's §2.3 contrasts with the LEC
//! approach: "the way they deal with uncertainty is to wait until they
//! have more information."
//!
//! The reactive executor observes the *actual* memory at every phase
//! boundary, re-plans the entire remaining join optimally for that value
//! (assuming, as an LSC optimizer does, that it will persist), executes
//! one phase, and repeats.  This is an idealized reactive baseline —
//! re-planning is free and intermediate results are pipelined — so it
//! upper-bounds what \[KD98\]-style systems can achieve in this cost model,
//! making the comparison against Algorithm C conservative.
//!
//! Simplification: base accesses are costed at their cheapest access path
//! and order properties propagate as in the DP; queries with local filters
//! and index orders are supported but the reactive planner does not
//! speculate on order-carrying index paths.

use lec_cost::CostModel;
use lec_plan::{JoinMethod, OrderProperty, TableSet};
use lec_prob::MarkovChain;
use rand::Rng;

/// Outcome of one reactive execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReoptRun {
    /// Total charged cost.
    pub cost: f64,
    /// Number of phase boundaries where the committed move differed from
    /// the previously planned one.
    pub replans: usize,
}

/// Cheapest access path cost for a table.
fn best_access(model: &CostModel<'_>, idx: usize) -> f64 {
    model
        .access_paths(idx)
        .into_iter()
        .map(|p| model.access_cost(p, idx))
        .fold(f64::INFINITY, f64::min)
}

/// One step of the remaining-plan search: `(next table, method, estimated
/// completion cost)` assuming memory `m` persists.
struct Completion {
    next: usize,
    method: JoinMethod,
    est_cost: f64,
}

/// Exhaustive best completion of the join from state `(set, pages, order)`
/// at fixed memory `m`.  Returns `None` when `set` is the full set.
fn best_completion(
    model: &CostModel<'_>,
    set: TableSet,
    pages: f64,
    order: OrderProperty,
    m: f64,
) -> Option<Completion> {
    let query = model.query();
    let n = query.n_tables();
    if set.len() == n {
        return None;
    }
    let mut best: Option<Completion> = None;
    for j in 0..n {
        if set.contains(j) || !query.is_connected_to(set, j) {
            continue;
        }
        let inner_pages = model.base_pages(j);
        let sel = model.join_selectivity(set, j);
        for method in JoinMethod::ALL {
            let join_cost = model.join_cost(method, pages, inner_pages, m);
            let new_pages = model.join_output_pages(pages, inner_pages, sel);
            let new_order = join_order_after(model, set, order, j, method);
            let tail = completion_cost(model, set.with(j), new_pages, new_order, m);
            let est = best_access(model, j) + join_cost + tail;
            if best.as_ref().is_none_or(|b| est < b.est_cost) {
                best = Some(Completion {
                    next: j,
                    method,
                    est_cost: est,
                });
            }
        }
    }
    best
}

/// Cost of the best completion from a state (0 at the root, plus a final
/// sort if required).
fn completion_cost(
    model: &CostModel<'_>,
    set: TableSet,
    pages: f64,
    order: OrderProperty,
    m: f64,
) -> f64 {
    if set.len() == model.query().n_tables() {
        return match model.query().required_order {
            Some(want) if !model.equivalences().satisfies(order, want) => model.sort_cost(pages, m),
            _ => 0.0,
        };
    }
    match best_completion(model, set, pages, order, m) {
        Some(c) => c.est_cost,
        None => f64::INFINITY, // disconnected remainder (validated queries avoid this)
    }
}

fn join_order_after(
    model: &CostModel<'_>,
    set: TableSet,
    order: OrderProperty,
    j: usize,
    method: JoinMethod,
) -> OrderProperty {
    match method {
        JoinMethod::SortMerge => {
            let crossing = model.query().joins_connecting(set, j);
            match crossing.first() {
                Some(&i) => model.equivalences().sorted_on(model.query().joins[i].left),
                None => OrderProperty::None,
            }
        }
        JoinMethod::PageNestedLoop => order,
        JoinMethod::GraceHash | JoinMethod::BlockNestedLoop => OrderProperty::None,
    }
}

/// The best starting pair `(outer, inner, method)` at memory `m`.
fn best_start(model: &CostModel<'_>, m: f64) -> (usize, usize, JoinMethod, f64) {
    let query = model.query();
    let n = query.n_tables();
    let mut best: Option<(usize, usize, JoinMethod, f64)> = None;
    for outer in 0..n {
        let set = TableSet::singleton(outer);
        let Some(c) = best_completion(model, set, model.base_pages(outer), OrderProperty::None, m)
        else {
            continue;
        };
        let est = best_access(model, outer) + c.est_cost;
        if best.is_none_or(|(_, _, _, b)| est < b) {
            best = Some((outer, c.next, c.method, est));
        }
    }
    best.expect("validated queries have a connected start")
}

/// Execute the query reactively under a Markov memory environment.
///
/// `init_probs` is a dense probability vector over `chain` states for the
/// phase-0 memory.
pub fn run_reoptimizing<R: Rng + ?Sized>(
    model: &CostModel<'_>,
    chain: &MarkovChain,
    init_probs: &[f64],
    rng: &mut R,
) -> ReoptRun {
    let query = model.query();
    let n = query.n_tables();
    let mut state = chain.sample_state(init_probs, rng);
    let mut m = chain.states()[state];
    let mut total = 0.0;
    let mut replans = 0usize;

    // Phase 1: commit the best starting join for the observed memory.
    let (outer, inner, method, _) = best_start(model, m);
    total += best_access(model, outer) + best_access(model, inner);
    let sel = model.join_selectivity(TableSet::singleton(outer), inner);
    total += model.join_cost(method, model.base_pages(outer), model.base_pages(inner), m);
    let mut pages = model.join_output_pages(model.base_pages(outer), model.base_pages(inner), sel);
    let mut set = TableSet::singleton(outer).with(inner);
    let mut order = join_order_after(
        model,
        TableSet::singleton(outer),
        OrderProperty::None,
        inner,
        method,
    );
    // What we currently expect to do next (for replan counting).
    let mut planned_next = best_completion(model, set, pages, order, m).map(|c| (c.next, c.method));

    while set.len() < n {
        // Phase boundary: memory moves, we observe it and re-plan.
        state = chain.sample_state(chain.row(state), rng);
        m = chain.states()[state];
        let c =
            best_completion(model, set, pages, order, m).expect("connected query always completes");
        if planned_next != Some((c.next, c.method)) {
            replans += 1;
        }
        total += best_access(model, c.next);
        let inner_pages = model.base_pages(c.next);
        let sel = model.join_selectivity(set, c.next);
        total += model.join_cost(c.method, pages, inner_pages, m);
        order = join_order_after(model, set, order, c.next, c.method);
        pages = model.join_output_pages(pages, inner_pages, sel);
        set = set.with(c.next);
        planned_next = best_completion(model, set, pages, order, m).map(|x| (x.next, x.method));
    }

    // Final sort phase if needed (memory moves once more).
    if let Some(want) = query.required_order {
        if !model.equivalences().satisfies(order, want) {
            state = chain.sample_state(chain.row(state), rng);
            m = chain.states()[state];
            total += model.sort_cost(pages, m);
        }
    }
    ReoptRun {
        cost: total,
        replans,
    }
}

/// Average reactive execution cost over `runs` Monte-Carlo executions.
pub fn monte_carlo_reopt(
    model: &CostModel<'_>,
    chain: &MarkovChain,
    init_probs: &[f64],
    runs: usize,
    seed: u64,
) -> (f64, f64) {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut total = 0.0;
    let mut replans = 0usize;
    for _ in 0..runs {
        let r = run_reoptimizing(model, chain, init_probs, &mut rng);
        total += r.cost;
        replans += r.replans;
    }
    (total / runs as f64, replans as f64 / runs as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lec_core::fixtures::three_chain;
    use lec_prob::Distribution;
    use rand::SeedableRng;

    #[test]
    fn without_drift_reopt_equals_lsc() {
        // Identity chain: the reactive planner sees the same memory at
        // every boundary, so it executes exactly the LSC plan for it.
        let (cat, q) = three_chain();
        let model = lec_cost::CostModel::new(&cat, &q);
        for m in [60.0, 400.0, 2500.0] {
            let chain = MarkovChain::identity(vec![m]).unwrap();
            let mut rng = rand::rngs::StdRng::seed_from_u64(1);
            let run = run_reoptimizing(&model, &chain, &[1.0], &mut rng);
            let lsc = lec_core::optimize_lsc(&model, m).unwrap();
            assert!(
                (run.cost - lsc.cost).abs() / lsc.cost < 1e-9,
                "m={m}: reopt {} vs lsc {}",
                run.cost,
                lsc.cost
            );
            assert_eq!(run.replans, 0, "no drift, no replans");
        }
    }

    #[test]
    fn reopt_reacts_to_drift() {
        // A crash from plentiful to scarce memory: the reactive executor's
        // later phases must be costed at the scarce value.
        let (cat, q) = three_chain();
        let model = lec_cost::CostModel::new(&cat, &q);
        let chain = MarkovChain::new(
            vec![30.0, 3000.0],
            vec![vec![1.0, 0.0], vec![1.0, 0.0]], // absorb at 30 pages
        )
        .unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let run = run_reoptimizing(&model, &chain, &[0.0, 1.0], &mut rng);
        // Costs are monotone in memory, so the collapsed run can never
        // beat the all-memory-high optimum (and may equal it when later
        // phases are memory-insensitive).
        let high = lec_core::optimize_lsc(&model, 3000.0).unwrap();
        assert!(run.cost >= high.cost - 1e-9);
        // ... but react better than blindly running the high-memory plan
        // with its later phases at 30 pages.
        let dyn_ec_of_lsc = lec_cost::expected_plan_cost_dynamic(
            &model,
            &high.plan,
            &Distribution::point(3000.0),
            &chain,
        )
        .unwrap();
        assert!(
            run.cost <= dyn_ec_of_lsc + 1e-6,
            "reactive {} should not lose to frozen LSC {}",
            run.cost,
            dyn_ec_of_lsc
        );
    }

    #[test]
    fn monte_carlo_reopt_is_deterministic_per_seed() {
        let (cat, q) = three_chain();
        let model = lec_cost::CostModel::new(&cat, &q);
        let chain = MarkovChain::birth_death(vec![50.0, 200.0, 800.0], 0.3, 0.2).unwrap();
        let init = [0.0, 1.0, 0.0];
        let (a, ra) = monte_carlo_reopt(&model, &chain, &init, 200, 9);
        let (b, rb) = monte_carlo_reopt(&model, &chain, &init, 200, 9);
        assert_eq!(a, b);
        assert_eq!(ra, rb);
        assert!(a > 0.0);
    }
}
