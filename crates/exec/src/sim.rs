//! Monte-Carlo plan-cost simulation: the measurement half of the paper's
//! promised prototype ("to test its benefits against realistic queries and
//! execution environments", §4).
//!
//! A simulated execution samples one memory trace from the environment and
//! charges each phase of the plan its model cost at that phase's memory.
//! Averaging over many runs estimates the *true* average execution cost of
//! a plan in that environment — which is exactly what the LEC objective
//! claims to minimize and the LSC objective does not.

use crate::env::Environment;
use lec_cost::{phases, CostModel, Phase};
use lec_plan::PlanNode;
use lec_prob::ProbError;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Summary statistics of a Monte-Carlo run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimStats {
    /// Number of simulated executions.
    pub runs: usize,
    /// Mean cost.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum observed cost.
    pub min: f64,
    /// Maximum observed cost.
    pub max: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl SimStats {
    /// Relative error of a prediction against the simulated mean:
    /// `|predicted − mean| / mean`.  The calibration audit's headline
    /// number for the simulated side of the loop.
    pub fn relative_error(&self, predicted: f64) -> f64 {
        if self.mean == 0.0 {
            return if predicted == 0.0 { 0.0 } else { f64::INFINITY };
        }
        (predicted - self.mean).abs() / self.mean.abs()
    }
}

/// Cost of one execution given a concrete per-phase memory trace.
pub fn cost_with_trace(model: &CostModel<'_>, plan_phases: &[Phase], trace: &[f64]) -> f64 {
    plan_phases
        .iter()
        .enumerate()
        .map(|(i, p)| p.cost_at(model, trace[i.min(trace.len().saturating_sub(1))]))
        .sum()
}

/// Simulate `runs` executions of `plan` in `env` and summarize.
pub fn monte_carlo(
    model: &CostModel<'_>,
    plan: &PlanNode,
    env: &Environment,
    runs: usize,
    seed: u64,
) -> Result<SimStats, ProbError> {
    assert!(runs > 0, "need at least one run");
    let plan_phases = phases(model, plan);
    let n_phases = plan_phases.len().max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut costs = Vec::with_capacity(runs);
    for _ in 0..runs {
        let trace = env.sample_trace(n_phases, &mut rng)?;
        costs.push(cost_with_trace(model, &plan_phases, &trace));
    }
    Ok(summarize(costs))
}

fn summarize(mut costs: Vec<f64>) -> SimStats {
    costs.sort_by(f64::total_cmp);
    let runs = costs.len();
    let mean = costs.iter().sum::<f64>() / runs as f64;
    let var = if runs > 1 {
        costs.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / (runs - 1) as f64
    } else {
        0.0
    };
    let pct = |q: f64| costs[(((runs - 1) as f64) * q).round() as usize];
    SimStats {
        runs,
        mean,
        std_dev: var.sqrt(),
        min: costs[0],
        max: costs[runs - 1],
        p50: pct(0.5),
        p95: pct(0.95),
        p99: pct(0.99),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lec_core::fixtures::{example_1_1, example_1_1_memory};
    use lec_prob::{Distribution, MarkovChain};

    fn plan2(model: &CostModel<'_>) -> PlanNode {
        use lec_core::optimize_lec_static;
        optimize_lec_static(model, &example_1_1_memory())
            .unwrap()
            .plan
    }

    #[test]
    fn point_environment_reproduces_plan_cost() {
        let (cat, q) = example_1_1();
        let model = CostModel::new(&cat, &q);
        let plan = plan2(&model);
        let env = Environment::Static(Distribution::point(2000.0));
        let s = monte_carlo(&model, &plan, &env, 10, 1).unwrap();
        let direct = lec_cost::plan_cost_at(&model, &plan, 2000.0);
        assert_eq!(s.mean, direct);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, s.max);
    }

    #[test]
    fn static_monte_carlo_converges_to_expected_cost() {
        let (cat, q) = example_1_1();
        let model = CostModel::new(&cat, &q);
        let memory = example_1_1_memory();
        let env = Environment::Static(memory.clone());
        // Compare the *LSC* plan (whose cost varies with memory) so the
        // convergence is non-trivial.
        let lsc = lec_core::optimize_lsc(&model, 2000.0).unwrap().plan;
        let ec = lec_cost::expected_plan_cost_static(&model, &lsc, &memory);
        let s = monte_carlo(&model, &lsc, &env, 40_000, 7).unwrap();
        let rel = (s.mean - ec).abs() / ec;
        assert!(rel < 0.01, "MC mean {} vs EC {ec} (rel {rel})", s.mean);
        assert!(s.std_dev > 0.0);
    }

    #[test]
    fn dynamic_monte_carlo_converges_to_dynamic_expected_cost() {
        let (cat, q) = example_1_1();
        let model = CostModel::new(&cat, &q);
        let chain = MarkovChain::birth_death(vec![700.0, 2000.0], 0.3, 0.3).unwrap();
        let initial = Distribution::bimodal(700.0, 2000.0, 0.8).unwrap();
        let env = Environment::Dynamic {
            initial: initial.clone(),
            chain: chain.clone(),
        };
        let plan = plan2(&model);
        let ec = lec_cost::expected_plan_cost_dynamic(&model, &plan, &initial, &chain).unwrap();
        let s = monte_carlo(&model, &plan, &env, 40_000, 9).unwrap();
        let rel = (s.mean - ec).abs() / ec;
        assert!(rel < 0.01, "MC mean {} vs dyn EC {ec} (rel {rel})", s.mean);
    }

    #[test]
    fn percentiles_are_ordered() {
        let (cat, q) = example_1_1();
        let model = CostModel::new(&cat, &q);
        let env = Environment::Static(example_1_1_memory());
        let lsc = lec_core::optimize_lsc(&model, 2000.0).unwrap().plan;
        let s = monte_carlo(&model, &lsc, &env, 5000, 3).unwrap();
        assert!(s.min <= s.p50 && s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        assert!(s.runs == 5000);
    }

    #[test]
    fn single_run_quantiles_collapse_to_the_observation() {
        let (cat, q) = example_1_1();
        let model = CostModel::new(&cat, &q);
        let env = Environment::Static(Distribution::point(700.0));
        let plan = plan2(&model);
        let s = monte_carlo(&model, &plan, &env, 1, 5).unwrap();
        assert_eq!(s.runs, 1);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, s.max);
        assert_eq!(s.p50, s.min);
        assert_eq!(s.p95, s.min);
        assert_eq!(s.p99, s.min);
    }

    #[test]
    fn constant_trace_gives_degenerate_stats() {
        let (cat, q) = example_1_1();
        let model = CostModel::new(&cat, &q);
        let env = Environment::Static(Distribution::point(2000.0));
        let plan = plan2(&model);
        let s = monte_carlo(&model, &plan, &env, 100, 5).unwrap();
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, s.max);
        assert_eq!(s.p99, s.mean);
    }

    #[test]
    fn relative_error_edge_cases() {
        let (cat, q) = example_1_1();
        let model = CostModel::new(&cat, &q);
        let env = Environment::Static(Distribution::point(2000.0));
        let plan = plan2(&model);
        let s = monte_carlo(&model, &plan, &env, 10, 1).unwrap();
        assert_eq!(s.relative_error(s.mean), 0.0);
        assert!((s.relative_error(s.mean * 1.5) - 0.5).abs() < 1e-12);
        assert!((s.relative_error(s.mean * 0.5) - 0.5).abs() < 1e-12);
        let zero = SimStats {
            runs: 1,
            mean: 0.0,
            std_dev: 0.0,
            min: 0.0,
            max: 0.0,
            p50: 0.0,
            p95: 0.0,
            p99: 0.0,
        };
        assert_eq!(zero.relative_error(0.0), 0.0);
        assert!(zero.relative_error(1.0).is_infinite());
    }

    #[test]
    fn lec_plan_beats_lsc_plan_in_simulation() {
        // The paper's bottom line, measured: average simulated cost of the
        // LEC plan is lower than that of the LSC plan.
        let (cat, q) = example_1_1();
        let model = CostModel::new(&cat, &q);
        let memory = example_1_1_memory();
        let env = Environment::Static(memory.clone());
        let lsc = lec_core::optimize_lsc(&model, memory.mode()).unwrap().plan;
        let lec = lec_core::optimize_lec_static(&model, &memory).unwrap().plan;
        let s_lsc = monte_carlo(&model, &lsc, &env, 20_000, 11).unwrap();
        let s_lec = monte_carlo(&model, &lec, &env, 20_000, 11).unwrap();
        assert!(
            s_lec.mean < s_lsc.mean,
            "LEC {} !< LSC {}",
            s_lec.mean,
            s_lsc.mean
        );
    }
}
