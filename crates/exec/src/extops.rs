//! External-memory operators with real I/O accounting.
//!
//! These implement the algorithms behind the paper's cost formulas —
//! external merge sort, sort-merge join, Grace hash join \[Sha86\], and
//! block nested-loop — against [`crate::bufpool::DiskTable`]s under an
//! explicit buffer budget of `m` pages.  Their *measured* page I/O exhibits
//! the same memory cliffs (at `√size`, `∛size`, `size`) as the closed-form
//! model; experiment E11 overlays the two.
//!
//! Accounting convention: an operator's final output is pipelined to its
//! consumer, so output materialization is *not* charged — matching the
//! model, where e.g. a fitting sort costs exactly `R` (its input reads).

use crate::bufpool::{Disk, DiskTable, Row};
use std::collections::HashMap;

/// Result of one operator execution.
#[derive(Debug, Clone)]
pub struct OpResult {
    /// The (pipelined, uncharged) output rows.
    pub rows: Vec<Row>,
    /// Pages read + written during execution.
    pub io: u64,
}

/// Sorted runs: either a table small enough to sort in memory, or a set of
/// sorted on-disk runs awaiting merging.
enum RunSet {
    InMemory(Vec<Row>),
    OnDisk(Vec<DiskTable>),
}

fn key_of(row: &Row, col: usize) -> i64 {
    row[col]
}

/// Form initial sorted runs of `m` pages each; returns the run set.
/// Charges `R` reads always, plus `R` writes when runs must spill.
fn make_runs(disk: &mut Disk, input: &DiskTable, key: usize, m: usize, page_cap: usize) -> RunSet {
    let r = input.n_pages();
    if r <= m {
        let mut rows = disk.read_all(input);
        rows.sort_by_key(|row| key_of(row, key));
        return RunSet::InMemory(rows);
    }
    let mut runs = Vec::new();
    let mut i = 0;
    while i < r {
        let hi = (i + m).min(r);
        let mut rows: Vec<Row> = Vec::new();
        for p in i..hi {
            rows.extend(disk.read_page(input, p));
        }
        rows.sort_by_key(|row| key_of(row, key));
        runs.push(disk.write_rows(rows, page_cap));
        i = hi;
    }
    RunSet::OnDisk(runs)
}

/// Merge runs down until at most `fan_in` remain; each pass reads and
/// rewrites every page.
fn reduce_runs(
    disk: &mut Disk,
    mut runs: Vec<DiskTable>,
    key: usize,
    fan_in: usize,
    page_cap: usize,
) -> Vec<DiskTable> {
    let fan_in = fan_in.max(2);
    while runs.len() > fan_in {
        let mut next = Vec::new();
        for group in runs.chunks(fan_in) {
            let mut rows: Vec<Row> = Vec::new();
            for run in group {
                rows.extend(disk.read_all(run));
            }
            // A real merge is a k-way heap over page cursors; row-level
            // sorting here produces the identical output and I/O count.
            rows.sort_by_key(|row| key_of(row, key));
            next.push(disk.write_rows(rows, page_cap));
        }
        runs = next;
    }
    runs
}

/// Read out a run set as one sorted row stream (charges the reads of
/// on-disk runs; in-memory runs were already charged at formation).
fn drain_runs(disk: &mut Disk, runs: RunSet, key: usize) -> Vec<Row> {
    match runs {
        RunSet::InMemory(rows) => rows,
        RunSet::OnDisk(tables) => {
            let mut rows: Vec<Row> = Vec::new();
            for t in &tables {
                rows.extend(disk.read_all(t));
            }
            rows.sort_by_key(|row| key_of(row, key));
            rows
        }
    }
}

/// External merge sort of `input` on column `key` with `m` buffer pages.
pub fn external_sort(input: &DiskTable, key: usize, m: usize, page_cap: usize) -> OpResult {
    assert!(m >= 3, "external sort needs at least 3 buffer pages");
    let mut disk = Disk::new();
    let runs = make_runs(&mut disk, input, key, m, page_cap);
    let runs = match runs {
        RunSet::OnDisk(tables) => {
            RunSet::OnDisk(reduce_runs(&mut disk, tables, key, m - 1, page_cap))
        }
        in_mem => in_mem,
    };
    let rows = drain_runs(&mut disk, runs, key);
    OpResult {
        rows,
        io: disk.io().total(),
    }
}

/// Sort-merge join: sort both inputs (sharing the buffer budget as the
/// formulas assume), then merge-join the final run sets.
pub fn sort_merge_join(
    a: &DiskTable,
    b: &DiskTable,
    a_key: usize,
    b_key: usize,
    m: usize,
    page_cap: usize,
) -> OpResult {
    assert!(m >= 3, "sort-merge join needs at least 3 buffer pages");
    let mut disk = Disk::new();
    let runs_a = make_runs(&mut disk, a, a_key, m, page_cap);
    let runs_a = match runs_a {
        RunSet::OnDisk(t) => RunSet::OnDisk(reduce_runs(&mut disk, t, a_key, m - 1, page_cap)),
        x => x,
    };
    let runs_b = make_runs(&mut disk, b, b_key, m, page_cap);
    let runs_b = match runs_b {
        RunSet::OnDisk(t) => RunSet::OnDisk(reduce_runs(&mut disk, t, b_key, m - 1, page_cap)),
        x => x,
    };
    let left = drain_runs(&mut disk, runs_a, a_key);
    let right = drain_runs(&mut disk, runs_b, b_key);
    let rows = merge_join_sorted(&left, &right, a_key, b_key);
    OpResult {
        rows,
        io: disk.io().total(),
    }
}

/// Merge two sorted row sets on their keys (all matching pairs).
fn merge_join_sorted(left: &[Row], right: &[Row], a_key: usize, b_key: usize) -> Vec<Row> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < left.len() && j < right.len() {
        let ka = key_of(&left[i], a_key);
        let kb = key_of(&right[j], b_key);
        if ka < kb {
            i += 1;
        } else if ka > kb {
            j += 1;
        } else {
            // Emit the cross product of the equal-key groups.
            let i_end = left[i..]
                .iter()
                .take_while(|r| key_of(r, a_key) == ka)
                .count()
                + i;
            let j_end = right[j..]
                .iter()
                .take_while(|r| key_of(r, b_key) == kb)
                .count()
                + j;
            for l in &left[i..i_end] {
                for r in &right[j..j_end] {
                    let mut row = l.clone();
                    row.extend_from_slice(r);
                    out.push(row);
                }
            }
            i = i_end;
            j = j_end;
        }
    }
    out
}

/// Grace hash join \[Sha86\]: in-memory when the smaller input fits,
/// otherwise partition both sides and recurse.
pub fn grace_hash_join(
    a: &DiskTable,
    b: &DiskTable,
    a_key: usize,
    b_key: usize,
    m: usize,
    page_cap: usize,
) -> OpResult {
    assert!(m >= 3, "grace hash join needs at least 3 buffer pages");
    let mut disk = Disk::new();
    let rows = grace_recurse(&mut disk, a, b, a_key, b_key, m, page_cap, 0);
    OpResult {
        rows,
        io: disk.io().total(),
    }
}

#[allow(clippy::too_many_arguments)]
fn grace_recurse(
    disk: &mut Disk,
    a: &DiskTable,
    b: &DiskTable,
    a_key: usize,
    b_key: usize,
    m: usize,
    page_cap: usize,
    depth: usize,
) -> Vec<Row> {
    const MAX_DEPTH: usize = 8;
    let s = a.n_pages().min(b.n_pages());
    if s <= m.saturating_sub(1) || a.n_rows() == 0 || b.n_rows() == 0 || depth >= MAX_DEPTH {
        // Build the smaller side in memory, probe with the larger.  The
        // depth cap is the standard hybrid fallback for skewed keys: once
        // repartitioning stops separating (e.g. one hot key), join the
        // partition directly rather than recurse forever.
        let left = disk.read_all(a);
        let right = disk.read_all(b);
        return hash_join_rows(&left, &right, a_key, b_key);
    }
    let f = m - 1;
    // splitmix64-style mixing with the depth folded into the seed, so
    // every recursion level re-partitions keys independently.
    let bucket = |k: i64| -> usize {
        let mut h = (k as u64) ^ (depth as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93);
        h = h.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 30;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 31;
        (h % f as u64) as usize
    };
    let partition = |disk: &mut Disk, t: &DiskTable, key: usize| -> Vec<DiskTable> {
        let mut parts: Vec<Vec<Row>> = vec![Vec::new(); f];
        for p in 0..t.n_pages() {
            for row in disk.read_page(t, p) {
                parts[bucket(key_of(&row, key))].push(row);
            }
        }
        parts
            .into_iter()
            .map(|rows| {
                if rows.is_empty() {
                    DiskTable::default()
                } else {
                    disk.write_rows(rows, page_cap)
                }
            })
            .collect()
    };
    let parts_a = partition(disk, a, a_key);
    let parts_b = partition(disk, b, b_key);
    let mut out = Vec::new();
    for (pa, pb) in parts_a.iter().zip(&parts_b) {
        if pa.n_rows() == 0 || pb.n_rows() == 0 {
            continue;
        }
        out.extend(grace_recurse(
            disk,
            pa,
            pb,
            a_key,
            b_key,
            m,
            page_cap,
            depth + 1,
        ));
    }
    out
}

fn hash_join_rows(left: &[Row], right: &[Row], a_key: usize, b_key: usize) -> Vec<Row> {
    let (build, probe, build_is_left) = if left.len() <= right.len() {
        (left, right, true)
    } else {
        (right, left, false)
    };
    let build_key = if build_is_left { a_key } else { b_key };
    let probe_key = if build_is_left { b_key } else { a_key };
    let mut table: HashMap<i64, Vec<&Row>> = HashMap::new();
    for r in build {
        table.entry(key_of(r, build_key)).or_default().push(r);
    }
    let mut out = Vec::new();
    for p in probe {
        if let Some(matches) = table.get(&key_of(p, probe_key)) {
            for b in matches {
                // Output is always (left ++ right).
                let mut row = if build_is_left {
                    (*b).clone()
                } else {
                    p.clone()
                };
                row.extend_from_slice(if build_is_left { p } else { b });
                out.push(row);
            }
        }
    }
    out
}

/// Page nested-loop join, the paper's `NL` variant: when the smaller input
/// fits in `m - 2` buffer pages it stays resident and the larger side
/// streams past once (I/O exactly `|A| + |B|`); otherwise one outer page is
/// held at a time and the inner is rescanned per outer page (I/O exactly
/// `|A| + |A|·|B|`) — the two regimes of `lec-cost`'s `nl_join_cost`.
pub fn page_nl_join(
    a: &DiskTable,
    b: &DiskTable,
    a_key: usize,
    b_key: usize,
    m: usize,
    _page_cap: usize,
) -> OpResult {
    assert!(m >= 3, "page nested-loop needs at least 3 buffer pages");
    let mut disk = Disk::new();
    let s = a.n_pages().min(b.n_pages());
    let mut out = Vec::new();
    if s + 2 <= m {
        if a.n_pages() <= b.n_pages() {
            // Outer resident, inner streams.
            let outer_rows = disk.read_all(a);
            for p in 0..b.n_pages() {
                let inner_page = disk.read_page(b, p);
                out.extend(hash_join_rows(&outer_rows, &inner_page, a_key, b_key));
            }
        } else {
            // Inner resident, outer streams.
            let inner_rows = disk.read_all(b);
            for p in 0..a.n_pages() {
                let outer_page = disk.read_page(a, p);
                out.extend(hash_join_rows(&outer_page, &inner_rows, a_key, b_key));
            }
        }
    } else {
        for p in 0..a.n_pages() {
            let outer_page = disk.read_page(a, p);
            let inner_rows = disk.read_all(b);
            out.extend(hash_join_rows(&outer_page, &inner_rows, a_key, b_key));
        }
    }
    OpResult {
        rows: out,
        io: disk.io().total(),
    }
}

/// Block nested-loop join: `m - 2` pages of the outer per block, one inner
/// scan per block.  Measured I/O is exactly `|A| + ⌈|A|/(m-2)⌉·|B|`.
pub fn block_nl_join(
    a: &DiskTable,
    b: &DiskTable,
    a_key: usize,
    b_key: usize,
    m: usize,
    _page_cap: usize,
) -> OpResult {
    assert!(m >= 3, "block nested-loop needs at least 3 buffer pages");
    let mut disk = Disk::new();
    let block = m - 2;
    let mut out = Vec::new();
    let mut i = 0;
    while i < a.n_pages() {
        let hi = (i + block).min(a.n_pages());
        let mut outer_rows: Vec<Row> = Vec::new();
        for p in i..hi {
            outer_rows.extend(disk.read_page(a, p));
        }
        let inner_rows = disk.read_all(b);
        out.extend(hash_join_rows(&outer_rows, &inner_rows, a_key, b_key));
        i = hi;
    }
    OpResult {
        rows: out,
        io: disk.io().total(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn table(n_rows: usize, page_cap: usize, key_domain: i64, seed: u64) -> DiskTable {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        DiskTable::from_rows(
            (0..n_rows).map(|i| vec![rng.gen_range(0..key_domain), i as i64]),
            page_cap,
        )
    }

    #[test]
    fn external_sort_sorts_and_preserves_rows() {
        let t = table(256, 4, 1000, 1); // 64 pages
        for m in [3, 5, 10, 70] {
            let r = external_sort(&t, 0, m, 4);
            assert_eq!(r.rows.len(), 256, "m={m}");
            assert!(r.rows.windows(2).all(|w| w[0][0] <= w[1][0]), "m={m}");
            let mut orig = t.peek_rows();
            let mut got = r.rows.clone();
            orig.sort();
            got.sort();
            assert_eq!(orig, got, "m={m}");
        }
    }

    #[test]
    fn external_sort_io_matches_the_model_by_regime() {
        // R = 64 pages; model: m >= 64 → R; 8 <= m < 64 → 3R;
        // 4 <= m < 8 → 5R.  Measure away from exact boundaries.
        let t = table(256, 4, 1000, 2);
        assert_eq!(t.n_pages(), 64);
        let io = |m| external_sort(&t, 0, m, 4).io;
        assert_eq!(io(70), 64); // fits: read only
        assert_eq!(io(10), 3 * 64); // runs + one merge level
        assert_eq!(io(5), 5 * 64); // runs + two merge levels
    }

    #[test]
    fn sort_merge_join_io_shape() {
        // |A| = 64, |B| = 16 pages; measured SM = 3(|A|+|B|) in the
        // one-merge regime (the model's simplified constant is 2; same
        // cliff positions, constant offset — see EXPERIMENTS.md).
        let a = table(256, 4, 64, 3);
        let b = table(64, 4, 64, 4);
        let r = sort_merge_join(&a, &b, 0, 0, 12, 4);
        assert_eq!(r.io, 3 * (64 + 16));
        // High memory: both fit → read-only.
        let r2 = sort_merge_join(&a, &b, 0, 0, 100, 4);
        assert_eq!(r2.io, 64 + 16);
        assert_eq!(r.rows.len(), r2.rows.len());
    }

    #[test]
    fn join_methods_agree_on_results() {
        let a = table(200, 4, 32, 5);
        let b = table(120, 4, 32, 6);
        let canonical = |mut rows: Vec<Row>| {
            rows.sort();
            rows
        };
        let sm = canonical(sort_merge_join(&a, &b, 0, 0, 8, 4).rows);
        let gh = canonical(grace_hash_join(&a, &b, 0, 0, 8, 4).rows);
        let nl = canonical(block_nl_join(&a, &b, 0, 0, 8, 4).rows);
        let pnl = canonical(page_nl_join(&a, &b, 0, 0, 8, 4).rows);
        assert_eq!(sm.len(), gh.len());
        assert_eq!(sm, gh);
        assert_eq!(sm, nl);
        assert_eq!(sm, pnl);
        assert!(!sm.is_empty(), "fixture should produce matches");
    }

    #[test]
    fn page_nl_io_is_exact_in_both_regimes() {
        let a = table(100, 4, 10, 7); // 25 pages
        let b = table(40, 4, 10, 8); // 10 pages
                                     // S = 10 fits when m >= 12: one pass over each side.
        for m in [12usize, 30] {
            let r = page_nl_join(&a, &b, 0, 0, m, 4);
            assert_eq!(r.io, 25 + 10, "m={m}");
        }
        // Below the cliff: inner rescanned per outer page.
        for m in [3usize, 6, 11] {
            let r = page_nl_join(&a, &b, 0, 0, m, 4);
            assert_eq!(r.io, 25 + 25 * 10, "m={m}");
        }
        // Swapped operands hit the outer-resident branch with the same fit I/O.
        let r = page_nl_join(&b, &a, 0, 0, 12, 4);
        assert_eq!(r.io, 10 + 25);
    }

    #[test]
    fn block_nl_io_is_exact() {
        let a = table(100, 4, 10, 7); // 25 pages
        let b = table(40, 4, 10, 8); // 10 pages
        for m in [3usize, 5, 10, 30] {
            let r = block_nl_join(&a, &b, 0, 0, m, 4);
            let blocks = 25usize.div_ceil(m - 2);
            assert_eq!(r.io as usize, 25 + blocks * 10, "m={m}");
        }
    }

    #[test]
    fn grace_hash_io_cliffs() {
        // |A| = 64, |B| = 16 → S = 16.  In-memory when 16 <= m-1;
        // one partition level costs 3(|A|+|B|) ± partial-page slack.
        let a = table(256, 4, 512, 9);
        let b = table(64, 4, 512, 10);
        let fit = grace_hash_join(&a, &b, 0, 0, 17, 4);
        assert_eq!(fit.io, 64 + 16);
        let one_level = grace_hash_join(&a, &b, 0, 0, 8, 4);
        let ideal = 3 * (64 + 16);
        let slack = (one_level.io as f64 / ideal as f64 - 1.0).abs();
        assert!(
            slack < 0.35,
            "one-level Grace: measured {} vs ideal {ideal}",
            one_level.io
        );
        assert!(one_level.io > fit.io);
    }

    #[test]
    fn empty_inputs_join_to_empty() {
        let a = DiskTable::from_rows(std::iter::empty(), 4);
        let b = table(40, 4, 8, 11);
        assert!(grace_hash_join(&a, &b, 0, 0, 5, 4).rows.is_empty());
        assert!(block_nl_join(&a, &b, 0, 0, 5, 4).rows.is_empty());
        assert!(sort_merge_join(&a, &b, 0, 0, 5, 4).rows.is_empty());
    }
}
