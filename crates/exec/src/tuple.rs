//! Tuple-at-a-time in-memory execution of physical plans.
//!
//! This executor exists to validate the *plan space*: the System R
//! observations the DP rests on ("joins are commutative ... associative ...
//! the result of a join does not depend on the algorithm used to compute
//! it", §2.2) become executable assertions — every plan the optimizer can
//! emit for a query must produce the same multiset of rows.

use crate::datagen::{filter_threshold, Dataset, Row};
use lec_plan::{ColumnRef, JoinMethod, PlanNode, Query, TableSet};
use std::collections::HashMap;

/// An intermediate relation: rows plus a schema mapping each participating
/// query table to its column slice.
#[derive(Debug, Clone)]
pub struct Relation {
    /// `(table_idx, n_cols, offset)` per table block, in plan order.
    pub schema: Vec<(usize, usize, usize)>,
    /// Rows: concatenation of the blocks.
    pub rows: Vec<Row>,
}

impl Relation {
    fn offset_of(&self, table: usize) -> Option<(usize, usize)> {
        self.schema
            .iter()
            .find(|(t, _, _)| *t == table)
            .map(|(_, n, off)| (*off, *n))
    }

    /// Resolve a column reference into a row offset.
    pub fn col_index(&self, c: ColumnRef) -> usize {
        let (off, n) = self
            .offset_of(c.table)
            .unwrap_or_else(|| panic!("table {} not in relation", c.table));
        assert!(c.column < n, "column {} out of range", c.column);
        off + c.column
    }

    /// The tables present.
    pub fn tables(&self) -> TableSet {
        TableSet::from_indices(self.schema.iter().map(|(t, _, _)| *t))
    }

    /// Canonical form for multiset comparison: blocks reordered by table
    /// index, rows sorted.
    pub fn canonical_rows(&self) -> Vec<Row> {
        let mut order: Vec<&(usize, usize, usize)> = self.schema.iter().collect();
        order.sort_by_key(|(t, _, _)| *t);
        let mut out: Vec<Row> = self
            .rows
            .iter()
            .map(|row| {
                let mut r = Vec::with_capacity(row.len());
                for (_, n, off) in &order {
                    r.extend_from_slice(&row[*off..*off + *n]);
                }
                r
            })
            .collect();
        out.sort();
        out
    }
}

/// Execute `plan` against `dataset`.
pub fn execute(plan: &PlanNode, query: &Query, dataset: &Dataset) -> Relation {
    match plan {
        PlanNode::SeqScan { table } | PlanNode::IndexScan { table } => scan(
            *table,
            query,
            dataset,
            matches!(plan, PlanNode::IndexScan { .. }),
        ),
        PlanNode::Sort { input, key } => {
            let mut rel = execute(input, query, dataset);
            let idx = rel.col_index(resolve_sort_key(*key, &rel, query));
            rel.rows.sort_by_key(|r| r[idx]);
            rel
        }
        PlanNode::Join {
            method,
            outer,
            inner,
        } => {
            let left = execute(outer, query, dataset);
            let right = execute(inner, query, dataset);
            join(*method, left, right, query)
        }
    }
}

/// A required order may name any column of the equivalence class; pick one
/// that exists in the relation.
fn resolve_sort_key(key: ColumnRef, rel: &Relation, query: &Query) -> ColumnRef {
    if rel.offset_of(key.table).is_some() {
        return key;
    }
    let eq = lec_plan::ColumnEquivalences::for_query(query);
    for p in &query.joins {
        for c in [p.left, p.right] {
            if eq.same_class(c, key) && rel.offset_of(c.table).is_some() {
                return c;
            }
        }
    }
    panic!("sort key {key} not resolvable in relation");
}

fn scan(table: usize, query: &Query, dataset: &Dataset, sorted: bool) -> Relation {
    let mut rows: Vec<Row> = dataset.tables[table].clone();
    if let Some(threshold) = filter_threshold(dataset, query, table) {
        let col = query.tables[table]
            .filter
            .as_ref()
            .expect("threshold implies filter")
            .column;
        rows.retain(|r| r[col] < threshold);
    }
    if sorted {
        // Clustered index scans deliver rows in index order.
        if let Some(f) = &query.tables[table].filter {
            rows.sort_by_key(|r| r[f.column]);
        }
    }
    let n_cols = dataset.domains[table].len();
    Relation {
        schema: vec![(table, n_cols, 0)],
        rows,
    }
}

/// All equi-join conditions crossing the two relations, resolved to row
/// offsets `(left_idx, right_idx)`.
fn crossing_conditions(query: &Query, left: &Relation, right: &Relation) -> Vec<(usize, usize)> {
    let lt = left.tables();
    let rt = right.tables();
    query
        .joins_crossing(lt, rt)
        .into_iter()
        .map(|i| {
            let p = &query.joins[i];
            if lt.contains(p.left.table) {
                (left.col_index(p.left), right.col_index(p.right))
            } else {
                (left.col_index(p.right), right.col_index(p.left))
            }
        })
        .collect()
}

fn concat_schema(left: &Relation, right: &Relation) -> Vec<(usize, usize, usize)> {
    let left_width: usize = left.schema.iter().map(|(_, n, _)| n).sum();
    let mut schema = left.schema.clone();
    for (t, n, off) in &right.schema {
        schema.push((*t, *n, off + left_width));
    }
    schema
}

fn join(method: JoinMethod, left: Relation, right: Relation, query: &Query) -> Relation {
    let conds = crossing_conditions(query, &left, &right);
    assert!(
        !conds.is_empty(),
        "optimizer never emits cross products; join between {} and {}",
        left.tables(),
        right.tables()
    );
    let schema = concat_schema(&left, &right);
    let rows = match method {
        JoinMethod::GraceHash => hash_join(&left, &right, &conds),
        JoinMethod::SortMerge => merge_join(&left, &right, &conds),
        JoinMethod::PageNestedLoop | JoinMethod::BlockNestedLoop => {
            nested_loop_join(&left, &right, &conds)
        }
    };
    Relation { schema, rows }
}

fn combined(l: &Row, r: &Row) -> Row {
    let mut row = l.clone();
    row.extend_from_slice(r);
    row
}

fn hash_join(left: &Relation, right: &Relation, conds: &[(usize, usize)]) -> Vec<Row> {
    let (&(lk, rk), rest) = conds.split_first().expect("non-empty");
    let mut table: HashMap<i64, Vec<&Row>> = HashMap::new();
    for r in &right.rows {
        table.entry(r[rk]).or_default().push(r);
    }
    let mut out = Vec::new();
    for l in &left.rows {
        if let Some(matches) = table.get(&l[lk]) {
            for r in matches {
                if rest.iter().all(|&(a, b)| l[a] == r[b]) {
                    out.push(combined(l, r));
                }
            }
        }
    }
    out
}

fn merge_join(left: &Relation, right: &Relation, conds: &[(usize, usize)]) -> Vec<Row> {
    let (&(lk, rk), rest) = conds.split_first().expect("non-empty");
    let mut ls: Vec<&Row> = left.rows.iter().collect();
    let mut rs: Vec<&Row> = right.rows.iter().collect();
    ls.sort_by_key(|r| r[lk]);
    rs.sort_by_key(|r| r[rk]);
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < ls.len() && j < rs.len() {
        let (ka, kb) = (ls[i][lk], rs[j][rk]);
        if ka < kb {
            i += 1;
        } else if ka > kb {
            j += 1;
        } else {
            let i_end = i + ls[i..].iter().take_while(|r| r[lk] == ka).count();
            let j_end = j + rs[j..].iter().take_while(|r| r[rk] == kb).count();
            for l in &ls[i..i_end] {
                for r in &rs[j..j_end] {
                    if rest.iter().all(|&(a, b)| l[a] == r[b]) {
                        out.push(combined(l, r));
                    }
                }
            }
            i = i_end;
            j = j_end;
        }
    }
    out
}

fn nested_loop_join(left: &Relation, right: &Relation, conds: &[(usize, usize)]) -> Vec<Row> {
    let mut out = Vec::new();
    for l in &left.rows {
        for r in &right.rows {
            if conds.iter().all(|&(a, b)| l[a] == r[b]) {
                out.push(combined(l, r));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::generate;
    use lec_catalog::{CatalogGenerator, TableId};
    use lec_plan::{QueryProfile, Topology, WorkloadGenerator};

    fn fixture(topology: Topology, seed: u64) -> (lec_catalog::Catalog, Query, Dataset) {
        let mut g = CatalogGenerator::new(seed);
        let cat = g.generate(5);
        let ids: Vec<TableId> = cat.ids().collect();
        let mut wg = WorkloadGenerator::new(seed + 1);
        let profile = QueryProfile {
            topology,
            ..Default::default()
        };
        let q = wg.gen_query(&cat, &ids[..4], &profile);
        let d = generate(&cat, &q, 40, seed + 2);
        (cat, q, d)
    }

    fn left_deep_plan(order: &[usize], methods: &[JoinMethod]) -> PlanNode {
        let mut plan = PlanNode::SeqScan { table: order[0] };
        for (k, &t) in order.iter().enumerate().skip(1) {
            plan = PlanNode::join(methods[k - 1], plan, PlanNode::SeqScan { table: t });
        }
        plan
    }

    #[test]
    fn join_methods_agree() {
        let (_, q, d) = fixture(Topology::Chain, 10);
        let base = left_deep_plan(
            &[0, 1, 2, 3],
            &[
                JoinMethod::GraceHash,
                JoinMethod::GraceHash,
                JoinMethod::GraceHash,
            ],
        );
        let expect = execute(&base, &q, &d).canonical_rows();
        for methods in [
            [
                JoinMethod::SortMerge,
                JoinMethod::SortMerge,
                JoinMethod::SortMerge,
            ],
            [
                JoinMethod::PageNestedLoop,
                JoinMethod::BlockNestedLoop,
                JoinMethod::SortMerge,
            ],
        ] {
            let p = left_deep_plan(&[0, 1, 2, 3], &methods);
            assert_eq!(execute(&p, &q, &d).canonical_rows(), expect);
        }
    }

    #[test]
    fn join_order_does_not_change_results() {
        // Commutativity/associativity (§2.2): different connected
        // left-deep orders yield the same canonical rows.
        let (_, q, d) = fixture(Topology::Clique, 21);
        let m = [JoinMethod::GraceHash; 3];
        let orders: [[usize; 4]; 3] = [[0, 1, 2, 3], [3, 2, 1, 0], [1, 0, 2, 3]];
        let mut results = Vec::new();
        for order in orders {
            let p = left_deep_plan(&order, &m);
            results.push(execute(&p, &q, &d).canonical_rows());
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
    }

    #[test]
    fn sort_orders_rows_without_changing_the_multiset() {
        let (_, q, d) = fixture(Topology::Chain, 33);
        let join = left_deep_plan(&[0, 1], &[JoinMethod::GraceHash]);
        let key = q.joins[0].left;
        let sorted = PlanNode::sort(join.clone(), key);
        let r_plain = execute(&join, &q, &d);
        let r_sorted = execute(&sorted, &q, &d);
        assert_eq!(r_plain.canonical_rows(), r_sorted.canonical_rows());
        let idx = r_sorted.col_index(key);
        assert!(r_sorted.rows.windows(2).all(|w| w[0][idx] <= w[1][idx]));
    }

    #[test]
    fn filters_reduce_cardinality() {
        use lec_prob::Distribution;
        let (cat, mut q, _) = fixture(Topology::Chain, 44);
        q.tables[0].filter = Some(lec_plan::LocalPredicate {
            column: 0,
            selectivity: Distribution::point(0.25),
        });
        let d = generate(&cat, &q, 60, 9);
        let unfiltered = d.tables[0].len();
        let scanned = execute(&PlanNode::SeqScan { table: 0 }, &q, &d);
        assert!(scanned.rows.len() < unfiltered);
        // Index scan returns the same multiset, sorted by the filter column.
        let ix = execute(&PlanNode::IndexScan { table: 0 }, &q, &d);
        assert_eq!(scanned.canonical_rows(), ix.canonical_rows());
    }

    #[test]
    fn multi_predicate_joins_apply_all_conditions() {
        // Clique queries can have several predicates between one pair once
        // a composite has absorbed multiple tables; verify against NL as
        // ground truth.
        let (_, q, d) = fixture(Topology::Clique, 55);
        let p_hash = left_deep_plan(&[0, 1, 2, 3], &[JoinMethod::GraceHash; 3]);
        let p_nl = left_deep_plan(&[0, 1, 2, 3], &[JoinMethod::PageNestedLoop; 3]);
        assert_eq!(
            execute(&p_hash, &q, &d).canonical_rows(),
            execute(&p_nl, &q, &d).canonical_rows()
        );
    }
}
