//! The cost-calibration observatory: ground truth in the loop.
//!
//! The paper's claim is that minimizing *expected* cost beats minimizing
//! least-specific cost — a claim about predictions.  This module closes
//! the predicted-vs-measured loop: it executes plans through the real
//! page-counting operators ([`crate::bufpool`] / [`crate::extops`]) and
//! the Monte-Carlo simulator ([`crate::sim`]), and produces a per-plan
//! **cost audit trace** pairing, for every plan node, the cost model's
//! prediction (point per memory bucket, and expected under the
//! environment) with measured page I/O and simulated cost.
//!
//! Because catalogs describe tables far too large to materialize, the
//! observatory builds a **physical twin** of the query: each table scaled
//! down (ratio-preserving) to at most [`CalibConfig::max_pages`] pages,
//! with `rows = pages · page_cap` so page arithmetic is exact, and with
//! the twin's selectivities rewritten to the *page-level* values the
//! generated data actually induces (a join on the shared
//! [`crate::datagen::JOIN_DOMAIN`] produces `a·b·(page_cap/domain)` pages
//! from `a` and `b` page inputs; a filter keeps exactly
//! `threshold/domain` of its rows in expectation).  Predictions are then
//! audited against *that* catalog — the model and the hardware describe
//! the same physical reality, so residual error is formula error, not
//! scaling error.
//!
//! The expected measured cost uses the same linearity trick as
//! `expected_plan_cost_dynamic`: operand sizes do not depend on memory,
//! so executing the whole plan once per memory bucket and weighting each
//! node's measurement by its *phase's* marginal distribution
//! ([`Environment::phase_distributions`]) yields the exact expectation
//! under static or drifting memory without enumerating memory paths.

use std::sync::Arc;

use crate::bufpool::{install_io_sink, Disk, DiskTable, Row};
use crate::datagen::{self, Dataset};
use crate::env::Environment;
use crate::extops;
use crate::sim::{monte_carlo, SimStats};
use lec_catalog::{Catalog, ColumnStats, IndexKind, TableStats};
use lec_cost::{
    expected_plan_cost_dynamic, expected_plan_cost_static, plan_cost_at, plan_node_costs, CostModel,
};
use lec_plan::{ColumnRef, JoinMethod, PlanNode, Query};
use lec_prob::{Distribution, ProbError};
use lec_telemetry::{error_bp, IoTotals, OpClass, Telemetry};
use serde_json::{json, Value};

/// Sizing knobs for the physical twin and the simulation half.
#[derive(Debug, Clone)]
pub struct CalibConfig {
    /// Rows per page in the twin (kept small so page counts are exact).
    pub page_cap: usize,
    /// Largest table in the twin, in pages; bigger catalogs are scaled
    /// down ratio-preserving.
    pub max_pages: usize,
    /// Floor for rewritten filter selectivities, so filtered intermediates
    /// never collapse to empty inputs.
    pub min_filter_sel: f64,
    /// Monte-Carlo runs for the simulated side of the audit.
    pub sim_runs: usize,
    /// Seed for data generation and simulation.
    pub seed: u64,
}

impl Default for CalibConfig {
    fn default() -> Self {
        CalibConfig {
            page_cap: 4,
            max_pages: 32,
            min_filter_sel: 0.25,
            sim_runs: 256,
            seed: 0xCA11B,
        }
    }
}

/// Errors an audit can hit.
#[derive(Debug, Clone, PartialEq)]
pub enum CalibError {
    /// A join node has no crossing equi-join predicate (cross product).
    NoJoinPredicate(String),
    /// A memory bucket is not a whole number of pages ≥ 3.
    BadMemoryBucket(f64),
    /// An index scan appears in the plan for a table with no usable filter.
    MissingFilter(usize),
    /// Probability-layer failure (environment/chain mismatch).
    Prob(ProbError),
}

impl std::fmt::Display for CalibError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CalibError::NoJoinPredicate(plan) => {
                write!(f, "join without a crossing predicate in {plan}")
            }
            CalibError::BadMemoryBucket(m) => {
                write!(f, "memory bucket {m} is not a whole page count >= 3")
            }
            CalibError::MissingFilter(t) => write!(f, "index scan on unfiltered table R{t}"),
            CalibError::Prob(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CalibError {}

impl From<ProbError> for CalibError {
    fn from(e: ProbError) -> Self {
        CalibError::Prob(e)
    }
}

/// The scaled-down executable replica of a query: a fresh catalog with one
/// physical table per query-table occurrence, and the query rewritten
/// against it with page-exact selectivities.
#[derive(Debug, Clone)]
pub struct Twin {
    /// The twin catalog (table `i` backs query-table occurrence `i`).
    pub catalog: Catalog,
    /// The rewritten query.
    pub query: Query,
}

/// Measured-vs-predicted ratio band for one operator class: the envelope
/// within which that operator's measured page I/O tracks its closed-form
/// `lec-cost` formula (exact operand sizes, any memory ≥ 3, tables up to
/// ~128 pages).  Wide where the implementation's cliffs sit at fan-in
/// boundaries (`⌈R/m⌉ ≤ m−1`) rather than the model's `√R`, and where the
/// model's simplified constants (2·(a+b) for a fitting join) double the
/// measured single pass; exact (±0.1%) where the operator is the formula.
pub fn op_band(class: OpClass) -> (f64, f64) {
    match class {
        OpClass::SeqAccess => (0.999, 1.001),
        OpClass::IndexAccess => (0.5, 1.9),
        OpClass::Sort => (0.4, 2.4),
        OpClass::SortMerge => (0.45, 2.4),
        OpClass::GraceHash => (0.35, 3.0),
        OpClass::BlockNestedLoop => (0.999, 1.001),
        OpClass::PageNestedLoop => (0.999, 1.001),
    }
}

/// One plan node's audit record: predictions and measurements per memory
/// bucket, plus both expectations under the environment.
#[derive(Debug, Clone)]
pub struct NodeAudit {
    /// Display label (`R0`, `IxR2`, `Sort`, `SM`, ...).
    pub label: String,
    /// Telemetry operator class.
    pub class: OpClass,
    /// Phase index (aligned with `lec_cost::phases` and the simulator);
    /// `None` for memory-independent base accesses.
    pub phase: Option<usize>,
    /// `(memory bucket, predicted cost)` pairs.
    pub predicted: Vec<(f64, f64)>,
    /// `(memory bucket, measured page I/O)` pairs.
    pub measured: Vec<(f64, f64)>,
    /// Prediction weighted by this node's phase marginal.
    pub predicted_expected: f64,
    /// Measurement weighted by this node's phase marginal.
    pub measured_expected: f64,
}

impl NodeAudit {
    /// Absolute relative prediction error in basis points.
    pub fn error_bp(&self) -> u64 {
        error_bp(self.predicted_expected, self.measured_expected)
    }

    fn to_json(&self) -> Value {
        let pairs =
            |v: &[(f64, f64)]| Value::Array(v.iter().map(|(m, c)| json!([*m, *c])).collect());
        json!({
            "class": self.class.name(),
            "error_bp": self.error_bp() as f64,
            "label": self.label.clone(),
            "measured": pairs(&self.measured),
            "measured_expected": self.measured_expected,
            "phase": self.phase.map(|p| p as f64),
            "predicted": pairs(&self.predicted),
            "predicted_expected": self.predicted_expected,
        })
        .sorted()
    }
}

/// A whole plan's audit trace: per-node records, whole-plan totals per
/// bucket, both expectations, and the simulated cost distribution.
#[derive(Debug, Clone)]
pub struct CostAudit {
    /// `PlanNode::compact` of the audited plan.
    pub plan: String,
    /// Memory buckets executed (the union of the environment's support).
    pub buckets: Vec<f64>,
    /// Per-node audits in `plan_node_costs` traversal order.
    pub nodes: Vec<NodeAudit>,
    /// Whole-plan predicted cost per bucket.
    pub predicted_total: Vec<(f64, f64)>,
    /// Whole-plan measured page I/O per bucket.
    pub measured_total: Vec<(f64, f64)>,
    /// Expected predicted cost under the environment.
    pub predicted_expected: f64,
    /// Expected measured page I/O under the environment.
    pub measured_expected: f64,
    /// Monte-Carlo summary of the model cost under sampled memory traces.
    pub sim: SimStats,
    /// Largest relative disagreement, over buckets, between the summed
    /// per-node predictions and the whole-plan prediction.  A correct
    /// decomposition keeps this at float-summation noise (≤ 1e-9).
    pub node_consistency_rel: f64,
}

impl CostAudit {
    /// Headline number: relative error of the expected prediction against
    /// the expected measurement.
    pub fn relative_error(&self) -> f64 {
        if self.measured_expected == 0.0 {
            return if self.predicted_expected == 0.0 {
                0.0
            } else {
                f64::INFINITY
            };
        }
        (self.predicted_expected - self.measured_expected).abs() / self.measured_expected
    }

    /// The full trace as sorted-key JSON.
    pub fn to_json(&self) -> Value {
        let pairs =
            |v: &[(f64, f64)]| Value::Array(v.iter().map(|(m, c)| json!([*m, *c])).collect());
        json!({
            "buckets": self.buckets.clone(),
            "measured_expected": self.measured_expected,
            "node_consistency_rel": self.node_consistency_rel,
            "nodes": Value::Array(self.nodes.iter().map(|n| n.to_json()).collect()),
            "plan": self.plan.clone(),
            "predicted_expected": self.predicted_expected,
            "relative_error": self.relative_error(),
            "sim": json!({
                "max": self.sim.max,
                "mean": self.sim.mean,
                "min": self.sim.min,
                "p50": self.sim.p50,
                "p95": self.sim.p95,
                "p99": self.sim.p99,
                "runs": self.sim.runs as f64,
                "std_dev": self.sim.std_dev,
            }),
            "totals": json!({
                "measured": pairs(&self.measured_total),
                "predicted": pairs(&self.predicted_total),
            }),
        })
        .sorted()
    }
}

/// The observatory: owns the twin, its generated dataset, and the stored
/// base tables, and audits any plan for the twin query.
#[derive(Debug)]
pub struct Calibrator {
    twin: Twin,
    cfg: CalibConfig,
    dataset: Dataset,
    /// Base tables as stored: sorted by the filter column where the
    /// catalog declares a clustered index on it, heap order otherwise.
    base: Vec<DiskTable>,
    /// Filter thresholds (`value < t`) per query table.
    thresholds: Vec<Option<i64>>,
}

/// Restore-on-drop guard for the thread-local telemetry I/O sink.
struct SinkGuard {
    prev: Option<Arc<IoTotals>>,
    active: bool,
}

impl SinkGuard {
    fn install(sink: Option<Arc<IoTotals>>) -> SinkGuard {
        match sink {
            Some(s) => SinkGuard {
                prev: install_io_sink(Some(s)),
                active: true,
            },
            None => SinkGuard {
                prev: None,
                active: false,
            },
        }
    }
}

impl Drop for SinkGuard {
    fn drop(&mut self) {
        if self.active {
            install_io_sink(self.prev.take());
        }
    }
}

impl Calibrator {
    /// Build the physical twin of `query` and generate its data.
    pub fn new(catalog: &Catalog, query: &Query, cfg: CalibConfig) -> Calibrator {
        let mut twin = physical_twin(catalog, query, &cfg);
        // Pass 1 computed the twin with the original filter selectivities;
        // the generated data is independent of them, so thresholds derived
        // now stay valid after the rewrite below.
        let dataset = datagen::generate(&twin.catalog, &twin.query, usize::MAX, cfg.seed);
        let mut thresholds = Vec::with_capacity(twin.query.tables.len());
        for t in 0..twin.query.tables.len() {
            let thr = datagen::filter_threshold(&dataset, &twin.query, t).map(|thr| {
                let f = twin.query.tables[t].filter.as_ref().unwrap();
                let domain = dataset.domains[t][f.column];
                let floor = (cfg.min_filter_sel * domain as f64).ceil() as i64;
                thr.max(floor).clamp(1, domain)
            });
            // Pass 2: rewrite the filter selectivity to the exact fraction
            // of the domain the threshold keeps, so the model predicts the
            // same filtered sizes the data realizes in expectation.
            if let Some(thr) = thr {
                let f = twin.query.tables[t].filter.as_mut().unwrap();
                let domain = dataset.domains[t][f.column];
                f.selectivity = Distribution::point(thr as f64 / domain as f64);
            }
            thresholds.push(thr);
        }
        let base = twin
            .query
            .tables
            .iter()
            .enumerate()
            .map(|(t, qt)| {
                let mut rows = dataset.tables[t].clone();
                if let Some(f) = &qt.filter {
                    let kind = twin.catalog.table(qt.table).stats.index_on(f.column);
                    if kind == IndexKind::Clustered {
                        rows.sort_by_key(|r| r[f.column]);
                    }
                }
                DiskTable::from_rows(rows, cfg.page_cap)
            })
            .collect();
        Calibrator {
            twin,
            cfg,
            dataset,
            base,
            thresholds,
        }
    }

    /// The twin catalog + query the audit model runs against.
    pub fn twin(&self) -> &Twin {
        &self.twin
    }

    /// A cost model over the twin (what every prediction is computed from).
    pub fn model(&self) -> CostModel<'_> {
        CostModel::new(&self.twin.catalog, &self.twin.query)
    }

    /// Audit one plan under one environment.  When `telemetry` is enabled,
    /// per-node prediction errors feed the per-operator-class calibration
    /// histograms and all page I/O mirrors into its cumulative counters.
    pub fn audit(
        &self,
        plan: &PlanNode,
        env: &Environment,
        telemetry: Option<&Telemetry>,
    ) -> Result<CostAudit, CalibError> {
        let model = self.model();
        let node_costs = plan_node_costs(&model, plan);
        let n_phases = lec_cost::phases(&model, plan).len();

        // Memory buckets: the union of every phase marginal's support.
        let phase_dists = env.phase_distributions(n_phases)?;
        let mut buckets: Vec<f64> = phase_dists
            .iter()
            .flat_map(|d| d.support().iter().copied())
            .collect();
        buckets.sort_by(f64::total_cmp);
        buckets.dedup();
        let mut bucket_pages = Vec::with_capacity(buckets.len());
        for &m in &buckets {
            let pages = m.round();
            if (m - pages).abs() > 1e-6 || pages < 3.0 {
                return Err(CalibError::BadMemoryBucket(m));
            }
            bucket_pages.push(pages as usize);
        }

        // Execute once per bucket; mirror page I/O into telemetry if on.
        let sink = telemetry
            .filter(|t| t.enabled())
            .map(|t| Arc::clone(t.io()));
        let _guard = SinkGuard::install(sink);
        let mut measured_per_bucket: Vec<Vec<u64>> = Vec::with_capacity(buckets.len());
        for &m in &bucket_pages {
            let mut ios = Vec::with_capacity(node_costs.len());
            self.exec_node(plan, m, &mut ios)?;
            debug_assert_eq!(ios.len(), node_costs.len());
            measured_per_bucket.push(ios);
        }

        // Per-node records: pointwise per bucket, expectation by the
        // node's phase marginal (phase 0 for memory-independent accesses —
        // any marginal gives the same constant expectation).
        let mut nodes = Vec::with_capacity(node_costs.len());
        for (i, nc) in node_costs.iter().enumerate() {
            let predicted: Vec<(f64, f64)> = buckets
                .iter()
                .map(|&m| (m, nc.cost_at(&model, m)))
                .collect();
            let measured: Vec<(f64, f64)> = buckets
                .iter()
                .enumerate()
                .map(|(bi, &m)| (m, measured_per_bucket[bi][i] as f64))
                .collect();
            let dist = &phase_dists[nc.phase.unwrap_or(0).min(phase_dists.len() - 1)];
            let weigh = |pairs: &[(f64, f64)]| {
                dist.iter()
                    .map(|(m, p)| {
                        let v = pairs
                            .iter()
                            .find(|(bm, _)| *bm == m)
                            .map(|(_, c)| *c)
                            .unwrap_or(0.0);
                        p * v
                    })
                    .sum::<f64>()
            };
            let audit = NodeAudit {
                label: nc.label.clone(),
                class: nc.class(),
                phase: nc.phase,
                predicted_expected: weigh(&predicted),
                measured_expected: weigh(&measured),
                predicted,
                measured,
            };
            if let Some(tel) = telemetry {
                tel.record_calibration_error(
                    audit.class,
                    audit.predicted_expected,
                    audit.measured_expected,
                );
            }
            nodes.push(audit);
        }

        // Whole-plan totals and expectations.
        let predicted_total: Vec<(f64, f64)> = buckets
            .iter()
            .map(|&m| (m, plan_cost_at(&model, plan, m)))
            .collect();
        let measured_total: Vec<(f64, f64)> = buckets
            .iter()
            .enumerate()
            .map(|(bi, &m)| (m, measured_per_bucket[bi].iter().sum::<u64>() as f64))
            .collect();
        let predicted_expected = match env {
            Environment::Static(d) => expected_plan_cost_static(&model, plan, d),
            Environment::Dynamic { initial, chain } => {
                expected_plan_cost_dynamic(&model, plan, initial, chain)?
            }
        };
        let measured_expected = nodes.iter().map(|n| n.measured_expected).sum();
        let node_consistency_rel = predicted_total
            .iter()
            .map(|&(m, whole)| {
                let node_sum: f64 = nodes
                    .iter()
                    .map(|n| {
                        n.predicted
                            .iter()
                            .find(|(bm, _)| *bm == m)
                            .map(|(_, c)| *c)
                            .unwrap_or(0.0)
                    })
                    .sum();
                (node_sum - whole).abs() / whole.max(1.0)
            })
            .fold(0.0f64, f64::max);

        let sim = monte_carlo(&model, plan, env, self.cfg.sim_runs, self.cfg.seed)?;

        Ok(CostAudit {
            plan: plan.compact(),
            buckets,
            nodes,
            predicted_total,
            measured_total,
            predicted_expected,
            measured_expected,
            sim,
            node_consistency_rel,
        })
    }

    /// Execute one subtree at memory `m`, appending each node's measured
    /// page I/O to `ios` in `plan_node_costs` traversal order, returning
    /// the subtree's output rows and table layout.
    fn exec_node(
        &self,
        node: &PlanNode,
        m: usize,
        ios: &mut Vec<u64>,
    ) -> Result<(Vec<Row>, Vec<usize>), CalibError> {
        let page_cap = self.cfg.page_cap;
        match node {
            PlanNode::SeqScan { table } => {
                let mut disk = Disk::new();
                let mut rows = disk.read_all(&self.base[*table]);
                if let Some(thr) = self.thresholds[*table] {
                    let col = self.twin.query.tables[*table]
                        .filter
                        .as_ref()
                        .unwrap()
                        .column;
                    rows.retain(|r| r[col] < thr);
                }
                ios.push(disk.io().total());
                Ok((rows, vec![*table]))
            }
            PlanNode::IndexScan { table } => {
                let thr = self.thresholds[*table].ok_or(CalibError::MissingFilter(*table))?;
                let qt = &self.twin.query.tables[*table];
                let col = qt.filter.as_ref().unwrap().column;
                let base = &self.base[*table];
                let mut disk = Disk::new();
                let descent = (base.n_rows().max(1) as f64).log2().ceil().max(1.0) as u64;
                disk.charge_reads(descent);
                let kind = self.twin.catalog.table(qt.table).stats.index_on(col);
                let rows = match kind {
                    IndexKind::Clustered => {
                        // Matching rows are a prefix of the sorted heap:
                        // read exactly the pages holding them.
                        let n_match = base.peek_rows().iter().filter(|r| r[col] < thr).count();
                        let n_read = n_match.div_ceil(page_cap).max(1).min(base.n_pages());
                        let mut rows = Vec::new();
                        for p in 0..n_read {
                            rows.extend(disk.read_page(base, p));
                        }
                        rows.retain(|r| r[col] < thr);
                        rows
                    }
                    _ => {
                        // Unclustered (or formally unindexed): one heap
                        // page I/O per matching row, wherever it lives.
                        let mut rows = Vec::new();
                        for p in 0..base.n_pages() {
                            for row in base.peek_page(p) {
                                if row[col] < thr {
                                    let _ = disk.read_page(base, p);
                                    rows.push(row.clone());
                                }
                            }
                        }
                        if rows.is_empty() {
                            disk.charge_reads(1);
                        }
                        rows
                    }
                };
                ios.push(disk.io().total());
                Ok((rows, vec![*table]))
            }
            PlanNode::Sort { input, key } => {
                let (rows, layout) = self.exec_node(input, m, ios)?;
                let off = self.column_offset(&layout, *key);
                let t = DiskTable::from_rows(rows, page_cap);
                let r = extops::external_sort(&t, off, m, page_cap);
                ios.push(r.io);
                Ok((r.rows, layout))
            }
            PlanNode::Join {
                method,
                outer,
                inner,
            } => {
                let (orows, olay) = self.exec_node(outer, m, ios)?;
                let (irows, ilay) = self.exec_node(inner, m, ios)?;
                let crossing = self
                    .twin
                    .query
                    .joins_crossing(outer.tables(), inner.tables());
                let Some(&first) = crossing.first() else {
                    return Err(CalibError::NoJoinPredicate(node.compact()));
                };
                let pred = &self.twin.query.joins[first];
                let (okey, ikey) = if outer.tables().contains(pred.left.table) {
                    (pred.left, pred.right)
                } else {
                    (pred.right, pred.left)
                };
                let o_off = self.column_offset(&olay, okey);
                let i_off = self.column_offset(&ilay, ikey);
                let ot = DiskTable::from_rows(orows, page_cap);
                let it = DiskTable::from_rows(irows, page_cap);
                let r = match method {
                    JoinMethod::SortMerge => {
                        extops::sort_merge_join(&ot, &it, o_off, i_off, m, page_cap)
                    }
                    JoinMethod::GraceHash => {
                        extops::grace_hash_join(&ot, &it, o_off, i_off, m, page_cap)
                    }
                    JoinMethod::PageNestedLoop => {
                        extops::page_nl_join(&ot, &it, o_off, i_off, m, page_cap)
                    }
                    JoinMethod::BlockNestedLoop => {
                        extops::block_nl_join(&ot, &it, o_off, i_off, m, page_cap)
                    }
                };
                ios.push(r.io);
                // Output layout is outer ++ inner; apply any further
                // crossing predicates as an uncharged post-filter.
                let mut layout = olay;
                layout.extend_from_slice(&ilay);
                let mut rows = r.rows;
                for &j in crossing.iter().skip(1) {
                    let p = &self.twin.query.joins[j];
                    let l = self.column_offset(&layout, p.left);
                    let rgt = self.column_offset(&layout, p.right);
                    rows.retain(|row| row[l] == row[rgt]);
                }
                Ok((rows, layout))
            }
        }
    }

    /// Offset of `col` in the composite row of a subtree whose tables
    /// appear in `layout` order.
    fn column_offset(&self, layout: &[usize], col: ColumnRef) -> usize {
        let mut off = 0;
        for &t in layout {
            if t == col.table {
                return off + col.column;
            }
            off += self.dataset.domains[t].len();
        }
        unreachable!("column {col:?} not in subtree layout {layout:?}")
    }
}

/// Scale a query's catalog down to an executable replica: each query-table
/// occurrence becomes its own twin table of at most `cfg.max_pages` pages
/// (ratios preserved, two-page floor), with `rows = pages · page_cap`, and
/// every join selectivity rewritten to the page-level value the shared
/// join domain induces (`page_cap / JOIN_DOMAIN`).  Filter selectivities
/// are rewritten by [`Calibrator::new`] once thresholds are known.
pub fn physical_twin(catalog: &Catalog, query: &Query, cfg: &CalibConfig) -> Twin {
    let max_orig = query
        .tables
        .iter()
        .map(|qt| catalog.table(qt.table).stats.pages)
        .max()
        .unwrap_or(1)
        .max(1);
    let scale = (max_orig as f64 / cfg.max_pages as f64).max(1.0);
    let mut twin_cat = Catalog::new();
    let mut twin_q = query.clone();
    for (i, qt) in query.tables.iter().enumerate() {
        let stats = &catalog.table(qt.table).stats;
        let pages = ((stats.pages as f64 / scale).round() as u64).max(2);
        let rows = pages * cfg.page_cap as u64;
        let columns = stats
            .columns
            .iter()
            .map(|c| ColumnStats {
                name: c.name.clone(),
                distinct: c.distinct.clamp(2, rows),
                index: c.index,
            })
            .collect();
        let name = format!("{}#{}", catalog.table(qt.table).name, i);
        let id = twin_cat.add_table(name, TableStats::new(pages, rows, columns));
        twin_q.tables[i].table = id;
    }
    let page_sel = cfg.page_cap as f64 / datagen::JOIN_DOMAIN as f64;
    for j in &mut twin_q.joins {
        j.selectivity = Distribution::point(page_sel);
    }
    Twin {
        catalog: twin_cat,
        query: twin_q,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lec_core::fixtures;
    use lec_core::{Mode, Optimizer, PointEstimate};
    use lec_prob::MarkovChain;

    fn spread(center: f64, n: usize) -> Distribution {
        // Integer page buckets ≥ 3 around `center`.
        let vals: Vec<f64> = (0..n).map(|i| (center + 4.0 * i as f64).round()).collect();
        Distribution::from_pairs(vals.iter().map(|&v| (v, 1.0 / n as f64))).unwrap()
    }

    #[test]
    fn twin_preserves_ratios_and_rewrites_selectivities() {
        let (cat, q) = fixtures::example_1_1();
        let cfg = CalibConfig::default();
        let twin = physical_twin(&cat, &q, &cfg);
        let a = twin.catalog.table(twin.query.tables[0].table).stats.pages;
        let b = twin.catalog.table(twin.query.tables[1].table).stats.pages;
        assert_eq!(a, 32); // 1e6 pages scaled to the cap
        assert_eq!(b, 13); // 4e5 · 32/1e6 = 12.8 → 13
        for t in [0, 1] {
            let stats = &twin.catalog.table(twin.query.tables[t].table).stats;
            assert_eq!(stats.rows, stats.pages * cfg.page_cap as u64);
        }
        let sel = twin.query.joins[0].selectivity.mean();
        assert_eq!(sel, cfg.page_cap as f64 / datagen::JOIN_DOMAIN as f64);
    }

    #[test]
    fn seq_scan_measurement_is_exact() {
        let (cat, q) = fixtures::example_1_1();
        let cal = Calibrator::new(&cat, &q, CalibConfig::default());
        let plan = PlanNode::SeqScan { table: 0 };
        let env = Environment::Static(Distribution::point(8.0));
        let audit = cal.audit(&plan, &env, None).unwrap();
        assert_eq!(audit.nodes.len(), 1);
        assert_eq!(audit.nodes[0].class, OpClass::SeqAccess);
        // Model seq scan = raw pages; measured = the same pages read once.
        assert_eq!(audit.predicted_expected, audit.measured_expected);
        assert_eq!(audit.relative_error(), 0.0);
    }

    #[test]
    fn audit_trace_is_consistent_and_sorted() {
        let (cat, q) = fixtures::three_chain();
        let cal = Calibrator::new(&cat, &q, CalibConfig::default());
        let memory = spread(6.0, 3);
        let optimized = Optimizer::new(&cal.twin().catalog, memory.clone())
            .optimize(&cal.twin().query, &Mode::AlgorithmC)
            .unwrap();
        let env = Environment::Static(memory);
        let tel = Telemetry::on();
        let audit = cal.audit(&optimized.plan, &env, Some(&tel)).unwrap();
        // Per-node predictions agree with the whole-plan prediction.
        assert!(
            audit.node_consistency_rel <= 1e-9,
            "node consistency {}",
            audit.node_consistency_rel
        );
        // The optimizer's own expected cost is the audit's prediction.
        assert!(
            (audit.predicted_expected - optimized.cost).abs() <= 1e-6 * optimized.cost,
            "audit {} vs optimizer {}",
            audit.predicted_expected,
            optimized.cost
        );
        // Telemetry saw every node's error and the mirrored page I/O.
        let recorded: u64 = OpClass::all()
            .iter()
            .map(|&c| tel.calibration_snapshot(c).count())
            .sum();
        assert_eq!(recorded as usize, audit.nodes.len());
        assert!(tel.io().reads() > 0);
        // JSON is sorted-key at every level.
        fn assert_sorted(v: &Value) {
            match v {
                Value::Object(pairs) => {
                    for w in pairs.windows(2) {
                        assert!(w[0].0 < w[1].0, "{} !< {}", w[0].0, w[1].0);
                    }
                    pairs.iter().for_each(|(_, v)| assert_sorted(v));
                }
                Value::Array(items) => items.iter().for_each(assert_sorted),
                _ => {}
            }
        }
        assert_sorted(&audit.to_json());
        // Simulated mean and measured expectation are both positive and
        // within the same order of magnitude as the prediction.
        assert!(audit.sim.mean > 0.0);
        assert!(audit.measured_expected > 0.0);
        assert!(audit.relative_error() < 3.0);
    }

    #[test]
    fn dynamic_audit_weights_phases_by_the_chain() {
        let (cat, q) = fixtures::three_chain();
        let cal = Calibrator::new(&cat, &q, CalibConfig::default());
        let states = vec![4.0, 8.0, 16.0];
        let chain = MarkovChain::birth_death(states.clone(), 0.4, 0.2).unwrap();
        let initial = Distribution::point(8.0);
        let env = Environment::Dynamic {
            initial: initial.clone(),
            chain: chain.clone(),
        };
        let mode = Mode::Lsc(PointEstimate::Mean);
        let optimized = Optimizer::new(&cal.twin().catalog, initial)
            .optimize(&cal.twin().query, &mode)
            .unwrap();
        let audit = cal.audit(&optimized.plan, &env, None).unwrap();
        assert_eq!(audit.buckets, states);
        assert!(audit.node_consistency_rel <= 1e-9);
        // The dynamic expectation matches the library computation (the
        // audit calls it, but the totals must also equal the per-node sum).
        let node_sum: f64 = audit.nodes.iter().map(|n| n.predicted_expected).sum();
        assert!(
            (node_sum - audit.predicted_expected).abs() <= 1e-9 * audit.predicted_expected,
            "node sum {} vs whole {}",
            node_sum,
            audit.predicted_expected
        );
    }

    #[test]
    fn cross_product_plans_are_rejected() {
        let (cat, q) = fixtures::example_1_1();
        let mut q2 = q.clone();
        q2.joins.clear();
        let cal = Calibrator::new(&cat, &q2, CalibConfig::default());
        let plan = PlanNode::join(
            lec_plan::JoinMethod::GraceHash,
            PlanNode::SeqScan { table: 0 },
            PlanNode::SeqScan { table: 1 },
        );
        let env = Environment::Static(Distribution::point(8.0));
        match cal.audit(&plan, &env, None) {
            Err(CalibError::NoJoinPredicate(_)) => {}
            other => panic!("expected NoJoinPredicate, got {other:?}"),
        }
    }

    #[test]
    fn fractional_memory_buckets_are_rejected() {
        let (cat, q) = fixtures::example_1_1();
        let cal = Calibrator::new(&cat, &q, CalibConfig::default());
        let plan = PlanNode::SeqScan { table: 0 };
        let env = Environment::Static(Distribution::point(7.5));
        match cal.audit(&plan, &env, None) {
            Err(CalibError::BadMemoryBucket(m)) => assert_eq!(m, 7.5),
            other => panic!("expected BadMemoryBucket, got {other:?}"),
        }
    }
}
