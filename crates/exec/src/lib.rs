//! # lec-exec — execution substrate for the LEC reproduction
//!
//! The paper closes by promising "a prototype ... to test its benefits
//! against realistic queries and execution environments" (§4).  This crate
//! is that prototype's execution half:
//!
//! * [`mod@env`] — run-time environments producing per-phase memory values
//!   (static draw, or §3.5 Markov drift);
//! * [`sim`] — Monte-Carlo plan-cost simulation: sample a memory trace,
//!   charge each §3.5 phase its model cost, average over many runs — the
//!   measured quantity the LEC objective claims to minimize;
//! * [`bufpool`] / [`extops`] — page-granular disk tables and *real*
//!   external-memory operators (external sort, sort-merge join, Grace hash
//!   join, block nested-loop) that count actual page I/O under a buffer
//!   budget, demonstrating that the cost cliffs driving the paper exist in
//!   a genuine implementation (experiment E11);
//! * [`reopt`] — an idealized \[KD98\]-style mid-query re-optimization
//!   baseline (§2.3's "wait until they have more information" family),
//!   for head-to-head comparison with Algorithm C under drift;
//! * [`datagen`] / [`mod@tuple`] — synthetic rows plus a tuple-at-a-time
//!   executor used to verify that every plan the optimizer can emit for a
//!   query computes the same result (the §2.2 commutativity/associativity
//!   observations, made executable).
//!
//! ## Calibration: auditing predictions against ground truth
//!
//! The [`calib`] module closes the predicted-vs-measured loop.  A
//! [`calib::Calibrator`] builds a *physical twin* of a query — every
//! table scaled down to an executable size with `rows = pages·page_cap`
//! and selectivities rewritten to the page-exact values the generated
//! data induces — then executes any plan through the real page-counting
//! operators at every memory bucket of an [`Environment`].  The result is
//! a [`calib::CostAudit`]: for each plan node, predicted cost (point per
//! bucket, and expected under the environment's per-phase marginals)
//! beside measured page I/O and the Monte-Carlo simulated cost, dumpable
//! as sorted-key JSON.  With a `lec_telemetry::Telemetry` attached, each
//! node's prediction error lands in the per-operator-class calibration
//! histograms and all page I/O mirrors into cumulative counters, so both
//! surface through `metrics_json` and the daemon's `STATS`/Prometheus
//! endpoints.  [`calib::op_band`] records the measured-vs-formula
//! envelope each operator class is expected to stay inside; the
//! `calibration` bench pins per-optimizer-mode error bands in
//! `BENCH_calibration.json`.

pub mod bufpool;
pub mod calib;
pub mod datagen;
pub mod env;
pub mod extops;
pub mod reopt;
pub mod sim;
pub mod tuple;

pub use bufpool::{install_io_sink, Disk, DiskTable, Io};
pub use calib::{op_band, CalibConfig, CalibError, Calibrator, CostAudit, NodeAudit, Twin};
pub use datagen::{generate, Dataset};
pub use env::Environment;
pub use extops::{
    block_nl_join, external_sort, grace_hash_join, page_nl_join, sort_merge_join, OpResult,
};
pub use reopt::{monte_carlo_reopt, run_reoptimizing, ReoptRun};
pub use sim::{monte_carlo, SimStats};
pub use tuple::{execute, Relation};
