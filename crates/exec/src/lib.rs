//! # lec-exec — execution substrate for the LEC reproduction
//!
//! The paper closes by promising "a prototype ... to test its benefits
//! against realistic queries and execution environments" (§4).  This crate
//! is that prototype's execution half:
//!
//! * [`mod@env`] — run-time environments producing per-phase memory values
//!   (static draw, or §3.5 Markov drift);
//! * [`sim`] — Monte-Carlo plan-cost simulation: sample a memory trace,
//!   charge each §3.5 phase its model cost, average over many runs — the
//!   measured quantity the LEC objective claims to minimize;
//! * [`bufpool`] / [`extops`] — page-granular disk tables and *real*
//!   external-memory operators (external sort, sort-merge join, Grace hash
//!   join, block nested-loop) that count actual page I/O under a buffer
//!   budget, demonstrating that the cost cliffs driving the paper exist in
//!   a genuine implementation (experiment E11);
//! * [`reopt`] — an idealized \[KD98\]-style mid-query re-optimization
//!   baseline (§2.3's "wait until they have more information" family),
//!   for head-to-head comparison with Algorithm C under drift;
//! * [`datagen`] / [`mod@tuple`] — synthetic rows plus a tuple-at-a-time
//!   executor used to verify that every plan the optimizer can emit for a
//!   query computes the same result (the §2.2 commutativity/associativity
//!   observations, made executable).

pub mod bufpool;
pub mod datagen;
pub mod env;
pub mod extops;
pub mod reopt;
pub mod sim;
pub mod tuple;

pub use bufpool::{Disk, DiskTable, Io};
pub use datagen::{generate, Dataset};
pub use env::Environment;
pub use extops::{block_nl_join, external_sort, grace_hash_join, sort_merge_join, OpResult};
pub use reopt::{monte_carlo_reopt, run_reoptimizing, ReoptRun};
pub use sim::{monte_carlo, SimStats};
pub use tuple::{execute, Relation};
