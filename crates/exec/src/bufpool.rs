//! Page-granular storage with I/O accounting.
//!
//! The external-memory operators in [`crate::extops`] run against these
//! disk tables under an explicit buffer budget of `m` pages, counting every
//! page read and write.  This is the substrate that demonstrates the cost
//! *cliffs* the whole paper is built on (E11): measured I/O against buffer
//! size shows the same discontinuities as the closed-form formulas.

use std::cell::RefCell;
use std::sync::Arc;

use lec_telemetry::IoTotals;

/// One tuple: a fixed-width vector of integers.
pub type Row = Vec<i64>;

thread_local! {
    /// Optional live mirror of this thread's disk counters, installed by
    /// calibration runs so buffer-pool work surfaces in telemetry
    /// (`metrics_json` / daemon `STATS`) while plans execute.
    static IO_SINK: RefCell<Option<Arc<IoTotals>>> = const { RefCell::new(None) };
}

/// Install (or clear, with `None`) this thread's telemetry I/O sink,
/// returning the previous one so callers can restore it.  Every page this
/// thread's [`Disk`]s read or write is mirrored into the sink as it
/// happens.
pub fn install_io_sink(sink: Option<Arc<IoTotals>>) -> Option<Arc<IoTotals>> {
    IO_SINK.with(|s| std::mem::replace(&mut *s.borrow_mut(), sink))
}

fn sink_reads(n: u64) {
    IO_SINK.with(|s| {
        if let Some(sink) = s.borrow().as_ref() {
            sink.add_reads(n);
        }
    });
}

fn sink_writes(n: u64) {
    IO_SINK.with(|s| {
        if let Some(sink) = s.borrow().as_ref() {
            sink.add_writes(n);
        }
    });
}

/// A page: up to `page_cap` rows.
pub type Page = Vec<Row>;

/// A disk-resident table: a sequence of pages.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiskTable {
    pages: Vec<Page>,
}

impl DiskTable {
    /// Build a table from rows, `page_cap` rows per page.
    pub fn from_rows(rows: impl IntoIterator<Item = Row>, page_cap: usize) -> Self {
        assert!(page_cap > 0);
        let mut pages = Vec::new();
        let mut cur: Page = Vec::with_capacity(page_cap);
        for r in rows {
            cur.push(r);
            if cur.len() == page_cap {
                pages.push(std::mem::take(&mut cur));
            }
        }
        if !cur.is_empty() {
            pages.push(cur);
        }
        DiskTable { pages }
    }

    /// Number of pages.
    pub fn n_pages(&self) -> usize {
        self.pages.len()
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.pages.iter().map(|p| p.len()).sum()
    }

    /// Borrow a page without I/O accounting (test inspection only).
    pub fn peek_page(&self, i: usize) -> &Page {
        &self.pages[i]
    }

    /// All rows, without I/O accounting (test inspection only).
    pub fn peek_rows(&self) -> Vec<Row> {
        self.pages.iter().flatten().cloned().collect()
    }
}

/// Read/write counters, in pages.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Io {
    /// Pages read.
    pub reads: u64,
    /// Pages written.
    pub writes: u64,
}

impl Io {
    /// Total I/Os.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

/// A handle charging I/O to a counter.
#[derive(Debug)]
pub struct Disk {
    io: Io,
}

impl Default for Disk {
    fn default() -> Self {
        Self::new()
    }
}

impl Disk {
    /// Fresh disk with zeroed counters.
    pub fn new() -> Self {
        Disk { io: Io::default() }
    }

    /// Counter snapshot.
    pub fn io(&self) -> Io {
        self.io
    }

    /// Reset counters.
    pub fn reset(&mut self) {
        self.io = Io::default();
    }

    /// Charge `n` page reads without moving data (synthetic accounting,
    /// e.g. an index descent).
    pub fn charge_reads(&mut self, n: u64) {
        self.io.reads += n;
        sink_reads(n);
    }

    /// Charge `n` page writes without moving data.
    pub fn charge_writes(&mut self, n: u64) {
        self.io.writes += n;
        sink_writes(n);
    }

    /// Read page `i` of `table` (one page read).
    pub fn read_page(&mut self, table: &DiskTable, i: usize) -> Page {
        self.io.reads += 1;
        sink_reads(1);
        table.pages[i].clone()
    }

    /// Append a page to `table` (one page write).
    pub fn append_page(&mut self, table: &mut DiskTable, page: Page) {
        assert!(!page.is_empty(), "never write empty pages");
        self.io.writes += 1;
        sink_writes(1);
        table.pages.push(page);
    }

    /// Write all `rows` as pages of `page_cap` (counts one write per page).
    pub fn write_rows(
        &mut self,
        rows: impl IntoIterator<Item = Row>,
        page_cap: usize,
    ) -> DiskTable {
        let table = DiskTable::from_rows(rows, page_cap);
        self.io.writes += table.n_pages() as u64;
        sink_writes(table.n_pages() as u64);
        table
    }

    /// Read the whole table into memory (counts every page).
    pub fn read_all(&mut self, table: &DiskTable) -> Vec<Row> {
        self.io.reads += table.n_pages() as u64;
        sink_reads(table.n_pages() as u64);
        table.pages.iter().flatten().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(n: usize) -> Vec<Row> {
        (0..n as i64).map(|i| vec![i, i * 10]).collect()
    }

    #[test]
    fn pagination() {
        let t = DiskTable::from_rows(rows(10), 4);
        assert_eq!(t.n_pages(), 3);
        assert_eq!(t.n_rows(), 10);
        assert_eq!(t.peek_page(2).len(), 2); // remainder page
    }

    #[test]
    fn io_accounting() {
        let mut disk = Disk::new();
        let t = DiskTable::from_rows(rows(8), 2);
        let _ = disk.read_page(&t, 0);
        assert_eq!(
            disk.io(),
            Io {
                reads: 1,
                writes: 0
            }
        );
        let all = disk.read_all(&t);
        assert_eq!(all.len(), 8);
        assert_eq!(disk.io().reads, 5);
        let out = disk.write_rows(all, 2);
        assert_eq!(out.n_pages(), 4);
        assert_eq!(disk.io().writes, 4);
        assert_eq!(disk.io().total(), 9);
        disk.reset();
        assert_eq!(disk.io(), Io::default());
    }

    #[test]
    fn append_page_counts_one_write() {
        let mut disk = Disk::new();
        let mut t = DiskTable::default();
        disk.append_page(&mut t, vec![vec![1], vec![2]]);
        assert_eq!(t.n_pages(), 1);
        assert_eq!(disk.io().writes, 1);
    }

    #[test]
    #[should_panic(expected = "never write empty pages")]
    fn empty_page_write_is_a_bug() {
        let mut disk = Disk::new();
        let mut t = DiskTable::default();
        disk.append_page(&mut t, vec![]);
    }

    #[test]
    fn io_sink_mirrors_disk_counters_while_installed() {
        let sink = Arc::new(IoTotals::default());
        let prev = install_io_sink(Some(Arc::clone(&sink)));
        assert!(prev.is_none());
        let mut disk = Disk::new();
        let t = DiskTable::from_rows((0..8i64).map(|i| vec![i]), 2);
        let _ = disk.read_all(&t);
        let _ = disk.write_rows((0..4i64).map(|i| vec![i]), 2);
        disk.charge_reads(3);
        // Uninstall; further I/O must not leak into the sink.
        let got = install_io_sink(None).expect("sink was installed");
        let _ = disk.read_page(&t, 0);
        assert_eq!(got.reads(), 4 + 3);
        assert_eq!(got.writes(), 2);
        assert_eq!(disk.io().reads, 8);
    }
}
