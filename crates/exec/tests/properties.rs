//! Property tests for the execution substrate: external operators against
//! each other and against the closed-form I/O model.

use lec_cost::formulas;
use lec_exec::bufpool::Row;
use lec_exec::{
    block_nl_join, external_sort, grace_hash_join, op_band, page_nl_join, sort_merge_join,
    DiskTable,
};
use lec_telemetry::OpClass;
use proptest::prelude::*;

const PAGE_CAP: usize = 4;

fn arb_table(max_rows: usize, key_domain: i64) -> impl Strategy<Value = DiskTable> {
    prop::collection::vec((0..key_domain, 0i64..1_000_000), 1..max_rows).prop_map(|rows| {
        DiskTable::from_rows(
            rows.into_iter()
                .map(|(k, v)| vec![k, v])
                .collect::<Vec<Row>>(),
            PAGE_CAP,
        )
    })
}

fn canonical(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort();
    rows
}

/// In-memory reference join (nested loop over all pairs).
fn reference_join(a: &DiskTable, b: &DiskTable) -> Vec<Row> {
    let mut out = Vec::new();
    for l in a.peek_rows() {
        for r in b.peek_rows() {
            if l[0] == r[0] {
                let mut row = l.clone();
                row.extend_from_slice(&r);
                out.push(row);
            }
        }
    }
    canonical(out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// External sort is a permutation-preserving sort at every memory
    /// budget, and its I/O never beats the read-everything lower bound.
    #[test]
    fn external_sort_is_a_sort(t in arb_table(200, 1000), m in 3usize..64) {
        let r = external_sort(&t, 0, m, PAGE_CAP);
        prop_assert_eq!(r.rows.len(), t.n_rows());
        for w in r.rows.windows(2) {
            prop_assert!(w[0][0] <= w[1][0]);
        }
        prop_assert_eq!(canonical(r.rows), canonical(t.peek_rows()));
        prop_assert!(r.io >= t.n_pages() as u64);
    }

    /// Sort I/O decreases (weakly) with more memory.
    #[test]
    fn sort_io_monotone_in_memory(t in arb_table(200, 1000), m1 in 3usize..64, m2 in 3usize..64) {
        let (lo, hi) = if m1 <= m2 { (m1, m2) } else { (m2, m1) };
        let io_lo = external_sort(&t, 0, lo, PAGE_CAP).io;
        let io_hi = external_sort(&t, 0, hi, PAGE_CAP).io;
        prop_assert!(io_hi <= io_lo, "more memory cost more I/O: {io_hi} > {io_lo}");
    }

    /// All three join algorithms agree with the reference join, at any
    /// memory budget.
    #[test]
    fn join_algorithms_agree_with_reference(
        a in arb_table(120, 24),
        b in arb_table(120, 24),
        m in 3usize..40,
    ) {
        let want = reference_join(&a, &b);
        let sm = canonical(sort_merge_join(&a, &b, 0, 0, m, PAGE_CAP).rows);
        prop_assert_eq!(&sm, &want, "sort-merge differs");
        let gh = canonical(grace_hash_join(&a, &b, 0, 0, m, PAGE_CAP).rows);
        prop_assert_eq!(&gh, &want, "grace differs");
        let nl = canonical(block_nl_join(&a, &b, 0, 0, m, PAGE_CAP).rows);
        prop_assert_eq!(&nl, &want, "block NL differs");
    }

    /// Block nested-loop I/O matches its closed-form formula exactly.
    #[test]
    fn bnl_io_is_exact(a in arb_table(150, 50), b in arb_table(150, 50), m in 3usize..40) {
        let r = block_nl_join(&a, &b, 0, 0, m, PAGE_CAP);
        let blocks = a.n_pages().div_ceil(m - 2);
        prop_assert_eq!(r.io as usize, a.n_pages() + blocks * b.n_pages());
    }

    /// Grace hash never reads/writes more than the deepest-regime model
    /// bound and never less than one pass over both inputs.
    #[test]
    fn grace_io_within_model_envelope(
        a in arb_table(150, 64),
        b in arb_table(150, 64),
        m in 4usize..40,
    ) {
        let r = grace_hash_join(&a, &b, 0, 0, m, PAGE_CAP);
        let total = (a.n_pages() + b.n_pages()) as u64;
        prop_assert!(r.io >= total);
        // Deepest model regime is 6(a+b); partial pages can add slack, and
        // the recursion-depth fallback bounds everything by the per-level
        // 2x growth over 8 levels at the extreme.  Use a generous envelope
        // that still catches runaway behaviour.
        prop_assert!(r.io <= 8 * total + 64, "io {} total {total}", r.io);
    }

    /// Page nested-loop I/O matches its closed-form formula exactly, in
    /// both regimes (resident smaller side, and per-outer-page rescans).
    #[test]
    fn page_nl_io_is_exact(a in arb_table(150, 50), b in arb_table(150, 50), m in 3usize..40) {
        let r = page_nl_join(&a, &b, 0, 0, m, PAGE_CAP);
        let model = formulas::nl_join_cost(a.n_pages() as f64, b.n_pages() as f64, m as f64);
        prop_assert_eq!(r.io as f64, model);
    }

    /// The calibration contract (ISSUE 10): every external operator's
    /// measured page I/O stays inside its class's measured-vs-formula
    /// band [`op_band`] against the closed-form `lec-cost` formula, over
    /// randomized table sizes, buffer budgets, and memory buckets.  The
    /// bands are wide where the implementation's cliffs sit at fan-in
    /// boundaries rather than the model's `√R`, and tight (±0.1%) where
    /// the operator *is* the formula.
    #[test]
    fn operator_io_within_calibration_band_of_formula(
        a in arb_table(150, 64),
        b in arb_table(150, 64),
        m in 3usize..40,
    ) {
        let (ap, bp) = (a.n_pages() as f64, b.n_pages() as f64);
        let mf = m as f64;
        let cases: Vec<(OpClass, u64, f64, &str)> = vec![
            (
                OpClass::Sort,
                external_sort(&a, 0, m, PAGE_CAP).io,
                formulas::sort_cost(ap, mf),
                "sort",
            ),
            (
                OpClass::SortMerge,
                sort_merge_join(&a, &b, 0, 0, m, PAGE_CAP).io,
                formulas::sm_join_cost(ap, bp, mf),
                "sort-merge",
            ),
            (
                OpClass::GraceHash,
                grace_hash_join(&a, &b, 0, 0, m, PAGE_CAP).io,
                formulas::grace_join_cost(ap, bp, mf),
                "grace",
            ),
            (
                OpClass::BlockNestedLoop,
                block_nl_join(&a, &b, 0, 0, m, PAGE_CAP).io,
                formulas::bnl_join_cost(ap, bp, mf),
                "block-nl",
            ),
            (
                OpClass::PageNestedLoop,
                page_nl_join(&a, &b, 0, 0, m, PAGE_CAP).io,
                formulas::nl_join_cost(ap, bp, mf),
                "page-nl",
            ),
        ];
        for (class, io, model, name) in cases {
            let (lo, hi) = op_band(class);
            let ratio = io as f64 / model;
            prop_assert!(
                ratio >= lo && ratio <= hi,
                "{name}: measured {io} vs model {model} (ratio {ratio:.3}) \
                 outside band [{lo}, {hi}] at |A|={ap}, |B|={bp}, m={m}"
            );
        }
    }
}
