//! Exhaustive enumeration of the left-deep plan space, as ground truth for
//! Theorems 2.1, 3.3 and 3.4.
//!
//! The space enumerated is exactly the one the DP searches: left-deep join
//! orders whose every prefix is connected (no cross products), all four
//! join methods per join, all access paths per table, and a root sort
//! enforcer when the query requires an order the plan does not provide.

use crate::error::OptError;
use lec_cost::{
    expected_plan_cost_dynamic, expected_plan_cost_static, output_order, plan_cost_at,
    plan_output_pages, CostModel,
};
use lec_plan::{JoinMethod, PlanNode, TableSet};
use lec_prob::{Distribution, MarkovChain};

/// Objective to minimize.
pub enum Objective<'a> {
    /// `C(P, m)` at a single memory value (LSC ground truth).
    Point(f64),
    /// `EC(P)` under a static memory distribution (Algorithm C ground
    /// truth).
    Expected(&'a Distribution),
    /// `EC(P)` with per-phase Markov evolution (§3.5 ground truth).
    Dynamic {
        /// Phase-0 memory distribution.
        initial: &'a Distribution,
        /// The transition model.
        chain: &'a MarkovChain,
    },
}

/// Result of the exhaustive search.
#[derive(Debug, Clone)]
pub struct ExhaustiveResult {
    /// The optimal plan.
    pub plan: PlanNode,
    /// Its objective value.
    pub cost: f64,
    /// Number of complete plans costed.
    pub plans_costed: u64,
}

/// Hard cap on query size: the space is `O(n! · 4^(n-1) · 2^n)`.
pub const MAX_EXHAUSTIVE_TABLES: usize = 7;

/// Exhaustively find the optimal left-deep plan under `objective`.
pub fn exhaustive_best(
    model: &CostModel<'_>,
    objective: &Objective<'_>,
) -> Result<ExhaustiveResult, OptError> {
    let query = model.query();
    let n = query.n_tables();
    if n == 0 {
        return Err(OptError::EmptyQuery);
    }
    if n > MAX_EXHAUSTIVE_TABLES {
        return Err(OptError::BadParameter(
            "exhaustive search is capped at 7 tables",
        ));
    }

    let mut best: Option<(PlanNode, f64)> = None;
    let mut plans_costed = 0u64;
    let mut prefix: Vec<usize> = Vec::with_capacity(n);
    let mut access_plans: Vec<Vec<PlanNode>> = Vec::with_capacity(n);
    for idx in 0..n {
        let mut paths = Vec::new();
        for path in model.access_paths(idx) {
            paths.push(match path {
                lec_cost::AccessPath::SeqScan => PlanNode::SeqScan { table: idx },
                lec_cost::AccessPath::IndexScan => PlanNode::IndexScan { table: idx },
            });
        }
        access_plans.push(paths);
    }

    permute(
        model,
        objective,
        &access_plans,
        &mut prefix,
        TableSet::EMPTY,
        &mut best,
        &mut plans_costed,
    );
    let (plan, cost) = best.ok_or(OptError::NoPlanFound)?;
    Ok(ExhaustiveResult { plan, cost, plans_costed })
}

fn permute(
    model: &CostModel<'_>,
    objective: &Objective<'_>,
    access_plans: &[Vec<PlanNode>],
    prefix: &mut Vec<usize>,
    used: TableSet,
    best: &mut Option<(PlanNode, f64)>,
    plans_costed: &mut u64,
) {
    let n = access_plans.len();
    if prefix.len() == n {
        evaluate_permutation(model, objective, access_plans, prefix, best, plans_costed);
        return;
    }
    for idx in 0..n {
        if used.contains(idx) {
            continue;
        }
        // Every prefix after the first table must stay connected.
        if !prefix.is_empty() && !model.query().is_connected_to(used, idx) {
            continue;
        }
        prefix.push(idx);
        permute(
            model,
            objective,
            access_plans,
            prefix,
            used.with(idx),
            best,
            plans_costed,
        );
        prefix.pop();
    }
}

fn evaluate_permutation(
    model: &CostModel<'_>,
    objective: &Objective<'_>,
    access_plans: &[Vec<PlanNode>],
    order: &[usize],
    best: &mut Option<(PlanNode, f64)>,
    plans_costed: &mut u64,
) {
    let n = order.len();
    let n_joins = n.saturating_sub(1);
    // Enumerate method assignments (base-4 counter) × access path choices.
    let method_combos = 4usize.pow(n_joins as u32);
    let mut path_choice = vec![0usize; n];
    loop {
        for combo in 0..method_combos {
            let mut plan = access_plans[order[0]][path_choice[0]].clone();
            let mut rem = combo;
            for (k, &idx) in order.iter().enumerate().skip(1) {
                let method = JoinMethod::ALL[rem % 4];
                rem /= 4;
                let _ = k;
                plan = PlanNode::join(
                    method,
                    plan,
                    access_plans[idx][path_choice[order
                        .iter()
                        .position(|&t| t == idx)
                        .expect("idx from order")]]
                    .clone(),
                );
            }
            let plan = enforce_order(model, plan);
            let cost = cost_of(model, objective, &plan);
            *plans_costed += 1;
            if best.as_ref().is_none_or(|(_, c)| cost < *c) {
                *best = Some((plan, cost));
            }
        }
        // Advance the mixed-radix access-path counter.
        let mut i = 0;
        loop {
            if i == n {
                return;
            }
            path_choice[i] += 1;
            if path_choice[i] < access_plans[order[i]].len() {
                break;
            }
            path_choice[i] = 0;
            i += 1;
        }
    }
}

/// Add a root sort when the query requires an order the plan lacks.
fn enforce_order(model: &CostModel<'_>, plan: PlanNode) -> PlanNode {
    match model.query().required_order {
        Some(want)
            if !model
                .equivalences()
                .satisfies(output_order(model, &plan), want) =>
        {
            PlanNode::sort(plan, want)
        }
        _ => plan,
    }
}

fn cost_of(model: &CostModel<'_>, objective: &Objective<'_>, plan: &PlanNode) -> f64 {
    match objective {
        Objective::Point(m) => plan_cost_at(model, plan, *m),
        Objective::Expected(dist) => expected_plan_cost_static(model, plan, dist),
        Objective::Dynamic { initial, chain } => {
            expected_plan_cost_dynamic(model, plan, initial, chain)
                .unwrap_or(f64::INFINITY)
        }
    }
}

/// Output size of the winning plan (diagnostic helper).
pub fn result_pages(model: &CostModel<'_>, plan: &PlanNode) -> f64 {
    plan_output_pages(model, plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg_c::{optimize_lec_dynamic, optimize_lec_static};
    use crate::fixtures::{example_1_1, example_1_1_memory, three_chain};
    use crate::lsc::optimize_lsc;

    #[test]
    fn dp_matches_exhaustive_point() {
        let (cat, q) = three_chain();
        let model = CostModel::new(&cat, &q);
        for m in [30.0, 150.0, 700.0, 20_000.0] {
            let dp = optimize_lsc(&model, m).unwrap();
            let ex = exhaustive_best(&model, &Objective::Point(m)).unwrap();
            assert!(
                (dp.cost - ex.cost).abs() < 1e-6,
                "m={m}: dp {} vs exhaustive {}",
                dp.cost,
                ex.cost
            );
        }
    }

    #[test]
    fn dp_matches_exhaustive_expected() {
        // Theorem 3.3: Algorithm C returns the LEC left-deep plan.
        let (cat, q) = three_chain();
        let model = CostModel::new(&cat, &q);
        for spread in [0.2, 0.5, 0.9] {
            let memory =
                lec_prob::presets::spread_family(400.0, spread, 6).unwrap();
            let dp = optimize_lec_static(&model, &memory).unwrap();
            let ex =
                exhaustive_best(&model, &Objective::Expected(&memory)).unwrap();
            assert!(
                (dp.cost - ex.cost).abs() < 1e-6,
                "spread {spread}: dp {} vs exhaustive {}",
                dp.cost,
                ex.cost
            );
        }
    }

    #[test]
    fn dp_matches_exhaustive_dynamic() {
        // Theorem 3.4: still optimal with per-phase memory evolution.
        let (cat, q) = three_chain();
        let model = CostModel::new(&cat, &q);
        let states = vec![50.0, 200.0, 800.0];
        let chain = MarkovChain::birth_death(states, 0.35, 0.15).unwrap();
        let initial = Distribution::point(200.0);
        let dp = optimize_lec_dynamic(&model, &initial, &chain).unwrap();
        let ex = exhaustive_best(
            &model,
            &Objective::Dynamic { initial: &initial, chain: &chain },
        )
        .unwrap();
        assert!(
            (dp.cost - ex.cost).abs() < 1e-6,
            "dp {} vs exhaustive {}",
            dp.cost,
            ex.cost
        );
    }

    #[test]
    fn example_1_1_exhaustive_agrees_with_the_paper() {
        let (cat, q) = example_1_1();
        let model = CostModel::new(&cat, &q);
        let memory = example_1_1_memory();
        let ex = exhaustive_best(&model, &Objective::Expected(&memory)).unwrap();
        assert!(crate::fixtures::is_plan2(&ex.plan), "{}", ex.plan.compact());
        assert!((ex.cost - 4_209_000.0).abs() < 1.0);
        // 2 orders × 4 methods × 1 access path each = 8 plans.
        assert_eq!(ex.plans_costed, 8);
    }

    #[test]
    fn too_many_tables_is_rejected() {
        use lec_catalog::{ColumnStats, TableStats};
        use lec_plan::{ColumnRef, JoinPredicate, Query, QueryTable};
        let mut cat = lec_catalog::Catalog::new();
        let n = 8;
        let tables: Vec<_> = (0..n)
            .map(|i| {
                cat.add_table(
                    format!("T{i}"),
                    TableStats::new(100, 1000, vec![ColumnStats::plain("c", 10)]),
                )
            })
            .collect();
        let q = Query {
            tables: tables.into_iter().map(QueryTable::bare).collect(),
            joins: (0..n - 1)
                .map(|i| {
                    JoinPredicate::exact(
                        ColumnRef::new(i, 0),
                        ColumnRef::new(i + 1, 0),
                        1e-4,
                    )
                })
                .collect(),
            required_order: None,
        };
        let model = CostModel::new(&cat, &q);
        assert!(matches!(
            exhaustive_best(&model, &Objective::Point(100.0)),
            Err(OptError::BadParameter(_))
        ));
    }
}
