//! Exhaustive enumeration as ground truth for Theorems 2.1, 3.3 and 3.4.
//!
//! Policy over the engine: [`KeepAllPolicy`].  Run plain, the engine
//! materializes every plan of the requested shape exactly once, so the
//! query-size caps below reject spaces too large to hold.  Run with
//! [`SearchConfig::pruning`], the policy is a streaming branch-and-bound
//! verifier — every plan is still *costed*, but candidates that provably
//! cannot beat the incumbent are discarded on emission instead of held —
//! and both caps are lifted: feasibility is then bounded by how sharply
//! the bounds bite on the given statistics, not by a fixed table count.
//! The space covered for left-deep search is exactly the one the keep-1
//! policies prune: left-deep join orders whose every prefix is connected
//! (no cross products), all four join methods per join, all access paths
//! per table, and a root sort enforcer when the query requires an order
//! the plan does not provide.

use crate::error::OptError;
use crate::search::{
    run_search_with, DynamicExpectationCoster, KeepAllPolicy, PhaseCoster, PlanShape, PointCoster,
    SearchConfig, SearchExtras, SearchOutcome, StaticExpectationCoster,
};
use lec_cost::CostModel;
use lec_prob::{Distribution, MarkovChain};

/// Objective to minimize.
pub enum Objective<'a> {
    /// `C(P, m)` at a single memory value (LSC ground truth).
    Point(f64),
    /// `EC(P)` under a static memory distribution (Algorithm C ground
    /// truth).
    Expected(&'a Distribution),
    /// `EC(P)` with per-phase Markov evolution (§3.5 ground truth).
    Dynamic {
        /// Phase-0 memory distribution.
        initial: &'a Distribution,
        /// The transition model.
        chain: &'a MarkovChain,
    },
}

/// Cap on query size for *unpruned* runs: the space is
/// `O(n! · 4^(n-1) · 2^n)`.  Pruned runs ([`SearchConfig::pruning`])
/// stream instead of materializing and are not table-capped.
pub const MAX_EXHAUSTIVE_TABLES: usize = 7;

/// Cap on the number of complete plans an *unpruned* keep-all run may
/// materialize.  Unlike a streaming enumerator, the plain keep-all engine
/// holds every plan in memory, so dense join graphs (a 7-table clique is
/// ~20M plans) must be rejected up front rather than thrashed through.
/// Pruned runs keep only candidates that might still win and skip this
/// check too.
pub const MAX_EXHAUSTIVE_PLANS: u128 = 1_000_000;

/// Exhaustively find the optimal plan of `shape` under `objective`.  The
/// outcome's extras carry the number of complete plans costed.
pub fn exhaustive_best_shaped(
    model: &CostModel<'_>,
    objective: &Objective<'_>,
    shape: PlanShape,
) -> Result<SearchOutcome, OptError> {
    exhaustive_best_shaped_with(model, objective, shape, &SearchConfig::default())
}

/// [`exhaustive_best_shaped`] under an explicit [`SearchConfig`].  The
/// keep-all policy parallelizes like any other: every subset's complete
/// candidate list is built by exactly one worker, so the materialized
/// plan space — and its order — is identical to a serial run.
pub fn exhaustive_best_shaped_with(
    model: &CostModel<'_>,
    objective: &Objective<'_>,
    shape: PlanShape,
    config: &SearchConfig,
) -> Result<SearchOutcome, OptError> {
    let n = model.query().n_tables();
    if !config.pruning {
        if n > MAX_EXHAUSTIVE_TABLES {
            return Err(OptError::BadParameter(
                "exhaustive search is capped at 7 tables (enable pruning to lift)",
            ));
        }
        if crate::search::plan_space_size(model, shape) > MAX_EXHAUSTIVE_PLANS {
            return Err(OptError::BadParameter(
                "exhaustive plan space exceeds the 1M-plan keep-all cap (enable pruning to lift)",
            ));
        }
    }
    let par = config.bucket_parallelism_for(model.query());
    match objective {
        Objective::Point(m) => run_keep_all(model, shape, PointCoster { memory: *m }, config),
        Objective::Expected(dist) => run_keep_all(
            model,
            shape,
            StaticExpectationCoster::new(dist).with_parallelism(par),
            config,
        ),
        Objective::Dynamic { initial, chain } => {
            let coster =
                DynamicExpectationCoster::new(initial, chain, n.max(1))?.with_parallelism(par);
            run_keep_all(model, shape, coster, config)
        }
    }
}

/// Exhaustively find the optimal *left-deep* plan under `objective` — the
/// classic verifier interface.
pub fn exhaustive_best(
    model: &CostModel<'_>,
    objective: &Objective<'_>,
) -> Result<SearchOutcome, OptError> {
    exhaustive_best_shaped(model, objective, PlanShape::LeftDeep)
}

/// [`exhaustive_best`] under an explicit [`SearchConfig`].
pub fn exhaustive_best_with(
    model: &CostModel<'_>,
    objective: &Objective<'_>,
    config: &SearchConfig,
) -> Result<SearchOutcome, OptError> {
    exhaustive_best_shaped_with(model, objective, PlanShape::LeftDeep, config)
}

fn run_keep_all<C: PhaseCoster + Clone + Send>(
    model: &CostModel<'_>,
    shape: PlanShape,
    coster: C,
    config: &SearchConfig,
) -> Result<SearchOutcome, OptError> {
    let mut policy = KeepAllPolicy::new(coster);
    let run = run_search_with(model, shape, &mut policy, config)?;
    // Complete plans *costed* (the policy counts them at emission, before
    // any streaming discard): equals `roots.len()` unpruned, and keeps
    // honest books when pruning discards candidates it still had to cost.
    let plans_costed = policy.plans_emitted();
    let (best, stats) = run.into_best();
    Ok(SearchOutcome {
        plan: best.plan,
        cost: best.cost,
        stats,
        extras: SearchExtras::PlansCosted(plans_costed),
    })
}

/// Output size of the winning plan (diagnostic helper).
pub fn result_pages(model: &CostModel<'_>, plan: &lec_plan::PlanNode) -> f64 {
    lec_cost::plan_output_pages(model, plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg_c::{optimize_lec_dynamic, optimize_lec_static};
    use crate::fixtures::{example_1_1, example_1_1_memory, three_chain};
    use crate::lsc::optimize_lsc;

    #[test]
    fn dp_matches_exhaustive_point() {
        let (cat, q) = three_chain();
        let model = CostModel::new(&cat, &q);
        for m in [30.0, 150.0, 700.0, 20_000.0] {
            let dp = optimize_lsc(&model, m).unwrap();
            let ex = exhaustive_best(&model, &Objective::Point(m)).unwrap();
            assert!(
                (dp.cost - ex.cost).abs() < 1e-6,
                "m={m}: dp {} vs exhaustive {}",
                dp.cost,
                ex.cost
            );
        }
    }

    #[test]
    fn dp_matches_exhaustive_expected() {
        // Theorem 3.3: Algorithm C returns the LEC left-deep plan.
        let (cat, q) = three_chain();
        let model = CostModel::new(&cat, &q);
        for spread in [0.2, 0.5, 0.9] {
            let memory = lec_prob::presets::spread_family(400.0, spread, 6).unwrap();
            let dp = optimize_lec_static(&model, &memory).unwrap();
            let ex = exhaustive_best(&model, &Objective::Expected(&memory)).unwrap();
            assert!(
                (dp.cost - ex.cost).abs() < 1e-6,
                "spread {spread}: dp {} vs exhaustive {}",
                dp.cost,
                ex.cost
            );
        }
    }

    #[test]
    fn dp_matches_exhaustive_dynamic() {
        // Theorem 3.4: still optimal with per-phase memory evolution.
        let (cat, q) = three_chain();
        let model = CostModel::new(&cat, &q);
        let states = vec![50.0, 200.0, 800.0];
        let chain = MarkovChain::birth_death(states, 0.35, 0.15).unwrap();
        let initial = Distribution::point(200.0);
        let dp = optimize_lec_dynamic(&model, &initial, &chain).unwrap();
        let ex = exhaustive_best(
            &model,
            &Objective::Dynamic {
                initial: &initial,
                chain: &chain,
            },
        )
        .unwrap();
        assert!(
            (dp.cost - ex.cost).abs() < 1e-6,
            "dp {} vs exhaustive {}",
            dp.cost,
            ex.cost
        );
    }

    #[test]
    fn bushy_dp_matches_bushy_exhaustive() {
        // The §4 extension is optimal over its own (bushy) space too.
        let (cat, q) = crate::fixtures::diamond();
        let model = CostModel::new(&cat, &q);
        let memory = lec_prob::presets::spread_family(500.0, 0.5, 4).unwrap();
        let dp = crate::bushy::optimize_lec_bushy(&model, &memory).unwrap();
        let ex = exhaustive_best_shaped(&model, &Objective::Expected(&memory), PlanShape::Bushy)
            .unwrap();
        assert!(
            (dp.cost - ex.cost).abs() / ex.cost < 1e-9,
            "dp {} vs exhaustive {}",
            dp.cost,
            ex.cost
        );
        // The bushy space strictly contains the left-deep one here.
        let ld = exhaustive_best(&model, &Objective::Expected(&memory)).unwrap();
        assert!(ex.plans_costed().unwrap() > ld.plans_costed().unwrap());
    }

    #[test]
    fn example_1_1_exhaustive_agrees_with_the_paper() {
        let (cat, q) = example_1_1();
        let model = CostModel::new(&cat, &q);
        let memory = example_1_1_memory();
        let ex = exhaustive_best(&model, &Objective::Expected(&memory)).unwrap();
        assert!(crate::fixtures::is_plan2(&ex.plan), "{}", ex.plan.compact());
        assert!((ex.cost - 4_209_000.0).abs() < 1.0);
        // 2 orders × 4 methods × 1 access path each = 8 plans.
        assert_eq!(ex.plans_costed(), Some(8));
    }

    #[test]
    fn dense_plan_spaces_are_rejected_before_materialization() {
        // A 7-table clique is within the table cap but ~20M plans; the
        // keep-all engine must refuse it instead of exhausting memory.
        use lec_catalog::{ColumnStats, TableStats};
        use lec_plan::{ColumnRef, JoinPredicate, Query, QueryTable};
        let mut cat = lec_catalog::Catalog::new();
        let n = 7;
        let tables: Vec<_> = (0..n)
            .map(|i| {
                cat.add_table(
                    format!("T{i}"),
                    TableStats::new(100, 1000, vec![ColumnStats::plain("c", 10)]),
                )
            })
            .collect();
        let mut joins = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                joins.push(JoinPredicate::exact(
                    ColumnRef::new(i, 0),
                    ColumnRef::new(j, 0),
                    1e-4,
                ));
            }
        }
        let q = Query {
            tables: tables.into_iter().map(QueryTable::bare).collect(),
            joins,
            required_order: None,
        };
        let model = CostModel::new(&cat, &q);
        assert!(matches!(
            exhaustive_best(&model, &Objective::Point(100.0)),
            Err(OptError::BadParameter(_))
        ));
        // A 7-table chain stays comfortably under the cap and still runs.
        let (chain_cat, chain_q) = crate::fixtures::scaling_chain(7);
        let chain_model = CostModel::new(&chain_cat, &chain_q);
        let ex = exhaustive_best(&chain_model, &Objective::Point(400.0)).unwrap();
        assert!(ex.plans_costed().unwrap() > 0);
    }

    #[test]
    fn too_many_tables_is_rejected() {
        use lec_catalog::{ColumnStats, TableStats};
        use lec_plan::{ColumnRef, JoinPredicate, Query, QueryTable};
        let mut cat = lec_catalog::Catalog::new();
        let n = 8;
        let tables: Vec<_> = (0..n)
            .map(|i| {
                cat.add_table(
                    format!("T{i}"),
                    TableStats::new(100, 1000, vec![ColumnStats::plain("c", 10)]),
                )
            })
            .collect();
        let q = Query {
            tables: tables.into_iter().map(QueryTable::bare).collect(),
            joins: (0..n - 1)
                .map(|i| JoinPredicate::exact(ColumnRef::new(i, 0), ColumnRef::new(i + 1, 0), 1e-4))
                .collect(),
            required_order: None,
        };
        let model = CostModel::new(&cat, &q);
        assert!(matches!(
            exhaustive_best(&model, &Objective::Point(100.0)),
            Err(OptError::BadParameter(_))
        ));
    }
}
