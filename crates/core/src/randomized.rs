//! Randomized LEC optimization: iterative improvement and simulated
//! annealing over the left-deep plan space.
//!
//! §1 of the paper notes that beyond dynamic programming, "randomized
//! algorithms have also been proposed [Swa89, IK90].  As we shall see,
//! they apply in our approach too."  The application is exactly this
//! module: the move-based search of Swami/Ioannidis-Kang with the paper's
//! *expected* cost as the objective function.  Nothing else changes — the
//! objective is just `EC(P)` instead of `C(P, v₀)`.
//!
//! These searches are move-based rather than DP-based, so they do not run
//! on the subset engine; they still report the uniform
//! [`SearchStats`]: `nodes` counts complete plans costed, `candidates`
//! counts neighbour moves proposed, and `evals` counts cost-formula
//! evaluations through the model.
//!
//! The state is a complete left-deep plan: a connected join order, one
//! join method per join, and one access path per table.  Moves:
//!
//! * swap two adjacent tables in the order (rejected if connectivity of
//!   any prefix breaks);
//! * change the join method of one join;
//! * flip the access path of one table (when an index exists).

use crate::error::OptError;
use crate::search::{SearchOutcome, SearchStats};
use lec_cost::{expected_plan_cost_static, output_order, AccessPath, CostModel};
use lec_plan::{JoinMethod, PlanNode, TableSet};
use lec_prob::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// A point in the left-deep plan space.
#[derive(Debug, Clone, PartialEq)]
struct State {
    order: Vec<usize>,
    methods: Vec<JoinMethod>,
    paths: Vec<AccessPath>, // indexed by table idx (not order position)
}

/// Tuning for the randomized searches.
#[derive(Debug, Clone)]
pub struct RandomizedConfig {
    /// Random restarts (iterative improvement) / independent chains (SA).
    pub restarts: usize,
    /// Consecutive rejected moves before a restart concludes (II).
    pub patience: usize,
    /// Initial temperature as a fraction of the starting cost (SA).
    pub initial_temp_frac: f64,
    /// Geometric cooling factor per accepted-or-rejected step (SA).
    pub cooling: f64,
    /// Steps per SA chain.
    pub sa_steps: usize,
}

impl Default for RandomizedConfig {
    fn default() -> Self {
        RandomizedConfig {
            restarts: 8,
            patience: 64,
            initial_temp_frac: 0.1,
            cooling: 0.995,
            sa_steps: 1200,
        }
    }
}

struct Search<'a, 'b> {
    model: &'a CostModel<'b>,
    memory: &'a Distribution,
    rng: StdRng,
    stats: SearchStats,
}

impl Search<'_, '_> {
    fn n(&self) -> usize {
        self.model.query().n_tables()
    }

    /// A uniformly random connected join order (random connected DFS).
    fn random_state(&mut self) -> State {
        let n = self.n();
        let query = self.model.query();
        let mut order = Vec::with_capacity(n);
        let mut used = TableSet::EMPTY;
        order.push(self.rng.gen_range(0..n));
        used = used.with(order[0]);
        while order.len() < n {
            let candidates: Vec<usize> = (0..n)
                .filter(|&t| !used.contains(t) && query.is_connected_to(used, t))
                .collect();
            let pick = candidates[self.rng.gen_range(0..candidates.len())];
            order.push(pick);
            used = used.with(pick);
        }
        let methods = (0..n - 1)
            .map(|_| JoinMethod::ALL[self.rng.gen_range(0..4)])
            .collect();
        let paths = (0..n)
            .map(|t| {
                let av = self.model.access_paths(t);
                av[self.rng.gen_range(0..av.len())]
            })
            .collect();
        State {
            order,
            methods,
            paths,
        }
    }

    fn build_plan(&self, s: &State) -> PlanNode {
        let access = |t: usize| match s.paths[t] {
            AccessPath::SeqScan => PlanNode::SeqScan { table: t },
            AccessPath::IndexScan => PlanNode::IndexScan { table: t },
        };
        let mut plan = access(s.order[0]);
        for (k, &t) in s.order.iter().enumerate().skip(1) {
            plan = PlanNode::join(s.methods[k - 1], plan, access(t));
        }
        // Root order enforcement, same rule as the DP.
        match self.model.query().required_order {
            Some(want)
                if !self
                    .model
                    .equivalences()
                    .satisfies(output_order(self.model, &plan), want) =>
            {
                PlanNode::sort(plan, want)
            }
            _ => plan,
        }
    }

    fn cost(&mut self, s: &State) -> f64 {
        self.stats.nodes += 1;
        let plan = self.build_plan(s);
        expected_plan_cost_static(self.model, &plan, self.memory)
    }

    /// Propose a random neighbouring state; `None` if the move is invalid.
    fn neighbour(&mut self, s: &State) -> Option<State> {
        let n = self.n();
        self.stats.candidates += 1;
        let mut next = s.clone();
        match self.rng.gen_range(0..3) {
            0 if n >= 2 => {
                // Adjacent swap preserving prefix connectivity.
                let i = self.rng.gen_range(0..n - 1);
                next.order.swap(i, i + 1);
                let query = self.model.query();
                let mut used = TableSet::EMPTY;
                for (k, &t) in next.order.iter().enumerate() {
                    if k > 0 && !query.is_connected_to(used, t) {
                        return None;
                    }
                    used = used.with(t);
                }
                Some(next)
            }
            1 if n >= 2 => {
                let i = self.rng.gen_range(0..n - 1);
                next.methods[i] = JoinMethod::ALL[self.rng.gen_range(0..4)];
                (next != *s).then_some(next)
            }
            _ => {
                let t = self.rng.gen_range(0..n);
                let av = self.model.access_paths(t);
                if av.len() < 2 {
                    return None;
                }
                next.paths[t] = if next.paths[t] == AccessPath::SeqScan {
                    AccessPath::IndexScan
                } else {
                    AccessPath::SeqScan
                };
                Some(next)
            }
        }
    }

    fn into_outcome(mut self, state: State, cost: f64, start: Instant) -> SearchOutcome {
        let plan = self.build_plan(&state);
        self.stats.evals = self.model.evals();
        self.stats.elapsed = start.elapsed();
        SearchOutcome::new(plan, cost, self.stats)
    }
}

fn new_search<'a, 'b>(
    model: &'a CostModel<'b>,
    memory: &'a Distribution,
    seed: u64,
) -> Result<Search<'a, 'b>, OptError> {
    if model.query().n_tables() == 0 {
        return Err(OptError::EmptyQuery);
    }
    model.reset_evals();
    Ok(Search {
        model,
        memory,
        rng: StdRng::seed_from_u64(seed),
        stats: SearchStats::default(),
    })
}

/// Iterative improvement \[Swa89\]: repeated randomized hill climbing, with
/// expected cost as the objective.
pub fn iterative_improvement(
    model: &CostModel<'_>,
    memory: &Distribution,
    config: &RandomizedConfig,
    seed: u64,
) -> Result<SearchOutcome, OptError> {
    let start = Instant::now();
    let mut search = new_search(model, memory, seed)?;
    let mut best: Option<(State, f64)> = None;
    for _ in 0..config.restarts.max(1) {
        let mut cur = search.random_state();
        let mut cur_cost = search.cost(&cur);
        let mut stale = 0usize;
        while stale < config.patience {
            match search.neighbour(&cur) {
                Some(cand) => {
                    let c = search.cost(&cand);
                    if c < cur_cost {
                        cur = cand;
                        cur_cost = c;
                        stale = 0;
                    } else {
                        stale += 1;
                    }
                }
                None => stale += 1,
            }
        }
        if best.as_ref().is_none_or(|(_, b)| cur_cost < *b) {
            best = Some((cur, cur_cost));
        }
    }
    let (state, expected_cost) = best.expect("at least one restart ran");
    Ok(search.into_outcome(state, expected_cost, start))
}

/// Simulated annealing \[IK90\] with expected cost as the energy.
pub fn simulated_annealing(
    model: &CostModel<'_>,
    memory: &Distribution,
    config: &RandomizedConfig,
    seed: u64,
) -> Result<SearchOutcome, OptError> {
    let start = Instant::now();
    let mut search = new_search(model, memory, seed)?;
    let mut best: Option<(State, f64)> = None;
    for _ in 0..config.restarts.max(1) {
        let mut cur = search.random_state();
        let mut cur_cost = search.cost(&cur);
        // Seed `best` with the chain's start state: a query with no valid
        // neighbour moves (single table, no index) must still return its
        // trivial plan rather than panic below.
        if best.as_ref().is_none_or(|(_, b)| cur_cost < *b) {
            best = Some((cur.clone(), cur_cost));
        }
        let mut temp = (cur_cost * config.initial_temp_frac).max(1e-9);
        for _ in 0..config.sa_steps {
            if let Some(cand) = search.neighbour(&cur) {
                let c = search.cost(&cand);
                let accept = c < cur_cost || {
                    let u: f64 = search.rng.gen();
                    u < ((cur_cost - c) / temp).exp()
                };
                if accept {
                    cur = cand;
                    cur_cost = c;
                }
                if best.as_ref().is_none_or(|(_, b)| cur_cost < *b) {
                    best = Some((cur.clone(), cur_cost));
                }
            }
            temp *= config.cooling;
        }
    }
    let (state, expected_cost) = best.expect("at least one chain ran");
    Ok(search.into_outcome(state, expected_cost, start))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg_c::optimize_lec_static;
    use crate::fixtures::{example_1_1, example_1_1_memory, three_chain};

    #[test]
    fn ii_finds_the_lec_plan_on_example_1_1() {
        let (cat, q) = example_1_1();
        let model = CostModel::new(&cat, &q);
        let memory = example_1_1_memory();
        let r = iterative_improvement(&model, &memory, &Default::default(), 1).unwrap();
        let c = optimize_lec_static(&model, &memory).unwrap();
        assert!(
            (r.cost - c.cost).abs() < 1.0,
            "II should find the LEC plan on a 2-table query"
        );
        assert!(crate::fixtures::is_plan2(&r.plan));
    }

    #[test]
    fn sa_finds_the_lec_plan_on_small_queries() {
        let (cat, q) = three_chain();
        let model = CostModel::new(&cat, &q);
        let memory = lec_prob::presets::spread_family(400.0, 0.7, 5).unwrap();
        let c = optimize_lec_static(&model, &memory).unwrap();
        let r = simulated_annealing(&model, &memory, &Default::default(), 3).unwrap();
        assert!(
            r.cost <= c.cost * 1.0 + 1e-6,
            "SA {} vs C {}",
            r.cost,
            c.cost
        );
    }

    #[test]
    fn randomized_never_beats_the_exact_dp() {
        // Sanity: the DP is optimal; randomized search can only approach it.
        let (cat, q) = three_chain();
        let model = CostModel::new(&cat, &q);
        for seed in 0..5u64 {
            let memory = lec_prob::presets::spread_family(300.0, 0.8, 4).unwrap();
            let c = optimize_lec_static(&model, &memory).unwrap();
            let ii = iterative_improvement(&model, &memory, &Default::default(), seed).unwrap();
            let sa = simulated_annealing(&model, &memory, &Default::default(), seed).unwrap();
            assert!(ii.cost >= c.cost - 1e-6);
            assert!(sa.cost >= c.cost - 1e-6);
            // Reported costs replay.
            let replay = expected_plan_cost_static(&model, &ii.plan, &memory);
            assert!((ii.cost - replay).abs() < 1e-6);
        }
    }

    #[test]
    fn single_table_query_has_no_moves_but_still_returns_its_plan() {
        // Every neighbour proposal is invalid here (no second table, no
        // index), so the searches must fall back to the start state
        // instead of panicking.
        use lec_catalog::{Catalog, ColumnStats, TableStats};
        use lec_plan::{Query, QueryTable};
        let mut cat = Catalog::new();
        let t = cat.add_table(
            "solo",
            TableStats::new(500, 25_000, vec![ColumnStats::plain("c", 100)]),
        );
        let q = Query {
            tables: vec![QueryTable::bare(t)],
            joins: vec![],
            required_order: None,
        };
        let model = CostModel::new(&cat, &q);
        let memory = lec_prob::presets::spread_family(200.0, 0.5, 3).unwrap();
        let sa = simulated_annealing(&model, &memory, &Default::default(), 1).unwrap();
        let ii = iterative_improvement(&model, &memory, &Default::default(), 1).unwrap();
        for r in [&sa, &ii] {
            assert!(matches!(r.plan, lec_plan::PlanNode::SeqScan { .. }));
            assert!(r.cost > 0.0);
        }
    }

    #[test]
    fn search_is_deterministic_per_seed() {
        let (cat, q) = three_chain();
        let model = CostModel::new(&cat, &q);
        let memory = lec_prob::presets::spread_family(350.0, 0.6, 4).unwrap();
        let a = iterative_improvement(&model, &memory, &Default::default(), 42).unwrap();
        let b = iterative_improvement(&model, &memory, &Default::default(), 42).unwrap();
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.stats.nodes, b.stats.nodes);
        assert_eq!(a.stats.candidates, b.stats.candidates);
    }

    #[test]
    fn uniform_counters_are_populated() {
        // The seed hard-coded nodes/evals to 0 for the randomized modes;
        // all four counters must now be live.
        let (cat, q) = three_chain();
        let model = CostModel::new(&cat, &q);
        let memory = lec_prob::presets::spread_family(350.0, 0.6, 4).unwrap();
        let r = iterative_improvement(&model, &memory, &Default::default(), 9).unwrap();
        assert!(r.stats.nodes > 0, "plans costed");
        assert!(r.stats.candidates > 0, "moves proposed");
        assert!(r.stats.evals > 0, "cost-formula evaluations");
        // Each plan costed is either a restart's initial state or followed
        // a proposed move, so nodes <= candidates + restarts.
        let restarts = RandomizedConfig::default().restarts as u64;
        assert!(r.stats.nodes as u64 <= r.stats.candidates + restarts);
    }

    #[test]
    fn evaluation_counter_reflects_search_effort() {
        let (cat, q) = three_chain();
        let model = CostModel::new(&cat, &q);
        let memory = lec_prob::presets::spread_family(350.0, 0.6, 4).unwrap();
        let small = RandomizedConfig {
            restarts: 1,
            patience: 10,
            ..Default::default()
        };
        let big = RandomizedConfig {
            restarts: 8,
            patience: 100,
            ..Default::default()
        };
        let rs = iterative_improvement(&model, &memory, &small, 7).unwrap();
        let rb = iterative_improvement(&model, &memory, &big, 7).unwrap();
        assert!(rb.stats.nodes > rs.stats.nodes);
        assert!(rb.cost <= rs.cost + 1e-9);
    }
}
