//! The costing axis of the keep-1 and keep-all policies: how one
//! memory-dependent operator is priced.
//!
//! `ctx.phase` is the 0-based execution phase index of §3.5 (first join =
//! phase 0; a root sort after `n-1` joins is phase `n-1`).  Static costers
//! ignore it; the dynamic coster uses it to select the evolved memory
//! distribution for that phase.  All costers evaluate through the
//! memoized `*_for` methods of [`CostModel`], so repeated per-bucket
//! evaluations across entry pairs and dag levels hit the cache.

use super::bound::{ExpectationBound, LowerBound, PointBound};
use super::policy::JoinContext;
use lec_cost::{BucketParallelism, CostModel};
use lec_plan::{JoinMethod, TableSet};
use lec_prob::{Distribution, MarkovChain, ProbError};

/// Strategy for costing the memory-dependent operators.
pub trait PhaseCoster {
    /// Cost of joining inputs of `outer`/`inner` pages under `ctx`.
    fn join_cost(
        &self,
        model: &CostModel<'_>,
        ctx: &JoinContext,
        method: JoinMethod,
        outer: f64,
        inner: f64,
    ) -> f64;

    /// Cost of sorting `pages` pages of `set`'s result at `phase`.
    fn sort_cost(&self, model: &CostModel<'_>, set: TableSet, phase: usize, pages: f64) -> f64;

    /// Fingerprint of every parameter that shapes this coster's answers
    /// (memory values, distribution fingerprints, per-phase evolutions),
    /// for the subplan memo's environment key; `None` declares the coster
    /// memo-ineligible (the default — costers opt in).
    fn memo_fingerprint(&self) -> Option<u64> {
        None
    }

    /// An admissible [`LowerBound`] under this coster's objective, for
    /// the scalar-page policies (keep-best, keep-all); `None` declares
    /// the coster prune-ineligible (the default — costers opt in).
    fn pruning_bound(&self) -> Option<Box<dyn LowerBound>> {
        None
    }
}

/// Classical point-parameter costing (the LSC baseline): memory is assumed
/// to be exactly `memory` in every phase.
#[derive(Debug, Clone)]
pub struct PointCoster {
    /// The assumed memory value.
    pub memory: f64,
}

impl PhaseCoster for PointCoster {
    fn join_cost(
        &self,
        model: &CostModel<'_>,
        ctx: &JoinContext,
        method: JoinMethod,
        outer: f64,
        inner: f64,
    ) -> f64 {
        model.join_cost_for(ctx.left, ctx.right, method, outer, inner, self.memory)
    }

    fn sort_cost(&self, model: &CostModel<'_>, set: TableSet, _phase: usize, pages: f64) -> f64 {
        model.sort_cost_for(set, pages, self.memory)
    }

    fn memo_fingerprint(&self) -> Option<u64> {
        Some(
            lec_cost::Fingerprint::new()
                .u64(1)
                .f64(self.memory)
                .finish(),
        )
    }

    fn pruning_bound(&self) -> Option<Box<dyn LowerBound>> {
        Some(Box::new(PointBound {
            memory: self.memory,
        }))
    }
}

/// Expected-cost costing under a static memory distribution (Algorithm C):
/// "this computation requires b evaluations of the cost formula" (§3.4).
/// The whole `b`-bucket expectation of each distinct operator is memoized
/// as one cache entry (with its fingerprint precomputed here), so repeats
/// across entry pairs and dag levels cost one lookup, not `b` formula
/// evaluations.
#[derive(Debug, Clone)]
pub struct StaticExpectationCoster {
    memory: Distribution,
    mem_fp: u64,
    par: BucketParallelism,
}

impl StaticExpectationCoster {
    /// A coster taking expectations over `memory`, serially.
    pub fn new(memory: &Distribution) -> Self {
        StaticExpectationCoster {
            mem_fp: lec_cost::dist_fingerprint(memory),
            memory: memory.clone(),
            par: BucketParallelism::serial(),
        }
    }

    /// Fan one candidate's per-bucket evaluations out across threads once
    /// the bucket count crosses `par.min_evals` (bit-identical results;
    /// see [`BucketParallelism`]).
    pub fn with_parallelism(mut self, par: BucketParallelism) -> Self {
        self.par = par;
        self
    }

    /// The memory distribution in force.
    pub fn memory(&self) -> &Distribution {
        &self.memory
    }
}

impl PhaseCoster for StaticExpectationCoster {
    fn join_cost(
        &self,
        model: &CostModel<'_>,
        ctx: &JoinContext,
        method: JoinMethod,
        outer: f64,
        inner: f64,
    ) -> f64 {
        model.expected_join_cost_over_with(
            ctx.left,
            ctx.right,
            method,
            outer,
            inner,
            &self.memory,
            self.mem_fp,
            self.par,
        )
    }

    fn sort_cost(&self, model: &CostModel<'_>, set: TableSet, _phase: usize, pages: f64) -> f64 {
        model.expected_sort_cost_over_with(set, pages, &self.memory, self.mem_fp, self.par)
    }

    fn memo_fingerprint(&self) -> Option<u64> {
        Some(
            lec_cost::Fingerprint::new()
                .u64(2)
                .u64(self.mem_fp)
                .finish(),
        )
    }

    fn pruning_bound(&self) -> Option<Box<dyn LowerBound>> {
        Some(Box::new(ExpectationBound {
            max_memory: self.memory.max_value(),
        }))
    }
}

/// Per-phase expected-cost costing for dynamically changing memory (§3.5):
/// phase `k` is costed under the initial distribution evolved `k` steps
/// through the Markov chain.
#[derive(Debug, Clone)]
pub struct DynamicExpectationCoster {
    dists: Vec<(Distribution, u64)>,
    par: BucketParallelism,
}

impl DynamicExpectationCoster {
    /// Precompute the evolved distribution (and its cache fingerprint)
    /// for each of `n_phases` phases.
    pub fn new(
        initial: &Distribution,
        chain: &MarkovChain,
        n_phases: usize,
    ) -> Result<Self, ProbError> {
        let mut dists = Vec::with_capacity(n_phases.max(1));
        let mut cur = initial.clone();
        for _ in 0..n_phases.max(1) {
            let fp = lec_cost::dist_fingerprint(&cur);
            let next = chain.evolve_dist(&cur)?;
            dists.push((cur, fp));
            cur = next;
        }
        Ok(DynamicExpectationCoster {
            dists,
            par: BucketParallelism::serial(),
        })
    }

    /// Fan one candidate's per-bucket evaluations out across threads once
    /// the phase distribution's bucket count crosses `par.min_evals`.
    pub fn with_parallelism(mut self, par: BucketParallelism) -> Self {
        self.par = par;
        self
    }

    fn dist(&self, phase: usize) -> &(Distribution, u64) {
        // A plan can have at most n_phases phases; clamp defensively.
        &self.dists[phase.min(self.dists.len() - 1)]
    }
}

impl PhaseCoster for DynamicExpectationCoster {
    fn join_cost(
        &self,
        model: &CostModel<'_>,
        ctx: &JoinContext,
        method: JoinMethod,
        outer: f64,
        inner: f64,
    ) -> f64 {
        let (dist, fp) = self.dist(ctx.phase);
        model.expected_join_cost_over_with(
            ctx.left, ctx.right, method, outer, inner, dist, *fp, self.par,
        )
    }

    fn sort_cost(&self, model: &CostModel<'_>, set: TableSet, phase: usize, pages: f64) -> f64 {
        let (dist, fp) = self.dist(phase);
        model.expected_sort_cost_over_with(set, pages, dist, *fp, self.par)
    }

    /// A node of `k` tables costs its joins at phase `k - 2`, so equal
    /// subqueries meet equal phase distributions whenever the evolved
    /// sequences agree; fingerprinting the whole sequence (length
    /// included) is conservative — dynamic searches over different query
    /// sizes never share memo entries — but always sound.
    fn memo_fingerprint(&self) -> Option<u64> {
        let mut fp = lec_cost::Fingerprint::new()
            .u64(3)
            .u64(self.dists.len() as u64);
        for (_, dist_fp) in &self.dists {
            fp = fp.u64(*dist_fp);
        }
        Some(fp.finish())
    }

    /// Every phase evaluates under its own evolved distribution, so the
    /// bound's memory must be the most favourable value *any* phase can
    /// see.
    fn pruning_bound(&self) -> Option<Box<dyn LowerBound>> {
        let max_memory = self
            .dists
            .iter()
            .map(|(d, _)| d.max_value())
            .fold(f64::NEG_INFINITY, f64::max);
        Some(Box::new(ExpectationBound { max_memory }))
    }
}
