//! The keep-1 policy: per (subset, interesting order), retain the single
//! cheapest plan under the active [`PhaseCoster`].  With a point coster
//! this is Theorem 2.1's System R baseline; with an expectation coster it
//! is Algorithm C (Theorems 3.3/3.4); run under the bushy shape it is the
//! §4 extension.

use super::coster::PhaseCoster;
use super::memo::{MemoDpEntry, MemoEntries, MemoOrder, MemoRecord};
use super::policy::{
    access_alternatives, insert_entry_shaped, insert_entry_shaped_lazy, join_output_order,
    CandidatePolicy, JoinContext, Rankable, RootContext, SearchEntry,
};
use super::SearchStats;
use lec_canon::SubplanForm;
use lec_cost::CostModel;
use lec_plan::{JoinMethod, OrderProperty, PlanNode};

/// A DP table entry: the cheapest known plan for one (subset, order).
#[derive(Debug, Clone)]
pub struct DpEntry {
    /// The plan.
    pub plan: PlanNode,
    /// Its cost under the active coster.
    pub cost: f64,
    /// Point-estimated output size in pages.
    pub pages: f64,
    /// Output order property.
    pub order: OrderProperty,
}

impl SearchEntry for DpEntry {
    fn plan(&self) -> &PlanNode {
        &self.plan
    }
    fn cost(&self) -> f64 {
        self.cost
    }
}

impl Rankable for DpEntry {
    fn rank_cost(&self) -> f64 {
        self.cost
    }
    fn rank_order(&self) -> OrderProperty {
        self.order
    }
}

/// The keep-1 policy over any [`PhaseCoster`].
#[derive(Debug, Clone)]
pub struct KeepBestPolicy<C> {
    /// The operator-costing strategy.
    pub coster: C,
}

impl<C: PhaseCoster> KeepBestPolicy<C> {
    /// A policy costing operators with `coster`.
    pub fn new(coster: C) -> Self {
        KeepBestPolicy { coster }
    }
}

impl<C: PhaseCoster + Clone> CandidatePolicy for KeepBestPolicy<C> {
    type Entry = DpEntry;

    fn fork(&self) -> Self {
        self.clone()
    }

    fn merge(&mut self, _forked: Self) {
        // Stateless beyond the (immutable) coster: nothing to fold back.
    }

    fn access_entries(
        &mut self,
        model: &CostModel<'_>,
        idx: usize,
        _stats: &mut SearchStats,
    ) -> Vec<DpEntry> {
        let mut entries = Vec::new();
        for (plan, cost, order, pages) in access_alternatives(model, idx) {
            insert_entry_shaped(
                model,
                &mut entries,
                DpEntry {
                    plan,
                    cost,
                    pages,
                    order,
                },
            );
        }
        entries
    }

    fn combine(
        &mut self,
        model: &CostModel<'_>,
        ctx: &JoinContext,
        outer: &[DpEntry],
        inner: &[DpEntry],
        into: &mut Vec<DpEntry>,
        stats: &mut SearchStats,
    ) {
        let sel = model.join_selectivity_sets(ctx.left, ctx.right);
        for oe in outer {
            for ie in inner {
                // Result size is method-independent; compute once.
                let pages = model.join_output_pages(oe.pages, ie.pages, sel);
                for method in JoinMethod::ALL {
                    stats.candidates += 1;
                    let join_cost = self
                        .coster
                        .join_cost(model, ctx, method, oe.pages, ie.pages);
                    let cost = oe.cost + ie.cost + join_cost;
                    let order = join_output_order(model, ctx.left, oe.order, ctx.right, method);
                    insert_entry_shaped_lazy(model, into, cost, order, || DpEntry {
                        plan: PlanNode::join(method, oe.plan.clone(), ie.plan.clone()),
                        cost,
                        pages,
                        order,
                    });
                }
            }
        }
    }

    fn finalize(
        &mut self,
        model: &CostModel<'_>,
        ctx: &RootContext,
        entries: Vec<DpEntry>,
        _stats: &mut SearchStats,
    ) -> Vec<DpEntry> {
        let mut roots = finalize_with_coster(model, ctx, entries, &self.coster);
        sort_roots(model, &mut roots);
        roots
    }

    fn pruning_bound(&self, _model: &CostModel<'_>) -> Option<Box<dyn super::bound::LowerBound>> {
        self.coster.pruning_bound()
    }

    fn memo_fingerprint(&self, _model: &CostModel<'_>) -> Option<u64> {
        // Family tag 1 = keep-best; the coster contributes (or vetoes)
        // the rest.
        self.coster
            .memo_fingerprint()
            .map(|c| lec_cost::Fingerprint::new().u64(1).u64(c).finish())
    }

    fn memo_encode(
        &self,
        model: &CostModel<'_>,
        form: &SubplanForm,
        entries: &[DpEntry],
    ) -> Option<MemoEntries> {
        let to_canon = form.to_canonical(model.query().n_tables());
        entries
            .iter()
            .map(|e| {
                let order = match e.order {
                    OrderProperty::None => MemoOrder::None,
                    OrderProperty::Sorted(rep) => MemoOrder::Class(form.order_class(rep)?),
                };
                Some(MemoDpEntry {
                    plan: e.plan.relabel_tables(&to_canon),
                    cost: e.cost,
                    pages: e.pages,
                    order,
                })
            })
            .collect::<Option<Vec<_>>>()
            .map(MemoEntries::Dp)
    }

    fn memo_decode(
        &mut self,
        _model: &CostModel<'_>,
        form: &SubplanForm,
        record: &MemoRecord,
    ) -> Option<Vec<DpEntry>> {
        let MemoEntries::Dp(list) = &record.entries else {
            return None;
        };
        let to_global = form.to_global();
        list.iter()
            .map(|e| {
                let order = match e.order {
                    MemoOrder::None => OrderProperty::None,
                    MemoOrder::Class(id) => OrderProperty::Sorted(form.class_rep(id)?),
                };
                Some(DpEntry {
                    plan: e.plan.relabel_tables(&to_global),
                    cost: e.cost,
                    pages: e.pages,
                    order,
                })
            })
            .collect()
    }
}

/// Shared root finalization: wrap entries that miss a required order in a
/// sort costed by `coster`.  Used by the keep-1 and keep-all policies.
pub(super) fn finalize_with_coster<C: PhaseCoster>(
    model: &CostModel<'_>,
    ctx: &RootContext,
    entries: Vec<DpEntry>,
    coster: &C,
) -> Vec<DpEntry> {
    let query = model.query();
    let eq = model.equivalences();
    entries
        .into_iter()
        .map(|e| match query.required_order {
            Some(want) if !eq.satisfies(e.order, want) => {
                let sort_cost = coster.sort_cost(model, ctx.set, ctx.sort_phase, e.pages);
                DpEntry {
                    plan: PlanNode::sort(e.plan, want),
                    cost: e.cost + sort_cost,
                    pages: e.pages,
                    order: eq.sorted_on(want),
                }
            }
            _ => e,
        })
        .collect()
}

/// Order finalized root candidates by (cost bits, label-free shape), so
/// the reported root vector — and [`super::SearchRun::best`]'s
/// first-minimal pick among exact-cost ties — is independent of the
/// per-order-class insertion order.  Pruning can remove strictly-worse
/// candidates whose insertion used to shuffle that order; sorting here
/// (pruned and unpruned alike) keeps the two answers byte-identical.
pub(super) fn sort_roots<E>(model: &CostModel<'_>, roots: &mut [E])
where
    E: super::policy::SearchEntry,
{
    roots.sort_by(|a, b| {
        a.cost()
            .total_cmp(&b.cost())
            .then_with(|| super::policy::plan_shape_cmp(model, a.plan(), b.plan()))
    });
}
