//! The multi-parameter policy of Algorithm D (§3.6, Figure 1).
//!
//! Every DP node carries exactly the four distributions of Figure 1:
//! `Pr(M)` (global), `Pr(|B_j|)` (the node's composite input size),
//! `Pr(|A_j|)` (the joined table's size after selection) and `Pr(σ)` (the
//! connecting predicates' selectivity).  Expected join cost uses the
//! linear-time algorithms of §3.6.1/§3.6.2 where the formula is separable,
//! and the generic triple sum otherwise; the result-size distribution is
//! the independent product `|B_j|·|A_j|·σ` (§3.6: "the probability that the
//! join has size abσ"), kept small by the §3.6.3 rebucketing — either
//! rebucket-after-product, or the paper's ∛b-inputs scheme.

use super::memo::{MemoDistEntry, MemoEntries, MemoOrder, MemoRecord};
use super::policy::{
    access_alternatives, insert_entry_shaped, insert_entry_shaped_lazy, join_output_order,
    CandidatePolicy, JoinContext, Rankable, RootContext, SearchEntry,
};
use super::SearchStats;
use lec_canon::SubplanForm;
use lec_cost::{BucketParallelism, CostModel};
use lec_plan::{JoinMethod, OrderProperty, PlanNode};
use lec_prob::{Distribution, PrefixTables, Rebucket};

/// Configuration of Algorithm D's distribution bookkeeping.
#[derive(Debug, Clone)]
pub struct AlgDConfig {
    /// Maximum buckets kept for any node's size distribution (the paper's
    /// uniform `b`).
    pub max_buckets: usize,
    /// Rebucketing strategy.
    pub rebucket: Rebucket,
    /// When true, rebucket *inputs* of the size product to `∛b` buckets so
    /// the product itself lands near `b` (§3.6.3's scheme); when false,
    /// form the exact product and rebucket the result to `b`.
    pub cube_root_inputs: bool,
}

impl Default for AlgDConfig {
    fn default() -> Self {
        AlgDConfig {
            max_buckets: 16,
            rebucket: Rebucket::EqualDepth,
            cube_root_inputs: false,
        }
    }
}

/// A DP entry whose size is a full distribution (Figure 1's per-node
/// bookkeeping).
#[derive(Debug, Clone)]
pub struct DistEntry {
    /// The plan.
    pub plan: PlanNode,
    /// Its expected cost over memory, sizes and selectivities.
    pub cost: f64,
    /// Distribution of the output size in pages.
    pub pages: Distribution,
    /// Output order property.
    pub order: OrderProperty,
}

impl SearchEntry for DistEntry {
    fn plan(&self) -> &PlanNode {
        &self.plan
    }
    fn cost(&self) -> f64 {
        self.cost
    }
}

impl Rankable for DistEntry {
    fn rank_cost(&self) -> f64 {
        self.cost
    }
    fn rank_order(&self) -> OrderProperty {
        self.order
    }
}

/// The Figure 1 multi-parameter policy.
#[derive(Debug, Clone)]
pub struct MultiParamPolicy {
    config: AlgDConfig,
    memory: Distribution,
    mem_fp: u64,
    m_tables: PrefixTables,
    par: BucketParallelism,
    /// Largest size-distribution support seen before rebucketing.
    pub max_product_support: usize,
    /// The current DP node's contribution to `max_product_support`, reset
    /// by [`CandidatePolicy::memo_node_begin`] so memo records can carry
    /// the per-node delta (a cumulative max cannot be decomposed later).
    node_support: usize,
}

impl MultiParamPolicy {
    /// A policy costing against `memory`.  Requires `config.max_buckets
    /// >= 1`.
    pub fn new(memory: &Distribution, config: AlgDConfig) -> Self {
        assert!(
            config.max_buckets >= 1,
            "MultiParamPolicy requires max_buckets >= 1"
        );
        MultiParamPolicy {
            m_tables: PrefixTables::new(memory),
            mem_fp: lec_cost::dist_fingerprint(memory),
            memory: memory.clone(),
            config,
            par: BucketParallelism::serial(),
            max_product_support: 0,
            node_support: 0,
        }
    }

    /// Fan one candidate's bucket evaluations (block nested-loop's
    /// `b_A·b_B·b_M` triple sum, the §3.6 hot loop) out across threads
    /// once they cross `par.min_evals`.
    pub fn with_parallelism(mut self, par: BucketParallelism) -> Self {
        self.par = par;
        self
    }

    /// The §3.6.3 result-size distribution `|B_j| · |A_j| · σ`.
    fn product_size(
        &mut self,
        outer: &Distribution,
        inner: &Distribution,
        sel: &Distribution,
    ) -> Distribution {
        let b = self.config.max_buckets;
        let strategy = self.config.rebucket;
        let product = if self.config.cube_root_inputs {
            // Rebucket each factor to ∛b so the product has ≈ b buckets.
            let cube = ((b as f64).cbrt().ceil() as usize).max(1);
            rebucket_to(outer, cube, strategy)
                .product(&rebucket_to(inner, cube, strategy))
                .product(&rebucket_to(sel, cube, strategy))
        } else {
            outer.product(inner).product(sel)
        };
        self.max_product_support = self.max_product_support.max(product.len());
        self.node_support = self.node_support.max(product.len());
        let clamped = product.map(|v| v.max(1.0));
        rebucket_to(&clamped, b, strategy)
    }
}

fn rebucket_to(d: &Distribution, n: usize, strategy: Rebucket) -> Distribution {
    d.rebucket(n.max(1), strategy)
        .expect("rebucket with n >= 1 cannot fail")
}

impl CandidatePolicy for MultiParamPolicy {
    type Entry = DistEntry;

    fn fork(&self) -> Self {
        MultiParamPolicy {
            max_product_support: 0,
            node_support: 0,
            ..self.clone()
        }
    }

    fn merge(&mut self, forked: Self) {
        self.max_product_support = self.max_product_support.max(forked.max_product_support);
    }

    fn access_entries(
        &mut self,
        model: &CostModel<'_>,
        idx: usize,
        _stats: &mut SearchStats,
    ) -> Vec<DistEntry> {
        let pages = rebucket_to(
            &model.base_pages_dist(idx),
            self.config.max_buckets,
            self.config.rebucket,
        );
        let mut entries = Vec::new();
        for (plan, cost, order, _point_pages) in access_alternatives(model, idx) {
            insert_entry_shaped(
                model,
                &mut entries,
                DistEntry {
                    plan,
                    cost,
                    pages: pages.clone(),
                    order,
                },
            );
        }
        entries
    }

    fn combine(
        &mut self,
        model: &CostModel<'_>,
        ctx: &JoinContext,
        outer: &[DistEntry],
        inner: &[DistEntry],
        into: &mut Vec<DistEntry>,
        stats: &mut SearchStats,
    ) {
        let sel_dist = model.join_selectivity_dist_sets(ctx.left, ctx.right);
        for oe in outer {
            for ie in inner {
                // Result size is method-independent; compute once.
                let result_size = self.product_size(&oe.pages, &ie.pages, &sel_dist);
                for method in JoinMethod::ALL {
                    stats.candidates += 1;
                    let join_ec = model.expected_join_cost_for_with(
                        ctx.left,
                        ctx.right,
                        method,
                        &oe.pages,
                        &ie.pages,
                        &self.memory,
                        self.mem_fp,
                        &self.m_tables,
                        self.par,
                    );
                    let cost = oe.cost + ie.cost + join_ec;
                    let order = join_output_order(model, ctx.left, oe.order, ctx.right, method);
                    insert_entry_shaped_lazy(model, into, cost, order, || DistEntry {
                        plan: PlanNode::join(method, oe.plan.clone(), ie.plan.clone()),
                        cost,
                        pages: result_size.clone(),
                        order,
                    });
                }
            }
        }
    }

    fn finalize(
        &mut self,
        model: &CostModel<'_>,
        ctx: &RootContext,
        entries: Vec<DistEntry>,
        _stats: &mut SearchStats,
    ) -> Vec<DistEntry> {
        let query = model.query();
        let eq = model.equivalences();
        let mut roots: Vec<DistEntry> = entries
            .into_iter()
            .map(|e| match query.required_order {
                Some(want) if !eq.satisfies(e.order, want) => {
                    let sc = model.expected_sort_cost_for(
                        ctx.set,
                        &e.pages,
                        self.mem_fp,
                        &self.m_tables,
                    );
                    DistEntry {
                        plan: PlanNode::sort(e.plan, want),
                        cost: e.cost + sc,
                        pages: e.pages,
                        order: eq.sorted_on(want),
                    }
                }
                _ => e,
            })
            .collect();
        super::keep_best::sort_roots(model, &mut roots);
        roots
    }

    /// Algorithm D's objective is the scalar *expected* completion cost,
    /// so a single incumbent covers every memory bucket at once; sizes
    /// are floored through the node distributions' minimum supports
    /// (clamping and rebucketing only ever raise a distribution's
    /// minimum), memory by its largest support value.
    fn pruning_bound(&self, _model: &CostModel<'_>) -> Option<Box<dyn super::bound::LowerBound>> {
        Some(Box::new(super::bound::MinSupportBound {
            max_memory: self.memory.max_value(),
        }))
    }

    fn memo_fingerprint(&self, _model: &CostModel<'_>) -> Option<u64> {
        // Family tag 2 = multi-param; every AlgDConfig knob shapes the
        // per-node distributions, so all of them key the memo.
        Some(
            lec_cost::Fingerprint::new()
                .u64(2)
                .u64(self.mem_fp)
                .u64(self.config.max_buckets as u64)
                .u64(match self.config.rebucket {
                    Rebucket::EqualWidth => 0,
                    Rebucket::EqualDepth => 1,
                })
                .u64(self.config.cube_root_inputs as u64)
                .finish(),
        )
    }

    fn memo_node_begin(&mut self) {
        self.node_support = 0;
    }

    fn memo_encode(
        &self,
        model: &CostModel<'_>,
        form: &SubplanForm,
        entries: &[DistEntry],
    ) -> Option<MemoEntries> {
        let to_canon = form.to_canonical(model.query().n_tables());
        entries
            .iter()
            .map(|e| {
                let order = match e.order {
                    OrderProperty::None => MemoOrder::None,
                    OrderProperty::Sorted(rep) => MemoOrder::Class(form.order_class(rep)?),
                };
                Some(MemoDistEntry {
                    plan: e.plan.relabel_tables(&to_canon),
                    cost: e.cost,
                    pages: e.pages.clone(),
                    order,
                })
            })
            .collect::<Option<Vec<_>>>()
            .map(|entries| MemoEntries::Dist {
                entries,
                node_support: self.node_support,
            })
    }

    fn memo_decode(
        &mut self,
        _model: &CostModel<'_>,
        form: &SubplanForm,
        record: &MemoRecord,
    ) -> Option<Vec<DistEntry>> {
        let MemoEntries::Dist {
            entries,
            node_support,
        } = &record.entries
        else {
            return None;
        };
        let to_global = form.to_global();
        let decoded = entries
            .iter()
            .map(|e| {
                let order = match e.order {
                    MemoOrder::None => OrderProperty::None,
                    MemoOrder::Class(id) => OrderProperty::Sorted(form.class_rep(id)?),
                };
                Some(DistEntry {
                    plan: e.plan.relabel_tables(&to_global),
                    cost: e.cost,
                    pages: e.pages.clone(),
                    order,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        // The skipped combine would have pushed the diagnostic high-water
        // mark exactly this far.
        self.max_product_support = self.max_product_support.max(*node_support);
        Some(decoded)
    }
}
