//! The candidate-policy axis of the search engine: what each dag node
//! retains and how a join candidate is costed.

use super::bound::{LowerBound, PruneState};
use super::memo::{MemoEntries, MemoRecord};
use super::SearchStats;
use lec_canon::SubplanForm;
use lec_cost::{AccessPath, CostModel};
use lec_plan::{JoinMethod, OrderProperty, PlanNode, TableSet};

/// Everything a policy needs to cost one (outer, inner) combination.
#[derive(Debug, Clone, Copy)]
pub struct JoinContext {
    /// The outer operand's table set.
    pub left: TableSet,
    /// The inner operand's table set (a singleton in left-deep search).
    pub right: TableSet,
    /// The union being built.
    pub result: TableSet,
    /// 0-based execution phase of §3.5: joining the k-th relation is
    /// phase `k - 2`.
    pub phase: usize,
}

/// Context for root finalization.
#[derive(Debug, Clone, Copy)]
pub struct RootContext {
    /// The full table set.
    pub set: TableSet,
    /// Phase index of a root sort (after `n - 1` joins).
    pub sort_phase: usize,
}

/// What the engine needs to read out of a policy's entries.
pub trait SearchEntry: Clone {
    /// The (partial) plan this entry stands for.
    fn plan(&self) -> &PlanNode;
    /// Its cost under the policy's objective.
    fn cost(&self) -> f64;
}

/// A retention-and-costing strategy plugged into the engine.
///
/// The engine owns subset enumeration and operand pairing; the policy owns
/// everything per-candidate: costing, output-order and size bookkeeping,
/// and which candidates a node keeps.
///
/// The parallel driver gives every worker thread its own [`fork`] of the
/// policy and folds each worker back with [`merge`] before finalization,
/// so a policy may keep mutable diagnostics (frontier counters, support
/// high-water marks) without synchronization — as long as that state only
/// *reports* and never influences which candidates are kept (otherwise the
/// parallel and serial drivers could diverge).
///
/// [`fork`]: CandidatePolicy::fork
/// [`merge`]: CandidatePolicy::merge
pub trait CandidatePolicy {
    /// The per-node candidate representation.
    type Entry: SearchEntry;

    /// Clone this policy for one parallel worker thread, with any
    /// accumulating diagnostics zeroed so [`CandidatePolicy::merge`] can
    /// fold them back without double counting.
    fn fork(&self) -> Self
    where
        Self: Sized;

    /// Fold a forked worker's accumulated diagnostics back into this
    /// policy.  Folds must be commutative over workers (sums, maxima) so
    /// the merged totals match a serial run regardless of how subsets
    /// were scheduled.
    fn merge(&mut self, forked: Self)
    where
        Self: Sized;

    /// Build the depth-1 entries (access paths) for one table.
    fn access_entries(
        &mut self,
        model: &CostModel<'_>,
        idx: usize,
        stats: &mut SearchStats,
    ) -> Vec<Self::Entry>;

    /// Combine every (outer, inner) entry pair under every join method,
    /// inserting the retained candidates into `into`.
    fn combine(
        &mut self,
        model: &CostModel<'_>,
        ctx: &JoinContext,
        outer: &[Self::Entry],
        inner: &[Self::Entry],
        into: &mut Vec<Self::Entry>,
        stats: &mut SearchStats,
    );

    /// Enforce the query's required output order on the root candidates
    /// (wrapping in a sort where needed) and return the survivors.
    fn finalize(
        &mut self,
        model: &CostModel<'_>,
        ctx: &RootContext,
        entries: Vec<Self::Entry>,
        stats: &mut SearchStats,
    ) -> Vec<Self::Entry>;

    // ---- branch-and-bound support (opt in; default: bypass) -------------
    //
    // A policy opts into [`SearchConfig::pruning`] by returning an
    // admissible [`LowerBound`]; `None` (the default, and top-c's
    // answer — a frontier member can survive at a node whose cheapest
    // completion loses to the incumbent, so no single-incumbent bound is
    // admissible there) makes the engine skip every prune check.
    //
    // [`SearchConfig::pruning`]: super::SearchConfig::pruning

    /// An admissible size bound for branch-and-bound pruning under this
    /// policy's objective, or `None` to bypass pruning entirely.
    fn pruning_bound(&self, _model: &CostModel<'_>) -> Option<Box<dyn LowerBound>> {
        None
    }

    /// Hand the policy the search's shared [`PruneState`] so policies
    /// with per-entry discard rules (the keep-all verifier) can consult
    /// the incumbent inside their combine loops.  Called once per search,
    /// before any forks are taken.
    fn install_pruning(&mut self, _prune: &std::sync::Arc<PruneState>) {}

    // ---- subplan-memo support (opt in; default: memo-ineligible) --------
    //
    // The eligibility rules mirror the serving cache's `Uncacheable`
    // modes: a policy may only opt in when its candidate lists are a pure,
    // rename-equivariant function of the canonical subquery shape — true
    // for the keep-best family (label-independent `insert_entry_shaped`
    // tie-breaks) and multi-param, false for top-c (frontier truncation
    // ties) and the keep-all verifier (plan-space blowup).

    /// Fingerprint of every policy/coster parameter that shapes a node's
    /// candidates, or `None` when this policy must bypass the subplan
    /// memo.  Two searches whose policies fingerprint equal produce
    /// byte-identical candidate lists for equal canonical subqueries.
    fn memo_fingerprint(&self, _model: &CostModel<'_>) -> Option<u64> {
        None
    }

    /// Reset any per-node diagnostic accumulators before a recorded
    /// combine (so [`CandidatePolicy::memo_encode`] can capture the node's
    /// own contribution).
    fn memo_node_begin(&mut self) {}

    /// Encode a freshly combined node's candidates into canonical label
    /// space for storage, or `None` to skip memoizing this node.
    fn memo_encode(
        &self,
        _model: &CostModel<'_>,
        _form: &SubplanForm,
        _entries: &[Self::Entry],
    ) -> Option<MemoEntries> {
        None
    }

    /// Decode a memoized record into this query's label space, folding any
    /// per-node diagnostics back in; `None` (wrong policy family, stale
    /// class map) downgrades the hit to a live combine.
    fn memo_decode(
        &mut self,
        _model: &CostModel<'_>,
        _form: &SubplanForm,
        _record: &MemoRecord,
    ) -> Option<Vec<Self::Entry>> {
        None
    }
}

/// `a` can substitute for `b`: same order, or `b` needs no order.
pub fn covers(a: OrderProperty, b: OrderProperty) -> bool {
    a == b || b == OrderProperty::None
}

/// An entry that can participate in domination pruning.
pub trait Rankable {
    /// Cost under the active objective.
    fn rank_cost(&self) -> f64;
    /// Output order property.
    fn rank_order(&self) -> OrderProperty;
}

/// Insert with domination pruning: keep an entry only if no other entry
/// with a covering order is at most as expensive.  This is the System R
/// interesting-order rule shared by every keep-1 policy.
pub fn insert_entry<T: Rankable>(entries: &mut Vec<T>, e: T) {
    for f in entries.iter() {
        if covers(f.rank_order(), e.rank_order()) && f.rank_cost() <= e.rank_cost() {
            return;
        }
    }
    entries.retain(|f| !(covers(e.rank_order(), f.rank_order()) && e.rank_cost() <= f.rank_cost()));
    entries.push(e);
}

/// [`insert_entry`] with a *label-independent* resolution of exact cost
/// ties: when two candidates with equivalent orders cost exactly the same
/// (e.g. the two orientations of a symmetric-cost join at depth 2), the
/// survivor is the one smaller under [`plan_shape_cmp`] rather than the
/// one the enumeration happened to produce first.
///
/// First-wins tie-breaking is *label-dependent* — subsets are enumerated
/// in table-index order, so renaming the tables of a query can flip which
/// of two tied candidates is generated first, and the optimizer would
/// return structurally different (equal-cost) plans for isomorphic
/// queries.  The cross-query plan cache serves cached plans by relabeling,
/// so it needs the engine to commute with renaming; comparing tied
/// candidates by their label-free shape restores that, except between
/// genuinely indistinguishable twin tables (equal statistics and filters),
/// where either choice is the same plan up to an automorphism.
pub fn insert_entry_shaped<T: Rankable + SearchEntry>(
    model: &CostModel<'_>,
    entries: &mut Vec<T>,
    e: T,
) {
    let (cost, order) = (e.rank_cost(), e.rank_order());
    insert_entry_shaped_lazy(model, entries, cost, order, move || e);
}

/// [`insert_entry_shaped`] with deferred candidate construction: `make`
/// runs only when the candidate survives the domination scan on cost and
/// order alone (or an exact cost tie forces a shape comparison).  The
/// comparisons and the retained-set mutation are exactly those of
/// [`insert_entry_shaped`] — `make` must produce an entry whose
/// [`Rankable`] cost and order equal the `cost`/`order` arguments — so the
/// kept entries are byte-identical either way.  The point is the combine
/// hot loop: most join candidates lose on cost immediately, and deferring
/// construction spares them the deep plan clone (and, for distribution
/// policies, the size-distribution clone) that dominated dense-graph
/// search time.
pub fn insert_entry_shaped_lazy<T: Rankable + SearchEntry>(
    model: &CostModel<'_>,
    entries: &mut Vec<T>,
    cost: f64,
    order: OrderProperty,
    make: impl FnOnce() -> T,
) {
    use std::cmp::Ordering;
    let mut make = Some(make);
    let mut built: Option<T> = None;
    for found in entries.iter() {
        let (f_cost, f_order) = (found.rank_cost(), found.rank_order());
        if covers(f_order, order) {
            if f_cost < cost {
                return;
            }
            if f_cost == cost {
                // A strictly stronger order at equal cost dominates; for
                // equivalent orders the smaller shape survives.
                if !covers(order, f_order) {
                    return;
                }
                let e = match &built {
                    Some(e) => e,
                    None => built.insert(make.take().expect("make is consumed at most once")()),
                };
                if plan_shape_cmp(model, found.plan(), e.plan()) != Ordering::Greater {
                    return;
                }
            }
        }
    }
    let e = match built {
        Some(e) => e,
        None => make.take().expect("make is consumed at most once")(),
    };
    entries.retain(|f| {
        !(covers(e.rank_order(), f.rank_order())
            && (e.rank_cost() < f.rank_cost()
                || (e.rank_cost() == f.rank_cost()
                    && (!covers(f.rank_order(), e.rank_order())
                        || plan_shape_cmp(model, e.plan(), f.plan()) == Ordering::Less))))
    });
    entries.push(e);
}

/// A total order on plans that is invariant under table renaming: nodes
/// compare by kind, joins by method then operands, sorts by key *column*
/// (the table index is label-dependent and excluded), and scans by the
/// model's [`lec_cost::CostModel::table_shape_fingerprint`] — the table's
/// observable statistics rather than its query-local number.  Only
/// consulted on exact cost ties, so it never influences which costs win,
/// merely which of several equal-cost plans is reported.
pub fn plan_shape_cmp(model: &CostModel<'_>, a: &PlanNode, b: &PlanNode) -> std::cmp::Ordering {
    fn kind(p: &PlanNode) -> u8 {
        match p {
            PlanNode::SeqScan { .. } => 0,
            PlanNode::IndexScan { .. } => 1,
            PlanNode::Sort { .. } => 2,
            PlanNode::Join { .. } => 3,
        }
    }
    match (a, b) {
        (PlanNode::SeqScan { table: ta }, PlanNode::SeqScan { table: tb })
        | (PlanNode::IndexScan { table: ta }, PlanNode::IndexScan { table: tb }) => model
            .table_shape_fingerprint(*ta)
            .cmp(&model.table_shape_fingerprint(*tb)),
        (PlanNode::Sort { input: ia, key: ka }, PlanNode::Sort { input: ib, key: kb }) => ka
            .column
            .cmp(&kb.column)
            .then_with(|| plan_shape_cmp(model, ia, ib)),
        (
            PlanNode::Join {
                method: ma,
                outer: oa,
                inner: na,
            },
            PlanNode::Join {
                method: mb,
                outer: ob,
                inner: nb,
            },
        ) => ma
            .cmp(mb)
            .then_with(|| plan_shape_cmp(model, oa, ob))
            .then_with(|| plan_shape_cmp(model, na, nb)),
        _ => kind(a).cmp(&kind(b)),
    }
}

/// The output order of joining two composites — the shape-generic form of
/// the \[SAC+79\] interesting-order rules (left-deep inner singletons are
/// the special case `right = {j}`).
pub fn join_output_order(
    model: &CostModel<'_>,
    left: TableSet,
    left_order: OrderProperty,
    right: TableSet,
    method: JoinMethod,
) -> OrderProperty {
    match method {
        JoinMethod::SortMerge => {
            let crossing = model.query().joins_crossing(left, right);
            match crossing.first() {
                Some(&i) => model.equivalences().sorted_on(model.query().joins[i].left),
                None => OrderProperty::None,
            }
        }
        JoinMethod::PageNestedLoop => left_order,
        JoinMethod::GraceHash | JoinMethod::BlockNestedLoop => OrderProperty::None,
    }
}

/// The access-path alternatives of one table, costed: `(plan, cost, order,
/// pages)`.  Shared by every policy's depth-1 construction.
pub fn access_alternatives(
    model: &CostModel<'_>,
    idx: usize,
) -> Vec<(PlanNode, f64, OrderProperty, f64)> {
    model
        .access_paths(idx)
        .into_iter()
        .map(|path| {
            let plan = match path {
                AccessPath::SeqScan => PlanNode::SeqScan { table: idx },
                AccessPath::IndexScan => PlanNode::IndexScan { table: idx },
            };
            let order = lec_cost::output_order(model, &plan);
            let cost = model.access_cost(path, idx);
            (plan, cost, order, model.base_pages(idx))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::keep_best::DpEntry;
    use lec_plan::ColumnRef;

    fn order(c: Option<(usize, usize)>) -> OrderProperty {
        match c {
            Some((t, col)) => OrderProperty::Sorted(ColumnRef::new(t, col)),
            None => OrderProperty::None,
        }
    }

    fn entry(cost: f64, ord: OrderProperty) -> DpEntry {
        DpEntry {
            plan: PlanNode::SeqScan { table: 0 },
            cost,
            pages: 10.0,
            order: ord,
        }
    }

    #[test]
    fn cheaper_same_order_replaces() {
        let mut v = vec![entry(10.0, order(None))];
        insert_entry(&mut v, entry(5.0, order(None)));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].cost, 5.0);
    }

    #[test]
    fn more_expensive_same_order_is_dropped() {
        let mut v = vec![entry(5.0, order(None))];
        insert_entry(&mut v, entry(10.0, order(None)));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].cost, 5.0);
    }

    #[test]
    fn sorted_entry_dominates_equal_cost_unsorted() {
        let mut v = vec![entry(5.0, order(None))];
        insert_entry(&mut v, entry(5.0, order(Some((0, 0)))));
        // The sorted entry covers the unsorted one at equal cost.
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].order, order(Some((0, 0))));
    }

    #[test]
    fn expensive_sorted_entry_coexists_with_cheap_unsorted() {
        let mut v = vec![entry(5.0, order(None))];
        insert_entry(&mut v, entry(8.0, order(Some((0, 0)))));
        assert_eq!(v.len(), 2, "an interesting order justifies extra cost");
    }

    #[test]
    fn unsorted_never_dominates_sorted() {
        let mut v = vec![entry(8.0, order(Some((0, 0))))];
        insert_entry(&mut v, entry(5.0, order(None)));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn different_sort_orders_coexist() {
        let mut v = vec![entry(5.0, order(Some((0, 0))))];
        insert_entry(&mut v, entry(5.0, order(Some((1, 1)))));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn cheap_sorted_kills_expensive_everything() {
        let mut v = vec![
            entry(9.0, order(None)),
            entry(12.0, order(Some((0, 0)))),
            entry(7.0, order(Some((1, 1)))),
        ];
        insert_entry(&mut v, entry(3.0, order(Some((0, 0)))));
        // Kills the unsorted 9.0 and the same-order 12.0; the (1,1) order
        // at 7.0 survives (incomparable).
        assert_eq!(v.len(), 2);
        assert!(v.iter().any(|e| e.cost == 3.0));
        assert!(v.iter().any(|e| e.cost == 7.0));
    }
}
