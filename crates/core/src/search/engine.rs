//! The one DP driver.  Everything that enumerates subsets lives here —
//! no optimizer module outside `search/` walks the dag itself.

use super::policy::{CandidatePolicy, JoinContext, RootContext, SearchEntry};
use super::SearchStats;
use crate::error::OptError;
use lec_cost::CostModel;
use lec_plan::{Query, TableSet};
use std::collections::HashMap;
use std::time::Instant;

/// How a subset is split into (outer, inner) operand pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanShape {
    /// System R left-deep trees (§2.2): `S∖{j}` joined with base table
    /// `{j}`.
    LeftDeep,
    /// All binary trees without cross products (the §4 extension): every
    /// connected ordered 2-partition of `S`.
    Bushy,
}

impl PlanShape {
    /// The ordered operand splits of `set`, cross products excluded.
    fn splits(self, query: &Query, set: TableSet) -> Vec<(TableSet, TableSet)> {
        match self {
            PlanShape::LeftDeep => set
                .iter()
                .filter_map(|j| {
                    let left = set.without(j);
                    query
                        .is_connected_to(left, j)
                        .then_some((left, TableSet::singleton(j)))
                })
                .collect(),
            PlanShape::Bushy => {
                let bits = set.bits();
                let mut out = Vec::new();
                // Walk all non-empty proper subsets via the standard trick.
                let mut sub = (bits - 1) & bits;
                while sub != 0 {
                    let left = TableSet::from_bits(sub);
                    let right = TableSet::from_bits(bits & !sub);
                    if !query.joins_crossing(left, right).is_empty() {
                        out.push((left, right));
                    }
                    sub = (sub - 1) & bits;
                }
                out
            }
        }
    }
}

/// The engine's raw product: the finalized (order-enforced) root
/// candidates plus the run's statistics.
#[derive(Debug, Clone)]
pub struct SearchRun<E> {
    /// Finalized root candidates; non-empty.
    pub roots: Vec<E>,
    /// Statistics for this run.
    pub stats: SearchStats,
}

impl<E: SearchEntry> SearchRun<E> {
    /// The cheapest finalized candidate.
    pub fn best(&self) -> &E {
        self.roots
            .iter()
            .min_by(|a, b| a.cost().total_cmp(&b.cost()))
            .expect("run_search guarantees a non-empty root list")
    }

    /// Consume the run, returning the cheapest candidate and the stats.
    pub fn into_best(self) -> (E, SearchStats) {
        let best = self.best().clone();
        (best, self.stats)
    }
}

/// Number of complete plans of `shape` the keep-all policy would
/// materialize for this query: the same subset recursion as the search
/// itself, counting instead of building.  Lets callers reject
/// plan spaces too large to hold in memory before paying for them.
pub fn plan_space_size(model: &CostModel<'_>, shape: PlanShape) -> u128 {
    let query = model.query();
    let n = query.n_tables();
    if n == 0 {
        return 0;
    }
    let n_methods = lec_plan::JoinMethod::ALL.len() as u128;
    let mut counts: HashMap<TableSet, u128> = HashMap::new();
    for idx in 0..n {
        counts.insert(
            TableSet::singleton(idx),
            model.access_paths(idx).len() as u128,
        );
    }
    for k in 2..=n {
        for set in TableSet::subsets_of_size(n, k) {
            let mut total: u128 = 0;
            for (left, right) in shape.splits(query, set) {
                if let (Some(l), Some(r)) = (counts.get(&left), counts.get(&right)) {
                    total = total.saturating_add(l.saturating_mul(*r).saturating_mul(n_methods));
                }
            }
            if total > 0 {
                counts.insert(set, total);
            }
        }
    }
    counts.get(&TableSet::full(n)).copied().unwrap_or(0)
}

/// Run the DP under `shape` and `policy` and return the finalized root
/// candidates, cheapest-available via [`SearchRun::best`].
pub fn run_search<P: CandidatePolicy>(
    model: &CostModel<'_>,
    shape: PlanShape,
    policy: &mut P,
) -> Result<SearchRun<P::Entry>, OptError> {
    let query: &Query = model.query();
    let n = query.n_tables();
    if n == 0 {
        return Err(OptError::EmptyQuery);
    }
    let start = Instant::now();
    let hits_before = model.eval_cache_hits();
    model.reset_evals();
    let mut stats = SearchStats::default();
    let mut table: HashMap<TableSet, Vec<P::Entry>> = HashMap::new();

    // Depth 1: access paths.
    for idx in 0..n {
        let entries = policy.access_entries(model, idx, &mut stats);
        if !entries.is_empty() {
            stats.nodes += 1;
            table.insert(TableSet::singleton(idx), entries);
        }
    }

    // Depths 2..n.
    for k in 2..=n {
        for set in TableSet::subsets_of_size(n, k) {
            let mut entries: Vec<P::Entry> = Vec::new();
            for (left, right) in shape.splits(query, set) {
                let (Some(outer), Some(inner)) = (table.get(&left), table.get(&right)) else {
                    continue;
                };
                let ctx = JoinContext {
                    left,
                    right,
                    result: set,
                    phase: k - 2,
                };
                policy.combine(model, &ctx, outer, inner, &mut entries, &mut stats);
            }
            if !entries.is_empty() {
                stats.nodes += 1;
                table.insert(set, entries);
            }
        }
    }

    let root = table
        .remove(&TableSet::full(n))
        .ok_or(OptError::NoPlanFound)?;
    let ctx = RootContext {
        set: TableSet::full(n),
        sort_phase: n - 1,
    };
    let roots = policy.finalize(model, &ctx, root, &mut stats);
    if roots.is_empty() {
        return Err(OptError::NoPlanFound);
    }
    stats.evals = model.evals();
    stats.cache_hits = model.eval_cache_hits() - hits_before;
    stats.elapsed = start.elapsed();
    Ok(SearchRun { roots, stats })
}
