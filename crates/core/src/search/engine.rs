//! The one DP driver.  Everything that enumerates subsets lives here —
//! no optimizer module outside `search/` walks the dag itself.
//!
//! Two drivers share one recursion: [`run_search`] is the serial
//! reference implementation, and [`run_search_with`] fans each DP level
//! out across a pool of scoped worker threads (see [`SearchConfig`]).
//! The parallel driver is **deterministic**: subsets at one level are
//! independent (their splits only read completed lower levels), each
//! subset is combined wholly by one worker in the same split/pair/method
//! order as the serial driver, worker results are merged at a level
//! barrier, and the evaluation cache computes every distinct key exactly
//! once — so plans, costs, tie-breaks, and all counters are byte-identical
//! to a serial run.

use super::bound::{point_size_product, PruneState};
use super::memo::{MemoRecord, SubplanMemo};
use super::policy::{CandidatePolicy, JoinContext, RootContext, SearchEntry};
use super::pool::{ScopedSpawnPool, WorkerPool};
use super::SearchStats;
use crate::error::OptError;
use lec_canon::QueryCanonizer;
use lec_cost::CostModel;
use lec_plan::{Query, TableSet};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// How a subset is split into (outer, inner) operand pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanShape {
    /// System R left-deep trees (§2.2): `S∖{j}` joined with base table
    /// `{j}`.
    LeftDeep,
    /// All binary trees without cross products (the §4 extension): every
    /// connected ordered 2-partition of `S`.
    Bushy,
}

impl PlanShape {
    /// The ordered operand splits of `set`, cross products excluded.
    fn splits(self, query: &Query, set: TableSet) -> Vec<(TableSet, TableSet)> {
        match self {
            PlanShape::LeftDeep => set
                .iter()
                .filter_map(|j| {
                    let left = set.without(j);
                    query
                        .is_connected_to(left, j)
                        .then_some((left, TableSet::singleton(j)))
                })
                .collect(),
            PlanShape::Bushy => {
                let bits = set.bits();
                let mut out = Vec::new();
                // Walk all non-empty proper subsets via the standard trick.
                let mut sub = (bits - 1) & bits;
                while sub != 0 {
                    let left = TableSet::from_bits(sub);
                    let right = TableSet::from_bits(bits & !sub);
                    if !query.joins_crossing(left, right).is_empty() {
                        out.push((left, right));
                    }
                    sub = (sub - 1) & bits;
                }
                out
            }
        }
    }
}

/// The engine's raw product: the finalized (order-enforced) root
/// candidates plus the run's statistics.
#[derive(Debug, Clone)]
pub struct SearchRun<E> {
    /// Finalized root candidates; non-empty.
    pub roots: Vec<E>,
    /// Statistics for this run.
    pub stats: SearchStats,
}

impl<E: SearchEntry> SearchRun<E> {
    /// The cheapest finalized candidate.
    pub fn best(&self) -> &E {
        self.roots
            .iter()
            .min_by(|a, b| a.cost().total_cmp(&b.cost()))
            .expect("run_search guarantees a non-empty root list")
    }

    /// Consume the run, returning the cheapest candidate and the stats.
    pub fn into_best(self) -> (E, SearchStats) {
        let best = self.best().clone();
        (best, self.stats)
    }
}

/// Number of complete plans of `shape` the keep-all policy would
/// materialize for this query: the same subset recursion as the search
/// itself, counting instead of building.  Lets callers reject
/// plan spaces too large to hold in memory before paying for them.
pub fn plan_space_size(model: &CostModel<'_>, shape: PlanShape) -> u128 {
    let query = model.query();
    let n = query.n_tables();
    if n == 0 {
        return 0;
    }
    let n_methods = lec_plan::JoinMethod::ALL.len() as u128;
    let mut counts: HashMap<TableSet, u128> = HashMap::new();
    for idx in 0..n {
        counts.insert(
            TableSet::singleton(idx),
            model.access_paths(idx).len() as u128,
        );
    }
    for k in 2..=n {
        for set in TableSet::subsets_of_size(n, k) {
            let mut total: u128 = 0;
            for (left, right) in shape.splits(query, set) {
                if let (Some(l), Some(r)) = (counts.get(&left), counts.get(&right)) {
                    total = total.saturating_add(l.saturating_mul(*r).saturating_mul(n_methods));
                }
            }
            if total > 0 {
                counts.insert(set, total);
            }
        }
    }
    counts.get(&TableSet::full(n)).copied().unwrap_or(0)
}

/// Default [`SearchConfig::fanout_threshold`]: the widest DP level must
/// carry at least this many *connected* (work-bearing) subsets before the
/// engine spawns workers.  28 is between the widest levels of fully
/// dense 6-table (20) and 7-table (35) queries: below that, one search
/// runs in well under 100µs and thread spawn overhead would dominate.
/// Sparse shapes gate on their real width — an 8-table chain (widest
/// connected level: 5) stays serial at any size the scan covers.
pub const DEFAULT_FANOUT_THRESHOLD: usize = 28;

/// Tuning knobs for the parallel DP driver ([`run_search_with`]).
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Total search threads, including the calling thread.  `0` resolves
    /// to [`std::thread::available_parallelism`]; `1` forces the serial
    /// driver (exactly the [`run_search`] code path).
    pub threads: usize,
    /// Minimum number of subsets the widest DP level must have before the
    /// engine fans out at all (small searches stay serial).
    pub fanout_threshold: usize,
    /// Minimum cost-formula evaluations one candidate must need before
    /// its bucket expectation is itself fanned out (the inner hot loop of
    /// Algorithms C/D); forwarded to the costers as
    /// [`lec_cost::BucketParallelism::min_evals`].
    pub bucket_evals_threshold: usize,
    /// Where the level fan-out's worker threads come from.  `None` spawns
    /// a scoped pool per search (the zero-standing-cost default); a
    /// [`super::PersistentPool`] shares long-lived parked threads across
    /// searches, cutting per-search dispatch from ~50µs to a few µs.  The
    /// pool choice never affects results — outcomes are byte-identical
    /// either way.
    pub pool: Option<Arc<dyn WorkerPool>>,
    /// Optional cross-search subplan memo ([`SubplanMemo`]): DP nodes
    /// whose canonical connected-subquery shape was combined before — in
    /// this search or any earlier search sharing the memo — are served by
    /// relabeling the memoized candidates instead of re-running their
    /// combine/cost loop.  Like the pool, the memo never affects results:
    /// memo-on searches are byte-identical (plans, cost bits, `evals`,
    /// `cache_hits`, `candidates`, `nodes`) to memo-off ones; only
    /// [`SearchStats::memo_hits`]/[`SearchStats::memo_misses`] differ.
    pub memo: Option<Arc<SubplanMemo>>,
    /// Branch-and-bound pruning (see the module docs of
    /// [`super::bound`]): maintain an incumbent complete-plan cost and
    /// discard a connected subset before its combine/cost loop when an
    /// admissible lower bound on any completion through it strictly
    /// exceeds the incumbent.  Takes effect only when the active policy
    /// opts in with an admissible bound
    /// ([`CandidatePolicy::pruning_bound`]) — keep-best, multi-param and
    /// keep-all do; top-c bypasses.  Pruned searches return answers
    /// byte-identical (plans, cost bits) to unpruned ones; only work
    /// counters ([`SearchStats::pruned_subsets`],
    /// [`SearchStats::bound_evals`], `candidates`, `evals`, `nodes`,
    /// `cache_hits`) differ.
    pub pruning: bool,
    /// Optional engine-internal telemetry
    /// ([`lec_telemetry::EngineTelemetry`]): when installed, the drivers
    /// time each DP level's combine pass, every memo probe, and every
    /// bound evaluation into its histograms.  Purely observational —
    /// results and all work counters are byte-identical with or without
    /// it, so like the pool and memo it does not participate in
    /// [`SearchConfig::fingerprint`].
    pub telemetry: Option<Arc<lec_telemetry::EngineTelemetry>>,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            threads: 0,
            fanout_threshold: DEFAULT_FANOUT_THRESHOLD,
            bucket_evals_threshold: lec_cost::DEFAULT_MIN_PARALLEL_EVALS,
            pool: None,
            memo: None,
            pruning: false,
            telemetry: None,
        }
    }
}

impl PartialEq for SearchConfig {
    fn eq(&self, other: &Self) -> bool {
        self.threads == other.threads
            && self.fanout_threshold == other.fanout_threshold
            && self.bucket_evals_threshold == other.bucket_evals_threshold
            && match (&self.pool, &other.pool) {
                (None, None) => true,
                (Some(a), Some(b)) => {
                    // Same pool instance (vtable-independent data-pointer
                    // comparison; Arc::ptr_eq on dyn Trait compares
                    // vtables too, which is not what "same pool" means).
                    std::ptr::addr_eq(Arc::as_ptr(a), Arc::as_ptr(b))
                }
                _ => false,
            }
            && match (&self.memo, &other.memo) {
                (None, None) => true,
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                _ => false,
            }
            && self.pruning == other.pruning
            && match (&self.telemetry, &other.telemetry) {
                (None, None) => true,
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                _ => false,
            }
    }
}

impl Eq for SearchConfig {}

impl SearchConfig {
    /// A configuration that always takes the serial driver.
    pub fn serial() -> Self {
        SearchConfig {
            threads: 1,
            ..Default::default()
        }
    }

    /// A configuration with an explicit thread count and default
    /// thresholds.
    pub fn with_threads(threads: usize) -> Self {
        SearchConfig {
            threads,
            ..Default::default()
        }
    }

    /// This configuration with a shared worker pool installed; also drops
    /// the fan-out gate to [`super::pool::PERSISTENT_FANOUT_THRESHOLD`]
    /// when the current threshold is the spawn-pool default, since waking
    /// a parked worker is an order of magnitude cheaper than spawning one.
    pub fn with_pool(mut self, pool: Arc<dyn WorkerPool>) -> Self {
        if self.fanout_threshold == DEFAULT_FANOUT_THRESHOLD {
            self.fanout_threshold = super::pool::PERSISTENT_FANOUT_THRESHOLD;
        }
        self.pool = Some(pool);
        self
    }

    /// This configuration with a shared cross-search subplan memo
    /// installed: eligible DP nodes consult (and populate) it instead of
    /// always re-running their combine loops.  Results stay byte-identical
    /// with or without it.
    pub fn with_memo(mut self, memo: Arc<SubplanMemo>) -> Self {
        self.memo = Some(memo);
        self
    }

    /// This configuration with branch-and-bound pruning switched on or
    /// off (see [`SearchConfig::pruning`]).
    pub fn with_pruning(mut self, pruning: bool) -> Self {
        self.pruning = pruning;
        self
    }

    /// This configuration with engine-internal telemetry installed (see
    /// [`SearchConfig::telemetry`]).
    pub fn with_telemetry(mut self, telemetry: Arc<lec_telemetry::EngineTelemetry>) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Stable fingerprint of the outcome-relevant knobs, for cross-query
    /// plan-cache keys.  The pool is a thread *source* and the memo a
    /// work *cache*, not semantic knobs (results are byte-identical with
    /// or without either), so neither participates; pruning is excluded
    /// for the same reason — it discards only strictly-worse candidates,
    /// so the answer a cache key names is identical either way.
    /// Telemetry is pure observation and is excluded likewise.
    pub fn fingerprint(&self) -> u64 {
        lec_cost::Fingerprint::new()
            .u64(self.threads as u64)
            .u64(self.fanout_threshold as u64)
            .u64(self.bucket_evals_threshold as u64)
            .finish()
    }

    /// The resolved thread count: `threads`, or the machine's available
    /// parallelism when `threads == 0`.
    pub fn effective_threads(&self) -> usize {
        if self.threads != 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        }
    }

    /// The per-candidate bucket fan-out policy implied by this config for
    /// `query`, for handing to the expectation costers.
    ///
    /// The two fan-out axes are **exclusive**: when the level fan-out
    /// engages ([`SearchConfig::fans_out`]), bucket evaluation stays
    /// serial — otherwise every DP worker could spawn its own bucket
    /// scope (`threads²` live threads), and it would do so while holding
    /// an eval-cache shard lock that other DP workers may want.  Bucket
    /// fan-out is the fallback axis for narrow-but-deep searches the
    /// level fan-out cannot help.
    pub fn bucket_parallelism_for(&self, query: &Query) -> lec_cost::BucketParallelism {
        if self.fans_out(query) {
            lec_cost::BucketParallelism::serial()
        } else {
            lec_cost::BucketParallelism {
                threads: self.effective_threads(),
                min_evals: self.bucket_evals_threshold,
            }
        }
    }

    /// Whether a search over `query` fans out under this config: more
    /// than one resolved thread and at least `fanout_threshold` subsets
    /// of *actual work* at the widest DP level.
    ///
    /// Raw subset counts are the wrong gauge for sparse join graphs — an
    /// 8-table chain has `C(8,4) = 70` subsets at its widest level but
    /// only 5 connected ones (contiguous runs) that produce candidates —
    /// so for queries small enough to scan (`n ≤ 12`, a few µs) this
    /// counts *connected* subsets per level exactly and gates on that.
    /// Larger queries fall back to the binomial upper bound: there, the
    /// subset enumeration itself is the dominant cost and parallelizes
    /// regardless of topology.
    pub fn fans_out(&self, query: &Query) -> bool {
        if self.effective_threads() <= 1 {
            return false;
        }
        let n = query.n_tables();
        let threshold = self.fanout_threshold as u128;
        // Cheap upper bound first: connected subsets per level can never
        // beat the binomial.
        if widest_level(n) < threshold {
            return false;
        }
        if n > WIDTH_SCAN_MAX_TABLES {
            return true;
        }
        widest_connected_level(query, n, self.fanout_threshold) >= self.fanout_threshold
    }
}

/// `C(n, n/2)` — the number of subsets at the widest DP level.
fn widest_level(n: usize) -> u128 {
    let k = n / 2;
    let mut r: u128 = 1;
    for i in 0..k {
        r = r.saturating_mul((n - i) as u128) / (i as u128 + 1);
    }
    r
}

/// Cap on the exact connected-width scan in [`SearchConfig::fans_out`].
/// The scan is `O(2^n)` in cheap bit operations over the same subsets
/// the search itself will enumerate with strictly more work each, so it
/// stays a small fraction of any search it gates; 16 caps its absolute
/// cost (~64k subsets) while covering every query size where misgating a
/// sparse topology would actually hurt — beyond it, subset enumeration
/// dominates whatever the topology and parallelizes regardless.
const WIDTH_SCAN_MAX_TABLES: usize = 16;

/// The largest number of *connected* subsets at any single DP level —
/// i.e. the widest level of real work — computed by a bitmask scan over
/// all subsets (`n ≤` [`WIDTH_SCAN_MAX_TABLES`]).  Returns early once any
/// level reaches `threshold`, so dense graphs (the fan-out case) answer
/// in a few hundred subsets and only sparse graphs pay the full scan.
fn widest_connected_level(query: &Query, n: usize, threshold: usize) -> usize {
    let mut adj = vec![0u64; n];
    for j in &query.joins {
        adj[j.left.table] |= 1 << j.right.table;
        adj[j.right.table] |= 1 << j.left.table;
    }
    let mut widths = vec![0usize; n + 1];
    let mut max = 0;
    for bits in 1u64..(1u64 << n) {
        let k = bits.count_ones() as usize;
        if k < 2 {
            continue;
        }
        // Grow the lowest member's component within `bits` to a fixpoint.
        let mut comp = bits & bits.wrapping_neg();
        loop {
            let mut grown = comp;
            let mut rest = comp;
            while rest != 0 {
                let i = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                grown |= adj[i] & bits;
            }
            if grown == comp {
                break;
            }
            comp = grown;
        }
        if comp == bits {
            widths[k] += 1;
            if widths[k] > max {
                max = widths[k];
                if max >= threshold {
                    return max;
                }
            }
        }
    }
    max
}

/// Per-search subplan-memo state: the shared memo, the query's
/// canonicalizer, and the environment fingerprint (policy/coster
/// parameters and plan shape) prefixed onto every node key.
pub(super) struct MemoSession<'q> {
    memo: Arc<SubplanMemo>,
    canon: QueryCanonizer<'q>,
    env: u64,
}

/// A memo session for this search, or `None` when the search is
/// memo-ineligible: no memo configured, a policy that bypasses the memo
/// (top-c, keep-all), or a disabled evaluation cache (probe replay seeds
/// the cache, so there must be one).
fn memo_session<'q, P: CandidatePolicy>(
    model: &CostModel<'_>,
    query: &'q Query,
    shape: PlanShape,
    policy: &P,
    config: Option<&SearchConfig>,
) -> Option<MemoSession<'q>> {
    let memo = Arc::clone(config?.memo.as_ref()?);
    if !model.eval_cache_enabled() {
        return None;
    }
    let policy_fp = policy.memo_fingerprint(model)?;
    let env = lec_cost::Fingerprint::new()
        .u64(policy_fp)
        .u64(match shape {
            PlanShape::LeftDeep => 0,
            PlanShape::Bushy => 1,
        })
        .finish();
    Some(MemoSession {
        memo,
        canon: QueryCanonizer::new(model.catalog(), query),
        env,
    })
}

/// Run `f`, timing it into `h` when a histogram is installed.  The
/// `None` path is a single branch — engine telemetry off costs nothing
/// measurable per call site.
#[inline]
fn timed<T>(h: Option<&lec_telemetry::Histogram>, f: impl FnOnce() -> T) -> T {
    match h {
        Some(h) => {
            let t0 = Instant::now();
            let v = f();
            h.record_duration(t0.elapsed());
            v
        }
        None => f(),
    }
}

/// The plain combine loop of one subset: every split's entry pairs under
/// every method, exactly as both drivers have always run it.
fn combine_live<P: CandidatePolicy>(
    model: &CostModel<'_>,
    shape: PlanShape,
    policy: &mut P,
    table: &HashMap<TableSet, Vec<P::Entry>>,
    set: TableSet,
    stats: &mut SearchStats,
) -> Vec<P::Entry> {
    let query = model.query();
    let mut entries: Vec<P::Entry> = Vec::new();
    for (left, right) in shape.splits(query, set) {
        let (Some(outer), Some(inner)) = (table.get(&left), table.get(&right)) else {
            continue;
        };
        let ctx = JoinContext {
            left,
            right,
            result: set,
            phase: set.len() - 2,
        };
        policy.combine(model, &ctx, outer, inner, &mut entries, stats);
    }
    entries
}

/// Combine one subset, consulting the subplan memo when a session is
/// active and the branch-and-bound prune check when `prune` is set.  A
/// memo hit relabels the stored candidates into this query's numbering
/// and replays the recorded cache probes (keeping `evals` / `cache_hits`
/// byte-identical to a live combine); a miss combines live under probe
/// recording and populates the memo.  The prune check runs *before* the
/// combine (that is the whole point — a pruned subset skips its entire
/// combine/cost loop, and on a memo hit even the decode): the subset's
/// size floor comes from the memo record when it carries one
/// ([`MemoRecord::bound_pages`]), else one [`SearchStats::bound_evals`]
/// computation.  The full set is never checked — the root must always
/// combine.  `stats.nodes` is counted here for non-empty results.
#[allow(clippy::too_many_arguments)]
fn combine_subset<P: CandidatePolicy>(
    model: &CostModel<'_>,
    shape: PlanShape,
    policy: &mut P,
    table: &HashMap<TableSet, Vec<P::Entry>>,
    set: TableSet,
    memo: Option<&MemoSession<'_>>,
    prune: Option<&PruneState>,
    tel: Option<&lec_telemetry::EngineTelemetry>,
    stats: &mut SearchStats,
) -> Vec<P::Entry> {
    let check = prune.filter(|_| set.len() < model.query().n_tables());
    // Structural connectivity first: a disconnected subset can never
    // produce an entry (every split excludes cross products), so it is
    // discarded before the memo probe and before any size product —
    // this counts toward `pruned_subsets` but ticks no bound tier.
    if let Some(ps) = check {
        if !ps.is_connected(set) {
            stats.pruned_subsets += 1;
            return Vec::new();
        }
    }
    if let Some(ms) = memo {
        if let Some(form) = ms.canon.subquery(set) {
            let key = node_key(ms, &form);
            let rec = timed(tel.map(|t| &t.memo_probe_ns), || ms.memo.lookup(&key));
            let mut bound_pages = None;
            if let Some(ps) = check {
                let pages = match rec.as_deref().and_then(|r| r.bound_pages) {
                    Some(stored) => stored,
                    None => {
                        stats.bound_evals += 1;
                        timed(tel.map(|t| &t.bound_eval_ns), || {
                            ps.bound().pages_floor(model, set)
                        })
                    }
                };
                if tally_check(ps.check(set, pages), stats) {
                    return Vec::new();
                }
                bound_pages = Some(pages);
            }
            return memoized_node(
                model,
                ms,
                &form,
                key,
                rec,
                bound_pages,
                policy,
                stats,
                |model, policy, stats| combine_live(model, shape, policy, table, set, stats),
            );
        }
    }
    if let Some(ps) = check {
        stats.bound_evals += 1;
        let pages = timed(tel.map(|t| &t.bound_eval_ns), || {
            ps.bound().pages_floor(model, set)
        });
        if tally_check(ps.check(set, pages), stats) {
            return Vec::new();
        }
    }
    let entries = combine_live(model, shape, policy, table, set, stats);
    if !entries.is_empty() {
        stats.nodes += 1;
    }
    entries
}

/// Fold one tiered prune-check result ([`PruneState::check`]) into the
/// stats and report whether the subset was discarded.  Every connected
/// non-full subset ticks exactly one of `sharp_bound_evals` /
/// `cheap_bound_skips`, so their sum — like `pruned_subsets` — is
/// schedule- and memo-independent.
fn tally_check(check: super::bound::BoundCheck, stats: &mut SearchStats) -> bool {
    if check.sharp() {
        stats.sharp_bound_evals += 1;
    } else {
        stats.cheap_bound_skips += 1;
    }
    if check.pruned() {
        stats.pruned_subsets += 1;
        return true;
    }
    false
}

/// One level's [`lec_telemetry::LevelPrune`] record: the delta of the
/// schedule-independent pruning counters between the running-stats
/// snapshots taken before and after the level's combine pass.
fn level_prune_delta(
    k: usize,
    before: &SearchStats,
    after: &SearchStats,
) -> lec_telemetry::LevelPrune {
    lec_telemetry::LevelPrune {
        level: k as u32,
        pruned_subsets: after.pruned_subsets - before.pruned_subsets,
        sharp_bound_evals: after.sharp_bound_evals - before.sharp_bound_evals,
        cheap_bound_skips: after.cheap_bound_skips - before.cheap_bound_skips,
    }
}

/// Build one depth-1 node (access-path alternatives), consulting the
/// subplan memo exactly like [`combine_subset`] does for composite
/// subsets.  Access costing never touches the evaluation cache, so a
/// singleton record carries its eval count as
/// [`MemoRecord::unprobed_evals`] instead of a probe log; a hit charges
/// them back through [`CostModel::charge_evals`], keeping every counter
/// byte-identical to a memo-off search.
fn access_subset<P: CandidatePolicy>(
    model: &CostModel<'_>,
    policy: &mut P,
    idx: usize,
    memo: Option<&MemoSession<'_>>,
    tel: Option<&lec_telemetry::EngineTelemetry>,
    stats: &mut SearchStats,
) -> Vec<P::Entry> {
    if let Some(ms) = memo {
        if let Some(form) = ms.canon.subquery(TableSet::singleton(idx)) {
            let key = node_key(ms, &form);
            let rec = timed(tel.map(|t| &t.memo_probe_ns), || ms.memo.lookup(&key));
            return memoized_node(model, ms, &form, key, rec, None, policy, stats, {
                |model, policy: &mut P, stats: &mut SearchStats| {
                    policy.access_entries(model, idx, stats)
                }
            });
        }
    }
    let entries = policy.access_entries(model, idx, stats);
    if !entries.is_empty() {
        stats.nodes += 1;
    }
    entries
}

/// A node's memo key: the search's environment fingerprint prefixed onto
/// the subquery's canonical shape key.
fn node_key(ms: &MemoSession<'_>, form: &lec_canon::SubplanForm) -> Box<[u64]> {
    let mut key = Vec::with_capacity(1 + form.key.len());
    key.push(ms.env);
    key.extend_from_slice(&form.key);
    key.into_boxed_slice()
}

/// The shared memo record/replay protocol of one DP node: decode the
/// pre-fetched record on a hit (replaying probes and unprobed eval
/// charges), or run `live` under probe recording and populate on a miss.
/// `bound_pages` is the node's already-evaluated size floor when the
/// caller prune-checked it (stored into the record so later pruned
/// searches skip the recompute).
#[allow(clippy::too_many_arguments)]
fn memoized_node<P: CandidatePolicy>(
    model: &CostModel<'_>,
    ms: &MemoSession<'_>,
    form: &lec_canon::SubplanForm,
    key: Box<[u64]>,
    rec: Option<Arc<MemoRecord>>,
    bound_pages: Option<f64>,
    policy: &mut P,
    stats: &mut SearchStats,
    live: impl FnOnce(&CostModel<'_>, &mut P, &mut SearchStats) -> Vec<P::Entry>,
) -> Vec<P::Entry> {
    if let Some(rec) = rec {
        if let Some(entries) = policy.memo_decode(model, form, &rec) {
            model.replay_probes(&rec.probes, |bits| form.global_bits(bits));
            model.charge_evals(rec.unprobed_evals);
            stats.candidates += rec.candidates;
            stats.memo_hits += 1;
            if !entries.is_empty() {
                stats.nodes += 1;
            }
            return entries;
        }
    }
    stats.memo_misses += 1;
    policy.memo_node_begin();
    let candidates_before = stats.candidates;
    let evals_before = model.evals();
    let recording = model.begin_probe_log();
    let entries = live(model, policy, stats);
    let mut probes = recording.finish();
    if !entries.is_empty() {
        stats.nodes += 1;
        if let Some(encoded) = policy.memo_encode(model, form, &entries) {
            // Store probes in canonical table-set bits so a hit in
            // any query can relabel them back out.
            for p in probes.iter_mut() {
                p.left = form.canonical_bits(p.left);
                p.right = form.canonical_bits(p.right);
            }
            // Evaluations the probe log cannot see (uncached access
            // costing); for composite nodes every eval flows through a
            // probe and this is zero.
            let unprobed_evals = if probes.is_empty() {
                model.evals() - evals_before
            } else {
                0
            };
            ms.memo.insert(
                key,
                MemoRecord {
                    entries: encoded,
                    candidates: stats.candidates - candidates_before,
                    probes,
                    unprobed_evals,
                    bound_pages,
                },
            );
        }
    }
    entries
}

/// Index of the minimal-cost entry in `entries` (first among exact
/// ties, matching [`SearchRun::best`]'s pick).
fn cheapest_index<E: SearchEntry>(entries: &[E]) -> Option<usize> {
    let mut best: Option<(f64, usize)> = None;
    for (i, e) in entries.iter().enumerate() {
        let c = e.cost();
        let better = match best {
            None => true,
            Some((bc, _)) => c < bc,
        };
        if better {
            best = Some((c, i));
        }
    }
    best.map(|(_, i)| i)
}

/// Assemble — and install into the policy — the search's prune state,
/// when `config` asks for pruning and the policy supplies an admissible
/// bound ([`CandidatePolicy::pruning_bound`]).  Called right after depth
/// 1: the access floors are the policy's own cheapest access cost per
/// table, harvested from the table — no extra evaluations.
fn build_prune<P: CandidatePolicy>(
    model: &CostModel<'_>,
    shape: PlanShape,
    policy: &mut P,
    config: Option<&SearchConfig>,
    table: &HashMap<TableSet, Vec<P::Entry>>,
) -> Option<Arc<PruneState>> {
    if !config?.pruning {
        return None;
    }
    let bound = policy.pruning_bound(model)?;
    let n = model.query().n_tables();
    let access_floors = (0..n)
        .map(|i| {
            table
                .get(&TableSet::singleton(i))
                .and_then(|es| cheapest_index(es).map(|j| es[j].cost()))
                .unwrap_or(0.0)
        })
        .collect();
    let ps = Arc::new(PruneState::new(model, shape, bound, access_floors));
    policy.install_pruning(&ps);
    Some(ps)
}

/// Greedily complete the cheapest entry of `seed` to a full plan through
/// the policy's own `combine`/`finalize`, returning the finalized cost —
/// a *real, achievable* completion cost under the policy's exact
/// objective (coster, phases, root sort), which is what makes it a valid
/// incumbent.  Each chain step joins the single cheapest surviving
/// candidate with the connected table whose point size product keeps the
/// intermediate smallest; truncating to one entry per step keeps the walk
/// at `O(n)` cheap combines for every policy, keep-all included.  `None`
/// when the walk dead-ends (disconnected remainder, or a pruning
/// keep-all's own streaming discard dropped every candidate) — the
/// incumbent simply stays where it was.
fn greedy_complete<P: CandidatePolicy>(
    model: &CostModel<'_>,
    policy: &mut P,
    table: &HashMap<TableSet, Vec<P::Entry>>,
    seed: TableSet,
    stats: &mut SearchStats,
) -> Option<f64> {
    let query = model.query();
    let n = query.n_tables();
    let mut set = seed;
    let seed_entries = table.get(&seed)?;
    let mut cur = vec![seed_entries[cheapest_index(seed_entries)?].clone()];
    while set.len() < n {
        let mut choice: Option<(f64, usize)> = None;
        for j in 0..n {
            if set.contains(j)
                || !query.is_connected_to(set, j)
                || !table.contains_key(&TableSet::singleton(j))
            {
                continue;
            }
            let size = point_size_product(model, set.with(j));
            let better = match choice {
                None => true,
                Some((best, _)) => size < best,
            };
            if better {
                choice = Some((size, j));
            }
        }
        let (_, j) = choice?;
        let result = set.with(j);
        let ctx = JoinContext {
            left: set,
            right: TableSet::singleton(j),
            result,
            phase: result.len() - 2,
        };
        let mut out = Vec::new();
        policy.combine(
            model,
            &ctx,
            &cur,
            &table[&TableSet::singleton(j)],
            &mut out,
            stats,
        );
        let best = cheapest_index(&out)?;
        cur = vec![out.swap_remove(best)];
        set = result;
    }
    let ctx = RootContext {
        set,
        sort_phase: n - 1,
    };
    policy
        .finalize(model, &ctx, cur, stats)
        .iter()
        .map(SearchEntry::cost)
        .min_by(|a, b| a.total_cmp(b))
}

/// Tighten the incumbent at a level barrier: pick the most promising
/// surviving subset of size `k` (cheapest minimal entry; smallest bit
/// pattern on exact ties), greedily complete it through the policy, and
/// observe the resulting cost.  Driver-only — the incumbent changes
/// exactly here (and at the post-depth-1 seeding, `k = 1`), never
/// mid-level, which is what makes every prune decision
/// schedule-independent: the serial and parallel drivers call this at the
/// same barriers over the same merged table, so pruned runs are
/// byte-identical across thread counts and pools.
fn refresh_incumbent<P: CandidatePolicy>(
    model: &CostModel<'_>,
    policy: &mut P,
    table: &HashMap<TableSet, Vec<P::Entry>>,
    prune: &PruneState,
    k: usize,
    stats: &mut SearchStats,
) {
    if prune.refresh_retired() {
        return;
    }
    let n = model.query().n_tables();
    let mut best: Option<(f64, TableSet)> = None;
    for set in TableSet::subsets_of_size(n, k) {
        let Some(entries) = table.get(&set) else {
            continue;
        };
        let Some(i) = cheapest_index(entries) else {
            continue;
        };
        let c = entries[i].cost();
        let better = match best {
            None => true,
            Some((bc, bs)) => c < bc || (c == bc && set.bits() < bs.bits()),
        };
        if better {
            best = Some((c, set));
        }
    }
    let Some((_, seed)) = best else { return };
    let before = prune.incumbent().get();
    if let Some(cost) = greedy_complete(model, policy, table, seed, stats) {
        prune.incumbent().observe(cost);
        // Greedy walks have sharply diminishing returns: the first walk
        // that completes without lowering a finite incumbent signals the
        // remaining ones won't either (each later seed walks a longer
        // prefix of an already-observed completion), so retire the
        // refresh for the rest of the search rather than paying a full
        // costed walk per level for nothing.  The decision reads only
        // barrier-deterministic state — the merged level table and the
        // incumbent, which changes nowhere else — so serial and parallel
        // drivers retire at the same level and every counter stays
        // schedule-independent.
        if cost >= before {
            prune.retire_refresh();
        }
    }
}

/// Run the DP under `shape` and `policy` and return the finalized root
/// candidates, cheapest-available via [`SearchRun::best`].
pub fn run_search<P: CandidatePolicy>(
    model: &CostModel<'_>,
    shape: PlanShape,
    policy: &mut P,
) -> Result<SearchRun<P::Entry>, OptError> {
    run_search_serial(model, shape, policy, None)
}

/// The serial driver, optionally memo-assisted (the subplan memo rides in
/// `config`; every other knob is ignored here).
fn run_search_serial<P: CandidatePolicy>(
    model: &CostModel<'_>,
    shape: PlanShape,
    policy: &mut P,
    config: Option<&SearchConfig>,
) -> Result<SearchRun<P::Entry>, OptError> {
    let query: &Query = model.query();
    let n = query.n_tables();
    if n == 0 {
        return Err(OptError::EmptyQuery);
    }
    let start = Instant::now();
    let hits_before = model.eval_cache_hits();
    model.reset_evals();
    let mut stats = SearchStats::default();
    let mut table: HashMap<TableSet, Vec<P::Entry>> = HashMap::new();

    let memo_cx = memo_session(model, query, shape, policy, config);
    let tel = config.and_then(|c| c.telemetry.as_deref());

    // Depth 1: access paths (memo-eligible like any other node).
    for idx in 0..n {
        let entries = access_subset(model, policy, idx, memo_cx.as_ref(), tel, &mut stats);
        if !entries.is_empty() {
            table.insert(TableSet::singleton(idx), entries);
        }
    }

    let prune_cx = build_prune(model, shape, policy, config, &table);
    if let Some(ps) = &prune_cx {
        refresh_incumbent(model, policy, &table, ps, 1, &mut stats);
    }

    // Depths 2..n.
    for k in 2..=n {
        let level_start = tel.map(|_| Instant::now());
        let prune_mark = stats;
        for set in TableSet::subsets_of_size(n, k) {
            let entries = combine_subset(
                model,
                shape,
                policy,
                &table,
                set,
                memo_cx.as_ref(),
                prune_cx.as_deref(),
                tel,
                &mut stats,
            );
            if !entries.is_empty() {
                table.insert(set, entries);
            }
        }
        if let (Some(t), Some(t0)) = (tel, level_start) {
            t.level_combine_ns.record_duration(t0.elapsed());
            if prune_cx.is_some() {
                t.record_level_prune(level_prune_delta(k, &prune_mark, &stats));
            }
        }
        if k < n {
            if let Some(ps) = &prune_cx {
                refresh_incumbent(model, policy, &table, ps, k, &mut stats);
            }
        }
    }

    let root = table
        .remove(&TableSet::full(n))
        .ok_or(OptError::NoPlanFound)?;
    let ctx = RootContext {
        set: TableSet::full(n),
        sort_phase: n - 1,
    };
    let roots = policy.finalize(model, &ctx, root, &mut stats);
    if roots.is_empty() {
        return Err(OptError::NoPlanFound);
    }
    stats.evals = model.evals();
    stats.cache_hits = model.eval_cache_hits() - hits_before;
    stats.elapsed = start.elapsed();
    Ok(SearchRun { roots, stats })
}

/// Epoch value signalling the workers to exit.
const STOP_EPOCH: usize = usize::MAX;

/// One worker's output for one DP level: the non-empty `(subset,
/// candidates)` pairs it combined plus its local statistics.
struct LevelOutput<E> {
    produced: Vec<(TableSet, Vec<E>)>,
    stats: SearchStats,
}

impl<E> Default for LevelOutput<E> {
    fn default() -> Self {
        LevelOutput {
            produced: Vec::new(),
            stats: SearchStats::default(),
        }
    }
}

/// Level-barrier coordination shared between the driver and its workers.
struct Coordinator {
    /// Monotonically increasing level sequence number; [`STOP_EPOCH`]
    /// terminates the workers.
    epoch: AtomicUsize,
    /// The current level's subsets, published by the driver before each
    /// epoch bump.
    sets: RwLock<Vec<TableSet>>,
    /// Work-stealing cursor into `sets`.
    next: AtomicUsize,
    /// Set when any thread panicked while combining; the driver aborts the
    /// search instead of dispatching further levels.
    panicked: AtomicBool,
}

/// Spin briefly, then yield: level phases last microseconds, but on
/// oversubscribed hosts the peer we wait for may need our core.  Used by
/// the driver's ack barrier, where the wait is bounded by a level's
/// remaining combine work.
fn relax(spins: &mut u32) {
    *spins += 1;
    if *spins < 64 {
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

/// A worker's wait for the next epoch: spin, then yield, then *park* —
/// the driver may be in an arbitrarily long serial phase (depth-1, a
/// single-subset root level, finalization), and idle workers must not
/// burn cores through it.  The driver unparks every worker after each
/// epoch bump; the timeout makes a lost wake-up (e.g. the driver
/// unwinding past its unpark) self-heal.
fn wait_for_epoch(epoch: &AtomicUsize, current: usize) -> usize {
    let mut spins = 0u32;
    loop {
        let e = epoch.load(Ordering::Acquire);
        if e != current {
            return e;
        }
        spins += 1;
        if spins < 64 {
            std::hint::spin_loop();
        } else if spins < 192 {
            std::thread::yield_now();
        } else {
            std::thread::park_timeout(std::time::Duration::from_millis(1));
        }
    }
}

/// Signals a worker's per-level completion even when its combine panicked
/// (the unwinding drop is what keeps the driver's barrier from
/// deadlocking on a dead worker).
struct AckGuard<'a> {
    ack: &'a AtomicUsize,
    epoch: usize,
    panicked: &'a AtomicBool,
}

impl Drop for AckGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.panicked.store(true, Ordering::SeqCst);
        }
        self.ack.store(self.epoch, Ordering::Release);
    }
}

/// On unwind of the driver thread, release the workers so the scope can
/// join them instead of deadlocking.
struct StopGuard<'a>(&'a AtomicUsize);

impl Drop for StopGuard<'_> {
    fn drop(&mut self) {
        self.0.store(STOP_EPOCH, Ordering::Release);
    }
}

/// Steal subsets off the level cursor and combine them, accumulating into
/// `out`.  Identical inner body to the serial driver: one subset is
/// processed wholly by one thread, in the same split → entry-pair → method
/// order, so its candidate vector is byte-identical to a serial run.
#[allow(clippy::too_many_arguments)]
fn combine_level_sets<P: CandidatePolicy>(
    model: &CostModel<'_>,
    shape: PlanShape,
    policy: &mut P,
    table: &HashMap<TableSet, Vec<P::Entry>>,
    sets: &[TableSet],
    next: &AtomicUsize,
    memo: Option<&MemoSession<'_>>,
    prune: Option<&PruneState>,
    tel: Option<&lec_telemetry::EngineTelemetry>,
    out: &mut LevelOutput<P::Entry>,
) {
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        let Some(&set) = sets.get(i) else { break };
        let entries = combine_subset(
            model,
            shape,
            policy,
            table,
            set,
            memo,
            prune,
            tel,
            &mut out.stats,
        );
        if !entries.is_empty() {
            out.produced.push((set, entries));
        }
    }
}

/// Run the DP under `shape` and `policy` with the parallelism described by
/// `config`.
///
/// With one (effective) thread, or a query whose widest level of
/// *connected* subsets is under [`SearchConfig::fanout_threshold`] (see
/// [`SearchConfig::fans_out`]), this is exactly [`run_search`].
/// Otherwise the engine borrows `threads - 1` workers from
/// [`SearchConfig::pool`] (a scoped pool spawned for this search when
/// `None`) that live for the whole search; at each DP level the driver
/// publishes that level's subsets, every thread (the caller included)
/// steals subsets off a shared cursor and combines them against the
/// read-only lower levels, and the driver merges the per-worker results at
/// the level barrier.  The merged outcome — plans, costs, tie-breaks,
/// `SearchStats` counters — is byte-identical to the serial driver's (see
/// the module docs for why), whatever the pool.
///
/// A panic inside any policy or coster (on a worker or the caller) aborts
/// the search and surfaces as [`OptError::WorkerPanicked`] rather than
/// propagating the panic or deadlocking the barrier; a persistent pool
/// survives the panic and serves the next search.
pub fn run_search_with<P>(
    model: &CostModel<'_>,
    shape: PlanShape,
    policy: &mut P,
    config: &SearchConfig,
) -> Result<SearchRun<P::Entry>, OptError>
where
    P: CandidatePolicy + Send,
    P::Entry: Send + Sync,
{
    let query: &Query = model.query();
    let n = query.n_tables();
    if n == 0 {
        return Err(OptError::EmptyQuery);
    }
    if !config.fans_out(query) {
        return run_search_serial(model, shape, policy, Some(config));
    }
    let spawn_pool = ScopedSpawnPool;
    let pool: &dyn WorkerPool = match &config.pool {
        Some(p) => p.as_ref(),
        None => &spawn_pool,
    };
    let threads = config.effective_threads();
    let start = Instant::now();
    let hits_before = model.eval_cache_hits();
    model.reset_evals();
    let mut stats = SearchStats::default();
    let mut table: HashMap<TableSet, Vec<P::Entry>> = HashMap::new();

    let memo_cx = memo_session(model, query, shape, &*policy, Some(config));
    let tel = config.telemetry.as_deref();

    // Depth 1 (access paths) is trivially cheap: keep it on the caller.
    for idx in 0..n {
        let entries = access_subset(model, policy, idx, memo_cx.as_ref(), tel, &mut stats);
        if !entries.is_empty() {
            table.insert(TableSet::singleton(idx), entries);
        }
    }

    // Install pruning before the forks below so every worker's policy
    // clone shares the one incumbent cell.
    let prune_cx = build_prune(model, shape, policy, Some(config), &table);
    if let Some(ps) = &prune_cx {
        refresh_incumbent(model, policy, &table, ps, 1, &mut stats);
    }

    let n_workers = (threads - 1).min(pool.max_workers());
    let coord = Coordinator {
        epoch: AtomicUsize::new(0),
        sets: RwLock::new(Vec::new()),
        next: AtomicUsize::new(0),
        panicked: AtomicBool::new(false),
    };
    let table_lock = RwLock::new(table);
    let outputs: Vec<Mutex<LevelOutput<P::Entry>>> = (0..n_workers)
        .map(|_| Mutex::new(LevelOutput::default()))
        .collect();
    let acks: Vec<AtomicUsize> = (0..n_workers).map(|_| AtomicUsize::new(0)).collect();
    // Forked policies ride in slots rather than thread return values: pool
    // threads outlive the search, so results flow through shared state.
    let policy_slots: Vec<Mutex<Option<P>>> = (0..n_workers)
        .map(|_| Mutex::new(Some(policy.fork())))
        .collect();
    // Worker thread handles, registered by each worker on entry so the
    // driver can unpark a worker that dozed off between levels.
    let worker_threads: Vec<Mutex<Option<std::thread::Thread>>> =
        (0..n_workers).map(|_| Mutex::new(None)).collect();

    let worker_body = |w: usize| {
        *worker_threads[w].lock().unwrap_or_else(|p| p.into_inner()) = Some(std::thread::current());
        let Some(mut wp) = policy_slots[w]
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .take()
        else {
            return;
        };
        let mut my_epoch = 0;
        loop {
            let e = wait_for_epoch(&coord.epoch, my_epoch);
            if e == STOP_EPOCH {
                break;
            }
            my_epoch = e;
            // Declared before the work so its drop (the ack) runs after
            // the output store — and on unwind.
            let _ack = AckGuard {
                ack: &acks[w],
                epoch: e,
                panicked: &coord.panicked,
            };
            let tbl = table_lock.read().unwrap_or_else(|p| p.into_inner());
            let sets = coord.sets.read().unwrap_or_else(|p| p.into_inner());
            let mut out = LevelOutput::default();
            combine_level_sets(
                model,
                shape,
                &mut wp,
                &tbl,
                &sets,
                &coord.next,
                memo_cx.as_ref(),
                prune_cx.as_deref(),
                tel,
                &mut out,
            );
            *outputs[w].lock().unwrap_or_else(|p| p.into_inner()) = out;
        }
        // A panic above skips this put-back; the empty slot is how the
        // driver learns the fork (and its diagnostics) died.
        *policy_slots[w].lock().unwrap_or_else(|p| p.into_inner()) = Some(wp);
    };

    let wake_workers = || {
        for slot in &worker_threads {
            if let Some(t) = slot.lock().unwrap_or_else(|p| p.into_inner()).as_ref() {
                t.unpark();
            }
        }
    };

    let mut aborted = false;
    {
        let stats = &mut stats;
        let aborted = &mut aborted;
        let policy = &mut *policy;
        pool.scope(n_workers, &worker_body, &mut || {
            // Ensure the workers are released even if this thread unwinds.
            let _stop = StopGuard(&coord.epoch);
            for k in 2..=n {
                let sets = TableSet::subsets_of_size(n, k);
                let level_start = tel.map(|_| Instant::now());
                let prune_mark = *stats;
                if sets.len() < 2 {
                    // A single subset (the root level) gains nothing from a
                    // dispatch round-trip; combine it on the caller.
                    let mut out = LevelOutput::default();
                    let cursor = AtomicUsize::new(0);
                    let res = {
                        let tbl = table_lock.read().unwrap_or_else(|p| p.into_inner());
                        catch_unwind(AssertUnwindSafe(|| {
                            combine_level_sets(
                                model,
                                shape,
                                policy,
                                &tbl,
                                &sets,
                                &cursor,
                                memo_cx.as_ref(),
                                prune_cx.as_deref(),
                                tel,
                                &mut out,
                            )
                        }))
                    };
                    if res.is_err() {
                        coord.panicked.store(true, Ordering::SeqCst);
                        *aborted = true;
                        break;
                    }
                    let mut tbl = table_lock.write().unwrap_or_else(|p| p.into_inner());
                    stats.absorb(&out.stats);
                    tbl.extend(out.produced);
                    if let (Some(t), Some(t0)) = (tel, level_start) {
                        t.level_combine_ns.record_duration(t0.elapsed());
                        if prune_cx.is_some() {
                            t.record_level_prune(level_prune_delta(k, &prune_mark, stats));
                        }
                    }
                    if k < n {
                        if let Some(ps) = &prune_cx {
                            refresh_incumbent(model, policy, &tbl, ps, k, stats);
                        }
                    }
                    continue;
                }

                // Publish the level and open the epoch.
                *coord.sets.write().unwrap_or_else(|p| p.into_inner()) = sets;
                coord.next.store(0, Ordering::SeqCst);
                let e = coord.epoch.load(Ordering::Relaxed) + 1;
                coord.epoch.store(e, Ordering::Release);
                wake_workers();

                // The caller steals alongside the workers.
                let mut my_out = LevelOutput::default();
                let res = {
                    let tbl = table_lock.read().unwrap_or_else(|p| p.into_inner());
                    let sets = coord.sets.read().unwrap_or_else(|p| p.into_inner());
                    catch_unwind(AssertUnwindSafe(|| {
                        combine_level_sets(
                            model,
                            shape,
                            policy,
                            &tbl,
                            &sets,
                            &coord.next,
                            memo_cx.as_ref(),
                            prune_cx.as_deref(),
                            tel,
                            &mut my_out,
                        )
                    }))
                };
                if res.is_err() {
                    coord.panicked.store(true, Ordering::SeqCst);
                }

                // Level barrier: every worker acks (their AckGuard fires
                // even on panic, so a poisoned combine cannot deadlock us
                // here).
                for ack in acks.iter() {
                    let mut spins = 0;
                    while ack.load(Ordering::Acquire) < e {
                        relax(&mut spins);
                    }
                }
                if coord.panicked.load(Ordering::SeqCst) {
                    *aborted = true;
                    break;
                }

                // Deterministic merge: worker outputs in worker order, then
                // the caller's own.  (Subsets are unique per level, and the
                // counters are sums, so any fixed order gives identical
                // results; worker order keeps it canonical.)
                let mut tbl = table_lock.write().unwrap_or_else(|p| p.into_inner());
                for slot in outputs.iter() {
                    let out = std::mem::take(&mut *slot.lock().unwrap_or_else(|p| p.into_inner()));
                    stats.absorb(&out.stats);
                    tbl.extend(out.produced);
                }
                stats.absorb(&my_out.stats);
                tbl.extend(my_out.produced);
                if let (Some(t), Some(t0)) = (tel, level_start) {
                    t.level_combine_ns.record_duration(t0.elapsed());
                    if prune_cx.is_some() {
                        t.record_level_prune(level_prune_delta(k, &prune_mark, stats));
                    }
                }
                if k < n {
                    if let Some(ps) = &prune_cx {
                        refresh_incumbent(model, policy, &tbl, ps, k, stats);
                    }
                }
            }

            coord.epoch.store(STOP_EPOCH, Ordering::Release);
            wake_workers();
        });
    }

    // Fold the forks back in worker order (deterministic merge); an empty
    // slot means that worker's policy died mid-panic.
    let mut worker_panicked = false;
    for slot in policy_slots {
        match slot.into_inner().unwrap_or_else(|p| p.into_inner()) {
            Some(wp) => policy.merge(wp),
            None => worker_panicked = true,
        }
    }
    if aborted || worker_panicked || coord.panicked.load(Ordering::SeqCst) {
        return Err(OptError::WorkerPanicked);
    }

    let mut table = table_lock.into_inner().unwrap_or_else(|p| p.into_inner());
    let root = table
        .remove(&TableSet::full(n))
        .ok_or(OptError::NoPlanFound)?;
    let ctx = RootContext {
        set: TableSet::full(n),
        sort_phase: n - 1,
    };
    let roots = policy.finalize(model, &ctx, root, &mut stats);
    if roots.is_empty() {
        return Err(OptError::NoPlanFound);
    }
    stats.evals = model.evals();
    stats.cache_hits = model.eval_cache_hits() - hits_before;
    stats.elapsed = start.elapsed();
    Ok(SearchRun { roots, stats })
}
