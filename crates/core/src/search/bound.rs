//! Admissible lower bounds for branch-and-bound pruning of the DP
//! search.
//!
//! A [`LowerBound`] gives, per connected subset `S`, a floor on the
//! output size of `S`'s result under the active policy's size model;
//! [`PruneState`] turns that floor into an admissible lower bound on the
//! cost of *any complete plan containing `S` as a subtree* — and the
//! engine discards `S` before its combine/cost loop whenever that bound
//! strictly exceeds the best complete-plan cost found so far (the
//! **incumbent**).
//!
//! Admissibility rests on two monotonicity facts the cost layer pins by
//! test ([`lec_cost::formulas`]): every join formula is nondecreasing in
//! its page inputs and nonincreasing in memory.  So for any coster —
//! point, expected over a static distribution, per-phase dynamic, or
//! Algorithm D's multi-parameter expectation — the cost it assigns one
//! join is at least `raw_join_cost(method, a_floor, b_floor, m_max)`
//! where `a_floor`/`b_floor` floor the input sizes and `m_max` is the
//! largest memory value any phase can see.  Summing floors over the
//! joins and accesses a completion must still perform (a root sort only
//! adds cost) yields the bound; strict-inequality pruning then preserves
//! exact cost ties, so pruned searches return byte-identical answers.

use lec_cost::formulas::{raw_join_cost, MIN_PAGES};
use lec_cost::CostModel;
use lec_plan::{JoinMethod, TableSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// A per-subset output-size floor under one policy family's size model.
///
/// Implementations must be *admissible*: `pages_floor(S)` may never
/// exceed the size value the policy's coster actually feeds into any
/// join above `S` (for scalar-page policies, the entry's `pages`; for
/// Algorithm D, the minimum of the entry's size-distribution support).
pub trait LowerBound: Send + Sync {
    /// Floor on the output pages of `set`'s result, at least
    /// [`MIN_PAGES`].
    fn pages_floor(&self, model: &CostModel<'_>, set: TableSet) -> f64;

    /// The most favourable (largest) memory value any execution phase
    /// can observe under the coster's memory model.
    fn max_memory(&self) -> f64;
}

/// The point size product of `set`: base pages of every member times the
/// mean selectivity of every join internal to `set`, clamped to
/// [`MIN_PAGES`].
///
/// This is exactly the value the scalar-page policies chain through
/// [`CostModel::join_output_pages`], except that the chain clamps at
/// *every* intermediate step while this clamps once at the end — so the
/// product is a floor on every entry's `pages`, whatever join order
/// built it.
pub fn point_size_product(model: &CostModel<'_>, set: TableSet) -> f64 {
    let mut pages = 1.0f64;
    for i in set.iter() {
        pages *= model.base_pages(i);
    }
    for join in &model.query().joins {
        if set.contains(join.left.table) && set.contains(join.right.table) {
            pages *= join.selectivity.mean();
        }
    }
    pages.max(MIN_PAGES)
}

/// The minimum-support size product of `set`: smallest support value of
/// every member's page distribution times the smallest support value of
/// every internal join's selectivity distribution, clamped to
/// [`MIN_PAGES`].  A floor on the minimum support of any
/// [`super::multi_param::DistEntry`] size distribution for `set`:
/// Algorithm D clamps each product value at one page, and rebucketing
/// (a weighted merge of adjacent buckets) can only raise a
/// distribution's minimum.
pub fn min_support_size_product(model: &CostModel<'_>, set: TableSet) -> f64 {
    let mut pages = 1.0f64;
    for i in set.iter() {
        pages *= model.base_pages_dist(i).min_value();
    }
    for join in &model.query().joins {
        if set.contains(join.left.table) && set.contains(join.right.table) {
            pages *= join.selectivity.min_value();
        }
    }
    pages.max(MIN_PAGES)
}

/// The point-costing bound (LSC): memory is exactly `memory` in every
/// phase and sizes are the point products.
#[derive(Debug, Clone)]
pub struct PointBound {
    /// The assumed memory value.
    pub memory: f64,
}

impl LowerBound for PointBound {
    fn pages_floor(&self, model: &CostModel<'_>, set: TableSet) -> f64 {
        point_size_product(model, set)
    }
    fn max_memory(&self) -> f64 {
        self.memory
    }
}

/// The expectation-costing bound (Algorithms C/C-dynamic): sizes are
/// still point products (those policies carry scalar pages), and every
/// per-memory-bucket evaluation is floored by the formula at the
/// distribution's largest support value — costs are nonincreasing in
/// memory, so `E_M[cost(M)] ≥ cost(max M)`.  For the dynamic coster
/// `max_memory` is the largest value over *all* phase distributions.
#[derive(Debug, Clone)]
pub struct ExpectationBound {
    /// Largest memory support value any phase can see.
    pub max_memory: f64,
}

impl LowerBound for ExpectationBound {
    fn pages_floor(&self, model: &CostModel<'_>, set: TableSet) -> f64 {
        point_size_product(model, set)
    }
    fn max_memory(&self) -> f64 {
        self.max_memory
    }
}

/// Algorithm D's bound: sizes are floored by the minimum-support product
/// (the policy's per-node size *distributions* never dip below it) and
/// memory by its largest support value.
#[derive(Debug, Clone)]
pub struct MinSupportBound {
    /// Largest memory support value.
    pub max_memory: f64,
}

impl LowerBound for MinSupportBound {
    fn pages_floor(&self, model: &CostModel<'_>, set: TableSet) -> f64 {
        min_support_size_product(model, set)
    }
    fn max_memory(&self) -> f64 {
        self.max_memory
    }
}

/// The shared incumbent cost: an `f64` in an atomic cell.
///
/// During a DP level only readers touch the cell; the driver alone
/// tightens it at level barriers (and once after depth 1), which is what
/// keeps every prune decision schedule-independent — all workers read
/// the same incumbent for the whole level, whatever order they steal
/// subsets in.
#[derive(Debug)]
pub struct IncumbentCell(AtomicU64);

impl Default for IncumbentCell {
    fn default() -> Self {
        IncumbentCell(AtomicU64::new(f64::INFINITY.to_bits()))
    }
}

impl IncumbentCell {
    /// The current incumbent completion cost (`+∞` until one is found).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Acquire))
    }

    /// Lower the incumbent to `cost` if it improves on the current one.
    /// Driver-only, at level barriers.
    pub fn observe(&self, cost: f64) {
        if cost < self.get() {
            self.0.store(cost.to_bits(), Ordering::Release);
        }
    }
}

/// Everything the engine and policies need to evaluate one prune check:
/// the size bound, the incumbent, and the query-constant floors
/// (cheapest access per table, cheapest possible join).
#[derive(Debug)]
pub struct PruneState {
    bound: Box<dyn LowerBound>,
    incumbent: IncumbentCell,
    /// Cheapest depth-1 entry cost per table (the policy's own access
    /// costs, harvested after depth 1 — no extra evaluations).
    access_floors: Vec<f64>,
    total_access_floor: f64,
    /// Cheapest conceivable join: the cheapest method on two
    /// [`MIN_PAGES`] inputs at the most favourable memory.
    join_floor_each: f64,
    n: usize,
}

impl std::fmt::Debug for dyn LowerBound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LowerBound(max_memory={})", self.max_memory())
    }
}

impl PruneState {
    /// Assemble the prune state for one search from the policy's bound
    /// and the already-built depth-1 access floors.
    pub fn new(bound: Box<dyn LowerBound>, access_floors: Vec<f64>) -> Self {
        let m_max = bound.max_memory();
        let join_floor_each = JoinMethod::ALL
            .iter()
            .map(|&m| raw_join_cost(m, MIN_PAGES, MIN_PAGES, m_max))
            .fold(f64::INFINITY, f64::min);
        let total_access_floor = access_floors.iter().sum();
        let n = access_floors.len();
        PruneState {
            bound,
            incumbent: IncumbentCell::default(),
            access_floors,
            total_access_floor,
            join_floor_each,
            n,
        }
    }

    /// The active size bound.
    pub fn bound(&self) -> &dyn LowerBound {
        &*self.bound
    }

    /// The incumbent cell.
    pub fn incumbent(&self) -> &IncumbentCell {
        &self.incumbent
    }

    /// Floor on the cost of the single join directly above a subtree of
    /// `pages` output pages: the cheapest method and orientation against
    /// a [`MIN_PAGES`]-sized partner at the most favourable memory.
    fn first_join_floor(&self, pages: f64) -> f64 {
        let m_max = self.bound.max_memory();
        JoinMethod::ALL
            .iter()
            .map(|&m| {
                raw_join_cost(m, pages, MIN_PAGES, m_max)
                    .min(raw_join_cost(m, MIN_PAGES, pages, m_max))
            })
            .fold(f64::INFINITY, f64::min)
    }

    /// Admissible floor on everything a complete plan must still pay
    /// *outside* a subtree over `set` with output-size floor `pages`:
    /// accessing every remaining table, the join directly above the
    /// subtree (at least [`Self::first_join_floor`]), and the cheapest
    /// conceivable cost for each of the other remaining joins.  A root
    /// sort only adds cost, so it floors at zero.
    pub fn completion_floor(&self, set: TableSet, pages: f64) -> f64 {
        let k = set.len();
        if k >= self.n {
            return 0.0;
        }
        let outside_access: f64 =
            self.total_access_floor - set.iter().map(|i| self.access_floors[i]).sum::<f64>();
        // A complete plan has `n - 1` joins; the subtree contains
        // `k - 1`, leaving `n - k`: one directly above the subtree, the
        // rest floored by the cheapest conceivable join.
        outside_access
            + self.first_join_floor(pages).max(self.join_floor_each)
            + (self.n - k - 1) as f64 * self.join_floor_each
    }

    /// Admissible floor on the total cost of any complete plan containing
    /// a subtree over `set`, given `set`'s output-size floor `pages`:
    /// building the subtree (every member's access plus `|set| - 1`
    /// joins) plus [`Self::completion_floor`].
    pub fn subset_floor(&self, set: TableSet, pages: f64) -> f64 {
        let k = set.len();
        let inside_access: f64 = set.iter().map(|i| self.access_floors[i]).sum();
        inside_access
            + (k.saturating_sub(1)) as f64 * self.join_floor_each
            + self.completion_floor(set, pages)
    }

    /// Whether a subset with floor `pages` should be discarded before
    /// combining: its floor strictly exceeds the incumbent.  Strict
    /// inequality preserves exact cost ties, which is what keeps pruned
    /// answers byte-identical to unpruned ones.
    pub fn prunes(&self, set: TableSet, pages: f64) -> bool {
        self.subset_floor(set, pages) > self.incumbent.get()
    }
}
