//! Admissible lower bounds for branch-and-bound pruning of the DP
//! search.
//!
//! A [`LowerBound`] gives, per connected subset `S`, floors on the sizes
//! the active policy's coster can ever feed into a join — the output of
//! `S` itself ([`LowerBound::pages_floor`]), each base table as a join
//! operand ([`LowerBound::table_floor`]), and each join edge's most
//! favourable selectivity ([`LowerBound::selectivity_floor`]).
//! [`PruneState`] turns those floors into admissible lower bounds on the
//! cost of *any complete plan containing `S` as a subtree*, and the
//! engine discards `S` before its combine/cost loop whenever a bound
//! strictly exceeds the best complete-plan cost found so far (the
//! **incumbent**).
//!
//! # Two tiers
//!
//! The engine evaluates bounds in two tiers ([`PruneState::check`]):
//!
//! * **Cheap tier** ([`PruneState::subset_floor`]): access floors, the
//!   join directly above `S` against a [`MIN_PAGES`] partner, and the
//!   universal cheapest-join constant for every other remaining join.
//!   One size product plus O(k) adds — always evaluated.
//! * **Sharp tier** ([`PruneState::sharp_subset_floor`]): evaluated only
//!   when the cheap floor lands within [`SHARP_MARGIN`] of the incumbent
//!   (so far-from-the-line subsets never pay for it).  Built from the
//!   per-edge bound table ([`EdgeBound`], precomputed once per search):
//!   for each table a completion must still join, the cheapest edge that
//!   can attach it — a minimum-spanning selection over the remaining
//!   join edges — costed from the edge operands' minimum cardinalities
//!   instead of the universal constant.
//!
//! The sharp tier is exact for left-deep completions: every table
//! outside `S` enters exactly once as the *inner* operand of exactly one
//! join, and that join costs at least the cheapest method on
//! ([`MIN_PAGES`], that table's floor) at the most favourable memory —
//! with the one join directly above `S` strengthened to use `S`'s own
//! size floor as its outer operand.  Under the bushy shape a table can
//! enter via a composite whose clamped size floor is [`MIN_PAGES`], so
//! no per-table strengthening is admissible there and
//! [`PruneState::check`] never escalates past the cheap tier.
//!
//! # Admissibility
//!
//! Admissibility rests on two monotonicity facts the cost layer pins by
//! test ([`lec_cost::formulas`]): every join formula is nondecreasing in
//! its page inputs and nonincreasing in memory.  So for any coster —
//! point, expected over a static distribution, per-phase dynamic, or
//! Algorithm D's multi-parameter expectation — the cost it assigns one
//! join is at least `raw_join_cost(method, a_floor, b_floor, m_max)`
//! where `a_floor`/`b_floor` floor the input sizes and `m_max` is the
//! largest memory value any phase can see.  Summing floors over the
//! joins and accesses a completion must still perform (a root sort only
//! adds cost) yields the bound; strict-inequality pruning then preserves
//! exact cost ties, so pruned searches return byte-identical answers.
//!
//! The per-edge size floors are admissible the same way: an edge's
//! intermediate relation is at least `table_floor(u) · table_floor(v) ·
//! selectivity_floor(u, v)` clamped to [`MIN_PAGES`], under every memory
//! bucket and either operand order — the clamped realized size only ever
//! multiplies larger factors.  The `parallel_parity` suite pins this
//! property over randomized workloads.
//!
//! # Connectivity
//!
//! A *disconnected* subset can never produce a DP entry at all: every
//! split the engine builds excludes cross products, so by induction no
//! combination over a disconnected set survives.  [`PruneState`] carries
//! the query's adjacency structure ([`PruneState::is_connected`]) and the
//! engine discards disconnected subsets structurally, before any size
//! product is computed — vacuously admissible, since there is nothing a
//! disconnected subset could have contributed.

use super::PlanShape;
use lec_cost::formulas::{raw_join_cost, MIN_PAGES};
use lec_cost::CostModel;
use lec_plan::{JoinMethod, TableSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// Escalation margin of the tiered check: the sharp tier runs only when
/// `cheap_floor * SHARP_MARGIN >= incumbent` (and an incumbent exists).
/// The sharp floor can exceed the cheap one by at most the summed
/// per-table attach floors, which in practice stays well inside one
/// order of magnitude; a factor-4 window keeps every profitable
/// escalation while small searches — whose floors sit far below their
/// incumbents — skip the sharp tier entirely.
pub const SHARP_MARGIN: f64 = 4.0;

/// A per-subset output-size floor under one policy family's size model.
///
/// Implementations must be *admissible*: no floor may exceed the
/// corresponding value the policy's coster actually feeds into any join
/// (for scalar-page policies, the entry's `pages` and the mean
/// selectivity; for Algorithm D, the minimum support of the entry's
/// size distribution and of the selectivity distribution).
pub trait LowerBound: Send + Sync {
    /// Floor on the output pages of `set`'s result, at least
    /// [`MIN_PAGES`].
    fn pages_floor(&self, model: &CostModel<'_>, set: TableSet) -> f64;

    /// The most favourable (largest) memory value any execution phase
    /// can observe under the coster's memory model.
    fn max_memory(&self) -> f64;

    /// Floor on the pages table `i` contributes as a join operand (its
    /// cheapest access path's output size under the policy's size
    /// model).
    fn table_floor(&self, model: &CostModel<'_>, i: usize) -> f64;

    /// The most favourable (smallest) selectivity value the predicates
    /// joining tables `u` and `v` can take under the policy's size
    /// model.
    fn selectivity_floor(&self, model: &CostModel<'_>, u: usize, v: usize) -> f64;
}

/// The point size product of `set`: base pages of every member times the
/// mean selectivity of every join internal to `set`, clamped to
/// [`MIN_PAGES`].
///
/// This is exactly the value the scalar-page policies chain through
/// [`CostModel::join_output_pages`], except that the chain clamps at
/// *every* intermediate step while this clamps once at the end — so the
/// product is a floor on every entry's `pages`, whatever join order
/// built it.
pub fn point_size_product(model: &CostModel<'_>, set: TableSet) -> f64 {
    let mut pages = 1.0f64;
    for i in set.iter() {
        pages *= model.base_pages(i);
    }
    for join in &model.query().joins {
        if set.contains(join.left.table) && set.contains(join.right.table) {
            pages *= join.selectivity.mean();
        }
    }
    pages.max(MIN_PAGES)
}

/// The minimum-support size product of `set`: smallest support value of
/// every member's page distribution times the smallest support value of
/// every internal join's selectivity distribution, clamped to
/// [`MIN_PAGES`].  A floor on the minimum support of any
/// [`super::multi_param::DistEntry`] size distribution for `set`:
/// Algorithm D clamps each product value at one page, and rebucketing
/// (a weighted merge of adjacent buckets) can only raise a
/// distribution's minimum.
pub fn min_support_size_product(model: &CostModel<'_>, set: TableSet) -> f64 {
    let mut pages = 1.0f64;
    for i in set.iter() {
        pages *= model.base_pages_dist(i).min_value();
    }
    for join in &model.query().joins {
        if set.contains(join.left.table) && set.contains(join.right.table) {
            pages *= join.selectivity.min_value();
        }
    }
    pages.max(MIN_PAGES)
}

/// The point-costing bound (LSC): memory is exactly `memory` in every
/// phase and sizes are the point products.
#[derive(Debug, Clone)]
pub struct PointBound {
    /// The assumed memory value.
    pub memory: f64,
}

impl LowerBound for PointBound {
    fn pages_floor(&self, model: &CostModel<'_>, set: TableSet) -> f64 {
        point_size_product(model, set)
    }
    fn max_memory(&self) -> f64 {
        self.memory
    }
    fn table_floor(&self, model: &CostModel<'_>, i: usize) -> f64 {
        model.base_pages(i)
    }
    fn selectivity_floor(&self, model: &CostModel<'_>, u: usize, v: usize) -> f64 {
        model.join_selectivity_sets(TableSet::singleton(u), TableSet::singleton(v))
    }
}

/// The expectation-costing bound (Algorithms C/C-dynamic): sizes are
/// still point products (those policies carry scalar pages), and every
/// per-memory-bucket evaluation is floored by the formula at the
/// distribution's largest support value — costs are nonincreasing in
/// memory, so `E_M[cost(M)] ≥ cost(max M)`.  For the dynamic coster
/// `max_memory` is the largest value over *all* phase distributions.
#[derive(Debug, Clone)]
pub struct ExpectationBound {
    /// Largest memory support value any phase can see.
    pub max_memory: f64,
}

impl LowerBound for ExpectationBound {
    fn pages_floor(&self, model: &CostModel<'_>, set: TableSet) -> f64 {
        point_size_product(model, set)
    }
    fn max_memory(&self) -> f64 {
        self.max_memory
    }
    fn table_floor(&self, model: &CostModel<'_>, i: usize) -> f64 {
        model.base_pages(i)
    }
    fn selectivity_floor(&self, model: &CostModel<'_>, u: usize, v: usize) -> f64 {
        model.join_selectivity_sets(TableSet::singleton(u), TableSet::singleton(v))
    }
}

/// Algorithm D's bound: sizes are floored by the minimum-support product
/// (the policy's per-node size *distributions* never dip below it) and
/// memory by its largest support value.
#[derive(Debug, Clone)]
pub struct MinSupportBound {
    /// Largest memory support value.
    pub max_memory: f64,
}

impl LowerBound for MinSupportBound {
    fn pages_floor(&self, model: &CostModel<'_>, set: TableSet) -> f64 {
        min_support_size_product(model, set)
    }
    fn max_memory(&self) -> f64 {
        self.max_memory
    }
    fn table_floor(&self, model: &CostModel<'_>, i: usize) -> f64 {
        model.base_pages_dist(i).min_bucket().0
    }
    fn selectivity_floor(&self, model: &CostModel<'_>, u: usize, v: usize) -> f64 {
        model
            .join_selectivity_dist_sets(TableSet::singleton(u), TableSet::singleton(v))
            .min_bucket()
            .0
    }
}

/// The shared incumbent cost: an `f64` in an atomic cell.
///
/// During a DP level only readers touch the cell; the driver alone
/// tightens it at level barriers (and once after depth 1), which is what
/// keeps every prune decision schedule-independent — all workers read
/// the same incumbent for the whole level, whatever order they steal
/// subsets in.
#[derive(Debug)]
pub struct IncumbentCell(AtomicU64);

impl Default for IncumbentCell {
    fn default() -> Self {
        IncumbentCell(AtomicU64::new(f64::INFINITY.to_bits()))
    }
}

impl IncumbentCell {
    /// The current incumbent completion cost (`+∞` until one is found).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Acquire))
    }

    /// Lower the incumbent to `cost` if it improves on the current one.
    /// Driver-only, at level barriers.
    pub fn observe(&self, cost: f64) {
        if cost < self.get() {
            self.0.store(cost.to_bits(), Ordering::Release);
        }
    }
}

/// One join edge's precomputed admissible floors: the edge's
/// intermediate-relation size (from the operands' minimum cardinalities
/// and the selectivity distribution's most favourable bucket) and the
/// cheapest cost of the join that attaches each endpoint as the inner
/// operand of a left-deep completion step.
#[derive(Debug, Clone, Copy)]
pub struct EdgeBound {
    /// One endpoint table.
    pub u: usize,
    /// The other endpoint table.
    pub v: usize,
    /// Floor on the pages of `u ⋈ v`: `table_floor(u) · table_floor(v) ·
    /// selectivity_floor(u, v)`, clamped to [`MIN_PAGES`].  Never above
    /// the realized intermediate size under any memory bucket or operand
    /// order (the `parallel_parity` proptests pin this).
    pub size_floor: f64,
    /// Cheapest cost of a join with `u` as the inner operand: the best
    /// method on ([`MIN_PAGES`], `table_floor(u)`) at the most
    /// favourable memory.
    pub attach_u: f64,
    /// Cheapest cost of a join with `v` as the inner operand.
    pub attach_v: f64,
}

/// The result of one tiered prune check ([`PruneState::check`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundCheck {
    /// The cheap floor alone exceeded the incumbent; sharp tier skipped.
    PrunedCheap,
    /// The cheap floor was far enough below the incumbent (outside
    /// [`SHARP_MARGIN`]) that the sharp tier was skipped; subset kept.
    KeptCheap,
    /// The sharp per-edge floor exceeded the incumbent.
    PrunedSharp,
    /// The sharp floor was evaluated but did not reach the incumbent.
    KeptSharp,
}

impl BoundCheck {
    /// Whether this check discards the subset.
    pub fn pruned(self) -> bool {
        matches!(self, BoundCheck::PrunedCheap | BoundCheck::PrunedSharp)
    }

    /// Whether the sharp tier was evaluated.
    pub fn sharp(self) -> bool {
        matches!(self, BoundCheck::PrunedSharp | BoundCheck::KeptSharp)
    }
}

/// Everything the engine and policies need to evaluate one prune check:
/// the size bound, the incumbent, the query-constant floors (cheapest
/// access per table, cheapest possible join), the adjacency structure,
/// and the per-search edge-bound table feeding the sharp tier.
#[derive(Debug)]
pub struct PruneState {
    bound: Box<dyn LowerBound>,
    incumbent: IncumbentCell,
    /// The plan shape the search runs under; the sharp tier's per-table
    /// strengthening is admissible only for left-deep completions.
    shape: PlanShape,
    /// Cheapest depth-1 entry cost per table (the policy's own access
    /// costs, harvested after depth 1 — no extra evaluations).
    access_floors: Vec<f64>,
    total_access_floor: f64,
    /// Cheapest conceivable join: the cheapest method on two
    /// [`MIN_PAGES`] inputs at the most favourable memory.
    join_floor_each: f64,
    /// Per-edge admissible floors, one entry per joined table pair.
    edges: Vec<EdgeBound>,
    /// Neighbour bitmask per table, from the query's join edges.
    adjacency: Vec<u64>,
    /// Per-table operand size floors ([`LowerBound::table_floor`]).
    table_floors: Vec<f64>,
    /// Per-table minimum-spanning attach selection: the cheapest
    /// [`EdgeBound`] attach floor over the table's incident edges
    /// (`join_floor_each` for a table with no edges).
    attach_floors: Vec<f64>,
    total_attach_floor: f64,
    /// Set once the driver's first completed-but-non-improving greedy
    /// walk retires the per-level incumbent refresh (barrier-only state,
    /// like the incumbent itself).
    refresh_retired: std::sync::atomic::AtomicBool,
    n: usize,
}

impl std::fmt::Debug for dyn LowerBound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LowerBound(max_memory={})", self.max_memory())
    }
}

impl PruneState {
    /// Assemble the prune state for one search from the policy's bound
    /// and the already-built depth-1 access floors, precomputing the
    /// per-search edge-bound table.
    pub fn new(
        model: &CostModel<'_>,
        shape: PlanShape,
        bound: Box<dyn LowerBound>,
        access_floors: Vec<f64>,
    ) -> Self {
        let m_max = bound.max_memory();
        let join_floor_each = JoinMethod::ALL
            .iter()
            .map(|&m| raw_join_cost(m, MIN_PAGES, MIN_PAGES, m_max))
            .fold(f64::INFINITY, f64::min);
        let total_access_floor = access_floors.iter().sum();
        let n = access_floors.len();
        let table_floors: Vec<f64> = (0..n).map(|i| bound.table_floor(model, i)).collect();
        let attach = |i: usize| {
            JoinMethod::ALL
                .iter()
                .map(|&m| raw_join_cost(m, MIN_PAGES, table_floors[i], m_max))
                .fold(f64::INFINITY, f64::min)
        };
        let mut adjacency = vec![0u64; n];
        let mut edges: Vec<EdgeBound> = Vec::new();
        for join in &model.query().joins {
            let (u, v) = (join.left.table, join.right.table);
            if u == v || u >= n || v >= n {
                continue;
            }
            adjacency[u] |= 1 << v;
            adjacency[v] |= 1 << u;
            let (u, v) = (u.min(v), u.max(v));
            if edges.iter().any(|e| e.u == u && e.v == v) {
                continue;
            }
            let sel = bound.selectivity_floor(model, u, v);
            edges.push(EdgeBound {
                u,
                v,
                size_floor: (table_floors[u] * table_floors[v] * sel).max(MIN_PAGES),
                attach_u: attach(u),
                attach_v: attach(v),
            });
        }
        // Minimum-spanning attach selection: for each table, the cheapest
        // incident edge's attach floor for that endpoint.
        let mut attach_floors = vec![f64::INFINITY; n];
        for e in &edges {
            attach_floors[e.u] = attach_floors[e.u].min(e.attach_u);
            attach_floors[e.v] = attach_floors[e.v].min(e.attach_v);
        }
        for f in attach_floors.iter_mut() {
            if !f.is_finite() {
                *f = join_floor_each;
            }
        }
        let total_attach_floor = attach_floors.iter().sum();
        PruneState {
            bound,
            incumbent: IncumbentCell::default(),
            shape,
            access_floors,
            total_access_floor,
            join_floor_each,
            edges,
            adjacency,
            table_floors,
            attach_floors,
            total_attach_floor,
            refresh_retired: std::sync::atomic::AtomicBool::new(false),
            n,
        }
    }

    /// Whether the driver has retired the per-level incumbent refresh
    /// (the first completed greedy walk that failed to lower the
    /// incumbent — later walks only re-walk longer prefixes of the same
    /// completions).
    pub fn refresh_retired(&self) -> bool {
        self.refresh_retired.load(Ordering::Relaxed)
    }

    /// Retire the per-level incumbent refresh for the rest of the
    /// search.  Driver-only, at level barriers.
    pub fn retire_refresh(&self) {
        self.refresh_retired.store(true, Ordering::Relaxed);
    }

    /// The active size bound.
    pub fn bound(&self) -> &dyn LowerBound {
        &*self.bound
    }

    /// The incumbent cell.
    pub fn incumbent(&self) -> &IncumbentCell {
        &self.incumbent
    }

    /// The per-search edge-bound table.
    pub fn edge_bounds(&self) -> &[EdgeBound] {
        &self.edges
    }

    /// Whether `set` is connected under the query's join edges.  A
    /// disconnected set can never produce a DP entry (every split the
    /// engine builds excludes cross products), so the engine discards
    /// such sets structurally before any size product is computed.
    pub fn is_connected(&self, set: TableSet) -> bool {
        let bits = set.bits();
        if bits == 0 {
            return false;
        }
        let mut reached = bits & bits.wrapping_neg();
        loop {
            let mut next = reached;
            let mut cur = reached;
            while cur != 0 {
                let t = cur.trailing_zeros() as usize;
                cur &= cur - 1;
                next |= self.adjacency[t] & bits;
            }
            if next == reached {
                return reached == bits;
            }
            reached = next;
        }
    }

    /// Floor on the cost of the single join directly above a subtree of
    /// `pages` output pages: the cheapest method and orientation against
    /// a [`MIN_PAGES`]-sized partner at the most favourable memory.
    fn first_join_floor(&self, pages: f64) -> f64 {
        let m_max = self.bound.max_memory();
        JoinMethod::ALL
            .iter()
            .map(|&m| {
                raw_join_cost(m, pages, MIN_PAGES, m_max)
                    .min(raw_join_cost(m, MIN_PAGES, pages, m_max))
            })
            .fold(f64::INFINITY, f64::min)
    }

    /// Admissible floor on everything a complete plan must still pay
    /// *outside* a subtree over `set` with output-size floor `pages`:
    /// accessing every remaining table, the join directly above the
    /// subtree (at least [`Self::first_join_floor`]), and the cheapest
    /// conceivable cost for each of the other remaining joins.  A root
    /// sort only adds cost, so it floors at zero.
    pub fn completion_floor(&self, set: TableSet, pages: f64) -> f64 {
        let k = set.len();
        if k >= self.n {
            return 0.0;
        }
        let outside_access: f64 =
            self.total_access_floor - set.iter().map(|i| self.access_floors[i]).sum::<f64>();
        // A complete plan has `n - 1` joins; the subtree contains
        // `k - 1`, leaving `n - k`: one directly above the subtree, the
        // rest floored by the cheapest conceivable join.
        outside_access
            + self.first_join_floor(pages).max(self.join_floor_each)
            + (self.n - k - 1) as f64 * self.join_floor_each
    }

    /// Admissible floor on the total cost of any complete plan containing
    /// a subtree over `set`, given `set`'s output-size floor `pages`:
    /// building the subtree (every member's access plus `|set| - 1`
    /// joins) plus [`Self::completion_floor`].  This is the cheap tier.
    pub fn subset_floor(&self, set: TableSet, pages: f64) -> f64 {
        let k = set.len();
        let inside_access: f64 = set.iter().map(|i| self.access_floors[i]).sum();
        inside_access
            + (k.saturating_sub(1)) as f64 * self.join_floor_each
            + self.completion_floor(set, pages)
    }

    /// The sharp tier: the cheap floor with the universal per-join
    /// constant replaced, for every table a left-deep completion must
    /// still join, by that table's minimum-spanning attach floor from
    /// the edge-bound table — and the attach of the one table joined
    /// directly above `S` strengthened to use `S`'s own size floor as
    /// its outer operand.
    ///
    /// Exactness for left-deep: every table outside `S` enters exactly
    /// once as the inner operand of exactly one completion join, whose
    /// cost is at least the cheapest method on ([`MIN_PAGES`], the
    /// table's floor); the first such join's outer operand is `S`'s
    /// result, whose pages are at least `pages`.  Under the bushy shape
    /// this strengthening is *not* admissible (a table can enter via a
    /// composite clamped to [`MIN_PAGES`]), so the sharp floor falls
    /// back to the cheap one.
    pub fn sharp_subset_floor(&self, set: TableSet, pages: f64) -> f64 {
        let cheap = self.subset_floor(set, pages);
        let k = set.len();
        if self.shape != PlanShape::LeftDeep || k >= self.n {
            return cheap;
        }
        let mut inside_access = 0.0;
        let mut inside_attach = 0.0;
        let mut inside_adj = 0u64;
        for i in set.iter() {
            inside_access += self.access_floors[i];
            inside_attach += self.attach_floors[i];
            inside_adj |= self.adjacency[i];
        }
        let outside_access = self.total_access_floor - inside_access;
        let outside_attach = self.total_attach_floor - inside_attach;
        // The first completion join's inner is some table adjacent to
        // `S`; strengthen its attach with `S`'s size floor as the outer
        // operand, minimized over the candidates.
        let m_max = self.bound.max_memory();
        let mut first_delta = f64::INFINITY;
        let mut frontier = inside_adj & !set.bits();
        while frontier != 0 {
            let t = frontier.trailing_zeros() as usize;
            frontier &= frontier - 1;
            let with_pages = JoinMethod::ALL
                .iter()
                .map(|&m| raw_join_cost(m, pages, self.table_floors[t], m_max))
                .fold(f64::INFINITY, f64::min);
            first_delta = first_delta.min((with_pages - self.attach_floors[t]).max(0.0));
        }
        if !first_delta.is_finite() {
            first_delta = 0.0;
        }
        let sharp = inside_access
            + (k.saturating_sub(1)) as f64 * self.join_floor_each
            + outside_access
            + outside_attach
            + first_delta;
        sharp.max(cheap)
    }

    /// Whether a subset with floor `pages` should be discarded before
    /// combining: its floor strictly exceeds the incumbent.  Strict
    /// inequality preserves exact cost ties, which is what keeps pruned
    /// answers byte-identical to unpruned ones.  Cheap tier only; the
    /// engine's tiered entry point is [`Self::check`].
    pub fn prunes(&self, set: TableSet, pages: f64) -> bool {
        self.subset_floor(set, pages) > self.incumbent.get()
    }

    /// The tiered prune check: the cheap floor always, the sharp
    /// per-edge floor only when the cheap one lands within
    /// [`SHARP_MARGIN`] of the incumbent.  The decision depends only on
    /// (`set`, `pages`, the level's incumbent, the shape), so the
    /// tier counters are schedule- and memo-independent.
    pub fn check(&self, set: TableSet, pages: f64) -> BoundCheck {
        let incumbent = self.incumbent.get();
        let cheap = self.subset_floor(set, pages);
        if cheap > incumbent {
            return BoundCheck::PrunedCheap;
        }
        if self.shape != PlanShape::LeftDeep
            || !incumbent.is_finite()
            || cheap * SHARP_MARGIN < incumbent
        {
            return BoundCheck::KeptCheap;
        }
        if self.sharp_subset_floor(set, pages) > incumbent {
            BoundCheck::PrunedSharp
        } else {
            BoundCheck::KeptSharp
        }
    }
}
