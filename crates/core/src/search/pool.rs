//! Where the parallel driver's worker threads come from.
//!
//! The level-barrier engine ([`super::engine::run_search_with`]) needs a
//! set of threads that run one search's worker loop concurrently with the
//! driver.  PR 2 always *spawned* that set per search, which costs tens of
//! microseconds — acceptable for millisecond searches, fatal for the
//! sub-100µs queries a serving layer answers all day.  This module makes
//! the thread source pluggable:
//!
//! * [`ScopedSpawnPool`] — the PR 2 behaviour: spawn scoped threads for
//!   one search, join them at the end.  Zero standing cost, ~50µs per
//!   search.  The default when [`super::SearchConfig::pool`] is `None`.
//! * [`PersistentPool`] — long-lived parked threads shared across
//!   searches.  Dispatch is a mutex store plus a condvar wake (a few µs),
//!   so the fan-out win extends to small queries and the fan-out gate can
//!   sit much lower ([`PERSISTENT_FANOUT_THRESHOLD`]).
//!
//! The engine's determinism story is unchanged by the pool choice: worker
//! *identity* never influences results (subsets are merged in worker-index
//! order at every level barrier), so any `WorkerPool` implementation
//! yields byte-identical outcomes — pinned by `tests/parallel_parity.rs`
//! for both implementations.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// Default [`super::SearchConfig::fanout_threshold`] for searches backed
/// by a [`PersistentPool`]: waking a parked thread costs a few
/// microseconds instead of a ~50µs spawn, so fanning out pays off at
/// roughly a quarter of the spawn pool's level width
/// ([`super::engine::DEFAULT_FANOUT_THRESHOLD`]).
pub const PERSISTENT_FANOUT_THRESHOLD: usize = 8;

/// A source of worker threads for the parallel DP driver.
///
/// `scope` must run `worker(i)` once for every `i in 0..workers`
/// concurrently with `driver()` on the calling thread, and must not return
/// until the driver *and* every started worker have finished.
/// Implementations must contain worker panics (the engine reports them
/// through its own flags and expects the pool to survive), and must still
/// wait for the workers before propagating a driver panic — the worker
/// closures borrow driver-side state that dies with the scope.
pub trait WorkerPool: std::fmt::Debug + Send + Sync {
    /// Run `worker(0)..worker(workers-1)` concurrently with `driver()`;
    /// return once all of them have completed.
    fn scope(&self, workers: usize, worker: &(dyn Fn(usize) + Sync), driver: &mut dyn FnMut());

    /// Upper bound on the workers one [`WorkerPool::scope`] call can
    /// actually start; the engine clamps its fan-out width to this.
    fn max_workers(&self) -> usize;
}

/// The per-search pool: scoped threads spawned on entry and joined on
/// exit.  Stateless, so one static instance serves every search.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScopedSpawnPool;

impl WorkerPool for ScopedSpawnPool {
    fn scope(&self, workers: usize, worker: &(dyn Fn(usize) + Sync), driver: &mut dyn FnMut()) {
        std::thread::scope(|scope| {
            for w in 0..workers {
                // Contain worker panics: the engine has already recorded
                // them via its ack guards, and a panicking scoped thread
                // would otherwise re-panic the scope on join.
                scope.spawn(move || {
                    let _ = catch_unwind(AssertUnwindSafe(|| worker(w)));
                });
            }
            // The driver runs on the calling thread; if it unwinds, the
            // scope still joins the workers (the engine's stop guard has
            // released them by then).
            driver();
        });
    }

    fn max_workers(&self) -> usize {
        usize::MAX
    }
}

/// One dispatched job: the engine's worker closure with its scope lifetime
/// erased.  Sound because [`PersistentPool::scope`] does not return until
/// every participating thread has finished running it, so the borrow it
/// came from is still live whenever a pool thread dereferences it.
type ErasedWorker = &'static (dyn Fn(usize) + Sync);

/// State shared between [`PersistentPool::scope`] and the pool threads.
#[derive(Default)]
struct PoolState {
    /// Monotonic job sequence number; bumped once per `scope` call.
    seq: u64,
    /// Number of pool threads participating in the current job.
    workers: usize,
    /// The current job, if any.
    job: Option<ErasedWorker>,
    /// Participants that have finished the current job.
    done: usize,
    /// Tells the threads to exit (set on drop).
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Wakes pool threads when a job is published or shutdown is set.
    work: Condvar,
    /// Wakes `scope` when the last participant finishes.
    idle: Condvar,
}

/// A persistent, cross-search worker pool: `threads` long-lived OS threads
/// that park between searches and are borrowed by the engine instead of
/// spawning a fresh scoped pool per search.
///
/// One pool serves one search at a time (concurrent `scope` calls
/// serialize on an internal lock); share it across sequential searches —
/// the [`crate::Optimizer`] facade and `lec-service`'s `PlanServer` do
/// exactly that.  Worker panics are contained per job: the pool threads
/// survive a panicking search and serve the next one.
///
/// The pool can be drained explicitly with [`PersistentPool::shutdown`]
/// (long-lived daemons do this on graceful exit so no parked thread
/// outlives the serving state); dropping the pool shuts it down too.
pub struct PersistentPool {
    shared: Arc<PoolShared>,
    /// Serializes `scope` calls: the job slot holds one job at a time.
    /// `shutdown` takes the same lock, so a drain waits for the in-flight
    /// search instead of yanking its workers mid-barrier.
    scope_lock: Mutex<()>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Thread count at construction; stable across shutdown so the
    /// engine's fan-out clamp ([`WorkerPool::max_workers`]) never races
    /// the drain.
    n_threads: usize,
}

impl std::fmt::Debug for PersistentPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PersistentPool")
            .field("threads", &self.n_threads)
            .finish()
    }
}

impl PersistentPool {
    /// Spawn a pool of `threads` parked worker threads.  `threads` is the
    /// number of *workers*; the search driver itself runs on the calling
    /// thread, so a pool of `t` workers supports `SearchConfig::threads`
    /// up to `t + 1`.
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState::default()),
            work: Condvar::new(),
            idle: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("lec-pool-{i}"))
                    .spawn(move || pool_thread(&shared, i))
                    .expect("spawn persistent pool thread")
            })
            .collect();
        PersistentPool {
            shared,
            scope_lock: Mutex::new(()),
            handles: Mutex::new(handles),
            n_threads: threads,
        }
    }

    /// A pool sized to the machine: `available_parallelism - 1` workers
    /// (the driver occupies the remaining core).
    pub fn for_host() -> Self {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        PersistentPool::new(threads.saturating_sub(1))
    }

    /// Number of worker threads the pool was built with (unchanged by
    /// [`PersistentPool::shutdown`]).
    pub fn threads(&self) -> usize {
        self.n_threads
    }

    /// Drain the pool: park no new jobs, wake every parked thread, and
    /// join them all.  Safe to call from any thread, any number of times
    /// (a second drain joins an empty handle list), and safe to race with
    /// an in-flight search — `shutdown` serializes on the same lock as
    /// [`WorkerPool::scope`], so a leader mid-fan-out keeps its workers
    /// until its own level barrier completes, and only then do the
    /// threads exit.  A search dispatched *after* shutdown still honors
    /// the `WorkerPool` contract by falling back to a one-shot scoped
    /// spawn (see [`WorkerPool::scope`] for why running fewer workers
    /// than requested is not an option: the engine's ack barrier counts
    /// them).  Dropping the pool calls this.
    pub fn shutdown(&self) {
        let _scope = self.scope_lock.lock().unwrap_or_else(|p| p.into_inner());
        {
            let mut state = self.lock_state();
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        let handles: Vec<_> = {
            let mut handles = self.handles.lock().unwrap_or_else(|p| p.into_inner());
            handles.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// True once [`PersistentPool::shutdown`] has run (or begun): parked
    /// threads are gone and new searches fall back to scoped spawning.
    pub fn is_shut_down(&self) -> bool {
        self.lock_state().shutdown
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, PoolState> {
        self.shared.state.lock().unwrap_or_else(|p| p.into_inner())
    }
}

fn pool_thread(shared: &PoolShared, index: usize) {
    let mut last_seq = 0u64;
    loop {
        let job = {
            let mut state = shared.state.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if state.shutdown {
                    return;
                }
                if state.seq != last_seq {
                    last_seq = state.seq;
                    if index < state.workers {
                        break state.job.expect("published job is present");
                    }
                    // Not a participant of this job; keep waiting.
                }
                state = shared.work.wait(state).unwrap_or_else(|p| p.into_inner());
            }
        };
        // Run outside the lock.  Panics are contained: the engine records
        // them through its own ack guards, and this thread must survive to
        // serve the next search.
        let _ = catch_unwind(AssertUnwindSafe(|| job(index)));
        let mut state = shared.state.lock().unwrap_or_else(|p| p.into_inner());
        state.done += 1;
        if state.done == state.workers {
            shared.idle.notify_all();
        }
    }
}

impl WorkerPool for PersistentPool {
    fn scope(&self, workers: usize, worker: &(dyn Fn(usize) + Sync), driver: &mut dyn FnMut()) {
        let n = workers.min(self.n_threads);
        if n == 0 {
            driver();
            return;
        }
        let _scope = self.scope_lock.lock().unwrap_or_else(|p| p.into_inner());
        if self.lock_state().shutdown {
            // Drained pool: the parked threads are gone, but the engine's
            // level barrier waits for exactly `workers` acks — silently
            // running fewer would deadlock it.  Honor the contract with a
            // one-shot scoped spawn instead (the pre-persistent-pool
            // behaviour: slower, never wrong).
            ScopedSpawnPool.scope(n, worker, driver);
            return;
        }
        {
            let mut state = self.lock_state();
            // SAFETY: the erased reference is only dereferenced by pool
            // threads between this publish and the wait below, and this
            // function does not return (or resume a driver unwind) until
            // all `n` participants have reported done — so the `'scope`
            // borrow behind the transmute outlives every use.
            let job: ErasedWorker =
                unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), ErasedWorker>(worker) };
            state.job = Some(job);
            state.workers = n;
            state.done = 0;
            state.seq += 1;
        }
        self.shared.work.notify_all();
        let driver_result = catch_unwind(AssertUnwindSafe(driver));
        {
            let mut state = self.lock_state();
            while state.done < n {
                state = self
                    .shared
                    .idle
                    .wait(state)
                    .unwrap_or_else(|p| p.into_inner());
            }
            state.job = None;
        }
        if let Err(panic) = driver_result {
            resume_unwind(panic);
        }
    }

    fn max_workers(&self) -> usize {
        self.n_threads
    }
}

impl Drop for PersistentPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn count_scope(pool: &dyn WorkerPool, workers: usize) -> (usize, usize) {
        let worker_runs = AtomicUsize::new(0);
        let driver_runs = AtomicUsize::new(0);
        pool.scope(
            workers,
            &|_w| {
                worker_runs.fetch_add(1, Ordering::SeqCst);
            },
            &mut || {
                driver_runs.fetch_add(1, Ordering::SeqCst);
            },
        );
        (
            worker_runs.load(Ordering::SeqCst),
            driver_runs.load(Ordering::SeqCst),
        )
    }

    #[test]
    fn spawn_pool_runs_every_worker_and_the_driver() {
        assert_eq!(count_scope(&ScopedSpawnPool, 4), (4, 1));
        assert_eq!(count_scope(&ScopedSpawnPool, 0), (0, 1));
    }

    #[test]
    fn persistent_pool_runs_jobs_across_many_scopes() {
        let pool = PersistentPool::new(3);
        assert_eq!(pool.threads(), 3);
        for _ in 0..50 {
            assert_eq!(count_scope(&pool, 3), (3, 1));
        }
        // Requests beyond capacity clamp to the pool size.
        assert_eq!(count_scope(&pool, 16), (3, 1));
        assert_eq!(count_scope(&pool, 0), (0, 1));
    }

    #[test]
    fn persistent_pool_survives_worker_panics() {
        let pool = PersistentPool::new(2);
        let before = AtomicUsize::new(0);
        pool.scope(
            2,
            &|w| {
                before.fetch_add(1, Ordering::SeqCst);
                if w == 0 {
                    panic!("worker blew up");
                }
            },
            &mut || {},
        );
        assert_eq!(before.load(Ordering::SeqCst), 2);
        // The pool threads survived and still serve jobs.
        assert_eq!(count_scope(&pool, 2), (2, 1));
    }

    #[test]
    fn persistent_pool_shutdown_is_idempotent() {
        let pool = PersistentPool::new(3);
        assert!(!pool.is_shut_down());
        pool.shutdown();
        assert!(pool.is_shut_down());
        // Double-drain: the second call joins an empty handle list and
        // returns immediately instead of deadlocking.
        pool.shutdown();
        assert!(pool.is_shut_down());
        // Drop after explicit shutdown is the third drain — also a no-op.
    }

    #[test]
    fn persistent_pool_scope_after_shutdown_still_honors_the_contract() {
        let pool = PersistentPool::new(2);
        pool.shutdown();
        // The parked threads are gone, but the engine's ack barrier counts
        // one ack per requested worker — the fallback scoped spawn must
        // still run all of them.
        assert_eq!(count_scope(&pool, 2), (2, 1));
        assert_eq!(pool.max_workers(), 2, "clamp is stable across drain");
        assert_eq!(count_scope(&pool, 0), (0, 1));
    }

    #[test]
    fn persistent_pool_shutdown_waits_for_inflight_scope() {
        use std::sync::Barrier;
        let pool = Arc::new(PersistentPool::new(2));
        let entered = Arc::new(Barrier::new(3));
        let finished = Arc::new(AtomicUsize::new(0));
        let drainer = {
            let pool = Arc::clone(&pool);
            let entered = Arc::clone(&entered);
            std::thread::spawn(move || {
                entered.wait();
                // The leader is mid-fan-out with sleeping workers; drain
                // must block on the scope lock until its barrier completes
                // rather than yanking the threads out from under it.
                pool.shutdown();
            })
        };
        pool.scope(
            2,
            &|_w| {
                entered.wait();
                std::thread::sleep(std::time::Duration::from_millis(20));
                finished.fetch_add(1, Ordering::SeqCst);
            },
            &mut || {},
        );
        drainer.join().unwrap();
        assert_eq!(
            finished.load(Ordering::SeqCst),
            2,
            "both workers ran to completion before the drain took effect"
        );
        assert!(pool.is_shut_down());
        // And the drained pool still serves (via the scoped fallback).
        assert_eq!(count_scope(&*pool, 2), (2, 1));
    }

    #[test]
    fn persistent_pool_shutdown_after_worker_panic_does_not_leak_threads() {
        let pool = PersistentPool::new(2);
        pool.scope(
            2,
            &|w| {
                if w == 1 {
                    panic!("worker blew up mid-drain test");
                }
            },
            &mut || {},
        );
        // The panicking job is fully retired; shutdown joins cleanly.
        pool.shutdown();
        assert!(pool.is_shut_down());
    }

    #[test]
    fn persistent_pool_waits_for_workers_before_driver_panic_propagates() {
        let pool = PersistentPool::new(2);
        let finished = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(
                2,
                &|_w| {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    finished.fetch_add(1, Ordering::SeqCst);
                },
                &mut || panic!("driver blew up"),
            );
        }));
        assert!(result.is_err(), "driver panic must propagate");
        assert_eq!(
            finished.load(Ordering::SeqCst),
            2,
            "scope must wait for the workers before unwinding"
        );
        assert_eq!(count_scope(&pool, 2), (2, 1));
    }
}
