//! The keep-all policy: the exhaustive ground-truth verifier.
//!
//! Unpruned, it enumerates (and holds) every plan of the active shape
//! exactly once — `O(n! · 4^(n-1) · 2^n)` for left-deep trees, larger
//! for bushy ones — so callers cap `n` (see
//! [`crate::exhaustive::MAX_EXHAUSTIVE_TABLES`]).
//!
//! With [`super::SearchConfig::pruning`] on, the policy becomes a
//! **streaming branch-and-bound verifier**: every candidate is still
//! *costed* in enumeration order, but an entry is discarded on emission
//! when its accumulated cost plus an admissible floor on everything a
//! completion must still pay ([`PruneState::completion_floor`]) strictly
//! exceeds the incumbent.  Discarded entries can only lead to complete
//! plans strictly worse than a plan already in hand, so the verifier's
//! answer — the optimal plan, at exact cost bits — is byte-identical to
//! the unpruned enumeration wherever both run, while the materialized
//! state stays a sliver of the plan space.  This is what lifts the
//! verifier's 7-table materialization cap.

use super::bound::PruneState;
use super::coster::PhaseCoster;
use super::keep_best::DpEntry;
use super::policy::{
    access_alternatives, join_output_order, CandidatePolicy, JoinContext, RootContext,
};
use super::SearchStats;
use lec_cost::CostModel;
use lec_plan::{JoinMethod, PlanNode, TableSet};
use std::sync::Arc;

/// The keep-everything policy over any [`PhaseCoster`].
#[derive(Debug, Clone)]
pub struct KeepAllPolicy<C> {
    /// The operator-costing strategy.
    pub coster: C,
    /// The search's shared prune state, when pruning is on.
    prune: Option<Arc<PruneState>>,
    /// Complete plans costed at the root (before any discard), summed
    /// across forks by [`CandidatePolicy::merge`].
    plans_emitted: u64,
}

impl<C: PhaseCoster> KeepAllPolicy<C> {
    /// A policy costing operators with `coster`.
    pub fn new(coster: C) -> Self {
        KeepAllPolicy {
            coster,
            prune: None,
            plans_emitted: 0,
        }
    }

    /// Complete plans costed so far (root candidates created, whether or
    /// not the streaming discard dropped them afterwards).
    pub fn plans_emitted(&self) -> u64 {
        self.plans_emitted
    }
}

impl<C: PhaseCoster + Clone> CandidatePolicy for KeepAllPolicy<C> {
    type Entry = DpEntry;

    fn fork(&self) -> Self {
        KeepAllPolicy {
            plans_emitted: 0,
            ..self.clone()
        }
    }

    fn merge(&mut self, forked: Self) {
        self.plans_emitted += forked.plans_emitted;
    }

    fn access_entries(
        &mut self,
        model: &CostModel<'_>,
        idx: usize,
        _stats: &mut SearchStats,
    ) -> Vec<DpEntry> {
        access_alternatives(model, idx)
            .into_iter()
            .map(|(plan, cost, order, pages)| DpEntry {
                plan,
                cost,
                pages,
                order,
            })
            .collect()
    }

    fn combine(
        &mut self,
        model: &CostModel<'_>,
        ctx: &JoinContext,
        outer: &[DpEntry],
        inner: &[DpEntry],
        into: &mut Vec<DpEntry>,
        stats: &mut SearchStats,
    ) {
        let sel = model.join_selectivity_sets(ctx.left, ctx.right);
        let is_root = ctx.result == TableSet::full(model.query().n_tables());
        // The completion floor depends only on the result subset (its
        // size product), never on which entries built it: one bound
        // evaluation covers every candidate this call emits.
        let discard_above = match &self.prune {
            Some(ps) if !is_root => {
                stats.bound_evals += 1;
                let pages = ps.bound().pages_floor(model, ctx.result);
                Some(ps.incumbent().get() - ps.completion_floor(ctx.result, pages))
            }
            Some(ps) => Some(ps.incumbent().get()),
            None => None,
        };
        for oe in outer {
            for ie in inner {
                for method in JoinMethod::ALL {
                    stats.candidates += 1;
                    let join_cost = self
                        .coster
                        .join_cost(model, ctx, method, oe.pages, ie.pages);
                    let cost = oe.cost + ie.cost + join_cost;
                    if is_root {
                        self.plans_emitted += 1;
                    }
                    // Strict inequality: exact ties with the incumbent
                    // survive, so the first-minimal root pick matches the
                    // unpruned enumeration bit for bit.
                    if let Some(limit) = discard_above {
                        if cost > limit {
                            continue;
                        }
                    }
                    into.push(DpEntry {
                        plan: PlanNode::join(method, oe.plan.clone(), ie.plan.clone()),
                        cost,
                        pages: model.join_output_pages(oe.pages, ie.pages, sel),
                        order: join_output_order(model, ctx.left, oe.order, ctx.right, method),
                    });
                }
            }
        }
    }

    fn finalize(
        &mut self,
        model: &CostModel<'_>,
        ctx: &RootContext,
        entries: Vec<DpEntry>,
        _stats: &mut SearchStats,
    ) -> Vec<DpEntry> {
        super::keep_best::finalize_with_coster(model, ctx, entries, &self.coster)
    }

    fn pruning_bound(&self, _model: &CostModel<'_>) -> Option<Box<dyn super::bound::LowerBound>> {
        self.coster.pruning_bound()
    }

    fn install_pruning(&mut self, prune: &Arc<PruneState>) {
        self.prune = Some(Arc::clone(prune));
    }
}
