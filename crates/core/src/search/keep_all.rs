//! The keep-all policy: no pruning whatsoever.  Run through the engine it
//! enumerates every plan of the active shape exactly once, which makes it
//! the ground truth the optimality theorems are verified against.
//!
//! Note the space is `O(n! · 4^(n-1) · 2^n)` for left-deep trees and
//! larger for bushy ones; callers cap `n` (see
//! [`crate::exhaustive::MAX_EXHAUSTIVE_TABLES`]).

use super::coster::PhaseCoster;
use super::keep_best::DpEntry;
use super::policy::{
    access_alternatives, join_output_order, CandidatePolicy, JoinContext, RootContext,
};
use super::SearchStats;
use lec_cost::CostModel;
use lec_plan::{JoinMethod, PlanNode};

/// The keep-everything policy over any [`PhaseCoster`].
#[derive(Debug, Clone)]
pub struct KeepAllPolicy<C> {
    /// The operator-costing strategy.
    pub coster: C,
}

impl<C: PhaseCoster> KeepAllPolicy<C> {
    /// A policy costing operators with `coster`.
    pub fn new(coster: C) -> Self {
        KeepAllPolicy { coster }
    }
}

impl<C: PhaseCoster + Clone> CandidatePolicy for KeepAllPolicy<C> {
    type Entry = DpEntry;

    fn fork(&self) -> Self {
        self.clone()
    }

    fn merge(&mut self, _forked: Self) {
        // Stateless beyond the (immutable) coster: nothing to fold back.
    }

    fn access_entries(
        &mut self,
        model: &CostModel<'_>,
        idx: usize,
        _stats: &mut SearchStats,
    ) -> Vec<DpEntry> {
        access_alternatives(model, idx)
            .into_iter()
            .map(|(plan, cost, order, pages)| DpEntry {
                plan,
                cost,
                pages,
                order,
            })
            .collect()
    }

    fn combine(
        &mut self,
        model: &CostModel<'_>,
        ctx: &JoinContext,
        outer: &[DpEntry],
        inner: &[DpEntry],
        into: &mut Vec<DpEntry>,
        stats: &mut SearchStats,
    ) {
        let sel = model.join_selectivity_sets(ctx.left, ctx.right);
        for oe in outer {
            for ie in inner {
                for method in JoinMethod::ALL {
                    stats.candidates += 1;
                    let join_cost = self
                        .coster
                        .join_cost(model, ctx, method, oe.pages, ie.pages);
                    into.push(DpEntry {
                        plan: PlanNode::join(method, oe.plan.clone(), ie.plan.clone()),
                        cost: oe.cost + ie.cost + join_cost,
                        pages: model.join_output_pages(oe.pages, ie.pages, sel),
                        order: join_output_order(model, ctx.left, oe.order, ctx.right, method),
                    });
                }
            }
        }
    }

    fn finalize(
        &mut self,
        model: &CostModel<'_>,
        ctx: &RootContext,
        entries: Vec<DpEntry>,
        _stats: &mut SearchStats,
    ) -> Vec<DpEntry> {
        super::keep_best::finalize_with_coster(model, ctx, entries, &self.coster)
    }
}
