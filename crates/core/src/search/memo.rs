//! The cross-search subplan memo: DP-node results keyed by canonical
//! connected-subquery shape.
//!
//! PR 3's serving cache reuses work at whole-request granularity; this
//! module reuses it at *dag node* granularity.  Every memo-eligible DP
//! node (a connected subset — singleton access-path nodes included —
//! under a keep-best or multi-param policy) is
//! keyed by the [`lec_canon::SubplanForm`] of its induced subquery plus an
//! environment fingerprint (policy/coster parameters and plan shape).  A
//! hit hands back the node's complete candidate list — relabeled into the
//! current query's table numbering — together with a recorded
//! [`lec_cost::CostProbe`] log whose replay keeps the evaluation-cache
//! counters byte-identical to a memo-off search
//! ([`lec_cost::CostModel::replay_probes`]); the node's entire
//! combine/cost loop is skipped.  A miss runs the combine live (with
//! probe recording on) and populates the memo.
//!
//! Because the memo is shared across searches (one [`SubplanMemo`] lives
//! in `lec-service`'s `PlanServer` and is injected into every search via
//! [`super::SearchConfig::memo`]), different-shaped queries that merely
//! *overlap* — a 6-table chain sharing a 4-table subchain with an
//! 8-table chain, a weak-hit revalidation repeating yesterday's subtrees
//! — turn into partial hits instead of full DPs.  Within one search it
//! also deduplicates repeated subquery shapes across the dag.
//!
//! The memo never changes results, only work: eligibility mirrors the
//! serving cache's `Uncacheable` rules (top-c and randomized modes
//! bypass; so does any subset containing twin tables — equal exact
//! occurrence fingerprints — since a twin pair symmetric inside *some*
//! smaller subset would smuggle a label-dependent tie-break into the
//! record), and the byte-identity of memo-on to memo-off searches
//! — plans, cost bits, `evals`, `cache_hits`, `candidates`, `nodes` — is
//! property-tested in `tests/parallel_parity.rs` and enforced by the
//! `subplan_memo` bench guard.

use lec_cost::CostProbe;
use lec_plan::PlanNode;
use lec_prob::Distribution;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Default cap on memoized DP nodes ([`SubplanMemo::with_capacity`]).
/// Records are small (a handful of entries and probes each); 16k of them
/// cover thousands of distinct subquery shapes before the per-shard LRU
/// starts evicting cold ones.
pub const DEFAULT_MEMO_CAPACITY: usize = 16 * 1024;

/// Lock shards.  Same reasoning as the eval cache: enough that a few
/// worker threads rarely collide, few enough to stay trivial.
const MEMO_SHARDS: usize = 32;

/// An entry's order property in canonical space: orders are equivalence
/// *classes* of columns (possibly equated through joins outside the
/// subquery), so a memoized entry stores the class id under the
/// subquery's canonical class numbering and the decoder rebinds it to the
/// current query's representative ([`lec_canon::SubplanForm::class_rep`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoOrder {
    /// No useful ordering.
    None,
    /// Sorted on the order class with this canonical id.
    Class(u32),
}

/// One keep-best entry in canonical label space.
#[derive(Debug, Clone)]
pub struct MemoDpEntry {
    /// The plan, canonically labeled.
    pub plan: PlanNode,
    /// Cost under the recording policy's objective.
    pub cost: f64,
    /// Point-estimated output pages.
    pub pages: f64,
    /// Canonical order class.
    pub order: MemoOrder,
}

/// One multi-param entry in canonical label space.
#[derive(Debug, Clone)]
pub struct MemoDistEntry {
    /// The plan, canonically labeled.
    pub plan: PlanNode,
    /// Expected cost.
    pub cost: f64,
    /// Output-size distribution (label-free).
    pub pages: Distribution,
    /// Canonical order class.
    pub order: MemoOrder,
}

/// A memoized node's candidate list, tagged by the policy family that
/// produced it (a decode by the wrong family is treated as a miss).
#[derive(Debug, Clone)]
pub enum MemoEntries {
    /// Keep-best family ([`super::KeepBestPolicy`], any coster).
    Dp(Vec<MemoDpEntry>),
    /// Multi-param family ([`super::MultiParamPolicy`]).
    Dist {
        /// The candidate list.
        entries: Vec<MemoDistEntry>,
        /// This node's largest pre-rebucketing product support — folded
        /// back into the policy's diagnostic high-water mark on a hit so
        /// `SearchExtras::MultiParam` stays identical to a memo-off run.
        node_support: usize,
    },
}

/// Everything a memo hit needs to reproduce a node byte-identically: the
/// canonical candidate list, the node's candidate-counter delta, and the
/// probe log whose replay reproduces the combine's evaluation-cache
/// effects.
#[derive(Debug)]
pub struct MemoRecord {
    /// The node's candidates, canonically labeled.
    pub entries: MemoEntries,
    /// `SearchStats::candidates` generated by the node's combine.
    pub candidates: u64,
    /// The combine's candidate-level cache probes, in canonical table-set
    /// bits.
    pub probes: Vec<CostProbe>,
    /// Formula evaluations the node performed *outside* the memoized
    /// `*_for` path — today that is exactly the access-path costing of a
    /// singleton (depth-1) node, which never touches the evaluation
    /// cache.  A hit charges them back through
    /// [`lec_cost::CostModel::charge_evals`] so `SearchStats::evals`
    /// stays byte-identical to a memo-off run; composite (join) nodes
    /// record `0` because all of their evaluations flow through the
    /// probe log.
    pub unprobed_evals: u64,
    /// The node's [`super::LowerBound::pages_floor`] as computed by the
    /// recording (pruned) search, so a memo hit skips the bound recompute.
    /// The floor is label-independent (a product over the subquery's base
    /// sizes and internal selectivities) and the environment key already
    /// separates policy families, so a stored floor is always the value a
    /// recompute would produce.  `None` when the recording search ran
    /// without pruning; a pruned hit on such a record recomputes.
    pub bound_pages: Option<f64>,
}

/// Lifetime counters of one memo, exposed through
/// `PlanServer::metrics_json` and [`SubplanMemo::stats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct MemoStats {
    /// Nodes served from the memo (combine skipped).
    pub hits: u64,
    /// Eligible nodes computed live (and inserted).
    pub misses: u64,
    /// Records evicted by the per-shard LRU policy.
    pub evictions: u64,
    /// Records currently stored.
    pub records: usize,
    /// Maximum records retained.
    pub capacity: usize,
}

/// One stored record plus its LRU clock value.
#[derive(Debug)]
struct MemoSlot {
    record: Arc<MemoRecord>,
    last_used: u64,
}

/// Shard maps share the eval cache's FxHash — multi-word keys are probed
/// on the engine's per-node path, where SipHash under the shard lock
/// would be the slowest thing in the critical section.
type ShardMap = HashMap<Box<[u64]>, MemoSlot, lec_cost::FxBuildHasher>;

/// One lock-striped shard: its record map plus its own LRU clock (a
/// per-shard clock keeps touches off any shared atomic; recency only ever
/// competes within a shard, where the clock is totally ordered anyway).
#[derive(Debug, Default)]
struct Shard {
    map: ShardMap,
    tick: u64,
}

/// The sharded cross-search subplan memo.  Shareable across searches and
/// threads (`Arc<SubplanMemo>` via [`super::SearchConfig::memo`]); the
/// parallel level-barrier drivers probe and populate it concurrently, like
/// the eval cache.
///
/// Capacity is apportioned evenly across the lock shards (minimum one
/// record per shard), and each shard evicts its own least-recently-used
/// record once full — so the memo tracks a shifting workload instead of
/// pinning whichever shapes arrived first, at the cost of the bound being
/// per-shard rather than exactly global.  Eviction can only cost speed,
/// never correctness: a re-miss recomputes and re-inserts.
#[derive(Debug)]
pub struct SubplanMemo {
    shards: Box<[Mutex<Shard>]>,
    shard_capacity: usize,
    capacity: usize,
    records: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for SubplanMemo {
    fn default() -> Self {
        SubplanMemo::with_capacity(DEFAULT_MEMO_CAPACITY)
    }
}

impl SubplanMemo {
    /// An empty memo retaining roughly `capacity` node records under the
    /// default shard count, with per-shard LRU eviction once full.
    pub fn with_capacity(capacity: usize) -> Self {
        SubplanMemo::with_shards(capacity, MEMO_SHARDS)
    }

    /// An empty memo with an explicit lock-shard count (`shards >= 1`,
    /// clamped to `capacity` so the global bound `shards × per-shard
    /// slice` never exceeds the requested capacity).  `capacity / shards`
    /// records are retained per shard; tests use a single shard to make
    /// the LRU order deterministic.
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let capacity = capacity.max(1);
        let shards = shards.clamp(1, capacity);
        SubplanMemo {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity: capacity / shards,
            capacity,
            records: AtomicUsize::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &[u64]) -> MutexGuard<'_, Shard> {
        self.shards[lec_cost::shard_index(key, self.shards.len())]
            .lock()
            .unwrap_or_else(|p| p.into_inner())
    }

    /// Look up a node record; counts a hit or miss and touches the
    /// entry's LRU clock.
    pub fn lookup(&self, key: &[u64]) -> Option<Arc<MemoRecord>> {
        let mut shard = self.shard(key);
        let tick = shard.tick + 1;
        shard.tick = tick;
        let found = shard.map.get_mut(key).map(|slot| {
            slot.last_used = tick;
            Arc::clone(&slot.record)
        });
        drop(shard);
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Insert a node record, evicting the shard's least-recently-used
    /// record when the shard is at capacity (replacing an existing record
    /// for the same key touches it instead of evicting).
    pub fn insert(&self, key: Box<[u64]>, record: MemoRecord) {
        let mut shard = self.shard(&key);
        let tick = shard.tick + 1;
        shard.tick = tick;
        if !shard.map.contains_key(&key) {
            if shard.map.len() >= self.shard_capacity {
                lec_cost::evict_coldest(&mut shard.map, |slot| slot.last_used)
                    .expect("a full shard is non-empty");
                self.evictions.fetch_add(1, Ordering::Relaxed);
            } else {
                self.records.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.map.insert(
            key,
            MemoSlot {
                record: Arc::new(record),
                last_used: tick,
            },
        );
    }

    /// Lifetime counters.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            records: self.records.load(Ordering::Relaxed),
            capacity: self.capacity,
        }
    }

    /// Number of records stored.
    pub fn len(&self) -> usize {
        self.records.load(Ordering::Relaxed)
    }

    /// True when nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Machine-readable counters for service metrics.
    pub fn stats_json(&self) -> serde_json::Value {
        let s = self.stats();
        serde_json::json!({
            "hits": s.hits,
            "misses": s.misses,
            "evictions": s.evictions,
            "records": s.records,
            "capacity": s.capacity,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(candidates: u64) -> MemoRecord {
        MemoRecord {
            entries: MemoEntries::Dp(vec![MemoDpEntry {
                plan: PlanNode::SeqScan { table: 0 },
                cost: 1.0,
                pages: 10.0,
                order: MemoOrder::None,
            }]),
            candidates,
            probes: Vec::new(),
            unprobed_evals: 0,
            bound_pages: None,
        }
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let memo = SubplanMemo::with_capacity(8);
        let key: Box<[u64]> = vec![1, 2, 3].into_boxed_slice();
        assert!(memo.lookup(&key).is_none());
        memo.insert(key.clone(), record(7));
        let rec = memo.lookup(&key).expect("inserted");
        assert_eq!(rec.candidates, 7);
        let s = memo.stats();
        assert_eq!((s.hits, s.misses, s.records), (1, 1, 1));
        assert_eq!(s.evictions, 0);
        assert!(!memo.is_empty());
    }

    #[test]
    fn full_shards_evict_their_coldest_record() {
        // One shard makes the LRU order deterministic.
        let memo = SubplanMemo::with_shards(2, 1);
        memo.insert(vec![0u64].into_boxed_slice(), record(0));
        memo.insert(vec![1u64].into_boxed_slice(), record(1));
        // Touch key 0 so key 1 is the coldest.
        assert!(memo.lookup(&[0u64][..]).is_some());
        memo.insert(vec![2u64].into_boxed_slice(), record(2));
        assert_eq!(memo.len(), 2);
        assert!(memo.lookup(&[1u64][..]).is_none(), "coldest record evicted");
        assert!(memo.lookup(&[0u64][..]).is_some());
        assert!(memo.lookup(&[2u64][..]).is_some());
        assert_eq!(memo.stats().evictions, 1);
        // Replacing a retained key touches instead of evicting.
        memo.insert(vec![0u64].into_boxed_slice(), record(42));
        assert_eq!(memo.len(), 2);
        assert_eq!(memo.stats().evictions, 1);
        assert_eq!(memo.lookup(&[0u64][..]).unwrap().candidates, 42);
        // ... and is now the most recent: inserting once more evicts 2.
        memo.insert(vec![3u64].into_boxed_slice(), record(3));
        assert!(memo.lookup(&[2u64][..]).is_none());
        assert!(memo.lookup(&[0u64][..]).is_some());
    }

    #[test]
    fn lru_adapts_to_a_shifted_workload() {
        // A memo that keeps re-missing on a new hot set must converge to
        // holding it (the seed's shed-new-inserts policy pinned the old
        // set forever).
        let memo = SubplanMemo::with_shards(4, 1);
        for i in 0..4u64 {
            memo.insert(vec![i].into_boxed_slice(), record(i));
        }
        for i in 100..104u64 {
            memo.insert(vec![i].into_boxed_slice(), record(i));
        }
        assert_eq!(memo.len(), 4);
        assert_eq!(memo.stats().evictions, 4);
        for i in 100..104u64 {
            assert!(memo.lookup(&[i][..]).is_some(), "new hot key {i} retained");
        }
    }
}
