//! The top-`c` policy of Algorithm B (§3.3), with the Proposition 3.1
//! frontier.
//!
//! "Suppose that rather than generating the best plan for each memory size
//! m_i, we generate the top c plans ... combining them using each possible
//! join method gives us the top c plans for computing the join over S if
//! we join A_j last."  Proposition 3.1 bounds the combinations that must be
//! examined per join method by `c + c·log c`: if the two input lists are
//! sorted by cost, combination `(s_i, a_k)` can only be in the top `c` when
//! `i·k ≤ c`, because `i·k − 1` combinations are at least as cheap.
//!
//! The frontier argument is exact here because all top-c variants of an
//! input share the same physical properties (sizes), so the join-method
//! cost term is constant within a group and ranking reduces to the sum of
//! input costs — precisely the paper's observation.

use super::coster::{PhaseCoster, PointCoster};
use super::keep_best::DpEntry;
use super::policy::{
    access_alternatives, join_output_order, plan_shape_cmp, CandidatePolicy, JoinContext,
    RootContext,
};
use super::SearchStats;
use lec_cost::CostModel;
use lec_plan::{JoinMethod, OrderProperty, PlanNode};
use std::cmp::Ordering;
use std::collections::BTreeMap;

/// Counters proving Proposition 3.1 empirically.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FrontierStats {
    /// Combinations actually examined across all (node, split, method)
    /// groups.
    pub combinations_examined: u64,
    /// Sum of the paper's `c + c·log c` bound over the same groups.
    pub bound_total: u64,
    /// Number of combination groups.
    pub groups: u64,
}

/// The top-`c`-per-(subset, order) policy at one fixed memory value.
#[derive(Debug, Clone)]
pub struct TopCPolicy {
    coster: PointCoster,
    c: usize,
    bound: u64,
    /// Frontier counters accumulated across the run.
    pub frontier: FrontierStats,
}

impl TopCPolicy {
    /// A policy keeping the `c` cheapest plans per (subset, order) at
    /// memory value `memory`.  Requires `c >= 1`.
    pub fn new(memory: f64, c: usize) -> Self {
        assert!(c >= 1, "TopCPolicy requires c >= 1");
        TopCPolicy {
            coster: PointCoster { memory },
            c,
            bound: (c as f64 + c as f64 * (c as f64).ln()).ceil() as u64,
            frontier: FrontierStats::default(),
        }
    }

    /// Keep the `c` cheapest entries of `e.order` under the
    /// *rename-equivariant* total order `(cost, plan shape)` — exact cost
    /// ties resolve by [`plan_shape_cmp`] instead of arrival order, so a
    /// table renaming of the query truncates the frontier to the same
    /// plans (up to relabeling).  This is what lets Algorithm B share the
    /// serving layer's canonical-shape cache; only genuinely
    /// indistinguishable twin tables (equal shape fingerprints, refused by
    /// the canonicalizer's automorphism check) fall back to first-wins.
    fn insert(&self, model: &CostModel<'_>, entries: &mut Vec<DpEntry>, e: DpEntry) {
        let rank = |a: &DpEntry, b: &DpEntry| {
            a.cost
                .total_cmp(&b.cost)
                .then_with(|| plan_shape_cmp(model, &a.plan, &b.plan))
        };
        let mut same = 0usize;
        let mut worst: Option<usize> = None;
        for (i, f) in entries.iter().enumerate() {
            if f.order != e.order {
                continue;
            }
            same += 1;
            if worst.is_none_or(|w| rank(&entries[w], f) != Ordering::Greater) {
                worst = Some(i);
            }
        }
        if same >= self.c {
            let w = worst.expect("same >= c >= 1 implies a worst entry");
            if rank(&e, &entries[w]) != Ordering::Less {
                return;
            }
            entries.remove(w);
        }
        entries.push(e);
    }
}

impl CandidatePolicy for TopCPolicy {
    type Entry = DpEntry;

    fn fork(&self) -> Self {
        TopCPolicy {
            frontier: FrontierStats::default(),
            ..self.clone()
        }
    }

    fn merge(&mut self, forked: Self) {
        self.frontier.combinations_examined += forked.frontier.combinations_examined;
        self.frontier.bound_total += forked.frontier.bound_total;
        self.frontier.groups += forked.frontier.groups;
    }

    fn access_entries(
        &mut self,
        model: &CostModel<'_>,
        idx: usize,
        _stats: &mut SearchStats,
    ) -> Vec<DpEntry> {
        let mut entries = Vec::new();
        for (plan, cost, order, pages) in access_alternatives(model, idx) {
            self.insert(
                model,
                &mut entries,
                DpEntry {
                    plan,
                    cost,
                    pages,
                    order,
                },
            );
        }
        entries
    }

    fn combine(
        &mut self,
        model: &CostModel<'_>,
        ctx: &JoinContext,
        outer: &[DpEntry],
        inner: &[DpEntry],
        into: &mut Vec<DpEntry>,
        stats: &mut SearchStats,
    ) {
        let sel = model.join_selectivity_sets(ctx.left, ctx.right);
        // Group the outer list by (order, pages), cost-sorted within each
        // group; the BTreeMap makes tie-breaking among equal-cost
        // candidates deterministic across runs.  Pages are part of the key
        // because the one-page clamp can give same-subset entries built
        // through different splits different sizes — the paper's
        // "identical physical properties" premise holds only within a
        // same-size group, and grouping by size keeps the shared
        // join-cost-term evaluation exact rather than approximate.
        let mut outer_groups: BTreeMap<(OrderProperty, u64), Vec<&DpEntry>> = BTreeMap::new();
        for e in outer {
            outer_groups
                .entry((e.order, e.pages.to_bits()))
                .or_default()
                .push(e);
        }
        // Cost-sort within each group, shape-breaking exact ties so the
        // Prop 3.1 frontier window selects the same plans under any table
        // renaming.
        for group in outer_groups.values_mut() {
            group.sort_by(|a, b| {
                a.cost
                    .total_cmp(&b.cost)
                    .then_with(|| plan_shape_cmp(model, &a.plan, &b.plan))
            });
        }
        // Flatten inner entries (access paths) into one sorted list; their
        // orders are folded into the join's output order rule, which for
        // inner sides never depends on the inner order, and a singleton's
        // access paths all share the same page count.
        let mut inner_list: Vec<&DpEntry> = inner.iter().collect();
        inner_list.sort_by(|a, b| {
            a.cost
                .total_cmp(&b.cost)
                .then_with(|| plan_shape_cmp(model, &a.plan, &b.plan))
        });

        for ((outer_order, outer_pages_bits), outer_list) in &outer_groups {
            for method in JoinMethod::ALL {
                self.frontier.groups += 1;
                self.frontier.bound_total += self.bound;
                // Cost term constant within the group: evaluate once.
                let outer_pages = f64::from_bits(*outer_pages_bits);
                let inner_pages = inner_list.first().map(|e| e.pages).unwrap_or(0.0);
                let join_cost = self
                    .coster
                    .join_cost(model, ctx, method, outer_pages, inner_pages);
                let order = join_output_order(model, ctx.left, *outer_order, ctx.right, method);
                let pages = model.join_output_pages(outer_pages, inner_pages, sel);
                // Prop 3.1 frontier: only (i, k) with i·k ≤ c.
                for (ki, ie) in inner_list.iter().enumerate() {
                    let i_max = self.c / (ki + 1);
                    if i_max == 0 {
                        break;
                    }
                    for oe in outer_list.iter().take(i_max) {
                        self.frontier.combinations_examined += 1;
                        stats.candidates += 1;
                        self.insert(
                            model,
                            into,
                            DpEntry {
                                plan: PlanNode::join(method, oe.plan.clone(), ie.plan.clone()),
                                cost: oe.cost + ie.cost + join_cost,
                                pages,
                                order,
                            },
                        );
                    }
                }
            }
        }
    }

    fn finalize(
        &mut self,
        model: &CostModel<'_>,
        ctx: &RootContext,
        entries: Vec<DpEntry>,
        _stats: &mut SearchStats,
    ) -> Vec<DpEntry> {
        let mut out = super::keep_best::finalize_with_coster(model, ctx, entries, &self.coster);
        out.sort_by(|a, b| {
            a.cost
                .total_cmp(&b.cost)
                .then_with(|| plan_shape_cmp(model, &a.plan, &b.plan))
        });
        out.truncate(self.c);
        out
    }
}
