//! The pluggable dynamic-programming search engine every optimizer mode
//! runs on.
//!
//! The paper presents LEC optimization as "a generic modification of the
//! basic System R optimizer": one DP driver over the subset dag, with the
//! *costing and candidate-retention rule* as the only thing that changes
//! between algorithms.  This module is that claim made literal.  The
//! engine ([`engine::run_search`]) walks the dag — "the nodes at depth k
//! are labeled by the subsets of {1,…,n} of cardinality k" — and is
//! parameterized along two axes:
//!
//! * **plan shape** ([`engine::PlanShape`]): how a subset is split into
//!   (outer, inner) operand pairs — left-deep (`S∖{j}` × `{j}`, §2.2) or
//!   bushy (every connected 2-partition, the §4 extension);
//! * **candidate policy** ([`policy::CandidatePolicy`]): what is kept per
//!   dag node and how a join candidate is costed.
//!
//! Paper-section → policy mapping:
//!
//! | policy | costing | paper | used by |
//! |---|---|---|---|
//! | [`keep_best::KeepBestPolicy`] + [`coster::PointCoster`] | `C(P, m)` at one memory value | Thm 2.1 | [`crate::lsc`], Algorithm A's black box |
//! | [`keep_best::KeepBestPolicy`] + [`coster::StaticExpectationCoster`] | `EC(P)` under a static distribution | §3.4, Thm 3.3 | [`crate::alg_c`], [`crate::bushy`] |
//! | [`keep_best::KeepBestPolicy`] + [`coster::DynamicExpectationCoster`] | per-phase Markov-evolved `EC(P)` | §3.5, Thm 3.4 | [`crate::alg_c`] |
//! | [`top_c::TopCPolicy`] | top-`c` per (subset, order) at a point, Prop 3.1 frontier | §3.3 | [`crate::alg_b`] |
//! | [`multi_param::MultiParamPolicy`] | Figure 1 distribution bookkeeping, §3.6.3 rebucketing | §3.6 | [`crate::alg_d`] |
//! | [`keep_all::KeepAllPolicy`] | any [`coster::PhaseCoster`], no pruning | ground truth | [`crate::exhaustive`] |
//!
//! Every policy funnels its memory-dependent evaluations through the
//! memoized `*_for` methods of [`lec_cost::CostModel`], so identical
//! per-bucket evaluations repeated across entry pairs and dag levels are
//! computed once; [`SearchStats::evals`] exposes the reduction and
//! [`SearchStats::cache_hits`] the work avoided.
//!
//! # Threading model
//!
//! The engine has a third axis: *parallelism* ([`engine::SearchConfig`],
//! driven by [`engine::run_search_with`]).  Subsets at one dag depth are
//! independent — their splits only read completed lower depths — so each
//! depth is fanned out across a pool of scoped worker threads that live
//! for the whole search (**level-barrier fan-out**): the driver publishes
//! the depth's subsets, every thread steals subsets off a shared cursor
//! and combines them with its own [`CandidatePolicy::fork`] of the policy,
//! and the driver folds the per-worker results (and, at the end, the
//! forked policies) back **deterministically** at the depth barrier.
//! Below the expectation costers, `lec-cost`'s eval cache is sharded
//! across per-tier mutexes that are held for the duration of a miss's
//! compute, so every distinct evaluation happens exactly once no matter
//! how subsets were scheduled.  The combination makes a parallel search
//! byte-identical to a serial one — plans, costs, tie-breaks, `evals`,
//! `cache_hits` — which the `parallel_parity` property tests pin for every
//! policy.  `SearchConfig::threads == 1` bypasses all of this and runs
//! the untouched serial driver; a worker panic surfaces as
//! [`crate::OptError::WorkerPanicked`], never a deadlock.
//!
//! # Subplan memo
//!
//! The engine's fourth axis is *cross-search reuse*
//! ([`engine::SearchConfig::memo`], [`memo::SubplanMemo`]): DP nodes are
//! keyed by the canonical form of their induced connected subquery
//! (`lec-canon`), so a node whose shape was combined before — in this
//! search or any earlier search sharing the memo — skips its entire
//! combine/cost loop: the memoized candidates are relabeled into the
//! current query's numbering and the node's recorded cost-cache probes
//! are replayed ([`lec_cost::CostModel::replay_probes`]), which keeps
//! every counter the engine promises determinism for (`evals`,
//! `cache_hits`, `candidates`, `nodes`) byte-identical to a memo-off
//! run.  Eligibility mirrors the serving cache's uncacheable rules:
//! keep-best and multi-param policies opt in
//! ([`policy::CandidatePolicy::memo_fingerprint`]); top-c, keep-all and
//! the randomized modes bypass, as does any subset containing twin
//! tables (equal exact fingerprints — refused by the canonicalizer, so
//! no label-dependent tie-break below the node can leak into a
//! record).  `lec-service`'s
//! `PlanServer` shares one memo across all its searches, turning
//! overlapping different-shaped requests into partial hits.
//!
//! # Bound-based pruning
//!
//! The engine's fifth axis is *branch and bound*
//! ([`engine::SearchConfig::pruning`], [`bound`]): with pruning on, a
//! policy may hand the engine an admissible [`bound::LowerBound`] on the
//! cost of any complete plan containing a given connected subset as a
//! subtree, and the engine discards the subset before its combine/cost
//! loop whenever that bound strictly exceeds the **incumbent** — the
//! cheapest complete-plan cost established so far.
//!
//! The incumbent/bound contract has three clauses:
//!
//! * **Achievable incumbent.**  The incumbent is always the *finalized
//!   cost of a real plan under the policy's own objective*: after depth 1
//!   (and again at every level barrier) the driver greedily completes the
//!   cheapest node through the policy's own
//!   [`policy::CandidatePolicy::combine`]/`finalize`, so no coster
//!   arithmetic is ever replicated or approximated.  Because only the
//!   driver tightens the incumbent — at barriers, through an atomic cost
//!   cell ([`bound::IncumbentCell`]) — every worker reads one stable
//!   value per level and prune decisions are schedule-independent:
//!   parallel pruned searches are byte-identical to serial pruned ones,
//!   `SearchStats::pruned_subsets` included.
//! * **Admissible floor, strict prune.**  `subset_floor(S) ≤` the cost of
//!   every completion through `S` (sizes floored by the subset's
//!   size product, memory by its most favourable value — the cost
//!   formulas are monotone in both), and a subset is discarded only when
//!   its floor is *strictly above* the incumbent.  Every subtree of an
//!   optimal plan therefore survives, exact ties included, and a pruned
//!   search returns the same plan at the same cost bits as an unpruned
//!   one; only the work counters (`evals`, `candidates`, `nodes`,
//!   `cache_hits`) and the pruning counters (`pruned_subsets`,
//!   `bound_evals`, `sharp_bound_evals`, `cheap_bound_skips`) may differ.
//! * **Tiered evaluation.**  Checks run in two tiers ([`bound`] module
//!   docs): a *cheap* floor (universal per-join constant) always, and a
//!   *sharp* per-edge floor — per-table inner-operand attach costs over
//!   the tables still outside the subset — only when the cheap floor
//!   lands within [`bound::SHARP_MARGIN`] of the incumbent and the
//!   search shape is left-deep (the per-table decomposition the sharp
//!   floor relies on is exact only there).  Disconnected subsets are
//!   discarded structurally before either tier: the split enumeration
//!   never materializes a cross product, so a disconnected set can
//!   never contribute a DP entry.
//! * **Eligibility.**  Keep-best (under any [`coster::PhaseCoster`]) and
//!   multi-param opt in via
//!   [`policy::CandidatePolicy::pruning_bound`]; Algorithm D's incumbent
//!   is the scalar *expected* completion cost, floored through its
//!   size-distributions' minimum supports, so one incumbent covers every
//!   memory bucket at once.  Top-c **bypasses** pruning: its answer is a
//!   Proposition 3.1 *frontier* of candidates per node, and a subset
//!   whose cheapest completion loses to the incumbent can still carry a
//!   frontier member the final EC ranking needs — no single-incumbent
//!   bound is admissible for "keep the c best".  The randomized modes
//!   (II/SA) never run the DP engine at all.  The keep-all verifier
//!   becomes a *streaming* branch-and-bound enumerator: the same subset
//!   check plus a per-entry emit-and-discard rule (`entry cost +
//!   completion floor > incumbent`), which is what lifts its 7-table
//!   materialization cap.

pub mod bound;
pub mod coster;
pub mod engine;
pub mod keep_all;
pub mod keep_best;
pub mod memo;
pub mod multi_param;
pub mod policy;
pub mod pool;
pub mod top_c;

pub use bound::{
    min_support_size_product, point_size_product, BoundCheck, EdgeBound, ExpectationBound,
    IncumbentCell, LowerBound, MinSupportBound, PointBound, PruneState, SHARP_MARGIN,
};
pub use coster::{DynamicExpectationCoster, PhaseCoster, PointCoster, StaticExpectationCoster};
pub use engine::{
    plan_space_size, run_search, run_search_with, PlanShape, SearchConfig, SearchRun,
    DEFAULT_FANOUT_THRESHOLD,
};
pub use keep_all::KeepAllPolicy;
pub use keep_best::{DpEntry, KeepBestPolicy};
pub use memo::{
    MemoDistEntry, MemoDpEntry, MemoEntries, MemoOrder, MemoRecord, MemoStats, SubplanMemo,
    DEFAULT_MEMO_CAPACITY,
};
pub use multi_param::{AlgDConfig, DistEntry, MultiParamPolicy};
pub use policy::{
    insert_entry, insert_entry_shaped, join_output_order, plan_shape_cmp, CandidatePolicy,
    JoinContext, Rankable, RootContext, SearchEntry,
};
pub use pool::{PersistentPool, ScopedSpawnPool, WorkerPool, PERSISTENT_FANOUT_THRESHOLD};
pub use top_c::{FrontierStats, TopCPolicy};

use lec_plan::PlanNode;
use lec_prob::Distribution;
use std::time::Duration;

/// Uniform search statistics, populated by the engine for every mode.
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchStats {
    /// Dag nodes (subsets) populated; for move-based searches, complete
    /// plans costed.
    pub nodes: usize,
    /// Join candidates generated (subset × split × entry pair × method);
    /// for move-based searches, neighbour moves proposed.
    pub candidates: u64,
    /// Cost-formula evaluations actually performed (cache hits excluded).
    pub evals: u64,
    /// Evaluations answered by the memoized cost cache instead.
    pub cache_hits: u64,
    /// DP nodes served from the cross-search subplan memo (combine loop
    /// skipped entirely); zero unless [`SearchConfig::memo`] is set.
    ///
    /// Unlike every other counter, the memo counters are *not*
    /// schedule-independent: whether a node hits depends on what earlier
    /// searches — and, in a parallel run, concurrently-combined sibling
    /// nodes — already inserted.  They are observability, not semantics;
    /// results are byte-identical whatever they read.
    pub memo_hits: u64,
    /// Memo-eligible DP nodes that combined live (and populated the memo).
    pub memo_misses: u64,
    /// Subsets discarded by the branch-and-bound layer before their
    /// combine/cost loop ran — structurally (disconnected) or by a bound
    /// tier; zero unless [`SearchConfig::pruning`] is on and the policy
    /// provides a bound.
    pub pruned_subsets: u64,
    /// Lower-bound size computations performed for prune checks (a
    /// [`SubplanMemo`] hit whose record carries the bound skips the
    /// recompute and is *not* counted here — like the memo counters,
    /// `bound_evals` is therefore schedule-independent only in memo-off
    /// runs; `pruned_subsets` is schedule-independent always, because a
    /// memoized bound equals the value a recompute would produce).
    pub bound_evals: u64,
    /// Connected prune checks that escalated to the sharp per-edge tier
    /// ([`bound::PruneState::sharp_subset_floor`]): the cheap floor
    /// landed within [`bound::SHARP_MARGIN`] of the incumbent.  The
    /// tier decision depends only on the subset, its size floor, and
    /// the level's incumbent, so — unlike `bound_evals` — both tier
    /// counters are schedule- *and* memo-independent.
    pub sharp_bound_evals: u64,
    /// Connected prune checks the cheap tier decided alone (pruned
    /// outright, or kept with the sharp tier out of reach).  Together
    /// with `sharp_bound_evals` this counts every connected non-full
    /// subset checked.
    pub cheap_bound_skips: u64,
    /// Wall-clock optimization time.
    pub elapsed: Duration,
}

impl SearchStats {
    /// Accumulate another run's counters (black-box modes invoke the
    /// engine several times).
    pub fn absorb(&mut self, other: &SearchStats) {
        self.nodes += other.nodes;
        self.candidates += other.candidates;
        self.evals += other.evals;
        self.cache_hits += other.cache_hits;
        self.memo_hits += other.memo_hits;
        self.memo_misses += other.memo_misses;
        self.pruned_subsets += other.pruned_subsets;
        self.bound_evals += other.bound_evals;
        self.sharp_bound_evals += other.sharp_bound_evals;
        self.cheap_bound_skips += other.cheap_bound_skips;
        self.elapsed += other.elapsed;
    }

    /// Machine-readable form, for service metrics and benchmark
    /// artifacts.  `elapsed` is reported in microseconds (the natural
    /// scale of one search).  Keys are emitted in sorted order, like
    /// every metrics producer in the workspace, so snapshots diff
    /// cleanly across runs.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "bound_evals": self.bound_evals,
            "cache_hits": self.cache_hits,
            "candidates": self.candidates,
            "cheap_bound_skips": self.cheap_bound_skips,
            "elapsed_us": self.elapsed.as_secs_f64() * 1e6,
            "evals": self.evals,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "nodes": self.nodes,
            "pruned_subsets": self.pruned_subsets,
            "sharp_bound_evals": self.sharp_bound_evals,
        })
    }
}

impl serde_json::Serialize for SearchStats {
    fn to_value(&self) -> serde_json::Value {
        self.to_json()
    }
}

/// Mode-specific diagnostics carried alongside the uniform outcome.
#[derive(Debug, Clone, Default)]
pub enum SearchExtras {
    /// Nothing beyond the uniform fields.
    #[default]
    None,
    /// Algorithm A: the per-memory-representative candidates.
    Candidates(Vec<crate::alg_a::Candidate>),
    /// Algorithm B: Proposition 3.1 frontier counters and the number of
    /// distinct candidate plans that were EC-ranked.
    Frontier {
        /// The frontier counters.
        frontier: FrontierStats,
        /// Distinct candidate plans ranked by expected cost.
        n_candidates: usize,
    },
    /// Algorithm D: the winning plan's result-size distribution and the
    /// largest pre-rebucketing product support seen.
    MultiParam {
        /// Distribution of the final result size in pages.
        result_size: Distribution,
        /// Largest size-distribution support before rebucketing.
        max_product_support: usize,
    },
    /// Exhaustive verification: complete plans costed.
    PlansCosted(u64),
}

/// The uniform result of one optimization run, whatever the mode.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The chosen plan.
    pub plan: PlanNode,
    /// Its objective value: point cost for LSC, expected cost for every
    /// LEC mode.
    pub cost: f64,
    /// Uniform statistics.
    pub stats: SearchStats,
    /// Mode-specific diagnostics.
    pub extras: SearchExtras,
}

impl SearchOutcome {
    /// Assemble an outcome with no extras.
    pub fn new(plan: PlanNode, cost: f64, stats: SearchStats) -> Self {
        SearchOutcome {
            plan,
            cost,
            stats,
            extras: SearchExtras::None,
        }
    }

    /// Algorithm B's frontier counters, when this outcome has them.
    pub fn frontier(&self) -> Option<&FrontierStats> {
        match &self.extras {
            SearchExtras::Frontier { frontier, .. } => Some(frontier),
            _ => None,
        }
    }

    /// Algorithm B's distinct EC-ranked candidate count.
    pub fn n_candidates(&self) -> Option<usize> {
        match &self.extras {
            SearchExtras::Frontier { n_candidates, .. } => Some(*n_candidates),
            _ => None,
        }
    }

    /// Algorithm A's candidate list.
    pub fn candidates(&self) -> Option<&[crate::alg_a::Candidate]> {
        match &self.extras {
            SearchExtras::Candidates(c) => Some(c),
            _ => None,
        }
    }

    /// Algorithm D's result-size distribution.
    pub fn result_size(&self) -> Option<&Distribution> {
        match &self.extras {
            SearchExtras::MultiParam { result_size, .. } => Some(result_size),
            _ => None,
        }
    }

    /// Algorithm D's largest pre-rebucketing product support.
    pub fn max_product_support(&self) -> Option<usize> {
        match &self.extras {
            SearchExtras::MultiParam {
                max_product_support,
                ..
            } => Some(*max_product_support),
            _ => None,
        }
    }

    /// The exhaustive verifier's complete-plans-costed count.
    pub fn plans_costed(&self) -> Option<u64> {
        match &self.extras {
            SearchExtras::PlansCosted(n) => Some(*n),
            _ => None,
        }
    }
}
