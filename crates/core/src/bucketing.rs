//! Bucketing strategies for the parameter space (§3.7).
//!
//! "A large number of buckets gives a closer approximation to the true
//! probability distribution ... a smaller number of buckets makes the
//! optimization process less expensive."  The paper sketches three ideas we
//! implement: plain equal-width partitioning, equi-depth partitioning, and
//! *level-set aware* bucketing that places bucket boundaries on the cost
//! function's discontinuities ("if we bucket the joint distribution by
//! using the level sets ... we can minimize the computation involved").

use lec_cost::CostModel;
use lec_plan::JoinMethod;
use lec_prob::{Distribution, Rebucket};

/// How to reduce a fine-grained "true" memory distribution to `b` buckets
/// before handing it to an LEC algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BucketStrategy {
    /// Equal-width intervals over the support range.
    EqualWidth,
    /// Equal-mass (quantile) intervals.
    EqualDepth,
    /// Intervals bounded by the query's cost-cliff positions (level sets),
    /// merged down to the budget by smallest mass first.
    LevelSet,
}

/// All memory values at which *some* first-level join of the query changes
/// cost: the union of every connected base-table pair's cliff positions
/// under every join method, plus the sort cliffs of the estimated final
/// result.  This is the level-set information available before any plan is
/// chosen.
pub fn query_memory_breakpoints(model: &CostModel<'_>) -> Vec<f64> {
    use lec_cost::formulas;
    let query = model.query();
    let mut bps: Vec<f64> = Vec::new();
    for p in &query.joins {
        let (l, r) = p.tables();
        let a = model.base_pages(l);
        let b = model.base_pages(r);
        bps.extend(formulas::sm_breakpoints(a, b));
        bps.extend(formulas::grace_breakpoints(a, b));
        bps.extend(formulas::nl_breakpoints(a, b));
        let _ = JoinMethod::ALL; // BNL cliffs are dense; level sets skip them
    }
    if query.required_order.is_some() {
        // Estimate the final result size as the full product of base sizes
        // and selectivities (order-independent).
        let mut pages = 1.0f64;
        for idx in 0..query.n_tables() {
            pages *= model.base_pages(idx);
        }
        for p in &query.joins {
            pages *= p.selectivity.mean();
        }
        bps.extend(formulas::sort_breakpoints(pages.max(1.0)));
    }
    bps.sort_by(f64::total_cmp);
    bps.dedup_by(|a, b| (*a - *b).abs() < 1e-9 * a.abs().max(1.0));
    bps
}

/// Reduce `truth` to at most `b` buckets with the given strategy.
///
/// Every strategy preserves total mass and the mean exactly (bucket
/// representatives are conditional means); they differ in where boundaries
/// fall relative to cost cliffs.
pub fn bucketize(
    truth: &Distribution,
    b: usize,
    strategy: BucketStrategy,
    breakpoints: &[f64],
) -> Distribution {
    assert!(b >= 1, "need at least one bucket");
    if truth.len() <= b {
        return truth.clone();
    }
    match strategy {
        BucketStrategy::EqualWidth => truth.rebucket(b, Rebucket::EqualWidth).expect("b >= 1"),
        BucketStrategy::EqualDepth => truth.rebucket(b, Rebucket::EqualDepth).expect("b >= 1"),
        BucketStrategy::LevelSet => level_set_bucketize(truth, b, breakpoints),
    }
}

/// Buckets bounded by breakpoints, merged down to the budget.
fn level_set_bucketize(truth: &Distribution, b: usize, breakpoints: &[f64]) -> Distribution {
    // Partition the support at the breakpoints (half-open intervals
    // (lo, hi]; a bucket's members are values ≤ the breakpoint, matching
    // the formulas' `M ≤ √L` style conditions).
    let cuts: Vec<f64> = breakpoints
        .iter()
        .copied()
        .filter(|&c| c > truth.min_value() && c < truth.max_value())
        .collect();
    // Interval index for each support value.
    let mut intervals: Vec<(f64, f64)> = Vec::new(); // (mass, weighted sum)
    intervals.resize(cuts.len() + 1, (0.0, 0.0));
    for (v, p) in truth.iter() {
        let idx = cuts.partition_point(|&c| c < v);
        intervals[idx].0 += p;
        intervals[idx].1 += v * p;
    }
    let mut cells: Vec<(f64, f64)> = intervals.into_iter().filter(|(m, _)| *m > 0.0).collect();
    // Merge adjacent smallest-mass cells until within budget.
    while cells.len() > b {
        let mut best_i = 0;
        let mut best_mass = f64::INFINITY;
        for i in 0..cells.len() - 1 {
            let mass = cells[i].0 + cells[i + 1].0;
            if mass < best_mass {
                best_mass = mass;
                best_i = i;
            }
        }
        let (m2, w2) = cells.remove(best_i + 1);
        cells[best_i].0 += m2;
        cells[best_i].1 += w2;
    }
    Distribution::from_pairs(cells.into_iter().map(|(m, w)| (w / m, m))).expect("non-empty cells")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::example_1_1;

    fn truth() -> Distribution {
        // Fine-grained environment over 200..3000 pages.
        lec_prob::presets::uniform_grid(200.0, 3000.0, 57).unwrap()
    }

    #[test]
    fn all_strategies_preserve_mass_and_mean() {
        let (cat, q) = example_1_1();
        let model = CostModel::new(&cat, &q);
        let bps = query_memory_breakpoints(&model);
        let t = truth();
        for strategy in [
            BucketStrategy::EqualWidth,
            BucketStrategy::EqualDepth,
            BucketStrategy::LevelSet,
        ] {
            for b in [1, 2, 3, 5, 10] {
                let d = bucketize(&t, b, strategy, &bps);
                assert!(d.len() <= b, "{strategy:?} b={b}: got {}", d.len());
                let mass: f64 = d.probs().iter().sum();
                assert!((mass - 1.0).abs() < 1e-9);
                assert!(
                    (d.mean() - t.mean()).abs() < 1e-6,
                    "{strategy:?} b={b}: mean drift"
                );
            }
        }
    }

    #[test]
    fn query_breakpoints_include_the_papers_cliffs() {
        let (cat, q) = example_1_1();
        let model = CostModel::new(&cat, &q);
        let bps = query_memory_breakpoints(&model);
        // √1e6 = 1000 (SM), √4e5 ≈ 632.46 (Grace), 4e5+2 (NL), 3000 (sort).
        for expected in [1000.0, 400_000f64.sqrt(), 400_002.0, 3000.0] {
            assert!(
                bps.iter().any(|&x| (x - expected).abs() < 1e-6),
                "missing breakpoint {expected}"
            );
        }
    }

    #[test]
    fn level_set_boundaries_respect_cliffs() {
        // With budget 2 and one dominant cliff at 1000, the level-set
        // buckets must not mix mass from both sides of 1000.
        let (cat, q) = example_1_1();
        let model = CostModel::new(&cat, &q);
        let bps = query_memory_breakpoints(&model);
        let t = truth();
        let d = bucketize(&t, 4, BucketStrategy::LevelSet, &bps);
        // Each representative sits inside a single cost regime of SM:
        // check that no representative is within one grid step of 1000
        // while representing mass from both sides (indirect check: the
        // set of representatives must straddle the 1000 cliff).
        assert!(d.support().iter().any(|&v| v <= 1000.0));
        assert!(d.support().iter().any(|&v| v > 1000.0));
    }

    #[test]
    fn one_bucket_collapses_to_the_mean() {
        let t = truth();
        for strategy in [
            BucketStrategy::EqualWidth,
            BucketStrategy::EqualDepth,
            BucketStrategy::LevelSet,
        ] {
            let d = bucketize(&t, 1, strategy, &[1000.0]);
            assert!(d.is_point());
            assert!((d.mean() - t.mean()).abs() < 1e-9);
        }
    }

    #[test]
    fn already_coarse_distribution_is_untouched() {
        let d = Distribution::bimodal(700.0, 2000.0, 0.8).unwrap();
        let out = bucketize(&d, 5, BucketStrategy::LevelSet, &[1000.0]);
        assert_eq!(out, d);
    }
}
