//! The LSC baseline: classical System R optimization at one fixed setting
//! of the parameters (Theorem 2.1).
//!
//! "Current optimizers simply approximate each distribution by using the
//! mean or modal value.  They then choose the plan that is cheapest under
//! the assumption that the parameters actually take these specific values
//! and remain constant during execution.  We call this the least specific
//! cost (LSC) plan." (§1)
//!
//! Policy over the engine: [`KeepBestPolicy`] with a [`PointCoster`], over
//! the left-deep shape.

use crate::error::OptError;
use crate::search::{
    run_search_with, KeepBestPolicy, PlanShape, PointCoster, SearchConfig, SearchOutcome,
};
use lec_cost::CostModel;
use lec_prob::Distribution;

/// Which point of the memory distribution the LSC optimizer assumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointEstimate {
    /// The mean of the distribution (1740 pages in Example 1.1).
    Mean,
    /// The modal value (2000 pages in Example 1.1).
    Mode,
}

/// Optimize at a fixed memory value; the classical System R algorithm.
pub fn optimize_lsc(model: &CostModel<'_>, memory: f64) -> Result<SearchOutcome, OptError> {
    optimize_lsc_with(model, memory, &SearchConfig::default())
}

/// [`optimize_lsc`] under an explicit [`SearchConfig`] (thread count and
/// fan-out thresholds of the parallel DP driver).
pub fn optimize_lsc_with(
    model: &CostModel<'_>,
    memory: f64,
    config: &SearchConfig,
) -> Result<SearchOutcome, OptError> {
    let mut policy = KeepBestPolicy::new(PointCoster { memory });
    let run = run_search_with(model, PlanShape::LeftDeep, &mut policy, config)?;
    let (best, stats) = run.into_best();
    Ok(SearchOutcome::new(best.plan, best.cost, stats))
}

/// Optimize at the mean or mode of a memory distribution — exactly what
/// the paper says "current optimizers" do.
pub fn optimize_lsc_from_dist(
    model: &CostModel<'_>,
    memory: &Distribution,
    estimate: PointEstimate,
) -> Result<SearchOutcome, OptError> {
    optimize_lsc_from_dist_with(model, memory, estimate, &SearchConfig::default())
}

/// [`optimize_lsc_from_dist`] under an explicit [`SearchConfig`].
pub fn optimize_lsc_from_dist_with(
    model: &CostModel<'_>,
    memory: &Distribution,
    estimate: PointEstimate,
    config: &SearchConfig,
) -> Result<SearchOutcome, OptError> {
    let m = match estimate {
        PointEstimate::Mean => memory.mean(),
        PointEstimate::Mode => memory.mode(),
    };
    optimize_lsc_with(model, m, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{example_1_1, example_1_1_memory, three_chain};
    use lec_plan::{JoinMethod, PlanNode};

    #[test]
    fn lsc_picks_plan1_in_example_1_1() {
        // At both the modal (2000) and mean (1740) memory, the LSC plan is
        // the sort-merge plan — the paper's Plan 1.
        let (cat, q) = example_1_1();
        let model = CostModel::new(&cat, &q);
        let memory = example_1_1_memory();
        for est in [PointEstimate::Mean, PointEstimate::Mode] {
            let r = optimize_lsc_from_dist(&model, &memory, est).unwrap();
            match &r.plan {
                PlanNode::Join { method, .. } => {
                    assert_eq!(*method, JoinMethod::SortMerge, "{est:?}")
                }
                other => panic!("expected bare SM join, got {}", other.compact()),
            }
            // Scans + two passes.
            assert_eq!(r.cost, 1_400_000.0 + 2.0 * 1_400_000.0);
        }
    }

    #[test]
    fn lsc_at_low_memory_prefers_the_hash_plan() {
        // At 700 pages the Grace plan (flat) beats SM (which needs an
        // extra pass) even after paying the final sort.
        let (cat, q) = example_1_1();
        let model = CostModel::new(&cat, &q);
        let r = optimize_lsc(&model, 700.0).unwrap();
        assert!(crate::fixtures::is_plan2(&r.plan), "{}", r.plan.compact());
        assert_eq!(r.cost, 1_400_000.0 + 2.0 * 1_400_000.0 + 9000.0);
    }

    #[test]
    fn reported_cost_matches_replay_through_the_cost_model() {
        let (cat, q) = three_chain();
        let model = CostModel::new(&cat, &q);
        for m in [50.0, 200.0, 1000.0, 50_000.0] {
            let r = optimize_lsc(&model, m).unwrap();
            let replay = lec_cost::plan_cost_at(&model, &r.plan, m);
            assert!(
                (r.cost - replay).abs() < 1e-6,
                "m={m}: dp cost {} vs replay {replay}",
                r.cost
            );
            assert!(r.plan.is_left_deep());
        }
    }

    #[test]
    fn stats_are_populated() {
        let (cat, q) = three_chain();
        let model = CostModel::new(&cat, &q);
        let r = optimize_lsc(&model, 1000.0).unwrap();
        // 3 singletons + 2 pairs (chain: {0,1},{1,2} connected; {0,2} not) + full set
        assert_eq!(r.stats.nodes, 6);
        assert!(r.stats.candidates > 0);
        assert!(r.stats.evals > 0);
    }

    #[test]
    fn eval_cache_reduces_work_without_changing_the_answer() {
        let (cat, q) = crate::fixtures::scaling_chain(5);
        let model = CostModel::new(&cat, &q);
        let cached = optimize_lsc(&model, 1000.0).unwrap();
        assert!(
            cached.stats.cache_hits > 0,
            "pair×method repetition must hit"
        );
        model.set_eval_cache(false);
        let raw = optimize_lsc(&model, 1000.0).unwrap();
        model.set_eval_cache(true);
        assert_eq!(cached.plan, raw.plan);
        assert_eq!(cached.cost, raw.cost);
        assert!(
            cached.stats.evals < raw.stats.evals,
            "cache must reduce evals: {} vs {}",
            cached.stats.evals,
            raw.stats.evals
        );
        assert_eq!(raw.stats.cache_hits, 0);
    }

    #[test]
    fn more_memory_never_costs_more() {
        let (cat, q) = three_chain();
        let model = CostModel::new(&cat, &q);
        let mut last = f64::INFINITY;
        for m in [10.0, 100.0, 1000.0, 10_000.0, 100_000.0] {
            let r = optimize_lsc(&model, m).unwrap();
            assert!(
                r.cost <= last + 1e-9,
                "optimal cost must be monotone in memory"
            );
            last = r.cost;
        }
    }
}
