//! Parametric LEC optimization: the \[INSS92\] combination the paper
//! proposes twice (§3.2 and §3.4): "we can precompute the best expected
//! plan under a number of possible distributions (ones that give good
//! coverage of what we expect to encounter at run-time), and store these
//! expected plans, for use at query execution time."
//!
//! [`PlanCache::precompute`] runs Algorithm C once per anticipated
//! distribution at compile time; [`PlanCache::choose`] is the start-up
//! step — it EC-ranks the (few) cached plans under the *actual* start-up
//! distribution, which is exactly the paper's "we simply use the
//! appropriate distribution over memory sizes when checking to see which
//! candidate plan is best".

use crate::alg_c::optimize_lec_static;
use crate::error::OptError;
use lec_cost::{expected_plan_cost_static, CostModel};
use lec_plan::PlanNode;
use lec_prob::Distribution;

/// One cached compile-time plan.
#[derive(Debug, Clone)]
pub struct CachedPlan {
    /// The distribution this plan was optimized for.
    pub anticipated: Distribution,
    /// The LEC plan under that distribution.
    pub plan: PlanNode,
    /// Its expected cost under that distribution.
    pub expected_cost: f64,
}

/// A compile-time cache of LEC plans for anticipated environments.
#[derive(Debug, Clone)]
pub struct PlanCache {
    entries: Vec<CachedPlan>,
}

/// Outcome of the start-up lookup.
#[derive(Debug, Clone)]
pub struct StartupChoice {
    /// Index of the winning cache entry.
    pub entry: usize,
    /// The chosen plan.
    pub plan: PlanNode,
    /// Its expected cost under the start-up distribution.
    pub expected_cost: f64,
    /// Regret versus re-running Algorithm C at start-up (0 when the cache
    /// contains an optimal plan for the start-up distribution).
    pub regret: f64,
}

impl PlanCache {
    /// Compile time: run Algorithm C for every anticipated distribution.
    /// Duplicate plans are collapsed (distinct distributions often share
    /// their LEC plan).
    pub fn precompute(
        model: &CostModel<'_>,
        anticipated: &[Distribution],
    ) -> Result<Self, OptError> {
        if anticipated.is_empty() {
            return Err(OptError::BadParameter(
                "parametric cache needs at least one anticipated distribution",
            ));
        }
        let mut entries: Vec<CachedPlan> = Vec::with_capacity(anticipated.len());
        for dist in anticipated {
            let r = optimize_lec_static(model, dist)?;
            if !entries.iter().any(|e| e.plan == r.plan) {
                entries.push(CachedPlan {
                    anticipated: dist.clone(),
                    plan: r.plan,
                    expected_cost: r.cost,
                });
            }
        }
        Ok(PlanCache { entries })
    }

    /// Number of distinct cached plans.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the cache is empty (cannot happen post-`precompute`).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The cached entries.
    pub fn entries(&self) -> &[CachedPlan] {
        &self.entries
    }

    /// The single ranking pass both start-up entry points share: EC-rank
    /// every cached plan under `actual` and return the winner's index and
    /// expected cost.
    fn rank(&self, model: &CostModel<'_>, actual: &Distribution) -> Result<(usize, f64), OptError> {
        let mut best: Option<(usize, f64)> = None;
        for (i, e) in self.entries.iter().enumerate() {
            let ec = expected_plan_cost_static(model, &e.plan, actual);
            if best.is_none_or(|(_, b)| ec < b) {
                best = Some((i, ec));
            }
        }
        best.ok_or(OptError::NoPlanFound)
    }

    /// Start-up time: pick the cached plan of least expected cost under
    /// the actual distribution, and report the regret versus a full
    /// re-optimization.
    ///
    /// When `actual` is byte-identical (by distribution fingerprint) to
    /// one of the anticipated distributions, the cache already holds the
    /// LEC optimum for it, so the regret baseline is that entry's
    /// re-costed plan and Algorithm C is *not* re-run — the same
    /// exact-match shortcut the `lec-service` canonical keys use, applied
    /// to the paper's own §3.2 cache.
    pub fn choose(
        &self,
        model: &CostModel<'_>,
        actual: &Distribution,
    ) -> Result<StartupChoice, OptError> {
        let (entry, expected_cost) = self.rank(model, actual)?;
        let actual_fp = lec_cost::dist_fingerprint(actual);
        let anticipated = self.entries.iter().position(|e| {
            lec_cost::dist_fingerprint(&e.anticipated) == actual_fp && e.anticipated == *actual
        });
        let full_cost = match anticipated {
            // entries[k].plan is LEC-optimal under actual: its re-costed
            // EC is the optimum, no fresh search needed.
            Some(k) => expected_plan_cost_static(model, &self.entries[k].plan, actual),
            None => optimize_lec_static(model, actual)?.cost,
        };
        Ok(StartupChoice {
            entry,
            plan: self.entries[entry].plan.clone(),
            expected_cost,
            regret: (expected_cost - full_cost).max(0.0) / full_cost.max(1e-12),
        })
    }

    /// Start-up choice without computing the regret (the production path:
    /// "very little work at query execution time — a simple table lookup").
    pub fn choose_fast(
        &self,
        model: &CostModel<'_>,
        actual: &Distribution,
    ) -> Result<(usize, PlanNode, f64), OptError> {
        let (i, ec) = self.rank(model, actual)?;
        Ok((i, self.entries[i].plan.clone(), ec))
    }
}

/// A coverage family of anticipated memory distributions: point beliefs
/// plus spread beliefs at several centers — the "good coverage of what we
/// expect to encounter" of §3.2.
pub fn coverage_family(centers: &[f64], spreads: &[f64], buckets: usize) -> Vec<Distribution> {
    let mut out = Vec::new();
    for &c in centers {
        for &s in spreads {
            if let Ok(d) = lec_prob::presets::spread_family(c, s, buckets) {
                out.push(d);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{example_1_1, example_1_1_memory, three_chain};

    #[test]
    fn cache_contains_the_lec_plan_when_anticipated() {
        let (cat, q) = example_1_1();
        let model = CostModel::new(&cat, &q);
        let memory = example_1_1_memory();
        let cache = PlanCache::precompute(&model, std::slice::from_ref(&memory)).unwrap();
        let choice = cache.choose(&model, &memory).unwrap();
        assert_eq!(choice.regret, 0.0);
        assert!(crate::fixtures::is_plan2(&choice.plan));
    }

    #[test]
    fn duplicate_plans_are_collapsed() {
        let (cat, q) = three_chain();
        let model = CostModel::new(&cat, &q);
        // Identical and nearly identical distributions share an LEC plan;
        // near-identical ones might not (a cliff can sit between their
        // supports), so pin the guaranteed case: the same belief twice.
        let d1 = lec_prob::presets::spread_family(400.0, 0.5, 4).unwrap();
        let cache = PlanCache::precompute(&model, &[d1.clone(), d1.clone()]).unwrap();
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn startup_choice_is_best_among_cached() {
        let (cat, q) = three_chain();
        let model = CostModel::new(&cat, &q);
        let family = coverage_family(&[100.0, 400.0, 1600.0], &[0.0, 0.6], 5);
        let cache = PlanCache::precompute(&model, &family).unwrap();
        let actual = lec_prob::presets::spread_family(700.0, 0.4, 5).unwrap();
        let choice = cache.choose(&model, &actual).unwrap();
        for e in cache.entries() {
            let ec = expected_plan_cost_static(&model, &e.plan, &actual);
            assert!(choice.expected_cost <= ec + 1e-9);
        }
        assert!(choice.regret >= 0.0);
        let (i, plan, ec) = cache.choose_fast(&model, &actual).unwrap();
        assert_eq!(i, choice.entry);
        assert_eq!(plan, choice.plan);
        assert!((ec - choice.expected_cost).abs() < 1e-12);
    }

    #[test]
    fn wider_coverage_cannot_increase_regret() {
        let (cat, q) = three_chain();
        let model = CostModel::new(&cat, &q);
        let narrow = coverage_family(&[400.0], &[0.0], 4);
        let wide = coverage_family(&[50.0, 200.0, 400.0, 800.0, 3200.0], &[0.0, 0.5, 0.9], 4);
        let cache_n = PlanCache::precompute(&model, &narrow).unwrap();
        let cache_w = PlanCache::precompute(&model, &wide).unwrap();
        for center in [60.0, 300.0, 1000.0, 2500.0] {
            let actual = lec_prob::presets::spread_family(center, 0.7, 5).unwrap();
            let rn = cache_n.choose(&model, &actual).unwrap().regret;
            let rw = cache_w.choose(&model, &actual).unwrap().regret;
            assert!(
                rw <= rn + 1e-9,
                "center {center}: wide regret {rw} > narrow {rn}"
            );
        }
    }

    #[test]
    fn exact_match_shortcut_agrees_with_the_full_rerun() {
        // When the start-up distribution equals an anticipated one, the
        // fingerprint shortcut computes the regret against the cached
        // optimum instead of re-running Algorithm C; the reported regret
        // must match what a from-scratch rerun would say (zero, since the
        // optimum is cached).
        let (cat, q) = three_chain();
        let model = CostModel::new(&cat, &q);
        let family = coverage_family(&[100.0, 400.0, 1600.0], &[0.0, 0.6], 5);
        let cache = PlanCache::precompute(&model, &family).unwrap();
        let anticipated = family[2].clone();
        let choice = cache.choose(&model, &anticipated).unwrap();
        assert_eq!(choice.regret, 0.0, "cached optimum ⇒ zero regret");
        let rerun = optimize_lec_static(&model, &anticipated).unwrap();
        assert!((choice.expected_cost - rerun.cost).abs() / rerun.cost < 1e-9);
    }

    #[test]
    fn empty_family_is_rejected() {
        let (cat, q) = three_chain();
        let model = CostModel::new(&cat, &q);
        assert!(matches!(
            PlanCache::precompute(&model, &[]),
            Err(OptError::BadParameter(_))
        ));
    }
}
