//! Shared System R dynamic-programming machinery.
//!
//! One DP driver serves the LSC baseline (Theorem 2.1), static Algorithm C
//! (Theorem 3.3) and dynamic Algorithm C (Theorem 3.4): they differ *only*
//! in how a join/sort step is costed, which is abstracted as
//! [`PhaseCoster`].  The driver walks the paper's dag — "the nodes at depth
//! k are labeled by the subsets of {1,…,n} of cardinality k" — keeping, per
//! subset and per interesting order property, the cheapest left-deep plan.

use crate::error::OptError;
use lec_cost::{AccessPath, CostModel};
use lec_plan::{JoinMethod, OrderProperty, PlanNode, Query, TableSet};
use lec_prob::{Distribution, MarkovChain, ProbError};
use std::collections::HashMap;

/// Strategy for costing the memory-dependent operators.
///
/// `phase` is the 0-based execution phase index of §3.5 (first join =
/// phase 0; a root sort after `n-1` joins is phase `n-1`).  Static costers
/// ignore it; the dynamic coster uses it to select the evolved memory
/// distribution for that phase.
pub trait PhaseCoster {
    /// Cost of joining inputs of `outer`/`inner` pages at `phase`.
    fn join_cost(
        &self,
        model: &CostModel<'_>,
        phase: usize,
        method: JoinMethod,
        outer: f64,
        inner: f64,
    ) -> f64;

    /// Cost of sorting `pages` at `phase`.
    fn sort_cost(&self, model: &CostModel<'_>, phase: usize, pages: f64) -> f64;
}

/// Classical point-parameter costing (the LSC baseline): memory is assumed
/// to be exactly `m` in every phase.
pub struct PointCoster {
    /// The assumed memory value.
    pub memory: f64,
}

impl PhaseCoster for PointCoster {
    fn join_cost(
        &self,
        model: &CostModel<'_>,
        _phase: usize,
        method: JoinMethod,
        outer: f64,
        inner: f64,
    ) -> f64 {
        model.join_cost(method, outer, inner, self.memory)
    }

    fn sort_cost(&self, model: &CostModel<'_>, _phase: usize, pages: f64) -> f64 {
        model.sort_cost(pages, self.memory)
    }
}

/// Expected-cost costing under a static memory distribution (Algorithm C):
/// "this computation requires b evaluations of the cost formula" (§3.4).
pub struct StaticExpectationCoster {
    /// The memory distribution.
    pub memory: Distribution,
}

impl PhaseCoster for StaticExpectationCoster {
    fn join_cost(
        &self,
        model: &CostModel<'_>,
        _phase: usize,
        method: JoinMethod,
        outer: f64,
        inner: f64,
    ) -> f64 {
        self.memory.expect(|m| model.join_cost(method, outer, inner, m))
    }

    fn sort_cost(&self, model: &CostModel<'_>, _phase: usize, pages: f64) -> f64 {
        self.memory.expect(|m| model.sort_cost(pages, m))
    }
}

/// Per-phase expected-cost costing for dynamically changing memory (§3.5):
/// phase `k` is costed under the initial distribution evolved `k` steps
/// through the Markov chain.
pub struct DynamicExpectationCoster {
    dists: Vec<Distribution>,
}

impl DynamicExpectationCoster {
    /// Precompute the evolved distribution for each of `n_phases` phases.
    pub fn new(
        initial: &Distribution,
        chain: &MarkovChain,
        n_phases: usize,
    ) -> Result<Self, ProbError> {
        let mut dists = Vec::with_capacity(n_phases.max(1));
        let mut cur = initial.clone();
        for _ in 0..n_phases.max(1) {
            dists.push(cur.clone());
            cur = chain.evolve_dist(&cur)?;
        }
        Ok(DynamicExpectationCoster { dists })
    }

    fn dist(&self, phase: usize) -> &Distribution {
        // A plan can have at most n_phases phases; clamp defensively.
        &self.dists[phase.min(self.dists.len() - 1)]
    }
}

impl PhaseCoster for DynamicExpectationCoster {
    fn join_cost(
        &self,
        model: &CostModel<'_>,
        phase: usize,
        method: JoinMethod,
        outer: f64,
        inner: f64,
    ) -> f64 {
        self.dist(phase).expect(|m| model.join_cost(method, outer, inner, m))
    }

    fn sort_cost(&self, model: &CostModel<'_>, phase: usize, pages: f64) -> f64 {
        self.dist(phase).expect(|m| model.sort_cost(pages, m))
    }
}

/// A DP table entry: the cheapest known plan for one (subset, order).
#[derive(Debug, Clone)]
pub struct DpEntry {
    /// The plan.
    pub plan: PlanNode,
    /// Its cost under the active coster.
    pub cost: f64,
    /// Point-estimated output size in pages.
    pub pages: f64,
    /// Output order property.
    pub order: OrderProperty,
}

/// `a` can substitute for `b`: same order, or `b` needs no order.
fn covers(a: OrderProperty, b: OrderProperty) -> bool {
    a == b || b == OrderProperty::None
}

/// An entry that can participate in domination pruning.
pub trait Rankable {
    /// Cost under the active objective.
    fn rank_cost(&self) -> f64;
    /// Output order property.
    fn rank_order(&self) -> OrderProperty;
}

impl Rankable for DpEntry {
    fn rank_cost(&self) -> f64 {
        self.cost
    }
    fn rank_order(&self) -> OrderProperty {
        self.order
    }
}

/// Insert with domination pruning: keep an entry only if no other entry
/// with a covering order is at most as expensive.
pub fn insert_entry<T: Rankable>(entries: &mut Vec<T>, e: T) {
    for f in entries.iter() {
        if covers(f.rank_order(), e.rank_order()) && f.rank_cost() <= e.rank_cost() {
            return;
        }
    }
    entries.retain(|f| {
        !(covers(e.rank_order(), f.rank_order()) && e.rank_cost() <= f.rank_cost())
    });
    entries.push(e);
}

/// Search statistics accumulated by one DP run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DpStats {
    /// DAG nodes (subsets) populated.
    pub nodes: usize,
    /// Join candidates generated (subset × j × outer-entry × inner-entry ×
    /// method).
    pub candidates: u64,
    /// Cost-formula evaluations (from the model's counter).
    pub evals: u64,
}

/// Result of one DP run.
#[derive(Debug, Clone)]
pub struct DpResult {
    /// The winning plan (root sort enforced if the query requires order).
    pub plan: PlanNode,
    /// Its cost under the active coster.
    pub cost: f64,
    /// Statistics.
    pub stats: DpStats,
}

/// Build the depth-1 entries (access paths) for one table.
pub fn access_entries(model: &CostModel<'_>, idx: usize) -> Vec<DpEntry> {
    let mut entries = Vec::new();
    for path in model.access_paths(idx) {
        let plan = match path {
            AccessPath::SeqScan => PlanNode::SeqScan { table: idx },
            AccessPath::IndexScan => PlanNode::IndexScan { table: idx },
        };
        let order = lec_cost::output_order(model, &plan);
        insert_entry(
            &mut entries,
            DpEntry {
                cost: model.access_cost(path, idx),
                pages: model.base_pages(idx),
                order,
                plan,
            },
        );
    }
    entries
}

/// The order property of joining `outer_entry` with base table `j` using
/// `method` — the same rules as `lec_cost::output_order`, computed
/// incrementally.
pub fn join_output_order(
    model: &CostModel<'_>,
    outer_set: TableSet,
    outer_order: OrderProperty,
    j: usize,
    method: JoinMethod,
) -> OrderProperty {
    match method {
        JoinMethod::SortMerge => {
            let crossing = model.query().joins_connecting(outer_set, j);
            match crossing.first() {
                Some(&i) => model
                    .equivalences()
                    .sorted_on(model.query().joins[i].left),
                None => OrderProperty::None,
            }
        }
        JoinMethod::PageNestedLoop => outer_order,
        JoinMethod::GraceHash | JoinMethod::BlockNestedLoop => OrderProperty::None,
    }
}

/// Run the System R DP under the given coster and return the best plan for
/// the whole query, enforcing any required output order with a root sort.
pub fn run_dp(
    model: &CostModel<'_>,
    coster: &dyn PhaseCoster,
) -> Result<DpResult, OptError> {
    let query: &Query = model.query();
    let n = query.n_tables();
    if n == 0 {
        return Err(OptError::EmptyQuery);
    }
    model.reset_evals();
    let mut stats = DpStats::default();
    let mut table: HashMap<TableSet, Vec<DpEntry>> = HashMap::new();

    // Depth 1: access paths.
    for idx in 0..n {
        let entries = access_entries(model, idx);
        stats.nodes += 1;
        table.insert(TableSet::singleton(idx), entries);
    }

    // Depths 2..n.
    for k in 2..=n {
        for set in TableSet::subsets_of_size(n, k) {
            let mut entries: Vec<DpEntry> = Vec::new();
            for j in set.iter() {
                let sj = set.without(j);
                if !query.is_connected_to(sj, j) {
                    continue; // avoid cross products
                }
                let Some(outer_entries) = table.get(&sj) else { continue };
                let inner_entries = table
                    .get(&TableSet::singleton(j))
                    .expect("depth-1 entries exist for every table");
                let sel = model.join_selectivity(sj, j);
                let phase = k - 2; // joining the k-th relation is phase k-2
                let mut new_entries: Vec<DpEntry> = Vec::new();
                for outer in outer_entries {
                    for inner in inner_entries {
                        for method in JoinMethod::ALL {
                            stats.candidates += 1;
                            let join_cost = coster.join_cost(
                                model,
                                phase,
                                method,
                                outer.pages,
                                inner.pages,
                            );
                            let cost = outer.cost + inner.cost + join_cost;
                            let order = join_output_order(
                                model,
                                sj,
                                outer.order,
                                j,
                                method,
                            );
                            let pages = model.join_output_pages(
                                outer.pages,
                                inner.pages,
                                sel,
                            );
                            let plan = PlanNode::join(
                                method,
                                outer.plan.clone(),
                                inner.plan.clone(),
                            );
                            insert_entry(
                                &mut new_entries,
                                DpEntry { plan, cost, pages, order },
                            );
                        }
                    }
                }
                for e in new_entries {
                    insert_entry(&mut entries, e);
                }
            }
            if !entries.is_empty() {
                stats.nodes += 1;
                table.insert(set, entries);
            }
        }
    }

    let root_entries = table
        .remove(&TableSet::full(n))
        .ok_or(OptError::NoPlanFound)?;
    let result = finalize_root(model, coster, root_entries, n)?;
    stats.evals = model.evals();
    Ok(DpResult { plan: result.0, cost: result.1, stats })
}

/// Enforce the required order at the root and pick the cheapest entry.
fn finalize_root(
    model: &CostModel<'_>,
    coster: &dyn PhaseCoster,
    entries: Vec<DpEntry>,
    n: usize,
) -> Result<(PlanNode, f64), OptError> {
    let query = model.query();
    let eq = model.equivalences();
    let sort_phase = n - 1; // after n-1 joins
    let mut best: Option<(PlanNode, f64)> = None;
    for e in entries {
        let (plan, cost) = match query.required_order {
            Some(want) if !eq.satisfies(e.order, want) => {
                let sort_cost = coster.sort_cost(model, sort_phase, e.pages);
                (PlanNode::sort(e.plan, want), e.cost + sort_cost)
            }
            _ => (e.plan, e.cost),
        };
        if best.as_ref().is_none_or(|(_, c)| cost < *c) {
            best = Some((plan, cost));
        }
    }
    best.ok_or(OptError::NoPlanFound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lec_plan::ColumnRef;

    fn order(c: Option<(usize, usize)>) -> OrderProperty {
        match c {
            Some((t, col)) => OrderProperty::Sorted(ColumnRef::new(t, col)),
            None => OrderProperty::None,
        }
    }

    fn entry(cost: f64, ord: OrderProperty) -> DpEntry {
        DpEntry {
            plan: PlanNode::SeqScan { table: 0 },
            cost,
            pages: 10.0,
            order: ord,
        }
    }

    #[test]
    fn cheaper_same_order_replaces() {
        let mut v = vec![entry(10.0, order(None))];
        insert_entry(&mut v, entry(5.0, order(None)));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].cost, 5.0);
    }

    #[test]
    fn more_expensive_same_order_is_dropped() {
        let mut v = vec![entry(5.0, order(None))];
        insert_entry(&mut v, entry(10.0, order(None)));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].cost, 5.0);
    }

    #[test]
    fn sorted_entry_dominates_equal_cost_unsorted() {
        let mut v = vec![entry(5.0, order(None))];
        insert_entry(&mut v, entry(5.0, order(Some((0, 0)))));
        // The sorted entry covers the unsorted one at equal cost.
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].order, order(Some((0, 0))));
    }

    #[test]
    fn expensive_sorted_entry_coexists_with_cheap_unsorted() {
        let mut v = vec![entry(5.0, order(None))];
        insert_entry(&mut v, entry(8.0, order(Some((0, 0)))));
        assert_eq!(v.len(), 2, "an interesting order justifies extra cost");
    }

    #[test]
    fn unsorted_never_dominates_sorted() {
        let mut v = vec![entry(8.0, order(Some((0, 0))))];
        insert_entry(&mut v, entry(5.0, order(None)));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn different_sort_orders_coexist() {
        let mut v = vec![entry(5.0, order(Some((0, 0))))];
        insert_entry(&mut v, entry(5.0, order(Some((1, 1)))));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn cheap_sorted_kills_expensive_everything() {
        let mut v = vec![
            entry(9.0, order(None)),
            entry(12.0, order(Some((0, 0)))),
            entry(7.0, order(Some((1, 1)))),
        ];
        insert_entry(&mut v, entry(3.0, order(Some((0, 0)))));
        // Kills the unsorted 9.0 and the same-order 12.0; the (1,1) order
        // at 7.0 survives (incomparable).
        assert_eq!(v.len(), 2);
        assert!(v.iter().any(|e| e.cost == 3.0));
        assert!(v.iter().any(|e| e.cost == 7.0));
    }
}
