//! Algorithm A: a standard optimizer as a black box (§3.2).
//!
//! "For each value m_i of the memory parameter, we run the optimizer under
//! the assumption that m_i is the actual amount of memory available.  This
//! gives us b candidate plans.  We then compute the expected cost of each
//! candidate, and choose the one with least expected cost."
//!
//! Policy over the engine: one [`crate::search::KeepBestPolicy`] +
//! point-coster run per memory representative (via
//! [`crate::lsc::optimize_lsc`]), then EC ranking of the candidates.

use crate::error::OptError;
use crate::lsc::optimize_lsc_with;
use crate::search::{SearchConfig, SearchExtras, SearchOutcome, SearchStats};
use lec_cost::{expected_plan_cost_static, CostModel};
use lec_plan::PlanNode;
use lec_prob::Distribution;

/// One candidate produced by Algorithm A: the LSC plan for memory `m`.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The memory representative the optimizer was run at.
    pub memory: f64,
    /// The plan it produced.
    pub plan: PlanNode,
    /// Its cost at `memory` (what the black-box optimizer reported).
    pub point_cost: f64,
    /// Its expected cost under the full distribution.
    pub expected_cost: f64,
}

/// Run Algorithm A.
///
/// The candidate memory values are the distribution's bucket
/// representatives; per the paper's "without loss of generality" remark,
/// the mean is added when not already present, which guarantees
/// `EC(result) ≤ EC(LSC-at-mean plan)`.  The outcome's extras carry the
/// per-representative [`Candidate`] list.
pub fn optimize_alg_a(
    model: &CostModel<'_>,
    memory: &Distribution,
) -> Result<SearchOutcome, OptError> {
    optimize_alg_a_with(model, memory, &SearchConfig::default())
}

/// [`optimize_alg_a`] under an explicit [`SearchConfig`]: each black-box
/// per-representative LSC run fans its DP levels out across
/// `config.threads`.
pub fn optimize_alg_a_with(
    model: &CostModel<'_>,
    memory: &Distribution,
    config: &SearchConfig,
) -> Result<SearchOutcome, OptError> {
    let mut reps: Vec<f64> = memory.support().to_vec();
    let mean = memory.mean();
    if !reps.iter().any(|&m| (m - mean).abs() < 1e-9) {
        reps.push(mean);
    }

    let mut stats = SearchStats::default();
    let mut candidates = Vec::with_capacity(reps.len());
    for m in reps {
        let r = optimize_lsc_with(model, m, config)?;
        stats.absorb(&r.stats);
        candidates.push(Candidate {
            memory: m,
            plan: r.plan,
            point_cost: r.cost,
            expected_cost: 0.0, // filled below, under the eval counter
        });
    }

    // EC-rank the candidates; the replay evaluations count toward the
    // uniform stats like every other cost-formula call.
    model.reset_evals();
    for c in &mut candidates {
        c.expected_cost = expected_plan_cost_static(model, &c.plan, memory);
    }
    stats.evals += model.evals();

    let best = candidates
        .iter()
        .min_by(|a, b| a.expected_cost.total_cmp(&b.expected_cost))
        .ok_or(OptError::NoPlanFound)?;
    Ok(SearchOutcome {
        plan: best.plan.clone(),
        cost: best.expected_cost,
        stats,
        extras: SearchExtras::Candidates(candidates.clone()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg_c::optimize_lec_static;
    use crate::fixtures::{example_1_1, example_1_1_memory, three_chain};
    use crate::lsc::{optimize_lsc_from_dist, PointEstimate};

    #[test]
    fn algorithm_a_recovers_plan2_in_example_1_1() {
        // The candidate from m=700 is the Grace plan, whose EC beats the
        // SM plan produced at m=2000 — Algorithm A suffices here.
        let (cat, q) = example_1_1();
        let model = CostModel::new(&cat, &q);
        let memory = example_1_1_memory();
        let r = optimize_alg_a(&model, &memory).unwrap();
        assert!(crate::fixtures::is_plan2(&r.plan), "{}", r.plan.compact());
        // Candidates: 700, 2000, and the mean 1740.
        assert_eq!(r.candidates().unwrap().len(), 3);
        assert!((r.cost - 4_209_000.0).abs() < 1.0);
    }

    #[test]
    fn never_worse_than_lsc_at_mean_or_mode() {
        let (cat, q) = three_chain();
        let model = CostModel::new(&cat, &q);
        for spread in [0.0, 0.4, 0.9] {
            let memory = lec_prob::presets::spread_family(300.0, spread, 6).unwrap();
            let a = optimize_alg_a(&model, &memory).unwrap();
            for est in [PointEstimate::Mean, PointEstimate::Mode] {
                let lsc = optimize_lsc_from_dist(&model, &memory, est).unwrap();
                let lsc_ec = expected_plan_cost_static(&model, &lsc.plan, &memory);
                assert!(a.cost <= lsc_ec + 1e-6);
            }
        }
    }

    #[test]
    fn never_better_than_algorithm_c() {
        // Algorithm C computes the true LEC plan; A only approximates it.
        let (cat, q) = three_chain();
        let model = CostModel::new(&cat, &q);
        for spread in [0.2, 0.5, 0.8] {
            for n in [2, 4, 8] {
                let memory = lec_prob::presets::spread_family(350.0, spread, n).unwrap();
                let a = optimize_alg_a(&model, &memory).unwrap();
                let c = optimize_lec_static(&model, &memory).unwrap();
                assert!(
                    c.cost <= a.cost + 1e-6,
                    "spread {spread} n {n}: C {} vs A {}",
                    c.cost,
                    a.cost
                );
            }
        }
    }

    #[test]
    fn candidate_expected_costs_are_replayable() {
        let (cat, q) = example_1_1();
        let model = CostModel::new(&cat, &q);
        let memory = example_1_1_memory();
        let r = optimize_alg_a(&model, &memory).unwrap();
        for c in r.candidates().unwrap() {
            let replay = expected_plan_cost_static(&model, &c.plan, &memory);
            assert!((c.expected_cost - replay).abs() < 1e-9);
            let point = lec_cost::plan_cost_at(&model, &c.plan, c.memory);
            assert!((c.point_cost - point).abs() < 1e-9);
        }
    }

    #[test]
    fn point_distribution_degenerates_to_lsc() {
        let (cat, q) = three_chain();
        let model = CostModel::new(&cat, &q);
        let memory = Distribution::point(800.0);
        let a = optimize_alg_a(&model, &memory).unwrap();
        let lsc = crate::lsc::optimize_lsc(&model, 800.0).unwrap();
        assert!((a.cost - lsc.cost).abs() < 1e-9);
        assert_eq!(a.candidates().unwrap().len(), 1);
    }
}
