//! Algorithm C: the LEC plan by dynamic programming on expected cost
//! (§3.4, Theorem 3.3), including the §3.5 dynamic-memory variant
//! (Theorem 3.4).
//!
//! "We now provide a generic modification of the basic System R query
//! optimizer that can directly compute the LEC plan, merging the candidate
//! generation and costing phases. ... We retain the plan for S with the
//! least expected total cost, discarding all the other candidates."
//!
//! Policy over the engine: [`KeepBestPolicy`] with a
//! [`StaticExpectationCoster`] (or [`DynamicExpectationCoster`] for §3.5),
//! over the left-deep shape.

use crate::error::OptError;
use crate::search::{
    run_search_with, DynamicExpectationCoster, KeepBestPolicy, PlanShape, SearchConfig,
    SearchOutcome, StaticExpectationCoster,
};
use lec_cost::CostModel;
use lec_prob::{Distribution, MarkovChain};

/// Compute the LEC left-deep plan under a static memory distribution.
///
/// If the distribution has `b` buckets, every *distinct* join candidate is
/// costed with `b` evaluations of the cost formula — the paper's "b times
/// the cost of the standard computation using a single memory size"; the
/// shared evaluation cache answers repeats across entry pairs and dag
/// levels without re-evaluating.
pub fn optimize_lec_static(
    model: &CostModel<'_>,
    memory: &Distribution,
) -> Result<SearchOutcome, OptError> {
    optimize_lec_static_with(model, memory, &SearchConfig::default())
}

/// [`optimize_lec_static`] under an explicit [`SearchConfig`]: the DP
/// levels fan out across `config.threads` when the query is wide enough;
/// otherwise each candidate's `b`-bucket expectation may fan out instead
/// once `b` crosses the bucket threshold (the axes are exclusive — see
/// [`SearchConfig::bucket_parallelism_for`]).
pub fn optimize_lec_static_with(
    model: &CostModel<'_>,
    memory: &Distribution,
    config: &SearchConfig,
) -> Result<SearchOutcome, OptError> {
    let coster = StaticExpectationCoster::new(memory)
        .with_parallelism(config.bucket_parallelism_for(model.query()));
    let mut policy = KeepBestPolicy::new(coster);
    let run = run_search_with(model, PlanShape::LeftDeep, &mut policy, config)?;
    let (best, stats) = run.into_best();
    Ok(SearchOutcome::new(best.plan, best.cost, stats))
}

/// Compute the LEC left-deep plan when memory changes between phases
/// according to `chain`, starting from `initial` (§3.5).
///
/// "We simply associate the initial distribution with the root of the dag,
/// and use the transition probabilities to compute the distribution
/// associated with each node.  We can then apply the algorithm without
/// change."
pub fn optimize_lec_dynamic(
    model: &CostModel<'_>,
    initial: &Distribution,
    chain: &MarkovChain,
) -> Result<SearchOutcome, OptError> {
    optimize_lec_dynamic_with(model, initial, chain, &SearchConfig::default())
}

/// [`optimize_lec_dynamic`] under an explicit [`SearchConfig`].
pub fn optimize_lec_dynamic_with(
    model: &CostModel<'_>,
    initial: &Distribution,
    chain: &MarkovChain,
    config: &SearchConfig,
) -> Result<SearchOutcome, OptError> {
    let n = model.query().n_tables();
    // n-1 join phases plus a possible root sort phase.
    let coster = DynamicExpectationCoster::new(initial, chain, n.max(1))?
        .with_parallelism(config.bucket_parallelism_for(model.query()));
    let mut policy = KeepBestPolicy::new(coster);
    let run = run_search_with(model, PlanShape::LeftDeep, &mut policy, config)?;
    let (best, stats) = run.into_best();
    Ok(SearchOutcome::new(best.plan, best.cost, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{example_1_1, example_1_1_memory, three_chain};
    use crate::lsc::optimize_lsc;

    #[test]
    fn algorithm_c_picks_plan2_in_example_1_1() {
        let (cat, q) = example_1_1();
        let model = CostModel::new(&cat, &q);
        let memory = example_1_1_memory();
        let r = optimize_lec_static(&model, &memory).unwrap();
        assert!(
            crate::fixtures::is_plan2(&r.plan),
            "the paper's Plan 2, got {}",
            r.plan.compact()
        );
        // EC = scans + hash passes + sort: 1.4e6 + 2.8e6 + 9000.
        assert!((r.cost - 4_209_000.0).abs() < 1.0);
    }

    #[test]
    fn lec_cost_is_never_worse_than_lsc_plan_expected_cost() {
        // Definitional: EC(LEC plan) <= EC(LSC plan) under the same dist.
        let (cat, q) = three_chain();
        let model = CostModel::new(&cat, &q);
        for spread in [0.0, 0.3, 0.8] {
            let memory = lec_prob::presets::spread_family(400.0, spread, 5).unwrap();
            let lec = optimize_lec_static(&model, &memory).unwrap();
            let lsc = optimize_lsc(&model, memory.mean()).unwrap();
            let lsc_ec = lec_cost::expected_plan_cost_static(&model, &lsc.plan, &memory);
            assert!(
                lec.cost <= lsc_ec + 1e-6,
                "spread {spread}: LEC {} vs LSC-EC {lsc_ec}",
                lec.cost
            );
        }
    }

    #[test]
    fn point_distribution_reduces_to_lsc() {
        // "the standard approach ... the special case where there is only
        // one bucket" — with a point mass, Algorithm C must return a plan
        // of identical cost to the LSC run at that value.
        let (cat, q) = three_chain();
        let model = CostModel::new(&cat, &q);
        for m in [40.0, 300.0, 2500.0, 60_000.0] {
            let lec = optimize_lec_static(&model, &Distribution::point(m)).unwrap();
            let lsc = optimize_lsc(&model, m).unwrap();
            assert!(
                (lec.cost - lsc.cost).abs() < 1e-9,
                "m={m}: {} vs {}",
                lec.cost,
                lsc.cost
            );
        }
    }

    #[test]
    fn reported_cost_matches_expected_cost_replay() {
        let (cat, q) = three_chain();
        let model = CostModel::new(&cat, &q);
        let memory = lec_prob::presets::spread_family(500.0, 0.7, 4).unwrap();
        let r = optimize_lec_static(&model, &memory).unwrap();
        let replay = lec_cost::expected_plan_cost_static(&model, &r.plan, &memory);
        assert!((r.cost - replay).abs() < 1e-6);
    }

    #[test]
    fn cache_does_not_change_the_lec_answer() {
        let (cat, q) = crate::fixtures::scaling_chain(5);
        let model = CostModel::new(&cat, &q);
        let memory = lec_prob::presets::spread_family(500.0, 0.7, 6).unwrap();
        let cached = optimize_lec_static(&model, &memory).unwrap();
        model.set_eval_cache(false);
        let raw = optimize_lec_static(&model, &memory).unwrap();
        model.set_eval_cache(true);
        assert_eq!(cached.plan, raw.plan);
        assert_eq!(cached.cost, raw.cost);
        assert!(cached.stats.evals < raw.stats.evals);
    }

    #[test]
    fn dynamic_with_identity_chain_equals_static() {
        let (cat, q) = three_chain();
        let model = CostModel::new(&cat, &q);
        let memory = Distribution::bimodal(100.0, 1000.0, 0.6).unwrap();
        let chain = MarkovChain::identity(vec![100.0, 1000.0]).unwrap();
        let stat = optimize_lec_static(&model, &memory).unwrap();
        let dynm = optimize_lec_dynamic(&model, &memory, &chain).unwrap();
        assert!((stat.cost - dynm.cost).abs() < 1e-9);
        assert_eq!(stat.plan, dynm.plan);
    }

    #[test]
    fn dynamic_cost_matches_dynamic_replay() {
        let (cat, q) = three_chain();
        let model = CostModel::new(&cat, &q);
        let states = vec![100.0, 400.0, 1600.0];
        let chain = MarkovChain::birth_death(states.clone(), 0.3, 0.1).unwrap();
        let initial = Distribution::from_pairs([(400.0, 1.0)]).unwrap();
        let r = optimize_lec_dynamic(&model, &initial, &chain).unwrap();
        let replay =
            lec_cost::expected_plan_cost_dynamic(&model, &r.plan, &initial, &chain).unwrap();
        assert!((r.cost - replay).abs() < 1e-6, "{} vs {replay}", r.cost);
    }

    #[test]
    fn dynamic_drift_can_change_the_plan() {
        // Start at high memory but collapse to very low memory after the
        // first phase: a plan whose later phases are memory-hungry loses.
        let (cat, q) = example_1_1();
        let model = CostModel::new(&cat, &q);
        // With 2 tables there is 1 join phase + 1 sort phase; the sort
        // phase sees the post-collapse distribution.
        let chain =
            MarkovChain::new(vec![10.0, 2000.0], vec![vec![1.0, 0.0], vec![1.0, 0.0]]).unwrap();
        let initial = Distribution::point(2000.0);
        let dynm = optimize_lec_dynamic(&model, &initial, &chain).unwrap();
        let stat = optimize_lec_static(&model, &initial).unwrap();
        // Statically, 2000 pages favours the bare SM plan (Plan 1).
        assert!(
            crate::fixtures::is_plan1(&stat.plan),
            "{}",
            stat.plan.compact()
        );
        // Dynamically the sort (if any) runs at 10 pages: ∛3000≈14.4 > 10
        // → 7·3000 = 21000 extra for the hash plan, SM still wins; but the
        // *costs* must reflect the drifted phases, so dynamic == static
        // here only in plan, not in general cost for multi-phase plans.
        assert!(
            crate::fixtures::is_plan1(&dynm.plan),
            "{}",
            dynm.plan.compact()
        );
        assert!(
            (dynm.cost - stat.cost).abs() < 1e-9,
            "single join phase at 2000"
        );
    }
}
