//! # lec-core — Least Expected Cost query optimization
//!
//! Faithful implementation of the optimization algorithms of Chu, Halpern &
//! Seshadri, *"Least Expected Cost Query Optimization: An Exercise in
//! Utility"* (PODS 1999).
//!
//! ## Architecture: one engine, many policies
//!
//! The paper's central observation is that LEC optimization is "a generic
//! modification of the basic System R optimizer".  This crate is built
//! around that observation: a single dynamic-programming engine
//! ([`search`]) walks the subset dag, and every optimizer mode is a
//! *policy* plugged into it.  The engine is parameterized along two axes:
//!
//! * **plan shape** ([`search::PlanShape`]): left-deep enumeration (§2.2)
//!   or bushy enumeration over all connected 2-partitions (§4);
//! * **candidate policy** ([`search::CandidatePolicy`]): what each dag
//!   node retains and how candidates are costed.
//!
//! The optimizer modules are thin policy definitions over that engine:
//!
//! * [`lsc`] — keep-1 at a point parameter value (Theorem 2.1, the
//!   "least specific cost" plan);
//! * [`alg_a`] — Algorithm A (§3.2): the point policy run once per
//!   memory bucket, candidates ranked by expected cost;
//! * [`alg_b`] — Algorithm B (§3.3): top-`c` plans per (subset, order)
//!   with the Proposition 3.1 frontier enumeration;
//! * [`alg_c`] — Algorithm C (§3.4/§3.5): keep-1 on expected cost, under
//!   static or Markov-evolving memory (Theorems 3.3 and 3.4);
//! * [`alg_d`] — Algorithm D (§3.6): per-node distribution bookkeeping
//!   (Figure 1) with §3.6.3 rebucketing;
//! * [`bushy`] — Algorithm C's policy under the bushy shape (the §4
//!   extension);
//! * [`exhaustive`] — the keep-all policy: brute-force ground truth used
//!   to verify the optimality theorems;
//! * [`randomized`] — move-based II/SA searches \[Swa89, IK90\] with the
//!   EC objective (not DP-based, but reporting the same uniform stats);
//! * [`bucketing`] — the §3.7 strategies for partitioning the parameter
//!   space (equal-width, equi-depth, level-set aware);
//! * [`optimizer`] — a single facade ([`Optimizer`]) over all modes;
//! * [`fixtures`] — the paper's Example 1.1, ready to run.
//!
//! Every mode returns the same [`SearchOutcome`] — plan, objective value,
//! uniform [`SearchStats`] and optional mode-specific extras — so callers
//! never destructure per-mode result types.  All memory-dependent
//! evaluations flow through `lec-cost`'s memoized evaluation cache keyed
//! by `(table set, operator, memory bucket)`; [`SearchStats::evals`]
//! counts only the formula evaluations actually performed, making the
//! paper's "factor b" overhead claims — and the cache's savings —
//! directly observable.
//!
//! ## Threading model
//!
//! The engine runs serial or parallel under one [`SearchConfig`]
//! (`threads` defaults to the machine's available parallelism; `1` forces
//! the serial driver).  Parallelism is **level-barrier fan-out**: the
//! subsets at one dag depth are independent, so a pool of scoped worker
//! threads — spawned once per search — steals them off a shared cursor,
//! combines each wholly on one thread in serial order, and merges results
//! deterministically at the depth barrier.  `lec-cost`'s evaluation cache
//! is sharded across per-tier mutexes held for the duration of a miss, so
//! every distinct evaluation runs exactly once regardless of schedule.
//! Together this makes parallel outcomes *byte-identical* to serial ones
//! — plans, cost bits, `evals`, `cache_hits` — property-tested for every
//! policy in `tests/parallel_parity.rs`.  The fan-out gate is
//! *work-aware*: it counts connected subsets per level (an 8-table chain
//! has 70 subsets but only 5 working ones at its widest level), so
//! sparse topologies stay serial instead of paying pool overhead.  For
//! searches the level fan-out cannot help (narrow but deep), the
//! expectation costers instead fan one candidate's bucket evaluations
//! out ([`lec_cost::BucketParallelism`]) once it needs enough formula
//! work — Algorithm D's block nested-loop triple product being the
//! realistic beneficiary; the two axes are deliberately exclusive so
//! worker counts never multiply.  Every mode wrapper has a `*_with(..,
//! &SearchConfig)` variant; a worker panic surfaces as
//! [`OptError::WorkerPanicked`], never a deadlock.  Worker threads come
//! from a pluggable [`search::WorkerPool`] (`SearchConfig::pool`): the
//! default spawns a scoped pool per search, while a
//! [`search::PersistentPool`] of long-lived parked threads (shared
//! across searches, as `lec-service`'s `PlanServer` does) cuts dispatch
//! from ~50µs to a few µs so even sub-100µs queries fan out — with
//! outcomes byte-identical either way.
//!
//! The quickest way in:
//!
//! ```
//! use lec_core::{fixtures, Mode, Optimizer, PointEstimate};
//!
//! let (catalog, query) = fixtures::example_1_1();
//! let memory = fixtures::example_1_1_memory(); // 2000@80% / 700@20%
//! let opt = Optimizer::new(&catalog, memory);
//!
//! let lsc = opt.optimize(&query, &Mode::Lsc(PointEstimate::Mode)).unwrap();
//! let lec = opt.optimize(&query, &Mode::AlgorithmC).unwrap();
//! assert!(fixtures::is_plan1(&lsc.plan));   // the paper's Plan 1: bare sort-merge
//! assert!(fixtures::is_plan2(&lec.plan));   // the paper's Plan 2: Grace hash + sort
//! assert!(opt.expected_cost_of(&query, &lec.plan)
//!       < opt.expected_cost_of(&query, &lsc.plan));
//! ```

pub mod alg_a;
pub mod alg_b;
pub mod alg_c;
pub mod alg_d;
pub mod bucketing;
pub mod bushy;
pub mod error;
pub mod exhaustive;
pub mod fixtures;
pub mod lsc;
pub mod optimizer;
pub mod parametric;
pub mod randomized;
pub mod search;

pub use alg_a::{optimize_alg_a, optimize_alg_a_with, Candidate};
pub use alg_b::{optimize_alg_b, optimize_alg_b_with};
pub use alg_c::{
    optimize_lec_dynamic, optimize_lec_dynamic_with, optimize_lec_static, optimize_lec_static_with,
};
pub use alg_d::{optimize_alg_d, optimize_alg_d_with, AlgDConfig};
pub use bucketing::{bucketize, query_memory_breakpoints, BucketStrategy};
pub use bushy::{optimize_lec_bushy, optimize_lec_bushy_with};
pub use error::OptError;
pub use exhaustive::{
    exhaustive_best, exhaustive_best_shaped, exhaustive_best_shaped_with, exhaustive_best_with,
    Objective, MAX_EXHAUSTIVE_PLANS, MAX_EXHAUSTIVE_TABLES,
};
pub use lsc::{
    optimize_lsc, optimize_lsc_from_dist, optimize_lsc_from_dist_with, optimize_lsc_with,
    PointEstimate,
};
pub use optimizer::{Mode, Optimized, Optimizer};
pub use parametric::{coverage_family, CachedPlan, PlanCache, StartupChoice};
pub use randomized::{iterative_improvement, simulated_annealing, RandomizedConfig};
pub use search::{
    run_search, run_search_with, CandidatePolicy, FrontierStats, MemoStats, PlanShape,
    SearchConfig, SearchExtras, SearchOutcome, SearchStats, SubplanMemo,
};
