//! # lec-core — Least Expected Cost query optimization
//!
//! Faithful implementation of the optimization algorithms of Chu, Halpern &
//! Seshadri, *"Least Expected Cost Query Optimization: An Exercise in
//! Utility"* (PODS 1999):
//!
//! * [`lsc`] — the classical System R baseline at a point parameter value
//!   (Theorem 2.1, the "least specific cost" plan);
//! * [`alg_a`] — Algorithm A (§3.2): a standard optimizer run once per
//!   memory bucket, candidates ranked by expected cost;
//! * [`alg_b`] — Algorithm B (§3.3): top-`c` plans per DP node with the
//!   Proposition 3.1 frontier enumeration;
//! * [`alg_c`] — Algorithm C (§3.4/§3.5): the exact LEC plan by dynamic
//!   programming on expected cost, under static or Markov-evolving memory
//!   (Theorems 3.3 and 3.4);
//! * [`alg_d`] — Algorithm D (§3.6): multiple uncertain parameters, with
//!   the Figure 1 per-node distribution bookkeeping and §3.6.3 rebucketing;
//! * [`bucketing`] — the §3.7 strategies for partitioning the parameter
//!   space (equal-width, equi-depth, level-set aware);
//! * [`exhaustive`] — brute-force ground truth over the same left-deep
//!   space, used to verify the optimality theorems;
//! * [`optimizer`] — a single facade ([`Optimizer`]) over all modes;
//! * [`fixtures`] — the paper's Example 1.1, ready to run.
//!
//! The quickest way in:
//!
//! ```
//! use lec_core::{fixtures, Mode, Optimizer, PointEstimate};
//!
//! let (catalog, query) = fixtures::example_1_1();
//! let memory = fixtures::example_1_1_memory(); // 2000@80% / 700@20%
//! let opt = Optimizer::new(&catalog, memory);
//!
//! let lsc = opt.optimize(&query, &Mode::Lsc(PointEstimate::Mode)).unwrap();
//! let lec = opt.optimize(&query, &Mode::AlgorithmC).unwrap();
//! assert!(fixtures::is_plan1(&lsc.plan));   // the paper's Plan 1: bare sort-merge
//! assert!(fixtures::is_plan2(&lec.plan));   // the paper's Plan 2: Grace hash + sort
//! assert!(opt.expected_cost_of(&query, &lec.plan)
//!       < opt.expected_cost_of(&query, &lsc.plan));
//! ```

pub mod alg_a;
pub mod alg_b;
pub mod alg_c;
pub mod alg_d;
pub mod bucketing;
pub mod bushy;
pub mod dp;
pub mod error;
pub mod exhaustive;
pub mod fixtures;
pub mod lsc;
pub mod optimizer;
pub mod parametric;
pub mod randomized;

pub use alg_a::{optimize_alg_a, AlgAResult};
pub use alg_b::{optimize_alg_b, AlgBResult, FrontierStats};
pub use alg_c::{optimize_lec_dynamic, optimize_lec_static};
pub use alg_d::{optimize_alg_d, AlgDConfig, AlgDResult};
pub use bucketing::{bucketize, query_memory_breakpoints, BucketStrategy};
pub use error::OptError;
pub use exhaustive::{exhaustive_best, ExhaustiveResult, Objective};
pub use bushy::{optimize_lec_bushy, BushyResult};
pub use lsc::{optimize_lsc, optimize_lsc_from_dist, PointEstimate};
pub use optimizer::{Mode, Optimized, Optimizer, SearchStats};
pub use parametric::{coverage_family, CachedPlan, PlanCache, StartupChoice};
pub use randomized::{
    iterative_improvement, simulated_annealing, RandomizedConfig, RandomizedResult,
};
