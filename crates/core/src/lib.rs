//! # lec-core — Least Expected Cost query optimization
//!
//! Faithful implementation of the optimization algorithms of Chu, Halpern &
//! Seshadri, *"Least Expected Cost Query Optimization: An Exercise in
//! Utility"* (PODS 1999).
//!
//! ## Architecture: one engine, many policies
//!
//! The paper's central observation is that LEC optimization is "a generic
//! modification of the basic System R optimizer".  This crate is built
//! around that observation: a single dynamic-programming engine
//! ([`search`]) walks the subset dag, and every optimizer mode is a
//! *policy* plugged into it.  The engine is parameterized along two axes:
//!
//! * **plan shape** ([`search::PlanShape`]): left-deep enumeration (§2.2)
//!   or bushy enumeration over all connected 2-partitions (§4);
//! * **candidate policy** ([`search::CandidatePolicy`]): what each dag
//!   node retains and how candidates are costed.
//!
//! The optimizer modules are thin policy definitions over that engine:
//!
//! * [`lsc`] — keep-1 at a point parameter value (Theorem 2.1, the
//!   "least specific cost" plan);
//! * [`alg_a`] — Algorithm A (§3.2): the point policy run once per
//!   memory bucket, candidates ranked by expected cost;
//! * [`alg_b`] — Algorithm B (§3.3): top-`c` plans per (subset, order)
//!   with the Proposition 3.1 frontier enumeration;
//! * [`alg_c`] — Algorithm C (§3.4/§3.5): keep-1 on expected cost, under
//!   static or Markov-evolving memory (Theorems 3.3 and 3.4);
//! * [`alg_d`] — Algorithm D (§3.6): per-node distribution bookkeeping
//!   (Figure 1) with §3.6.3 rebucketing;
//! * [`bushy`] — Algorithm C's policy under the bushy shape (the §4
//!   extension);
//! * [`exhaustive`] — the keep-all policy: brute-force ground truth used
//!   to verify the optimality theorems;
//! * [`randomized`] — move-based II/SA searches \[Swa89, IK90\] with the
//!   EC objective (not DP-based, but reporting the same uniform stats);
//! * [`bucketing`] — the §3.7 strategies for partitioning the parameter
//!   space (equal-width, equi-depth, level-set aware);
//! * [`optimizer`] — a single facade ([`Optimizer`]) over all modes;
//! * [`fixtures`] — the paper's Example 1.1, ready to run.
//!
//! Every mode returns the same [`SearchOutcome`] — plan, objective value,
//! uniform [`SearchStats`] and optional mode-specific extras — so callers
//! never destructure per-mode result types.  All memory-dependent
//! evaluations flow through `lec-cost`'s memoized evaluation cache keyed
//! by `(table set, operator, memory bucket)`; [`SearchStats::evals`]
//! counts only the formula evaluations actually performed, making the
//! paper's "factor b" overhead claims — and the cache's savings —
//! directly observable.
//!
//! The quickest way in:
//!
//! ```
//! use lec_core::{fixtures, Mode, Optimizer, PointEstimate};
//!
//! let (catalog, query) = fixtures::example_1_1();
//! let memory = fixtures::example_1_1_memory(); // 2000@80% / 700@20%
//! let opt = Optimizer::new(&catalog, memory);
//!
//! let lsc = opt.optimize(&query, &Mode::Lsc(PointEstimate::Mode)).unwrap();
//! let lec = opt.optimize(&query, &Mode::AlgorithmC).unwrap();
//! assert!(fixtures::is_plan1(&lsc.plan));   // the paper's Plan 1: bare sort-merge
//! assert!(fixtures::is_plan2(&lec.plan));   // the paper's Plan 2: Grace hash + sort
//! assert!(opt.expected_cost_of(&query, &lec.plan)
//!       < opt.expected_cost_of(&query, &lsc.plan));
//! ```

pub mod alg_a;
pub mod alg_b;
pub mod alg_c;
pub mod alg_d;
pub mod bucketing;
pub mod bushy;
pub mod error;
pub mod exhaustive;
pub mod fixtures;
pub mod lsc;
pub mod optimizer;
pub mod parametric;
pub mod randomized;
pub mod search;

pub use alg_a::{optimize_alg_a, Candidate};
pub use alg_b::optimize_alg_b;
pub use alg_c::{optimize_lec_dynamic, optimize_lec_static};
pub use alg_d::{optimize_alg_d, AlgDConfig};
pub use bucketing::{bucketize, query_memory_breakpoints, BucketStrategy};
pub use bushy::optimize_lec_bushy;
pub use error::OptError;
pub use exhaustive::{
    exhaustive_best, exhaustive_best_shaped, Objective, MAX_EXHAUSTIVE_PLANS, MAX_EXHAUSTIVE_TABLES,
};
pub use lsc::{optimize_lsc, optimize_lsc_from_dist, PointEstimate};
pub use optimizer::{Mode, Optimized, Optimizer};
pub use parametric::{coverage_family, CachedPlan, PlanCache, StartupChoice};
pub use randomized::{iterative_improvement, simulated_annealing, RandomizedConfig};
pub use search::{
    run_search, CandidatePolicy, FrontierStats, PlanShape, SearchExtras, SearchOutcome, SearchStats,
};
